// Shared test fixture: a PolicyEnv backed by a private Simulator, for
// exercising buffer stores + retention policies in isolation from the
// protocol.
#pragma once

#include "buffer/policy.h"
#include "buffer/store.h"
#include "sim/simulator.h"

namespace rrmp::testing {

class FakePolicyEnv final : public buffer::PolicyEnv {
 public:
  explicit FakePolicyEnv(std::size_t region_size = 10, MemberId self = 0,
                         std::uint64_t seed = 1)
      : rng_(seed), self_(self) {
    members_.resize(region_size);
    for (std::size_t i = 0; i < region_size; ++i) {
      members_[i] = static_cast<MemberId>(i);
    }
  }

  TimePoint now() const override { return sim_.now(); }
  std::uint64_t schedule(Duration d, std::function<void()> fn) override {
    return sim_.schedule_after(d, std::move(fn)).value;
  }
  void cancel(std::uint64_t timer) override { sim_.cancel(sim::TimerId{timer}); }
  RandomEngine& rng() override { return rng_; }
  std::size_t region_size() const override { return members_.size(); }
  const std::vector<MemberId>& region_members() const override {
    return members_;
  }
  MemberId self() const override { return self_; }
  buffer::BudgetState budget() const override {
    return store_ != nullptr ? store_->budget_state()
                             : buffer::PolicyEnv::budget();
  }

  void set_members(std::vector<MemberId> members) {
    members_ = std::move(members);
  }

  /// Make budget() report `store`'s state (as the endpoint's env does).
  void attach_store(const buffer::BufferStore* store) { store_ = store; }

  sim::Simulator& sim() { return sim_; }
  void advance(Duration d) { sim_.run_until(sim_.now() + d); }

 private:
  sim::Simulator sim_;
  RandomEngine rng_;
  MemberId self_;
  std::vector<MemberId> members_;
  const buffer::BufferStore* store_ = nullptr;
};

inline proto::Data make_data(std::uint32_t source, std::uint64_t seq,
                             std::size_t bytes = 16) {
  return proto::Data{MessageId{source, seq},
                     std::vector<std::uint8_t>(bytes, 0x77)};
}

}  // namespace rrmp::testing
