// Tests: the Bimodal-Multicast-style anti-entropy engine ([3], paper §2).
#include <gtest/gtest.h>

#include "harness/cluster.h"

namespace rrmp::harness {
namespace {

ClusterConfig ae_config(std::size_t n, std::uint64_t seed) {
  ClusterConfig cc;
  cc.region_sizes = {n};
  cc.seed = seed;
  cc.protocol.gap_driven_recovery = false;  // isolate anti-entropy
  cc.protocol.anti_entropy = true;
  cc.protocol.anti_entropy_interval = Duration::millis(20);
  return cc;
}

TEST(AntiEntropy, DigestExchangeSpreadsAMessage) {
  Cluster cluster(ae_config(12, 1));
  // Only member 0 holds the message; no session messages, no gap recovery:
  // only digests can spread knowledge of it.
  MessageId id = cluster.inject_data_to(0, 1, std::vector<MemberId>{0});
  cluster.run_for(Duration::seconds(2));
  EXPECT_TRUE(cluster.all_received(id));
  EXPECT_GT(cluster.network().stats().sends_by_type[static_cast<int>(
                proto::MessageType::kHistory)],
            0u);
}

TEST(AntiEntropy, PullsAreBoundedPerDigest) {
  ClusterConfig cc = ae_config(6, 2);
  cc.protocol.anti_entropy_max_pulls = 4;
  Cluster cluster(cc);
  // Member 0 holds 20 messages; each digest round lets a peer pull at most 4.
  std::vector<MemberId> holder = {0};
  for (std::uint64_t s = 1; s <= 20; ++s) cluster.inject_data_to(0, s, holder);
  // After one digest from 0 lands somewhere, that member has <= 4 messages.
  cluster.run_for(Duration::millis(45));  // ~1-2 rounds
  for (MemberId m = 1; m < 6; ++m) {
    EXPECT_LE(cluster.endpoint(m).received_count(), 8u) << "member " << m;
  }
  // But everything converges eventually.
  cluster.run_for(Duration::seconds(4));
  for (std::uint64_t s = 1; s <= 20; ++s) {
    EXPECT_TRUE(cluster.all_received(MessageId{0, s})) << "seq " << s;
  }
}

TEST(AntiEntropy, GapDrivenIsFasterThanAntiEntropy) {
  auto spread_time = [](bool gap, bool ae, std::uint64_t seed) {
    ClusterConfig cc;
    cc.region_sizes = {20};
    cc.seed = seed;
    cc.protocol.gap_driven_recovery = gap;
    cc.protocol.anti_entropy = ae;
    cc.protocol.anti_entropy_interval = Duration::millis(20);
    Cluster cluster(cc);
    MessageId id = cluster.inject(0, 1, std::vector<MemberId>{0});
    cluster.run_for(Duration::seconds(5));
    TimePoint done = TimePoint::zero();
    for (const auto& ev : cluster.metrics().deliveries()) {
      if (ev.id == id && ev.at > done) done = ev.at;
    }
    EXPECT_TRUE(cluster.all_received(id));
    return done.ms();
  };
  double gap_ms = spread_time(true, false, 3);
  double ae_ms = spread_time(false, true, 3);
  EXPECT_LT(gap_ms, ae_ms);
}

TEST(AntiEntropy, BothEnginesCoexist) {
  ClusterConfig cc = ae_config(15, 4);
  cc.protocol.gap_driven_recovery = true;  // both on
  cc.data_loss = 0.5;
  Cluster cluster(cc);
  std::vector<MessageId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(cluster.endpoint(0).multicast({7}));
  }
  cluster.run_for(Duration::seconds(3));
  for (const MessageId& id : ids) EXPECT_TRUE(cluster.all_received(id));
}

TEST(AntiEntropy, ServesBufferFeedbackToo) {
  // Anti-entropy pulls are LocalRequests, so they feed the two-phase
  // policy's idle detection like any other request.
  Cluster cluster(ae_config(8, 5));
  MessageId id = cluster.inject_data_to(0, 1, std::vector<MemberId>{0});
  cluster.run_for(Duration::millis(30));
  // Member 0 served pulls recently; its copy must still be buffered.
  EXPECT_TRUE(cluster.endpoint(0).buffer().has(id));
  cluster.run_for(Duration::seconds(3));
  EXPECT_TRUE(cluster.all_received(id));
}

}  // namespace
}  // namespace rrmp::harness
