// Property-based tests: parameterized sweeps over seeds, region sizes, loss
// rates and protocol parameters, checking the paper's invariants rather
// than point values.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "analysis/analytic.h"
#include "analysis/stats.h"
#include "harness/cluster.h"
#include "harness/experiments.h"

namespace rrmp::harness {
namespace {

// ---------------------------------------------------- reliability sweep ----

struct ReliabilityParam {
  std::size_t region_size;
  double data_loss;
  std::uint64_t seed;
};

class ReliabilitySweep : public ::testing::TestWithParam<ReliabilityParam> {};

TEST_P(ReliabilitySweep, EveryMessageReachesEveryMember) {
  ReliabilityParam p = GetParam();
  ClusterConfig cc;
  cc.region_sizes = {p.region_size};
  cc.data_loss = p.data_loss;
  cc.seed = p.seed;
  // Generous C: the reliability guarantee is probabilistic in C (§5).
  std::get<buffer::TwoPhaseParams>(cc.policy).C = 8.0;
  Cluster cluster(cc);
  std::vector<MessageId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(cluster.endpoint(0).multicast({static_cast<std::uint8_t>(i)}));
  }
  cluster.run_for(Duration::seconds(3));
  for (const MessageId& id : ids) {
    // The paper's guarantee is probabilistic (§5). Liveness invariant: a
    // member that *detected* the loss (learned the sequence exists) must
    // have recovered it by now whenever at least one member still buffers a
    // copy. Members that never received any data/session message at this
    // loss rate are oblivious, not stalled — they cannot request what they
    // do not know exists.
    if (!cluster.all_received(id) && cluster.count_buffered(id) > 0) {
      for (MemberId m = 0; m < cluster.size(); ++m) {
        if (cluster.endpoint(m).has_received(id)) continue;
        auto missing = cluster.endpoint(m).missing_from(id.source);
        bool detected = std::find(missing.begin(), missing.end(), id.seq) !=
                        missing.end();
        EXPECT_FALSE(detected)
            << "member " << m << " detected the loss, bufferers exist, but "
            << "recovery stalled; seed=" << p.seed;
      }
    }
    // At moderate loss the violation probability is negligible: require
    // full delivery outright.
    if (p.data_loss <= 0.7) {
      EXPECT_TRUE(cluster.all_received(id))
          << "n=" << p.region_size << " loss=" << p.data_loss
          << " seed=" << p.seed << " seq=" << id.seq;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesLossesSeeds, ReliabilitySweep,
    ::testing::Values(
        ReliabilityParam{10, 0.1, 1}, ReliabilityParam{10, 0.5, 2},
        ReliabilityParam{10, 0.9, 3}, ReliabilityParam{40, 0.1, 4},
        ReliabilityParam{40, 0.5, 5}, ReliabilityParam{40, 0.9, 6},
        ReliabilityParam{80, 0.3, 7}, ReliabilityParam{80, 0.7, 8},
        ReliabilityParam{25, 0.99, 9}, ReliabilityParam{60, 0.5, 10}));

// --------------------------------------------- hierarchical reliability ----

struct HierarchyParam {
  std::vector<std::size_t> regions;
  double data_loss;
  std::uint64_t seed;
};

class HierarchySweep : public ::testing::TestWithParam<HierarchyParam> {};

TEST_P(HierarchySweep, CrossRegionRecoveryConverges) {
  HierarchyParam p = GetParam();
  ClusterConfig cc;
  cc.region_sizes = p.regions;
  cc.data_loss = p.data_loss;
  cc.seed = p.seed;
  std::get<buffer::TwoPhaseParams>(cc.policy).C = 8.0;
  cc.protocol.lambda = 2.0;
  Cluster cluster(cc);
  std::vector<MessageId> ids;
  for (int i = 0; i < 3; ++i) {
    ids.push_back(cluster.endpoint(0).multicast({static_cast<std::uint8_t>(i)}));
  }
  cluster.run_for(Duration::seconds(4));
  for (const MessageId& id : ids) {
    EXPECT_TRUE(cluster.all_received(id)) << "seed=" << p.seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, HierarchySweep,
    ::testing::Values(
        HierarchyParam{{10, 10}, 0.4, 11}, HierarchyParam{{10, 10, 10}, 0.4, 12},
        HierarchyParam{{20, 10, 5}, 0.6, 13}, HierarchyParam{{5, 20}, 0.5, 14},
        HierarchyParam{{15, 15, 15}, 0.3, 15}));

// A chain hierarchy (region 2's parent is region 1) recovers end-to-end.
TEST(HierarchyChain, GrandchildRecoversThroughChain) {
  ClusterConfig cc;
  cc.region_sizes = {8, 8, 8};
  cc.parents = {0, 0, 1};  // 0 <- 1 <- 2
  cc.seed = 99;
  cc.protocol.lambda = 3.0;
  Cluster cluster(cc);
  std::vector<MemberId> r0 = cluster.region_members(0);
  MessageId id = cluster.inject_data_to(r0[0], 1, r0);
  cluster.inject_session_to(r0[0], 1, cluster.region_members(1));
  cluster.inject_session_to(r0[0], 1, cluster.region_members(2));
  cluster.run_until_quiet(Duration::seconds(5));
  EXPECT_TRUE(cluster.all_received(id));
}

// ------------------------------------------------------- Poisson property ----

class PoissonSweep : public ::testing::TestWithParam<double> {};

TEST_P(PoissonSweep, LongTermBuffererCountMatchesPoisson) {
  double C = GetParam();
  ClusterConfig cc;
  cc.region_sizes = {50};
  cc.seed = static_cast<std::uint64_t>(C * 1000) + 17;
  std::get<buffer::TwoPhaseParams>(cc.policy).C = C;
  Cluster cluster(cc);
  std::vector<MemberId> all = cluster.region_members(0);
  const int messages = 60;
  for (std::uint64_t s = 1; s <= messages; ++s) {
    cluster.inject_data_to(0, s, all);
  }
  cluster.run_for(Duration::millis(200));  // all idle decisions done
  std::vector<double> counts;
  for (std::uint64_t s = 1; s <= messages; ++s) {
    counts.push_back(
        static_cast<double>(cluster.count_long_term(MessageId{0, s})));
  }
  double mean = analysis::mean(counts);
  double sd = analysis::stddev(counts);
  // Binomial(50, C/50): mean C, variance C(1 - C/50).
  EXPECT_NEAR(mean, C, 3.5 * std::sqrt(C / messages) + 0.5);
  double expected_sd = std::sqrt(C * (1.0 - C / 50.0));
  EXPECT_NEAR(sd, expected_sd, expected_sd * 0.6 + 0.3);
}

INSTANTIATE_TEST_SUITE_P(CValues, PoissonSweep,
                         ::testing::Values(2.0, 4.0, 6.0, 8.0));

// ------------------------------------------------------------ determinism ----

class DeterminismSweep : public ::testing::TestWithParam<std::uint64_t> {};

RecordingSink::Counters run_once(std::uint64_t seed, bool codec_roundtrip) {
  ClusterConfig cc;
  cc.region_sizes = {20, 10};
  cc.data_loss = 0.4;
  cc.seed = seed;
  cc.codec_roundtrip = codec_roundtrip;
  Cluster cluster(cc);
  for (int i = 0; i < 3; ++i) {
    cluster.endpoint(0).multicast({static_cast<std::uint8_t>(i)});
  }
  cluster.run_for(Duration::seconds(2));
  return cluster.metrics().counters();
}

bool counters_equal(const RecordingSink::Counters& a,
                    const RecordingSink::Counters& b) {
  return a.delivered == b.delivered && a.losses_detected == b.losses_detected &&
         a.recoveries == b.recoveries && a.stores == b.stores &&
         a.discards == b.discards &&
         a.local_requests_sent == b.local_requests_sent &&
         a.remote_requests_sent == b.remote_requests_sent &&
         a.repairs_sent == b.repairs_sent &&
         a.searches_started == b.searches_started &&
         a.regional_multicasts == b.regional_multicasts;
}

TEST_P(DeterminismSweep, SameSeedSameExecution) {
  std::uint64_t seed = GetParam();
  EXPECT_TRUE(counters_equal(run_once(seed, false), run_once(seed, false)));
}

TEST_P(DeterminismSweep, WireCodecDoesNotChangeBehavior) {
  std::uint64_t seed = GetParam();
  // Encoding+decoding every in-flight message must be a pure identity.
  EXPECT_TRUE(counters_equal(run_once(seed, false), run_once(seed, true)));
}

TEST_P(DeterminismSweep, DifferentSeedsDiverge) {
  std::uint64_t seed = GetParam();
  RecordingSink::Counters a = run_once(seed, false);
  RecordingSink::Counters b = run_once(seed + 1000003, false);
  // Loss patterns differ, so at least the delivered/request mix must.
  EXPECT_FALSE(a.local_requests_sent == b.local_requests_sent &&
               a.delivered == b.delivered && a.repairs_sent == b.repairs_sent);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismSweep,
                         ::testing::Values(1u, 7u, 42u, 12345u));

// ---------------------------------------------------------- lambda sweep ----

class LambdaSweep : public ::testing::TestWithParam<double> {};

TEST_P(LambdaSweep, FirstRoundRemoteRequestsMatchLambda) {
  double lambda = GetParam();
  LambdaResult r = run_lambda_experiment(lambda, 50, 20, /*trials=*/40,
                                         static_cast<std::uint64_t>(lambda * 77) + 3);
  EXPECT_NEAR(r.mean_first_round, lambda, 0.35 * lambda + 0.3);
}

INSTANTIATE_TEST_SUITE_P(Lambdas, LambdaSweep,
                         ::testing::Values(0.5, 1.0, 2.0, 3.0));

// ----------------------------------------------------- search properties ----

TEST(SearchProperty, TimeFallsWithBuffererCount) {
  double k1 = mean_search_ms(80, 1, 40, 21);
  double k4 = mean_search_ms(80, 4, 40, 22);
  double k10 = mean_search_ms(80, 10, 40, 23);
  EXPECT_GT(k1, k4);
  EXPECT_GT(k4, k10);
}

TEST(SearchProperty, TimeGrowsSublinearlyWithRegion) {
  double n100 = mean_search_ms(100, 10, 40, 24);
  double n400 = mean_search_ms(400, 10, 40, 25);
  EXPECT_GT(n400, n100);
  EXPECT_LT(n400, n100 * 4.0);  // far below linear scaling
}

TEST(SearchProperty, SearchAlwaysFindsTheLastBufferer) {
  for (std::uint64_t seed = 100; seed < 120; ++seed) {
    SearchResult r = run_search_once(50, 1, seed);
    EXPECT_TRUE(r.found) << "seed " << seed;
  }
}

// ------------------------------------------------- buffering-time property ----

TEST(BufferingProperty, TimeFallsWithInitialCoverage) {
  Fig6Result sparse = run_fig6_point(1, 60, 10, 31);
  Fig6Result dense = run_fig6_point(32, 60, 10, 32);
  EXPECT_GT(sparse.mean_buffer_ms, dense.mean_buffer_ms);
  // Both bounded below by the idle threshold.
  EXPECT_GE(dense.mean_buffer_ms, 40.0);
}

TEST(BufferingProperty, IdleThresholdScalesTheFloor) {
  ExperimentDefaults fast;
  fast.idle_threshold = Duration::millis(20);
  ExperimentDefaults slow;
  slow.idle_threshold = Duration::millis(80);
  Fig6Result f = run_fig6_point(16, 40, 8, 33, fast);
  Fig6Result s = run_fig6_point(16, 40, 8, 33, slow);
  EXPECT_GE(f.mean_buffer_ms, 20.0);
  EXPECT_GE(s.mean_buffer_ms, 80.0);
  EXPECT_GT(s.mean_buffer_ms, f.mean_buffer_ms + 30.0);
}

// --------------------------------------------------- policy sweep (stream) ----

class PolicySweep : public ::testing::TestWithParam<buffer::PolicyKind> {};

TEST_P(PolicySweep, LossyStreamFullyDelivered) {
  StreamScenario sc;
  sc.region_size = 30;
  sc.messages = 30;
  sc.data_loss = 0.1;
  sc.seed = 55;
  PolicyOutcome o = run_stream_scenario(GetParam(), sc);
  EXPECT_TRUE(o.all_delivered) << o.policy;
  EXPECT_EQ(o.unrecovered, 0u) << o.policy;
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicySweep,
    ::testing::Values(buffer::PolicyKind::kTwoPhase,
                      buffer::PolicyKind::kFixedTime,
                      buffer::PolicyKind::kBufferEverything,
                      buffer::PolicyKind::kHashBased,
                      buffer::PolicyKind::kStability),
    [](const ::testing::TestParamInfo<buffer::PolicyKind>& info) {
      std::string name = buffer::to_string(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ----------------------------------------------- no-bufferer probability ----

TEST(NoBuffererProperty, MatchesExponentialAcrossC) {
  for (double C : {1.0, 2.0, 4.0}) {
    auto dist = simulate_longterm_distribution(100, C, 400000,
                                               static_cast<std::uint64_t>(C) + 61,
                                               2);
    double expected = analysis::prob_no_bufferer(C);
    // Binomial p_none is slightly below the Poisson limit; accept 15%.
    EXPECT_NEAR(dist.p_none, expected, expected * 0.15 + 0.002) << "C=" << C;
  }
}

// ------------------------------------------------ churn/handoff property ----

TEST(ChurnProperty, HandoffChainSurvivesRepeatedLeaves) {
  // Leave bufferers one wave after another; handoff must keep the message
  // recoverable through multiple generations of inheritors.
  ClusterConfig cc;
  cc.region_sizes = {30, 1};
  cc.seed = 77;
  Cluster cluster(cc);
  std::vector<MemberId> r0 = cluster.region_members(0);
  MessageId id = cluster.inject_data_to(r0[0], 1, r0);
  cluster.run_for(Duration::millis(100));  // idle decisions done

  for (int wave = 0; wave < 3; ++wave) {
    std::vector<MemberId> bufferers;
    for (MemberId m : r0) {
      if (cluster.directory().alive(m) &&
          cluster.endpoint(m).buffer().is_long_term(id)) {
        bufferers.push_back(m);
      }
    }
    ASSERT_FALSE(bufferers.empty()) << "wave " << wave;
    for (MemberId b : bufferers) cluster.leave(b);
    cluster.run_for(Duration::millis(50));
    EXPECT_GE(cluster.count_buffered(id), 1u) << "wave " << wave;
  }
  // After three generations, a downstream request still succeeds.
  MemberId requester = cluster.region_members(1)[0];
  std::vector<MemberId> survivors;
  for (MemberId m : r0) {
    if (cluster.directory().alive(m)) survivors.push_back(m);
  }
  ASSERT_FALSE(survivors.empty());
  cluster.inject_remote_request(survivors[0], id, requester);
  cluster.run_for(Duration::millis(500));
  EXPECT_TRUE(cluster.endpoint(requester).has_received(id));
}

}  // namespace
}  // namespace rrmp::harness
