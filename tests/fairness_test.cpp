// Paper-fidelity properties not covered elsewhere: even spreading of the
// long-term buffering load (§3.2 "the load of long-term buffering is spread
// evenly among all members"), behavior under bursty control-plane loss, and
// robustness when members crash mid-search.
#include <gtest/gtest.h>

#include <algorithm>

#include "harness/cluster.h"

namespace rrmp::harness {
namespace {

TEST(Fairness, LongTermLoadSpreadsEvenlyAcrossMembers) {
  ClusterConfig cc;
  cc.region_sizes = {30};
  cc.seed = 301;
  Cluster cluster(cc);
  std::vector<MemberId> all = cluster.region_members(0);
  const int kMessages = 300;
  for (std::uint64_t s = 1; s <= kMessages; ++s) {
    cluster.inject_data_to(0, s, all);
  }
  cluster.run_for(Duration::millis(200));  // all idle decisions done

  // Per-member long-term load: expected kMessages * C/n = 300*6/30 = 60.
  std::vector<double> load(all.size(), 0);
  for (MemberId m : all) {
    std::size_t count = 0;
    for (std::uint64_t s = 1; s <= kMessages; ++s) {
      if (cluster.endpoint(m).buffer().is_long_term(MessageId{0, s})) ++count;
    }
    load[m] = static_cast<double>(count);
  }
  double lo = *std::min_element(load.begin(), load.end());
  double hi = *std::max_element(load.begin(), load.end());
  // Binomial(300, 0.2): mean 60, sd ~6.9. All members within ~4.5 sd.
  EXPECT_GT(lo, 30.0);
  EXPECT_LT(hi, 95.0);
  // No repair-server hotspot: the heaviest member carries a small multiple
  // of the lightest (contrast: a repair server carries 300, others 0).
  EXPECT_LT(hi / std::max(lo, 1.0), 3.0);
}

TEST(Fairness, HashBasedLoadAlsoBalanced) {
  ClusterConfig cc;
  cc.region_sizes = {30};
  cc.seed = 302;
  cc.policy = buffer::HashBasedParams{6, Duration::millis(20)};
  cc.protocol.lookup = BuffererLookup::kHashDirect;
  Cluster cluster(cc);
  std::vector<MemberId> all = cluster.region_members(0);
  const int kMessages = 300;
  for (std::uint64_t s = 1; s <= kMessages; ++s) {
    cluster.inject_data_to(0, s, all);
  }
  cluster.run_for(Duration::millis(100));
  std::vector<double> load(all.size(), 0);
  for (MemberId m : all) {
    load[m] = static_cast<double>(cluster.endpoint(m).buffer().count());
  }
  double lo = *std::min_element(load.begin(), load.end());
  double hi = *std::max_element(load.begin(), load.end());
  EXPECT_GT(lo, 30.0);
  EXPECT_LT(hi, 95.0);
}

TEST(BurstLoss, RecoveryConvergesUnderGilbertElliottControlLoss) {
  ClusterConfig cc;
  cc.region_sizes = {25};
  cc.seed = 303;
  std::get<buffer::TwoPhaseParams>(cc.policy).C = 12.0;
  Cluster cluster(cc);
  // Bursty control-plane loss: good state clean, bad state drops 80%,
  // ~10% of time in bad state.
  cluster.network().set_control_loss(std::make_unique<net::GilbertElliottLoss>(
      /*p_gb=*/0.02, /*p_bg=*/0.2, /*loss_good=*/0.0, /*loss_bad=*/0.8));
  std::vector<MemberId> holders = {0, 1, 2};
  MessageId id = cluster.inject(0, 1, holders);
  cluster.run_for(Duration::seconds(5));
  EXPECT_TRUE(cluster.all_received(id));
}

TEST(CrashDuringSearch, SearchRoutesAroundDeadMembers) {
  ClusterConfig cc;
  cc.region_sizes = {15, 1};
  cc.seed = 304;
  Cluster cluster(cc);
  std::vector<MemberId> region0 = cluster.region_members(0);
  MessageId id = cluster.inject_data_to(region0[0], 1, region0);
  // One bufferer; everyone else discarded.
  for (MemberId m : region0) {
    if (m == 9) {
      cluster.force_long_term(m, id);
    } else {
      cluster.force_discard(m, id);
    }
  }
  // Crash a third of the non-bufferers before the search starts: probes to
  // them vanish into the void and must be retried elsewhere.
  for (MemberId m : {2u, 4u, 6u, 8u, 11u}) {
    cluster.crash(m);
  }
  MemberId requester = cluster.region_members(1)[0];
  cluster.inject_remote_request(0, id, requester);
  cluster.run_until_quiet(Duration::seconds(3));
  EXPECT_TRUE(cluster.endpoint(requester).has_received(id));
}

TEST(CrashDuringSearch, LoneBuffererCrashMakesLossUnrecoverableButBounded) {
  ClusterConfig cc;
  cc.region_sizes = {10, 1};
  cc.seed = 305;
  cc.protocol.max_attempts = 20;  // bound the futile search
  Cluster cluster(cc);
  std::vector<MemberId> region0 = cluster.region_members(0);
  MessageId id = cluster.inject_data_to(region0[0], 1, region0);
  for (MemberId m : region0) {
    if (m == 3) {
      cluster.force_long_term(m, id);
    } else {
      cluster.force_discard(m, id);
    }
  }
  cluster.crash(3);  // the only copy dies
  MemberId requester = cluster.region_members(1)[0];
  cluster.inject_remote_request(0, id, requester);
  cluster.run_until_quiet(Duration::seconds(5));
  // Unrecoverable (paper §5's acknowledged case) — and the search machinery
  // terminated rather than spinning forever.
  EXPECT_FALSE(cluster.endpoint(requester).has_received(id));
  for (MemberId m : region0) {
    if (!cluster.directory().alive(m)) continue;
    EXPECT_EQ(cluster.endpoint(m).active_searches(), 0u) << "member " << m;
  }
}

TEST(StabilityWithChurn, LeaverNoLongerGatesStability) {
  ClusterConfig cc;
  cc.region_sizes = {8};
  cc.seed = 306;
  cc.policy = buffer::StabilityParams{};
  cc.protocol.history_interval = Duration::millis(10);
  Cluster cluster(cc);
  // Member 7 never receives the message and then leaves; stability must
  // then be computed over the surviving view and release the buffers.
  std::vector<MemberId> holders;
  for (MemberId m = 0; m < 7; ++m) holders.push_back(m);
  MessageId id = cluster.inject_data_to(0, 1, holders);
  cluster.run_for(Duration::millis(50));
  EXPECT_EQ(cluster.count_buffered(id), 7u);  // 7 gates stability
  cluster.crash(7);
  cluster.run_for(Duration::millis(100));
  EXPECT_EQ(cluster.count_buffered(id), 0u);  // stable over the new view
}

}  // namespace
}  // namespace rrmp::harness
