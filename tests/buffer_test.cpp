// Unit tests: all five buffer policies against a fake environment.
#include <gtest/gtest.h>

#include "buffer/factory.h"
#include "test_env.h"

namespace rrmp::buffer {
namespace {

using rrmp::testing::FakePolicyEnv;
using rrmp::testing::make_data;

// ------------------------------------------------------------ base class ----

TEST(BufferPolicyBase, StoreGetHasAndAccounting) {
  FakePolicyEnv env;
  BufferEverythingPolicy p;
  p.bind(&env);
  proto::Data d = make_data(1, 1, 100);
  p.store(d);
  EXPECT_TRUE(p.has(d.id));
  EXPECT_EQ(p.count(), 1u);
  EXPECT_EQ(p.bytes(), 100u);
  auto got = p.get(d.id);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, d.payload);
  EXPECT_FALSE(p.get(MessageId{9, 9}).has_value());
}

TEST(BufferPolicyBase, DuplicateStoreIgnored) {
  FakePolicyEnv env;
  BufferEverythingPolicy p;
  p.bind(&env);
  p.store(make_data(1, 1));
  p.store(make_data(1, 1));
  EXPECT_EQ(p.count(), 1u);
  EXPECT_EQ(p.stats().stored, 1u);
}

TEST(BufferPolicyBase, ForceDiscardRemovesAndCounts) {
  FakePolicyEnv env;
  BufferEverythingPolicy p;
  p.bind(&env);
  proto::Data d = make_data(1, 1, 64);
  p.store(d);
  env.advance(Duration::millis(3));
  p.force_discard(d.id);
  EXPECT_FALSE(p.has(d.id));
  EXPECT_EQ(p.bytes(), 0u);
  EXPECT_EQ(p.stats().discarded, 1u);
  EXPECT_EQ(p.stats().total_buffer_time, Duration::millis(3));
}

TEST(BufferPolicyBase, PeakTracking) {
  FakePolicyEnv env;
  BufferEverythingPolicy p;
  p.bind(&env);
  for (std::uint64_t s = 1; s <= 5; ++s) p.store(make_data(1, s, 10));
  p.force_discard(MessageId{1, 1});
  EXPECT_EQ(p.stats().peak_count, 5u);
  EXPECT_EQ(p.stats().peak_bytes, 50u);
  EXPECT_EQ(p.count(), 4u);
}

TEST(BufferPolicyBase, ObserverSeesLifecycle) {
  FakePolicyEnv env;
  TwoPhasePolicy p(TwoPhaseParams{Duration::millis(10), 10.0,
                                  Duration::infinite()});
  p.bind(&env);
  std::vector<std::pair<BufferEvent, bool>> events;
  p.set_observer([&](const MessageId&, BufferEvent ev, bool lt) {
    events.emplace_back(ev, lt);
  });
  p.store(make_data(1, 1));
  env.advance(Duration::millis(50));  // idle; C/n = 1.0 -> always promoted
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].first, BufferEvent::kStored);
  EXPECT_EQ(events[1].first, BufferEvent::kPromotedLongTerm);
  EXPECT_TRUE(events[1].second);
}

TEST(BufferPolicyBase, BindTwiceThrows) {
  FakePolicyEnv env;
  BufferEverythingPolicy p;
  p.bind(&env);
  EXPECT_THROW(p.bind(&env), std::logic_error);
  BufferEverythingPolicy q;
  EXPECT_THROW(q.bind(nullptr), std::invalid_argument);
}

// -------------------------------------------------------------- two-phase ----

TwoPhaseParams tp(Duration idle, double c,
                  Duration ttl = Duration::infinite()) {
  return TwoPhaseParams{idle, c, ttl};
}

TEST(TwoPhaseTest, IdleMessageDiscardedAfterThresholdWhenCZero) {
  FakePolicyEnv env;
  TwoPhasePolicy p(tp(Duration::millis(40), 0.0));
  p.bind(&env);
  p.store(make_data(1, 1));
  env.advance(Duration::millis(39));
  EXPECT_TRUE(p.has(MessageId{1, 1}));
  env.advance(Duration::millis(2));
  EXPECT_FALSE(p.has(MessageId{1, 1}));
}

TEST(TwoPhaseTest, RequestFeedbackExtendsShortTermBuffering) {
  FakePolicyEnv env;
  TwoPhasePolicy p(tp(Duration::millis(40), 0.0));
  p.bind(&env);
  MessageId id{1, 1};
  p.store(make_data(1, 1));
  // Keep poking every 30 ms: the idle threshold never elapses.
  for (int i = 0; i < 5; ++i) {
    env.advance(Duration::millis(30));
    p.on_request_seen(id);
    EXPECT_TRUE(p.has(id));
  }
  // Silence for T: now it goes.
  env.advance(Duration::millis(41));
  EXPECT_FALSE(p.has(id));
}

TEST(TwoPhaseTest, AlwaysPromotedWhenCEqualsRegionSize) {
  FakePolicyEnv env(/*region_size=*/10);
  TwoPhasePolicy p(tp(Duration::millis(10), 10.0));  // C/n = 1
  p.bind(&env);
  p.store(make_data(1, 1));
  env.advance(Duration::millis(20));
  EXPECT_TRUE(p.has(MessageId{1, 1}));
  EXPECT_TRUE(p.is_long_term(MessageId{1, 1}));
}

TEST(TwoPhaseTest, PromotionProbabilityIsCOverN) {
  FakePolicyEnv env(/*region_size=*/10, /*self=*/0, /*seed=*/99);
  TwoPhasePolicy p(tp(Duration::millis(5), 3.0));  // P = 0.3
  p.bind(&env);
  const int n = 4000;
  for (std::uint64_t s = 1; s <= n; ++s) p.store(make_data(1, s));
  env.advance(Duration::millis(10));
  double kept = static_cast<double>(p.count()) / n;
  EXPECT_NEAR(kept, 0.3, 0.03);
  EXPECT_EQ(p.stats().promoted_long_term, p.count());
}

TEST(TwoPhaseTest, LongTermTtlEventuallyDiscards) {
  FakePolicyEnv env;
  TwoPhasePolicy p(tp(Duration::millis(10), 10.0, Duration::millis(100)));
  p.bind(&env);
  p.store(make_data(1, 1));
  env.advance(Duration::millis(20));  // promoted at ~10ms
  EXPECT_TRUE(p.is_long_term(MessageId{1, 1}));
  env.advance(Duration::millis(200));
  EXPECT_FALSE(p.has(MessageId{1, 1}));
}

TEST(TwoPhaseTest, LongTermTtlRefreshedByRequests) {
  FakePolicyEnv env;
  TwoPhasePolicy p(tp(Duration::millis(10), 10.0, Duration::millis(100)));
  p.bind(&env);
  MessageId id{1, 1};
  p.store(make_data(1, 1));
  env.advance(Duration::millis(20));
  ASSERT_TRUE(p.is_long_term(id));
  // Requests every 80 ms keep it alive past several TTLs.
  for (int i = 0; i < 4; ++i) {
    env.advance(Duration::millis(80));
    p.on_request_seen(id);
  }
  EXPECT_TRUE(p.has(id));
  env.advance(Duration::millis(150));
  EXPECT_FALSE(p.has(id));
}

TEST(TwoPhaseTest, HandoffAcceptedAsLongTermImmediately) {
  FakePolicyEnv env;
  TwoPhasePolicy p(tp(Duration::millis(10), 0.0));  // would never survive idle
  p.bind(&env);
  p.accept_handoff(make_data(1, 1));
  EXPECT_TRUE(p.is_long_term(MessageId{1, 1}));
  env.advance(Duration::millis(100));
  EXPECT_TRUE(p.has(MessageId{1, 1}));  // no idle discard for long-term
}

TEST(TwoPhaseTest, HandoffUpgradesExistingShortTermEntry) {
  FakePolicyEnv env;
  TwoPhasePolicy p(tp(Duration::millis(40), 0.0));
  p.bind(&env);
  p.store(make_data(1, 1));
  EXPECT_FALSE(p.is_long_term(MessageId{1, 1}));
  p.accept_handoff(make_data(1, 1));
  EXPECT_TRUE(p.is_long_term(MessageId{1, 1}));
  env.advance(Duration::millis(100));
  EXPECT_TRUE(p.has(MessageId{1, 1}));  // upgraded entries survive idling
}

TEST(TwoPhaseTest, DrainForHandoffReturnsOnlyLongTerm) {
  FakePolicyEnv env;
  TwoPhasePolicy p(tp(Duration::millis(40), 0.0));
  p.bind(&env);
  p.store(make_data(1, 1));             // short-term
  p.accept_handoff(make_data(1, 2));    // long-term
  p.accept_handoff(make_data(1, 3));    // long-term
  auto drained = p.drain_for_handoff();
  EXPECT_EQ(drained.size(), 2u);
  EXPECT_FALSE(p.has(MessageId{1, 2}));
  EXPECT_FALSE(p.has(MessageId{1, 3}));
  EXPECT_TRUE(p.has(MessageId{1, 1}));  // short-term entry not transferred
  EXPECT_EQ(p.stats().handed_off, 2u);
}

// -------------------------------------------------------------- fixed-time ----

TEST(FixedTimeTest, DiscardsExactlyAfterTtl) {
  FakePolicyEnv env;
  FixedTimePolicy p(Duration::millis(100));
  p.bind(&env);
  p.store(make_data(1, 1));
  env.advance(Duration::millis(99));
  EXPECT_TRUE(p.has(MessageId{1, 1}));
  env.advance(Duration::millis(2));
  EXPECT_FALSE(p.has(MessageId{1, 1}));
}

TEST(FixedTimeTest, RequestsDoNotExtendLifetime) {
  FakePolicyEnv env;
  FixedTimePolicy p(Duration::millis(100));
  p.bind(&env);
  MessageId id{1, 1};
  p.store(make_data(1, 1));
  for (int i = 0; i < 9; ++i) {
    env.advance(Duration::millis(10));
    p.on_request_seen(id);
  }
  env.advance(Duration::millis(15));
  EXPECT_FALSE(p.has(id));  // Bimodal's policy ignores demand
}

TEST(FixedTimeTest, StaggeredStoresExpireIndependently) {
  FakePolicyEnv env;
  FixedTimePolicy p(Duration::millis(50));
  p.bind(&env);
  p.store(make_data(1, 1));
  env.advance(Duration::millis(30));
  p.store(make_data(1, 2));
  env.advance(Duration::millis(25));  // t=55: first gone, second alive
  EXPECT_FALSE(p.has(MessageId{1, 1}));
  EXPECT_TRUE(p.has(MessageId{1, 2}));
}

// ------------------------------------------------------- buffer-everything ----

TEST(BufferEverythingTest, NeverDiscards) {
  FakePolicyEnv env;
  BufferEverythingPolicy p;
  p.bind(&env);
  for (std::uint64_t s = 1; s <= 100; ++s) p.store(make_data(1, s));
  env.advance(Duration::seconds(100));
  EXPECT_EQ(p.count(), 100u);
  EXPECT_EQ(p.stats().discarded, 0u);
}

TEST(BufferEverythingTest, DrainsEverythingOnHandoff) {
  FakePolicyEnv env;
  BufferEverythingPolicy p;
  p.bind(&env);
  for (std::uint64_t s = 1; s <= 10; ++s) p.store(make_data(1, s));
  auto drained = p.drain_for_handoff();
  EXPECT_EQ(drained.size(), 10u);
  EXPECT_EQ(p.count(), 0u);
}

// ------------------------------------------------------------- hash-based ----

TEST(HashBasedTest, ScoreIsDeterministic) {
  MessageId id{1, 7};
  EXPECT_EQ(hash_score(id, 3), hash_score(id, 3));
  EXPECT_NE(hash_score(id, 3), hash_score(id, 4));
  EXPECT_NE(hash_score(id, 3), hash_score(MessageId{1, 8}, 3));
}

TEST(HashBasedTest, BuffererSetDeterministicAndOrderIndependent) {
  std::vector<MemberId> a = {0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<MemberId> b = {7, 3, 5, 1, 6, 0, 2, 4};
  MessageId id{2, 42};
  auto sa = hash_bufferers(id, a, 3);
  auto sb = hash_bufferers(id, b, 3);
  EXPECT_EQ(sa, sb);
  EXPECT_EQ(sa.size(), 3u);
}

TEST(HashBasedTest, BuffererSetVariesByMessage) {
  std::vector<MemberId> members(50);
  for (std::size_t i = 0; i < 50; ++i) members[i] = static_cast<MemberId>(i);
  std::set<std::vector<MemberId>> sets;
  for (std::uint64_t s = 1; s <= 30; ++s) {
    sets.insert(hash_bufferers(MessageId{1, s}, members, 5));
  }
  EXPECT_GT(sets.size(), 25u);  // essentially always different
}

TEST(HashBasedTest, SelectionIsBalancedAcrossMembers) {
  std::vector<MemberId> members(20);
  for (std::size_t i = 0; i < 20; ++i) members[i] = static_cast<MemberId>(i);
  std::map<MemberId, int> load;
  const int msgs = 5000;
  for (std::uint64_t s = 1; s <= msgs; ++s) {
    for (MemberId m : hash_bufferers(MessageId{1, s}, members, 4)) ++load[m];
  }
  // Expected load per member: msgs * 4 / 20 = 1000.
  for (const auto& [m, c] : load) {
    EXPECT_NEAR(static_cast<double>(c), 1000.0, 120.0);
  }
}

TEST(HashBasedTest, KLargerThanMembershipReturnsAll) {
  std::vector<MemberId> members = {1, 2, 3};
  EXPECT_EQ(hash_bufferers(MessageId{1, 1}, members, 10).size(), 3u);
  EXPECT_TRUE(hash_bufferers(MessageId{1, 1}, {}, 3).empty());
  EXPECT_TRUE(hash_bufferers(MessageId{1, 1}, members, 0).empty());
}

TEST(HashBasedTest, SelectedMemberKeepsOthersDropAfterGrace) {
  // Find a message where member 0 is (and one where it is not) selected.
  std::vector<MemberId> members(10);
  for (std::size_t i = 0; i < 10; ++i) members[i] = static_cast<MemberId>(i);
  std::uint64_t selected_seq = 0, unselected_seq = 0;
  for (std::uint64_t s = 1; s < 100 && (!selected_seq || !unselected_seq); ++s) {
    auto set = hash_bufferers(MessageId{1, s}, members, 3);
    bool mine = std::find(set.begin(), set.end(), MemberId{0}) != set.end();
    if (mine && !selected_seq) selected_seq = s;
    if (!mine && !unselected_seq) unselected_seq = s;
  }
  ASSERT_NE(selected_seq, 0u);
  ASSERT_NE(unselected_seq, 0u);

  FakePolicyEnv env(/*region_size=*/10, /*self=*/0);
  HashBasedPolicy p(HashBasedParams{3, Duration::millis(40),
                                    Duration::infinite()});
  p.bind(&env);
  p.store(make_data(1, selected_seq));
  p.store(make_data(1, unselected_seq));
  EXPECT_TRUE(p.is_long_term(MessageId{1, selected_seq}));
  EXPECT_FALSE(p.is_long_term(MessageId{1, unselected_seq}));
  env.advance(Duration::millis(50));
  EXPECT_TRUE(p.has(MessageId{1, selected_seq}));
  EXPECT_FALSE(p.has(MessageId{1, unselected_seq}));  // grace expired
  EXPECT_GT(p.hash_evaluations(), 0u);
}

// --------------------------------------------------------------- stability ----

TEST(StabilityPolicyTest, DiscardsOnlyBelowStableFrontier) {
  FakePolicyEnv env;
  StabilityPolicy p;
  p.bind(&env);
  for (std::uint64_t s = 1; s <= 10; ++s) p.store(make_data(1, s));
  p.store(make_data(2, 1));  // different source unaffected
  p.mark_stable_below(1, 6);
  for (std::uint64_t s = 1; s <= 5; ++s) EXPECT_FALSE(p.has(MessageId{1, s}));
  for (std::uint64_t s = 6; s <= 10; ++s) EXPECT_TRUE(p.has(MessageId{1, s}));
  EXPECT_TRUE(p.has(MessageId{2, 1}));
  EXPECT_TRUE(p.needs_history_exchange());
}

TEST(StabilityTrackerTest, FrontierIsMinimumOverMembers) {
  StabilityTracker t;
  t.update(0, proto::SourceHistory{1, 10, {}});
  t.update(1, proto::SourceHistory{1, 7, {}});
  t.update(2, proto::SourceHistory{1, 12, {}});
  std::vector<MemberId> expected = {0, 1, 2};
  EXPECT_EQ(t.stable_below(1, expected), 7u);
}

TEST(StabilityTrackerTest, UnreportedMemberGatesStability) {
  StabilityTracker t;
  t.update(0, proto::SourceHistory{1, 10, {}});
  std::vector<MemberId> expected = {0, 1};
  EXPECT_EQ(t.stable_below(1, expected), 0u);  // member 1 never reported
}

TEST(StabilityTrackerTest, ForgettingAMemberUnblocksFrontier) {
  StabilityTracker t;
  t.update(0, proto::SourceHistory{1, 10, {}});
  t.update(1, proto::SourceHistory{1, 2, {}});
  std::vector<MemberId> both = {0, 1};
  EXPECT_EQ(t.stable_below(1, both), 2u);
  t.forget_member(1);
  std::vector<MemberId> only0 = {0};
  EXPECT_EQ(t.stable_below(1, only0), 10u);
}

TEST(StabilityTrackerTest, ReportsOnlyAdvanceForward) {
  StabilityTracker t;
  t.update(0, proto::SourceHistory{1, 10, {}});
  t.update(0, proto::SourceHistory{1, 4, {}});  // stale report ignored
  std::vector<MemberId> expected = {0};
  EXPECT_EQ(t.stable_below(1, expected), 10u);
}

TEST(StabilityTrackerTest, ContiguousBitmapPrefixExtendsFrontier) {
  StabilityTracker t;
  // next_expected 5, bitmap covers 5,6,7 (bits 0..2 set) then a hole.
  t.update(0, proto::SourceHistory{1, 5, {0b0111}});
  std::vector<MemberId> expected = {0};
  EXPECT_EQ(t.stable_below(1, expected), 8u);
}

TEST(StabilityTrackerTest, UnknownSourceIsUnstable) {
  StabilityTracker t;
  std::vector<MemberId> expected = {0};
  EXPECT_EQ(t.stable_below(42, expected), 0u);
}

// ----------------------------------------------------------------- factory ----

TEST(FactoryTest, MakesEveryKind) {
  for (PolicyKind kind :
       {PolicyKind::kTwoPhase, PolicyKind::kFixedTime,
        PolicyKind::kBufferEverything, PolicyKind::kHashBased,
        PolicyKind::kStability}) {
    auto p = make_policy(kind);
    ASSERT_NE(p, nullptr);
    EXPECT_STREQ(p->name(), to_string(kind));
  }
}

}  // namespace
}  // namespace rrmp::buffer
