// Unit tests: the BufferStore storage layer, budget admission/eviction, and
// all five retention policies against a fake environment.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "buffer/factory.h"
#include "proto/codec.h"
#include "test_env.h"

namespace rrmp::buffer {
namespace {

using rrmp::testing::FakePolicyEnv;
using rrmp::testing::make_data;

template <typename Policy, typename... Args>
std::unique_ptr<BufferStore> make_store_of(FakePolicyEnv& env,
                                           BufferBudget budget,
                                           Args&&... args) {
  auto store = std::make_unique<BufferStore>(
      std::make_unique<Policy>(std::forward<Args>(args)...), budget);
  store->bind(&env);
  env.attach_store(store.get());
  return store;
}

// ------------------------------------------------------------- store core ----

TEST(BufferStoreTest, StoreGetHasAndAccounting) {
  FakePolicyEnv env;
  auto s = make_store_of<BufferEverythingPolicy>(env, {});
  proto::Data d = make_data(1, 1, 100);
  EXPECT_EQ(s->store(d), Admission::kStored);
  EXPECT_TRUE(s->has(d.id));
  EXPECT_EQ(s->count(), 1u);
  // One definition of "bytes": the wire-encoded Data frame, exactly what
  // the traffic stats would charge for this message.
  EXPECT_EQ(s->bytes(), proto::encoded_size(d));
  auto got = s->get(d.id);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, d.payload);
  EXPECT_FALSE(s->get(MessageId{9, 9}).has_value());
}

TEST(BufferStoreTest, DuplicateStoreIgnored) {
  FakePolicyEnv env;
  auto s = make_store_of<BufferEverythingPolicy>(env, {});
  EXPECT_EQ(s->store(make_data(1, 1)), Admission::kStored);
  EXPECT_EQ(s->store(make_data(1, 1)), Admission::kDuplicate);
  EXPECT_EQ(s->count(), 1u);
  EXPECT_EQ(s->stats().stored, 1u);
}

TEST(BufferStoreTest, ForceDiscardRemovesAndCounts) {
  FakePolicyEnv env;
  auto s = make_store_of<BufferEverythingPolicy>(env, {});
  proto::Data d = make_data(1, 1, 64);
  s->store(d);
  env.advance(Duration::millis(3));
  s->force_discard(d.id);
  EXPECT_FALSE(s->has(d.id));
  EXPECT_EQ(s->bytes(), 0u);
  EXPECT_EQ(s->stats().discarded, 1u);
  EXPECT_EQ(s->stats().total_buffer_time, Duration::millis(3));
}

TEST(BufferStoreTest, PeakTracking) {
  FakePolicyEnv env;
  auto s = make_store_of<BufferEverythingPolicy>(env, {});
  for (std::uint64_t q = 1; q <= 5; ++q) s->store(make_data(1, q, 10));
  std::size_t one = proto::encoded_size(make_data(1, 1, 10));
  s->force_discard(MessageId{1, 1});
  EXPECT_EQ(s->stats().peak_count, 5u);
  EXPECT_EQ(s->stats().peak_bytes, 5 * one);
  EXPECT_EQ(s->count(), 4u);
}

TEST(BufferStoreTest, ObserverSeesLifecycle) {
  FakePolicyEnv env;
  auto s = make_store_of<TwoPhasePolicy>(
      env, {}, TwoPhaseParams{Duration::millis(10), 10.0, Duration::infinite()});
  std::vector<std::pair<BufferEvent, bool>> events;
  s->set_observer([&](const MessageId&, BufferEvent ev, bool lt) {
    events.emplace_back(ev, lt);
  });
  s->store(make_data(1, 1));
  env.advance(Duration::millis(50));  // idle; C/n = 1.0 -> always promoted
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].first, BufferEvent::kStored);
  EXPECT_EQ(events[1].first, BufferEvent::kPromotedLongTerm);
  EXPECT_TRUE(events[1].second);
}

TEST(BufferStoreTest, BindTwiceThrows) {
  FakePolicyEnv env;
  BufferStore s(std::make_unique<BufferEverythingPolicy>());
  s.bind(&env);
  EXPECT_THROW(s.bind(&env), std::logic_error);
  BufferStore q(std::make_unique<BufferEverythingPolicy>());
  EXPECT_THROW(q.bind(nullptr), std::invalid_argument);
  EXPECT_THROW(BufferStore(nullptr), std::invalid_argument);
}

TEST(BufferStoreTest, EntriesIterateInIdOrder) {
  FakePolicyEnv env;
  auto s = make_store_of<BufferEverythingPolicy>(env, {});
  s->store(make_data(2, 5));
  s->store(make_data(1, 9));
  s->store(make_data(1, 2));
  s->store(make_data(2, 1));
  std::vector<MessageId> seen;
  s->for_each_entry([&](const BufferStore::EntryView& e) {
    seen.push_back(e.id);
  });
  std::vector<MessageId> want = {{1, 2}, {1, 9}, {2, 1}, {2, 5}};
  EXPECT_EQ(seen, want);
}

// --------------------------------------------------------- budget/eviction ----

BufferBudget bytes_budget(std::size_t max_bytes) {
  return BufferBudget{max_bytes, 0};
}

TEST(BufferBudgetTest, EvictsToAdmitWhenOverBytes) {
  FakePolicyEnv env;
  std::size_t one = proto::encoded_size(make_data(1, 1, 64));
  auto s = make_store_of<BufferEverythingPolicy>(env, bytes_budget(3 * one));
  std::vector<std::pair<MessageId, BufferEvent>> events;
  s->set_observer([&](const MessageId& id, BufferEvent ev, bool) {
    events.emplace_back(id, ev);
  });
  for (std::uint64_t q = 1; q <= 3; ++q) s->store(make_data(1, q, 64));
  EXPECT_EQ(s->count(), 3u);
  EXPECT_EQ(s->store(make_data(1, 4, 64)), Admission::kStored);
  // Same age, same phase: the deterministic tie-break evicts the smallest id.
  EXPECT_FALSE(s->has(MessageId{1, 1}));
  EXPECT_TRUE(s->has(MessageId{1, 4}));
  EXPECT_EQ(s->count(), 3u);
  EXPECT_LE(s->bytes(), 3 * one);
  EXPECT_EQ(s->stats().evicted, 1u);
  EXPECT_EQ(s->stats().discarded, 0u);
  // Observer saw the eviction before the new store.
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(events[events.size() - 2],
            (std::pair<MessageId, BufferEvent>{{1, 1}, BufferEvent::kEvicted}));
  EXPECT_EQ(events.back(),
            (std::pair<MessageId, BufferEvent>{{1, 4}, BufferEvent::kStored}));
}

TEST(BufferBudgetTest, CountBudgetEnforced) {
  FakePolicyEnv env;
  auto s = make_store_of<BufferEverythingPolicy>(env, BufferBudget{0, 2});
  for (std::uint64_t q = 1; q <= 5; ++q) s->store(make_data(1, q));
  EXPECT_EQ(s->count(), 2u);
  EXPECT_EQ(s->stats().evicted, 3u);
  EXPECT_TRUE(s->has(MessageId{1, 4}));
  EXPECT_TRUE(s->has(MessageId{1, 5}));
}

TEST(BufferBudgetTest, MessageLargerThanWholeBudgetRejected) {
  FakePolicyEnv env;
  auto s = make_store_of<BufferEverythingPolicy>(env, bytes_budget(64));
  s->store(make_data(1, 1, 16));
  std::size_t before = s->bytes();
  std::vector<BufferEvent> events;
  s->set_observer([&](const MessageId&, BufferEvent ev, bool) {
    events.push_back(ev);
  });
  EXPECT_EQ(s->store(make_data(1, 2, 4096)), Admission::kRejected);
  // Nothing was stored AND nothing already buffered was sacrificed for a
  // message that could never fit.
  EXPECT_FALSE(s->has(MessageId{1, 2}));
  EXPECT_TRUE(s->has(MessageId{1, 1}));
  EXPECT_EQ(s->bytes(), before);
  EXPECT_EQ(s->stats().rejected, 1u);
  EXPECT_EQ(s->stats().evicted, 0u);
  EXPECT_TRUE(events.empty());
}

TEST(BufferBudgetTest, EvictionPrefersShortTermLeastRecentlyActive) {
  FakePolicyEnv env;
  auto s = make_store_of<BufferEverythingPolicy>(env, BufferBudget{0, 3});
  s->store(make_data(1, 1));
  s->promote_long_term(MessageId{1, 1});  // recovery capital: evicted last
  env.advance(Duration::millis(1));
  s->store(make_data(1, 2));  // short-term, oldest activity
  env.advance(Duration::millis(1));
  s->store(make_data(1, 3));  // short-term, fresher
  s->store(make_data(1, 4));
  EXPECT_FALSE(s->has(MessageId{1, 2}));  // LRU short-term went first
  EXPECT_TRUE(s->has(MessageId{1, 1}));   // long-term survives
  EXPECT_TRUE(s->has(MessageId{1, 3}));
  EXPECT_TRUE(s->has(MessageId{1, 4}));
}

TEST(BufferBudgetTest, EvictionCancelsPendingEntryTimer) {
  FakePolicyEnv env;
  // Fixed-time arms one discard timer per entry; eviction must cancel it so
  // no stale slab handle fires later.
  auto s = make_store_of<FixedTimePolicy>(env, BufferBudget{0, 1},
                                          Duration::millis(100));
  s->store(make_data(1, 1));
  EXPECT_EQ(env.sim().pending_count(), 1u);
  s->store(make_data(1, 2));  // evicts {1,1}; its TTL timer must die with it
  EXPECT_EQ(s->stats().evicted, 1u);
  EXPECT_EQ(env.sim().pending_count(), 1u);  // only {1,2}'s timer remains
  env.advance(Duration::millis(200));
  EXPECT_FALSE(s->has(MessageId{1, 2}));
  // Exactly one policy discard fired ({1,2}'s TTL); the evicted entry's
  // cancelled timer did not double-count.
  EXPECT_EQ(s->stats().discarded, 1u);
  EXPECT_EQ(s->stats().evicted, 1u);
  EXPECT_EQ(s->stats().stored,
            s->stats().discarded + s->stats().evicted + s->count());
}

TEST(BufferBudgetTest, EvictionRacesIdleCheckSafely) {
  FakePolicyEnv env;
  // Two-phase arms an idle check per entry. Evict an entry while its check
  // is pending, let the wheel advance: the cancelled check must not fire,
  // and a re-stored id gets a fresh lifecycle.
  auto s = make_store_of<TwoPhasePolicy>(
      env, BufferBudget{0, 1},
      TwoPhaseParams{Duration::millis(40), 0.0, Duration::infinite()});
  s->store(make_data(1, 1));
  env.advance(Duration::millis(10));
  s->store(make_data(1, 2));  // evicts {1,1} mid idle-countdown
  EXPECT_EQ(s->stats().evicted, 1u);
  s->store(make_data(1, 1));  // re-admitted: evicts {1,2}, fresh timer
  EXPECT_EQ(s->stats().evicted, 2u);
  env.advance(Duration::millis(60));  // C=0: idle check discards {1,1}
  EXPECT_FALSE(s->has(MessageId{1, 1}));
  EXPECT_EQ(s->stats().discarded, 1u);
  EXPECT_EQ(env.sim().pending_count(), 0u);  // nothing dangling
}

TEST(BufferBudgetTest, DrainForHandoffInteractsWithFullStore) {
  FakePolicyEnv env;
  auto s = make_store_of<TwoPhasePolicy>(
      env, BufferBudget{0, 3},
      TwoPhaseParams{Duration::millis(40), 0.0, Duration::infinite()});
  s->accept_handoff(make_data(1, 1));  // long-term
  s->store(make_data(1, 2));           // short-term
  s->accept_handoff(make_data(1, 3));  // long-term; store now at budget
  auto drained = s->drain_for_handoff();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(s->count(), 1u);
  EXPECT_EQ(s->stats().handed_off, 2u);
  // The drain freed budget: new admissions (and handoffs) fit again without
  // evicting the remaining short-term entry.
  EXPECT_EQ(s->accept_handoff(make_data(1, 4)), Admission::kStored);
  EXPECT_EQ(s->store(make_data(1, 5)), Admission::kStored);
  EXPECT_EQ(s->stats().evicted, 0u);
  // One more admission at budget evicts the short-term entry, never the
  // handed-off long-term copy.
  EXPECT_EQ(s->store(make_data(1, 6)), Admission::kStored);
  EXPECT_FALSE(s->has(MessageId{1, 2}));
  EXPECT_TRUE(s->has(MessageId{1, 4}));
}

TEST(BufferBudgetTest, ShedHandoffsCountedSeparatelyFromEvictions) {
  // Capacity reports must distinguish recoverable departures (the copy
  // moved to a neighbor) from lost ones (the copy died). One run forces
  // both: a sole-copy victim is shed, a digest-advertised victim is
  // evicted, and the two stats never bleed into each other — nor into the
  // policy-discard or leave-handoff counters.
  FakePolicyEnv env(/*region_size=*/4, /*self=*/0, /*seed=*/3);
  CoordinationParams coord;
  coord.enabled = true;
  // Entries younger than one digest period are evicted, never shed (the
  // anti-ping-pong age gate); keep the period below the test's advances.
  coord.digest_interval = Duration::millis(1);
  auto store = std::make_unique<BufferStore>(
      std::make_unique<BufferEverythingPolicy>(), BufferBudget{0, 2}, coord);
  store->bind(&env);
  env.attach_store(store.get());
  std::size_t shed_sends = 0;
  store->set_shed_handler([&](const proto::Data&, MemberId) {
    ++shed_sends;
    return true;
  });
  std::vector<std::pair<MessageId, BufferEvent>> events;
  store->set_observer([&](const MessageId& id, BufferEvent ev, bool) {
    events.emplace_back(id, ev);
  });

  store->digests().update(2, 0, {});  // an empty neighbor: the shed target
  store->store(make_data(1, 1));      // sole copy
  env.advance(Duration::millis(1));
  store->store(make_data(1, 2));
  store->store(make_data(1, 3));  // pressure: sole-copy LRU {1,1} sheds
  EXPECT_EQ(store->stats().shed, 1u);
  EXPECT_EQ(store->stats().evicted, 0u);
  EXPECT_EQ(shed_sends, 1u);
  EXPECT_TRUE(std::count(events.begin(), events.end(),
                         std::pair<MessageId, BufferEvent>{
                             {1, 1}, BufferEvent::kShedHandoff}) == 1);

  store->digests().update(2, 0, {{1, 2, 1}});  // {1,2} now redundant
  store->store(make_data(1, 4));               // pressure: evicts {1,2}
  EXPECT_EQ(store->stats().shed, 1u);     // unchanged
  EXPECT_EQ(store->stats().evicted, 1u);  // the lost departure
  EXPECT_EQ(shed_sends, 1u);

  // The other departure kinds stay in their own columns.
  store->force_discard(MessageId{1, 3});
  EXPECT_EQ(store->stats().discarded, 1u);
  auto drained = store->drain_for_handoff();
  EXPECT_EQ(store->stats().handed_off, drained.size());
  EXPECT_EQ(store->stats().shed, 1u);
  EXPECT_EQ(store->stats().evicted, 1u);
  // Conservation across all five exits.
  EXPECT_EQ(store->stats().stored,
            store->count() + store->stats().discarded +
                store->stats().evicted + store->stats().shed +
                store->stats().handed_off);
}

TEST(BufferBudgetTest, ShedFallsBackToEvictionWithoutTargetOrHandler) {
  // No digest-advertised neighbor (or no transport): the sole copy is
  // evicted, never silently dropped on the floor mid-admission.
  FakePolicyEnv env(/*region_size=*/4, /*self=*/0, /*seed=*/3);
  CoordinationParams coord;
  coord.enabled = true;
  coord.digest_interval = Duration::millis(1);
  auto store = std::make_unique<BufferStore>(
      std::make_unique<BufferEverythingPolicy>(), BufferBudget{0, 1}, coord);
  store->bind(&env);
  env.attach_store(store.get());
  store->store(make_data(1, 1));
  env.advance(Duration::millis(2));
  store->store(make_data(1, 2));  // no handler, empty digest table
  EXPECT_EQ(store->stats().evicted, 1u);
  EXPECT_EQ(store->stats().shed, 0u);
  EXPECT_TRUE(store->has(MessageId{1, 2}));

  // A handler that declines (transport down) falls back the same way.
  store->set_shed_handler([](const proto::Data&, MemberId) { return false; });
  store->digests().update(2, 0, {});
  env.advance(Duration::millis(2));
  store->store(make_data(1, 3));
  EXPECT_EQ(store->stats().evicted, 2u);
  EXPECT_EQ(store->stats().shed, 0u);

  // And a handoff-received copy younger than one digest period is never
  // offered at all, even with a willing handler and target: the
  // anti-ping-pong gate stops a just-shed copy from bouncing onward.
  std::size_t offered = 0;
  store->set_shed_handler([&](const proto::Data&, MemberId) {
    ++offered;
    return true;
  });
  env.advance(Duration::millis(2));
  store->force_discard(MessageId{1, 3});
  store->accept_handoff(make_data(1, 4));  // a neighbor's shed just landed
  store->store(make_data(1, 5));           // pressure this same instant
  EXPECT_EQ(offered, 0u);
  EXPECT_EQ(store->stats().shed, 0u);
  EXPECT_FALSE(store->has(MessageId{1, 4}));  // evicted, not bounced

  // Aged past one digest period, the same provenance becomes sheddable.
  store->force_discard(MessageId{1, 5});
  store->accept_handoff(make_data(1, 6));
  env.advance(Duration::millis(2));
  store->store(make_data(1, 7));
  EXPECT_EQ(offered, 1u);
  EXPECT_EQ(store->stats().shed, 1u);
}

TEST(BufferBudgetTest, ShedTargetDepartedCountsEvictedNotShed) {
  // Digest advertisements lag the membership view by up to one period: a
  // neighbor that advertised plenty of free space can depart and still sit
  // in the digest table looking like the best shed target. An eviction in
  // that window must count the copy as *evicted* — there is nobody to
  // receive it, and "shed" promises the copy survived. Target selection
  // filters candidates by the live member list, so the stale advertisement
  // is never offered to the handler at all.
  FakePolicyEnv env(/*region_size=*/4, /*self=*/0, /*seed=*/3);
  CoordinationParams coord;
  coord.enabled = true;
  coord.digest_interval = Duration::millis(1);
  auto store = std::make_unique<BufferStore>(
      std::make_unique<BufferEverythingPolicy>(), BufferBudget{0, 1}, coord);
  store->bind(&env);
  env.attach_store(store.get());
  std::size_t offered = 0;
  store->set_shed_handler([&](const proto::Data&, MemberId) {
    ++offered;
    return true;
  });

  store->digests().update(2, 0, {});  // peer 2: the obvious shed target...
  env.set_members({0, 1, 3});         // ...which has already departed
  store->store(make_data(1, 1));      // sole copy
  env.advance(Duration::millis(2));   // past the anti-ping-pong age gate
  store->store(make_data(1, 2));      // pressure: {1,1} must go
  EXPECT_EQ(offered, 0u);
  EXPECT_EQ(store->stats().evicted, 1u);
  EXPECT_EQ(store->stats().shed, 0u);

  // Once a *live* alternative advertises space, shedding resumes.
  store->digests().update(3, 0, {});
  env.advance(Duration::millis(2));
  store->store(make_data(1, 3));
  EXPECT_EQ(offered, 1u);
  EXPECT_EQ(store->stats().shed, 1u);
  EXPECT_EQ(store->stats().evicted, 1u);
}

TEST(BufferBudgetTest, BudgetStateVisibleThroughEnv) {
  FakePolicyEnv env;
  auto s = make_store_of<BufferEverythingPolicy>(env, bytes_budget(4096));
  s->store(make_data(1, 1, 100));
  BudgetState bs = env.budget();
  EXPECT_EQ(bs.bytes, s->bytes());
  EXPECT_EQ(bs.count, 1u);
  EXPECT_EQ(bs.limit.max_bytes, 4096u);
  EXPECT_FALSE(bs.limit.unlimited());
}

TEST(BufferBudgetTest, UnlimitedByDefault) {
  EXPECT_TRUE(BufferBudget{}.unlimited());
  EXPECT_FALSE((BufferBudget{1, 0}).unlimited());
  EXPECT_FALSE((BufferBudget{0, 1}).unlimited());
}

// -------------------------------------------------------------- two-phase ----

TwoPhaseParams tp(Duration idle, double c,
                  Duration ttl = Duration::infinite()) {
  return TwoPhaseParams{idle, c, ttl};
}

TEST(TwoPhaseTest, IdleMessageDiscardedAfterThresholdWhenCZero) {
  FakePolicyEnv env;
  auto s = make_store_of<TwoPhasePolicy>(env, {}, tp(Duration::millis(40), 0.0));
  s->store(make_data(1, 1));
  env.advance(Duration::millis(39));
  EXPECT_TRUE(s->has(MessageId{1, 1}));
  env.advance(Duration::millis(2));
  EXPECT_FALSE(s->has(MessageId{1, 1}));
}

TEST(TwoPhaseTest, RequestFeedbackExtendsShortTermBuffering) {
  FakePolicyEnv env;
  auto s = make_store_of<TwoPhasePolicy>(env, {}, tp(Duration::millis(40), 0.0));
  MessageId id{1, 1};
  s->store(make_data(1, 1));
  // Keep poking every 30 ms: the idle threshold never elapses.
  for (int i = 0; i < 5; ++i) {
    env.advance(Duration::millis(30));
    s->on_request_seen(id);
    EXPECT_TRUE(s->has(id));
  }
  // Silence for T: now it goes.
  env.advance(Duration::millis(41));
  EXPECT_FALSE(s->has(id));
}

TEST(TwoPhaseTest, AlwaysPromotedWhenCEqualsRegionSize) {
  FakePolicyEnv env(/*region_size=*/10);
  auto s = make_store_of<TwoPhasePolicy>(env, {}, tp(Duration::millis(10), 10.0));
  s->store(make_data(1, 1));
  env.advance(Duration::millis(20));
  EXPECT_TRUE(s->has(MessageId{1, 1}));
  EXPECT_TRUE(s->is_long_term(MessageId{1, 1}));
}

TEST(TwoPhaseTest, PromotionProbabilityIsCOverN) {
  FakePolicyEnv env(/*region_size=*/10, /*self=*/0, /*seed=*/99);
  auto s = make_store_of<TwoPhasePolicy>(env, {}, tp(Duration::millis(5), 3.0));
  const int n = 4000;
  for (std::uint64_t q = 1; q <= n; ++q) s->store(make_data(1, q));
  env.advance(Duration::millis(10));
  double kept = static_cast<double>(s->count()) / n;
  EXPECT_NEAR(kept, 0.3, 0.03);
  EXPECT_EQ(s->stats().promoted_long_term, s->count());
}

TEST(TwoPhaseTest, LongTermTtlEventuallyDiscards) {
  FakePolicyEnv env;
  auto s = make_store_of<TwoPhasePolicy>(
      env, {}, tp(Duration::millis(10), 10.0, Duration::millis(100)));
  s->store(make_data(1, 1));
  env.advance(Duration::millis(20));  // promoted at ~10ms
  EXPECT_TRUE(s->is_long_term(MessageId{1, 1}));
  env.advance(Duration::millis(200));
  EXPECT_FALSE(s->has(MessageId{1, 1}));
}

TEST(TwoPhaseTest, LongTermTtlRefreshedByRequests) {
  FakePolicyEnv env;
  auto s = make_store_of<TwoPhasePolicy>(
      env, {}, tp(Duration::millis(10), 10.0, Duration::millis(100)));
  MessageId id{1, 1};
  s->store(make_data(1, 1));
  env.advance(Duration::millis(20));
  ASSERT_TRUE(s->is_long_term(id));
  // Requests every 80 ms keep it alive past several TTLs.
  for (int i = 0; i < 4; ++i) {
    env.advance(Duration::millis(80));
    s->on_request_seen(id);
  }
  EXPECT_TRUE(s->has(id));
  env.advance(Duration::millis(150));
  EXPECT_FALSE(s->has(id));
}

TEST(TwoPhaseTest, HandoffAcceptedAsLongTermImmediately) {
  FakePolicyEnv env;
  auto s = make_store_of<TwoPhasePolicy>(env, {},
                                         tp(Duration::millis(10), 0.0));
  s->accept_handoff(make_data(1, 1));
  EXPECT_TRUE(s->is_long_term(MessageId{1, 1}));
  env.advance(Duration::millis(100));
  EXPECT_TRUE(s->has(MessageId{1, 1}));  // no idle discard for long-term
}

TEST(TwoPhaseTest, HandoffUpgradesExistingShortTermEntry) {
  FakePolicyEnv env;
  auto s = make_store_of<TwoPhasePolicy>(env, {},
                                         tp(Duration::millis(40), 0.0));
  s->store(make_data(1, 1));
  EXPECT_FALSE(s->is_long_term(MessageId{1, 1}));
  EXPECT_EQ(s->accept_handoff(make_data(1, 1)), Admission::kDuplicate);
  EXPECT_TRUE(s->is_long_term(MessageId{1, 1}));
  env.advance(Duration::millis(100));
  EXPECT_TRUE(s->has(MessageId{1, 1}));  // upgraded entries survive idling
}

TEST(TwoPhaseTest, DrainForHandoffReturnsOnlyLongTerm) {
  FakePolicyEnv env;
  auto s = make_store_of<TwoPhasePolicy>(env, {},
                                         tp(Duration::millis(40), 0.0));
  s->store(make_data(1, 1));             // short-term
  s->accept_handoff(make_data(1, 2));    // long-term
  s->accept_handoff(make_data(1, 3));    // long-term
  auto drained = s->drain_for_handoff();
  EXPECT_EQ(drained.size(), 2u);
  EXPECT_FALSE(s->has(MessageId{1, 2}));
  EXPECT_FALSE(s->has(MessageId{1, 3}));
  EXPECT_TRUE(s->has(MessageId{1, 1}));  // short-term entry not transferred
  EXPECT_EQ(s->stats().handed_off, 2u);
}

// -------------------------------------------------------------- fixed-time ----

TEST(FixedTimeTest, DiscardsExactlyAfterTtl) {
  FakePolicyEnv env;
  auto s = make_store_of<FixedTimePolicy>(env, {}, Duration::millis(100));
  s->store(make_data(1, 1));
  env.advance(Duration::millis(99));
  EXPECT_TRUE(s->has(MessageId{1, 1}));
  env.advance(Duration::millis(2));
  EXPECT_FALSE(s->has(MessageId{1, 1}));
}

TEST(FixedTimeTest, RequestsDoNotExtendLifetime) {
  FakePolicyEnv env;
  auto s = make_store_of<FixedTimePolicy>(env, {}, Duration::millis(100));
  MessageId id{1, 1};
  s->store(make_data(1, 1));
  for (int i = 0; i < 9; ++i) {
    env.advance(Duration::millis(10));
    s->on_request_seen(id);
  }
  env.advance(Duration::millis(15));
  EXPECT_FALSE(s->has(id));  // Bimodal's policy ignores demand
}

TEST(FixedTimeTest, StaggeredStoresExpireIndependently) {
  FakePolicyEnv env;
  auto s = make_store_of<FixedTimePolicy>(env, {}, Duration::millis(50));
  s->store(make_data(1, 1));
  env.advance(Duration::millis(30));
  s->store(make_data(1, 2));
  env.advance(Duration::millis(25));  // t=55: first gone, second alive
  EXPECT_FALSE(s->has(MessageId{1, 1}));
  EXPECT_TRUE(s->has(MessageId{1, 2}));
}

// ------------------------------------------------------- buffer-everything ----

TEST(BufferEverythingTest, NeverDiscards) {
  FakePolicyEnv env;
  auto s = make_store_of<BufferEverythingPolicy>(env, {});
  for (std::uint64_t q = 1; q <= 100; ++q) s->store(make_data(1, q));
  env.advance(Duration::seconds(100));
  EXPECT_EQ(s->count(), 100u);
  EXPECT_EQ(s->stats().discarded, 0u);
}

TEST(BufferEverythingTest, DrainsEverythingOnHandoff) {
  FakePolicyEnv env;
  auto s = make_store_of<BufferEverythingPolicy>(env, {});
  for (std::uint64_t q = 1; q <= 10; ++q) s->store(make_data(1, q));
  auto drained = s->drain_for_handoff();
  EXPECT_EQ(drained.size(), 10u);
  EXPECT_EQ(s->count(), 0u);
}

// ------------------------------------------------------------- hash-based ----

TEST(HashBasedTest, ScoreIsDeterministic) {
  MessageId id{1, 7};
  EXPECT_EQ(hash_score(id, 3), hash_score(id, 3));
  EXPECT_NE(hash_score(id, 3), hash_score(id, 4));
  EXPECT_NE(hash_score(id, 3), hash_score(MessageId{1, 8}, 3));
}

TEST(HashBasedTest, BuffererSetDeterministicAndOrderIndependent) {
  std::vector<MemberId> a = {0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<MemberId> b = {7, 3, 5, 1, 6, 0, 2, 4};
  MessageId id{2, 42};
  auto sa = hash_bufferers(id, a, 3);
  auto sb = hash_bufferers(id, b, 3);
  EXPECT_EQ(sa, sb);
  EXPECT_EQ(sa.size(), 3u);
}

TEST(HashBasedTest, BuffererSetVariesByMessage) {
  std::vector<MemberId> members(50);
  for (std::size_t i = 0; i < 50; ++i) members[i] = static_cast<MemberId>(i);
  std::set<std::vector<MemberId>> sets;
  for (std::uint64_t q = 1; q <= 30; ++q) {
    sets.insert(hash_bufferers(MessageId{1, q}, members, 5));
  }
  EXPECT_GT(sets.size(), 25u);  // essentially always different
}

TEST(HashBasedTest, SelectionIsBalancedAcrossMembers) {
  std::vector<MemberId> members(20);
  for (std::size_t i = 0; i < 20; ++i) members[i] = static_cast<MemberId>(i);
  std::map<MemberId, int> load;
  const int msgs = 5000;
  for (std::uint64_t q = 1; q <= msgs; ++q) {
    for (MemberId m : hash_bufferers(MessageId{1, q}, members, 4)) ++load[m];
  }
  // Expected load per member: msgs * 4 / 20 = 1000.
  for (const auto& [m, c] : load) {
    EXPECT_NEAR(static_cast<double>(c), 1000.0, 120.0);
  }
}

TEST(HashBasedTest, KLargerThanMembershipReturnsAll) {
  std::vector<MemberId> members = {1, 2, 3};
  EXPECT_EQ(hash_bufferers(MessageId{1, 1}, members, 10).size(), 3u);
  EXPECT_TRUE(hash_bufferers(MessageId{1, 1}, {}, 3).empty());
  EXPECT_TRUE(hash_bufferers(MessageId{1, 1}, members, 0).empty());
}

TEST(HashBasedTest, SelectedMemberKeepsOthersDropAfterGrace) {
  // Find a message where member 0 is (and one where it is not) selected.
  std::vector<MemberId> members(10);
  for (std::size_t i = 0; i < 10; ++i) members[i] = static_cast<MemberId>(i);
  std::uint64_t selected_seq = 0, unselected_seq = 0;
  for (std::uint64_t q = 1; q < 100 && (!selected_seq || !unselected_seq); ++q) {
    auto set = hash_bufferers(MessageId{1, q}, members, 3);
    bool mine = std::find(set.begin(), set.end(), MemberId{0}) != set.end();
    if (mine && !selected_seq) selected_seq = q;
    if (!mine && !unselected_seq) unselected_seq = q;
  }
  ASSERT_NE(selected_seq, 0u);
  ASSERT_NE(unselected_seq, 0u);

  FakePolicyEnv env(/*region_size=*/10, /*self=*/0);
  auto policy = std::make_unique<HashBasedPolicy>(
      HashBasedParams{3, Duration::millis(40), Duration::infinite()});
  HashBasedPolicy* hp = policy.get();
  BufferStore s(std::move(policy));
  s.bind(&env);
  s.store(make_data(1, selected_seq));
  s.store(make_data(1, unselected_seq));
  EXPECT_TRUE(s.is_long_term(MessageId{1, selected_seq}));
  EXPECT_FALSE(s.is_long_term(MessageId{1, unselected_seq}));
  env.advance(Duration::millis(50));
  EXPECT_TRUE(s.has(MessageId{1, selected_seq}));
  EXPECT_FALSE(s.has(MessageId{1, unselected_seq}));  // grace expired
  EXPECT_GT(hp->hash_evaluations(), 0u);
}

TEST(HashBasedTest, HandoffSurvivesDespiteNotBeingHashSelected) {
  // A transferred copy (leave handoff or coordination shed) lands on a
  // member chosen by load, not by hash. The policy must accept the
  // responsibility: neither the fresh-insert path nor a grace timer
  // already pending on a short-term duplicate may destroy the copy the
  // transfer was meant to preserve.
  std::vector<MemberId> members(10);
  for (std::size_t i = 0; i < 10; ++i) members[i] = static_cast<MemberId>(i);
  std::uint64_t unselected_seq = 0;
  for (std::uint64_t q = 1; q < 100 && !unselected_seq; ++q) {
    auto set = hash_bufferers(MessageId{1, q}, members, 3);
    if (std::find(set.begin(), set.end(), MemberId{0}) == set.end()) {
      unselected_seq = q;
    }
  }
  ASSERT_NE(unselected_seq, 0u);

  // Fresh insert via handoff: long-term immediately, no grace discard.
  FakePolicyEnv env(/*region_size=*/10, /*self=*/0);
  auto s = make_store_of<HashBasedPolicy>(
      env, {}, HashBasedParams{3, Duration::millis(40), Duration::infinite()});
  s->accept_handoff(make_data(1, unselected_seq));
  EXPECT_TRUE(s->is_long_term(MessageId{1, unselected_seq}));
  env.advance(Duration::millis(100));
  EXPECT_TRUE(s->has(MessageId{1, unselected_seq}));

  // Grace pending, then upgraded by a handoff: the grace expiry must spare
  // the now-long-term entry.
  FakePolicyEnv env2(/*region_size=*/10, /*self=*/0);
  auto s2 = make_store_of<HashBasedPolicy>(
      env2, {}, HashBasedParams{3, Duration::millis(40), Duration::infinite()});
  s2->store(make_data(1, unselected_seq));  // non-bufferer: grace armed
  env2.advance(Duration::millis(10));
  EXPECT_EQ(s2->accept_handoff(make_data(1, unselected_seq)),
            Admission::kDuplicate);
  EXPECT_TRUE(s2->is_long_term(MessageId{1, unselected_seq}));
  env2.advance(Duration::millis(100));  // grace fires mid-way; must spare it
  EXPECT_TRUE(s2->has(MessageId{1, unselected_seq}));
  EXPECT_EQ(env2.sim().pending_count(), 0u);  // spent handle was cleared
}

// --------------------------------------------------------------- stability ----

TEST(StabilityPolicyTest, DiscardsOnlyBelowStableFrontier) {
  FakePolicyEnv env;
  auto policy = std::make_unique<StabilityPolicy>();
  StabilityPolicy* sp = policy.get();
  BufferStore s(std::move(policy));
  s.bind(&env);
  for (std::uint64_t q = 1; q <= 10; ++q) s.store(make_data(1, q));
  s.store(make_data(2, 1));  // different source unaffected
  sp->mark_stable_below(1, 6);
  for (std::uint64_t q = 1; q <= 5; ++q) EXPECT_FALSE(s.has(MessageId{1, q}));
  for (std::uint64_t q = 6; q <= 10; ++q) EXPECT_TRUE(s.has(MessageId{1, q}));
  EXPECT_TRUE(s.has(MessageId{2, 1}));
  EXPECT_TRUE(sp->needs_history_exchange());
}

TEST(StabilityTrackerTest, FrontierIsMinimumOverMembers) {
  StabilityTracker t;
  t.update(0, proto::SourceHistory{1, 10, {}});
  t.update(1, proto::SourceHistory{1, 7, {}});
  t.update(2, proto::SourceHistory{1, 12, {}});
  std::vector<MemberId> expected = {0, 1, 2};
  EXPECT_EQ(t.stable_below(1, expected), 7u);
}

TEST(StabilityTrackerTest, UnreportedMemberGatesStability) {
  StabilityTracker t;
  t.update(0, proto::SourceHistory{1, 10, {}});
  std::vector<MemberId> expected = {0, 1};
  EXPECT_EQ(t.stable_below(1, expected), 0u);  // member 1 never reported
}

TEST(StabilityTrackerTest, ForgettingAMemberUnblocksFrontier) {
  StabilityTracker t;
  t.update(0, proto::SourceHistory{1, 10, {}});
  t.update(1, proto::SourceHistory{1, 2, {}});
  std::vector<MemberId> both = {0, 1};
  EXPECT_EQ(t.stable_below(1, both), 2u);
  t.forget_member(1);
  std::vector<MemberId> only0 = {0};
  EXPECT_EQ(t.stable_below(1, only0), 10u);
}

TEST(StabilityTrackerTest, ReportsOnlyAdvanceForward) {
  StabilityTracker t;
  t.update(0, proto::SourceHistory{1, 10, {}});
  t.update(0, proto::SourceHistory{1, 4, {}});  // stale report ignored
  std::vector<MemberId> expected = {0};
  EXPECT_EQ(t.stable_below(1, expected), 10u);
}

TEST(StabilityTrackerTest, ContiguousBitmapPrefixExtendsFrontier) {
  StabilityTracker t;
  // next_expected 5, bitmap covers 5,6,7 (bits 0..2 set) then a hole.
  t.update(0, proto::SourceHistory{1, 5, {0b0111}});
  std::vector<MemberId> expected = {0};
  EXPECT_EQ(t.stable_below(1, expected), 8u);
}

TEST(StabilityTrackerTest, UnknownSourceIsUnstable) {
  StabilityTracker t;
  std::vector<MemberId> expected = {0};
  EXPECT_EQ(t.stable_below(42, expected), 0u);
}

// ----------------------------------------------------------------- factory ----

TEST(FactoryTest, MakesEveryKind) {
  for (PolicyKind kind :
       {PolicyKind::kTwoPhase, PolicyKind::kFixedTime,
        PolicyKind::kBufferEverything, PolicyKind::kHashBased,
        PolicyKind::kStability}) {
    PolicySpec spec = default_spec(kind);
    EXPECT_EQ(kind_of(spec), kind);
    auto p = make_policy(spec);
    ASSERT_NE(p, nullptr);
    EXPECT_STREQ(p->name(), to_string(kind));
    auto s = make_store(spec, BufferBudget{1024, 8});
    ASSERT_NE(s, nullptr);
    EXPECT_STREQ(s->name(), to_string(kind));
    EXPECT_EQ(s->budget().max_bytes, 1024u);
  }
}

TEST(FactoryTest, KindFromNameRoundTrips) {
  for (PolicyKind kind :
       {PolicyKind::kTwoPhase, PolicyKind::kFixedTime,
        PolicyKind::kBufferEverything, PolicyKind::kHashBased,
        PolicyKind::kStability}) {
    PolicyKind parsed;
    ASSERT_TRUE(kind_from_name(to_string(kind), parsed));
    EXPECT_EQ(parsed, kind);
  }
  PolicyKind parsed;
  EXPECT_FALSE(kind_from_name("bogus", parsed));
}

TEST(FactoryTest, SpecsAreSelfDescribing) {
  EXPECT_EQ(describe(TwoPhaseParams{Duration::millis(40), 6.0,
                                    Duration::infinite()}),
            "two-phase(T=40ms, C=6, ttl=inf)");
  EXPECT_EQ(describe(FixedTimeParams{Duration::millis(120)}),
            "fixed-time(ttl=120ms)");
  EXPECT_EQ(describe(BufferEverythingParams{}), "buffer-everything()");
  EXPECT_EQ(describe(HashBasedParams{4, Duration::millis(20),
                                     Duration::infinite()}),
            "hash-based(k=4, grace=20ms, ttl=inf)");
  EXPECT_EQ(describe(StabilityParams{}), "stability()");
}

}  // namespace
}  // namespace rrmp::buffer
