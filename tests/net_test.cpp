// Unit tests: topology/latency model, loss models, simulated network.
#include <gtest/gtest.h>

#include "net/sim_network.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace rrmp::net {
namespace {

TEST(TopologyTest, RegionsAndMembers) {
  Topology topo;
  RegionId r0 = topo.add_region("root", std::nullopt);
  RegionId r1 = topo.add_region("child", r0);
  auto a = topo.add_members(r0, 3);
  auto b = topo.add_members(r1, 2);
  EXPECT_EQ(topo.member_count(), 5u);
  EXPECT_EQ(topo.region_count(), 2u);
  EXPECT_EQ(topo.members_of(r0), a);
  EXPECT_EQ(topo.members_of(r1), b);
  for (MemberId m : a) EXPECT_EQ(topo.region_of(m), r0);
  for (MemberId m : b) EXPECT_EQ(topo.region_of(m), r1);
  EXPECT_FALSE(topo.parent_of(r0).has_value());
  EXPECT_EQ(topo.parent_of(r1), r0);
  EXPECT_EQ(topo.region_name(r1), "child");
}

TEST(TopologyTest, UnknownParentThrows) {
  Topology topo;
  EXPECT_THROW(topo.add_region("x", RegionId{5}), std::out_of_range);
  EXPECT_THROW(topo.add_member(RegionId{0}), std::out_of_range);
}

TEST(TopologyTest, IntraRegionLatencyIsHalfRtt) {
  Topology topo;
  RegionId r = topo.add_region("r", std::nullopt, Duration::millis(10));
  auto ms = topo.add_members(r, 2);
  EXPECT_EQ(topo.one_way_latency(ms[0], ms[1]), Duration::millis(5));
  EXPECT_EQ(topo.rtt(ms[0], ms[1]), Duration::millis(10));
}

TEST(TopologyTest, InterRegionLatencyDefaultAndOverride) {
  Topology topo;
  topo.set_default_inter_latency(Duration::millis(50));
  RegionId r0 = topo.add_region("a", std::nullopt);
  RegionId r1 = topo.add_region("b", r0);
  RegionId r2 = topo.add_region("c", r0);
  MemberId m0 = topo.add_member(r0);
  MemberId m1 = topo.add_member(r1);
  MemberId m2 = topo.add_member(r2);
  EXPECT_EQ(topo.one_way_latency(m0, m1), Duration::millis(50));
  topo.set_inter_latency(r0, r2, Duration::millis(80));
  EXPECT_EQ(topo.one_way_latency(m0, m2), Duration::millis(80));
  EXPECT_EQ(topo.one_way_latency(m2, m0), Duration::millis(80));  // symmetric
  EXPECT_EQ(topo.rtt(m0, m2), Duration::millis(160));
}

TEST(TopologyTest, DeepHierarchyLatencySumsHopsToCommonAncestor) {
  // root -> a -> aa and root -> b: members of aa and b are three hops
  // apart (aa->a, a->root, root->b), not one flat default hop.
  Topology topo;
  topo.set_default_inter_latency(Duration::millis(50));
  RegionId root = topo.add_region("root", std::nullopt);
  RegionId a = topo.add_region("a", root);
  RegionId aa = topo.add_region("aa", a);
  RegionId b = topo.add_region("b", root);
  MemberId m_root = topo.add_member(root);
  MemberId m_aa = topo.add_member(aa);
  MemberId m_b = topo.add_member(b);
  EXPECT_EQ(topo.region_depth(root), 0u);
  EXPECT_EQ(topo.region_depth(a), 1u);
  EXPECT_EQ(topo.region_depth(aa), 2u);
  // Ancestor-descendant: one hop per level.
  EXPECT_EQ(topo.one_way_latency(m_root, m_aa), Duration::millis(100));
  EXPECT_EQ(topo.one_way_latency(m_aa, m_root), Duration::millis(100));
  // Cross-subtree: both paths to the common ancestor.
  EXPECT_EQ(topo.one_way_latency(m_aa, m_b), Duration::millis(150));
  // A per-edge override changes every path through that edge...
  topo.set_inter_latency(a, aa, Duration::millis(10));
  EXPECT_EQ(topo.one_way_latency(m_aa, m_b), Duration::millis(110));
  EXPECT_EQ(topo.parent_edge_latency(aa), Duration::millis(10));
  // ...while a direct pair override short-circuits the hierarchy sum.
  topo.set_inter_latency(aa, b, Duration::millis(30));
  EXPECT_EQ(topo.one_way_latency(m_aa, m_b), Duration::millis(30));
  EXPECT_EQ(topo.one_way_latency(m_b, m_aa), Duration::millis(30));
}

TEST(TopologyTest, ForestLatencyBridgesDistinctRoots) {
  Topology topo;
  topo.set_default_inter_latency(Duration::millis(50));
  RegionId r0 = topo.add_region("tree0", std::nullopt);
  RegionId r1 = topo.add_region("tree1", std::nullopt);
  RegionId r1c = topo.add_region("tree1-child", r1);
  MemberId m0 = topo.add_member(r0);
  MemberId m1c = topo.add_member(r1c);
  // Climb to tree1's root, then one bridging hop between the roots.
  EXPECT_EQ(topo.one_way_latency(m0, m1c), Duration::millis(100));
}

TEST(TopologyTest, MakeHierarchyBuildsExpectedShape) {
  Topology topo = make_hierarchy({4, 3, 2});
  EXPECT_EQ(topo.region_count(), 3u);
  EXPECT_EQ(topo.member_count(), 9u);
  EXPECT_EQ(topo.parent_of(1), RegionId{0});
  EXPECT_EQ(topo.parent_of(2), RegionId{0});
  std::vector<RegionId> parents = {0, 0, 1};
  Topology chain = make_hierarchy({2, 2, 2}, Duration::millis(10),
                                  Duration::millis(50), &parents);
  EXPECT_EQ(chain.parent_of(2), RegionId{1});
}

TEST(LossModelTest, NoLossNeverDrops) {
  RandomEngine rng(1);
  NoLoss m;
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(m.drop(rng));
}

TEST(LossModelTest, BernoulliDropsAtConfiguredRate) {
  RandomEngine rng(2);
  BernoulliLoss m(0.2);
  int drops = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (m.drop(rng)) ++drops;
  }
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.2, 0.01);
}

TEST(LossModelTest, MakeBernoulliZeroIsNoLoss) {
  RandomEngine rng(3);
  auto m = make_bernoulli(0.0);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(m->drop(rng));
}

TEST(LossModelTest, GilbertElliottBurstsLosses) {
  RandomEngine rng(4);
  // Never leaves good->bad transitions: loss 0 in good, 1 in bad.
  GilbertElliottLoss m(/*p_gb=*/0.01, /*p_bg=*/0.2, /*good=*/0.0, /*bad=*/1.0);
  // Losses must cluster: count runs of consecutive drops.
  int drops = 0, runs = 0;
  bool in_run = false;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    bool d = m.drop(rng);
    if (d) {
      ++drops;
      if (!in_run) {
        ++runs;
        in_run = true;
      }
    } else {
      in_run = false;
    }
  }
  ASSERT_GT(drops, 0);
  ASSERT_GT(runs, 0);
  double mean_burst = static_cast<double>(drops) / runs;
  EXPECT_GT(mean_burst, 2.0);  // bursty: average run well above 1
}

// ------------------------------------------------------------ SimNetwork ----

class CollectingHandler : public MessageHandler {
 public:
  struct Received {
    proto::Message msg;
    MemberId from;
  };
  void on_message(const proto::Message& msg, MemberId from) override {
    received.push_back({msg, from});
  }
  std::vector<Received> received;
};

struct NetFixture {
  NetFixture() : topo(make_hierarchy({3, 2})), net(sim, topo, RandomEngine(7)) {
    handlers.resize(topo.member_count());
    for (MemberId m = 0; m < topo.member_count(); ++m) {
      net.attach(m, &handlers[m]);
    }
  }
  sim::Simulator sim;
  Topology topo;
  SimNetwork net;
  std::vector<CollectingHandler> handlers;
};

TEST(SimNetworkTest, UnicastDeliversAfterOneWayLatency) {
  NetFixture f;
  f.net.unicast(0, 1, proto::Message{proto::Session{0, 5}});
  EXPECT_TRUE(f.handlers[1].received.empty());
  f.sim.run();
  ASSERT_EQ(f.handlers[1].received.size(), 1u);
  EXPECT_EQ(f.handlers[1].received[0].from, 0u);
  EXPECT_EQ(f.sim.now(), TimePoint::zero() + Duration::millis(5));
}

TEST(SimNetworkTest, CrossRegionUnicastUsesInterLatency) {
  NetFixture f;
  f.net.unicast(0, 3, proto::Message{proto::Session{0, 5}});  // member 3: region 1
  f.sim.run();
  EXPECT_EQ(f.sim.now(), TimePoint::zero() + Duration::millis(50));
}

TEST(SimNetworkTest, RegionalMulticastReachesRegionExceptSender) {
  NetFixture f;
  f.net.multicast_region(0, proto::Message{proto::Session{0, 1}});
  f.sim.run();
  EXPECT_TRUE(f.handlers[0].received.empty());  // not self
  EXPECT_EQ(f.handlers[1].received.size(), 1u);
  EXPECT_EQ(f.handlers[2].received.size(), 1u);
  EXPECT_TRUE(f.handlers[3].received.empty());  // other region
  EXPECT_TRUE(f.handlers[4].received.empty());
}

TEST(SimNetworkTest, IpMulticastToExplicitReceivers) {
  NetFixture f;
  std::vector<MemberId> receivers = {1, 4};
  f.net.ip_multicast_to(0, proto::Message{proto::Session{0, 1}}, receivers);
  f.sim.run();
  EXPECT_EQ(f.handlers[1].received.size(), 1u);
  EXPECT_EQ(f.handlers[4].received.size(), 1u);
  EXPECT_TRUE(f.handlers[2].received.empty());
}

TEST(SimNetworkTest, IpMulticastLossRateApplies) {
  NetFixture f;
  for (int i = 0; i < 200; ++i) {
    f.net.ip_multicast(0, proto::Message{proto::Session{0, 1}}, 0.5);
  }
  f.sim.run();
  // 4 receivers x 200 sends x 50% -> ~400.
  std::size_t delivered = 0;
  for (const auto& h : f.handlers) delivered += h.received.size();
  EXPECT_GT(delivered, 300u);
  EXPECT_LT(delivered, 500u);
  EXPECT_GT(f.net.stats().dropped, 0u);
}

TEST(SimNetworkTest, DetachedMemberReceivesNothing) {
  NetFixture f;
  f.net.detach(1);
  EXPECT_FALSE(f.net.attached(1));
  f.net.unicast(0, 1, proto::Message{proto::Session{0, 1}});
  f.sim.run();
  EXPECT_TRUE(f.handlers[1].received.empty());
}

TEST(SimNetworkTest, ControlLossDropsUnicasts) {
  NetFixture f;
  f.net.set_control_loss(std::make_unique<BernoulliLoss>(1.0));
  f.net.unicast(0, 1, proto::Message{proto::Session{0, 1}});
  f.sim.run();
  EXPECT_TRUE(f.handlers[1].received.empty());
  EXPECT_EQ(f.net.stats().dropped, 1u);
}

TEST(SimNetworkTest, CodecRoundTripModePreservesMessages) {
  NetFixture f;
  f.net.set_codec_roundtrip(true);
  proto::Data d{MessageId{0, 9}, {1, 2, 3}};
  f.net.unicast(0, 1, proto::Message{d});
  f.sim.run();
  ASSERT_EQ(f.handlers[1].received.size(), 1u);
  const auto* got = std::get_if<proto::Data>(&f.handlers[1].received[0].msg);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(*got, d);
}

TEST(SimNetworkTest, TrafficStatsCountTypesAndBytes) {
  NetFixture f;
  f.net.unicast(0, 1, proto::Message{proto::Session{0, 1}});
  f.net.unicast(0, 1, proto::Message{proto::Data{MessageId{0, 1}, {1, 2}}});
  f.sim.run();
  const TrafficStats& s = f.net.stats();
  EXPECT_EQ(s.sends, 2u);
  EXPECT_EQ(s.delivered, 2u);
  EXPECT_EQ(s.sends_by_type[static_cast<int>(proto::MessageType::kSession)], 1u);
  EXPECT_EQ(s.sends_by_type[static_cast<int>(proto::MessageType::kData)], 1u);
  EXPECT_GT(s.bytes_sent, 0u);
}

TEST(SimNetworkTest, JitterStretchesLatency) {
  NetFixture f;
  f.net.set_latency_jitter(1.0);  // latency in [5, 10] ms
  f.net.unicast(0, 1, proto::Message{proto::Session{0, 1}});
  f.sim.run();
  TimePoint t = f.sim.now();
  EXPECT_GE(t, TimePoint::zero() + Duration::millis(5));
  EXPECT_LE(t, TimePoint::zero() + Duration::millis(10));
}

TEST(SimNetworkTest, AttachNullHandlerThrows) {
  NetFixture f;
  EXPECT_THROW(f.net.attach(0, nullptr), std::invalid_argument);
}

TEST(SimNetworkTest, FanOutRecipientsShareOnePayloadAllocation) {
  // Zero-copy delivery contract: every recipient of a regional multicast
  // sees the *same* payload buffer, not a per-recipient copy.
  NetFixture f;
  proto::Data d{MessageId{0, 1}, {9, 8, 7, 6}};
  f.net.multicast_region(0, proto::Message{d});
  f.sim.run();
  ASSERT_EQ(f.handlers[1].received.size(), 1u);
  ASSERT_EQ(f.handlers[2].received.size(), 1u);
  const auto& p1 = std::get<proto::Data>(f.handlers[1].received[0].msg).payload;
  const auto& p2 = std::get<proto::Data>(f.handlers[2].received[0].msg).payload;
  EXPECT_EQ(p1, d.payload);
  EXPECT_TRUE(p1.shares_owner_with(d.payload));
  EXPECT_TRUE(p1.shares_owner_with(p2));
}

TEST(SimNetworkTest, CodecRoundTripFanOutSharesOneWireBuffer) {
  // With codec_roundtrip on, the message is encoded once per multicast and
  // every recipient's payload aliases that single wire buffer.
  NetFixture f;
  f.net.set_codec_roundtrip(true);
  proto::Data d{MessageId{0, 2}, {1, 2, 3}};
  f.net.multicast_region(0, proto::Message{d});
  f.sim.run();
  ASSERT_EQ(f.handlers[1].received.size(), 1u);
  ASSERT_EQ(f.handlers[2].received.size(), 1u);
  const auto& p1 = std::get<proto::Data>(f.handlers[1].received[0].msg).payload;
  const auto& p2 = std::get<proto::Data>(f.handlers[2].received[0].msg).payload;
  EXPECT_EQ(p1, d.payload);
  EXPECT_FALSE(p1.shares_owner_with(d.payload));  // re-decoded from the wire
  EXPECT_TRUE(p1.shares_owner_with(p2));          // ... which is shared
}

}  // namespace
}  // namespace rrmp::net
