// Unit tests: statistics, the paper's closed-form expressions, table output.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "analysis/analytic.h"
#include "analysis/stats.h"
#include "analysis/table.h"

namespace rrmp::analysis {
namespace {

// ----------------------------------------------------------------- stats ----

TEST(StatsTest, MeanAndStddev) {
  std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(stddev(xs), 2.138, 0.001);  // sample stddev (n-1)
}

TEST(StatsTest, EmptyAndSingletonInputs) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
  // Unsorted input is handled (percentile sorts internally).
  std::vector<double> shuffled = {40, 10, 30, 20};
  EXPECT_DOUBLE_EQ(percentile(shuffled, 50), 25.0);
}

TEST(StatsTest, PercentileClampsOutOfRangeQ) {
  std::vector<double> xs = {1, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(xs, -5), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 200), 3.0);
}

TEST(StatsTest, SummarizeCoversAllFields) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  Summary s = summarize(xs);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.p50, 50.5, 0.01);
  EXPECT_NEAR(s.p90, 90.1, 0.2);
  EXPECT_NEAR(s.p99, 99.01, 0.2);
}

TEST(StatsTest, HistogramBucketsAndClamping) {
  std::vector<double> xs = {-1, 0, 0.5, 1.5, 2.5, 99};
  auto h = histogram(xs, 0, 3, 3);
  ASSERT_EQ(h.size(), 3u);
  EXPECT_EQ(h[0], 3u);  // -1 (clamped), 0, 0.5
  EXPECT_EQ(h[1], 1u);  // 1.5
  EXPECT_EQ(h[2], 2u);  // 2.5, 99 (clamped)
}

TEST(StatsTest, HistogramDegenerateRange) {
  EXPECT_TRUE(histogram({1, 2}, 5, 5, 3) ==
              (std::vector<std::size_t>{0, 0, 0}));
  EXPECT_TRUE(histogram({1}, 0, 1, 0).empty());
}

// -------------------------------------------------------------- analytic ----

TEST(AnalyticTest, BinomialPmfSumsToOne) {
  double total = 0;
  for (std::uint64_t k = 0; k <= 100; ++k) {
    total += binomial_pmf(100, 0.06, k);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(AnalyticTest, BinomialPmfKnownValues) {
  EXPECT_NEAR(binomial_pmf(10, 0.5, 5), 0.24609375, 1e-8);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 0.0, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 1.0, 10), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 0.5, 11), 0.0);  // k > n
}

TEST(AnalyticTest, PoissonPmfKnownValues) {
  // Paper: "When C = 6 ... the probability is only 0.25%".
  EXPECT_NEAR(poisson_pmf(6.0, 0), 0.00248, 0.0001);
  EXPECT_NEAR(poisson_pmf(1.0, 1), std::exp(-1.0), 1e-9);
  double total = 0;
  for (std::uint64_t k = 0; k < 60; ++k) total += poisson_pmf(6.0, k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(AnalyticTest, PoissonApproximatesBinomialForLargeN) {
  // The §3.2 approximation: Binomial(n, C/n) -> Poisson(C) as n grows.
  for (std::uint64_t k = 0; k <= 15; ++k) {
    EXPECT_NEAR(binomial_pmf(1000, 6.0 / 1000, k), poisson_pmf(6.0, k), 0.005)
        << "k=" << k;
  }
}

TEST(AnalyticTest, ProbNoBuffererIsExponential) {
  EXPECT_NEAR(prob_no_bufferer(1), 0.3679, 0.0001);
  EXPECT_NEAR(prob_no_bufferer(6), 0.00248, 0.0001);
  EXPECT_GT(prob_no_bufferer(2) / prob_no_bufferer(3), 2.6);
  EXPECT_LT(prob_no_bufferer(2) / prob_no_bufferer(3), 2.8);
}

TEST(AnalyticTest, ProbNoRequestMatchesApproximation) {
  // (1 - 1/(n-1))^(np) ~= e^-p for large n (paper §3.1).
  for (double p : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(prob_no_request(1000, p), prob_no_request_approx(p), 0.01)
        << "p=" << p;
  }
  // Degenerate region sizes.
  EXPECT_DOUBLE_EQ(prob_no_request(1, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(prob_no_request(0, 0.5), 1.0);
}

TEST(AnalyticTest, RequiredCInvertsFigure4) {
  // Operator-facing inverse of Figure 4: C for a target zero-bufferer risk.
  EXPECT_NEAR(required_c(0.0025), 6.0, 0.01);  // the paper's C=6 point
  EXPECT_NEAR(required_c(std::exp(-3.0)), 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(required_c(1.0), 0.0);
  EXPECT_TRUE(std::isinf(required_c(0.0)));
  // Round trip: e^-required_c(p) == p.
  for (double p : {0.1, 0.01, 0.001}) {
    EXPECT_NEAR(prob_no_bufferer(required_c(p)), p, p * 1e-9);
  }
}

TEST(AnalyticTest, ProbNoRequestDecreasesInP) {
  double prev = 1.1;
  for (double p : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    double v = prob_no_request(100, p);
    EXPECT_LT(v, prev);
    prev = v;
  }
}

// ------------------------------------------------------------------ table ----

TEST(TableTest, AlignedOutput) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "22"});
  std::ostringstream os;
  t.print(os);
  std::string s = os.str();
  EXPECT_NE(s.find("| name        | value |"), std::string::npos);
  EXPECT_NE(s.find("| longer-name | 22    |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TableTest, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only-one"});
  std::ostringstream os;
  t.print(os);  // must not crash; missing cells render empty
  EXPECT_NE(os.str().find("only-one"), std::string::npos);
}

TEST(TableTest, CsvEscapesCommas) {
  Table t({"k", "v"});
  t.add_row({"a,b", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"a,b\",2"), std::string::npos);
}

TEST(TableTest, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.0, 0), "3");
  EXPECT_EQ(Table::num(std::uint64_t{42}), "42");
}

}  // namespace
}  // namespace rrmp::analysis
