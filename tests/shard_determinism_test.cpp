// The sharding determinism contract (ISSUE 2): Cluster::run with shards=k
// must produce byte-identical results for every k. A 4-region experiment
// with data loss, control loss, jitter, codec round-trips and mid-run churn
// is run at shards=1, 2 and 4 with the same seed; the merged metrics
// streams, counters, traffic stats, per-lane event counts and final clocks
// must all be exactly equal.
#include <gtest/gtest.h>

#include <vector>

#include "harness/cluster.h"
#include "test_env.h"

namespace rrmp::harness {
namespace {

struct RunDigest {
  RecordingSink::Counters counters;
  std::vector<RecordingSink::TimedEvent> deliveries;
  std::vector<RecordingSink::TimedEvent> stores;
  std::vector<RecordingSink::TimedEvent> discards;
  std::vector<RecordingSink::TimedEvent> promotions;
  std::vector<Duration> recovery_latencies;
  net::TrafficStats traffic;
  std::vector<std::uint64_t> per_lane_events;  // per-lane fired counts
  std::uint64_t events_fired = 0;
  TimePoint final_now;
  std::size_t total_buffered = 0;
  std::size_t lanes = 0;
  std::uint64_t evictions = 0;  // summed store stats (budgeted runs only)
  std::uint64_t sheds = 0;      // summed shed handoffs (coordinated runs)
};

RunDigest run_workload(std::size_t shards) {
  ClusterConfig cc;
  cc.region_sizes = {6, 5, 4, 5};
  cc.seed = 2026;
  cc.data_loss = 0.20;
  cc.control_loss = 0.02;
  cc.jitter = 0.15;
  cc.codec_roundtrip = true;
  cc.shards = shards;
  Cluster cluster(cc);

  // A scripted stream with churn: 8 multicasts from the root sender, one
  // graceful leave in region 1 and one crash in region 2 mid-stream.
  for (int i = 0; i < 8; ++i) {
    cluster.schedule_script(
        TimePoint::zero() + Duration::millis(20) * i,
        [&cluster] {
          cluster.endpoint(0).multicast(std::vector<std::uint8_t>(48, 0x2D));
        });
  }
  cluster.schedule_script(TimePoint::zero() + Duration::millis(70),
                          [&cluster] { cluster.leave(8); });
  cluster.schedule_script(TimePoint::zero() + Duration::millis(110),
                          [&cluster] { cluster.crash(12); });

  cluster.run_for(Duration::seconds(1));
  cluster.run_until_quiet(Duration::seconds(2));

  RunDigest d;
  const RecordingSink& m = cluster.metrics();
  d.counters = m.counters();
  d.deliveries = m.deliveries();
  d.stores = m.stores();
  d.discards = m.discards();
  d.promotions = m.promotions();
  d.recovery_latencies = m.recovery_latencies();
  d.traffic = cluster.network().stats();
  for (std::size_t lane = 0; lane < cluster.lane_count(); ++lane) {
    d.per_lane_events.push_back(cluster.network().lane_sim(lane).fired_count());
  }
  d.events_fired = cluster.events_fired();
  d.final_now = cluster.now();
  d.total_buffered = cluster.total_buffered();
  d.lanes = cluster.lane_count();
  return d;
}

void expect_identical(const RunDigest& a, const RunDigest& b,
                      const char* label) {
  SCOPED_TRACE(label);
  EXPECT_TRUE(a.counters == b.counters) << "metrics counters diverge";
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.stores, b.stores);
  EXPECT_EQ(a.discards, b.discards);
  EXPECT_EQ(a.promotions, b.promotions);
  EXPECT_EQ(a.recovery_latencies, b.recovery_latencies);
  EXPECT_TRUE(a.traffic == b.traffic) << "traffic stats diverge";
  EXPECT_EQ(a.per_lane_events, b.per_lane_events);
  EXPECT_EQ(a.events_fired, b.events_fired);
  EXPECT_EQ(a.final_now, b.final_now);
  EXPECT_EQ(a.total_buffered, b.total_buffered);
}

TEST(ShardDeterminism, SameResultsForShards124) {
  RunDigest s1 = run_workload(1);
  RunDigest s2 = run_workload(2);
  RunDigest s4 = run_workload(4);

  // The workload must be non-trivial or the contract is vacuous.
  ASSERT_EQ(s1.lanes, 4u);
  ASSERT_GT(s1.deliveries.size(), 50u);
  ASSERT_GT(s1.counters.recoveries, 0u);
  ASSERT_GT(s1.traffic.cross_lane_sends, 0u);
  ASSERT_GT(s1.traffic.dropped, 0u);
  ASSERT_GT(s1.events_fired, 1000u);

  expect_identical(s1, s2, "shards=1 vs shards=2");
  expect_identical(s1, s4, "shards=1 vs shards=4");
}

RunDigest run_budgeted_workload(std::size_t shards) {
  // Same multi-region churny stream, but under a per-member buffer budget
  // small enough to force evictions: the eviction protocol (policy victim
  // picks + store removals) must be as shard-count-invariant as the rest of
  // the pipeline.
  ClusterConfig cc;
  cc.region_sizes = {6, 5, 4, 5};
  cc.seed = 2027;
  cc.data_loss = 0.20;
  cc.control_loss = 0.02;
  cc.jitter = 0.15;
  cc.codec_roundtrip = true;
  cc.shards = shards;
  cc.protocol.buffer_budget = buffer::BufferBudget{256, 0};  // ~4 frames
  Cluster cluster(cc);

  for (int i = 0; i < 8; ++i) {
    cluster.schedule_script(
        TimePoint::zero() + Duration::millis(20) * i,
        [&cluster] {
          cluster.endpoint(0).multicast(std::vector<std::uint8_t>(48, 0x2D));
        });
  }
  cluster.schedule_script(TimePoint::zero() + Duration::millis(70),
                          [&cluster] { cluster.leave(8); });
  cluster.schedule_script(TimePoint::zero() + Duration::millis(110),
                          [&cluster] { cluster.crash(12); });

  cluster.run_for(Duration::seconds(1));
  cluster.run_until_quiet(Duration::seconds(2));

  RunDigest d;
  const RecordingSink& m = cluster.metrics();
  d.counters = m.counters();
  d.deliveries = m.deliveries();
  d.stores = m.stores();
  d.discards = m.discards();
  d.promotions = m.promotions();
  d.recovery_latencies = m.recovery_latencies();
  d.traffic = cluster.network().stats();
  d.events_fired = cluster.events_fired();
  d.final_now = cluster.now();
  d.total_buffered = cluster.total_buffered();
  d.lanes = cluster.lane_count();
  for (MemberId m = 0; m < cluster.size(); ++m) {
    d.evictions += cluster.endpoint(m).buffer().stats().evicted;
  }
  return d;
}

TEST(ShardDeterminism, EvictionEnabledRunsAreShardCountInvariant) {
  RunDigest s1 = run_budgeted_workload(1);
  RunDigest s2 = run_budgeted_workload(2);
  RunDigest s4 = run_budgeted_workload(4);

  // Evictions must actually have happened or the contract is vacuous.
  ASSERT_GT(s1.evictions, 0u);

  expect_identical(s1, s2, "budgeted shards=1 vs shards=2");
  expect_identical(s1, s4, "budgeted shards=1 vs shards=4");
  EXPECT_EQ(s1.evictions, s2.evictions);
  EXPECT_EQ(s1.evictions, s4.evictions);
}

RunDigest run_coordinated_workload(std::size_t shards) {
  // The budgeted churny stream again, now with cooperative region-wide
  // budgets: digest gossip, replica-aware (keeper-elected) eviction, and
  // shed handoffs — the first cross-member control loop in the buffer
  // subsystem. Its victim ordering depends on digest tables built from
  // received multicasts, so the whole loop must be as shard-count-invariant
  // as the rest of the pipeline.
  ClusterConfig cc;
  cc.region_sizes = {6, 5, 4, 5};
  cc.seed = 2028;
  cc.data_loss = 0.20;
  cc.control_loss = 0.02;
  cc.jitter = 0.15;
  cc.codec_roundtrip = true;
  cc.shards = shards;
  cc.protocol.buffer_budget = buffer::BufferBudget{256, 0};  // ~4 frames
  cc.protocol.buffer_coordination.enabled = true;
  cc.protocol.buffer_coordination.digest_interval = Duration::millis(15);
  Cluster cluster(cc);

  for (int i = 0; i < 8; ++i) {
    cluster.schedule_script(
        TimePoint::zero() + Duration::millis(20) * i,
        [&cluster] {
          cluster.endpoint(0).multicast(std::vector<std::uint8_t>(48, 0x2D));
        });
  }
  cluster.schedule_script(TimePoint::zero() + Duration::millis(70),
                          [&cluster] { cluster.leave(8); });
  cluster.schedule_script(TimePoint::zero() + Duration::millis(110),
                          [&cluster] { cluster.crash(12); });

  cluster.run_for(Duration::seconds(1));
  cluster.run_until_quiet(Duration::seconds(2));

  RunDigest d;
  const RecordingSink& m = cluster.metrics();
  d.counters = m.counters();
  d.deliveries = m.deliveries();
  d.stores = m.stores();
  d.discards = m.discards();
  d.promotions = m.promotions();
  d.recovery_latencies = m.recovery_latencies();
  d.traffic = cluster.network().stats();
  d.events_fired = cluster.events_fired();
  d.final_now = cluster.now();
  d.total_buffered = cluster.total_buffered();
  d.lanes = cluster.lane_count();
  for (MemberId mem = 0; mem < cluster.size(); ++mem) {
    d.evictions += cluster.endpoint(mem).buffer().stats().evicted;
    d.sheds += cluster.endpoint(mem).buffer().stats().shed;
  }
  return d;
}

TEST(ShardDeterminism, CoordinationEnabledRunsAreShardCountInvariant) {
  RunDigest s1 = run_coordinated_workload(1);
  RunDigest s2 = run_coordinated_workload(2);
  RunDigest s4 = run_coordinated_workload(4);

  // The coordination machinery must actually have run: digests were
  // multicast and budget pressure both evicted and shed.
  std::size_t digest_idx =
      static_cast<std::size_t>(proto::MessageType::kBufferDigest);
  ASSERT_GT(s1.traffic.sends_by_type[digest_idx], 0u);
  ASSERT_GT(s1.evictions + s1.sheds, 0u);

  expect_identical(s1, s2, "coordinated shards=1 vs shards=2");
  expect_identical(s1, s4, "coordinated shards=1 vs shards=4");
  EXPECT_EQ(s1.evictions, s2.evictions);
  EXPECT_EQ(s1.evictions, s4.evictions);
  EXPECT_EQ(s1.sheds, s2.sheds);
  EXPECT_EQ(s1.sheds, s4.sheds);
}

RunDigest run_flow_workload(std::size_t shards) {
  // The churny stream once more, now with windowed send admission: two
  // senders burst past their windows, so frames queue, CreditAcks release
  // them, and digest-fed back-pressure shrinks effective windows. The
  // credit loop orders wire traffic by ack arrival, so it must be as
  // shard-count-invariant as everything upstream of it.
  ClusterConfig cc;
  cc.region_sizes = {6, 5, 4, 5};
  cc.seed = 2029;
  cc.data_loss = 0.20;
  cc.control_loss = 0.02;
  cc.jitter = 0.15;
  cc.codec_roundtrip = true;
  cc.shards = shards;
  cc.protocol.buffer_budget = buffer::BufferBudget{512, 0};
  cc.protocol.buffer_coordination.enabled = true;
  cc.protocol.buffer_coordination.digest_interval = Duration::millis(15);
  cc.protocol.flow.enabled = true;
  cc.protocol.flow.window_size = 2;
  cc.protocol.flow.ack_interval = Duration::millis(8);
  Cluster cluster(cc);

  for (int i = 0; i < 4; ++i) {
    cluster.schedule_script(
        TimePoint::zero() + Duration::millis(20) * i, [&cluster] {
          // Back-to-back bursts from two members of the root region: each
          // instantly outruns its window of 2.
          for (int b = 0; b < 3; ++b) {
            cluster.endpoint(0).multicast(std::vector<std::uint8_t>(48, 0x2D));
            cluster.endpoint(1).multicast(std::vector<std::uint8_t>(48, 0x3E));
          }
        });
  }
  cluster.schedule_script(TimePoint::zero() + Duration::millis(70),
                          [&cluster] { cluster.leave(8); });
  cluster.schedule_script(TimePoint::zero() + Duration::millis(110),
                          [&cluster] { cluster.crash(12); });

  cluster.run_for(Duration::seconds(1));
  cluster.run_until_quiet(Duration::seconds(2));

  RunDigest d;
  const RecordingSink& m = cluster.metrics();
  d.counters = m.counters();
  d.deliveries = m.deliveries();
  d.stores = m.stores();
  d.discards = m.discards();
  d.promotions = m.promotions();
  d.recovery_latencies = m.recovery_latencies();
  d.traffic = cluster.network().stats();
  d.events_fired = cluster.events_fired();
  d.final_now = cluster.now();
  d.total_buffered = cluster.total_buffered();
  d.lanes = cluster.lane_count();
  return d;
}

TEST(ShardDeterminism, FlowControlRunsAreShardCountInvariant) {
  RunDigest s1 = run_flow_workload(1);
  RunDigest s2 = run_flow_workload(2);
  RunDigest s4 = run_flow_workload(4);

  // The credit loop must actually have engaged: sends were deferred and
  // CreditAcks flowed on the wire.
  ASSERT_GT(s1.counters.sends_deferred, 0u);
  ASSERT_GT(s1.counters.credit_acks_sent, 0u);
  std::size_t ack_idx = static_cast<std::size_t>(proto::MessageType::kCreditAck);
  ASSERT_GT(s1.traffic.sends_by_type[ack_idx], 0u);

  expect_identical(s1, s2, "flow shards=1 vs shards=2");
  expect_identical(s1, s4, "flow shards=1 vs shards=4");
}

RunDigest run_adaptive_churn_flow_workload(std::size_t shards) {
  // The flow workload again with the PR 7 machinery fully lit: AIMD window
  // sizing, cursor piggybacking on Data/Session frames, and churn in the
  // middle of the bursts — a crash plus a later rejoin, so the churn-safe
  // credit seeding (joiner cursors at the sender's floor, departed cursors
  // dropped at view-change time) and the ack-suppression state machine are
  // all on the deterministic-ordering hook.
  ClusterConfig cc;
  cc.region_sizes = {6, 5, 4, 5};
  cc.seed = 2031;
  cc.data_loss = 0.20;
  cc.control_loss = 0.02;
  cc.jitter = 0.15;
  cc.codec_roundtrip = true;
  cc.shards = shards;
  cc.protocol.buffer_budget = buffer::BufferBudget{512, 0};
  cc.protocol.buffer_coordination.enabled = true;
  cc.protocol.buffer_coordination.digest_interval = Duration::millis(15);
  cc.protocol.flow.enabled = true;
  cc.protocol.flow.window_size = 4;
  cc.protocol.flow.ack_interval = Duration::millis(8);
  cc.protocol.flow.adaptive = true;
  cc.protocol.flow.min_window = 2;
  cc.protocol.flow.piggyback = true;
  Cluster cluster(cc);

  for (int i = 0; i < 6; ++i) {
    cluster.schedule_script(
        TimePoint::zero() + Duration::millis(20) * i, [&cluster] {
          for (int b = 0; b < 3; ++b) {
            cluster.endpoint(0).multicast(std::vector<std::uint8_t>(48, 0x4F));
            cluster.endpoint(1).multicast(std::vector<std::uint8_t>(48, 0x5A));
          }
        });
  }
  // Mid-burst churn in the senders' own region: member 5 crashes while
  // frames are in flight and rejoins two bursts later with empty receive
  // state; member 12 (another region) crashes for the cross-region angle.
  cluster.schedule_script(TimePoint::zero() + Duration::millis(45),
                          [&cluster] { cluster.crash(5); });
  cluster.schedule_script(TimePoint::zero() + Duration::millis(85),
                          [&cluster] { cluster.rejoin(5); });
  cluster.schedule_script(TimePoint::zero() + Duration::millis(110),
                          [&cluster] { cluster.crash(12); });

  cluster.run_for(Duration::seconds(1));
  cluster.run_until_quiet(Duration::seconds(2));

  RunDigest d;
  const RecordingSink& m = cluster.metrics();
  d.counters = m.counters();
  d.deliveries = m.deliveries();
  d.stores = m.stores();
  d.discards = m.discards();
  d.promotions = m.promotions();
  d.recovery_latencies = m.recovery_latencies();
  d.traffic = cluster.network().stats();
  d.events_fired = cluster.events_fired();
  d.final_now = cluster.now();
  d.total_buffered = cluster.total_buffered();
  d.lanes = cluster.lane_count();
  return d;
}

TEST(ShardDeterminism, AdaptiveChurnFlowRunsAreShardCountInvariant) {
  RunDigest s1 = run_adaptive_churn_flow_workload(1);
  RunDigest s2 = run_adaptive_churn_flow_workload(2);
  RunDigest s4 = run_adaptive_churn_flow_workload(4);

  // The PR 7 machinery must actually have engaged: sends deferred by the
  // AIMD window, and the piggybacked cursors suppressed standalone acks.
  ASSERT_GT(s1.counters.sends_deferred, 0u);
  ASSERT_GT(s1.counters.credit_acks_suppressed, 0u);

  expect_identical(s1, s2, "adaptive churn flow shards=1 vs shards=2");
  expect_identical(s1, s4, "adaptive churn flow shards=1 vs shards=4");
}

RunDigest run_partition_heal_workload(std::size_t shards) {
  // The fault-injection layer on the deterministic-ordering hook: per-member
  // link-loss overrides from t=0, then a mid-run partition that severs two
  // whole regions from the other two (cutting cross-lane traffic at the
  // barrier-exchange seam, the spot most exposed to shard count), healed
  // while the stream is still running. The severed-packet accounting, the
  // partition-change credit releases and the post-heal re-seeding must all
  // be byte-identical at every shard count.
  ClusterConfig cc;
  cc.region_sizes = {6, 5, 4, 5};
  cc.seed = 2033;
  cc.data_loss = 0.20;
  cc.control_loss = 0.02;
  cc.jitter = 0.15;
  cc.codec_roundtrip = true;
  cc.shards = shards;
  cc.protocol.buffer_budget = buffer::BufferBudget{512, 0};
  cc.protocol.buffer_coordination.enabled = true;
  cc.protocol.buffer_coordination.digest_interval = Duration::millis(15);
  cc.protocol.flow.enabled = true;
  cc.protocol.flow.window_size = 4;
  cc.protocol.flow.ack_interval = Duration::millis(8);
  Cluster cluster(cc);

  // Lossy edges into one member of region 0 and one of region 2: the
  // link-table clones must draw identically in every lane arrangement.
  cluster.set_lossy_members({4, 13}, 0.3);

  for (int i = 0; i < 6; ++i) {
    cluster.schedule_script(
        TimePoint::zero() + Duration::millis(20) * i, [&cluster] {
          for (int b = 0; b < 3; ++b) {
            cluster.endpoint(0).multicast(std::vector<std::uint8_t>(48, 0x6B));
            cluster.endpoint(1).multicast(std::vector<std::uint8_t>(48, 0x7C));
          }
        });
  }
  // Regions {2, 3} lose contact with regions {0, 1} mid-stream; the wall
  // comes down 75 ms later with bursts still arriving. A crash during the
  // partition adds the churn-during-fault angle.
  cluster.schedule_script(TimePoint::zero() + Duration::millis(45),
                          [&cluster] {
                            cluster.partition_regions({{0, 1}, {2, 3}});
                          });
  cluster.schedule_script(TimePoint::zero() + Duration::millis(70),
                          [&cluster] { cluster.crash(12); });
  cluster.schedule_script(TimePoint::zero() + Duration::millis(120),
                          [&cluster] { cluster.heal(); });

  cluster.run_for(Duration::seconds(1));
  cluster.run_until_quiet(Duration::seconds(2));

  RunDigest d;
  const RecordingSink& m = cluster.metrics();
  d.counters = m.counters();
  d.deliveries = m.deliveries();
  d.stores = m.stores();
  d.discards = m.discards();
  d.promotions = m.promotions();
  d.recovery_latencies = m.recovery_latencies();
  d.traffic = cluster.network().stats();
  d.events_fired = cluster.events_fired();
  d.final_now = cluster.now();
  d.total_buffered = cluster.total_buffered();
  d.lanes = cluster.lane_count();
  return d;
}

TEST(ShardDeterminism, PartitionHealRunsAreShardCountInvariant) {
  RunDigest s1 = run_partition_heal_workload(1);
  RunDigest s2 = run_partition_heal_workload(2);
  RunDigest s4 = run_partition_heal_workload(4);

  // The fault layer must actually have engaged: packets died at the
  // partition wall, and the post-heal stream still recovered losses.
  ASSERT_GT(s1.traffic.severed, 0u);
  ASSERT_GT(s1.counters.recoveries, 0u);
  ASSERT_GT(s1.traffic.cross_lane_sends, 0u);

  expect_identical(s1, s2, "partition shards=1 vs shards=2");
  expect_identical(s1, s4, "partition shards=1 vs shards=4");
}

RunDigest run_hierarchy_workload(std::size_t shards,
                                 std::size_t sub_shard_members) {
  // The hierarchical repair subsystem on the deterministic-ordering hook:
  // representatives funnel NAKs and escalate level by level while loss,
  // jitter and churn run, and regions are optionally sub-sharded into
  // chunk lanes (the scale refactor's lane layout). Escalation targeting is
  // view-derived, not RNG-drawn, so every digest must be byte-identical at
  // every worker count.
  ClusterConfig cc;
  cc.region_sizes = {6, 6, 6, 6};
  cc.parents = {0, 0, 1, 2};  // a 3-deep chain hanging off the root
  cc.seed = 2035;
  cc.data_loss = 0.20;
  cc.control_loss = 0.02;
  cc.jitter = 0.15;
  cc.codec_roundtrip = true;
  cc.shards = shards;
  cc.sub_shard_members = sub_shard_members;
  cc.protocol.hierarchy.enabled = true;
  Cluster cluster(cc);

  for (int i = 0; i < 8; ++i) {
    cluster.schedule_script(
        TimePoint::zero() + Duration::millis(20) * i,
        [&cluster] {
          cluster.endpoint(0).multicast(std::vector<std::uint8_t>(48, 0x2D));
        });
  }
  cluster.schedule_script(TimePoint::zero() + Duration::millis(70),
                          [&cluster] { cluster.leave(8); });
  cluster.schedule_script(TimePoint::zero() + Duration::millis(110),
                          [&cluster] { cluster.crash(14); });

  cluster.run_for(Duration::seconds(1));
  cluster.run_until_quiet(Duration::seconds(2));

  RunDigest d;
  const RecordingSink& m = cluster.metrics();
  d.counters = m.counters();
  d.deliveries = m.deliveries();
  d.stores = m.stores();
  d.discards = m.discards();
  d.promotions = m.promotions();
  d.recovery_latencies = m.recovery_latencies();
  d.traffic = cluster.network().stats();
  d.events_fired = cluster.events_fired();
  d.final_now = cluster.now();
  d.total_buffered = cluster.total_buffered();
  d.lanes = cluster.lane_count();
  return d;
}

TEST(ShardDeterminism, HierarchyRunsAreShardCountInvariant) {
  RunDigest s1 = run_hierarchy_workload(1, 0);
  RunDigest s2 = run_hierarchy_workload(2, 0);
  RunDigest s4 = run_hierarchy_workload(4, 0);

  // The repair tree must actually have engaged: escalations on the wire and
  // recoveries completing through them.
  std::size_t esc_idx = static_cast<std::size_t>(proto::MessageType::kEscalate);
  ASSERT_GT(s1.traffic.sends_by_type[esc_idx], 0u);
  ASSERT_GT(s1.counters.recoveries, 0u);

  expect_identical(s1, s2, "hierarchy shards=1 vs shards=2");
  expect_identical(s1, s4, "hierarchy shards=1 vs shards=4");
}

TEST(ShardDeterminism, SubShardedHierarchyRunsAreShardCountInvariant) {
  // Sub-shard every 6-member region into 3-member chunk lanes (8 lanes for
  // 4 regions): the chunked lane layout changes the lookahead and the lane
  // RNG streams, so it is its own baseline — but worker count must still
  // never matter, including workers straddling chunks of one region.
  RunDigest s1 = run_hierarchy_workload(1, 3);
  RunDigest s2 = run_hierarchy_workload(2, 3);
  RunDigest s4 = run_hierarchy_workload(4, 3);

  ASSERT_EQ(s1.lanes, 8u);
  std::size_t esc_idx = static_cast<std::size_t>(proto::MessageType::kEscalate);
  ASSERT_GT(s1.traffic.sends_by_type[esc_idx], 0u);

  expect_identical(s1, s2, "sub-sharded shards=1 vs shards=2");
  expect_identical(s1, s4, "sub-sharded shards=1 vs shards=4");
}

TEST(ShardDeterminism, SoleCopyProtectedWhenRedundantVictimAvailable) {
  // Regression for the coordination cost model, at the store level: under
  // pressure, a digest-advertised (redundant) entry is evicted even though
  // the uncoordinated order (LRU) would have picked the sole-copy entry.
  using rrmp::testing::FakePolicyEnv;
  using rrmp::testing::make_data;
  FakePolicyEnv env(/*region_size=*/4, /*self=*/0, /*seed=*/5);
  buffer::CoordinationParams coord;
  coord.enabled = true;
  coord.shed_sole_copies = false;  // isolate eviction ordering from the shed
  auto store = buffer::make_store(buffer::BufferEverythingParams{},
                                  buffer::BufferBudget{0, 2}, coord);
  store->bind(&env);
  env.attach_store(store.get());

  store->store(make_data(1, 1));  // sole copy, least recently active
  env.advance(Duration::millis(1));
  store->store(make_data(1, 2));  // fresher, but advertised by neighbor 3
  store->digests().update(3, 50, {{1, 2, 1}});
  ASSERT_EQ(store->known_replicas(MessageId{1, 2}), 2u);

  store->store(make_data(1, 3));  // pressure: must evict the redundant {1,2}
  EXPECT_TRUE(store->has(MessageId{1, 1}));   // sole copy survives
  EXPECT_FALSE(store->has(MessageId{1, 2}));  // redundant copy went
  EXPECT_TRUE(store->has(MessageId{1, 3}));

  // The identical sequence uncoordinated evicts the LRU sole copy instead —
  // the behaviour the cost model exists to prevent.
  FakePolicyEnv env2(/*region_size=*/4, /*self=*/0, /*seed=*/5);
  auto plain = buffer::make_store(buffer::BufferEverythingParams{},
                                  buffer::BufferBudget{0, 2});
  plain->bind(&env2);
  env2.attach_store(plain.get());
  plain->store(make_data(1, 1));
  env2.advance(Duration::millis(1));
  plain->store(make_data(1, 2));
  plain->digests().update(3, 50, {{1, 2, 1}});  // known but ignored: disabled
  plain->store(make_data(1, 3));
  EXPECT_FALSE(plain->has(MessageId{1, 1}));
  EXPECT_TRUE(plain->has(MessageId{1, 2}));
}

TEST(ShardDeterminism, RepeatedRunIsReproducible) {
  // Same shard count twice: guards against nondeterminism that has nothing
  // to do with threading (iteration order, uninitialized state).
  RunDigest a = run_workload(2);
  RunDigest b = run_workload(2);
  expect_identical(a, b, "shards=2 run A vs run B");
}

TEST(ShardDeterminism, MergedEventStreamsAreTimeOrdered) {
  RunDigest d = run_workload(4);
  for (std::size_t i = 1; i < d.deliveries.size(); ++i) {
    ASSERT_LE(d.deliveries[i - 1].at, d.deliveries[i].at) << "index " << i;
  }
  for (std::size_t i = 1; i < d.stores.size(); ++i) {
    ASSERT_LE(d.stores[i - 1].at, d.stores[i].at) << "index " << i;
  }
}

TEST(ShardDeterminism, ShardCountClampsToLanes) {
  ClusterConfig cc;
  cc.region_sizes = {4, 4};
  cc.shards = 64;  // far more than the 2 lanes: clamped, not oversubscribed
  Cluster cluster(cc);
  EXPECT_EQ(cluster.lane_count(), 2u);
  EXPECT_LE(cluster.shard_count(), 2u);
  std::vector<MemberId> holders = {0};
  cluster.inject(0, 1, holders);
  cluster.run_until_quiet(Duration::seconds(2));
  EXPECT_TRUE(cluster.all_received(MessageId{0, 1}));
}

TEST(ShardDeterminism, QuietRunDeliversOutboxOnlyCrossRegionPacket) {
  // Regression: a top-level injection can make an endpoint emit a
  // cross-region packet while every lane queue is empty. The packet then
  // lives only in the sender lane's outbox; run_until_quiet must exchange
  // it into the destination queue rather than mistake the cluster for
  // quiescent and strand it.
  ClusterConfig cc;
  cc.region_sizes = {3, 1};
  cc.seed = 11;
  Cluster cluster(cc);
  std::vector<MemberId> region0 = cluster.region_members(0);
  MemberId requester = cluster.region_members(1)[0];
  MessageId id = cluster.inject_data_to(region0[0], 1, region0);
  for (MemberId m : region0) cluster.force_long_term(m, id);
  cluster.run_until_quiet(Duration::seconds(5));  // fully drained

  // The target buffers the message, so the repair goes out synchronously —
  // straight into the cross-lane outbox, with no timer left anywhere.
  cluster.inject_remote_request(region0[1], id, requester);
  cluster.run_until_quiet(Duration::seconds(5));
  EXPECT_TRUE(cluster.endpoint(requester).has_received(id));
  net::TrafficStats ts = cluster.network().stats();
  EXPECT_EQ(ts.cross_lane_sends, ts.cross_lane_deliveries);
  EXPECT_TRUE(cluster.network().outboxes_empty());
}

TEST(ShardDeterminism, SingleRegionCollapsesToOneLane) {
  ClusterConfig cc;
  cc.region_sizes = {8};
  cc.shards = 4;
  Cluster cluster(cc);
  EXPECT_EQ(cluster.lane_count(), 1u);
  EXPECT_EQ(cluster.shard_count(), 1u);  // nothing to parallelize
}

}  // namespace
}  // namespace rrmp::harness
