// FaultScript: the key=value spec parser (grammar, diagnostics), the
// builder/parse equivalence, schedule-time id validation, and the
// scripted-equals-programmatic determinism contract.
#include <gtest/gtest.h>

#include <optional>
#include <stdexcept>
#include <string>

#include "harness/cluster.h"
#include "harness/fault_script.h"

namespace rrmp::harness {
namespace {

using Kind = FaultEvent::Kind;

// ------------------------------------------------------------------ parse ----

TEST(FaultScriptParseTest, FullGrammarRoundTrips) {
  const char* spec = R"(
# comment-only line, then a blank one

at=0      event=link-loss  members=2,4-6 rate=0.3   # trailing comment
at=1500us event=crash      members=1
at=20ms   event=control-loss rate=0.5
at=35     event=data-loss  rate=0.125 members=0
at=40ms   event=partition  groups=0-2|3,5
at=60ms   event=data-loss  rate=0
at=80ms   event=heal
at=1s     event=rejoin     members=1
at=2s     event=leave      members=6
at=3s     event=link-loss  members=3 rate=1 src=0
)";
  std::string error;
  std::optional<FaultScript> script = FaultScript::parse(spec, &error);
  ASSERT_TRUE(script.has_value()) << error;
  ASSERT_EQ(script->size(), 10u);
  const std::vector<FaultEvent>& ev = script->events();

  EXPECT_EQ(ev[0].kind, Kind::kLinkLoss);
  EXPECT_EQ(ev[0].at, TimePoint::zero());
  EXPECT_EQ(ev[0].members, (std::vector<MemberId>{2, 4, 5, 6}));
  EXPECT_EQ(ev[0].rate, 0.3);
  EXPECT_EQ(ev[0].src, kInvalidMember);

  EXPECT_EQ(ev[1].kind, Kind::kCrash);
  EXPECT_EQ(ev[1].at, TimePoint::from_us(1500));
  EXPECT_EQ(ev[1].members, (std::vector<MemberId>{1}));

  EXPECT_EQ(ev[2].kind, Kind::kControlLoss);
  EXPECT_EQ(ev[2].at, TimePoint::zero() + Duration::millis(20));
  EXPECT_EQ(ev[2].rate, 0.5);

  // No suffix defaults to milliseconds; data-loss scoped to one sender.
  EXPECT_EQ(ev[3].kind, Kind::kDataLoss);
  EXPECT_EQ(ev[3].at, TimePoint::zero() + Duration::millis(35));
  EXPECT_EQ(ev[3].rate, 0.125);
  EXPECT_EQ(ev[3].members, (std::vector<MemberId>{0}));

  EXPECT_EQ(ev[4].kind, Kind::kPartition);
  ASSERT_EQ(ev[4].groups.size(), 2u);
  EXPECT_EQ(ev[4].groups[0], (std::vector<MemberId>{0, 1, 2}));
  EXPECT_EQ(ev[4].groups[1], (std::vector<MemberId>{3, 5}));

  // Unscoped data-loss: empty member list = every sender.
  EXPECT_EQ(ev[5].kind, Kind::kDataLoss);
  EXPECT_EQ(ev[5].rate, 0.0);
  EXPECT_TRUE(ev[5].members.empty());

  EXPECT_EQ(ev[6].kind, Kind::kHeal);

  EXPECT_EQ(ev[7].kind, Kind::kRejoin);
  EXPECT_EQ(ev[7].at, TimePoint::zero() + Duration::seconds(1));

  EXPECT_EQ(ev[8].kind, Kind::kLeave);

  EXPECT_EQ(ev[9].kind, Kind::kLinkLoss);
  EXPECT_EQ(ev[9].rate, 1.0);
  EXPECT_EQ(ev[9].src, MemberId{0});
}

TEST(FaultScriptParseTest, EmptyAndCommentOnlySpecsParseToEmptyScript) {
  std::optional<FaultScript> script = FaultScript::parse("");
  ASSERT_TRUE(script.has_value());
  EXPECT_TRUE(script->empty());

  script = FaultScript::parse("# nothing here\n\n   \t\n# still nothing\n");
  ASSERT_TRUE(script.has_value());
  EXPECT_TRUE(script->empty());
}

TEST(FaultScriptParseTest, ParseEquivalentToBuilders) {
  const char* spec =
      "at=10ms event=crash members=3,4\n"
      "at=20ms event=partition groups=0-1|2-4\n"
      "at=30ms event=heal\n"
      "at=40ms event=rejoin members=3,4\n"
      "at=50ms event=link-loss members=2 rate=0.25 src=1\n"
      "at=60ms event=data-loss rate=0.1\n"
      "at=70ms event=control-loss rate=0.2\n";
  std::optional<FaultScript> parsed = FaultScript::parse(spec);
  ASSERT_TRUE(parsed.has_value());

  TimePoint t0 = TimePoint::zero();
  FaultScript built;
  built.crash(t0 + Duration::millis(10), {3, 4})
      .partition(t0 + Duration::millis(20), {{0, 1}, {2, 3, 4}})
      .heal(t0 + Duration::millis(30))
      .rejoin(t0 + Duration::millis(40), {3, 4})
      .link_loss(t0 + Duration::millis(50), {2}, 0.25, /*src=*/1)
      .data_loss(t0 + Duration::millis(60), 0.1)
      .control_loss(t0 + Duration::millis(70), 0.2);
  EXPECT_EQ(parsed->events(), built.events());
}

TEST(FaultScriptParseTest, MalformedSpecsFailWithLineNumbers) {
  struct Case {
    const char* spec;
    const char* error_substr;
  };
  const Case cases[] = {
      {"at=10ms\n", "line 1: missing event="},
      {"event=heal\n", "line 1: missing at="},
      {"at=10ms event=explode\n", "line 1: unknown event 'explode'"},
      {"at=10ms event=crash\n", "line 1: missing members="},
      {"# fine\nat=10ms event=crash members=\n", "line 2: empty member list"},
      {"at=10ms event=crash members=5-3\n", "line 1: descending range"},
      {"at=10ms event=crash members=1,,2\n", "line 1: empty member list item"},
      {"at=10ms event=crash members=x\n", "line 1: bad member id 'x'"},
      {"at= event=heal\n", "line 1: bad time (empty value)"},
      {"at=10q event=heal\n", "line 1: bad time"},
      {"at=10ms event=data-loss\n", "line 1: missing rate="},
      {"at=10ms event=data-loss rate=nope\n", "line 1: bad rate 'nope'"},
      {"at=10ms event=data-loss rate=1.5\n", "line 1: rate must be in [0, 1]"},
      {"at=10ms heal\n", "line 1: expected key=value, got 'heal'"},
      {"at=10ms event=link-loss members=1 rate=0.5 src=?\n",
       "line 1: bad src"},
  };
  for (const Case& c : cases) {
    std::string error;
    std::optional<FaultScript> script = FaultScript::parse(c.spec, &error);
    EXPECT_FALSE(script.has_value()) << c.spec;
    EXPECT_NE(error.find(c.error_substr), std::string::npos)
        << "spec: " << c.spec << "\nerror: " << error;
  }
  // The empty-member-list case above quietly checks that comment-only lines
  // still count toward line numbers (its error is on line 2, not line 1).
}

TEST(FaultScriptParseTest, ParseFileReportsUnreadablePath) {
  std::string error;
  std::optional<FaultScript> script =
      FaultScript::parse_file("/nonexistent/no.fault", &error);
  EXPECT_FALSE(script.has_value());
  EXPECT_NE(error.find("cannot read"), std::string::npos);
}

// ------------------------------------------------------------- scheduling ----

ClusterConfig small_cluster(std::uint64_t seed) {
  ClusterConfig cc;
  cc.region_sizes = {6};
  cc.seed = seed;
  return cc;
}

TEST(FaultScriptScheduleTest, OutOfRangeIdsThrowAtScheduleTime) {
  Cluster cluster(small_cluster(7));
  FaultScript bad_member;
  bad_member.crash(TimePoint::zero() + Duration::millis(1), {6});
  EXPECT_THROW(bad_member.schedule_on(cluster), std::invalid_argument);

  FaultScript bad_group;
  bad_group.partition(TimePoint::zero() + Duration::millis(1), {{0, 99}});
  EXPECT_THROW(bad_group.schedule_on(cluster), std::invalid_argument);

  FaultScript bad_src;
  bad_src.link_loss(TimePoint::zero() + Duration::millis(1), {2}, 0.5,
                    /*src=*/17);
  EXPECT_THROW(bad_src.schedule_on(cluster), std::invalid_argument);

  // Nothing was scheduled: the cluster still runs a clean timeline.
  cluster.run_for(Duration::millis(5));
  EXPECT_EQ(cluster.network().stats().severed, 0u);
}

// A scripted run must be event-for-event identical to the same faults
// applied through hand-written schedule_script callbacks — FaultScript is a
// data encoding of the timeline, not a second fault engine.
struct RunStats {
  std::uint64_t sends = 0;
  std::uint64_t severed = 0;
  std::uint64_t delivered = 0;
  std::uint64_t recoveries = 0;

  friend bool operator==(const RunStats&, const RunStats&) = default;
};

template <typename ScheduleFaults>
RunStats run_workload(ScheduleFaults&& schedule_faults) {
  ClusterConfig cc = small_cluster(1234);
  cc.data_loss = 0.05;
  Cluster cluster(cc);
  schedule_faults(cluster);
  for (int i = 0; i < 10; ++i) {
    cluster.schedule_script(
        TimePoint::zero() + Duration::millis(2 + 4 * i), [&cluster] {
          cluster.endpoint(0).multicast(std::vector<std::uint8_t>(64, 0x5A));
        });
  }
  cluster.run_for(Duration::millis(400));
  RunStats s;
  s.sends = cluster.network().stats().sends;
  s.severed = cluster.network().stats().severed;
  s.delivered = cluster.metrics().counters().delivered;
  s.recoveries = cluster.metrics().counters().recoveries;
  return s;
}

TEST(FaultScriptScheduleTest, ScriptedRunMatchesProgrammaticRun) {
  TimePoint t0 = TimePoint::zero();
  RunStats scripted = run_workload([&](Cluster& cluster) {
    std::optional<FaultScript> script = FaultScript::parse(
        "at=5ms  event=link-loss members=5 rate=0.4\n"
        "at=10ms event=partition groups=4-5\n"
        "at=15ms event=crash members=3\n"
        "at=25ms event=heal\n"
        "at=30ms event=rejoin members=3\n");
    ASSERT_TRUE(script.has_value());
    script->schedule_on(cluster);
  });
  RunStats programmatic = run_workload([&](Cluster& cluster) {
    cluster.schedule_script(t0 + Duration::millis(5), [&cluster] {
      cluster.set_lossy_members({5}, 0.4);
    });
    cluster.schedule_script(t0 + Duration::millis(10),
                            [&cluster] { cluster.partition({{4, 5}}); });
    cluster.schedule_script(t0 + Duration::millis(15),
                            [&cluster] { cluster.crash(3); });
    cluster.schedule_script(t0 + Duration::millis(25),
                            [&cluster] { cluster.heal(); });
    cluster.schedule_script(t0 + Duration::millis(30),
                            [&cluster] { cluster.rejoin(3); });
  });
  EXPECT_EQ(scripted, programmatic);
  // The faults actually fired: the partition severed traffic.
  EXPECT_GT(scripted.severed, 0u);
  EXPECT_GT(scripted.delivered, 0u);
}

}  // namespace
}  // namespace rrmp::harness
