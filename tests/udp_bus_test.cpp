// Unit tests for the loopback-UDP datagram bus (sockets, timers, delays).
// Skipped when the environment forbids binding UDP sockets.
#include <gtest/gtest.h>

#include "net/udp_host.h"

namespace rrmp::net {
namespace {

std::unique_ptr<UdpBus> try_bus(std::size_t members, std::uint16_t port) {
  try {
    return std::make_unique<UdpBus>(members, port);
  } catch (const std::runtime_error&) {
    return nullptr;
  }
}

TEST(UdpBusTest, SendAndReceiveRoundTrip) {
  auto bus = try_bus(2, 39500);
  if (!bus) GTEST_SKIP() << "UDP sockets unavailable";
  std::vector<std::uint8_t> got;
  MemberId got_from = kInvalidMember;
  bus->set_receive_callback(
      [&](MemberId to, MemberId from, std::span<const std::uint8_t> bytes) {
        if (to == 1) {
          got.assign(bytes.begin(), bytes.end());
          got_from = from;
          bus->stop();
        }
      });
  bus->send(0, 1, {1, 2, 3, 4});
  bus->run_until(bus->now() + Duration::millis(500));
  EXPECT_EQ(got, (std::vector<std::uint8_t>{1, 2, 3, 4}));
  EXPECT_EQ(got_from, 0u);
}

TEST(UdpBusTest, TimerFiresApproximatelyOnTime) {
  auto bus = try_bus(1, 39510);
  if (!bus) GTEST_SKIP() << "UDP sockets unavailable";
  TimePoint fired_at = TimePoint::max();
  bus->schedule_after(Duration::millis(50), [&] { fired_at = bus->now(); });
  bus->run_until(bus->now() + Duration::millis(300));
  ASSERT_NE(fired_at, TimePoint::max());
  EXPECT_GE(fired_at, TimePoint::zero() + Duration::millis(49));
  EXPECT_LE(fired_at, TimePoint::zero() + Duration::millis(200));
}

TEST(UdpBusTest, CancelledTimerNeverFires) {
  auto bus = try_bus(1, 39520);
  if (!bus) GTEST_SKIP() << "UDP sockets unavailable";
  bool fired = false;
  std::uint64_t id =
      bus->schedule_after(Duration::millis(20), [&] { fired = true; });
  bus->cancel(id);
  bus->run_until(bus->now() + Duration::millis(100));
  EXPECT_FALSE(fired);
}

TEST(UdpBusTest, DelayFnPostponesDatagrams) {
  auto bus = try_bus(2, 39530);
  if (!bus) GTEST_SKIP() << "UDP sockets unavailable";
  bus->set_delay_fn([](MemberId, MemberId) { return Duration::millis(80); });
  TimePoint received_at = TimePoint::max();
  bus->set_receive_callback(
      [&](MemberId to, MemberId, std::span<const std::uint8_t>) {
        if (to == 1) {
          received_at = bus->now();
          bus->stop();
        }
      });
  bus->send(0, 1, {42});
  bus->run_until(bus->now() + Duration::millis(500));
  ASSERT_NE(received_at, TimePoint::max());
  EXPECT_GE(received_at, TimePoint::zero() + Duration::millis(79));
}

TEST(UdpBusTest, CountersTrackTraffic) {
  auto bus = try_bus(3, 39540);
  if (!bus) GTEST_SKIP() << "UDP sockets unavailable";
  int received = 0;
  bus->set_receive_callback(
      [&](MemberId, MemberId, std::span<const std::uint8_t>) {
        if (++received == 4) bus->stop();
      });
  bus->send(0, 1, {1});
  bus->send(0, 2, {2});
  bus->send(1, 2, {3});
  bus->send(2, 0, {4});
  bus->run_until(bus->now() + Duration::millis(500));
  EXPECT_EQ(bus->datagrams_sent(), 4u);
  EXPECT_EQ(bus->datagrams_received(), 4u);
}

TEST(UdpBusTest, PortCollisionThrows) {
  auto first = try_bus(2, 39550);
  if (!first) GTEST_SKIP() << "UDP sockets unavailable";
  EXPECT_THROW(UdpBus(2, 39550), std::runtime_error);
}

TEST(UdpBusTest, SendToInvalidMemberIsIgnored) {
  auto bus = try_bus(1, 39560);
  if (!bus) GTEST_SKIP() << "UDP sockets unavailable";
  bus->send(0, 99, {1});  // out of range: dropped silently
  bus->run_until(bus->now() + Duration::millis(50));
  EXPECT_EQ(bus->datagrams_sent(), 0u);
}

}  // namespace
}  // namespace rrmp::net
