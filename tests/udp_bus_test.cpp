// Unit tests for the loopback-UDP datagram bus (sockets, timers, delays,
// batched syscalls, segment-ring receive). Skipped when the environment
// forbids binding UDP sockets.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <cerrno>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "net/udp_host.h"

namespace rrmp::net {
namespace {

std::unique_ptr<UdpBus> try_bus(std::size_t members, std::uint16_t port,
                                UdpBusConfig cfg = {}) {
  try {
    return std::make_unique<UdpBus>(members, port, cfg);
  } catch (const std::runtime_error&) {
    return nullptr;
  }
}

TEST(UdpBusTest, SendAndReceiveRoundTrip) {
  auto bus = try_bus(2, 39500);
  if (!bus) GTEST_SKIP() << "UDP sockets unavailable";
  std::vector<std::uint8_t> got;
  MemberId got_from = kInvalidMember;
  bus->set_receive_callback(
      [&](MemberId to, MemberId from, std::span<const std::uint8_t> bytes) {
        if (to == 1) {
          got.assign(bytes.begin(), bytes.end());
          got_from = from;
          bus->stop();
        }
      });
  bus->send(0, 1, {1, 2, 3, 4});
  bus->run_until(bus->now() + Duration::millis(500));
  EXPECT_EQ(got, (std::vector<std::uint8_t>{1, 2, 3, 4}));
  EXPECT_EQ(got_from, 0u);
}

TEST(UdpBusTest, TimerFiresApproximatelyOnTime) {
  auto bus = try_bus(1, 39510);
  if (!bus) GTEST_SKIP() << "UDP sockets unavailable";
  TimePoint fired_at = TimePoint::max();
  bus->schedule_after(Duration::millis(50), [&] { fired_at = bus->now(); });
  bus->run_until(bus->now() + Duration::millis(300));
  ASSERT_NE(fired_at, TimePoint::max());
  EXPECT_GE(fired_at, TimePoint::zero() + Duration::millis(49));
  EXPECT_LE(fired_at, TimePoint::zero() + Duration::millis(200));
}

TEST(UdpBusTest, CancelledTimerNeverFires) {
  auto bus = try_bus(1, 39520);
  if (!bus) GTEST_SKIP() << "UDP sockets unavailable";
  bool fired = false;
  std::uint64_t id =
      bus->schedule_after(Duration::millis(20), [&] { fired = true; });
  bus->cancel(id);
  bus->run_until(bus->now() + Duration::millis(100));
  EXPECT_FALSE(fired);
}

TEST(UdpBusTest, DelayFnPostponesDatagrams) {
  auto bus = try_bus(2, 39530);
  if (!bus) GTEST_SKIP() << "UDP sockets unavailable";
  bus->set_delay_fn([](MemberId, MemberId) { return Duration::millis(80); });
  TimePoint received_at = TimePoint::max();
  bus->set_receive_callback(
      [&](MemberId to, MemberId, std::span<const std::uint8_t>) {
        if (to == 1) {
          received_at = bus->now();
          bus->stop();
        }
      });
  bus->send(0, 1, {42});
  bus->run_until(bus->now() + Duration::millis(500));
  ASSERT_NE(received_at, TimePoint::max());
  EXPECT_GE(received_at, TimePoint::zero() + Duration::millis(79));
}

TEST(UdpBusTest, CountersTrackTraffic) {
  auto bus = try_bus(3, 39540);
  if (!bus) GTEST_SKIP() << "UDP sockets unavailable";
  int received = 0;
  bus->set_receive_callback(
      [&](MemberId, MemberId, std::span<const std::uint8_t>) {
        if (++received == 4) bus->stop();
      });
  bus->send(0, 1, {1});
  bus->send(0, 2, {2});
  bus->send(1, 2, {3});
  bus->send(2, 0, {4});
  bus->run_until(bus->now() + Duration::millis(500));
  EXPECT_EQ(bus->datagrams_sent(), 4u);
  EXPECT_EQ(bus->datagrams_received(), 4u);
}

TEST(UdpBusTest, PortCollisionThrows) {
  auto first = try_bus(2, 39550);
  if (!first) GTEST_SKIP() << "UDP sockets unavailable";
  EXPECT_THROW(UdpBus(2, 39550), std::runtime_error);
}

TEST(UdpBusTest, SendToInvalidMemberIsIgnored) {
  auto bus = try_bus(1, 39560);
  if (!bus) GTEST_SKIP() << "UDP sockets unavailable";
  bus->send(0, 99, {1});  // out of range: dropped silently
  bus->run_until(bus->now() + Duration::millis(50));
  EXPECT_EQ(bus->datagrams_sent(), 0u);
}

// Regression (port wrap-around): base_port + i used to be truncated through
// uint16, so a high base port with enough members silently wrapped past
// 65535 and bound colliding/wrong ports. Construction must throw instead.
// The check runs before any socket is opened, so no skip guard is needed.
TEST(UdpBusTest, ConstructorRejectsPortRangeOverflow) {
  EXPECT_THROW(UdpBus(100, 65500), std::runtime_error);
  EXPECT_THROW(UdpBus(65537, 1024), std::runtime_error);
}

// Regression (EINTR mid-drain): any recv error used to be treated as
// "socket drained", silently abandoning queued datagrams until the next
// poll wakeup. The classification must retry on EINTR, stop only on
// EAGAIN/EWOULDBLOCK, and surface everything else as an error.
TEST(UdpBusTest, RecvErrnoClassification) {
  using detail::RecvDisposition;
  EXPECT_EQ(detail::classify_recv_errno(EINTR), RecvDisposition::kRetry);
  EXPECT_EQ(detail::classify_recv_errno(EAGAIN), RecvDisposition::kDrained);
  EXPECT_EQ(detail::classify_recv_errno(EWOULDBLOCK),
            RecvDisposition::kDrained);
  EXPECT_EQ(detail::classify_recv_errno(ECONNREFUSED),
            RecvDisposition::kError);
  EXPECT_EQ(detail::classify_recv_errno(EBADF), RecvDisposition::kError);
}

// Regression (dead copy + ignored short writes on the immediate send
// path): wrapping a vector into SharedBytes must move, not copy, and the
// short-write predicate must flag partial datagram writes.
TEST(UdpBusTest, ImmediateSendPathMovesAndDetectsShortWrites) {
  std::vector<std::uint8_t> payload(1024, 7);
  const std::uint8_t* before = payload.data();
  SharedBytes wrapped(std::move(payload));
  EXPECT_EQ(wrapped.data(), before);  // moved, not copied

  EXPECT_TRUE(detail::is_short_write(10, 1024));
  EXPECT_FALSE(detail::is_short_write(1024, 1024));
  EXPECT_FALSE(detail::is_short_write(-1, 1024));  // error, not short write
}

TEST(UdpBusTest, BurstLargerThanOneBatchAllDelivered) {
  UdpBusConfig cfg;
  cfg.batch_size = 8;  // burst spans many recvmmsg/sendmmsg batches
  auto bus = try_bus(2, 39570, cfg);
  if (!bus) GTEST_SKIP() << "UDP sockets unavailable";
  constexpr int kBurst = 50;
  std::vector<bool> seen(kBurst, false);
  int received = 0;
  bus->set_receive_callback(
      [&](MemberId to, MemberId, std::span<const std::uint8_t> bytes) {
        if (to != 1 || bytes.size() != 2) return;
        seen[bytes[0]] = true;
        if (++received == kBurst) bus->stop();
      });
  for (int i = 0; i < kBurst; ++i) {
    bus->send(0, 1, {static_cast<std::uint8_t>(i), 0xEE});
  }
  bus->run_until(bus->now() + Duration::millis(1000));
  EXPECT_EQ(received, kBurst);
  for (int i = 0; i < kBurst; ++i) EXPECT_TRUE(seen[i]) << "datagram " << i;
  EXPECT_EQ(bus->datagrams_sent(), static_cast<std::uint64_t>(kBurst));
}

TEST(UdpBusTest, StrayPortFilteringUnderBatching) {
  auto bus = try_bus(2, 39580);
  if (!bus) GTEST_SKIP() << "UDP sockets unavailable";
  int delivered = 0;
  bus->set_receive_callback(
      [&](MemberId, MemberId from, std::span<const std::uint8_t>) {
        ++delivered;
        EXPECT_EQ(from, 0u);  // never the stray sender
      });
  // An unrelated socket far outside the bus's port range sprays datagrams
  // at member 1 — they must be counted but never delivered.
  int stray = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(stray, 0);
  sockaddr_in dst{};
  dst.sin_family = AF_INET;
  dst.sin_port = htons(39581);
  dst.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  std::uint8_t junk[3] = {1, 2, 3};
  for (int i = 0; i < 5; ++i) {
    ::sendto(stray, junk, sizeof(junk), 0,
             reinterpret_cast<sockaddr*>(&dst), sizeof(dst));
  }
  bus->send(0, 1, {42});
  bus->run_until(bus->now() + Duration::millis(300));
  ::close(stray);
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(bus->datagrams_received(), 6u);  // 5 stray + 1 legit
}

// The zero-copy contract: a SharedBytes held across further receives stays
// intact because the ring replaces (never overwrites) a still-referenced
// slot when its turn comes around again.
TEST(UdpBusTest, RingSlotReuseAfterReleasePreservesPinnedPayload) {
  UdpBusConfig cfg;
  cfg.batch_size = 2;
  cfg.ring_segments = 4;  // tiny ring: wraps quickly
  auto bus = try_bus(2, 39590, cfg);
  if (!bus) GTEST_SKIP() << "UDP sockets unavailable";
  SharedBytes pinned;
  int received = 0;
  constexpr int kTotal = 24;  // wraps the 4-slot ring several times
  bus->set_receive_callback(
      [&](MemberId to, MemberId, SharedBytes bytes) {
        if (to != 1) return;
        if (received == 0) pinned = bytes;  // pin the first slot
        if (++received == kTotal) bus->stop();
      });
  for (int i = 0; i < kTotal; ++i) {
    bus->send(0, 1, {static_cast<std::uint8_t>(0x10 + i), 0x77});
  }
  bus->run_until(bus->now() + Duration::millis(1000));
  ASSERT_EQ(received, kTotal);
  // The pinned view still reads the *first* datagram's bytes.
  ASSERT_EQ(pinned.size(), 2u);
  EXPECT_EQ(pinned.data()[0], 0x10);
  EXPECT_EQ(pinned.data()[1], 0x77);
  // The ring had to replace the pinned slot at least once to keep going.
  EXPECT_GE(bus->ring_replacements(), 1u);
}

TEST(UdpBusTest, ScalarFallbackPathStillDelivers) {
  UdpBusConfig cfg;
  cfg.batched_syscalls = false;  // forced pre-batching path
  auto bus = try_bus(2, 39600, cfg);
  if (!bus) GTEST_SKIP() << "UDP sockets unavailable";
  EXPECT_FALSE(bus->batching_active());
  std::vector<std::uint8_t> got;
  bus->set_receive_callback(
      [&](MemberId to, MemberId, std::span<const std::uint8_t> bytes) {
        if (to == 1) {
          got.assign(bytes.begin(), bytes.end());
          bus->stop();
        }
      });
  bus->send(0, 1, {9, 8, 7});
  bus->run_until(bus->now() + Duration::millis(500));
  EXPECT_EQ(got, (std::vector<std::uint8_t>{9, 8, 7}));
}

TEST(UdpBusTest, SharedFanOutDeliversOneWireImagePerReceiver) {
  auto bus = try_bus(3, 39610);
  if (!bus) GTEST_SKIP() << "UDP sockets unavailable";
  int received = 0;
  bus->set_receive_callback(
      [&](MemberId, MemberId, std::span<const std::uint8_t> bytes) {
        EXPECT_EQ(bytes.size(), 4u);
        if (++received == 2) bus->stop();
      });
  SharedBytes wire(std::vector<std::uint8_t>{1, 2, 3, 4});
  bus->send_shared(0, 1, wire);  // refcounted: no per-receiver copy
  bus->send_shared(0, 2, wire);
  bus->run_until(bus->now() + Duration::millis(500));
  EXPECT_EQ(received, 2);
  EXPECT_EQ(bus->datagrams_sent(), 2u);
}

// Subset ownership (thread-per-core runtime): two buses over one port
// group, each binding half the members, exchange datagrams through the
// kernel.
TEST(UdpBusTest, SubsetBusesExchangeAcrossOwnershipBoundary) {
  UdpBusConfig lo;
  lo.first_member = 0;
  lo.owned_count = 1;
  UdpBusConfig hi;
  hi.first_member = 1;
  hi.owned_count = 1;
  auto bus_lo = try_bus(2, 39620, lo);
  if (!bus_lo) GTEST_SKIP() << "UDP sockets unavailable";
  auto bus_hi = try_bus(2, 39620, hi);
  ASSERT_TRUE(bus_hi) << "subset buses must not collide on ports";
  EXPECT_TRUE(bus_lo->owns(0));
  EXPECT_FALSE(bus_lo->owns(1));
  std::vector<std::uint8_t> got;
  MemberId got_from = kInvalidMember;
  bus_hi->set_receive_callback(
      [&](MemberId to, MemberId from, std::span<const std::uint8_t> bytes) {
        if (to == 1) {
          got.assign(bytes.begin(), bytes.end());
          got_from = from;
          bus_hi->stop();
        }
      });
  bus_lo->send(0, 1, {5, 6});
  bus_lo->flush_sends();
  bus_hi->run_until(bus_hi->now() + Duration::millis(500));
  EXPECT_EQ(got, (std::vector<std::uint8_t>{5, 6}));
  EXPECT_EQ(got_from, 0u);
}

// GSO/GRO offload: a burst of equal-size datagrams to one receiver is sent
// as UDP_SEGMENT trains and received (possibly kernel-coalesced) with every
// datagram's distinct content and per-destination order intact. Where the
// kernel lacks the offload, the bus silently falls back and the same
// contract holds.
TEST(UdpBusTest, OffloadTrainsPreserveDatagramBoundariesAndOrder) {
  UdpBusConfig cfg;
  cfg.batch_size = 16;
  cfg.segmentation_offload = true;
  auto bus = try_bus(2, 39640, cfg);
  if (!bus) GTEST_SKIP() << "UDP sockets unavailable";
  constexpr int kCount = 40;
  std::vector<std::vector<std::uint8_t>> got;
  bus->set_receive_callback(
      [&](MemberId to, MemberId, SharedBytes bytes) {
        if (to == 1) got.emplace_back(bytes.data(), bytes.data() + bytes.size());
      });
  for (int i = 0; i < kCount; ++i) {
    std::vector<std::uint8_t> payload(64, 0);
    payload[0] = static_cast<std::uint8_t>(i);
    payload[63] = static_cast<std::uint8_t>(0xFF - i);
    bus->send(0, 1, std::move(payload));
  }
  // A trailing burst of different sizes must survive the train carving.
  bus->send(0, 1, {0xEE});
  bus->send(0, 1, {0xDD, 0xDC, 0xDB});
  bus->run_until(bus->now() + Duration::millis(500));
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kCount) + 2);
  for (int i = 0; i < kCount; ++i) {
    ASSERT_EQ(got[static_cast<std::size_t>(i)].size(), 64u) << "datagram " << i;
    EXPECT_EQ(got[static_cast<std::size_t>(i)][0],
              static_cast<std::uint8_t>(i));
    EXPECT_EQ(got[static_cast<std::size_t>(i)][63],
              static_cast<std::uint8_t>(0xFF - i));
  }
  EXPECT_EQ(got[kCount], std::vector<std::uint8_t>{0xEE});
  EXPECT_EQ(got[kCount + 1], (std::vector<std::uint8_t>{0xDD, 0xDC, 0xDB}));
  if (bus->offload_active()) {
    // 40 equal-size datagrams queued together must have trained: far fewer
    // send syscalls than datagrams.
    EXPECT_GE(bus->gso_batches(), 1u);
    EXPECT_LT(bus->send_syscalls(), static_cast<std::uint64_t>(kCount));
  }
}

// Round-robin fan-out across several receivers: the flush buckets the
// queue by destination, so every receiver gets its full, in-order stream
// even when trains and singletons interleave.
TEST(UdpBusTest, OffloadFanOutBucketsByDestination) {
  UdpBusConfig cfg;
  cfg.segmentation_offload = true;
  auto bus = try_bus(4, 39650, cfg);
  if (!bus) GTEST_SKIP() << "UDP sockets unavailable";
  constexpr int kRounds = 30;
  std::vector<std::vector<std::uint8_t>> per_member[4];
  bus->set_receive_callback(
      [&](MemberId to, MemberId, SharedBytes bytes) {
        per_member[to].emplace_back(bytes.data(), bytes.data() + bytes.size());
      });
  for (int i = 0; i < kRounds; ++i) {
    for (MemberId to = 1; to < 4; ++to) {
      bus->send(0, to, {static_cast<std::uint8_t>(i), std::uint8_t(to)});
    }
  }
  bus->run_until(bus->now() + Duration::millis(500));
  for (MemberId to = 1; to < 4; ++to) {
    ASSERT_EQ(per_member[to].size(), static_cast<std::size_t>(kRounds))
        << "member " << to;
    for (int i = 0; i < kRounds; ++i) {
      EXPECT_EQ(per_member[to][static_cast<std::size_t>(i)],
                (std::vector<std::uint8_t>{static_cast<std::uint8_t>(i),
                                           std::uint8_t(to)}))
          << "member " << to << " datagram " << i;
    }
  }
}

}  // namespace
}  // namespace rrmp::net
