// End-to-end protocol tests on the simulated cluster: dissemination under
// loss, local and remote recovery, two-phase buffering dynamics, search,
// handoff under churn.
#include <gtest/gtest.h>

#include "harness/cluster.h"
#include "harness/experiments.h"

namespace rrmp::harness {
namespace {

TEST(Integration, SingleRegionFullDeliveryWithScriptedLoss) {
  ClusterConfig cc;
  cc.region_sizes = {20};
  cc.seed = 42;
  Cluster cluster(cc);
  // Only 3 of 20 members receive the initial multicast.
  std::vector<MemberId> holders = {0, 5, 9};
  MessageId id = cluster.inject(0, 1, holders);
  EXPECT_EQ(cluster.count_received(id), 3u);
  cluster.run_until_quiet(Duration::seconds(5));
  EXPECT_TRUE(cluster.all_received(id));
}

TEST(Integration, RegionalLossRepairedThroughParentRegion) {
  ClusterConfig cc;
  cc.region_sizes = {10, 10};  // region 1 is a child of region 0
  cc.seed = 7;
  Cluster cluster(cc);
  // The entire child region misses the message.
  std::vector<MemberId> parent = cluster.region_members(0);
  MessageId id = cluster.inject_data_to(parent[0], 1, parent);
  cluster.inject_session_to(parent[0], 1, cluster.region_members(1));
  cluster.run_until_quiet(Duration::seconds(5));
  EXPECT_TRUE(cluster.all_received(id));
  // The repair crossed regions and was re-multicast locally.
  EXPECT_GE(cluster.metrics().counters().remote_repairs_sent, 1u);
  EXPECT_GE(cluster.metrics().counters().regional_multicasts, 1u);
}

TEST(Integration, RealMulticastPathDeliversUnderRandomLoss) {
  ClusterConfig cc;
  cc.region_sizes = {15, 15};
  cc.data_loss = 0.3;
  cc.seed = 99;
  Cluster cluster(cc);
  std::vector<MessageId> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(cluster.endpoint(0).multicast({1, 2, 3}));
  }
  cluster.run_for(Duration::seconds(2));
  for (const MessageId& id : ids) {
    EXPECT_TRUE(cluster.all_received(id)) << "message " << id.seq;
  }
}

TEST(Integration, TwoPhaseBufferConvergesToFewLongTermBufferers) {
  ClusterConfig cc;
  cc.region_sizes = {100};
  cc.seed = 11;
  Cluster cluster(cc);
  std::vector<MemberId> all = cluster.region_members(0);
  MessageId id = cluster.inject_data_to(all[0], 1, all);  // everyone has it
  EXPECT_EQ(cluster.count_buffered(id), 100u);
  cluster.run_for(Duration::millis(200));  // idle threshold passes
  std::size_t remaining = cluster.count_buffered(id);
  EXPECT_LT(remaining, 25u);  // ~Poisson(6): far fewer than everyone
  EXPECT_EQ(cluster.count_long_term(id), remaining);
}

TEST(Integration, SearchLocatesLongTermBufferer) {
  SearchResult r = run_search_once(/*region_size=*/100, /*bufferers=*/5,
                                   /*seed=*/123);
  EXPECT_TRUE(r.found);
  EXPECT_GE(r.search_ms, 0.0);
  EXPECT_LT(r.search_ms, 200.0);
}

TEST(Integration, HandoffKeepsMessageRecoverableAfterAllBufferersLeave) {
  ChurnOutcome with = run_churn_handoff(true, 40, /*trials=*/5, /*seed=*/5);
  EXPECT_EQ(with.recovered, 5u);
  ChurnOutcome without = run_churn_handoff(false, 40, /*trials=*/5, /*seed=*/5);
  EXPECT_EQ(without.recovered, 0u);
}

}  // namespace
}  // namespace rrmp::harness
