// Sharded-cluster stress (ISSUE 2, tier2): a 16-region × 200-host cluster
// under Gilbert–Elliott control-plane loss, run on the maximum shard count.
// Asserts the barrier exchange neither loses nor duplicates cross-region
// packets (conservation of the cross-lane counters), that every stream
// message is delivered everywhere exactly once, and that teardown is clean.
//
// RRMP_STRESS_HOSTS (env) overrides hosts-per-region — the ThreadSanitizer
// CI leg shrinks the cluster so the instrumented run stays inside the ctest
// timeout while still exercising every cross-thread code path.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <vector>

#include "harness/cluster.h"
#include "net/loss_model.h"

namespace rrmp::harness {
namespace {

std::size_t hosts_per_region() {
  if (const char* env = std::getenv("RRMP_STRESS_HOSTS")) {
    long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 200;
}

TEST(ShardStress, SixteenRegionsUnderBurstLossConserveCrossRegionPackets) {
  constexpr std::size_t kRegions = 16;
  constexpr int kMessages = 6;
  const std::size_t hosts = hosts_per_region();

  ClusterConfig cc;
  cc.region_sizes.assign(kRegions, hosts);
  cc.seed = 0x57E55;
  cc.data_loss = 0.10;
  cc.shards = 0;  // hardware concurrency, clamped to 16 lanes
  Cluster cluster(cc);
  ASSERT_EQ(cluster.lane_count(), kRegions);

  // Bursty loss on the control plane (requests/repairs/sessions); each lane
  // owns a clone of the chain, so bursts are lane-local and deterministic.
  cluster.network().set_control_loss(std::make_unique<net::GilbertElliottLoss>(
      /*p_gb=*/0.05, /*p_bg=*/0.30, /*loss_good=*/0.01, /*loss_bad=*/0.25));

  for (int i = 0; i < kMessages; ++i) {
    cluster.schedule_script(
        TimePoint::zero() + Duration::millis(25) * i,
        [&cluster] {
          cluster.endpoint(0).multicast(std::vector<std::uint8_t>(64, 0x5C));
        });
  }
  cluster.run_for(Duration::millis(25) * kMessages + Duration::millis(500));
  cluster.run_until_quiet(Duration::seconds(20));

  // Every message reached every member despite data loss + bursty control
  // loss (regional recovery, then cross-region requests).
  for (int seq = 1; seq <= kMessages; ++seq) {
    EXPECT_TRUE(cluster.all_received(MessageId{0, static_cast<std::uint64_t>(seq)}))
        << "message " << seq << " not fully delivered";
  }

  // The sender's periodic session announcements never stop on their own, so
  // the run above ends with announcements still in flight. Halt the sender
  // and drain so the conservation check below can demand exact equality.
  cluster.endpoint(0).halt();
  cluster.run_until_quiet(Duration::seconds(30));

  // Cross-region packet conservation: every packet a lane put in its outbox
  // was inserted into exactly one destination queue and delivered exactly
  // once (no churn in this run, so nothing may vanish or double up).
  net::TrafficStats ts = cluster.network().stats();
  EXPECT_GT(ts.cross_lane_sends, 0u);
  EXPECT_EQ(ts.cross_lane_sends, ts.cross_lane_deliveries);
  EXPECT_TRUE(cluster.network().outboxes_empty());

  // No member saw the same message twice.
  std::map<std::pair<MemberId, MessageId>, int> seen;
  for (const auto& ev : cluster.metrics().deliveries()) {
    int& n = seen[{ev.member, ev.id}];
    ++n;
    ASSERT_LE(n, 1) << "duplicate delivery of " << ev.id << " at member "
                    << ev.member;
  }

  // Nobody is wedged mid-recovery.
  for (MemberId m = 0; m < cluster.size(); ++m) {
    ASSERT_EQ(cluster.endpoint(m).active_recoveries(), 0u) << "member " << m;
  }
  // Clean shutdown = scope exit without crash; ASan/TSan legs verify frees
  // and lock discipline.
}

TEST(ShardStress, ChurnDuringShardedRunKeepsConservationModuloDetaches) {
  // Crash + leave in distinct regions mid-run: cross-lane packets addressed
  // to detached members legitimately vanish, so conservation becomes an
  // inequality, but the exchange must still drain and the run stay stable.
  const std::size_t hosts = std::max<std::size_t>(8, hosts_per_region() / 10);
  ClusterConfig cc;
  cc.region_sizes.assign(8, hosts);
  cc.seed = 0xC4A05;
  cc.data_loss = 0.15;
  cc.control_loss = 0.02;
  cc.jitter = 0.10;
  cc.shards = 0;
  Cluster cluster(cc);

  for (int i = 0; i < 10; ++i) {
    cluster.schedule_script(
        TimePoint::zero() + Duration::millis(10) * i,
        [&cluster] {
          cluster.endpoint(0).multicast(std::vector<std::uint8_t>(32, 0x7B));
        });
  }
  const MemberId crash_victim = static_cast<MemberId>(hosts + 1);      // region 1
  const MemberId leave_victim = static_cast<MemberId>(3 * hosts + 2);  // region 3
  cluster.schedule_script(TimePoint::zero() + Duration::millis(40),
                          [&cluster, crash_victim] { cluster.crash(crash_victim); });
  cluster.schedule_script(TimePoint::zero() + Duration::millis(80),
                          [&cluster, leave_victim] { cluster.leave(leave_victim); });

  cluster.run_for(Duration::seconds(1));
  cluster.run_until_quiet(Duration::seconds(10));

  net::TrafficStats ts = cluster.network().stats();
  EXPECT_GT(ts.cross_lane_sends, 0u);
  EXPECT_GE(ts.cross_lane_sends, ts.cross_lane_deliveries);
  EXPECT_TRUE(cluster.network().outboxes_empty());
  for (int seq = 1; seq <= 10; ++seq) {
    EXPECT_TRUE(cluster.all_received(MessageId{0, static_cast<std::uint64_t>(seq)}))
        << "message " << seq;
  }
}

}  // namespace
}  // namespace rrmp::harness
