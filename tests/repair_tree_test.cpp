// Unit + harness tests for the hierarchical repair subsystem (src/repair):
// rendezvous election, RepairTree construction/rebuild determinism, and
// end-to-end multi-level recovery through representatives.
#include <gtest/gtest.h>

#include <algorithm>

#include "harness/cluster.h"
#include "membership/directory.h"
#include "net/topology.h"
#include "repair/hierarchy.h"
#include "repair/repair_tree.h"

namespace rrmp {
namespace {

// ---- pure election ---------------------------------------------------------

TEST(HierarchyElectionTest, OrderIndependent) {
  std::vector<MemberId> a = {5, 9, 1, 14, 3};
  std::vector<MemberId> b = a;
  std::sort(b.begin(), b.end());
  std::reverse(b.begin(), b.end());
  for (std::uint64_t gen = 0; gen < 4; ++gen) {
    EXPECT_EQ(repair::elect_representative(a, 0x5A17, gen),
              repair::elect_representative(b, 0x5A17, gen));
  }
}

TEST(HierarchyElectionTest, EmptyAndSingleton) {
  EXPECT_EQ(repair::elect_representative({}, 1, 0), kInvalidMember);
  EXPECT_EQ(repair::elect_representative({42}, 1, 0), MemberId{42});
  EXPECT_EQ(repair::elect_representative({42}, 1, 99), MemberId{42});
}

TEST(HierarchyElectionTest, WinnerIsAMember) {
  std::vector<MemberId> members;
  for (MemberId m = 100; m < 120; ++m) members.push_back(m);
  for (std::uint64_t gen = 0; gen < 8; ++gen) {
    MemberId rep = repair::elect_representative(members, 7, gen);
    EXPECT_NE(std::find(members.begin(), members.end(), rep), members.end());
  }
}

TEST(HierarchyElectionTest, GenerationReshufflesDeterministically) {
  std::vector<MemberId> members;
  for (MemberId m = 0; m < 16; ++m) members.push_back(m);
  // Deterministic for a fixed (salt, generation)...
  EXPECT_EQ(repair::elect_representative(members, 3, 5),
            repair::elect_representative(members, 3, 5));
  // ...and the generation axis actually moves the assignment: over eight
  // generations of sixteen candidates at this salt, at least two distinct
  // winners appear (pure function — no flakiness).
  std::vector<MemberId> winners;
  for (std::uint64_t gen = 0; gen < 8; ++gen) {
    winners.push_back(repair::elect_representative(members, 3, gen));
  }
  std::sort(winners.begin(), winners.end());
  winners.erase(std::unique(winners.begin(), winners.end()), winners.end());
  EXPECT_GE(winners.size(), 2u);
}

// ---- RepairTree ------------------------------------------------------------

net::Topology chain_topology(std::size_t levels, std::size_t region_size) {
  std::vector<std::size_t> sizes(levels, region_size);
  std::vector<RegionId> parents(levels);
  for (std::size_t r = 0; r < levels; ++r) {
    parents[r] = r == 0 ? 0 : static_cast<RegionId>(r - 1);
  }
  return net::make_hierarchy(sizes, Duration::millis(10), Duration::millis(50),
                             &parents);
}

TEST(RepairTreeTest, ConstructionIsDeterministic) {
  net::Topology topo = chain_topology(3, 8);
  membership::Directory dir(topo);
  repair::HierarchyParams params;
  params.enabled = true;
  params.salt = 0xABCD;
  repair::RepairTree t1(dir, params);
  repair::RepairTree t2(dir, params);
  EXPECT_EQ(t1.current(), t2.current());
  for (RegionId r = 0; r < 3; ++r) {
    const std::vector<MemberId>& members = topo.members_of(r);
    EXPECT_NE(std::find(members.begin(), members.end(), t1.representative(r)),
              members.end());
  }
  EXPECT_EQ(t1.parent_representative(0), kInvalidMember);  // root
  EXPECT_EQ(t1.parent_representative(1), t1.representative(0));
  EXPECT_EQ(t1.parent_representative(2), t1.representative(1));
}

TEST(RepairTreeTest, ViewChangeRebuild) {
  net::Topology topo = chain_topology(2, 6);
  membership::Directory dir(topo);
  repair::RepairTree tree(dir, {});
  MemberId old_rep = tree.representative(0);
  dir.mark_failed(old_rep);
  tree.rebuild();
  MemberId new_rep = tree.representative(0);
  EXPECT_NE(new_rep, old_rep);
  EXPECT_TRUE(dir.alive(new_rep));
  // Rejoin restores the exact original assignment: the election is a pure
  // function of (members, salt, generation).
  dir.mark_joined(old_rep);
  tree.rebuild();
  EXPECT_EQ(tree.representative(0), old_rep);
}

TEST(RepairTreeTest, GenerationBumpRebuilds) {
  net::Topology topo = chain_topology(1, 16);
  membership::Directory dir(topo);
  repair::RepairTree tree(dir, {});
  EXPECT_EQ(tree.generation(), 0u);
  std::vector<MemberId> winners;
  for (std::uint64_t gen = 0; gen < 8; ++gen) {
    tree.set_generation(gen);
    EXPECT_EQ(tree.generation(), gen);
    winners.push_back(tree.representative(0));
  }
  std::sort(winners.begin(), winners.end());
  winners.erase(std::unique(winners.begin(), winners.end()), winners.end());
  EXPECT_GE(winners.size(), 2u);  // the bump genuinely re-runs the election
}

TEST(RepairTreeTest, EmptyRegionHasNoRepresentative) {
  net::Topology topo = chain_topology(2, 2);
  membership::Directory dir(topo);
  for (MemberId m : topo.members_of(1)) dir.mark_failed(m);
  repair::RepairTree tree(dir, {});
  EXPECT_EQ(tree.representative(1), kInvalidMember);
  EXPECT_NE(tree.representative(0), kInvalidMember);
}

// ---- end-to-end hierarchical recovery --------------------------------------

harness::ClusterConfig hierarchy_chain_config(std::size_t depth,
                                              std::size_t region_size,
                                              std::uint64_t seed) {
  harness::ClusterConfig cc;
  cc.region_sizes.assign(depth + 1, region_size);
  cc.parents.resize(depth + 1);
  for (std::size_t r = 0; r <= depth; ++r) {
    cc.parents[r] = r == 0 ? 0 : static_cast<RegionId>(r - 1);
  }
  cc.seed = seed;
  cc.protocol.hierarchy.enabled = true;
  return cc;
}

TEST(HierarchicalRecoveryTest, DeepChainRecoversThroughRepresentatives) {
  harness::Cluster cluster(hierarchy_chain_config(3, 10, 0x41));
  std::vector<MemberId> root = cluster.region_members(0);
  MessageId id = cluster.inject_data_to(root[0], 1, root);
  for (RegionId r = 1; r <= 3; ++r) {
    cluster.inject_session_to(root[0], 1, cluster.region_members(r));
  }
  cluster.run_until_quiet(Duration::seconds(30));
  EXPECT_TRUE(cluster.all_received(id));
  // The funnel property: only one member per non-root region escalates, so
  // cross-region request traffic is per-region, not per-member. Allow
  // generous retries and still stay far under the flat path's volume.
  EXPECT_GT(cluster.metrics().counters().remote_requests_sent, 0u);
  EXPECT_LE(cluster.metrics().counters().remote_requests_sent, 30u);
}

TEST(HierarchicalRecoveryTest, RunsAreDeterministic) {
  auto run = [](std::size_t shards) {
    harness::ClusterConfig cc = hierarchy_chain_config(2, 8, 0x42);
    cc.shards = shards;
    harness::Cluster cluster(cc);
    std::vector<MemberId> root = cluster.region_members(0);
    MessageId id = cluster.inject_data_to(root[0], 1, root);
    for (RegionId r = 1; r <= 2; ++r) {
      cluster.inject_session_to(root[0], 1, cluster.region_members(r));
    }
    cluster.run_until_quiet(Duration::seconds(30));
    EXPECT_TRUE(cluster.all_received(id));
    return cluster.events_fired();
  };
  std::uint64_t once = run(1);
  EXPECT_EQ(once, run(1));
  EXPECT_EQ(once, run(2));
}

TEST(HierarchicalRecoveryTest, SubShardedLanesStayDeterministic) {
  auto run = [](std::size_t sub_shard, std::size_t shards) {
    harness::ClusterConfig cc = hierarchy_chain_config(2, 12, 0x43);
    cc.sub_shard_members = sub_shard;
    cc.shards = shards;
    harness::Cluster cluster(cc);
    std::vector<MemberId> root = cluster.region_members(0);
    MessageId id = cluster.inject_data_to(root[0], 1, root);
    for (RegionId r = 1; r <= 2; ++r) {
      cluster.inject_session_to(root[0], 1, cluster.region_members(r));
    }
    cluster.run_until_quiet(Duration::seconds(30));
    EXPECT_TRUE(cluster.all_received(id));
    return cluster.events_fired();
  };
  // Sub-sharding splits each 12-member region into 4-member chunk lanes.
  // Worker count must never change results; lane layout may (different
  // lookahead), so compare within each layout.
  std::uint64_t sharded = run(4, 1);
  EXPECT_EQ(sharded, run(4, 2));
  EXPECT_EQ(sharded, run(4, 4));
  EXPECT_EQ(run(0, 1), run(0, 2));
}

TEST(HierarchicalRecoveryTest, RepresentativeCrashFailsOver) {
  // Crash region 1's elected representative mid-recovery; the remaining
  // members re-elect deterministically and recovery still completes.
  harness::ClusterConfig cc = hierarchy_chain_config(1, 8, 0x44);
  harness::Cluster cluster(cc);
  repair::RepairTree tree(cluster.directory(), cc.protocol.hierarchy);
  MemberId rep = tree.representative(1);
  ASSERT_NE(rep, kInvalidMember);

  std::vector<MemberId> root = cluster.region_members(0);
  MessageId id = cluster.inject_data_to(root[0], 1, root);
  cluster.inject_session_to(root[0], 1, cluster.region_members(1));
  cluster.schedule_script_after(Duration::millis(5),
                                [&cluster, rep] { cluster.crash(rep); });
  cluster.run_until_quiet(Duration::seconds(30));
  for (MemberId m : cluster.region_members(1)) {
    if (m == rep) continue;
    EXPECT_TRUE(cluster.endpoint(m).has_received(id)) << "member " << m;
  }
}

}  // namespace
}  // namespace rrmp
