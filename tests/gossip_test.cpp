// Tests for the gossip-style failure detector substrate ([13], paper §2).
#include <gtest/gtest.h>

#include "harness/cluster.h"

namespace rrmp::harness {
namespace {

// Wire the detector on every member of a single-region cluster so that
// suspicion updates each member's own view through its SimHost.
void enable_fd_everywhere(Cluster& cluster, GossipConfig cfg) {
  for (MemberId m = 0; m < cluster.size(); ++m) {
    SimHost* host = &cluster.host(m);
    cluster.endpoint(m).enable_gossip_fd(
        cfg, [host](MemberId peer, bool suspected) {
          host->set_suspected(peer, suspected);
        });
  }
}

TEST(GossipFd, NoFalsePositivesWhenAllAlive) {
  ClusterConfig cc;
  cc.region_sizes = {10};
  cc.seed = 1;
  Cluster cluster(cc);
  GossipConfig g{Duration::millis(10), Duration::millis(100)};
  enable_fd_everywhere(cluster, g);
  cluster.run_for(Duration::seconds(2));
  for (MemberId m = 0; m < cluster.size(); ++m) {
    for (MemberId peer = 0; peer < cluster.size(); ++peer) {
      EXPECT_FALSE(cluster.host(m).suspects(peer))
          << m << " wrongly suspects " << peer;
    }
  }
}

TEST(GossipFd, CrashedMemberIsSuspectedByEveryone) {
  ClusterConfig cc;
  cc.region_sizes = {10};
  cc.seed = 2;
  Cluster cluster(cc);
  GossipConfig g{Duration::millis(10), Duration::millis(100)};
  enable_fd_everywhere(cluster, g);
  cluster.run_for(Duration::millis(300));  // tables converge
  cluster.crash(4);
  cluster.run_for(Duration::millis(500));  // > fail_timeout
  for (MemberId m = 0; m < cluster.size(); ++m) {
    if (m == 4 || !cluster.directory().alive(m)) continue;
    EXPECT_TRUE(cluster.host(m).suspects(4)) << "member " << m;
  }
}

TEST(GossipFd, SuspicionShrinksTheLocalView) {
  ClusterConfig cc;
  cc.region_sizes = {6};
  cc.seed = 3;
  Cluster cluster(cc);
  GossipConfig g{Duration::millis(10), Duration::millis(80)};
  enable_fd_everywhere(cluster, g);
  cluster.run_for(Duration::millis(200));
  // Crash WITHOUT telling the directory: only gossip can notice. Halt the
  // endpoint and detach it from the network.
  cluster.endpoint(5).halt();
  cluster.network().detach(5);
  cluster.run_for(Duration::millis(500));
  EXPECT_TRUE(cluster.host(0).suspects(5));
  EXPECT_FALSE(cluster.host(0).local_view().contains(5));
  EXPECT_EQ(cluster.host(0).local_view().size(), 5u);
}

TEST(GossipFd, RecoveryStillWorksAfterBuffererCrashDetected) {
  // A member crashes silently; others suspect it and stop probing it, so a
  // later recovery converges instead of wasting requests on the corpse.
  ClusterConfig cc;
  cc.region_sizes = {8};
  cc.seed = 4;
  Cluster cluster(cc);
  GossipConfig g{Duration::millis(10), Duration::millis(80)};
  enable_fd_everywhere(cluster, g);
  cluster.run_for(Duration::millis(200));
  cluster.endpoint(2).halt();
  cluster.network().detach(2);
  cluster.run_for(Duration::millis(500));  // suspicion settles

  // Now a message appears at member 0 only; everyone else must recover it
  // without ever relying on member 2.
  MessageId id = cluster.inject_data_to(0, 1, std::vector<MemberId>{0});
  std::vector<MemberId> alive;
  for (MemberId m = 0; m < cluster.size(); ++m) {
    if (m != 2) alive.push_back(m);
  }
  cluster.inject_session_to(0, 1, alive);
  cluster.run_for(Duration::seconds(3));
  for (MemberId m : alive) {
    EXPECT_TRUE(cluster.endpoint(m).has_received(id)) << "member " << m;
  }
}

TEST(GossipFd, HandleGossipMergesByMaximum) {
  // Direct unit check on the merge rule through a cluster endpoint.
  ClusterConfig cc;
  cc.region_sizes = {3};
  cc.seed = 5;
  Cluster cluster(cc);
  bool suspected_event = false;
  cluster.endpoint(0).enable_gossip_fd(
      GossipConfig{Duration::millis(10), Duration::millis(50)},
      [&](MemberId, bool s) { suspected_event = s; });
  // Feed a heartbeat for member 1, then silence: member 0 suspects it.
  proto::Gossip g{1, {proto::Heartbeat{1, 5}}};
  cluster.endpoint(0).handle_message(proto::Message{g}, 1);
  cluster.run_for(Duration::millis(200));
  EXPECT_TRUE(suspected_event);
  // A newer heartbeat lifts the suspicion.
  proto::Gossip g2{1, {proto::Heartbeat{1, 6}}};
  cluster.endpoint(0).handle_message(proto::Message{g2}, 1);
  EXPECT_FALSE(suspected_event);
}

TEST(GossipFd, GossipTrafficFlowsPeriodically) {
  ClusterConfig cc;
  cc.region_sizes = {5};
  cc.seed = 6;
  Cluster cluster(cc);
  enable_fd_everywhere(cluster,
                       GossipConfig{Duration::millis(10), Duration::millis(100)});
  cluster.run_for(Duration::millis(205));
  std::uint64_t gossip_sends = cluster.network().stats().sends_by_type[
      static_cast<int>(proto::MessageType::kGossip)];
  // 5 members x ~20 rounds: one gossip per member per round.
  EXPECT_GE(gossip_sends, 80u);
  EXPECT_LE(gossip_sends, 120u);
}

}  // namespace
}  // namespace rrmp::harness
