// Unit + protocol tests for windowed send admission (flow control): the
// FlowController state machine in isolation, then the Endpoint integration
// (deferred sends, credit acks, queue drain, sole-member bypass) through the
// simulated cluster.
#include <gtest/gtest.h>

#include "harness/cluster.h"
#include "rrmp/flow_control.h"

namespace rrmp {
namespace {

FlowControlParams windowed(std::uint32_t window,
                           std::size_t target_budget = 0) {
  FlowControlParams p;
  p.enabled = true;
  p.window_size = window;
  p.target_budget_bytes = target_budget;
  return p;
}

// ------------------------------------------------------ controller unit ----

TEST(FlowControllerTest, DisabledAdmitsEverything) {
  FlowController fc;  // default params: disabled
  EXPECT_TRUE(fc.may_send(1));
  for (std::uint64_t s = 1; s <= 100; ++s) {
    EXPECT_TRUE(fc.may_send(1 << 20));
    fc.on_frame_sent(s, 1 << 20);
  }
  EXPECT_TRUE(fc.may_send(1));
}

TEST(FlowControllerTest, WindowBlocksAtCapacity) {
  FlowController fc(windowed(4), 0);
  for (std::uint64_t s = 1; s <= 4; ++s) {
    EXPECT_TRUE(fc.may_send(10));
    fc.on_frame_sent(s, 10);
  }
  EXPECT_FALSE(fc.may_send(10));
  EXPECT_EQ(fc.outstanding(), 4u);
  EXPECT_EQ(fc.credits(), 0u);
}

TEST(FlowControllerTest, CursorAdvanceReleasesCredits) {
  FlowController fc(windowed(2), 0);
  fc.on_frame_sent(1, 10);
  fc.on_frame_sent(2, 10);
  EXPECT_FALSE(fc.may_send(10));
  fc.on_cursor(7, 1);  // peer 7 received seq 1 contiguously
  EXPECT_EQ(fc.window_floor(), 1u);
  EXPECT_EQ(fc.outstanding(), 1u);
  EXPECT_EQ(fc.credits(), 1u);
  EXPECT_TRUE(fc.may_send(10));
}

TEST(FlowControllerTest, WindowFloorIsMinimumPeerCursor) {
  FlowController fc(windowed(8), 0);
  for (std::uint64_t s = 1; s <= 6; ++s) fc.on_frame_sent(s, 1);
  fc.on_cursor(1, 5);
  fc.on_cursor(2, 3);  // the slowest peer holds the floor
  EXPECT_EQ(fc.window_floor(), 3u);
  EXPECT_EQ(fc.outstanding(), 3u);
  fc.on_cursor(2, 6);
  EXPECT_EQ(fc.window_floor(), 5u);  // now peer 1 is slowest
}

TEST(FlowControllerTest, StaleCursorNeverRetractsCredit) {
  FlowController fc(windowed(8), 0);
  for (std::uint64_t s = 1; s <= 6; ++s) fc.on_frame_sent(s, 1);
  fc.on_cursor(1, 5);
  fc.on_cursor(1, 3);  // reordered older ack
  EXPECT_EQ(fc.window_floor(), 5u);
}

TEST(FlowControllerTest, CursorClampedToSendSeq) {
  // A corrupt or future cursor must not open the window beyond what was
  // actually transmitted.
  FlowController fc(windowed(4), 0);
  fc.on_frame_sent(1, 1);
  fc.on_frame_sent(2, 1);
  fc.on_cursor(1, 100);
  EXPECT_EQ(fc.window_floor(), 2u);
  EXPECT_EQ(fc.outstanding(), 0u);
}

TEST(FlowControllerTest, ByteBudgetBlocksButIdleStreamAlwaysAdmits) {
  FlowController fc(windowed(16, /*target_budget=*/100), 0);
  // Idle stream: even a frame larger than the whole budget is admitted —
  // one oversized frame can never wedge the stream.
  EXPECT_TRUE(fc.may_send(500));
  fc.on_frame_sent(1, 80);
  // 80 outstanding bytes: a 30-byte frame would exceed the 100-byte budget.
  EXPECT_FALSE(fc.may_send(30));
  EXPECT_TRUE(fc.may_send(20));
  fc.on_cursor(1, 1);  // everything acknowledged
  EXPECT_EQ(fc.outstanding_bytes(), 0u);
  EXPECT_TRUE(fc.may_send(500));
}

TEST(FlowControllerTest, PressureHalvesEffectiveWindow) {
  FlowController fc(windowed(8), 0);
  EXPECT_EQ(fc.effective_window(), 8u);
  EXPECT_FALSE(fc.pressured());
  // Peer at 90% of its own advertised budget: past the 0.75 watermark.
  fc.on_peer_budget(3, 900, 1000);
  EXPECT_TRUE(fc.pressured());
  EXPECT_EQ(fc.effective_window(), 4u);
  // Relief: the same peer drops below the watermark.
  fc.on_peer_budget(3, 100, 1000);
  EXPECT_FALSE(fc.pressured());
  EXPECT_EQ(fc.effective_window(), 8u);
}

TEST(FlowControllerTest, PressureNeverDropsWindowBelowOne) {
  FlowController fc(windowed(1), 0);
  fc.on_peer_budget(3, 1000, 1000);
  EXPECT_TRUE(fc.pressured());
  EXPECT_EQ(fc.effective_window(), 1u);
  EXPECT_TRUE(fc.may_send(1));  // still makes progress
}

TEST(FlowControllerTest, PressuredWindowSplitsAcrossAdvertisedSenders) {
  // Under pressure the halved window is shared among the senders currently
  // advertising outstanding frames in the digest gossip: one peer sender →
  // a quarter each, three → an eighth (floored, min 1). Idle peers (zero
  // advertised outstanding) don't dilute the split, and the full window
  // returns the moment pressure clears.
  FlowController fc(windowed(16), 0);
  fc.on_peer_budget(9, 95, 100);  // pressure on
  EXPECT_EQ(fc.effective_window(), 8u);
  fc.on_peer_occupancy(1, 0, 3);  // a concurrent sender
  EXPECT_EQ(fc.effective_window(), 4u);
  fc.on_peer_occupancy(2, 0, 0);  // idle peer: not a sender
  EXPECT_EQ(fc.effective_window(), 4u);
  fc.on_peer_occupancy(2, 0, 5);
  fc.on_peer_occupancy(3, 0, 1);
  EXPECT_EQ(fc.effective_window(), 2u);  // 8 / 4 senders
  fc.on_peer_occupancy(4, 0, 7);
  fc.on_peer_occupancy(5, 0, 7);
  EXPECT_EQ(fc.effective_window(), 1u);  // floored at 1: always progress
  fc.on_peer_budget(9, 10, 100);  // pressure off: crowd split disengages
  EXPECT_EQ(fc.effective_window(), 16u);
}

TEST(FlowControllerTest, BackpressureDisabledIgnoresOccupancy) {
  FlowControlParams p = windowed(8);
  p.backpressure = false;
  FlowController fc(p, 0);
  fc.on_peer_budget(3, 1000, 1000);
  EXPECT_FALSE(fc.pressured());
  EXPECT_EQ(fc.effective_window(), 8u);
}

TEST(FlowControllerTest, DigestOccupancyJudgedAgainstSelfBudgetFallback) {
  // BufferDigest carries bytes only: with no peer-reported budget the
  // occupancy is judged against our own budget; with neither, never
  // pressured (unlimited buffers feel no pressure).
  FlowController unlimited(windowed(8), /*self_budget_bytes=*/0);
  unlimited.on_peer_occupancy(3, 1 << 30, 0);
  EXPECT_FALSE(unlimited.pressured());

  FlowController budgeted(windowed(8), /*self_budget_bytes=*/1000);
  budgeted.on_peer_occupancy(3, 800, 0);
  EXPECT_TRUE(budgeted.pressured());
  budgeted.on_peer_occupancy(3, 100, 0);
  EXPECT_FALSE(budgeted.pressured());

  // A CreditAck-reported budget takes precedence over the fallback.
  budgeted.on_peer_budget(3, 800, 1 << 20);
  EXPECT_FALSE(budgeted.pressured());
}

TEST(FlowControllerTest, RetainPeersUnwedgesDepartedFloorAndPressure) {
  FlowController fc(windowed(4), 0);
  for (std::uint64_t s = 1; s <= 4; ++s) fc.on_frame_sent(s, 1);
  fc.on_cursor(1, 4);
  fc.on_cursor(2, 0);          // peer 2 never received anything...
  fc.on_peer_budget(2, 10, 10);  // ...and advertises full buffers
  EXPECT_EQ(fc.window_floor(), 0u);
  EXPECT_FALSE(fc.may_send(1));
  EXPECT_TRUE(fc.pressured());
  fc.retain_peers({1, 3});  // peer 2 departed
  EXPECT_EQ(fc.window_floor(), 4u);
  EXPECT_TRUE(fc.may_send(1));
  EXPECT_FALSE(fc.pressured());
}

TEST(FlowControllerTest, CreditsNeverExceedWindowSize) {
  FlowController fc(windowed(4), 0);
  EXPECT_LE(fc.credits(), 4u);
  for (std::uint64_t s = 1; s <= 4; ++s) {
    fc.on_frame_sent(s, 1);
    EXPECT_LE(fc.credits(), 4u);
  }
  fc.on_cursor(1, 4);
  EXPECT_LE(fc.credits(), 4u);
  fc.on_peer_budget(2, 10, 10);  // pressured: effective window shrinks
  EXPECT_LE(fc.credits(), 4u);
}

TEST(FlowControllerTest, AccountingIsExact) {
  FlowController fc(windowed(8), 0);
  fc.on_frame_sent(1, 10);
  fc.on_frame_sent(2, 30);
  fc.note_deferred();
  fc.on_frame_sent(3, 5);
  EXPECT_EQ(fc.frames_sent(), 3u);
  EXPECT_EQ(fc.bytes_sent(), 45u);
  EXPECT_EQ(fc.frames_deferred(), 1u);
  EXPECT_EQ(fc.outstanding_bytes(), 45u);
  fc.on_cursor(1, 2);
  EXPECT_EQ(fc.outstanding_bytes(), 5u);
  EXPECT_EQ(fc.bytes_sent(), 45u);  // cumulative, never un-counted
}

// ----------------------------------------------------------- AIMD unit ----

FlowControlParams aimd(std::uint32_t window, std::uint32_t min_window = 2,
                       std::uint32_t max_window = 0) {
  FlowControlParams p = windowed(window);
  p.adaptive = true;
  p.min_window = min_window;
  p.max_window = max_window;
  return p;
}

TEST(FlowControllerTest, AimdStartsAtMinWindowAndGrowsPerCleanRound) {
  FlowController fc(aimd(8, /*min=*/2), 0);
  EXPECT_EQ(fc.current_window(), 2u);
  fc.on_clean_round();
  EXPECT_EQ(fc.current_window(), 3u);
  for (int i = 0; i < 20; ++i) fc.on_clean_round();
  EXPECT_EQ(fc.current_window(), 8u);  // capped at the static-window ceiling
}

TEST(FlowControllerTest, AimdHalvesOnLossFlooredAtMinWindow) {
  FlowController fc(aimd(8, /*min=*/2), 0);
  for (int i = 0; i < 20; ++i) fc.on_clean_round();
  EXPECT_EQ(fc.current_window(), 8u);
  fc.on_loss();
  EXPECT_EQ(fc.current_window(), 4u);
  fc.on_loss();
  EXPECT_EQ(fc.current_window(), 2u);
  fc.on_loss();
  EXPECT_EQ(fc.current_window(), 2u);  // never below min_window
}

TEST(FlowControllerTest, AimdMaxWindowRaisesCeilingAboveStaticKnob) {
  FlowController fc(aimd(8, /*min=*/2, /*max=*/16), 0);
  for (int i = 0; i < 30; ++i) fc.on_clean_round();
  EXPECT_EQ(fc.current_window(), 16u);
}

TEST(FlowControllerTest, AimdGatesAdmissionThroughCurrentWindow) {
  FlowController fc(aimd(8, /*min=*/2), 0);
  fc.on_frame_sent(1, 1);
  fc.on_frame_sent(2, 1);
  EXPECT_FALSE(fc.may_send(1));  // cwnd = 2, both slots outstanding
  fc.on_clean_round();           // cwnd = 3
  EXPECT_TRUE(fc.may_send(1));
  EXPECT_LE(fc.credits(), fc.current_window());
}

TEST(FlowControllerTest, AimdNoOpWhenAdaptiveOff) {
  FlowController fc(windowed(8), 0);
  EXPECT_EQ(fc.current_window(), 8u);
  fc.on_clean_round();
  fc.on_loss();
  EXPECT_EQ(fc.current_window(), 8u);  // static knob governs, untouched
  EXPECT_EQ(fc.effective_window(), 8u);
}

TEST(FlowControllerTest, JoinedPeerSeededAtFloorNotZero) {
  FlowController fc(windowed(4), 0);
  for (std::uint64_t s = 1; s <= 6; ++s) fc.on_frame_sent(s, 1);
  fc.on_cursor(1, 5);
  EXPECT_EQ(fc.window_floor(), 5u);
  // A genuine joiner is seeded at the current floor: the crowd's window does
  // not reopen frames 1..5 that everyone else already acknowledged.
  fc.on_peer_joined(2);
  EXPECT_EQ(fc.window_floor(), 5u);
  EXPECT_EQ(fc.outstanding(), 1u);
  // The joiner's first real ack necessarily says 0 (it received nothing
  // contiguously); monotonicity holds the seed against it.
  fc.on_cursor(2, 0);
  EXPECT_EQ(fc.window_floor(), 5u);
  // An established peer is never re-seeded upward by a spurious join event.
  fc.on_cursor(3, 1);
  fc.on_peer_joined(3);
  EXPECT_EQ(fc.window_floor(), 1u);
}

TEST(FlowControllerTest, ReleaseStalledPeersWalksFloorPastSeededBinding) {
  FlowController fc(windowed(4), 0);
  EXPECT_FALSE(fc.release_stalled_peers());  // no peers, nothing to do
  for (std::uint64_t s = 1; s <= 4; ++s) fc.on_frame_sent(s, 8);
  fc.on_cursor(1, 2);
  // Peer 2 joins mid-stream: binding seeded at the floor (2). Its genuine
  // acks say 0 — it is backfilling history *below* the floor, so the frame
  // at the floor is not what blocks it.
  fc.on_peer_joined(2);
  fc.on_cursor(2, 0);
  fc.on_cursor(1, 4);
  EXPECT_EQ(fc.window_floor(), 2u);
  EXPECT_TRUE(fc.release_stalled_peers());
  EXPECT_EQ(fc.window_floor(), 3u);
  EXPECT_TRUE(fc.release_stalled_peers());
  EXPECT_EQ(fc.window_floor(), 4u);
  // Floor == send_seq: releasing further would fabricate credit.
  EXPECT_FALSE(fc.release_stalled_peers());
  EXPECT_EQ(fc.window_floor(), 4u);
}

TEST(FlowControllerTest, ReleaseNeverSkipsAnHonestFloorHolder) {
  FlowController fc(windowed(4), 0);
  for (std::uint64_t s = 1; s <= 4; ++s) fc.on_frame_sent(s, 8);
  fc.on_cursor(1, 4);
  fc.on_cursor(2, 1);  // genuinely stuck on frame 2: it *reported* 1
  EXPECT_EQ(fc.window_floor(), 1u);
  // The honest holder keeps the binding: this stall belongs to the
  // re-multicast path, which can still deliver frame 2 for real.
  EXPECT_FALSE(fc.release_stalled_peers());
  EXPECT_EQ(fc.window_floor(), 1u);
  // A seeded peer alongside it does not change that — the floor cannot
  // move while any honest holder sits on it.
  fc.on_cursor(3, 3);
  fc.on_peer_joined(4);  // seeded at 1 (the floor)
  EXPECT_FALSE(fc.release_stalled_peers());
  EXPECT_EQ(fc.window_floor(), 1u);
}

TEST(FlowControllerTest, SanitizedClampsAimdKnobs) {
  FlowControlParams p = aimd(8, /*min=*/0);
  EXPECT_EQ(sanitized(p).min_window, 1u);
  p.min_window = 99;  // above the ceiling: clamped down to it
  EXPECT_EQ(sanitized(p).min_window, 8u);
  p.min_window = 99;
  p.max_window = 12;
  EXPECT_EQ(sanitized(p).min_window, 12u);
}

TEST(FlowControllerTest, SanitizedClampsNonsenseKnobs) {
  FlowControlParams p;
  p.window_size = 0;
  p.ack_interval = Duration::millis(0);
  p.pressure_watermark = 0.0;
  FlowControlParams s = sanitized(p);
  EXPECT_EQ(s.window_size, 1u);
  EXPECT_GT(s.ack_interval, Duration::millis(0));
  EXPECT_EQ(s.pressure_watermark, 0.75);

  p.pressure_watermark = 1.5;
  EXPECT_EQ(sanitized(p).pressure_watermark, 0.75);
  p.pressure_watermark = 1.0;  // inclusive upper bound is legal
  EXPECT_EQ(sanitized(p).pressure_watermark, 1.0);
}

// -------------------------------------------------- endpoint integration ----

harness::ClusterConfig flow_cluster(std::size_t n, std::uint64_t seed,
                                    std::uint32_t window) {
  harness::ClusterConfig cc;
  cc.region_sizes = {n};
  cc.seed = seed;
  cc.protocol.flow.enabled = true;
  cc.protocol.flow.window_size = window;
  cc.protocol.flow.ack_interval = Duration::millis(5);
  return cc;
}

TEST(FlowEndpointTest, FlowOffPutsNoCreditTrafficOnTheWire) {
  harness::ClusterConfig cc;
  cc.region_sizes = {6};
  cc.seed = 11;
  harness::Cluster cluster(cc);
  cluster.schedule_script_after(Duration::millis(1), [&] {
    for (int i = 0; i < 5; ++i) {
      cluster.endpoint(0).multicast(std::vector<std::uint8_t>(32, 0xAB));
    }
  });
  cluster.run_for(Duration::millis(500));
  EXPECT_EQ(cluster.network().stats().sends_by_type[static_cast<std::size_t>(
                proto::MessageType::kCreditAck)],
            0u);
  EXPECT_EQ(cluster.endpoint(0).queued_sends(), 0u);
  EXPECT_EQ(cluster.metrics().counters().credit_acks_sent, 0u);
  EXPECT_EQ(cluster.metrics().counters().sends_deferred, 0u);
}

TEST(FlowEndpointTest, BurstBeyondWindowDefersThenDrainsOnCredit) {
  harness::Cluster cluster(flow_cluster(6, 21, /*window=*/2));
  constexpr std::size_t kBurst = 10;
  cluster.schedule_script_after(Duration::millis(1), [&] {
    for (std::size_t i = 0; i < kBurst; ++i) {
      cluster.endpoint(0).multicast(std::vector<std::uint8_t>(32, 0xCD));
    }
    // The burst outruns the window immediately: at most `window` frames hit
    // the wire, the rest wait for credit.
    EXPECT_EQ(cluster.endpoint(0).flow().send_seq(), 2u);
    EXPECT_EQ(cluster.endpoint(0).queued_sends(), kBurst - 2);
  });
  cluster.run_for(Duration::seconds(2));
  // Credit acks released the whole burst, in order, and everyone got it.
  EXPECT_EQ(cluster.endpoint(0).queued_sends(), 0u);
  EXPECT_EQ(cluster.endpoint(0).flow().send_seq(), kBurst);
  for (std::uint64_t s = 1; s <= kBurst; ++s) {
    EXPECT_TRUE(cluster.all_received(MessageId{0, s})) << "seq " << s;
  }
  EXPECT_EQ(cluster.metrics().counters().sends_deferred, kBurst - 2);
  EXPECT_GT(cluster.metrics().counters().credit_acks_sent, 0u);
  EXPECT_GT(cluster.network().stats().sends_by_type[static_cast<std::size_t>(
                proto::MessageType::kCreditAck)],
            0u);
}

TEST(FlowEndpointTest, SoleMemberBypassesGating) {
  // A sender alone in its region has no peer to grant credit; gating there
  // would wedge the stream forever, so admission is bypassed.
  harness::Cluster cluster(flow_cluster(1, 31, /*window=*/1));
  cluster.schedule_script_after(Duration::millis(1), [&] {
    for (int i = 0; i < 5; ++i) {
      cluster.endpoint(0).multicast(std::vector<std::uint8_t>(32, 0xEF));
    }
    EXPECT_EQ(cluster.endpoint(0).queued_sends(), 0u);
    EXPECT_EQ(cluster.endpoint(0).flow().send_seq(), 5u);
  });
  cluster.run_for(Duration::millis(200));
  EXPECT_EQ(cluster.metrics().counters().sends_deferred, 0u);
}

TEST(FlowEndpointTest, HaltDropsQueuedFrames) {
  harness::Cluster cluster(flow_cluster(6, 41, /*window=*/1));
  cluster.schedule_script_after(Duration::millis(1), [&] {
    for (int i = 0; i < 4; ++i) {
      cluster.endpoint(0).multicast(std::vector<std::uint8_t>(32, 0x11));
    }
    EXPECT_GT(cluster.endpoint(0).queued_sends(), 0u);
    cluster.crash(0);
    EXPECT_EQ(cluster.endpoint(0).queued_sends(), 0u);
  });
  cluster.run_for(Duration::millis(100));
}

// ------------------------------------------------- churn-safe credit state ----

TEST(FlowEndpointTest, MidBurstJoinerDoesNotDragFloorToZero) {
  // Regression for the joiner zero-cursor bug: a member (re)joining
  // mid-flash-crowd has received nothing, so its first CreditAck reports
  // cursor 0 for every active stream. Before churn-safe seeding that ack
  // dragged every sender's window floor back to 0 — outstanding() jumped
  // past the window and the whole crowd wedged until the joiner backfilled.
  // With seeding, the joiner's cursor starts at the sender's current floor
  // and the floor never regresses.
  harness::Cluster cluster(flow_cluster(6, 51, /*window=*/4));
  constexpr MemberId kJoiner = 5;
  constexpr std::size_t kBurst = 30;
  cluster.schedule_script_after(Duration::millis(1),
                                [&] { cluster.crash(kJoiner); });
  for (std::size_t i = 0; i < kBurst; ++i) {
    cluster.schedule_script(
        TimePoint::zero() + Duration::millis(5 + static_cast<std::int64_t>(i)),
        [&] {
          cluster.endpoint(0).multicast(std::vector<std::uint8_t>(32, 0x22));
        });
  }
  std::uint64_t floor_before_join = 0;
  cluster.schedule_script(TimePoint::zero() + Duration::millis(22), [&] {
    floor_before_join = cluster.endpoint(0).flow().window_floor();
    cluster.rejoin(kJoiner);
    // The seed is installed at view-change time, before any ack from the
    // joiner can arrive: the floor is already held.
    EXPECT_GE(cluster.endpoint(0).flow().window_floor(), floor_before_join);
  });
  cluster.schedule_script(TimePoint::zero() + Duration::millis(32), [&] {
    // Mid-burst, two ack intervals after the join: the joiner's cursor-0
    // acks have arrived and must not have reopened acknowledged frames.
    EXPECT_GT(floor_before_join, 0u);  // the premise: the crowd had progressed
    EXPECT_GE(cluster.endpoint(0).flow().window_floor(), floor_before_join);
    EXPECT_LE(cluster.endpoint(0).flow().outstanding(), 4u);
  });
  cluster.run_for(Duration::seconds(3));
  // Nothing wedged: the queue drained and everyone (joiner included, via
  // recovery) got the whole burst.
  EXPECT_EQ(cluster.endpoint(0).queued_sends(), 0u);
  EXPECT_EQ(cluster.endpoint(0).flow().send_seq(), kBurst);
  for (std::uint64_t s = 1; s <= kBurst; ++s) {
    EXPECT_TRUE(cluster.all_received(MessageId{0, s})) << "seq " << s;
  }
}

TEST(FlowEndpointTest, StaleAckFromDepartedPeerIgnored) {
  // Departure-vs-ack race: a CreditAck from a member that just left the
  // view must not re-install its cursor — a zero cursor from a departed
  // peer would wedge the window until the next tick's retain_peers pass.
  harness::Cluster cluster(flow_cluster(4, 61, /*window=*/2));
  cluster.schedule_script_after(Duration::millis(1), [&] {
    cluster.endpoint(0).multicast(std::vector<std::uint8_t>(32, 0x33));
    cluster.endpoint(0).multicast(std::vector<std::uint8_t>(32, 0x33));
  });
  cluster.schedule_script_after(Duration::millis(60), [&] {
    ASSERT_EQ(cluster.endpoint(0).flow().window_floor(), 2u);
    cluster.crash(3);
    // The stale ack was already in flight when member 3 died: replay it.
    proto::CreditAck stale;
    stale.member = 3;
    stale.cursors = {{/*source=*/0, /*cursor=*/0}};
    cluster.endpoint(0).handle_message(proto::Message{stale}, 3);
    EXPECT_EQ(cluster.endpoint(0).flow().window_floor(), 2u);
    EXPECT_EQ(cluster.endpoint(0).flow().outstanding(), 0u);
    EXPECT_TRUE(cluster.endpoint(0).flow().may_send(1));
  });
  cluster.run_for(Duration::millis(100));
}

// ---------------------------------------------- partition-safe credit state ----

TEST(FlowEndpointTest, PartitionReleasesSeveredBindingAndHealReseeds) {
  // The fault-injection hardening end to end: member 3 sits behind a dead
  // inbound edge (every link into it drops), so its honest cursor-0 acks
  // wedge the sender at floor 0 — release_stalled_peers never fires for an
  // honest holder, and the stall re-multicasts into 3 keep vanishing. A
  // partition severing 3 must release its binding immediately (the stream
  // un-wedges for the reachable majority), stale acks from either era must
  // be rejected by the connectivity generation, and the heal must re-seed 3
  // at the current floor instead of letting its next genuine cursor-0 ack
  // reopen the whole partition-era stream.
  harness::Cluster cluster(flow_cluster(4, 131, /*window=*/2));
  cluster.set_lossy_members({3}, 1.0);
  constexpr std::size_t kBurst = 8;
  cluster.schedule_script_after(Duration::millis(1), [&] {
    for (std::size_t i = 0; i < kBurst; ++i) {
      cluster.endpoint(0).multicast(std::vector<std::uint8_t>(32, 0x88));
    }
    EXPECT_EQ(cluster.endpoint(0).flow().send_seq(), 2u);
    EXPECT_EQ(cluster.endpoint(0).queued_sends(), kBurst - 2);
  });
  cluster.schedule_script_after(Duration::millis(60), [&] {
    // The wedge: member 3 honestly reported 0 and can never advance.
    const Endpoint& e = cluster.endpoint(0);
    ASSERT_EQ(e.flow().window_floor(), 0u);
    ASSERT_EQ(e.flow().send_seq(), 2u);
    ASSERT_EQ(e.queued_sends(), kBurst - 2);
    ASSERT_EQ(e.view_generation(), 0u);

    cluster.partition({{3}});
    // The severed binding is released at the partition barrier, not at the
    // next credit tick: the floor recomputes over the reachable peers (both
    // at 2) and the freed credit drains the queue on the spot.
    EXPECT_EQ(e.view_generation(), 1u);
    EXPECT_EQ(e.flow().window_floor(), 2u);
    EXPECT_EQ(e.flow().send_seq(), 4u);
    EXPECT_EQ(e.queued_sends(), kBurst - 4);

    // A pre-partition ack from 3 was still in flight at the cut: stale
    // generation, no credit voice — and its full-buffer report must not
    // install phantom pressure either.
    proto::CreditAck stale;
    stale.member = 3;
    stale.view_gen = 0;
    stale.cursors = {{/*source=*/0, /*cursor=*/0}};
    stale.bytes_in_use = 1000;
    stale.budget_bytes = 1000;
    cluster.endpoint(0).handle_message(proto::Message{stale}, 3);
    EXPECT_EQ(e.flow().window_floor(), 2u);
    EXPECT_FALSE(e.flow().pressured());

    // Even a correctly-stamped ack is mute while its sender is severed.
    stale.view_gen = 1;
    cluster.endpoint(0).handle_message(proto::Message{stale}, 3);
    EXPECT_EQ(e.flow().window_floor(), 2u);
    EXPECT_FALSE(e.flow().pressured());
  });
  cluster.schedule_script_after(Duration::millis(120), [&] {
    const Endpoint& e = cluster.endpoint(0);
    // The reachable majority finished the burst during the partition.
    ASSERT_EQ(e.flow().send_seq(), kBurst);
    ASSERT_EQ(e.queued_sends(), 0u);

    cluster.heal();
    // Heal bumps the generation again and re-seeds 3 at the current floor:
    // the partition-era stream is not reopened.
    EXPECT_EQ(e.view_generation(), 2u);
    EXPECT_EQ(e.flow().window_floor(), kBurst);

    // A partition-era ack from a *reachable* peer, delivered late: only the
    // generation check rejects it (member 1 is in view and unsevered), so
    // this is the regression for the view_gen stamp itself.
    proto::CreditAck stale;
    stale.member = 1;
    stale.view_gen = 1;
    stale.cursors = {{/*source=*/0, /*cursor=*/0}};
    stale.bytes_in_use = 1000;
    stale.budget_bytes = 1000;
    cluster.endpoint(0).handle_message(proto::Message{stale}, 1);
    EXPECT_EQ(e.flow().window_floor(), kBurst);
    EXPECT_FALSE(e.flow().pressured());
    EXPECT_TRUE(e.flow().may_send(1));
  });
  cluster.schedule_script_after(Duration::millis(160), [&] {
    // Member 3's genuine post-heal acks (current generation, cursor 0 — its
    // inbound edge is still dead) have arrived; the heal-time seed holds
    // the floor against them.
    EXPECT_EQ(cluster.endpoint(0).flow().window_floor(), kBurst);
    EXPECT_TRUE(cluster.endpoint(0).flow().may_send(1));
  });
  cluster.run_for(Duration::millis(220));
  EXPECT_EQ(cluster.endpoint(0).flow().send_seq(), kBurst);
  EXPECT_EQ(cluster.endpoint(0).queued_sends(), 0u);
  // The stream reached everyone the network could actually deliver to.
  for (std::uint64_t s = 1; s <= kBurst; ++s) {
    for (MemberId m = 1; m <= 2; ++m) {
      EXPECT_TRUE(cluster.endpoint(m).has_received(MessageId{0, s}))
          << "member " << m << " seq " << s;
    }
  }
}

// ------------------------------------------------------- stall remulticast ----

TEST(FlowEndpointTest, StallRemulticastsWedgingFrameAndRecovers) {
  // With gap-driven recovery disabled and no anti-entropy, a receiver that
  // loses a Data frame has no way to repair it — its cursor wedges the
  // window floor forever. The sender-driven stall retransmission is the
  // last line: after kStallRetransmitTicks quiet ticks it re-multicasts the
  // frame just past the floor (counted by the flow_stall_remcast metric)
  // and the stream un-wedges.
  harness::ClusterConfig cc = flow_cluster(6, 71, /*window=*/2);
  cc.protocol.gap_driven_recovery = false;
  cc.data_loss = 0.2;
  harness::Cluster cluster(cc);
  constexpr std::size_t kBurst = 8;
  cluster.schedule_script_after(Duration::millis(1), [&] {
    for (std::size_t i = 0; i < kBurst; ++i) {
      cluster.endpoint(0).multicast(std::vector<std::uint8_t>(32, 0x44));
    }
  });
  cluster.run_for(Duration::seconds(5));
  EXPECT_GT(cluster.metrics().counters().flow_stall_remcasts, 0u);
  EXPECT_EQ(cluster.endpoint(0).queued_sends(), 0u);
  for (std::uint64_t s = 1; s <= kBurst; ++s) {
    EXPECT_TRUE(cluster.all_received(MessageId{0, s})) << "seq " << s;
  }
}

TEST(FlowEndpointTest, UnrecoverableJoinerBackfillReleasesInsteadOfDeadlock) {
  // The churn wedge: a member crashes, its pre-crash history is evicted
  // region-wide, and it rejoins mid-stream. Its seeded binding then freezes
  // the floor — its true cursor needs contiguity from frame 1 and the
  // copies are gone, so it can never catch up. Without the stalled-cursor
  // release every sender wedges at floor + window forever.
  harness::Cluster cluster(flow_cluster(6, 111, /*window=*/2));
  constexpr std::size_t kBurst = 40;
  cluster.schedule_script_after(Duration::millis(1), [&] { cluster.crash(5); });
  cluster.schedule_script_after(Duration::millis(2), [&] {
    for (std::size_t i = 0; i < kBurst; ++i) {
      cluster.endpoint(0).multicast(std::vector<std::uint8_t>(32, 0x7E));
    }
  });
  cluster.schedule_script_after(Duration::millis(30), [&] {
    // Erase the head of the stream everywhere before the victim returns:
    // its backfill is now impossible, not merely slow.
    for (MemberId m = 0; m < cluster.size(); ++m) {
      if (m == 5) continue;
      for (std::uint64_t s = 1; s <= 6; ++s) {
        cluster.force_discard(m, MessageId{0, s});
      }
    }
    cluster.rejoin(5);
  });
  cluster.run_for(Duration::seconds(5));
  // The sender finished its whole schedule: the window never deadlocked.
  EXPECT_EQ(cluster.endpoint(0).flow().send_seq(), kBurst);
  EXPECT_EQ(cluster.endpoint(0).queued_sends(), 0u);
  EXPECT_GT(cluster.metrics().counters().flow_stall_releases, 0u);
  // The release sacrificed nothing the live members needed: they still
  // hold the full stream.
  for (std::uint64_t s = 7; s <= kBurst; ++s) {
    for (MemberId m = 1; m <= 4; ++m) {
      EXPECT_TRUE(cluster.endpoint(m).has_received(MessageId{0, s}))
          << "member " << m << " seq " << s;
    }
  }
}

// ------------------------------------------------------ cursor piggyback ----

harness::ClusterConfig adaptive_cluster(std::size_t n, std::uint64_t seed) {
  harness::ClusterConfig cc = flow_cluster(n, seed, /*window=*/4);
  cc.protocol.flow.adaptive = true;
  cc.protocol.flow.min_window = 2;
  cc.protocol.flow.piggyback = true;
  return cc;
}

TEST(FlowEndpointTest, PiggybackSuppressesCreditAcksWithoutLosingGoodput) {
  // Same schedule and seed, piggyback off vs on: the piggybacked cursors
  // (and the unchanged-cursor suppression for quiet receivers) must remove
  // a substantial share of standalone CreditAck multicasts while every
  // message still reaches every member.
  auto run = [](bool piggyback, std::uint64_t* acks_sent,
                std::uint64_t* suppressed) {
    harness::ClusterConfig cc = flow_cluster(6, 81, /*window=*/4);
    cc.protocol.flow.piggyback = piggyback;
    harness::Cluster cluster(cc);
    constexpr std::size_t kBurst = 12;
    for (std::size_t i = 0; i < kBurst; ++i) {
      cluster.schedule_script(
          TimePoint::zero() +
              Duration::millis(1 + 2 * static_cast<std::int64_t>(i)),
          [&cluster] {
            // Two interleaved senders: each piggybacks its cursor for the
            // other's stream on its own Data frames.
            cluster.endpoint(0).multicast(std::vector<std::uint8_t>(32, 0x55));
            cluster.endpoint(1).multicast(std::vector<std::uint8_t>(32, 0x66));
          });
    }
    cluster.run_for(Duration::seconds(2));
    *acks_sent = cluster.metrics().counters().credit_acks_sent;
    *suppressed = cluster.metrics().counters().credit_acks_suppressed;
    for (std::uint64_t s = 1; s <= kBurst; ++s) {
      EXPECT_TRUE(cluster.all_received(MessageId{0, s})) << "seq " << s;
      EXPECT_TRUE(cluster.all_received(MessageId{1, s})) << "seq " << s;
    }
  };
  std::uint64_t acks_off = 0, suppressed_off = 0;
  std::uint64_t acks_on = 0, suppressed_on = 0;
  run(false, &acks_off, &suppressed_off);
  run(true, &acks_on, &suppressed_on);
  EXPECT_EQ(suppressed_off, 0u);  // suppression is piggyback-gated
  EXPECT_GT(suppressed_on, 0u);
  EXPECT_LT(acks_on, acks_off);
}

TEST(FlowEndpointTest, AdaptiveBurstDeliversEverything) {
  // AIMD + piggybacking end to end: the window starts at min_window, grows
  // through the burst, and the whole stream lands everywhere.
  harness::Cluster cluster(adaptive_cluster(6, 91));
  constexpr std::size_t kBurst = 16;
  cluster.schedule_script_after(Duration::millis(1), [&] {
    for (std::size_t i = 0; i < kBurst; ++i) {
      cluster.endpoint(0).multicast(std::vector<std::uint8_t>(32, 0x77));
    }
    // The burst outran the AIMD start window of 2.
    EXPECT_EQ(cluster.endpoint(0).flow().send_seq(), 2u);
    EXPECT_EQ(cluster.endpoint(0).queued_sends(), kBurst - 2);
  });
  cluster.run_for(Duration::seconds(3));
  EXPECT_EQ(cluster.endpoint(0).queued_sends(), 0u);
  EXPECT_EQ(cluster.endpoint(0).flow().send_seq(), kBurst);
  // The clean rounds grew the window beyond its starting point.
  EXPECT_GT(cluster.endpoint(0).flow().current_window(), 2u);
  for (std::uint64_t s = 1; s <= kBurst; ++s) {
    EXPECT_TRUE(cluster.all_received(MessageId{0, s})) << "seq " << s;
  }
}

TEST(FlowEndpointTest, StallRemcastsBackOffExponentially) {
  // A frame no receiver can get (total data loss hits the stream and every
  // stall re-multicast alike) wedges the floor on *honest* cursors — the
  // release path never fires, so the sender re-multicasts. The interval
  // must double per consecutive re-multicast (3, 6, 12, 24, 24... ticks),
  // not stay at the flat every-3-ticks cadence: a receiver that duplicates
  // cannot unwedge should not eat a multicast every 15 ms indefinitely.
  harness::ClusterConfig cc = flow_cluster(3, 41, /*window=*/4);
  cc.protocol.flow.stall_backoff = true;
  harness::Cluster cluster(cc);
  std::uint64_t clean_remcasts = 0;
  cluster.schedule_script_after(Duration::millis(1), [&] {
    cluster.endpoint(0).multicast(std::vector<std::uint8_t>(32, 0x11));
  });
  cluster.schedule_script_after(Duration::millis(100), [&] {
    // Frame 1 landed and was acked: every binding is honest at cursor 1.
    ASSERT_EQ(cluster.endpoint(0).flow().window_floor(), 1u);
    clean_remcasts = cluster.metrics().counters().flow_stall_remcasts;
    cluster.set_data_loss(1.0);
    cluster.endpoint(0).multicast(std::vector<std::uint8_t>(32, 0x22));
  });
  cluster.run_for(Duration::millis(1100));  // 1000 ms (200 ticks) wedged

  std::uint64_t wedged =
      cluster.metrics().counters().flow_stall_remcasts - clean_remcasts;
  // Backed-off cadence over 200 ticks: re-multicasts at ticks 3, 9, 21, 45,
  // then every 24 — about 10. The flat cadence would be ~66.
  EXPECT_GE(wedged, 5u);
  EXPECT_LE(wedged, 20u);
  EXPECT_EQ(cluster.metrics().counters().flow_stall_releases, 0u);

  // Heal: the next re-multicast lands, the floor advances, and the backoff
  // streak resets with it — the stream finishes.
  cluster.schedule_script_after(Duration::zero(),
                                [&] { cluster.set_data_loss(0.0); });
  cluster.run_for(Duration::seconds(2));
  EXPECT_TRUE(cluster.all_received(MessageId{0, 2}));
  EXPECT_EQ(cluster.endpoint(0).flow().window_floor(), 2u);
}

}  // namespace
}  // namespace rrmp
