// Unit + protocol tests for windowed send admission (flow control): the
// FlowController state machine in isolation, then the Endpoint integration
// (deferred sends, credit acks, queue drain, sole-member bypass) through the
// simulated cluster.
#include <gtest/gtest.h>

#include "harness/cluster.h"
#include "rrmp/flow_control.h"

namespace rrmp {
namespace {

FlowControlParams windowed(std::uint32_t window,
                           std::size_t target_budget = 0) {
  FlowControlParams p;
  p.enabled = true;
  p.window_size = window;
  p.target_budget_bytes = target_budget;
  return p;
}

// ------------------------------------------------------ controller unit ----

TEST(FlowControllerTest, DisabledAdmitsEverything) {
  FlowController fc;  // default params: disabled
  EXPECT_TRUE(fc.may_send(1));
  for (std::uint64_t s = 1; s <= 100; ++s) {
    EXPECT_TRUE(fc.may_send(1 << 20));
    fc.on_frame_sent(s, 1 << 20);
  }
  EXPECT_TRUE(fc.may_send(1));
}

TEST(FlowControllerTest, WindowBlocksAtCapacity) {
  FlowController fc(windowed(4), 0);
  for (std::uint64_t s = 1; s <= 4; ++s) {
    EXPECT_TRUE(fc.may_send(10));
    fc.on_frame_sent(s, 10);
  }
  EXPECT_FALSE(fc.may_send(10));
  EXPECT_EQ(fc.outstanding(), 4u);
  EXPECT_EQ(fc.credits(), 0u);
}

TEST(FlowControllerTest, CursorAdvanceReleasesCredits) {
  FlowController fc(windowed(2), 0);
  fc.on_frame_sent(1, 10);
  fc.on_frame_sent(2, 10);
  EXPECT_FALSE(fc.may_send(10));
  fc.on_cursor(7, 1);  // peer 7 received seq 1 contiguously
  EXPECT_EQ(fc.window_floor(), 1u);
  EXPECT_EQ(fc.outstanding(), 1u);
  EXPECT_EQ(fc.credits(), 1u);
  EXPECT_TRUE(fc.may_send(10));
}

TEST(FlowControllerTest, WindowFloorIsMinimumPeerCursor) {
  FlowController fc(windowed(8), 0);
  for (std::uint64_t s = 1; s <= 6; ++s) fc.on_frame_sent(s, 1);
  fc.on_cursor(1, 5);
  fc.on_cursor(2, 3);  // the slowest peer holds the floor
  EXPECT_EQ(fc.window_floor(), 3u);
  EXPECT_EQ(fc.outstanding(), 3u);
  fc.on_cursor(2, 6);
  EXPECT_EQ(fc.window_floor(), 5u);  // now peer 1 is slowest
}

TEST(FlowControllerTest, StaleCursorNeverRetractsCredit) {
  FlowController fc(windowed(8), 0);
  for (std::uint64_t s = 1; s <= 6; ++s) fc.on_frame_sent(s, 1);
  fc.on_cursor(1, 5);
  fc.on_cursor(1, 3);  // reordered older ack
  EXPECT_EQ(fc.window_floor(), 5u);
}

TEST(FlowControllerTest, CursorClampedToSendSeq) {
  // A corrupt or future cursor must not open the window beyond what was
  // actually transmitted.
  FlowController fc(windowed(4), 0);
  fc.on_frame_sent(1, 1);
  fc.on_frame_sent(2, 1);
  fc.on_cursor(1, 100);
  EXPECT_EQ(fc.window_floor(), 2u);
  EXPECT_EQ(fc.outstanding(), 0u);
}

TEST(FlowControllerTest, ByteBudgetBlocksButIdleStreamAlwaysAdmits) {
  FlowController fc(windowed(16, /*target_budget=*/100), 0);
  // Idle stream: even a frame larger than the whole budget is admitted —
  // one oversized frame can never wedge the stream.
  EXPECT_TRUE(fc.may_send(500));
  fc.on_frame_sent(1, 80);
  // 80 outstanding bytes: a 30-byte frame would exceed the 100-byte budget.
  EXPECT_FALSE(fc.may_send(30));
  EXPECT_TRUE(fc.may_send(20));
  fc.on_cursor(1, 1);  // everything acknowledged
  EXPECT_EQ(fc.outstanding_bytes(), 0u);
  EXPECT_TRUE(fc.may_send(500));
}

TEST(FlowControllerTest, PressureHalvesEffectiveWindow) {
  FlowController fc(windowed(8), 0);
  EXPECT_EQ(fc.effective_window(), 8u);
  EXPECT_FALSE(fc.pressured());
  // Peer at 90% of its own advertised budget: past the 0.75 watermark.
  fc.on_peer_budget(3, 900, 1000);
  EXPECT_TRUE(fc.pressured());
  EXPECT_EQ(fc.effective_window(), 4u);
  // Relief: the same peer drops below the watermark.
  fc.on_peer_budget(3, 100, 1000);
  EXPECT_FALSE(fc.pressured());
  EXPECT_EQ(fc.effective_window(), 8u);
}

TEST(FlowControllerTest, PressureNeverDropsWindowBelowOne) {
  FlowController fc(windowed(1), 0);
  fc.on_peer_budget(3, 1000, 1000);
  EXPECT_TRUE(fc.pressured());
  EXPECT_EQ(fc.effective_window(), 1u);
  EXPECT_TRUE(fc.may_send(1));  // still makes progress
}

TEST(FlowControllerTest, PressuredWindowSplitsAcrossAdvertisedSenders) {
  // Under pressure the halved window is shared among the senders currently
  // advertising outstanding frames in the digest gossip: one peer sender →
  // a quarter each, three → an eighth (floored, min 1). Idle peers (zero
  // advertised outstanding) don't dilute the split, and the full window
  // returns the moment pressure clears.
  FlowController fc(windowed(16), 0);
  fc.on_peer_budget(9, 95, 100);  // pressure on
  EXPECT_EQ(fc.effective_window(), 8u);
  fc.on_peer_occupancy(1, 0, 3);  // a concurrent sender
  EXPECT_EQ(fc.effective_window(), 4u);
  fc.on_peer_occupancy(2, 0, 0);  // idle peer: not a sender
  EXPECT_EQ(fc.effective_window(), 4u);
  fc.on_peer_occupancy(2, 0, 5);
  fc.on_peer_occupancy(3, 0, 1);
  EXPECT_EQ(fc.effective_window(), 2u);  // 8 / 4 senders
  fc.on_peer_occupancy(4, 0, 7);
  fc.on_peer_occupancy(5, 0, 7);
  EXPECT_EQ(fc.effective_window(), 1u);  // floored at 1: always progress
  fc.on_peer_budget(9, 10, 100);  // pressure off: crowd split disengages
  EXPECT_EQ(fc.effective_window(), 16u);
}

TEST(FlowControllerTest, BackpressureDisabledIgnoresOccupancy) {
  FlowControlParams p = windowed(8);
  p.backpressure = false;
  FlowController fc(p, 0);
  fc.on_peer_budget(3, 1000, 1000);
  EXPECT_FALSE(fc.pressured());
  EXPECT_EQ(fc.effective_window(), 8u);
}

TEST(FlowControllerTest, DigestOccupancyJudgedAgainstSelfBudgetFallback) {
  // BufferDigest carries bytes only: with no peer-reported budget the
  // occupancy is judged against our own budget; with neither, never
  // pressured (unlimited buffers feel no pressure).
  FlowController unlimited(windowed(8), /*self_budget_bytes=*/0);
  unlimited.on_peer_occupancy(3, 1 << 30, 0);
  EXPECT_FALSE(unlimited.pressured());

  FlowController budgeted(windowed(8), /*self_budget_bytes=*/1000);
  budgeted.on_peer_occupancy(3, 800, 0);
  EXPECT_TRUE(budgeted.pressured());
  budgeted.on_peer_occupancy(3, 100, 0);
  EXPECT_FALSE(budgeted.pressured());

  // A CreditAck-reported budget takes precedence over the fallback.
  budgeted.on_peer_budget(3, 800, 1 << 20);
  EXPECT_FALSE(budgeted.pressured());
}

TEST(FlowControllerTest, RetainPeersUnwedgesDepartedFloorAndPressure) {
  FlowController fc(windowed(4), 0);
  for (std::uint64_t s = 1; s <= 4; ++s) fc.on_frame_sent(s, 1);
  fc.on_cursor(1, 4);
  fc.on_cursor(2, 0);          // peer 2 never received anything...
  fc.on_peer_budget(2, 10, 10);  // ...and advertises full buffers
  EXPECT_EQ(fc.window_floor(), 0u);
  EXPECT_FALSE(fc.may_send(1));
  EXPECT_TRUE(fc.pressured());
  fc.retain_peers({1, 3});  // peer 2 departed
  EXPECT_EQ(fc.window_floor(), 4u);
  EXPECT_TRUE(fc.may_send(1));
  EXPECT_FALSE(fc.pressured());
}

TEST(FlowControllerTest, CreditsNeverExceedWindowSize) {
  FlowController fc(windowed(4), 0);
  EXPECT_LE(fc.credits(), 4u);
  for (std::uint64_t s = 1; s <= 4; ++s) {
    fc.on_frame_sent(s, 1);
    EXPECT_LE(fc.credits(), 4u);
  }
  fc.on_cursor(1, 4);
  EXPECT_LE(fc.credits(), 4u);
  fc.on_peer_budget(2, 10, 10);  // pressured: effective window shrinks
  EXPECT_LE(fc.credits(), 4u);
}

TEST(FlowControllerTest, AccountingIsExact) {
  FlowController fc(windowed(8), 0);
  fc.on_frame_sent(1, 10);
  fc.on_frame_sent(2, 30);
  fc.note_deferred();
  fc.on_frame_sent(3, 5);
  EXPECT_EQ(fc.frames_sent(), 3u);
  EXPECT_EQ(fc.bytes_sent(), 45u);
  EXPECT_EQ(fc.frames_deferred(), 1u);
  EXPECT_EQ(fc.outstanding_bytes(), 45u);
  fc.on_cursor(1, 2);
  EXPECT_EQ(fc.outstanding_bytes(), 5u);
  EXPECT_EQ(fc.bytes_sent(), 45u);  // cumulative, never un-counted
}

TEST(FlowControllerTest, SanitizedClampsNonsenseKnobs) {
  FlowControlParams p;
  p.window_size = 0;
  p.ack_interval = Duration::millis(0);
  p.pressure_watermark = 0.0;
  FlowControlParams s = sanitized(p);
  EXPECT_EQ(s.window_size, 1u);
  EXPECT_GT(s.ack_interval, Duration::millis(0));
  EXPECT_EQ(s.pressure_watermark, 0.75);

  p.pressure_watermark = 1.5;
  EXPECT_EQ(sanitized(p).pressure_watermark, 0.75);
  p.pressure_watermark = 1.0;  // inclusive upper bound is legal
  EXPECT_EQ(sanitized(p).pressure_watermark, 1.0);
}

// -------------------------------------------------- endpoint integration ----

harness::ClusterConfig flow_cluster(std::size_t n, std::uint64_t seed,
                                    std::uint32_t window) {
  harness::ClusterConfig cc;
  cc.region_sizes = {n};
  cc.seed = seed;
  cc.protocol.flow.enabled = true;
  cc.protocol.flow.window_size = window;
  cc.protocol.flow.ack_interval = Duration::millis(5);
  return cc;
}

TEST(FlowEndpointTest, FlowOffPutsNoCreditTrafficOnTheWire) {
  harness::ClusterConfig cc;
  cc.region_sizes = {6};
  cc.seed = 11;
  harness::Cluster cluster(cc);
  cluster.schedule_script_after(Duration::millis(1), [&] {
    for (int i = 0; i < 5; ++i) {
      cluster.endpoint(0).multicast(std::vector<std::uint8_t>(32, 0xAB));
    }
  });
  cluster.run_for(Duration::millis(500));
  EXPECT_EQ(cluster.network().stats().sends_by_type[static_cast<std::size_t>(
                proto::MessageType::kCreditAck)],
            0u);
  EXPECT_EQ(cluster.endpoint(0).queued_sends(), 0u);
  EXPECT_EQ(cluster.metrics().counters().credit_acks_sent, 0u);
  EXPECT_EQ(cluster.metrics().counters().sends_deferred, 0u);
}

TEST(FlowEndpointTest, BurstBeyondWindowDefersThenDrainsOnCredit) {
  harness::Cluster cluster(flow_cluster(6, 21, /*window=*/2));
  constexpr std::size_t kBurst = 10;
  cluster.schedule_script_after(Duration::millis(1), [&] {
    for (std::size_t i = 0; i < kBurst; ++i) {
      cluster.endpoint(0).multicast(std::vector<std::uint8_t>(32, 0xCD));
    }
    // The burst outruns the window immediately: at most `window` frames hit
    // the wire, the rest wait for credit.
    EXPECT_EQ(cluster.endpoint(0).flow().send_seq(), 2u);
    EXPECT_EQ(cluster.endpoint(0).queued_sends(), kBurst - 2);
  });
  cluster.run_for(Duration::seconds(2));
  // Credit acks released the whole burst, in order, and everyone got it.
  EXPECT_EQ(cluster.endpoint(0).queued_sends(), 0u);
  EXPECT_EQ(cluster.endpoint(0).flow().send_seq(), kBurst);
  for (std::uint64_t s = 1; s <= kBurst; ++s) {
    EXPECT_TRUE(cluster.all_received(MessageId{0, s})) << "seq " << s;
  }
  EXPECT_EQ(cluster.metrics().counters().sends_deferred, kBurst - 2);
  EXPECT_GT(cluster.metrics().counters().credit_acks_sent, 0u);
  EXPECT_GT(cluster.network().stats().sends_by_type[static_cast<std::size_t>(
                proto::MessageType::kCreditAck)],
            0u);
}

TEST(FlowEndpointTest, SoleMemberBypassesGating) {
  // A sender alone in its region has no peer to grant credit; gating there
  // would wedge the stream forever, so admission is bypassed.
  harness::Cluster cluster(flow_cluster(1, 31, /*window=*/1));
  cluster.schedule_script_after(Duration::millis(1), [&] {
    for (int i = 0; i < 5; ++i) {
      cluster.endpoint(0).multicast(std::vector<std::uint8_t>(32, 0xEF));
    }
    EXPECT_EQ(cluster.endpoint(0).queued_sends(), 0u);
    EXPECT_EQ(cluster.endpoint(0).flow().send_seq(), 5u);
  });
  cluster.run_for(Duration::millis(200));
  EXPECT_EQ(cluster.metrics().counters().sends_deferred, 0u);
}

TEST(FlowEndpointTest, HaltDropsQueuedFrames) {
  harness::Cluster cluster(flow_cluster(6, 41, /*window=*/1));
  cluster.schedule_script_after(Duration::millis(1), [&] {
    for (int i = 0; i < 4; ++i) {
      cluster.endpoint(0).multicast(std::vector<std::uint8_t>(32, 0x11));
    }
    EXPECT_GT(cluster.endpoint(0).queued_sends(), 0u);
    cluster.crash(0);
    EXPECT_EQ(cluster.endpoint(0).queued_sends(), 0u);
  });
  cluster.run_for(Duration::millis(100));
}

}  // namespace
}  // namespace rrmp
