// Protocol-behavior tests for the RRMP endpoint, driven through the
// simulated cluster: recovery phases, waiter forwarding, duplicate
// suppression, search details, handoff, stability exchange, lookup modes.
#include <gtest/gtest.h>

#include "harness/cluster.h"

namespace rrmp::harness {
namespace {

ClusterConfig single_region(std::size_t n, std::uint64_t seed) {
  ClusterConfig cc;
  cc.region_sizes = {n};
  cc.seed = seed;
  return cc;
}

// ----------------------------------------------------------- local phase ----

TEST(EndpointRecovery, SingleMissingMemberRecoversLocally) {
  Cluster cluster(single_region(10, 1));
  std::vector<MemberId> holders;
  for (MemberId m = 0; m < 9; ++m) holders.push_back(m);  // member 9 misses
  MessageId id = cluster.inject(0, 1, holders);
  cluster.run_until_quiet(Duration::seconds(1));
  EXPECT_TRUE(cluster.endpoint(9).has_received(id));
  EXPECT_EQ(cluster.endpoint(9).active_recoveries(), 0u);
  // One request was enough (neighbors all had it).
  EXPECT_GE(cluster.metrics().counters().local_requests_sent, 1u);
  EXPECT_EQ(cluster.metrics().counters().remote_requests_sent, 0u);  // root region
}

TEST(EndpointRecovery, RetriesUntilSomeoneHasIt) {
  // Only 1 of 30 members holds the message: most first probes miss, so
  // retries must drive recovery to completion anyway.
  Cluster cluster(single_region(30, 2));
  MessageId id = cluster.inject(0, 1, std::vector<MemberId>{0});
  cluster.run_until_quiet(Duration::seconds(5));
  EXPECT_TRUE(cluster.all_received(id));
  // With 29 missing members and ~1/30 hit rate, retries were needed.
  EXPECT_GT(cluster.metrics().counters().local_requests_sent, 29u);
}

TEST(EndpointRecovery, RecoveryLatencyGrowsWithScarcity) {
  auto mean_latency = [](std::size_t holders_count, std::uint64_t seed) {
    Cluster cluster(single_region(50, seed));
    std::vector<MemberId> holders;
    for (MemberId m = 0; m < holders_count; ++m) holders.push_back(m);
    cluster.inject(0, 1, holders);
    cluster.run_until_quiet(Duration::seconds(5));
    double total = 0;
    for (Duration d : cluster.metrics().recovery_latencies()) total += d.ms();
    return total /
           static_cast<double>(cluster.metrics().recovery_latencies().size());
  };
  double scarce = mean_latency(1, 3);
  double plentiful = mean_latency(40, 3);
  EXPECT_GT(scarce, plentiful);
}

TEST(EndpointRecovery, MaxAttemptsBoundsLocalRequests) {
  ClusterConfig cc = single_region(5, 4);
  cc.protocol.max_attempts = 3;
  Cluster cluster(cc);
  // Nobody holds the message: member 0 announces seq 1 but no data exists.
  cluster.inject_session_to(0, 1, cluster.region_members(0));
  cluster.run_until_quiet(Duration::seconds(2));
  // 5 members x 3 attempts max (self-exclusion leaves 4 targets); the
  // source member ignores its own session, so 4 members retried.
  EXPECT_LE(cluster.metrics().counters().local_requests_sent, 12u);
  // Recovery tasks gave up but remain open (message genuinely missing).
  EXPECT_GT(cluster.endpoint(1).active_recoveries(), 0u);
}

// ---------------------------------------------------------- remote phase ----

TEST(EndpointRecovery, WaiterForwarding) {
  // Child member asks a parent member that ALSO misses the message; the
  // parent records the waiter and forwards on receipt (§2.2 case 2).
  ClusterConfig cc;
  cc.region_sizes = {2, 1};
  cc.protocol.lambda = 10.0;  // the lone child member always sends remote
  cc.seed = 5;
  Cluster cluster(cc);
  // Parent member 0 holds it; parent member 1 does not; child member 2 not.
  cluster.inject_data_to(0, 1, std::vector<MemberId>{0});
  MessageId id{0, 1};
  // Child detects the loss; its remote request may hit member 0 or 1.
  cluster.inject_session_to(0, 1, std::vector<MemberId>{2});
  // Member 1 learns of the message only later.
  cluster.inject_session_to(0, 1, std::vector<MemberId>{1});
  cluster.run_until_quiet(Duration::seconds(5));
  EXPECT_TRUE(cluster.all_received(id));
  EXPECT_TRUE(cluster.endpoint(2).has_received(id));
}

TEST(EndpointRecovery, NoRemotePhaseInRootRegion) {
  Cluster cluster(single_region(10, 6));
  cluster.inject(0, 1, std::vector<MemberId>{0});
  cluster.run_until_quiet(Duration::seconds(1));
  EXPECT_EQ(cluster.metrics().counters().remote_requests_sent, 0u);
}

TEST(EndpointRecovery, LambdaZeroSendsNoRemoteRequests) {
  ClusterConfig cc;
  cc.region_sizes = {5, 5};
  cc.protocol.lambda = 0.0;
  cc.seed = 7;
  Cluster cluster(cc);
  std::vector<MemberId> parent = cluster.region_members(0);
  cluster.inject_data_to(parent[0], 1, parent);
  cluster.inject_session_to(parent[0], 1, cluster.region_members(1));
  cluster.run_for(Duration::seconds(1));
  EXPECT_EQ(cluster.metrics().counters().remote_requests_sent, 0u);
  // The regional loss can never be repaired: only remote recovery crosses
  // regions (the paper's motivation for the remote phase).
  EXPECT_FALSE(cluster.all_received(MessageId{parent[0], 1}));
}

// ----------------------------------------------------- repairs and relays ----

TEST(EndpointRepairs, DuplicateRepairsDeliverOnce) {
  Cluster cluster(single_region(20, 8));
  int deliveries = 0;
  cluster.endpoint(5).set_delivery_handler(
      [&](const proto::Data&) { ++deliveries; });
  // 19 holders: member 5's request lands fast; also push a direct repair
  // twice to force the duplicate path.
  std::vector<MemberId> holders;
  for (MemberId m = 0; m < 20; ++m) {
    if (m != 5) holders.push_back(m);
  }
  MessageId id = cluster.inject(0, 1, holders);
  proto::Repair dup{id, {0xAB}, false};
  cluster.endpoint(5).handle_message(proto::Message{dup}, 1);
  cluster.endpoint(5).handle_message(proto::Message{dup}, 2);
  cluster.run_until_quiet(Duration::seconds(1));
  EXPECT_EQ(deliveries, 1);
  EXPECT_TRUE(cluster.endpoint(5).has_received(id));
}

TEST(EndpointRepairs, RemoteRepairTriggersRegionalMulticast) {
  ClusterConfig cc;
  cc.region_sizes = {5, 10};
  cc.protocol.regional_backoff = Duration::zero();
  cc.seed = 9;
  Cluster cluster(cc);
  std::vector<MemberId> parent = cluster.region_members(0);
  MessageId id = cluster.inject_data_to(parent[0], 1, parent);
  cluster.inject_session_to(parent[0], 1, cluster.region_members(1));
  cluster.run_until_quiet(Duration::seconds(3));
  EXPECT_TRUE(cluster.all_received(id));
  EXPECT_GE(cluster.metrics().counters().regional_multicasts, 1u);
  // Every child member got the message although only ~lambda remote
  // requests were sent.
  EXPECT_LT(cluster.metrics().counters().remote_requests_sent, 20u);
}

TEST(EndpointRepairs, LocalRepairDoesNotTriggerRegionalMulticast) {
  Cluster cluster(single_region(10, 10));
  std::vector<MemberId> holders;
  for (MemberId m = 0; m < 9; ++m) holders.push_back(m);
  cluster.inject(0, 1, holders);
  cluster.run_until_quiet(Duration::seconds(1));
  EXPECT_EQ(cluster.metrics().counters().regional_multicasts, 0u);
}

// ------------------------------------------------------------------ search ----

TEST(EndpointSearch, RequestAtBuffererAnswersImmediately) {
  ClusterConfig cc;
  cc.region_sizes = {5, 1};
  cc.seed = 11;
  Cluster cluster(cc);
  std::vector<MemberId> region0 = cluster.region_members(0);
  MessageId id = cluster.inject_data_to(region0[0], 1, region0);
  for (MemberId m : region0) {
    if (m == 2) {
      cluster.force_long_term(m, id);
    } else {
      cluster.force_discard(m, id);
    }
  }
  MemberId requester = cluster.region_members(1)[0];
  cluster.inject_remote_request(2, id, requester);
  TimePoint repaired = cluster.metrics().first_remote_repair(id);
  EXPECT_EQ(repaired, cluster.now());  // same instant: no search
  EXPECT_EQ(cluster.metrics().counters().searches_started, 0u);
}

TEST(EndpointSearch, SearchFoundStopsAllSearchers) {
  ClusterConfig cc;
  cc.region_sizes = {30, 1};
  cc.seed = 12;
  Cluster cluster(cc);
  std::vector<MemberId> region0 = cluster.region_members(0);
  MessageId id = cluster.inject_data_to(region0[0], 1, region0);
  for (MemberId m : region0) {
    if (m == 7) {
      cluster.force_long_term(m, id);
    } else {
      cluster.force_discard(m, id);
    }
  }
  cluster.inject_remote_request(3, id, cluster.region_members(1)[0]);
  cluster.run_until_quiet(Duration::seconds(2));
  // Requester served, and nobody is stuck searching.
  EXPECT_TRUE(
      cluster.endpoint(cluster.region_members(1)[0]).has_received(id));
  for (MemberId m : region0) {
    EXPECT_EQ(cluster.endpoint(m).active_searches(), 0u) << "member " << m;
  }
}

TEST(EndpointSearch, NeverReceivedMemberRecordsWaiterAndRecovers) {
  // Footnote 4: a member contacted by the search that never received the
  // message starts its own recovery and forwards on receipt.
  ClusterConfig cc;
  cc.region_sizes = {4, 1};
  cc.seed = 13;
  Cluster cluster(cc);
  std::vector<MemberId> region0 = cluster.region_members(0);
  MessageId id{region0[0], 1};
  // Members 0,1 received-and-discarded; member 2 holds; member 3 never saw it.
  cluster.inject_data_to(region0[0], 1,
                         std::vector<MemberId>{region0[0], region0[1], region0[2]});
  cluster.force_discard(region0[0], id);
  cluster.force_discard(region0[1], id);
  cluster.force_long_term(region0[2], id);
  MemberId requester = cluster.region_members(1)[0];
  cluster.inject_remote_request(region0[0], id, requester);
  cluster.run_until_quiet(Duration::seconds(2));
  EXPECT_TRUE(cluster.endpoint(requester).has_received(id));
  EXPECT_TRUE(cluster.endpoint(region0[3]).has_received(id));  // recovered too
}

TEST(EndpointSearch, RemoteRequestForUnknownMessageStartsRecovery) {
  // Case 2 of §3.3: the contacted member never received the message at all.
  ClusterConfig cc = single_region(10, 14);
  // Pin C = n so the lone holder always survives its idle decision; with
  // one slow random prober, a holder can otherwise legitimately idle out
  // before a probe refreshes it (the paper's acknowledged race).
  std::get<buffer::TwoPhaseParams>(cc.policy).C = 10.0;
  Cluster cluster(cc);
  MessageId id{0, 1};
  cluster.inject_data_to(0, 1, std::vector<MemberId>{3});  // only member 3
  // Remote request from a fictitious downstream member id: use member 9 of
  // the same cluster topology as a stand-in requester address.
  cluster.inject_remote_request(5, id, 9);
  cluster.run_until_quiet(Duration::seconds(2));
  // Member 5 recovered the message itself and forwarded it to 9.
  EXPECT_TRUE(cluster.endpoint(5).has_received(id));
  EXPECT_TRUE(cluster.endpoint(9).has_received(id));
  EXPECT_GE(cluster.metrics().counters().remote_repairs_sent, 1u);
}

// ------------------------------------------------------------- hash-direct ----

TEST(EndpointHashDirect, RecoveryTargetsHashBufferers) {
  ClusterConfig cc = single_region(20, 15);
  cc.policy = buffer::HashBasedParams{4, Duration::millis(40)};
  cc.protocol.lookup = BuffererLookup::kHashDirect;
  cc.protocol.hash_k = 4;
  Cluster cluster(cc);
  std::vector<MemberId> all = cluster.region_members(0);
  MessageId id = cluster.inject_data_to(0, 1, all);
  cluster.run_for(Duration::millis(100));  // grace expires at non-bufferers
  // Exactly the k hash-selected members still buffer.
  EXPECT_EQ(cluster.count_buffered(id), 4u);
  auto expected = buffer::hash_bufferers(id, all, 4);
  for (MemberId m : expected) {
    EXPECT_TRUE(cluster.endpoint(m).buffer().has(id)) << "member " << m;
  }
  // A late joiner-style miss: someone who never got it can fetch it straight
  // from the hashed set without any search.
  ClusterConfig cc2 = cc;
  (void)cc2;
  std::size_t searches_before = cluster.metrics().counters().searches_started;
  cluster.inject_session_to(0, 1, std::vector<MemberId>{});  // no-op guard
  EXPECT_EQ(cluster.metrics().counters().searches_started, searches_before);
}

TEST(EndpointHashDirect, MissingMemberRecoversViaHashedSetWithoutSearch) {
  ClusterConfig cc = single_region(20, 16);
  cc.policy = buffer::HashBasedParams{4};
  cc.protocol.lookup = BuffererLookup::kHashDirect;
  cc.protocol.hash_k = 4;
  Cluster cluster(cc);
  std::vector<MemberId> holders;
  for (MemberId m = 0; m < 19; ++m) holders.push_back(m);  // member 19 misses
  MessageId id = cluster.inject(0, 1, holders);
  cluster.run_for(Duration::millis(200));
  EXPECT_TRUE(cluster.endpoint(19).has_received(id));
  EXPECT_EQ(cluster.metrics().counters().searches_started, 0u);
}

// --------------------------------------------------------------- stability ----

TEST(EndpointStability, HistoryExchangeDiscardsStableMessages) {
  ClusterConfig cc = single_region(8, 17);
  cc.policy = buffer::StabilityParams{};
  cc.protocol.history_interval = Duration::millis(10);
  Cluster cluster(cc);
  std::vector<MemberId> all = cluster.region_members(0);
  MessageId id = cluster.inject_data_to(0, 1, all);  // everyone has it
  EXPECT_EQ(cluster.count_buffered(id), 8u);
  cluster.run_for(Duration::millis(100));  // several history rounds
  // Stability can only mark seq < next_expected... seq 1 becomes stable once
  // everyone reports next_expected = 2.
  EXPECT_EQ(cluster.count_buffered(id), 0u);
  EXPECT_GT(cluster.network().stats().sends_by_type[static_cast<int>(
                proto::MessageType::kHistory)],
            0u);
}

TEST(EndpointStability, UnstableMessageIsKept) {
  ClusterConfig cc = single_region(8, 18);
  cc.policy = buffer::StabilityParams{};
  cc.protocol.history_interval = Duration::millis(10);
  cc.protocol.max_attempts = 1;  // keep the missing member from recovering
  cc.control_loss = 1.0;         // all requests/repairs lost
  Cluster cluster(cc);
  std::vector<MemberId> holders;
  for (MemberId m = 0; m < 7; ++m) holders.push_back(m);  // member 7 misses
  MessageId id = cluster.inject(0, 1, holders);
  cluster.run_for(Duration::millis(150));
  // History multicasts are also lost under control_loss=1, so nothing can
  // be declared stable; everyone keeps buffering.
  EXPECT_EQ(cluster.count_buffered(id), 7u);
}

// ------------------------------------------------------------ housekeeping ----

TEST(EndpointLifecycle, SenderDeliversAndBuffersOwnMessage) {
  Cluster cluster(single_region(5, 19));
  MessageId id = cluster.endpoint(0).multicast({1, 2, 3});
  EXPECT_TRUE(cluster.endpoint(0).has_received(id));
  EXPECT_TRUE(cluster.endpoint(0).buffer().has(id));
  cluster.run_for(Duration::millis(20));
  EXPECT_TRUE(cluster.all_received(id));
}

TEST(EndpointLifecycle, SessionMessagesExposeTailLoss) {
  ClusterConfig cc = single_region(6, 20);
  cc.protocol.session_interval = Duration::millis(20);
  cc.data_loss = 1.0;  // initial multicast loses EVERYTHING
  Cluster cluster(cc);
  MessageId id = cluster.endpoint(0).multicast({9});
  cluster.run_for(Duration::millis(200));
  // Nobody got the data, but session messages (also via ip_multicast with
  // loss 1.0)... never arrive either. So nothing recovered:
  EXPECT_FALSE(cluster.all_received(id));
  // Retry with partial loss: sessions eventually get through.
  ClusterConfig cc2 = single_region(6, 21);
  cc2.protocol.session_interval = Duration::millis(20);
  cc2.data_loss = 0.8;
  Cluster c2(cc2);
  MessageId id2 = c2.endpoint(0).multicast({9});
  c2.run_for(Duration::seconds(2));
  EXPECT_TRUE(c2.all_received(id2));
}

TEST(EndpointLifecycle, HaltStopsAllActivity) {
  Cluster cluster(single_region(10, 22));
  cluster.inject_session_to(0, 1, std::vector<MemberId>{5});  // 5 now recovering
  EXPECT_EQ(cluster.endpoint(5).active_recoveries(), 1u);
  cluster.endpoint(5).halt();
  EXPECT_FALSE(cluster.endpoint(5).active());
  EXPECT_EQ(cluster.endpoint(5).active_recoveries(), 0u);
  std::uint64_t sends = cluster.network().stats().sends;
  cluster.run_for(Duration::seconds(1));
  EXPECT_EQ(cluster.network().stats().sends, sends);  // silence after halt
}

TEST(EndpointLifecycle, LeaveTransfersLongTermBuffers) {
  Cluster cluster(single_region(10, 23));
  std::vector<MemberId> all = cluster.region_members(0);
  MessageId id = cluster.inject_data_to(0, 1, all);
  cluster.force_long_term(3, id);
  for (MemberId m : all) {
    if (m != 3) cluster.force_discard(m, id);
  }
  EXPECT_EQ(cluster.count_buffered(id), 1u);
  cluster.leave(3);
  cluster.run_for(Duration::millis(50));
  // Some surviving member inherited the message as a long-term copy.
  EXPECT_EQ(cluster.count_buffered(id), 1u);
  EXPECT_EQ(cluster.count_long_term(id), 1u);
  EXPECT_FALSE(cluster.directory().alive(3));
  EXPECT_EQ(cluster.metrics().counters().handoffs, 1u);
}

TEST(EndpointLifecycle, MissingFromIntrospection) {
  Cluster cluster(single_region(4, 24));
  cluster.inject_session_to(0, 3, std::vector<MemberId>{1});
  auto missing = cluster.endpoint(1).missing_from(0);
  EXPECT_EQ(missing, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(EndpointLifecycle, GossipMessageWithoutFdIsIgnored) {
  Cluster cluster(single_region(3, 25));
  proto::Gossip g{1, {proto::Heartbeat{0, 5}}};
  cluster.endpoint(0).handle_message(proto::Message{g}, 1);  // must not crash
  cluster.run_for(Duration::millis(10));
  SUCCEED();
}

TEST(EndpointLifecycle, RejoinedMemberGetsFreshEndpoint) {
  Cluster cluster(single_region(6, 26));
  MessageId id = cluster.inject_data_to(0, 1, cluster.region_members(0));
  cluster.crash(2);
  EXPECT_FALSE(cluster.directory().alive(2));
  cluster.rejoin(2);
  EXPECT_TRUE(cluster.directory().alive(2));
  EXPECT_FALSE(cluster.endpoint(2).has_received(id));  // fresh state
  // The rejoined member participates again: a session hint brings the
  // old message in from survivors' buffers.
  cluster.inject_session_to(0, 1, std::vector<MemberId>{2});
  cluster.run_until_quiet(Duration::seconds(2));
  EXPECT_TRUE(cluster.endpoint(2).has_received(id));
}

}  // namespace
}  // namespace rrmp::harness
