// Tier-2 scale smoke: the repair-tree makespan experiment at 10^5 members
// (and a sub-sharded 10^4 point), end to end through the real experiment
// driver — the same code path the bench scale points take, at a size ctest
// can afford. The 10^6 point lives in bench_ext_hierarchy_depth.
#include <gtest/gtest.h>

#include "harness/experiments.h"

namespace rrmp::harness {
namespace {

TEST(HierarchyScaleTest, HundredThousandMemberMakespan) {
  MakespanScenario sc;
  sc.fanout = 10;
  sc.depth = 2;
  sc.region_size = 900;  // 111 regions, 99,900 members
  sc.seed = 0x5CA1E;
  MakespanOutcome o = run_makespan_point(sc);
  EXPECT_EQ(o.members, 99900u);
  EXPECT_EQ(o.regions, 111u);
  EXPECT_TRUE(o.all_recovered);
  EXPECT_GT(o.makespan_ms, 0.0);
  EXPECT_GT(o.remote_requests, 0u);
}

TEST(HierarchyScaleTest, SubShardedTenThousandMemberMakespan) {
  MakespanScenario sc;
  sc.fanout = 10;
  sc.depth = 2;
  sc.region_size = 90;   // 111 regions, 9,990 members...
  sc.sub_shard_members = 32;  // ...each split into three chunk lanes
  sc.seed = 0x5CA1F;
  MakespanOutcome o = run_makespan_point(sc);
  EXPECT_EQ(o.members, 9990u);
  EXPECT_TRUE(o.all_recovered);
  EXPECT_GT(o.makespan_ms, 0.0);
}

}  // namespace
}  // namespace rrmp::harness
