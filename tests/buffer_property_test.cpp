// Property/fuzz layer for the budgeted, coordinated BufferStore (ISSUE 5).
//
// Every (policy, budget, coordination, seed) combination drives a store
// through a long randomized sequence of admissions, handoffs, request
// feedback, time advances, forced discards, handoff drains, neighbor digest
// updates and stability-frontier advances, and checks the store's
// structural invariants after every operation:
//
//   - the budget is never exceeded once an admission returns;
//   - accounting is exact (bytes == sum of entry sizes, stats conservation:
//     everything stored is still present or departed exactly once);
//   - flat storage stays strictly id-sorted;
//   - timer bookkeeping is exact: the simulator's pending count equals the
//     number of entries with an armed policy timer, so no timer can ever
//     fire for a departed entry and no handle leaks;
//   - digest-derived replica counts never go negative (they are counts, not
//     deltas) and never exceed the advertising peer set;
//   - shed handoffs happen only under coordination, only for sole copies,
//     and only toward digest-advertised peers, and are counted apart from
//     evictions.
//
// Determinism is a property too: replaying the same seed must produce a
// byte-identical event log and final store state, and pick_victims must
// return identical plans for identical state.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <vector>

#include "buffer/factory.h"
#include "proto/codec.h"
#include "rrmp/flow_control.h"
#include "test_env.h"

namespace rrmp::buffer {
namespace {

using rrmp::testing::FakePolicyEnv;
using rrmp::testing::make_data;

struct FuzzConfig {
  PolicyKind kind = PolicyKind::kTwoPhase;
  BufferBudget budget;
  CoordinationParams coordination;
  std::uint64_t seed = 1;
  std::size_t ops = 300;
};

/// One recorded store event; the whole log is the determinism witness.
struct LoggedEvent {
  MessageId id;
  BufferEvent ev;
  bool long_term;

  friend bool operator==(const LoggedEvent&, const LoggedEvent&) = default;
};

struct ShedRecord {
  MessageId id;
  MemberId target;
};

/// Drives one randomized run and checks invariants after every op.
class StoreFuzzer {
 public:
  explicit StoreFuzzer(const FuzzConfig& cfg)
      : cfg_(cfg),
        env_(/*region_size=*/8, /*self=*/0, /*seed=*/cfg.seed),
        op_rng_(cfg.seed ^ 0xF022ED5ULL) {
    store_ = make_store(spec_for(cfg.kind), cfg.budget, cfg.coordination);
    store_->bind(&env_);
    env_.attach_store(store_.get());
    store_->set_observer([this](const MessageId& id, BufferEvent ev, bool lt) {
      log_.push_back({id, ev, lt});
    });
    store_->set_shed_handler([this](const proto::Data& d, MemberId target) {
      sheds_.push_back({d.id, target});
      return true;
    });
  }

  void run() {
    for (std::size_t op = 0; op < cfg_.ops; ++op) {
      step();
      check_invariants(op);
    }
    // Drain the tail: every armed timer fires against a live entry or was
    // cancelled with it; the final advance must leave the accounting exact.
    env_.advance(Duration::seconds(10));
    check_invariants(cfg_.ops);
  }

  const std::vector<LoggedEvent>& log() const { return log_; }
  const std::vector<ShedRecord>& sheds() const { return sheds_; }
  const BufferStore& store() const { return *store_; }

  /// Canonical digest of the final store state (determinism witness).
  std::string state_digest() const {
    std::ostringstream os;
    store_->for_each_entry([&](const BufferStore::EntryView& e) {
      os << e.id << "/" << e.bytes << "/" << (e.long_term ? "L" : "S") << "/"
         << e.last_activity.us() << ";";
    });
    const BufferStats& st = store_->stats();
    os << "|" << st.stored << "," << st.discarded << "," << st.evicted << ","
       << st.shed << "," << st.handed_off << "," << st.rejected << ","
       << st.promoted_long_term;
    return os.str();
  }

 private:
  static PolicySpec spec_for(PolicyKind kind) {
    switch (kind) {
      case PolicyKind::kTwoPhase:
        // Finite TTL so the long-term re-arm path is fuzzed too.
        return TwoPhaseParams{Duration::millis(40), 3.0,
                              Duration::millis(200)};
      case PolicyKind::kFixedTime:
        return FixedTimeParams{Duration::millis(60)};
      case PolicyKind::kBufferEverything: return BufferEverythingParams{};
      case PolicyKind::kHashBased:
        return HashBasedParams{3, Duration::millis(40),
                               Duration::millis(200)};
      case PolicyKind::kStability: return StabilityParams{};
    }
    return TwoPhaseParams{};
  }

  MessageId random_id() {
    // A small id space makes duplicates, re-admissions of departed ids, and
    // digest-range hits all common.
    return MessageId{static_cast<MemberId>(op_rng_.uniform_int(1, 2)),
                     static_cast<std::uint64_t>(op_rng_.uniform_int(1, 40))};
  }

  void step() {
    std::int64_t dice = op_rng_.uniform_int(0, 99);
    MessageId id = random_id();
    if (dice < 35) {
      std::size_t bytes = static_cast<std::size_t>(op_rng_.uniform_int(8, 96));
      store_->store(proto::Data{
          id, std::vector<std::uint8_t>(bytes, 0x5C)});
    } else if (dice < 45) {
      store_->accept_handoff(proto::Data{
          id, std::vector<std::uint8_t>(
                  static_cast<std::size_t>(op_rng_.uniform_int(8, 96)), 0x5D)});
    } else if (dice < 62) {
      store_->on_request_seen(id);
    } else if (dice < 78) {
      env_.advance(Duration::millis(op_rng_.uniform_int(1, 30)));
    } else if (dice < 84) {
      store_->force_discard(id);
    } else if (dice < 92) {
      // Neighbor digest churn: a random peer advertises a random range set.
      MemberId peer = static_cast<MemberId>(op_rng_.uniform_int(1, 7));
      std::vector<proto::DigestRange> ranges;
      for (std::int64_t i = op_rng_.uniform_int(0, 2); i > 0; --i) {
        ranges.push_back(
            {static_cast<MemberId>(op_rng_.uniform_int(1, 2)),
             static_cast<std::uint64_t>(op_rng_.uniform_int(1, 40)),
             static_cast<std::uint64_t>(op_rng_.uniform_int(1, 8))});
      }
      store_->digests().update(
          peer, static_cast<std::uint64_t>(op_rng_.uniform_int(0, 4096)),
          std::move(ranges));
    } else if (dice < 94) {
      if (op_rng_.uniform_int(0, 1) == 0) {
        store_->digests().forget(
            static_cast<MemberId>(op_rng_.uniform_int(1, 7)));
      } else {
        // View shrink: prune advertisers against a random alive subset, as
        // the endpoint does each digest period.
        std::vector<MemberId> alive;
        for (MemberId m = 0; m < 8; ++m) {
          if (op_rng_.uniform_int(0, 3) != 0) alive.push_back(m);
        }
        store_->digests().retain(alive);
      }
    } else if (dice < 96) {
      (void)store_->drain_for_handoff();
    } else if (dice < 98 && cfg_.kind == PolicyKind::kStability) {
      auto* sp = dynamic_cast<StabilityPolicy*>(&store_->policy());
      ASSERT_NE(sp, nullptr);
      sp->mark_stable_below(static_cast<MemberId>(op_rng_.uniform_int(1, 2)),
                            static_cast<std::uint64_t>(op_rng_.uniform_int(1, 40)));
    } else {
      // Eviction-plan determinism for the current state: identical demands
      // must produce identical plans (pick_victims is a pure function of
      // store + digest state).
      EvictionDemand need{static_cast<std::size_t>(op_rng_.uniform_int(0, 256)),
                          static_cast<std::size_t>(op_rng_.uniform_int(0, 3))};
      EvictionPlan a = store_->policy().pick_victims(need);
      EvictionPlan b = store_->policy().pick_victims(need);
      ASSERT_EQ(a.victims, b.victims);
    }
  }

  void check_invariants(std::size_t op) {
    SCOPED_TRACE("op " + std::to_string(op));
    const BufferStats& st = store_->stats();

    // Budget never exceeded after an admission returned.
    if (cfg_.budget.max_bytes != 0) {
      ASSERT_LE(store_->bytes(), cfg_.budget.max_bytes);
    }
    if (cfg_.budget.max_count != 0) {
      ASSERT_LE(store_->count(), cfg_.budget.max_count);
    }

    // Exact accounting: bytes tracks the entries, storage stays sorted, and
    // every stored message is either still present or departed exactly once.
    std::size_t sum_bytes = 0, timers = 0, entries = 0;
    MessageId prev{0, 0};
    bool first = true;
    store_->for_each_entry([&](const BufferStore::EntryView& e) {
      sum_bytes += e.bytes;
      if (e.timer != 0) ++timers;
      ++entries;
      if (!first) {
        ASSERT_LT(prev, e.id);
      }
      prev = e.id;
      first = false;
      ASSERT_EQ(e.bytes,
                proto::encoded_size(*store_->get(e.id)));
    });
    ASSERT_EQ(sum_bytes, store_->bytes());
    ASSERT_EQ(entries, store_->count());
    ASSERT_EQ(st.stored,
              store_->count() + st.discarded + st.evicted + st.shed +
                  st.handed_off);

    // Timer bookkeeping is exact: every pending simulator event belongs to
    // a live entry, so no timer can fire for a departed one.
    ASSERT_EQ(env_.sim().pending_count(), timers);

    // Digest-derived counts are counts, not deltas: bounded and never
    // "negative" (a held entry always counts itself).
    store_->for_each_entry([&](const BufferStore::EntryView& e) {
      std::size_t replicas = store_->known_replicas(e.id);
      ASSERT_GE(replicas, 1u);
      ASSERT_LE(replicas, 1 + store_->digests().peer_count());
    });
    ASSERT_EQ(store_->known_replicas(MessageId{99, 99}), 0u);

    // Sheds: coordination-gated, sole-copy-only, digest-advertised targets,
    // counted apart from evictions.
    ASSERT_EQ(st.shed, sheds_.size());
    if (!cfg_.coordination.enabled) {
      ASSERT_EQ(st.shed, 0u);
    }
    for (const ShedRecord& s : sheds_) {
      ASSERT_NE(s.target, MemberId{0});  // never to self
      ASSERT_TRUE(s.target != kInvalidMember);
    }
  }

  FuzzConfig cfg_;
  FakePolicyEnv env_;
  RandomEngine op_rng_;
  std::unique_ptr<BufferStore> store_;
  std::vector<LoggedEvent> log_;
  std::vector<ShedRecord> sheds_;
};

constexpr PolicyKind kAllKinds[] = {
    PolicyKind::kTwoPhase, PolicyKind::kFixedTime,
    PolicyKind::kBufferEverything, PolicyKind::kHashBased,
    PolicyKind::kStability};

FuzzConfig config_for(PolicyKind kind, std::uint64_t seed) {
  FuzzConfig cfg;
  cfg.kind = kind;
  cfg.seed = seed;
  // The seed picks the budget axes and coordination so every combination is
  // hit across the seed sweep: bytes-only, count-only, both, unlimited.
  switch (seed % 4) {
    case 0: cfg.budget = {600, 0}; break;
    case 1: cfg.budget = {0, 5}; break;
    case 2: cfg.budget = {600, 5}; break;
    case 3: cfg.budget = {}; break;
  }
  cfg.coordination.enabled = (seed % 2) == 0;
  // Below the fuzzer's 1–30 ms advances, so the shed age gate passes and
  // fails across the corpus instead of suppressing sheds entirely.
  cfg.coordination.digest_interval = Duration::millis(5);
  return cfg;
}

TEST(BufferPropertyTest, RandomizedOpsPreserveInvariants) {
  for (PolicyKind kind : kAllKinds) {
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
      SCOPED_TRACE(std::string(to_string(kind)) + " seed " +
                   std::to_string(seed));
      StoreFuzzer fuzzer(config_for(kind, seed));
      fuzzer.run();
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(BufferPropertyTest, IdenticalSeedsReplayIdentically) {
  // Determinism is the harness's foundational contract: the same seed must
  // produce the same event log, the same sheds, and the same final state —
  // eviction plans included, since they drive the evicted-id sequence.
  for (PolicyKind kind : kAllKinds) {
    for (std::uint64_t seed : {3u, 6u}) {
      SCOPED_TRACE(std::string(to_string(kind)) + " seed " +
                   std::to_string(seed));
      StoreFuzzer a(config_for(kind, seed));
      StoreFuzzer b(config_for(kind, seed));
      a.run();
      b.run();
      if (::testing::Test::HasFatalFailure()) return;
      EXPECT_EQ(a.log(), b.log());
      EXPECT_EQ(a.state_digest(), b.state_digest());
      ASSERT_EQ(a.sheds().size(), b.sheds().size());
      for (std::size_t i = 0; i < a.sheds().size(); ++i) {
        EXPECT_EQ(a.sheds()[i].id, b.sheds()[i].id);
        EXPECT_EQ(a.sheds()[i].target, b.sheds()[i].target);
      }
    }
  }
}

TEST(BufferPropertyTest, EventLogLifecyclesAreWellFormed) {
  // Per-id lifecycle check over the full fuzzed log: departures alternate
  // with stores (an id never departs twice without being re-admitted), and
  // a promotion only happens while present. This is the observable form of
  // "no timer fires for a departed entry".
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    StoreFuzzer fuzzer(config_for(PolicyKind::kTwoPhase, seed));
    fuzzer.run();
    if (::testing::Test::HasFatalFailure()) return;
    std::map<MessageId, bool> present;
    for (const LoggedEvent& e : fuzzer.log()) {
      switch (e.ev) {
        case BufferEvent::kStored:
          ASSERT_FALSE(present[e.id]) << "double store of " << e.id;
          present[e.id] = true;
          break;
        case BufferEvent::kPromotedLongTerm:
          ASSERT_TRUE(present[e.id]) << "promotion of departed " << e.id;
          break;
        case BufferEvent::kDiscarded:
        case BufferEvent::kEvicted:
        case BufferEvent::kHandedOff:
        case BufferEvent::kShedHandoff:
          ASSERT_TRUE(present[e.id]) << "departure of departed " << e.id;
          present[e.id] = false;
          break;
      }
    }
  }
}

TEST(BufferPropertyTest, RetainPrunesDepartedAdvertisers) {
  // Regression: a departed member's last digest must stop counting — a
  // stale advertisement would let a survivor evict what is now the
  // region's actual last copy, or elect a dead keeper (see
  // Endpoint::digest_tick, which prunes against the live view each
  // period).
  DigestTable table;
  MessageId id{1, 5};
  table.update(1, 10, {{1, 5, 1}});
  table.update(2, 20, {{1, 5, 1}});
  table.update(3, 30, {{1, 5, 1}});
  ASSERT_EQ(table.holders_of(id), 3u);

  table.retain({0, 1, 3});  // member 2 left/crashed
  EXPECT_EQ(table.holders_of(id), 2u);
  EXPECT_FALSE(table.has_peer(2));
  EXPECT_TRUE(table.has_peer(1));
  EXPECT_TRUE(table.has_peer(3));
  // The departed member can no longer be a shed target either.
  EXPECT_EQ(table.least_loaded({0, 1, 2, 3}, 0), MemberId{1});

  table.retain({0});  // everyone else gone
  EXPECT_EQ(table.peer_count(), 0u);
  EXPECT_EQ(table.holders_of(id), 0u);
  // With no advertisers left, any member elects itself keeper.
  EXPECT_TRUE(table.keeper_is(id, 0));
}

TEST(BufferPropertyTest, DigestAgingDropsSeveredAdvertisersButNotFreshOnes) {
  // Regression for the partition half of stale-advertiser pruning: a
  // severed-but-alive peer stays in the membership view, so retain() keeps
  // its last digest forever — only the missed-refresh aging can drop it.
  // An entry must survive exactly max_missed quiet periods, die on the
  // next, and any update() in between must reset the clock; age(0) is the
  // disabled configuration and touches nothing.
  DigestTable table;
  MessageId id{1, 5};
  table.update(1, 10, {{1, 5, 1}});
  table.update(2, 20, {{1, 5, 1}});
  ASSERT_EQ(table.holders_of(id), 2u);

  constexpr std::size_t kMaxMissed = 3;
  // Peer 2 refreshes every period; peer 1 goes quiet (severed).
  for (std::size_t period = 0; period < kMaxMissed; ++period) {
    EXPECT_EQ(table.age(kMaxMissed), 0u) << "period " << period;
    table.update(2, 20, {{1, 5, 1}});
  }
  // Through max_missed quiet periods the entry still counts: a slow digest
  // is not a partition.
  EXPECT_TRUE(table.has_peer(1));
  EXPECT_EQ(table.holders_of(id), 2u);
  // One more quiet period crosses the threshold: only the quiet peer dies.
  EXPECT_EQ(table.age(kMaxMissed), 1u);
  EXPECT_FALSE(table.has_peer(1));
  EXPECT_TRUE(table.has_peer(2));
  EXPECT_EQ(table.holders_of(id), 1u);

  // A refresh anywhere along the way resets the clock to zero.
  table.update(1, 10, {{1, 5, 1}});
  for (std::size_t period = 0; period < kMaxMissed; ++period) {
    EXPECT_EQ(table.age(kMaxMissed), 0u);
    table.update(1, 10, {{1, 5, 1}});
    table.update(2, 20, {{1, 5, 1}});
  }
  EXPECT_EQ(table.peer_count(), 2u);

  // max_missed == 0 disables aging outright: entries live forever.
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.age(0), 0u);
  EXPECT_EQ(table.peer_count(), 2u);
}

TEST(BufferPropertyTest, CoordinatedShedsRequireAdvertisedSoleCopy) {
  // Deterministic scenario distilled from the fuzz corpus: under
  // coordination, a victim with an advertised replica is evicted in place,
  // a sole-copy victim is shed to the least-loaded advertising peer.
  FakePolicyEnv env(/*region_size=*/4, /*self=*/0, /*seed=*/7);
  CoordinationParams coord;
  coord.enabled = true;
  coord.digest_interval = Duration::millis(1);  // below the test's advances
  auto store = make_store(BufferEverythingParams{}, BufferBudget{0, 2}, coord);
  store->bind(&env);
  env.attach_store(store.get());
  std::vector<ShedRecord> sheds;
  store->set_shed_handler([&](const proto::Data& d, MemberId target) {
    sheds.push_back({d.id, target});
    return true;
  });
  // Peer 2 is lighter than peer 1; neither advertises our entries, so both
  // stored entries are sole copies.
  store->digests().update(1, 900, {});
  store->digests().update(2, 100, {});
  store->store(make_data(1, 1));
  env.advance(Duration::millis(1));
  store->store(make_data(1, 2));
  store->store(make_data(1, 3));  // pressure: sole-copy LRU {1,1} must shed
  ASSERT_EQ(sheds.size(), 1u);
  EXPECT_EQ(sheds[0].id, (MessageId{1, 1}));
  EXPECT_EQ(sheds[0].target, MemberId{2});  // least-loaded advertised peer
  EXPECT_EQ(store->stats().shed, 1u);
  EXPECT_EQ(store->stats().evicted, 0u);

  // Now {1,2} gains an advertised replica: the next pressure evicts it in
  // place (redundant victims are not shed) even though {1,4} is fresher.
  store->digests().update(1, 900, {{1, 2, 1}});
  store->store(make_data(1, 4));
  ASSERT_EQ(sheds.size(), 1u);  // no new shed
  EXPECT_EQ(store->stats().evicted, 1u);
  EXPECT_FALSE(store->has(MessageId{1, 2}));
}

TEST(FlowControlPropertyTest, RandomizedFeedbackPreservesWindowInvariants) {
  // The flow-control axis of the fuzz layer: a FlowController driven by a
  // randomized interleaving of admitted sends, peer cursor acks (including
  // stale and absurd ones), occupancy reports and peer departures must
  // always satisfy:
  //   - credits() never exceeds window_size (the hard pacing bound);
  //   - goodput accounting is exact against a shadow model (frames_sent,
  //     bytes_sent, outstanding, outstanding_bytes);
  //   - may_send() is consistent with outstanding() vs effective_window().
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    RandomEngine rng(seed ^ 0xF10BA11ULL);
    FlowControlParams params;
    params.enabled = true;
    params.window_size = static_cast<std::uint32_t>(rng.uniform_int(1, 6));
    params.target_budget_bytes =
        (seed % 2) == 0 ? 0 : static_cast<std::size_t>(rng.uniform_int(64, 256));
    // Odd seeds run the AIMD window: min_window within the static window
    // (no sanitizer clamping to shadow), max_window either "use the static
    // knob as ceiling" or explicitly above it.
    params.adaptive = (seed % 2) == 1;
    params.min_window = static_cast<std::uint32_t>(
        rng.uniform_int(1, params.window_size));
    params.max_window =
        rng.uniform_int(0, 1) == 0
            ? 0
            : params.window_size + static_cast<std::uint32_t>(
                                       rng.uniform_int(0, 4));
    FlowController fc(params, /*self_budget_bytes=*/1024);
    const std::uint32_t ceiling = params.ceiling();
    const std::uint64_t ring_span =
        std::max(params.window_size, ceiling);

    // Shadow model: cumulative bytes per sequence, per-peer cursors, and
    // the AIMD congestion window.
    std::vector<std::uint64_t> cum = {0};  // cum[s] = bytes through seq s
    std::map<MemberId, std::uint64_t> cursors;
    std::map<MemberId, std::uint64_t> reported;  // genuine acks, monotone
    std::uint64_t deferred = 0;
    std::uint32_t shadow_cwnd = params.adaptive ? params.min_window : 0;
    auto shadow_floor = [&cursors] {
      std::uint64_t floor = 0;
      bool first = true;
      for (const auto& [peer, cur] : cursors) {
        if (first || cur < floor) floor = cur;
        first = false;
      }
      return floor;
    };

    for (int op = 0; op < 400; ++op) {
      SCOPED_TRACE("op " + std::to_string(op));
      std::int64_t dice = rng.uniform_int(0, 99);
      if (dice < 40) {
        std::size_t bytes = static_cast<std::size_t>(rng.uniform_int(8, 96));
        if (fc.may_send(bytes)) {
          fc.on_frame_sent(fc.send_seq() + 1, bytes);
          cum.push_back(cum.back() + bytes);
        } else {
          fc.note_deferred();
          ++deferred;
        }
      } else if (dice < 65) {
        // A cursor ack: sometimes stale, sometimes beyond what was sent.
        MemberId peer = static_cast<MemberId>(rng.uniform_int(1, 4));
        std::uint64_t cursor =
            static_cast<std::uint64_t>(rng.uniform_int(0, 12));
        fc.on_cursor(peer, cursor);
        std::uint64_t clamped = std::min<std::uint64_t>(cursor, cum.size() - 1);
        auto [rit, rinserted] = reported.try_emplace(peer, clamped);
        if (!rinserted && clamped > rit->second) rit->second = clamped;
        auto [it, inserted] = cursors.try_emplace(peer, clamped);
        if (!inserted && clamped > it->second) it->second = clamped;
      } else if (dice < 78) {
        MemberId peer = static_cast<MemberId>(rng.uniform_int(1, 4));
        std::uint64_t use = static_cast<std::uint64_t>(rng.uniform_int(0, 2048));
        if (rng.uniform_int(0, 1) == 0) {
          fc.on_peer_budget(peer, use,
                            static_cast<std::uint64_t>(rng.uniform_int(0, 2048)));
        } else {
          fc.on_peer_occupancy(
              peer, use, static_cast<std::uint64_t>(rng.uniform_int(0, 8)));
        }
      } else if (dice < 83) {
        std::vector<MemberId> alive;
        for (MemberId m = 1; m <= 4; ++m) {
          if (rng.uniform_int(0, 4) != 0) alive.push_back(m);
        }
        fc.retain_peers(alive);
        for (auto it = cursors.begin(); it != cursors.end();) {
          bool keep = std::find(alive.begin(), alive.end(), it->first) !=
                      alive.end();
          it = keep ? std::next(it) : cursors.erase(it);
        }
        for (auto it = reported.begin(); it != reported.end();) {
          bool keep = std::find(alive.begin(), alive.end(), it->first) !=
                      alive.end();
          it = keep ? std::next(it) : reported.erase(it);
        }
      } else if (dice < 88) {
        // A mid-stream join: the controller seeds the cursor at the current
        // floor; try_emplace keeps a real cursor if the peer already spoke.
        MemberId peer = static_cast<MemberId>(rng.uniform_int(1, 5));
        std::uint64_t floor = shadow_floor();
        fc.on_peer_joined(peer);
        cursors.try_emplace(peer, floor);
      } else if (dice < 95) {
        // AIMD signals: a clean round grows by one up to the ceiling, a
        // loss halves down to min_window — no-ops with adaptive off.
        if (rng.uniform_int(0, 2) != 0) {
          fc.on_clean_round();
          if (params.adaptive && shadow_cwnd < ceiling) ++shadow_cwnd;
        } else {
          fc.on_loss();
          if (params.adaptive) {
            shadow_cwnd = std::max(params.min_window, shadow_cwnd / 2);
          }
        }
      } else if (dice < 98) {
        // The stalled-cursor release: fires only when every floor-holding
        // binding is seeded ahead of its peer's genuine reports; an honest
        // floor holder pins the floor. Mirror the two-pass check exactly.
        auto shadow_release = [&] {
          if (cursors.empty()) return false;
          std::uint64_t floor = shadow_floor();
          if (floor >= cum.size() - 1) return false;
          for (const auto& [peer, cur] : cursors) {
            if (cur != floor) continue;
            auto rit = reported.find(peer);
            std::uint64_t rep = rit == reported.end() ? 0 : rit->second;
            if (rep >= cur) return false;
          }
          for (auto& [peer, cur] : cursors) {
            if (cur == floor) cur = floor + 1;
          }
          return true;
        };
        bool released = fc.release_stalled_peers();
        ASSERT_EQ(released, shadow_release());
      } else {
        // Quiescent probe: repeated queries must not mutate state.
        (void)fc.may_send(1);
        (void)fc.credits();
        (void)fc.pressured();
      }

      // --- invariants, after every op ---
      std::uint64_t send_seq = cum.size() - 1;
      std::uint64_t floor = shadow_floor();
      ASSERT_LE(fc.credits(), ceiling);
      ASSERT_EQ(fc.current_window(),
                params.adaptive ? shadow_cwnd : params.window_size);
      ASSERT_EQ(fc.send_seq(), send_seq);
      ASSERT_EQ(fc.frames_sent(), send_seq);
      ASSERT_EQ(fc.frames_deferred(), deferred);
      ASSERT_EQ(fc.bytes_sent(), cum.back());
      ASSERT_EQ(fc.window_floor(), floor);
      ASSERT_EQ(fc.outstanding(), send_seq - floor);
      // Byte accounting is clamped to the newest frames the cumulative ring
      // covers (max of the static window and the AIMD ceiling): a
      // late-reporting peer (cursor 0 after sends) can pull the floor
      // further back than the ring reaches.
      std::uint64_t oldest_covered =
          send_seq > ring_span ? send_seq - ring_span : 0;
      ASSERT_EQ(fc.outstanding_bytes(),
                cum.back() - cum[std::max(floor, oldest_covered)]);
      ASSERT_EQ(fc.credits(),
                fc.outstanding() >= fc.effective_window()
                    ? 0u
                    : fc.effective_window() - fc.outstanding());
      if (fc.outstanding() >= fc.effective_window()) {
        ASSERT_FALSE(fc.may_send(1));
      }
      if (fc.credits() > 0 && params.target_budget_bytes == 0) {
        ASSERT_TRUE(fc.may_send(1));
      }
    }
  }
}

}  // namespace
}  // namespace rrmp::buffer
