// Configuration-mode interaction tests: hash-direct fallbacks, timeout
// scaling, logging levels, and mode combinations that cross subsystem
// boundaries.
#include <gtest/gtest.h>

#include "common/logging.h"
#include "harness/cluster.h"

namespace rrmp::harness {
namespace {

TEST(HashDirectFallback, FallsBackToSearchWhenSelfIsTheOnlyHashTarget) {
  // hash_k = 1 and the single hash-selected bufferer discarded its copy:
  // the deterministic lookup dead-ends and the random search must take
  // over for the remote requester.
  ClusterConfig cc;
  cc.region_sizes = {10, 1};
  cc.seed = 401;
  cc.protocol.lookup = BuffererLookup::kHashDirect;
  cc.protocol.hash_k = 1;
  Cluster cluster(cc);
  std::vector<MemberId> region0 = cluster.region_members(0);
  MessageId id = cluster.inject_data_to(region0[0], 1, region0);
  // Find the single hash-selected member for this id.
  std::vector<MemberId> set = buffer::hash_bufferers(id, region0, 1);
  ASSERT_EQ(set.size(), 1u);
  MemberId hashed = set[0];
  // Keep a DIFFERENT member as the actual bufferer; the hashed one discards.
  MemberId actual = hashed == region0[0] ? region0[1] : region0[0];
  for (MemberId m : region0) {
    if (m == actual) {
      cluster.force_long_term(m, id);
    } else {
      cluster.force_discard(m, id);
    }
  }
  MemberId requester = cluster.region_members(1)[0];
  // The remote request lands exactly at the hashed member (where the
  // deterministic scheme says the copy should be — but it is gone).
  cluster.inject_remote_request(hashed, id, requester);
  cluster.run_until_quiet(Duration::seconds(3));
  EXPECT_TRUE(cluster.endpoint(requester).has_received(id));
}

TEST(TimeoutFactor, ScalesRetryCadence) {
  auto requests_after = [](double factor, std::uint64_t seed) {
    ClusterConfig cc;
    cc.region_sizes = {10};
    cc.seed = seed;
    cc.protocol.timeout_factor = factor;
    Cluster cluster(cc);
    // Nobody has the message: member 1 probes forever; count its requests
    // in a fixed window. Timer = RTT * factor.
    cluster.inject_session_to(0, 1, std::vector<MemberId>{1});
    cluster.run_for(Duration::millis(100));
    return cluster.metrics().counters().local_requests_sent;
  };
  std::uint64_t fast = requests_after(1.0, 42);   // retry every 10 ms
  std::uint64_t slow = requests_after(4.0, 42);   // retry every 40 ms
  EXPECT_GT(fast, slow * 2);
}

TEST(StabilityPlusAntiEntropy, HistoryMessagesServeBothRoles) {
  // The stability policy's multicast histories AND the anti-entropy pulls
  // share the History message; enabling both must work: digests spread the
  // message, stability eventually reclaims the buffers.
  ClusterConfig cc;
  cc.region_sizes = {8};
  cc.seed = 402;
  cc.policy = buffer::StabilityParams{};
  cc.protocol.history_interval = Duration::millis(10);
  cc.protocol.anti_entropy = true;
  cc.protocol.anti_entropy_interval = Duration::millis(15);
  cc.protocol.gap_driven_recovery = false;  // digests do all the work
  Cluster cluster(cc);
  MessageId id = cluster.inject_data_to(0, 1, std::vector<MemberId>{0});
  cluster.run_for(Duration::seconds(3));
  EXPECT_TRUE(cluster.all_received(id));
  // Everyone reported everyone: the message went stable and was discarded.
  EXPECT_EQ(cluster.count_buffered(id), 0u);
}

TEST(Logging, LevelsFilterAndRestore) {
  log::Level before = log::level();
  log::set_level(log::Level::kError);
  EXPECT_EQ(log::level(), log::Level::kError);
  // These must be cheap no-ops below the threshold (no observable crash).
  log::trace("invisible ", 1);
  log::debug("invisible ", 2);
  log::info("invisible ", 3);
  log::warn("invisible ", 4);
  log::set_level(log::Level::kOff);
  log::error("also invisible ", 5);
  log::set_level(before);
  SUCCEED();
}

TEST(ClusterConfigShapes, SingleMemberRegionsWork) {
  // Degenerate shapes must not wedge: a 1-member root with a 1-member
  // child; local recovery has no targets, remote recovery does everything.
  ClusterConfig cc;
  cc.region_sizes = {1, 1};
  cc.seed = 403;
  cc.protocol.lambda = 5.0;
  Cluster cluster(cc);
  MessageId id = cluster.inject_data_to(0, 1, std::vector<MemberId>{0});
  cluster.inject_session_to(0, 1, std::vector<MemberId>{1});
  cluster.run_until_quiet(Duration::seconds(3));
  EXPECT_TRUE(cluster.all_received(id));
}

TEST(ClusterConfigShapes, WideFanoutHierarchy) {
  // One root, five children, all parented on region 0.
  ClusterConfig cc;
  cc.region_sizes = {10, 6, 6, 6, 6, 6};
  cc.seed = 404;
  cc.protocol.lambda = 2.0;
  Cluster cluster(cc);
  std::vector<MemberId> root = cluster.region_members(0);
  MessageId id = cluster.inject_data_to(root[0], 1, root);
  for (RegionId r = 1; r <= 5; ++r) {
    cluster.inject_session_to(root[0], 1, cluster.region_members(r));
  }
  cluster.run_until_quiet(Duration::seconds(5));
  EXPECT_TRUE(cluster.all_received(id));
  // Each child recovered independently through the shared root.
  EXPECT_GE(cluster.metrics().counters().regional_multicasts, 5u);
}

}  // namespace
}  // namespace rrmp::harness
