// Real-socket tests: the same endpoints running over loopback UDP.
// Skipped gracefully if the environment forbids binding UDP sockets.
#include <gtest/gtest.h>

#include "harness/udp_runtime.h"

namespace rrmp::harness {
namespace {

std::unique_ptr<UdpRuntime> try_make(const net::Topology& topo,
                                     UdpRuntimeConfig cfg) {
  try {
    return std::make_unique<UdpRuntime>(topo, cfg);
  } catch (const std::runtime_error& e) {
    return nullptr;
  }
}

// Short timings so wall-clock test time stays low: RTT 4 ms, T = 16 ms.
UdpRuntimeConfig fast_config(std::uint16_t port, std::uint64_t seed) {
  UdpRuntimeConfig cfg;
  cfg.base_port = port;
  cfg.seed = seed;
  cfg.protocol.session_interval = Duration::millis(20);
  std::get<buffer::TwoPhaseParams>(cfg.policy).idle_threshold =
      Duration::millis(16);
  return cfg;
}

net::Topology fast_topology(std::vector<std::size_t> sizes) {
  return net::make_hierarchy(sizes, Duration::millis(4), Duration::millis(10));
}

TEST(UdpRuntime, LosslessMulticastReachesEveryone) {
  net::Topology topo = fast_topology({6});
  auto rt = try_make(topo, fast_config(38100, 1));
  if (!rt) GTEST_SKIP() << "UDP sockets unavailable";
  MessageId id = rt->endpoint(0).multicast({1, 2, 3, 4});
  rt->run_for(Duration::millis(300));
  EXPECT_TRUE(rt->all_received(id));
  EXPECT_GT(rt->bus().datagrams_received(), 0u);
}

TEST(UdpRuntime, RecoveryRepairsRealPacketLoss) {
  net::Topology topo = fast_topology({8});
  UdpRuntimeConfig cfg = fast_config(38200, 2);
  cfg.data_loss = 0.4;  // drop 40% of the initial fan-out
  auto rt = try_make(topo, cfg);
  if (!rt) GTEST_SKIP() << "UDP sockets unavailable";
  std::vector<MessageId> ids;
  for (int i = 0; i < 3; ++i) {
    ids.push_back(rt->endpoint(0).multicast({static_cast<std::uint8_t>(i)}));
  }
  rt->run_for(Duration::millis(1500));
  for (const MessageId& id : ids) {
    EXPECT_TRUE(rt->all_received(id)) << "seq " << id.seq;
  }
  // Loss happened and was repaired through retransmission requests.
  EXPECT_GT(rt->metrics().counters().local_requests_sent, 0u);
  EXPECT_GT(rt->metrics().counters().repairs_sent, 0u);
}

TEST(UdpRuntime, CrossRegionRepairOverSockets) {
  net::Topology topo = fast_topology({4, 4});
  UdpRuntimeConfig cfg = fast_config(38300, 3);
  cfg.protocol.lambda = 4.0;  // the whole child region misses: recover fast
  auto rt = try_make(topo, cfg);
  if (!rt) GTEST_SKIP() << "UDP sockets unavailable";
  // Hand-deliver the message to region 0 only, then let session messages
  // expose it to region 1 (datagram loss of the initial multicast).
  proto::Data d{MessageId{0, 1}, {7, 7, 7}};
  for (MemberId m = 0; m < 4; ++m) {
    rt->endpoint(m).handle_message(proto::Message{d}, 0);
  }
  proto::Session s{0, 1};
  for (MemberId m = 4; m < 8; ++m) {
    rt->endpoint(m).handle_message(proto::Message{s}, 0);
  }
  rt->run_for(Duration::millis(1500));
  EXPECT_TRUE(rt->all_received(d.id));
  EXPECT_GE(rt->metrics().counters().remote_repairs_sent, 1u);
}

TEST(UdpRuntime, TwoPhaseIdleDiscardHappensInRealTime) {
  net::Topology topo = fast_topology({6});
  UdpRuntimeConfig cfg = fast_config(38400, 4);
  std::get<buffer::TwoPhaseParams>(cfg.policy).C = 0.0;  // keep nothing
  auto rt = try_make(topo, cfg);
  if (!rt) GTEST_SKIP() << "UDP sockets unavailable";
  MessageId id = rt->endpoint(0).multicast({1});
  rt->run_for(Duration::millis(400));  // >> T = 16 ms of silence
  for (MemberId m = 0; m < 6; ++m) {
    EXPECT_FALSE(rt->endpoint(m).buffer().has(id)) << "member " << m;
  }
  EXPECT_TRUE(rt->all_received(id));
}

// Thread-per-core runtime: members partitioned across two worker event
// loops, cross-worker traffic through the kernel, merged metrics. The same
// recovery guarantees must hold as on the single-threaded path.
TEST(UdpRuntime, MultiWorkerPartitionedLoopsDeliverAndRecover) {
  net::Topology topo = fast_topology({4, 4});
  UdpRuntimeConfig cfg = fast_config(38600, 6);
  cfg.workers = 2;
  cfg.data_loss = 0.3;
  auto rt = try_make(topo, cfg);
  if (!rt) GTEST_SKIP() << "UDP sockets unavailable";
  ASSERT_EQ(rt->worker_count(), 2u);
  EXPECT_EQ(rt->worker_of(0), 0u);
  EXPECT_EQ(rt->worker_of(7), 1u);
  std::vector<MessageId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(rt->endpoint(0).multicast({static_cast<std::uint8_t>(i)}));
  }
  // Two event-loop threads share one core here, so recovery wall time is
  // noisy: run in bounded rounds until the stream converges.
  auto all_done = [&] {
    for (const MessageId& id : ids) {
      if (!rt->all_received(id)) return false;
    }
    return true;
  };
  for (int round = 0; round < 10 && !all_done(); ++round) {
    rt->run_for(Duration::millis(500));
  }
  for (const MessageId& id : ids) {
    EXPECT_TRUE(rt->all_received(id)) << "seq " << id.seq;
  }
  // Worker sinks merge into one coherent view: every member delivered every
  // message, and the lossy fan-out forced real repair traffic.
  const auto& counters = rt->metrics().counters();
  EXPECT_GE(counters.delivered, ids.size() * (topo.member_count() - 1));
  EXPECT_GT(counters.repairs_sent, 0u);
  EXPECT_GT(rt->datagrams_received(), 0u);
}

TEST(UdpRuntime, StraySocketDataIsIgnored) {
  net::Topology topo = fast_topology({3});
  auto rt = try_make(topo, fast_config(38500, 5));
  if (!rt) GTEST_SKIP() << "UDP sockets unavailable";
  // Throw garbage at member 0's socket from member 1's address: the decode
  // layer must reject it without disturbing the protocol.
  rt->bus().send(1, 0, {0xFF, 0x00, 0xAA});
  rt->bus().send(1, 0, {});
  MessageId id = rt->endpoint(0).multicast({9});
  rt->run_for(Duration::millis(300));
  EXPECT_TRUE(rt->all_received(id));
}

}  // namespace
}  // namespace rrmp::harness
