// Unit tests for the RecordingSink: interval bookkeeping, first-repair
// tracking, per-id counters.
#include <gtest/gtest.h>

#include "rrmp/metrics.h"

namespace rrmp {
namespace {

MessageId id(std::uint64_t seq) { return MessageId{1, seq}; }
TimePoint at(std::int64_t ms) {
  return TimePoint::zero() + Duration::millis(ms);
}

TEST(RecordingSinkTest, BufferIntervalsCloseOnDiscard) {
  RecordingSink sink;
  sink.on_buffer_stored(3, id(1), at(10));
  sink.on_buffer_discarded(3, id(1), at(60), /*was_long_term=*/false);
  ASSERT_EQ(sink.buffer_intervals().size(), 1u);
  const auto& iv = sink.buffer_intervals()[0];
  EXPECT_EQ(iv.member, 3u);
  EXPECT_EQ(iv.held(), Duration::millis(50));
  EXPECT_FALSE(iv.was_long_term);
}

TEST(RecordingSinkTest, IntervalsArePerMemberPerMessage) {
  RecordingSink sink;
  sink.on_buffer_stored(1, id(1), at(0));
  sink.on_buffer_stored(2, id(1), at(5));
  sink.on_buffer_discarded(2, id(1), at(25), false);
  // Member 1's copy is still open: only one closed interval.
  ASSERT_EQ(sink.buffer_intervals().size(), 1u);
  EXPECT_EQ(sink.buffer_intervals()[0].member, 2u);
  EXPECT_EQ(sink.buffer_intervals()[0].held(), Duration::millis(20));
}

TEST(RecordingSinkTest, DiscardWithoutStoreIsTolerated) {
  RecordingSink sink;
  sink.on_buffer_discarded(1, id(9), at(10), true);
  EXPECT_TRUE(sink.buffer_intervals().empty());
  EXPECT_EQ(sink.counters().discards, 1u);
}

TEST(RecordingSinkTest, FirstRemoteRepairKeepsEarliest) {
  RecordingSink sink;
  EXPECT_EQ(sink.first_remote_repair(id(1)), TimePoint::max());
  sink.on_repair_sent(1, id(1), /*remote=*/true, at(30));
  sink.on_repair_sent(2, id(1), /*remote=*/true, at(20));
  sink.on_repair_sent(3, id(1), /*remote=*/true, at(40));
  EXPECT_EQ(sink.first_remote_repair(id(1)), at(20));
  EXPECT_EQ(sink.remote_repairs_for(id(1)), 3u);
  // Local repairs do not count toward remote tracking.
  sink.on_repair_sent(4, id(2), /*remote=*/false, at(5));
  EXPECT_EQ(sink.first_remote_repair(id(2)), TimePoint::max());
  EXPECT_EQ(sink.remote_repairs_for(id(2)), 0u);
  EXPECT_EQ(sink.counters().repairs_sent, 4u);
  EXPECT_EQ(sink.counters().remote_repairs_sent, 3u);
}

TEST(RecordingSinkTest, RequestCountersSplitLocalRemote) {
  RecordingSink sink;
  sink.on_request_sent(1, id(1), /*remote=*/false, at(1));
  sink.on_request_sent(1, id(1), /*remote=*/true, at(2));
  sink.on_request_sent(2, id(1), /*remote=*/true, at(3));
  EXPECT_EQ(sink.counters().local_requests_sent, 1u);
  EXPECT_EQ(sink.counters().remote_requests_sent, 2u);
  EXPECT_EQ(sink.remote_requests_for(id(1)), 2u);
  EXPECT_EQ(sink.remote_requests_for(id(2)), 0u);
}

TEST(RecordingSinkTest, RecoveryLatenciesAccumulate) {
  RecordingSink sink;
  sink.on_recovered(1, id(1), at(30), Duration::millis(12));
  sink.on_recovered(2, id(1), at(35), Duration::millis(18));
  ASSERT_EQ(sink.recovery_latencies().size(), 2u);
  EXPECT_EQ(sink.recovery_latencies()[0], Duration::millis(12));
  EXPECT_EQ(sink.counters().recoveries, 2u);
}

TEST(RecordingSinkTest, EventStreamsKeepOrderAndPayload) {
  RecordingSink sink;
  sink.on_delivered(5, id(2), at(7));
  sink.on_buffer_stored(5, id(2), at(7));
  sink.on_promoted_long_term(5, id(2), at(50));
  ASSERT_EQ(sink.deliveries().size(), 1u);
  EXPECT_EQ(sink.deliveries()[0].member, 5u);
  EXPECT_EQ(sink.deliveries()[0].at, at(7));
  ASSERT_EQ(sink.promotions().size(), 1u);
  EXPECT_EQ(sink.promotions()[0].at, at(50));
  EXPECT_EQ(sink.counters().long_term_promotions, 1u);
}

TEST(RecordingSinkTest, ClearResetsEverything) {
  RecordingSink sink;
  sink.on_delivered(1, id(1), at(1));
  sink.on_buffer_stored(1, id(1), at(1));
  sink.on_repair_sent(1, id(1), true, at(2));
  sink.clear();
  EXPECT_EQ(sink.counters().delivered, 0u);
  EXPECT_TRUE(sink.deliveries().empty());
  EXPECT_TRUE(sink.stores().empty());
  EXPECT_EQ(sink.first_remote_repair(id(1)), TimePoint::max());
}

TEST(NullSinkTest, AcceptsEverythingSilently) {
  NullSink sink;
  MetricsSink& base = sink;
  base.on_delivered(1, id(1), at(1));
  base.on_search_hop(1, 2, id(1), at(2));
  base.on_handoff_sent(1, 2, 3, at(3));
  SUCCEED();
}

}  // namespace
}  // namespace rrmp
