// Statistical tests: the loss models' empirical drop rates must match their
// configured/stationary rates. Fixed seeds keep these deterministic; 100k
// trials puts the Monte Carlo error well inside the ±1% tolerance.
#include <gtest/gtest.h>

#include <memory>

#include "common/random.h"
#include "net/loss_model.h"

namespace rrmp::net {
namespace {

constexpr std::size_t kTrials = 100000;
constexpr double kTolerance = 0.01;  // ±1% absolute

double empirical_rate(LossModel& model, std::uint64_t seed,
                      std::size_t trials = kTrials) {
  RandomEngine rng(seed);
  std::size_t drops = 0;
  for (std::size_t i = 0; i < trials; ++i) {
    if (model.drop(rng)) ++drops;
  }
  return static_cast<double>(drops) / static_cast<double>(trials);
}

TEST(LossModelStatTest, NoLossNeverDrops) {
  NoLoss model;
  EXPECT_EQ(empirical_rate(model, 0xA0), 0.0);
}

TEST(LossModelStatTest, BernoulliMatchesConfiguredRate) {
  for (double p : {0.01, 0.05, 0.10, 0.25, 0.50, 0.90}) {
    BernoulliLoss model(p);
    double rate = empirical_rate(model, 0xB3B0);
    EXPECT_NEAR(rate, p, kTolerance) << "configured p = " << p;
  }
}

TEST(LossModelStatTest, BernoulliFactoryMatchesConfiguredRate) {
  auto model = make_bernoulli(0.2);
  EXPECT_NEAR(empirical_rate(*model, 0xFAC7), 0.2, kTolerance);
}

TEST(LossModelStatTest, BernoulliExtremesAreExact) {
  BernoulliLoss never(0.0);
  EXPECT_EQ(empirical_rate(never, 0xE0), 0.0);
  BernoulliLoss always(1.0);
  EXPECT_EQ(empirical_rate(always, 0xE1), 1.0);
}

// The Gilbert–Elliott chain's stationary bad-state probability is
// p_gb / (p_gb + p_bg); the long-run drop rate mixes the per-state loss
// probabilities with those stationary weights.
double gilbert_elliott_stationary_rate(double p_gb, double p_bg,
                                       double loss_good, double loss_bad) {
  double pi_bad = p_gb / (p_gb + p_bg);
  return (1.0 - pi_bad) * loss_good + pi_bad * loss_bad;
}

TEST(LossModelStatTest, GilbertElliottMatchesStationaryRate) {
  struct Config {
    double p_gb, p_bg, loss_good, loss_bad;
  };
  const Config configs[] = {
      {0.05, 0.25, 0.01, 0.50},   // short bursts, heavy in-burst loss
      {0.10, 0.10, 0.00, 1.00},   // half the time in a total-blackout state
      {0.02, 0.40, 0.005, 0.30},  // rare, brief bursts
  };
  std::uint64_t seed = 0x6E77;
  for (const Config& c : configs) {
    GilbertElliottLoss model(c.p_gb, c.p_bg, c.loss_good, c.loss_bad);
    double expected = gilbert_elliott_stationary_rate(c.p_gb, c.p_bg,
                                                      c.loss_good, c.loss_bad);
    double rate = empirical_rate(model, seed++);
    EXPECT_NEAR(rate, expected, kTolerance)
        << "p_gb=" << c.p_gb << " p_bg=" << c.p_bg << " loss_good="
        << c.loss_good << " loss_bad=" << c.loss_bad;
  }
}

TEST(LossModelStatTest, GilbertElliottActuallyBursts) {
  // With symmetric transitions and loss only in the bad state, consecutive
  // drops must be far likelier than independence would allow.
  GilbertElliottLoss model(0.05, 0.05, 0.0, 1.0);
  RandomEngine rng(0xB57);
  std::size_t drops = 0, pairs = 0;
  bool prev = false;
  for (std::size_t i = 0; i < kTrials; ++i) {
    bool d = model.drop(rng);
    if (d) ++drops;
    if (d && prev) ++pairs;
    prev = d;
  }
  double rate = static_cast<double>(drops) / kTrials;
  double pair_rate = static_cast<double>(pairs) / (kTrials - 1);
  EXPECT_NEAR(rate, 0.5, kTolerance);
  // Independent drops would give pair_rate ~= rate^2 = 0.25; the chain gives
  // pi_bad * P(stay bad) = 0.5 * 0.95 = 0.475, a ~1.9x burst factor.
  EXPECT_GT(pair_rate, 1.5 * rate * rate);
}

// ---- LinkLossTable: per-link / per-member overrides ------------------------

TEST(LinkLossTableTest, EmptyTableMatchesNothing) {
  LinkLossTable table;
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.rule_count(), 0u);
  EXPECT_EQ(table.find(1, 2), nullptr);
}

TEST(LinkLossTableTest, LinkRuleBeatsMemberRule) {
  // Member rule: everything into 5 drops always. Link rule: 3 -> 5
  // specifically never drops. The directed link must win; every other
  // sender still hits the member rule; unrelated pairs fall through to the
  // region model (nullptr).
  LinkLossTable table;
  table.set_member_rate(5, 1.0);
  table.set_link_rate(3, 5, 0.0);
  EXPECT_EQ(table.rule_count(), 2u);

  RandomEngine rng(0x11);
  LossModel* link = table.find(3, 5);
  ASSERT_NE(link, nullptr);
  EXPECT_FALSE(link->drop(rng));

  LossModel* member = table.find(7, 5);
  ASSERT_NE(member, nullptr);
  EXPECT_TRUE(member->drop(rng));

  EXPECT_EQ(table.find(3, 6), nullptr);  // no rule: region model applies
  EXPECT_EQ(table.find(5, 3), nullptr);  // rules are directed (into 5 only)
}

TEST(LinkLossTableTest, OverrideReplacesRatherThanCompounds) {
  // A 20% member override must produce a 20% empirical rate on its own —
  // the table replaces the region draw, it never stacks on top of it.
  LinkLossTable table;
  table.set_member_rate(9, 0.2);
  LossModel* model = table.find(0, 9);
  ASSERT_NE(model, nullptr);
  EXPECT_NEAR(empirical_rate(*model, 0x20C4), 0.2, kTolerance);
}

TEST(LinkLossTableTest, ClearAndNullModelResetRules) {
  LinkLossTable table;
  table.set_link_rate(1, 2, 0.5);
  table.set_member(4, nullptr);  // null model = explicit no-loss rule
  EXPECT_EQ(table.rule_count(), 2u);
  RandomEngine rng(0x99);
  LossModel* none = table.find(1, 4);
  ASSERT_NE(none, nullptr);
  EXPECT_FALSE(none->drop(rng));
  table.clear();
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.find(1, 2), nullptr);
}

TEST(LinkLossTableTest, CloneIsDeepAndDeterministic) {
  // Each lane holds its own clone of the master table; a stateful model
  // (Gilbert–Elliott) must replay identically from each clone, and
  // advancing one clone's chain must not perturb the other's — the
  // shard-determinism contract depends on this isolation.
  LinkLossTable master;
  master.set_link(2, 8,
                  std::make_unique<GilbertElliottLoss>(0.05, 0.25, 0.0, 1.0));
  LinkLossTable a = master.clone();
  LinkLossTable b = master.clone();
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(b.empty());

  // Burn the master's chain forward: clones must be unaffected.
  RandomEngine burn(0x77);
  for (int i = 0; i < 1000; ++i) master.find(2, 8)->drop(burn);

  RandomEngine ra(0xC1), rb(0xC1);
  LossModel* ma = a.find(2, 8);
  LossModel* mb = b.find(2, 8);
  ASSERT_NE(ma, nullptr);
  ASSERT_NE(mb, nullptr);
  for (std::size_t i = 0; i < 10000; ++i) {
    EXPECT_EQ(ma->drop(ra), mb->drop(rb)) << "clones diverged at trial " << i;
  }
}

TEST(LossModelStatTest, SameSeedReplaysIdentically) {
  GilbertElliottLoss a(0.05, 0.25, 0.01, 0.5);
  GilbertElliottLoss b(0.05, 0.25, 0.01, 0.5);
  RandomEngine ra(0xD5), rb(0xD5);
  for (std::size_t i = 0; i < 10000; ++i) {
    EXPECT_EQ(a.drop(ra), b.drop(rb)) << "diverged at trial " << i;
  }
}

}  // namespace
}  // namespace rrmp::net
