// Unit tests: strong time types, deterministic RNG, byte codec primitives.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <type_traits>

#include "common/bytes.h"
#include "common/random.h"
#include "common/time.h"
#include "common/types.h"

namespace rrmp {
namespace {

// ---------------------------------------------------------------- time ----

TEST(DurationTest, FactoryUnitsAgree) {
  EXPECT_EQ(Duration::millis(1).us(), 1000);
  EXPECT_EQ(Duration::seconds(1).us(), 1000000);
  EXPECT_EQ(Duration::micros(5).us(), 5);
  EXPECT_DOUBLE_EQ(Duration::millis(1500).sec(), 1.5);
  EXPECT_DOUBLE_EQ(Duration::micros(2500).ms(), 2.5);
}

TEST(DurationTest, Arithmetic) {
  Duration a = Duration::millis(10);
  Duration b = Duration::millis(4);
  EXPECT_EQ((a + b).us(), 14000);
  EXPECT_EQ((a - b).us(), 6000);
  EXPECT_EQ((a * 3).us(), 30000);
  EXPECT_EQ((3 * a).us(), 30000);
  EXPECT_EQ((a / 2).us(), 5000);
  a += b;
  EXPECT_EQ(a.us(), 14000);
  a -= b;
  EXPECT_EQ(a.us(), 10000);
}

TEST(DurationTest, ScaledByRealFactor) {
  EXPECT_EQ(Duration::millis(10).scaled(1.5).us(), 15000);
  EXPECT_EQ(Duration::millis(10).scaled(0.0).us(), 0);
}

TEST(DurationTest, Ordering) {
  EXPECT_LT(Duration::millis(1), Duration::millis(2));
  EXPECT_GE(Duration::zero(), Duration::micros(0));
  EXPECT_TRUE(Duration::infinite().is_infinite());
  EXPECT_FALSE(Duration::seconds(100000).is_infinite());
}

TEST(TimePointTest, ArithmeticAndOrdering) {
  TimePoint t0 = TimePoint::zero();
  TimePoint t1 = t0 + Duration::millis(5);
  EXPECT_EQ((t1 - t0).us(), 5000);
  EXPECT_LT(t0, t1);
  EXPECT_EQ((t1 - Duration::millis(5)), t0);
}

TEST(TimePointTest, AddingToMaxSaturates) {
  TimePoint never = TimePoint::max();
  EXPECT_EQ(never + Duration::seconds(10), TimePoint::max());
  EXPECT_EQ(TimePoint::zero() + Duration::infinite(), TimePoint::max());
}

// ------------------------------------------------------------- MessageId ----

TEST(MessageIdTest, OrderingAndEquality) {
  MessageId a{1, 5};
  MessageId b{1, 6};
  MessageId c{2, 1};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);  // source dominates
  EXPECT_EQ(a, (MessageId{1, 5}));
  EXPECT_NE(a, b);
}

TEST(MessageIdTest, HashSpreads) {
  std::set<std::size_t> hashes;
  std::hash<MessageId> h;
  for (std::uint32_t s = 0; s < 10; ++s) {
    for (std::uint64_t q = 0; q < 100; ++q) {
      hashes.insert(h(MessageId{s, q}));
    }
  }
  EXPECT_EQ(hashes.size(), 1000u);  // no collisions on this tiny set
}

// ---------------------------------------------------------------- random ----

TEST(RandomTest, DeterministicForSeed) {
  RandomEngine a(12345), b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RandomTest, DifferentSeedsDiverge) {
  RandomEngine a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RandomTest, ForkIsDeterministicAndIndependent) {
  RandomEngine a(42), b(42);
  RandomEngine fa = a.fork(7);
  RandomEngine fb = b.fork(7);
  EXPECT_EQ(fa.next_u64(), fb.next_u64());
  RandomEngine f8 = a.fork(8);
  EXPECT_NE(a.fork(7).next_u64(), f8.next_u64());
}

// The shard pool leans on fork/split for per-region streams: forking must
// not consume parent state, or the draw sequence of a region would depend on
// how many sibling regions were set up before it.
TEST(RandomTest, ForkDoesNotConsumeParentState) {
  RandomEngine a(99), b(99);
  (void)a.fork(1);
  (void)a.fork(2);
  (void)a.fork(3);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RandomTest, ForkStreamsDoNotOverlap) {
  // Distinct streams must not replay each other's output: compare windows of
  // two sibling forks for shared values (a shifted-overlap would show up as
  // a non-empty intersection).
  RandomEngine parent(7);
  RandomEngine s0 = parent.fork(0);
  RandomEngine s1 = parent.fork(1);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 4096; ++i) seen.insert(s0.next_u64());
  int collisions = 0;
  for (int i = 0; i < 4096; ++i) {
    if (seen.count(s1.next_u64())) ++collisions;
  }
  EXPECT_EQ(collisions, 0);
}

TEST(RandomTest, ForkChildDiffersFromParentStream) {
  RandomEngine parent(7);
  RandomEngine child = parent.fork(0);
  int same = 0;
  for (int i = 0; i < 256; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RandomTest, SplitMatchesForkWithDomainOffset) {
  RandomEngine parent(123);
  std::vector<RandomEngine> kids = parent.split(4, 0x9A7E0000ULL);
  ASSERT_EQ(kids.size(), 4u);
  for (std::size_t i = 0; i < kids.size(); ++i) {
    RandomEngine expect = parent.fork(0x9A7E0000ULL + i);
    EXPECT_EQ(kids[i].next_u64(), expect.next_u64()) << "child " << i;
  }
  // Same split on an equal-seed parent yields identical children.
  RandomEngine parent2(123);
  std::vector<RandomEngine> kids2 = parent2.split(4, 0x9A7E0000ULL);
  EXPECT_EQ(kids2[2].next_u64(), parent.fork(0x9A7E0000ULL + 2).next_u64());
}

TEST(RandomTest, SplitmixKnownAnswerVectors) {
  // Reference sequence for state 0 (Vigna's splitmix64 test vector) pins the
  // seed-derivation primitive: silently changing it would invalidate every
  // recorded experiment seed.
  std::uint64_t s = 0;
  EXPECT_EQ(splitmix64(s), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(splitmix64(s), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(splitmix64(s), 0x06c45d188009454fULL);
  s = 42;
  EXPECT_EQ(splitmix64(s), 0xbdd732262feb6e95ULL);
}

TEST(RandomTest, UniformIntStaysInRangeAndCoversIt) {
  RandomEngine rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    std::int64_t v = rng.uniform_int(3, 9);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 9);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RandomTest, BernoulliMatchesProbability) {
  RandomEngine rng(4);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RandomTest, BernoulliEdgeCases) {
  RandomEngine rng(5);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_FALSE(rng.bernoulli(-1.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_TRUE(rng.bernoulli(2.0));
}

TEST(RandomTest, ExponentialHasRequestedMean) {
  RandomEngine rng(6);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(RandomTest, SampleIndicesDistinctAndInRange) {
  RandomEngine rng(7);
  for (std::size_t n : {10u, 100u, 1000u}) {
    for (std::size_t k : {0u, 1u, 5u, 10u}) {
      auto idx = rng.sample_indices(n, k);
      ASSERT_EQ(idx.size(), std::min(n, k));
      std::set<std::size_t> s(idx.begin(), idx.end());
      EXPECT_EQ(s.size(), idx.size());  // distinct
      for (std::size_t v : idx) EXPECT_LT(v, n);
    }
  }
}

TEST(RandomTest, SampleIndicesKGreaterThanNReturnsAll) {
  RandomEngine rng(8);
  auto idx = rng.sample_indices(4, 10);
  EXPECT_EQ(idx.size(), 4u);
  std::set<std::size_t> s(idx.begin(), idx.end());
  EXPECT_EQ(s, (std::set<std::size_t>{0, 1, 2, 3}));
}

TEST(RandomTest, SampleIndicesIsUniformish) {
  RandomEngine rng(9);
  std::vector<int> counts(10, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (std::size_t v : rng.sample_indices(10, 3)) ++counts[v];
  }
  // Each index expected in 30% of draws.
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.3, 0.02);
  }
}

TEST(RandomTest, PickReturnsElementFromSpan) {
  RandomEngine rng(10);
  std::vector<int> items = {10, 20, 30};
  for (int i = 0; i < 50; ++i) {
    int v = rng.pick(items);
    EXPECT_TRUE(v == 10 || v == 20 || v == 30);
  }
}

TEST(RandomTest, ShufflePreservesElements) {
  RandomEngine rng(11);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

// ----------------------------------------------------------------- bytes ----

TEST(BytesTest, FixedWidthRoundTrip) {
  ByteWriter w;
  w.put_u8(0xAB);
  w.put_u16(0xBEEF);
  w.put_u32(0xDEADBEEF);
  w.put_u64(0x0123456789ABCDEFULL);
  w.put_i64(-42);
  w.put_f64(3.14159);
  ByteReader r(w.data());
  EXPECT_EQ(r.get_u8(), 0xAB);
  EXPECT_EQ(r.get_u16(), 0xBEEF);
  EXPECT_EQ(r.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.get_u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.get_i64(), -42);
  EXPECT_DOUBLE_EQ(r.get_f64(), 3.14159);
  EXPECT_TRUE(r.done());
}

TEST(BytesTest, VarintRoundTripAcrossMagnitudes) {
  for (std::uint64_t v :
       {0ULL, 1ULL, 127ULL, 128ULL, 300ULL, 16383ULL, 16384ULL,
        0xFFFFFFFFULL, 0xFFFFFFFFFFFFFFFFULL}) {
    ByteWriter w;
    w.put_varint(v);
    ByteReader r(w.data());
    EXPECT_EQ(r.get_varint(), v) << v;
    EXPECT_TRUE(r.done());
  }
}

TEST(BytesTest, VarintEncodingIsCompact) {
  ByteWriter w;
  w.put_varint(127);
  EXPECT_EQ(w.size(), 1u);
  ByteWriter w2;
  w2.put_varint(128);
  EXPECT_EQ(w2.size(), 2u);
}

TEST(BytesTest, StringAndBytesRoundTrip) {
  ByteWriter w;
  w.put_string("hello multicast");
  std::vector<std::uint8_t> blob = {0, 1, 2, 255, 254};
  w.put_bytes(blob);
  w.put_string("");
  ByteReader r(w.data());
  EXPECT_EQ(r.get_string(), "hello multicast");
  EXPECT_EQ(r.get_bytes(), blob);
  EXPECT_EQ(r.get_string(), "");
  EXPECT_TRUE(r.done());
}

TEST(BytesTest, TruncatedReadFailsAndStaysFailed) {
  ByteWriter w;
  w.put_u32(7);
  std::vector<std::uint8_t> data = w.take();
  data.resize(2);  // truncate mid-field
  ByteReader r(data);
  (void)r.get_u32();
  EXPECT_FALSE(r.ok());
  // Subsequent reads return zero values without touching memory.
  EXPECT_EQ(r.get_u64(), 0u);
  EXPECT_EQ(r.get_string(), "");
  EXPECT_FALSE(r.done());
}

TEST(BytesTest, HostileLengthPrefixDoesNotOverread) {
  ByteWriter w;
  w.put_varint(1'000'000);  // claims a 1MB blob
  w.put_u8(1);              // but provides 1 byte
  ByteReader r(w.data());
  auto blob = r.get_bytes();
  EXPECT_TRUE(blob.empty());
  EXPECT_FALSE(r.ok());
}

TEST(BytesTest, OverlongVarintRejected) {
  std::vector<std::uint8_t> evil(11, 0x80);  // 11 continuation bytes
  ByteReader r(evil);
  (void)r.get_varint();
  EXPECT_FALSE(r.ok());
}

TEST(BytesTest, EmptyReaderIsDone) {
  ByteReader r(std::span<const std::uint8_t>{});
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.done());
  EXPECT_EQ(r.remaining(), 0u);
  (void)r.get_u8();
  EXPECT_FALSE(r.ok());
}

// ------------------------------------------------------------ binomial ----

TEST(RandomTest, BinomialKnownAnswerVectorsInversionRegime) {
  // n·p = 6 < 30: BINV inversion path. Pins the exact draw sequence so
  // Monte Carlo drivers (fig3/fig4) replay bit-identically across refactors.
  RandomEngine rng(42);
  const std::uint64_t expected[] = {3, 11, 11, 4, 7, 7, 5, 6};
  for (std::uint64_t e : expected) EXPECT_EQ(rng.binomial(100, 0.06), e);
}

TEST(RandomTest, BinomialKnownAnswerVectorsBtpeRegime) {
  // n·p = 300 >= 30: BTPE rejection path.
  RandomEngine rng(42);
  const std::uint64_t expected[] = {278, 339, 303, 301, 308, 300, 294, 296};
  for (std::uint64_t e : expected) EXPECT_EQ(rng.binomial(1000, 0.3), e);
}

TEST(RandomTest, BinomialKnownAnswerVectorsFlippedP) {
  // p > 0.5 runs the flipped (n - Binomial(n, 1-p)) path through BTPE.
  RandomEngine rng(7);
  const std::uint64_t expected[] = {408, 401, 387, 397, 406, 407, 395, 390};
  for (std::uint64_t e : expected) EXPECT_EQ(rng.binomial(500, 0.8), e);
}

TEST(RandomTest, BinomialEdgeCases) {
  RandomEngine rng(1);
  EXPECT_EQ(rng.binomial(0, 0.5), 0u);
  EXPECT_EQ(rng.binomial(100, 0.0), 0u);
  EXPECT_EQ(rng.binomial(100, 1.0), 100u);
  EXPECT_EQ(rng.binomial(100, -3.0), 0u);  // clamped
  EXPECT_EQ(rng.binomial(100, 7.0), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_LE(rng.binomial(10, 0.5), 10u);
}

TEST(RandomTest, BinomialMomentsMatchAcrossRegimes) {
  // 100k-trial mean/variance checks in every algorithmic regime: inversion,
  // BTPE, and the flipped variants of both.
  struct Case {
    std::uint64_t n;
    double p;
  };
  for (Case c : {Case{100, 0.06}, Case{100, 0.97}, Case{1000, 0.3},
                 Case{2000, 0.75}}) {
    RandomEngine rng(0xB10'0000 + c.n);
    const int kTrials = 100000;
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < kTrials; ++i) {
      auto k = static_cast<double>(rng.binomial(c.n, c.p));
      sum += k;
      sum_sq += k * k;
    }
    double mean = sum / kTrials;
    double var = sum_sq / kTrials - mean * mean;
    double want_mean = static_cast<double>(c.n) * c.p;
    double want_var = want_mean * (1.0 - c.p);
    double sd = std::sqrt(want_var);
    // Mean within 5 standard errors; variance within 10%.
    EXPECT_NEAR(mean, want_mean, 5.0 * sd / std::sqrt(double(kTrials)))
        << "n=" << c.n << " p=" << c.p;
    EXPECT_NEAR(var, want_var, 0.10 * want_var) << "n=" << c.n << " p=" << c.p;
  }
}

TEST(RandomTest, BinomialMatchesBernoulliSumDistribution) {
  // Coarse PMF cross-check against the definition: P(k=0) for n=100,
  // p=C/n is ~e^-C (the paper's Figure 4 quantity).
  RandomEngine rng(99);
  const int kTrials = 200000;
  int none = 0;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.binomial(100, 0.03) == 0) ++none;
  }
  double p_none = static_cast<double>(none) / kTrials;
  EXPECT_NEAR(p_none, std::pow(1.0 - 0.03, 100.0), 0.005);
}

// --------------------------------------------------------- SharedBytes ----

TEST(SharedBytesTest, OwnsMovedVectorWithoutCopy) {
  std::vector<std::uint8_t> v = {1, 2, 3, 4};
  const std::uint8_t* raw = v.data();
  SharedBytes b(std::move(v));
  EXPECT_EQ(b.size(), 4u);
  EXPECT_EQ(b.data(), raw);  // took ownership, no copy
}

TEST(SharedBytesTest, CopiesShareOneOwner) {
  SharedBytes a({10, 20, 30});
  SharedBytes b = a;
  SharedBytes c = b;
  EXPECT_TRUE(a.shares_owner_with(b));
  EXPECT_TRUE(a.shares_owner_with(c));
  EXPECT_EQ(a.data(), c.data());
  EXPECT_EQ(a, c);
}

TEST(SharedBytesTest, SliceAliasesOwnerAndSurvivesIt) {
  SharedBytes whole({1, 2, 3, 4, 5, 6});
  SharedBytes mid = whole.slice(2, 3);
  EXPECT_TRUE(mid.shares_owner_with(whole));
  EXPECT_EQ(mid.size(), 3u);
  EXPECT_EQ(mid.data(), whole.data() + 2);
  // The slice keeps the allocation alive after the original handle dies.
  whole = SharedBytes();
  EXPECT_EQ(mid, SharedBytes({3, 4, 5}));
}

TEST(SharedBytesTest, MutationAfterShareIsImpossible) {
  // The owner is const and the API exposes no mutator: sharing is safe by
  // construction. Pin the read-only surface at compile time.
  static_assert(std::is_const_v<
                std::remove_pointer_t<decltype(SharedBytes().data())>>);
  static_assert(
      std::is_same_v<decltype(SharedBytes().span()),
                     std::span<const std::uint8_t>>);
  // And the source vector is detached: mutating it after handoff by value
  // cannot reach the shared buffer.
  std::vector<std::uint8_t> v = {9, 9, 9};
  SharedBytes b = SharedBytes::copy_of(v);
  v[0] = 0;
  EXPECT_EQ(b, SharedBytes({9, 9, 9}));
}

TEST(SharedBytesTest, EqualityIsByContents) {
  SharedBytes a({1, 2, 3});
  SharedBytes b({1, 2, 3});
  EXPECT_FALSE(a.shares_owner_with(b));
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == SharedBytes({1, 2, 4}));
  EXPECT_FALSE(a == SharedBytes({1, 2}));
  EXPECT_EQ(SharedBytes(), SharedBytes(std::vector<std::uint8_t>{}));
}

TEST(SharedBytesTest, ReaderBlobsAliasTheSourceBuffer) {
  ByteWriter w;
  w.put_u32(7);
  w.put_bytes(std::vector<std::uint8_t>{5, 6, 7, 8});
  SharedBytes wire(w.take());

  ByteReader r(wire);
  EXPECT_EQ(r.get_u32(), 7u);
  SharedBytes blob = r.get_shared_bytes();
  EXPECT_TRUE(r.done());
  EXPECT_EQ(blob, SharedBytes({5, 6, 7, 8}));
  EXPECT_TRUE(blob.shares_owner_with(wire));  // zero-copy decode

  // Span-based readers (no owner) fall back to copying.
  ByteReader r2(wire.span());
  (void)r2.get_u32();
  SharedBytes copied = r2.get_shared_bytes();
  EXPECT_EQ(copied, blob);
  EXPECT_FALSE(copied.shares_owner_with(wire));
}

TEST(SharedBytesTest, SmallBlobInLargeBufferIsCopiedNotAliased) {
  // Aliasing is capped: a blob that is a small fraction of its source
  // buffer (e.g. one payload among many in a Handoff batch) is copied so a
  // retained payload cannot pin an arbitrarily larger wire allocation.
  ByteWriter w;
  w.put_bytes(std::vector<std::uint8_t>{1, 2, 3, 4});
  w.put_raw(std::vector<std::uint8_t>(500, 0xEE));  // bulk the buffer out
  SharedBytes wire(w.take());

  ByteReader r(wire);
  SharedBytes blob = r.get_shared_bytes();
  EXPECT_EQ(blob, SharedBytes({1, 2, 3, 4}));
  EXPECT_FALSE(blob.shares_owner_with(wire));
}

}  // namespace
}  // namespace rrmp
