// Unit tests: strong time types, deterministic RNG, byte codec primitives.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "common/bytes.h"
#include "common/random.h"
#include "common/time.h"
#include "common/types.h"

namespace rrmp {
namespace {

// ---------------------------------------------------------------- time ----

TEST(DurationTest, FactoryUnitsAgree) {
  EXPECT_EQ(Duration::millis(1).us(), 1000);
  EXPECT_EQ(Duration::seconds(1).us(), 1000000);
  EXPECT_EQ(Duration::micros(5).us(), 5);
  EXPECT_DOUBLE_EQ(Duration::millis(1500).sec(), 1.5);
  EXPECT_DOUBLE_EQ(Duration::micros(2500).ms(), 2.5);
}

TEST(DurationTest, Arithmetic) {
  Duration a = Duration::millis(10);
  Duration b = Duration::millis(4);
  EXPECT_EQ((a + b).us(), 14000);
  EXPECT_EQ((a - b).us(), 6000);
  EXPECT_EQ((a * 3).us(), 30000);
  EXPECT_EQ((3 * a).us(), 30000);
  EXPECT_EQ((a / 2).us(), 5000);
  a += b;
  EXPECT_EQ(a.us(), 14000);
  a -= b;
  EXPECT_EQ(a.us(), 10000);
}

TEST(DurationTest, ScaledByRealFactor) {
  EXPECT_EQ(Duration::millis(10).scaled(1.5).us(), 15000);
  EXPECT_EQ(Duration::millis(10).scaled(0.0).us(), 0);
}

TEST(DurationTest, Ordering) {
  EXPECT_LT(Duration::millis(1), Duration::millis(2));
  EXPECT_GE(Duration::zero(), Duration::micros(0));
  EXPECT_TRUE(Duration::infinite().is_infinite());
  EXPECT_FALSE(Duration::seconds(100000).is_infinite());
}

TEST(TimePointTest, ArithmeticAndOrdering) {
  TimePoint t0 = TimePoint::zero();
  TimePoint t1 = t0 + Duration::millis(5);
  EXPECT_EQ((t1 - t0).us(), 5000);
  EXPECT_LT(t0, t1);
  EXPECT_EQ((t1 - Duration::millis(5)), t0);
}

TEST(TimePointTest, AddingToMaxSaturates) {
  TimePoint never = TimePoint::max();
  EXPECT_EQ(never + Duration::seconds(10), TimePoint::max());
  EXPECT_EQ(TimePoint::zero() + Duration::infinite(), TimePoint::max());
}

// ------------------------------------------------------------- MessageId ----

TEST(MessageIdTest, OrderingAndEquality) {
  MessageId a{1, 5};
  MessageId b{1, 6};
  MessageId c{2, 1};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);  // source dominates
  EXPECT_EQ(a, (MessageId{1, 5}));
  EXPECT_NE(a, b);
}

TEST(MessageIdTest, HashSpreads) {
  std::set<std::size_t> hashes;
  std::hash<MessageId> h;
  for (std::uint32_t s = 0; s < 10; ++s) {
    for (std::uint64_t q = 0; q < 100; ++q) {
      hashes.insert(h(MessageId{s, q}));
    }
  }
  EXPECT_EQ(hashes.size(), 1000u);  // no collisions on this tiny set
}

// ---------------------------------------------------------------- random ----

TEST(RandomTest, DeterministicForSeed) {
  RandomEngine a(12345), b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RandomTest, DifferentSeedsDiverge) {
  RandomEngine a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RandomTest, ForkIsDeterministicAndIndependent) {
  RandomEngine a(42), b(42);
  RandomEngine fa = a.fork(7);
  RandomEngine fb = b.fork(7);
  EXPECT_EQ(fa.next_u64(), fb.next_u64());
  RandomEngine f8 = a.fork(8);
  EXPECT_NE(a.fork(7).next_u64(), f8.next_u64());
}

// The shard pool leans on fork/split for per-region streams: forking must
// not consume parent state, or the draw sequence of a region would depend on
// how many sibling regions were set up before it.
TEST(RandomTest, ForkDoesNotConsumeParentState) {
  RandomEngine a(99), b(99);
  (void)a.fork(1);
  (void)a.fork(2);
  (void)a.fork(3);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RandomTest, ForkStreamsDoNotOverlap) {
  // Distinct streams must not replay each other's output: compare windows of
  // two sibling forks for shared values (a shifted-overlap would show up as
  // a non-empty intersection).
  RandomEngine parent(7);
  RandomEngine s0 = parent.fork(0);
  RandomEngine s1 = parent.fork(1);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 4096; ++i) seen.insert(s0.next_u64());
  int collisions = 0;
  for (int i = 0; i < 4096; ++i) {
    if (seen.count(s1.next_u64())) ++collisions;
  }
  EXPECT_EQ(collisions, 0);
}

TEST(RandomTest, ForkChildDiffersFromParentStream) {
  RandomEngine parent(7);
  RandomEngine child = parent.fork(0);
  int same = 0;
  for (int i = 0; i < 256; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RandomTest, SplitMatchesForkWithDomainOffset) {
  RandomEngine parent(123);
  std::vector<RandomEngine> kids = parent.split(4, 0x9A7E0000ULL);
  ASSERT_EQ(kids.size(), 4u);
  for (std::size_t i = 0; i < kids.size(); ++i) {
    RandomEngine expect = parent.fork(0x9A7E0000ULL + i);
    EXPECT_EQ(kids[i].next_u64(), expect.next_u64()) << "child " << i;
  }
  // Same split on an equal-seed parent yields identical children.
  RandomEngine parent2(123);
  std::vector<RandomEngine> kids2 = parent2.split(4, 0x9A7E0000ULL);
  EXPECT_EQ(kids2[2].next_u64(), parent.fork(0x9A7E0000ULL + 2).next_u64());
}

TEST(RandomTest, SplitmixKnownAnswerVectors) {
  // Reference sequence for state 0 (Vigna's splitmix64 test vector) pins the
  // seed-derivation primitive: silently changing it would invalidate every
  // recorded experiment seed.
  std::uint64_t s = 0;
  EXPECT_EQ(splitmix64(s), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(splitmix64(s), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(splitmix64(s), 0x06c45d188009454fULL);
  s = 42;
  EXPECT_EQ(splitmix64(s), 0xbdd732262feb6e95ULL);
}

TEST(RandomTest, UniformIntStaysInRangeAndCoversIt) {
  RandomEngine rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    std::int64_t v = rng.uniform_int(3, 9);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 9);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RandomTest, BernoulliMatchesProbability) {
  RandomEngine rng(4);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RandomTest, BernoulliEdgeCases) {
  RandomEngine rng(5);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_FALSE(rng.bernoulli(-1.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_TRUE(rng.bernoulli(2.0));
}

TEST(RandomTest, ExponentialHasRequestedMean) {
  RandomEngine rng(6);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(RandomTest, SampleIndicesDistinctAndInRange) {
  RandomEngine rng(7);
  for (std::size_t n : {10u, 100u, 1000u}) {
    for (std::size_t k : {0u, 1u, 5u, 10u}) {
      auto idx = rng.sample_indices(n, k);
      ASSERT_EQ(idx.size(), std::min(n, k));
      std::set<std::size_t> s(idx.begin(), idx.end());
      EXPECT_EQ(s.size(), idx.size());  // distinct
      for (std::size_t v : idx) EXPECT_LT(v, n);
    }
  }
}

TEST(RandomTest, SampleIndicesKGreaterThanNReturnsAll) {
  RandomEngine rng(8);
  auto idx = rng.sample_indices(4, 10);
  EXPECT_EQ(idx.size(), 4u);
  std::set<std::size_t> s(idx.begin(), idx.end());
  EXPECT_EQ(s, (std::set<std::size_t>{0, 1, 2, 3}));
}

TEST(RandomTest, SampleIndicesIsUniformish) {
  RandomEngine rng(9);
  std::vector<int> counts(10, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (std::size_t v : rng.sample_indices(10, 3)) ++counts[v];
  }
  // Each index expected in 30% of draws.
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.3, 0.02);
  }
}

TEST(RandomTest, PickReturnsElementFromSpan) {
  RandomEngine rng(10);
  std::vector<int> items = {10, 20, 30};
  for (int i = 0; i < 50; ++i) {
    int v = rng.pick(items);
    EXPECT_TRUE(v == 10 || v == 20 || v == 30);
  }
}

TEST(RandomTest, ShufflePreservesElements) {
  RandomEngine rng(11);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

// ----------------------------------------------------------------- bytes ----

TEST(BytesTest, FixedWidthRoundTrip) {
  ByteWriter w;
  w.put_u8(0xAB);
  w.put_u16(0xBEEF);
  w.put_u32(0xDEADBEEF);
  w.put_u64(0x0123456789ABCDEFULL);
  w.put_i64(-42);
  w.put_f64(3.14159);
  ByteReader r(w.data());
  EXPECT_EQ(r.get_u8(), 0xAB);
  EXPECT_EQ(r.get_u16(), 0xBEEF);
  EXPECT_EQ(r.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.get_u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.get_i64(), -42);
  EXPECT_DOUBLE_EQ(r.get_f64(), 3.14159);
  EXPECT_TRUE(r.done());
}

TEST(BytesTest, VarintRoundTripAcrossMagnitudes) {
  for (std::uint64_t v :
       {0ULL, 1ULL, 127ULL, 128ULL, 300ULL, 16383ULL, 16384ULL,
        0xFFFFFFFFULL, 0xFFFFFFFFFFFFFFFFULL}) {
    ByteWriter w;
    w.put_varint(v);
    ByteReader r(w.data());
    EXPECT_EQ(r.get_varint(), v) << v;
    EXPECT_TRUE(r.done());
  }
}

TEST(BytesTest, VarintEncodingIsCompact) {
  ByteWriter w;
  w.put_varint(127);
  EXPECT_EQ(w.size(), 1u);
  ByteWriter w2;
  w2.put_varint(128);
  EXPECT_EQ(w2.size(), 2u);
}

TEST(BytesTest, StringAndBytesRoundTrip) {
  ByteWriter w;
  w.put_string("hello multicast");
  std::vector<std::uint8_t> blob = {0, 1, 2, 255, 254};
  w.put_bytes(blob);
  w.put_string("");
  ByteReader r(w.data());
  EXPECT_EQ(r.get_string(), "hello multicast");
  EXPECT_EQ(r.get_bytes(), blob);
  EXPECT_EQ(r.get_string(), "");
  EXPECT_TRUE(r.done());
}

TEST(BytesTest, TruncatedReadFailsAndStaysFailed) {
  ByteWriter w;
  w.put_u32(7);
  std::vector<std::uint8_t> data = w.take();
  data.resize(2);  // truncate mid-field
  ByteReader r(data);
  (void)r.get_u32();
  EXPECT_FALSE(r.ok());
  // Subsequent reads return zero values without touching memory.
  EXPECT_EQ(r.get_u64(), 0u);
  EXPECT_EQ(r.get_string(), "");
  EXPECT_FALSE(r.done());
}

TEST(BytesTest, HostileLengthPrefixDoesNotOverread) {
  ByteWriter w;
  w.put_varint(1'000'000);  // claims a 1MB blob
  w.put_u8(1);              // but provides 1 byte
  ByteReader r(w.data());
  auto blob = r.get_bytes();
  EXPECT_TRUE(blob.empty());
  EXPECT_FALSE(r.ok());
}

TEST(BytesTest, OverlongVarintRejected) {
  std::vector<std::uint8_t> evil(11, 0x80);  // 11 continuation bytes
  ByteReader r(evil);
  (void)r.get_varint();
  EXPECT_FALSE(r.ok());
}

TEST(BytesTest, EmptyReaderIsDone) {
  ByteReader r(std::span<const std::uint8_t>{});
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.done());
  EXPECT_EQ(r.remaining(), 0u);
  (void)r.get_u8();
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace rrmp
