// Unit tests: region views and the membership directory.
#include <gtest/gtest.h>

#include <map>

#include "membership/directory.h"
#include "membership/view.h"
#include "net/topology.h"

namespace rrmp::membership {
namespace {

TEST(RegionViewTest, ConstructionSortsAndDedupes) {
  RegionView v({5, 1, 3, 1, 5});
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v.members(), (std::vector<MemberId>{1, 3, 5}));
}

TEST(RegionViewTest, ContainsAddRemove) {
  RegionView v({1, 2, 3});
  EXPECT_TRUE(v.contains(2));
  EXPECT_FALSE(v.contains(9));
  std::uint64_t ver = v.version();
  v.add(9);
  EXPECT_TRUE(v.contains(9));
  EXPECT_GT(v.version(), ver);
  v.add(9);  // duplicate add: no version bump
  EXPECT_EQ(v.size(), 4u);
  v.remove(2);
  EXPECT_FALSE(v.contains(2));
  v.remove(2);  // absent remove: no-op
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v.members(), (std::vector<MemberId>{1, 3, 9}));
}

TEST(RegionViewTest, PickRandomExcludesSelfAndCoversOthers) {
  RegionView v({0, 1, 2, 3, 4});
  RandomEngine rng(1);
  std::map<MemberId, int> counts;
  for (int i = 0; i < 5000; ++i) {
    MemberId m = v.pick_random(rng, 2);
    ASSERT_NE(m, 2u);
    ASSERT_TRUE(v.contains(m));
    ++counts[m];
  }
  EXPECT_EQ(counts.size(), 4u);
  for (const auto& [m, c] : counts) {
    EXPECT_NEAR(static_cast<double>(c) / 5000.0, 0.25, 0.03);
  }
}

TEST(RegionViewTest, PickRandomEmptyAndSingleton) {
  RegionView empty;
  RandomEngine rng(2);
  EXPECT_EQ(empty.pick_random(rng), kInvalidMember);
  RegionView solo({7});
  EXPECT_EQ(solo.pick_random(rng, 7), kInvalidMember);  // only self
  EXPECT_EQ(solo.pick_random(rng), 7u);                 // no exclusion
}

TEST(RegionViewTest, PickRandomWithForeignExclude) {
  RegionView v({1, 2});
  RandomEngine rng(3);
  // Excluding a non-member must not shrink the candidate set.
  std::set<MemberId> seen;
  for (int i = 0; i < 100; ++i) seen.insert(v.pick_random(rng, 99));
  EXPECT_EQ(seen.size(), 2u);
}

TEST(RegionViewTest, PickRandomDistinct) {
  RegionView v({0, 1, 2, 3, 4, 5});
  RandomEngine rng(4);
  auto picks = v.pick_random_distinct(rng, 3, 0);
  EXPECT_EQ(picks.size(), 3u);
  std::set<MemberId> s(picks.begin(), picks.end());
  EXPECT_EQ(s.size(), 3u);
  EXPECT_FALSE(s.count(0));
  // Requesting more than available returns all non-excluded.
  auto all = v.pick_random_distinct(rng, 100, 0);
  EXPECT_EQ(all.size(), 5u);
}

// -------------------------------------------------------------- Directory ----

struct DirFixture {
  DirFixture() : topo(net::make_hierarchy({3, 2})), dir(topo) {}
  net::Topology topo;
  Directory dir;
};

TEST(DirectoryTest, AllAliveInitially) {
  DirFixture f;
  EXPECT_EQ(f.dir.alive_count(), 5u);
  for (MemberId m = 0; m < 5; ++m) EXPECT_TRUE(f.dir.alive(m));
  EXPECT_EQ(f.dir.region_view(0).size(), 3u);
  EXPECT_EQ(f.dir.region_view(1).size(), 2u);
}

TEST(DirectoryTest, ParentViewResolution) {
  DirFixture f;
  EXPECT_TRUE(f.dir.parent_view(0).empty());          // root has no parent
  EXPECT_EQ(f.dir.parent_view(1).size(), 3u);         // child sees region 0
  EXPECT_EQ(f.dir.parent_view(1).members(),
            f.dir.region_view(0).members());
}

TEST(DirectoryTest, LeaveAndRejoinUpdateViews) {
  DirFixture f;
  std::uint64_t v0 = f.dir.version();
  f.dir.mark_left(1);
  EXPECT_FALSE(f.dir.alive(1));
  EXPECT_EQ(f.dir.alive_count(), 4u);
  EXPECT_FALSE(f.dir.region_view(0).contains(1));
  EXPECT_GT(f.dir.version(), v0);
  f.dir.mark_joined(1);
  EXPECT_TRUE(f.dir.alive(1));
  EXPECT_TRUE(f.dir.region_view(0).contains(1));
}

TEST(DirectoryTest, RedundantTransitionsAreNoOps) {
  DirFixture f;
  f.dir.mark_left(0);
  std::uint64_t v = f.dir.version();
  f.dir.mark_left(0);  // already gone
  EXPECT_EQ(f.dir.version(), v);
  f.dir.mark_joined(0);
  v = f.dir.version();
  f.dir.mark_joined(0);
  EXPECT_EQ(f.dir.version(), v);
}

TEST(DirectoryTest, ListenersNotified) {
  DirFixture f;
  std::vector<std::pair<MemberId, bool>> events;
  f.dir.subscribe([&](MemberId m, bool alive) { events.emplace_back(m, alive); });
  f.dir.mark_failed(3);
  f.dir.mark_joined(3);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], std::make_pair(MemberId{3}, false));
  EXPECT_EQ(events[1], std::make_pair(MemberId{3}, true));
}

TEST(DirectoryTest, FailedParentMemberLeavesParentView) {
  DirFixture f;
  f.dir.mark_failed(0);
  EXPECT_EQ(f.dir.parent_view(1).size(), 2u);
  EXPECT_FALSE(f.dir.parent_view(1).contains(0));
}

}  // namespace
}  // namespace rrmp::membership
