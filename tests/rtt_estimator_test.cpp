// Tests: Jacobson/Karels RTT estimation and its protocol integration.
#include <gtest/gtest.h>

#include "harness/cluster.h"
#include "rrmp/rtt_estimator.h"

namespace rrmp {
namespace {

TEST(RttEstimatorTest, FirstSampleInitializes) {
  RttEstimator est;
  EXPECT_FALSE(est.has_estimate(1));
  EXPECT_EQ(est.srtt(1, Duration::millis(7)), Duration::millis(7));  // fallback
  est.add_sample(1, Duration::millis(10));
  EXPECT_TRUE(est.has_estimate(1));
  EXPECT_EQ(est.srtt(1, Duration::zero()), Duration::millis(10));
  // rto = srtt + 4*rttvar = 10 + 4*5 = 30 ms.
  EXPECT_EQ(est.rto(1, Duration::zero()), Duration::millis(30));
}

TEST(RttEstimatorTest, ConvergesToStableRtt) {
  RttEstimator est;
  for (int i = 0; i < 100; ++i) est.add_sample(2, Duration::millis(20));
  EXPECT_NEAR(est.srtt(2, Duration::zero()).ms(), 20.0, 0.5);
  // Variance decays toward 0, so rto approaches srtt.
  EXPECT_LT(est.rto(2, Duration::zero()).ms(), 25.0);
  EXPECT_GE(est.rto(2, Duration::zero()).ms(), 20.0);
}

TEST(RttEstimatorTest, VarianceWidensRtoUnderJitter) {
  RttEstimator est;
  for (int i = 0; i < 200; ++i) {
    est.add_sample(3, Duration::millis(i % 2 == 0 ? 10 : 30));
  }
  double srtt = est.srtt(3, Duration::zero()).ms();
  double rto = est.rto(3, Duration::zero()).ms();
  EXPECT_NEAR(srtt, 20.0, 4.0);
  EXPECT_GT(rto, srtt + 10.0);  // 4*rttvar dominates
}

TEST(RttEstimatorTest, RtoClampedToBounds) {
  RttEstimatorConfig cfg;
  cfg.min_rto = Duration::millis(5);
  cfg.max_rto = Duration::millis(50);
  RttEstimator est(cfg);
  est.add_sample(4, Duration::micros(100));  // tiny
  EXPECT_EQ(est.rto(4, Duration::zero()), Duration::millis(5));
  est.add_sample(5, Duration::seconds(10));  // huge
  EXPECT_EQ(est.rto(5, Duration::zero()), Duration::millis(50));
  // Fallback for unknown peers is clamped too.
  EXPECT_EQ(est.rto(99, Duration::seconds(9)), Duration::millis(50));
}

TEST(RttEstimatorTest, PeersAreIndependentAndForgettable) {
  RttEstimator est;
  est.add_sample(1, Duration::millis(10));
  est.add_sample(2, Duration::millis(100));
  EXPECT_EQ(est.srtt(1, Duration::zero()), Duration::millis(10));
  EXPECT_EQ(est.srtt(2, Duration::zero()), Duration::millis(100));
  EXPECT_EQ(est.tracked_peers(), 2u);
  est.forget(1);
  EXPECT_FALSE(est.has_estimate(1));
  EXPECT_EQ(est.tracked_peers(), 1u);
}

TEST(RttEstimatorTest, NegativeSamplesIgnored) {
  RttEstimator est;
  est.add_sample(1, Duration::micros(-5));
  EXPECT_FALSE(est.has_estimate(1));
}

// ------------------------------------------------- protocol integration ----

TEST(MeasuredRttTest, EndpointLearnsRttFromRepairs) {
  harness::ClusterConfig cc;
  cc.region_sizes = {20};
  cc.seed = 42;
  cc.protocol.measure_rtt = true;
  harness::Cluster cluster(cc);
  // Member 19 misses several messages and recovers them locally: each
  // repair that answers its outstanding probe yields an RTT sample.
  std::vector<MemberId> holders;
  for (MemberId m = 0; m < 19; ++m) holders.push_back(m);
  for (std::uint64_t s = 1; s <= 10; ++s) cluster.inject(0, s, holders);
  cluster.run_until_quiet(Duration::seconds(2));
  const RttEstimator& est = cluster.endpoint(19).rtt_estimator();
  EXPECT_GT(est.tracked_peers(), 0u);
  // Intra-region RTT is 10 ms; every learned srtt must say so.
  for (MemberId m = 0; m < 19; ++m) {
    if (est.has_estimate(m)) {
      EXPECT_NEAR(est.srtt(m, Duration::zero()).ms(), 10.0, 0.5);
    }
  }
}

TEST(MeasuredRttTest, RecoveryStillConvergesUnderJitter) {
  harness::ClusterConfig cc;
  cc.region_sizes = {25};
  cc.seed = 43;
  cc.jitter = 1.0;  // latencies stretched up to 2x
  cc.protocol.measure_rtt = true;
  cc.data_loss = 0.4;
  harness::Cluster cluster(cc);
  std::vector<MessageId> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(cluster.endpoint(0).multicast({1}));
  }
  cluster.run_for(Duration::seconds(3));
  for (const MessageId& id : ids) {
    EXPECT_TRUE(cluster.all_received(id));
  }
}

}  // namespace
}  // namespace rrmp
