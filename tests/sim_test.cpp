// Unit tests: discrete-event simulator ordering, timers, determinism.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace rrmp::sim {
namespace {

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(TimePoint::from_us(30), [&] { order.push_back(3); });
  sim.schedule_at(TimePoint::from_us(10), [&] { order.push_back(1); });
  sim.schedule_at(TimePoint::from_us(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), TimePoint::from_us(30));
}

TEST(SimulatorTest, SimultaneousEventsFireFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(TimePoint::from_us(5), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulatorTest, ClockAdvancesMonotonically) {
  Simulator sim;
  TimePoint last = TimePoint::zero();
  bool monotone = true;
  for (int i = 0; i < 50; ++i) {
    sim.schedule_at(TimePoint::from_us((i * 37) % 100), [&, i] {
      if (sim.now() < last) monotone = false;
      last = sim.now();
    });
  }
  sim.run();
  EXPECT_TRUE(monotone);
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  TimePoint fired;
  sim.schedule_at(TimePoint::from_us(100), [&] {
    sim.schedule_after(Duration::micros(50), [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, TimePoint::from_us(150));
}

TEST(SimulatorTest, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  TimerId id = sim.schedule_after(Duration::micros(10), [&] { fired = true; });
  EXPECT_TRUE(sim.pending(id));
  sim.cancel(id);
  EXPECT_FALSE(sim.pending(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelIsIdempotentAndSafeAfterFire) {
  Simulator sim;
  TimerId id = sim.schedule_after(Duration::micros(1), [] {});
  sim.run();
  sim.cancel(id);  // already fired: no-op
  sim.cancel(id);
  sim.cancel(TimerId{999999});  // never existed: no-op
  EXPECT_EQ(sim.pending_count(), 0u);
}

TEST(SimulatorTest, CancelFromInsideCallback) {
  Simulator sim;
  bool second_fired = false;
  TimerId second =
      sim.schedule_at(TimePoint::from_us(20), [&] { second_fired = true; });
  sim.schedule_at(TimePoint::from_us(10), [&] { sim.cancel(second); });
  sim.run();
  EXPECT_FALSE(second_fired);
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  std::vector<int> fired;
  sim.schedule_at(TimePoint::from_us(10), [&] { fired.push_back(10); });
  sim.schedule_at(TimePoint::from_us(20), [&] { fired.push_back(20); });
  sim.schedule_at(TimePoint::from_us(30), [&] { fired.push_back(30); });
  sim.run_until(TimePoint::from_us(20));
  EXPECT_EQ(fired, (std::vector<int>{10, 20}));
  EXPECT_EQ(sim.now(), TimePoint::from_us(20));
  sim.run_until(TimePoint::from_us(100));
  EXPECT_EQ(fired, (std::vector<int>{10, 20, 30}));
  EXPECT_EQ(sim.now(), TimePoint::from_us(100));
}

TEST(SimulatorTest, RunUntilSkipsCancelledHeadEntries) {
  Simulator sim;
  // A cancelled event far in the future must not block run_until's scan.
  TimerId id = sim.schedule_at(TimePoint::from_us(5), [] {});
  sim.cancel(id);
  bool fired = false;
  sim.schedule_at(TimePoint::from_us(10), [&] { fired = true; });
  sim.run_until(TimePoint::from_us(10));
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, SchedulingInThePastClampsToNow) {
  Simulator sim;
  sim.schedule_at(TimePoint::from_us(100), [] {});
  sim.run();
  TimePoint fired_at;
  sim.schedule_at(TimePoint::from_us(10), [&] { fired_at = sim.now(); });
  sim.run();
  EXPECT_EQ(fired_at, TimePoint::from_us(100));  // clamped, clock monotone
}

TEST(SimulatorTest, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_after(Duration::micros(1), [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(SimulatorTest, RunHonorsMaxEvents) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_after(Duration::micros(i), [&] { ++fired; });
  }
  EXPECT_EQ(sim.run(4), 4u);
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(sim.run(), 6u);
}

TEST(SimulatorTest, CallbackCanScheduleMoreWork) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) sim.schedule_after(Duration::micros(1), chain);
  };
  sim.schedule_after(Duration::micros(1), chain);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.fired_count(), 100u);
}

TEST(SimulatorTest, PendingCountTracksLiveEvents) {
  Simulator sim;
  TimerId a = sim.schedule_after(Duration::micros(1), [] {});
  sim.schedule_after(Duration::micros(2), [] {});
  EXPECT_EQ(sim.pending_count(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending_count(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending_count(), 0u);
}

}  // namespace
}  // namespace rrmp::sim
