// Unit tests: discrete-event simulator ordering, timers, determinism, the
// slab timer store's generation-tagged handles, and sim::Callback's
// small-buffer optimization (including an allocation-count assertion that
// schedule/fire is heap-free for inline captures).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "sim/simulator.h"

// Global allocation counter: counts every operator-new in this test binary
// so AllocationFree* tests can assert the schedule/fire path stays off the
// heap. Counting is unconditional and thread-safe; the overhead is
// irrelevant for a unit-test binary.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t n) {
  ++g_alloc_count;
  if (n == 0) n = 1;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace rrmp::sim {
namespace {

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(TimePoint::from_us(30), [&] { order.push_back(3); });
  sim.schedule_at(TimePoint::from_us(10), [&] { order.push_back(1); });
  sim.schedule_at(TimePoint::from_us(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), TimePoint::from_us(30));
}

TEST(SimulatorTest, SimultaneousEventsFireFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(TimePoint::from_us(5), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulatorTest, ClockAdvancesMonotonically) {
  Simulator sim;
  TimePoint last = TimePoint::zero();
  bool monotone = true;
  for (int i = 0; i < 50; ++i) {
    sim.schedule_at(TimePoint::from_us((i * 37) % 100), [&, i] {
      if (sim.now() < last) monotone = false;
      last = sim.now();
    });
  }
  sim.run();
  EXPECT_TRUE(monotone);
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  TimePoint fired;
  sim.schedule_at(TimePoint::from_us(100), [&] {
    sim.schedule_after(Duration::micros(50), [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, TimePoint::from_us(150));
}

TEST(SimulatorTest, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  TimerId id = sim.schedule_after(Duration::micros(10), [&] { fired = true; });
  EXPECT_TRUE(sim.pending(id));
  sim.cancel(id);
  EXPECT_FALSE(sim.pending(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelIsIdempotentAndSafeAfterFire) {
  Simulator sim;
  TimerId id = sim.schedule_after(Duration::micros(1), [] {});
  sim.run();
  sim.cancel(id);  // already fired: no-op
  sim.cancel(id);
  sim.cancel(TimerId{999999});  // never existed: no-op
  EXPECT_EQ(sim.pending_count(), 0u);
}

TEST(SimulatorTest, CancelFromInsideCallback) {
  Simulator sim;
  bool second_fired = false;
  TimerId second =
      sim.schedule_at(TimePoint::from_us(20), [&] { second_fired = true; });
  sim.schedule_at(TimePoint::from_us(10), [&] { sim.cancel(second); });
  sim.run();
  EXPECT_FALSE(second_fired);
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  std::vector<int> fired;
  sim.schedule_at(TimePoint::from_us(10), [&] { fired.push_back(10); });
  sim.schedule_at(TimePoint::from_us(20), [&] { fired.push_back(20); });
  sim.schedule_at(TimePoint::from_us(30), [&] { fired.push_back(30); });
  sim.run_until(TimePoint::from_us(20));
  EXPECT_EQ(fired, (std::vector<int>{10, 20}));
  EXPECT_EQ(sim.now(), TimePoint::from_us(20));
  sim.run_until(TimePoint::from_us(100));
  EXPECT_EQ(fired, (std::vector<int>{10, 20, 30}));
  EXPECT_EQ(sim.now(), TimePoint::from_us(100));
}

TEST(SimulatorTest, RunUntilSkipsCancelledHeadEntries) {
  Simulator sim;
  // A cancelled event far in the future must not block run_until's scan.
  TimerId id = sim.schedule_at(TimePoint::from_us(5), [] {});
  sim.cancel(id);
  bool fired = false;
  sim.schedule_at(TimePoint::from_us(10), [&] { fired = true; });
  sim.run_until(TimePoint::from_us(10));
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, SchedulingInThePastClampsToNow) {
  Simulator sim;
  sim.schedule_at(TimePoint::from_us(100), [] {});
  sim.run();
  TimePoint fired_at;
  sim.schedule_at(TimePoint::from_us(10), [&] { fired_at = sim.now(); });
  sim.run();
  EXPECT_EQ(fired_at, TimePoint::from_us(100));  // clamped, clock monotone
}

TEST(SimulatorTest, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_after(Duration::micros(1), [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(SimulatorTest, RunHonorsMaxEvents) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_after(Duration::micros(i), [&] { ++fired; });
  }
  EXPECT_EQ(sim.run(4), 4u);
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(sim.run(), 6u);
}

TEST(SimulatorTest, CallbackCanScheduleMoreWork) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) sim.schedule_after(Duration::micros(1), chain);
  };
  sim.schedule_after(Duration::micros(1), chain);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.fired_count(), 100u);
}

TEST(SimulatorTest, PendingCountTracksLiveEvents) {
  Simulator sim;
  TimerId a = sim.schedule_after(Duration::micros(1), [] {});
  sim.schedule_after(Duration::micros(2), [] {});
  EXPECT_EQ(sim.pending_count(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending_count(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending_count(), 0u);
}

// ------------------------------------------------- slab handle safety ----

TEST(SlabHandleTest, HandleFromReusedSlotDoesNotCancelNewTimer) {
  Simulator sim;
  // Fire `a`, freeing its slot; the next schedule reuses that slot with a
  // bumped generation, so the stale handle must be inert against it.
  TimerId a = sim.schedule_after(Duration::micros(1), [] {});
  sim.run();
  bool fired = false;
  TimerId b = sim.schedule_after(Duration::micros(1), [&] { fired = true; });
  EXPECT_NE(a.value, b.value);  // same slot, different generation
  sim.cancel(a);                // stale: must not kill b
  EXPECT_TRUE(sim.pending(b));
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(SlabHandleTest, CancelledSlotReuseKeepsHandlesDistinct) {
  Simulator sim;
  TimerId a = sim.schedule_after(Duration::micros(10), [] {});
  sim.cancel(a);
  bool fired = false;
  TimerId b = sim.schedule_after(Duration::micros(10), [&] { fired = true; });
  EXPECT_FALSE(sim.pending(a));
  EXPECT_TRUE(sim.pending(b));
  sim.cancel(a);  // double-cancel of a stale handle over a reused slot
  EXPECT_TRUE(sim.pending(b));
  sim.run();
  EXPECT_TRUE(fired);
  sim.cancel(b);  // cancel-after-fire
  EXPECT_FALSE(sim.pending(b));
}

TEST(SlabHandleTest, CancelFloodCompactsHeap) {
  // Schedule-and-cancel far more events than ever fire: the lazy heap must
  // not accumulate dead entries without bound (the pre-slab design kept
  // them until popped). pending_count() stays exact throughout.
  Simulator sim;
  sim.schedule_after(Duration::seconds(100), [] {});
  for (int round = 0; round < 1000; ++round) {
    std::vector<TimerId> ids;
    for (int i = 0; i < 100; ++i) {
      ids.push_back(sim.schedule_after(Duration::seconds(1 + i), [] {}));
    }
    for (TimerId id : ids) sim.cancel(id);
    EXPECT_EQ(sim.pending_count(), 1u);
  }
  EXPECT_EQ(sim.run(), 1u);  // only the long-lived event ever fires
}

TEST(SlabHandleTest, OrderingUnchangedAcrossCancelCompaction) {
  // Compaction rebuilds the heap; (time, seq) FIFO order must survive.
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    sim.schedule_at(TimePoint::from_us(100 + i % 5), [&order, i] {
      order.push_back(i);
    });
    // Interleave cancelled noise to force dead-entry buildup + compaction.
    std::vector<TimerId> noise;
    for (int j = 0; j < 10; ++j) {
      noise.push_back(sim.schedule_at(TimePoint::from_us(50), [] {}));
    }
    for (TimerId id : noise) sim.cancel(id);
  }
  sim.run();
  // Same fire time bucket => FIFO by insertion; buckets ordered by time.
  std::vector<int> expected;
  for (int t = 0; t < 5; ++t) {
    for (int i = 0; i < 50; ++i) {
      if (i % 5 == t) expected.push_back(i);
    }
  }
  EXPECT_EQ(order, expected);
}

// ------------------------------------------------------- sim::Callback ----

TEST(CallbackTest, SmallCapturesAreInline) {
  int x = 0;
  Callback small([&x] { ++x; });
  EXPECT_TRUE(small.is_inline());
  small();
  EXPECT_EQ(x, 1);

  struct {  // exactly at the 48-byte boundary
    void* a;
    std::uint64_t b[5];
  } cap{&x, {1, 2, 3, 4, 5}};
  static_assert(sizeof(cap) == Callback::kInlineCapacity);
  Callback boundary([cap] { ++*static_cast<int*>(cap.a); });
  EXPECT_TRUE(boundary.is_inline());
  boundary();
  EXPECT_EQ(x, 2);
}

TEST(CallbackTest, OversizedCapturesFallBackToHeap) {
  int x = 0;
  std::uint64_t big[7] = {1, 2, 3, 4, 5, 6, 7};  // 56 bytes of capture
  Callback cb([&x, big] { x += static_cast<int>(big[6]); });
  EXPECT_FALSE(cb.is_inline());
  cb();
  EXPECT_EQ(x, 7);
}

TEST(CallbackTest, MoveTransfersStateBothPaths) {
  // Inline: state is relocated into the destination buffer.
  int n = 0;
  Callback a([&n] { ++n; });
  Callback b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_TRUE(b.is_inline());
  b();
  EXPECT_EQ(n, 1);

  // Heap: the pointer is stolen, so captured state keeps its address.
  auto token = std::make_shared<int>(5);
  std::uint64_t pad[6] = {};
  Callback c([token, pad, &n] { n += *token + static_cast<int>(pad[0]); });
  EXPECT_FALSE(c.is_inline());
  EXPECT_EQ(token.use_count(), 2);
  Callback d = std::move(c);
  EXPECT_EQ(token.use_count(), 2);  // moved, not copied
  d();
  EXPECT_EQ(n, 6);
  d = nullptr;  // destroys the capture
  EXPECT_EQ(token.use_count(), 1);
}

TEST(CallbackTest, MoveAssignmentReleasesPreviousTarget) {
  auto old_state = std::make_shared<int>(1);
  Callback target([old_state] { (void)*old_state; });
  EXPECT_EQ(old_state.use_count(), 2);
  int hits = 0;
  target = Callback([&hits] { ++hits; });
  EXPECT_EQ(old_state.use_count(), 1);  // previous capture destroyed
  target();
  EXPECT_EQ(hits, 1);
}

TEST(CallbackTest, InvokingEmptyCallbackThrowsLikeStdFunction) {
  Callback empty;
  EXPECT_THROW(empty(), std::bad_function_call);
  Callback moved_from([] {});
  Callback taken = std::move(moved_from);
  EXPECT_THROW(moved_from(), std::bad_function_call);
  taken();  // the moved-to callable still works
}

TEST(CallbackTest, WrapsStdFunctionInline) {
  // std::function (32 bytes) fits the inline buffer: adapting legacy
  // std::function-based callers adds no wrapper allocation.
  int x = 0;
  std::function<void()> fn = [&x] { ++x; };
  Callback cb(std::move(fn));
  EXPECT_TRUE(cb.is_inline());
  cb();
  EXPECT_EQ(x, 1);
}

// ----------------------------------------------- allocation-free paths ----

TEST(AllocationFreeTest, ScheduleFireCancelOfInlineCapturesIsHeapFree) {
  Simulator sim;
  // Warm-up: size the slab and heap vectors (64 concurrent timers), then
  // reuse them.
  std::vector<TimerId> warm;
  for (int i = 0; i < 64; ++i) {
    warm.push_back(sim.schedule_after(Duration::micros(i), [] {}));
  }
  for (TimerId id : warm) sim.cancel(id);
  sim.run();

  struct {
    void* self;
    std::uint64_t id[4];
  } cap{&sim, {1, 2, 3, 4}};  // 40 bytes: typical `this` + MessageId capture
  std::uint64_t fired = 0;

  std::uint64_t before = g_alloc_count.load();
  for (int round = 0; round < 100; ++round) {
    TimerId keep =
        sim.schedule_after(Duration::micros(1), [cap, &fired] {
          ++fired;
          (void)cap;
        });
    TimerId victim = sim.schedule_after(Duration::micros(2), [cap, &fired] {
      ++fired;
      (void)cap;
    });
    sim.cancel(victim);
    sim.run();
    (void)keep;
  }
  std::uint64_t allocs = g_alloc_count.load() - before;
  EXPECT_EQ(fired, 100u);
  EXPECT_EQ(allocs, 0u) << "schedule/fire/cancel must not allocate for "
                           "captures <= Callback::kInlineCapacity bytes";
}

}  // namespace
}  // namespace rrmp::sim
