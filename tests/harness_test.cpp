// Tests for the harness itself: Cluster scenario controls, SimHost view
// filtering, run_until_quiet semantics, experiment drivers' basic sanity.
#include <gtest/gtest.h>

#include "harness/cluster.h"
#include "harness/experiments.h"

namespace rrmp::harness {
namespace {

TEST(ClusterTest, InjectDeliversDataToHoldersAndSessionToOthers) {
  ClusterConfig cc;
  cc.region_sizes = {6};
  cc.seed = 1;
  Cluster cluster(cc);
  std::vector<MemberId> holders = {0, 2};
  MessageId id = cluster.inject(0, 1, holders);
  EXPECT_TRUE(cluster.endpoint(0).has_received(id));
  EXPECT_TRUE(cluster.endpoint(2).has_received(id));
  EXPECT_FALSE(cluster.endpoint(1).has_received(id));
  // Non-holders detected the loss immediately.
  EXPECT_EQ(cluster.endpoint(1).active_recoveries(), 1u);
  EXPECT_EQ(cluster.endpoint(3).active_recoveries(), 1u);
}

TEST(ClusterTest, InjectDataToNotifiesNobodyElse) {
  ClusterConfig cc;
  cc.region_sizes = {6};
  cc.seed = 2;
  Cluster cluster(cc);
  std::vector<MemberId> holders = {0};
  cluster.inject_data_to(0, 1, holders);
  for (MemberId m = 1; m < 6; ++m) {
    EXPECT_EQ(cluster.endpoint(m).active_recoveries(), 0u);
  }
}

TEST(ClusterTest, ForceLongTermAndDiscardManipulateState) {
  ClusterConfig cc;
  cc.region_sizes = {4};
  cc.seed = 3;
  Cluster cluster(cc);
  MessageId id = cluster.inject_data_to(0, 1, cluster.region_members(0));
  cluster.force_long_term(1, id);
  EXPECT_TRUE(cluster.endpoint(1).buffer().is_long_term(id));
  cluster.force_discard(2, id);
  EXPECT_FALSE(cluster.endpoint(2).buffer().has(id));
  EXPECT_THROW(cluster.force_long_term(2, id), std::logic_error);
}

TEST(ClusterTest, RunUntilQuietStopsWhenIdle) {
  ClusterConfig cc;
  cc.region_sizes = {8};
  cc.seed = 4;
  Cluster cluster(cc);
  cluster.inject(0, 1, cluster.region_members(0));  // everyone has it
  cluster.run_until_quiet(Duration::seconds(10));
  // Far less than the cap: the event queue drained after idle decisions.
  EXPECT_LT(cluster.now(), TimePoint::zero() + Duration::seconds(1));
}

TEST(ClusterTest, CrashedMemberExcludedFromQueries) {
  ClusterConfig cc;
  cc.region_sizes = {5};
  cc.seed = 5;
  Cluster cluster(cc);
  MessageId id = cluster.inject_data_to(0, 1, cluster.region_members(0));
  EXPECT_EQ(cluster.count_received(id), 5u);
  cluster.crash(4);
  EXPECT_EQ(cluster.count_received(id), 4u);
  EXPECT_TRUE(cluster.all_received(id));  // only alive members count
}

TEST(ClusterTest, SimHostViewsFollowDirectory) {
  ClusterConfig cc;
  cc.region_sizes = {4, 3};
  cc.seed = 6;
  Cluster cluster(cc);
  EXPECT_EQ(cluster.host(0).local_view().size(), 4u);
  EXPECT_TRUE(cluster.host(0).parent_view().empty());  // root
  EXPECT_EQ(cluster.host(5).local_view().size(), 3u);
  EXPECT_EQ(cluster.host(5).parent_view().size(), 4u);
  cluster.crash(1);
  EXPECT_EQ(cluster.host(0).local_view().size(), 3u);
  EXPECT_EQ(cluster.host(5).parent_view().size(), 3u);
}

TEST(ClusterTest, SuspicionFiltersViewsPerMember) {
  ClusterConfig cc;
  cc.region_sizes = {5};
  cc.seed = 7;
  Cluster cluster(cc);
  cluster.host(0).set_suspected(3, true);
  EXPECT_FALSE(cluster.host(0).local_view().contains(3));
  EXPECT_EQ(cluster.host(0).local_view().size(), 4u);
  // Other members are unaffected: suspicion is local knowledge.
  EXPECT_TRUE(cluster.host(1).local_view().contains(3));
  cluster.host(0).set_suspected(3, false);
  EXPECT_TRUE(cluster.host(0).local_view().contains(3));
}

TEST(ClusterTest, SelfNeverFilteredFromOwnView) {
  ClusterConfig cc;
  cc.region_sizes = {3};
  cc.seed = 8;
  Cluster cluster(cc);
  cluster.host(0).set_suspected(0, true);  // nonsensical, must be ignored
  EXPECT_TRUE(cluster.host(0).local_view().contains(0));
}

TEST(ClusterTest, RttEstimateMatchesTopology) {
  ClusterConfig cc;
  cc.region_sizes = {3, 2};
  cc.intra_rtt = Duration::millis(10);
  cc.inter_one_way = Duration::millis(50);
  cc.seed = 9;
  Cluster cluster(cc);
  EXPECT_EQ(cluster.host(0).rtt_estimate(1), Duration::millis(10));
  EXPECT_EQ(cluster.host(0).rtt_estimate(4), Duration::millis(100));
}

// ------------------------------------------------------ experiment drivers ----

TEST(ExperimentsTest, Fig6PointHasSamplesAndSaneRange) {
  Fig6Result r = run_fig6_point(4, 30, 5, 11);
  EXPECT_EQ(r.initial_holders, 4u);
  EXPECT_EQ(r.samples, 20u);  // 4 holders x 5 trials
  EXPECT_GE(r.mean_buffer_ms, 40.0);   // bounded below by T
  EXPECT_LE(r.mean_buffer_ms, 400.0);  // and well bounded above
}

TEST(ExperimentsTest, Fig7SeriesShapes) {
  Fig7Series s = run_fig7(40, 12, Duration::millis(140), Duration::millis(10));
  ASSERT_EQ(s.t_ms.size(), s.received.size());
  ASSERT_EQ(s.t_ms.size(), s.buffered.size());
  EXPECT_EQ(s.received.front(), 1u);  // the single initial holder
  EXPECT_EQ(s.received.back(), 40u);  // everyone by the end
  // Received counts are monotone.
  for (std::size_t i = 1; i < s.received.size(); ++i) {
    EXPECT_GE(s.received[i], s.received[i - 1]);
  }
}

TEST(ExperimentsTest, SearchZeroWhenRequestLandsOnBufferer) {
  // With every member a bufferer, search time must always be exactly 0.
  SearchResult r = run_search_once(10, 10, 13);
  EXPECT_TRUE(r.found);
  EXPECT_DOUBLE_EQ(r.search_ms, 0.0);
}

TEST(ExperimentsTest, LongTermDistributionSumsToOne) {
  auto d = simulate_longterm_distribution(100, 6.0, 20000, 14, 30);
  double total = 0;
  for (double p : d.pmf) total += p;
  EXPECT_NEAR(total, 1.0, 0.01);
  EXPECT_NEAR(d.mean, 6.0, 0.15);
}

TEST(ExperimentsTest, StreamScenarioProducesTraffic) {
  StreamScenario sc;
  sc.region_size = 20;
  sc.messages = 10;
  sc.data_loss = 0.2;
  sc.seed = 15;
  PolicyOutcome o = run_stream_scenario(buffer::PolicyKind::kTwoPhase, sc);
  EXPECT_TRUE(o.all_delivered);
  EXPECT_GT(o.peak_buffer_per_member, 0.0);
  EXPECT_GT(o.control_msgs, 0u);   // session messages at minimum
  EXPECT_GT(o.repair_msgs, 0u);    // 20% loss needed repairs
}

TEST(ExperimentsTest, CapacityPointUnlimitedMatchesUnbudgetedRun) {
  StreamScenario sc;
  sc.region_size = 20;
  sc.messages = 10;
  sc.data_loss = 0.2;
  sc.seed = 15;
  PolicyOutcome plain = run_stream_scenario(buffer::PolicyKind::kTwoPhase, sc);
  CapacityOutcome cap =
      run_capacity_point(0, buffer::PolicyKind::kTwoPhase, sc);
  // budget = unlimited is the identity: same seed, same RNG draws, same
  // outcome as the unbudgeted scenario.
  EXPECT_EQ(cap.delivered_fraction, plain.delivered_fraction);
  EXPECT_EQ(cap.recovery_success, plain.recovery_success);
  EXPECT_EQ(cap.mean_recovery_ms, plain.mean_recovery_ms);
  EXPECT_EQ(cap.evictions, 0u);
  EXPECT_EQ(cap.rejected, 0u);
}

TEST(ExperimentsTest, StarvedBudgetForcesEvictionsAndHurtsRecovery) {
  StreamScenario sc;
  sc.region_size = 20;
  sc.messages = 20;
  sc.data_loss = 0.2;
  sc.seed = 15;
  CapacityOutcome unlimited =
      run_capacity_point(0, buffer::PolicyKind::kTwoPhase, sc);
  // Budget of ~1 wire frame (a 256 B payload encodes to 271 B): nearly
  // every admission evicts the previous message, so repair requests mostly
  // find nothing.
  CapacityOutcome starved =
      run_capacity_point(300, buffer::PolicyKind::kTwoPhase, sc);
  EXPECT_GT(starved.evictions, 0u);
  EXPECT_LT(starved.recovery_success, unlimited.recovery_success);
  EXPECT_LT(starved.delivered_fraction, unlimited.delivered_fraction);
}

TEST(ExperimentsTest, CoordinationPointDisabledMatchesCapacityPoint) {
  // run_coordination_point(coordinate=false) IS the PR 4 capacity
  // experiment: same seed, same RNG draws, same outcome — the uncoordinated
  // column of the coordination sweep and the capacity sweep are one
  // experiment, not two that happen to agree.
  StreamScenario sc;
  sc.region_size = 20;
  sc.messages = 20;
  sc.data_loss = 0.2;
  sc.seed = 15;
  CapacityOutcome cap =
      run_capacity_point(600, buffer::PolicyKind::kTwoPhase, sc);
  CoordinationOutcome unc = run_coordination_point(
      600, /*coordinate=*/false, buffer::PolicyKind::kTwoPhase, sc);
  EXPECT_EQ(unc.delivered_fraction, cap.delivered_fraction);
  EXPECT_EQ(unc.recovery_success, cap.recovery_success);
  EXPECT_EQ(unc.mean_recovery_ms, cap.mean_recovery_ms);
  EXPECT_EQ(unc.evictions, cap.evictions);
  EXPECT_EQ(unc.sheds, 0u);
  EXPECT_EQ(unc.digest_msgs, 0u);
}

TEST(ExperimentsTest, CoordinationImprovesStarvedRecovery) {
  // The tentpole claim at unit scale: same starved budget, coordination on
  // vs off — the cooperative run sheds sole copies instead of losing them
  // and recovers at least as many losses, strictly more here.
  StreamScenario sc;
  sc.region_size = 20;
  sc.messages = 20;
  sc.data_loss = 0.2;
  sc.seed = 15;
  CoordinationOutcome unc = run_coordination_point(
      600, /*coordinate=*/false, buffer::PolicyKind::kTwoPhase, sc);
  CoordinationOutcome coord = run_coordination_point(
      600, /*coordinate=*/true, buffer::PolicyKind::kTwoPhase, sc);
  ASSERT_LT(unc.recovery_success, 1.0);  // pressure is real
  EXPECT_GT(coord.recovery_success, unc.recovery_success);
  EXPECT_GT(coord.sheds, 0u);
  EXPECT_GT(coord.digest_msgs, 0u);
}

TEST(ExperimentsTest, NoRequestProbabilityMatchesFormula) {
  double mc = simulate_no_request_probability(100, 0.5, 50000, 16);
  EXPECT_NEAR(mc, 0.605, 0.02);  // (1-1/99)^50
}

}  // namespace
}  // namespace rrmp::harness
