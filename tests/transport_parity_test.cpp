// Transport parity: the same protocol scenario on the discrete-event
// simulator and on real loopback UDP sockets must produce the same
// protocol-level outcome (who delivered what), differing only in timing
// noise. This is the strongest check that Endpoint is genuinely
// transport-agnostic.
#include <gtest/gtest.h>

#include "harness/cluster.h"
#include "harness/udp_runtime.h"

namespace rrmp::harness {
namespace {

TEST(TransportParity, SameScenarioSameDeliveriesOnBothTransports) {
  constexpr std::size_t kMembers = 6;
  constexpr int kMessages = 5;

  // --- simulator run ---
  ClusterConfig cc;
  cc.region_sizes = {kMembers};
  cc.seed = 2024;
  cc.data_loss = 0.3;
  cc.intra_rtt = Duration::millis(4);
  std::get<buffer::TwoPhaseParams>(cc.policy).idle_threshold =
      Duration::millis(16);
  cc.protocol.session_interval = Duration::millis(10);
  Cluster sim_run(cc);
  std::vector<MessageId> sim_ids;
  for (int i = 0; i < kMessages; ++i) {
    sim_ids.push_back(sim_run.endpoint(0).multicast({std::uint8_t(i)}));
  }
  sim_run.run_for(Duration::seconds(2));

  // --- UDP run (same protocol parameters; loss pattern differs by RNG
  // stream, but the *outcome contract* must match) ---
  net::Topology topo =
      net::make_hierarchy({kMembers}, Duration::millis(4), Duration::millis(10));
  UdpRuntimeConfig uc;
  uc.base_port = 39700;
  uc.seed = 2024;
  uc.data_loss = 0.3;
  uc.protocol = cc.protocol;
  uc.policy = cc.policy;
  std::unique_ptr<UdpRuntime> udp;
  try {
    udp = std::make_unique<UdpRuntime>(topo, uc);
  } catch (const std::runtime_error&) {
    GTEST_SKIP() << "UDP sockets unavailable";
  }
  std::vector<MessageId> udp_ids;
  for (int i = 0; i < kMessages; ++i) {
    udp_ids.push_back(udp->endpoint(0).multicast({std::uint8_t(i)}));
  }
  udp->run_for(Duration::millis(1500));

  // Identical id assignment.
  EXPECT_EQ(sim_ids, udp_ids);
  // Identical outcome: every message delivered everywhere on BOTH stacks.
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_TRUE(sim_run.all_received(sim_ids[static_cast<std::size_t>(i)]))
        << "sim seq " << i + 1;
    EXPECT_TRUE(udp->all_received(udp_ids[static_cast<std::size_t>(i)]))
        << "udp seq " << i + 1;
  }
  // Both stacks exercised the recovery machinery (loss was injected).
  EXPECT_GT(sim_run.metrics().counters().repairs_sent, 0u);
  EXPECT_GT(udp->metrics().counters().repairs_sent, 0u);
}

TEST(TransportParity, BufferPolicyBehavesIdenticallyAtProtocolLevel) {
  // After the stream settles, both stacks must converge to the same buffer
  // *policy* outcome class: a small random subset of long-term bufferers.
  net::Topology topo =
      net::make_hierarchy({8}, Duration::millis(4), Duration::millis(10));
  UdpRuntimeConfig uc;
  uc.base_port = 39800;
  uc.seed = 7;
  uc.protocol.session_interval = Duration::millis(10);
  uc.policy = buffer::TwoPhaseParams{Duration::millis(16), 3.0};
  std::unique_ptr<UdpRuntime> udp;
  try {
    udp = std::make_unique<UdpRuntime>(topo, uc);
  } catch (const std::runtime_error&) {
    GTEST_SKIP() << "UDP sockets unavailable";
  }
  MessageId id = udp->endpoint(0).multicast({1, 2, 3});
  udp->run_for(Duration::millis(600));
  std::size_t buffered = 0;
  for (MemberId m = 0; m < 8; ++m) {
    if (udp->endpoint(m).buffer().has(id)) ++buffered;
  }
  // Binomial(8, 3/8): nearly always strictly fewer than everyone.
  EXPECT_LT(buffered, 8u);
  EXPECT_TRUE(udp->all_received(id));
}

}  // namespace
}  // namespace rrmp::harness
