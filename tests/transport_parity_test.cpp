// Transport parity: the same protocol scenario on the discrete-event
// simulator and on real loopback UDP sockets must produce the same
// protocol-level outcome (who delivered what), differing only in timing
// noise. This is the strongest check that Endpoint is genuinely
// transport-agnostic.
#include <gtest/gtest.h>

#include "common/random.h"
#include "harness/cluster.h"
#include "harness/udp_runtime.h"

namespace rrmp::harness {
namespace {

TEST(TransportParity, SameScenarioSameDeliveriesOnBothTransports) {
  constexpr std::size_t kMembers = 6;
  constexpr int kMessages = 5;

  // --- simulator run ---
  ClusterConfig cc;
  cc.region_sizes = {kMembers};
  cc.seed = 2024;
  cc.data_loss = 0.3;
  cc.intra_rtt = Duration::millis(4);
  std::get<buffer::TwoPhaseParams>(cc.policy).idle_threshold =
      Duration::millis(16);
  cc.protocol.session_interval = Duration::millis(10);
  Cluster sim_run(cc);
  std::vector<MessageId> sim_ids;
  for (int i = 0; i < kMessages; ++i) {
    sim_ids.push_back(sim_run.endpoint(0).multicast({std::uint8_t(i)}));
  }
  sim_run.run_for(Duration::seconds(2));

  // --- UDP run (same protocol parameters; loss pattern differs by RNG
  // stream, but the *outcome contract* must match) ---
  net::Topology topo =
      net::make_hierarchy({kMembers}, Duration::millis(4), Duration::millis(10));
  UdpRuntimeConfig uc;
  uc.base_port = 39700;
  uc.seed = 2024;
  uc.data_loss = 0.3;
  uc.protocol = cc.protocol;
  uc.policy = cc.policy;
  std::unique_ptr<UdpRuntime> udp;
  try {
    udp = std::make_unique<UdpRuntime>(topo, uc);
  } catch (const std::runtime_error&) {
    GTEST_SKIP() << "UDP sockets unavailable";
  }
  std::vector<MessageId> udp_ids;
  for (int i = 0; i < kMessages; ++i) {
    udp_ids.push_back(udp->endpoint(0).multicast({std::uint8_t(i)}));
  }
  udp->run_for(Duration::millis(1500));

  // Identical id assignment.
  EXPECT_EQ(sim_ids, udp_ids);
  // Identical outcome: every message delivered everywhere on BOTH stacks.
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_TRUE(sim_run.all_received(sim_ids[static_cast<std::size_t>(i)]))
        << "sim seq " << i + 1;
    EXPECT_TRUE(udp->all_received(udp_ids[static_cast<std::size_t>(i)]))
        << "udp seq " << i + 1;
  }
  // Both stacks exercised the recovery machinery (loss was injected).
  EXPECT_GT(sim_run.metrics().counters().repairs_sent, 0u);
  EXPECT_GT(udp->metrics().counters().repairs_sent, 0u);
}

TEST(TransportParity, BufferPolicyBehavesIdenticallyAtProtocolLevel) {
  // After the stream settles, both stacks must converge to the same buffer
  // *policy* outcome class: a small random subset of long-term bufferers.
  net::Topology topo =
      net::make_hierarchy({8}, Duration::millis(4), Duration::millis(10));
  UdpRuntimeConfig uc;
  uc.base_port = 39800;
  uc.seed = 7;
  uc.protocol.session_interval = Duration::millis(10);
  uc.policy = buffer::TwoPhaseParams{Duration::millis(16), 3.0};
  std::unique_ptr<UdpRuntime> udp;
  try {
    udp = std::make_unique<UdpRuntime>(topo, uc);
  } catch (const std::runtime_error&) {
    GTEST_SKIP() << "UDP sockets unavailable";
  }
  MessageId id = udp->endpoint(0).multicast({1, 2, 3});
  udp->run_for(Duration::millis(600));
  std::size_t buffered = 0;
  for (MemberId m = 0; m < 8; ++m) {
    if (udp->endpoint(m).buffer().has(id)) ++buffered;
  }
  // Binomial(8, 3/8): nearly always strictly fewer than everyone.
  EXPECT_LT(buffered, 8u);
  EXPECT_TRUE(udp->all_received(id));
}

// The drop decision for one (message seq, receiver) pair of the shared loss
// schedule: a pure splitmix64 hash thresholded at `rate`, so the simulator
// and the UDP transport lose *exactly* the same initial-dissemination
// datagrams without sharing any RNG state.
bool scheduled_drop(std::uint64_t seq, MemberId to, double rate) {
  std::uint64_t state = seq * 0x9E3779B97F4A7C15ull ^
                        (static_cast<std::uint64_t>(to) + 1) * 0xBF58476D1CE4E5B9ull;
  std::uint64_t h = splitmix64(state);
  return static_cast<double>(h >> 11) * 0x1.0p-53 < rate;
}

// Recovery-curve parity: run the same scenario — same protocol parameters,
// same topology timing, and the *same deterministic loss schedule* on the
// initial dissemination — on the discrete-event simulator and on real
// loopback UDP sockets, sampling the fraction of (message, receiver) pairs
// delivered at fixed checkpoints. The real transport's recovery curve must
// track the simulator's prediction within tolerance and both must converge
// to full delivery.
TEST(TransportParity, RecoveryCurveMatchesSimulatorOnSharedLossSchedule) {
  constexpr std::size_t kMembers = 8;
  constexpr int kMessages = 6;
  constexpr double kLossRate = 0.35;
  constexpr int kCheckpoints = 10;
  const Duration kStep = Duration::millis(150);
  auto drop = [](std::uint64_t seq, MemberId to) {
    return scheduled_drop(seq, to, kLossRate);
  };

  // The schedule must actually drop something (and not everything).
  int drops = 0;
  for (int s = 1; s <= kMessages; ++s) {
    for (MemberId m = 1; m < kMembers; ++m) {
      if (drop(static_cast<std::uint64_t>(s), m)) ++drops;
    }
  }
  ASSERT_GT(drops, 0);
  ASSERT_LT(drops, kMessages * static_cast<int>(kMembers - 1));

  // --- simulator run: the prediction --------------------------------------
  ClusterConfig cc;
  cc.region_sizes = {kMembers};
  cc.seed = 4242;
  cc.intra_rtt = Duration::millis(4);
  std::get<buffer::TwoPhaseParams>(cc.policy).idle_threshold =
      Duration::millis(16);
  cc.protocol.session_interval = Duration::millis(10);
  Cluster sim_run(cc);
  sim_run.network().set_data_drop_fn(
      [&](const proto::Message& msg, MemberId to) {
        const auto* d = std::get_if<proto::Data>(&msg);
        return d != nullptr && drop(d->id.seq, to);
      });
  std::vector<MessageId> sim_ids;
  for (int i = 0; i < kMessages; ++i) {
    sim_ids.push_back(sim_run.endpoint(0).multicast({std::uint8_t(i)}));
  }
  const double total =
      static_cast<double>(kMessages) * static_cast<double>(kMembers);
  std::vector<double> sim_curve;
  for (int c = 0; c < kCheckpoints; ++c) {
    sim_run.run_for(kStep);
    std::size_t got = 0;
    for (const MessageId& id : sim_ids) got += sim_run.count_received(id);
    sim_curve.push_back(static_cast<double>(got) / total);
  }

  // --- UDP run: same protocol parameters, same schedule --------------------
  net::Topology topo = net::make_hierarchy({kMembers}, Duration::millis(4),
                                           Duration::millis(10));
  UdpRuntimeConfig uc;
  uc.base_port = 39900;
  uc.seed = 4242;
  uc.protocol = cc.protocol;
  uc.policy = cc.policy;
  uc.drop_fn = drop;
  std::unique_ptr<UdpRuntime> udp;
  try {
    udp = std::make_unique<UdpRuntime>(topo, uc);
  } catch (const std::runtime_error&) {
    GTEST_SKIP() << "UDP sockets unavailable";
  }
  std::vector<MessageId> udp_ids;
  for (int i = 0; i < kMessages; ++i) {
    udp_ids.push_back(udp->endpoint(0).multicast({std::uint8_t(i)}));
  }
  EXPECT_EQ(sim_ids, udp_ids);
  std::vector<double> udp_curve;
  for (int c = 0; c < kCheckpoints; ++c) {
    udp->run_for(kStep);
    std::size_t got = 0;
    for (const MessageId& id : udp_ids) got += udp->count_received(id);
    udp_curve.push_back(static_cast<double>(got) / total);
  }

  // Pointwise tolerance: both transports see identical initial losses, so
  // the curves differ only by repair-timing noise (wall-clock scheduling on
  // the UDP side vs ideal discrete-event timing).
  for (int c = 0; c < kCheckpoints; ++c) {
    EXPECT_NEAR(udp_curve[c], sim_curve[c], 0.25)
        << "checkpoint " << c << " (t=" << (c + 1) * kStep.us() / 1000
        << "ms): sim predicted " << sim_curve[c] << ", real transport saw "
        << udp_curve[c];
  }
  // Both recover fully on the shared schedule.
  EXPECT_DOUBLE_EQ(sim_curve.back(), 1.0);
  EXPECT_DOUBLE_EQ(udp_curve.back(), 1.0);
  // Loss was injected, so both stacks exercised the repair machinery.
  EXPECT_GT(sim_run.metrics().counters().repairs_sent, 0u);
  EXPECT_GT(udp->metrics().counters().repairs_sent, 0u);
}

}  // namespace
}  // namespace rrmp::harness
