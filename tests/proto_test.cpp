// Unit tests: wire codec — round-trips for every message type, malformed
// input rejection, truncation fuzzing.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/random.h"
#include "proto/codec.h"

namespace rrmp::proto {
namespace {

template <typename T>
T round_trip(const T& msg) {
  auto bytes = encode(Message{msg});
  auto decoded = decode(bytes);
  EXPECT_TRUE(decoded.has_value());
  const T* out = std::get_if<T>(&*decoded);
  EXPECT_NE(out, nullptr);
  return *out;
}

TEST(CodecTest, DataRoundTrip) {
  Data d{MessageId{3, 99}, {1, 2, 3, 4, 5}};
  EXPECT_EQ(round_trip(d), d);
}

TEST(CodecTest, DataEmptyPayloadRoundTrip) {
  Data d{MessageId{0, 1}, {}};
  EXPECT_EQ(round_trip(d), d);
}

TEST(CodecTest, DataLargePayloadRoundTrip) {
  Data d{MessageId{1, 2}, std::vector<std::uint8_t>(70000, 0xCD)};
  EXPECT_EQ(round_trip(d), d);
}

TEST(CodecTest, SessionRoundTrip) {
  Session s{42, 0xFFFFFFFFFFULL};
  EXPECT_EQ(round_trip(s), s);
}

TEST(CodecTest, LocalRequestRoundTrip) {
  LocalRequest r{MessageId{7, 8}, 55};
  EXPECT_EQ(round_trip(r), r);
}

TEST(CodecTest, RemoteRequestRoundTrip) {
  RemoteRequest r{MessageId{1, 1000000}, 9};
  EXPECT_EQ(round_trip(r), r);
}

TEST(CodecTest, RepairRoundTripBothFlags) {
  Repair r1{MessageId{2, 3}, {9, 8, 7}, true};
  EXPECT_EQ(round_trip(r1), r1);
  Repair r2{MessageId{2, 3}, {9, 8, 7}, false};
  EXPECT_EQ(round_trip(r2), r2);
}

TEST(CodecTest, RegionalRepairRoundTrip) {
  RegionalRepair r{MessageId{5, 6}, {0xFF}, 77};
  EXPECT_EQ(round_trip(r), r);
}

TEST(CodecTest, SearchRequestRoundTrip) {
  SearchRequest r{MessageId{9, 10}, 123};
  EXPECT_EQ(round_trip(r), r);
}

TEST(CodecTest, SearchFoundRoundTrip) {
  SearchFound f{MessageId{11, 12}, 456};
  EXPECT_EQ(round_trip(f), f);
}

TEST(CodecTest, HandoffRoundTrip) {
  Handoff h;
  h.messages.push_back(Data{MessageId{1, 1}, {1}});
  h.messages.push_back(Data{MessageId{1, 2}, {2, 2}});
  h.messages.push_back(Data{MessageId{2, 1}, {}});
  EXPECT_EQ(round_trip(h), h);
}

TEST(CodecTest, EmptyHandoffRoundTrip) {
  Handoff h;
  EXPECT_EQ(round_trip(h), h);
}

TEST(CodecTest, GossipRoundTrip) {
  Gossip g;
  g.from = 5;
  for (std::uint32_t i = 0; i < 50; ++i) {
    g.beats.push_back(Heartbeat{i, i * 1000ULL});
  }
  EXPECT_EQ(round_trip(g), g);
}

TEST(CodecTest, HistoryRoundTrip) {
  History h;
  h.member = 13;
  SourceHistory s1{1, 500, {0xDEADBEEFULL, 0x1ULL}};
  SourceHistory s2{2, 1, {}};
  h.sources = {s1, s2};
  EXPECT_EQ(round_trip(h), h);
}

TEST(CodecTest, BufferDigestRoundTrip) {
  BufferDigest d;
  d.member = 17;
  d.bytes_in_use = 123456789;
  d.window_outstanding = 31;
  d.ranges = {{1, 5, 3}, {1, 100, 1}, {2, 1, 40}};
  EXPECT_EQ(round_trip(d), d);
}

TEST(CodecTest, EmptyBufferDigestRoundTrip) {
  // A member advertising an empty buffer (it is the ideal shed target).
  BufferDigest d{9, 0, 0, {}};
  EXPECT_EQ(round_trip(d), d);
}

TEST(CodecTest, ShedRoundTrip) {
  Shed s{4, Data{MessageId{2, 77}, {1, 2, 3, 4}}};
  EXPECT_EQ(round_trip(s), s);
}

TEST(CodecTest, CreditAckRoundTrip) {
  CreditAck a{7, 4096, 65536, {{2, 10}, {3, 0}, {9, 1ULL << 40}}};
  EXPECT_EQ(round_trip(a), a);
}

TEST(CodecTest, EmptyCreditAckRoundTrip) {
  CreditAck a{1, 0, 0, {}};
  EXPECT_EQ(round_trip(a), a);
}

TEST(CodecTest, EscalateRoundTrip) {
  Escalate e{MessageId{4, 1ULL << 20}, 77, 3};
  EXPECT_EQ(round_trip(e), e);
  Escalate zero_hop{MessageId{0, 1}, 2, 0};
  EXPECT_EQ(round_trip(zero_hop), zero_hop);
}

TEST(CodecTest, EscalateEncodedSizeIsExact) {
  Escalate e{MessageId{12, 999}, 5, 16};
  EXPECT_EQ(encoded_size(Message{e}), encode(Message{e}).size());
}

TEST(CodecTest, ViewGenerationRoundTrips) {
  // The fault-injection connectivity generation rides both coordination
  // frames as an optional trailing varint (absent when 0).
  BufferDigest d{17, 4096, 3, {{1, 5, 2}}};
  d.view_gen = 7;
  EXPECT_EQ(round_trip(d), d);
  d.view_gen = 1ULL << 40;  // multi-byte varint
  EXPECT_EQ(round_trip(d), d);

  CreditAck a{7, 4096, 65536, {{2, 10}, {3, 0}}};
  a.view_gen = 2;
  EXPECT_EQ(round_trip(a), a);
  a.cursors.clear();  // trailing field after an empty repeated block
  EXPECT_EQ(round_trip(a), a);
}

TEST(CodecTest, ViewGenerationSizesAreExact) {
  BufferDigest d{17, 4096, 3, {{1, 5, 2}}};
  CreditAck a{7, 4096, 65536, {{2, 10}}};
  std::size_t digest_base = encoded_size(Message{d});
  std::size_t ack_base = encoded_size(Message{a});
  d.view_gen = 300;  // 2-byte varint
  a.view_gen = 300;
  EXPECT_EQ(encoded_size(Message{d}), encode(Message{d}).size());
  EXPECT_EQ(encoded_size(Message{a}), encode(Message{a}).size());
  EXPECT_EQ(encoded_size(Message{d}), digest_base + 2);
  EXPECT_EQ(encoded_size(Message{a}), ack_base + 2);
}

TEST(CodecTest, TypeTagsAreStable) {
  // Wire compatibility: these values must never change.
  EXPECT_EQ(static_cast<int>(type_of(Message{Data{}})), 1);
  EXPECT_EQ(static_cast<int>(type_of(Message{Session{}})), 2);
  EXPECT_EQ(static_cast<int>(type_of(Message{LocalRequest{}})), 3);
  EXPECT_EQ(static_cast<int>(type_of(Message{RemoteRequest{}})), 4);
  EXPECT_EQ(static_cast<int>(type_of(Message{Repair{}})), 5);
  EXPECT_EQ(static_cast<int>(type_of(Message{RegionalRepair{}})), 6);
  EXPECT_EQ(static_cast<int>(type_of(Message{SearchRequest{}})), 7);
  EXPECT_EQ(static_cast<int>(type_of(Message{SearchFound{}})), 8);
  EXPECT_EQ(static_cast<int>(type_of(Message{Handoff{}})), 9);
  EXPECT_EQ(static_cast<int>(type_of(Message{Gossip{}})), 10);
  EXPECT_EQ(static_cast<int>(type_of(Message{History{}})), 11);
  EXPECT_EQ(static_cast<int>(type_of(Message{BufferDigest{}})), 12);
  EXPECT_EQ(static_cast<int>(type_of(Message{Shed{}})), 13);
  EXPECT_EQ(static_cast<int>(type_of(Message{CreditAck{}})), 14);
  EXPECT_EQ(static_cast<int>(type_of(Message{Escalate{}})), 15);
}

TEST(CodecTest, TypeNamesAreDistinct) {
  std::set<std::string> names;
  for (int t = 1; t <= 14; ++t) {
    names.insert(type_name(static_cast<MessageType>(t)));
  }
  EXPECT_EQ(names.size(), 14u);
}

TEST(CodecTest, EncodedSizeMatchesEncoding) {
  Message m{Data{MessageId{1, 2}, std::vector<std::uint8_t>(300, 7)}};
  EXPECT_EQ(encoded_size(m), encode(m).size());
}

TEST(CodecTest, EncodedSizeMatchesEncodingForEveryType) {
  // encoded_size is computed arithmetically (no buffer materialized); it
  // must agree with the real encoder byte for byte, including varint-width
  // boundaries in blob lengths and repeated-field counts.
  std::vector<Message> msgs = {
      Message{Data{MessageId{1, 2}, std::vector<std::uint8_t>(127, 1)}},
      Message{Data{MessageId{1, 2}, std::vector<std::uint8_t>(128, 1)}},
      Message{Session{7, 1ULL << 40}},
      Message{LocalRequest{MessageId{3, 4}, 9}},
      Message{RemoteRequest{MessageId{3, 4}, 9}},
      Message{Repair{MessageId{5, 6}, {1, 2, 3}, true}},
      Message{RegionalRepair{MessageId{5, 6}, {}, 2}},
      Message{SearchRequest{MessageId{7, 8}, 1}},
      Message{SearchFound{MessageId{7, 8}, 1}},
      Message{Handoff{{Data{MessageId{1, 1}, {1}},
                       Data{MessageId{1, 2}, std::vector<std::uint8_t>(200, 2)}}}},
      Message{Gossip{1, {{2, 3}, {4, 5}}}},
      Message{History{1, {SourceHistory{2, 10, {0xFF, 0x00}}}}},
      Message{BufferDigest{3, 1ULL << 33, 129, {{1, 5, 127}, {2, 1, 128}}}},
      Message{Shed{4, Data{MessageId{1, 2}, std::vector<std::uint8_t>(128, 9)}}},
      Message{CreditAck{5, 1ULL << 20, 1ULL << 21, {{1, 127}, {2, 128}}}},
  };
  for (const Message& m : msgs) {
    EXPECT_EQ(encoded_size(m), encode(m).size()) << type_name(m);
  }
}

TEST(CodecTest, DecodeSharedAliasesPayloadBlobs) {
  // Zero-copy decode: payload fields borrow the wire buffer instead of
  // copying, for both top-level and Handoff-nested Data.
  Data d{MessageId{3, 99}, {10, 20, 30}};
  SharedBytes wire = encode_shared(Message{d});
  auto decoded = decode_shared(wire);
  ASSERT_TRUE(decoded.has_value());
  const Data& out = std::get<Data>(*decoded);
  EXPECT_EQ(out, d);
  EXPECT_TRUE(out.payload.shares_owner_with(wire));

  SharedBytes rep_wire =
      encode_shared(Message{Repair{MessageId{1, 2}, {7, 8}, true}});
  auto rep = decode_shared(rep_wire);
  ASSERT_TRUE(rep.has_value());
  EXPECT_TRUE(std::get<Repair>(*rep).payload.shares_owner_with(rep_wire));

  SharedBytes ho_wire = encode_shared(
      Message{Handoff{{Data{MessageId{1, 1}, {1, 2}},
                       Data{MessageId{1, 2}, {3, 4}}}}});
  auto ho = decode_shared(ho_wire);
  ASSERT_TRUE(ho.has_value());
  for (const Data& nested : std::get<Handoff>(*ho).messages) {
    EXPECT_TRUE(nested.payload.shares_owner_with(ho_wire));
  }
}

TEST(CodecTest, DecodeSharedRejectsLikeDecode) {
  // Same accept/reject behaviour as decode(span) on malformed input.
  EXPECT_FALSE(decode_shared(SharedBytes()).has_value());
  EXPECT_FALSE(decode_shared(SharedBytes({0xEE, 1, 2})).has_value());
  SharedBytes truncated({static_cast<std::uint8_t>(MessageType::kData), 1});
  EXPECT_FALSE(decode_shared(truncated).has_value());
}

// --------------------------------------------------------- malformed input ----

TEST(CodecFuzzTest, EmptyInputRejected) {
  EXPECT_FALSE(decode({}).has_value());
}

TEST(CodecFuzzTest, UnknownTagRejected) {
  std::vector<std::uint8_t> bytes = {0xEE, 1, 2, 3};
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(CodecFuzzTest, TrailingGarbageRejected) {
  auto bytes = encode(Message{Session{1, 2}});
  bytes.push_back(0x00);
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(CodecFuzzTest, EveryTruncationOfEveryTypeRejected) {
  std::vector<Message> msgs = {
      Message{Data{MessageId{3, 4}, {1, 2, 3}}},
      Message{Session{1, 99}},
      Message{LocalRequest{MessageId{1, 2}, 3}},
      Message{RemoteRequest{MessageId{1, 2}, 3}},
      Message{Repair{MessageId{1, 2}, {4, 5}, true}},
      Message{RegionalRepair{MessageId{1, 2}, {4}, 6}},
      Message{SearchRequest{MessageId{1, 2}, 3}},
      Message{SearchFound{MessageId{1, 2}, 3}},
      Message{Handoff{{Data{MessageId{1, 1}, {1}}}}},
      Message{Gossip{1, {Heartbeat{2, 3}}}},
      Message{History{1, {SourceHistory{1, 2, {0xFF}}}}},
      Message{BufferDigest{1, 64, 2, {DigestRange{1, 2, 3}}}},
      Message{Shed{1, Data{MessageId{1, 1}, {7, 8}}}},
      Message{CreditAck{1, 64, 128, {{2, 3}}}},
  };
  for (const Message& m : msgs) {
    auto bytes = encode(m);
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      std::span<const std::uint8_t> prefix(bytes.data(), cut);
      auto decoded = decode(prefix);
      EXPECT_FALSE(decoded.has_value())
          << type_name(m) << " accepted truncation at " << cut;
    }
  }
}

TEST(CodecFuzzTest, RandomBytesNeverCrash) {
  RandomEngine rng(0xFACE);
  for (int trial = 0; trial < 5000; ++trial) {
    std::vector<std::uint8_t> bytes(
        static_cast<std::size_t>(rng.uniform_int(0, 64)));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_u32());
    (void)decode(bytes);  // must not crash or overread (ASAN-clean)
  }
}

TEST(CodecFuzzTest, RandomMutationOfValidMessageNeverCrashes) {
  RandomEngine rng(0xBEEF);
  auto base = encode(Message{Handoff{{Data{MessageId{1, 1}, {1, 2, 3, 4}}}}});
  for (int trial = 0; trial < 5000; ++trial) {
    auto bytes = base;
    std::size_t pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1));
    bytes[pos] = static_cast<std::uint8_t>(rng.next_u32());
    auto decoded = decode(bytes);
    if (decoded) {
      // If it decodes, re-encoding must be well-formed too.
      (void)encode(*decoded);
    }
  }
}

TEST(CodecFuzzTest, HostileRepeatedFieldCountRejectedWithoutAllocation) {
  // Hand-craft a Handoff claiming 2^40 messages.
  std::vector<std::uint8_t> bytes;
  bytes.push_back(9);  // kHandoff
  std::uint64_t v = 1ULL << 40;
  while (v >= 0x80) {
    bytes.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  bytes.push_back(static_cast<std::uint8_t>(v));
  EXPECT_FALSE(decode(bytes).has_value());
}

// ------------------------------------------- hand-crafted hostile frames ----
//
// These build malformed frames byte-by-byte (wire layout: 1-byte tag,
// little-endian fixed-width ints, varint length prefixes) and must fail to
// decode without crashing, allocating per the claimed length, or reading
// past the buffer. Run them under the `asan` preset to get the over-read
// guarantee checked, not just asserted.

void append_varint(std::vector<std::uint8_t>& bytes, std::uint64_t v) {
  while (v >= 0x80) {
    bytes.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  bytes.push_back(static_cast<std::uint8_t>(v));
}

void append_u32(std::vector<std::uint8_t>& bytes, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void append_u64(std::vector<std::uint8_t>& bytes, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void append_message_id(std::vector<std::uint8_t>& bytes, std::uint32_t source,
                       std::uint64_t seq) {
  append_u32(bytes, source);
  append_u64(bytes, seq);
}

TEST(CodecNegativeTest, EveryGarbageTypeByteRejected) {
  for (int tag = 0; tag <= 255; ++tag) {
    if (tag >= 1 && tag <= 14) continue;  // valid wire tags
    std::vector<std::uint8_t> lone = {static_cast<std::uint8_t>(tag)};
    EXPECT_FALSE(decode(lone).has_value()) << "bare tag " << tag;
    std::vector<std::uint8_t> padded(17, 0x00);
    padded[0] = static_cast<std::uint8_t>(tag);
    EXPECT_FALSE(decode(padded).has_value()) << "padded tag " << tag;
  }
}

TEST(CodecNegativeTest, EveryValidTagWithEmptyBodyRejected) {
  // Every message type has a non-empty body, so a bare valid tag is always
  // a truncated frame.
  for (int tag = 1; tag <= 14; ++tag) {
    std::vector<std::uint8_t> bytes = {static_cast<std::uint8_t>(tag)};
    EXPECT_FALSE(decode(bytes).has_value()) << "tag " << tag;
  }
}

TEST(CodecNegativeTest, PayloadLengthBeyondRemainingBytesRejected) {
  // A Data frame whose payload length prefix claims more bytes than the
  // frame holds.
  std::vector<std::uint8_t> bytes = {1};  // kData
  append_message_id(bytes, 7, 42);
  append_varint(bytes, 1000);
  bytes.push_back(0xAA);  // only 1 of the claimed 1000 payload bytes
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(CodecNegativeTest, HostilePayloadLengthRejectedForEveryBlobType) {
  // 2^40 claimed payload bytes on each blob-carrying frame: decode must
  // reject on the bounds check, never allocate the claimed size.
  for (std::uint8_t tag : {std::uint8_t{1}, std::uint8_t{5}, std::uint8_t{6}}) {
    // kData / kRepair / kRegionalRepair all start with id + payload.
    std::vector<std::uint8_t> bytes = {tag};
    append_message_id(bytes, 1, 2);
    append_varint(bytes, 1ULL << 40);
    EXPECT_FALSE(decode(bytes).has_value()) << "tag " << int(tag);
  }
}

TEST(CodecNegativeTest, TruncatedVarintLengthPrefixRejected) {
  // The payload length varint ends mid-value (continuation bit set on the
  // final byte of the frame).
  std::vector<std::uint8_t> bytes = {1};  // kData
  append_message_id(bytes, 3, 4);
  bytes.push_back(0xFF);  // continuation bit set, then nothing
  EXPECT_FALSE(decode(bytes).has_value());

  // Same for a varint that never terminates within the 10-byte u64 limit.
  std::vector<std::uint8_t> runaway = {1};
  append_message_id(runaway, 3, 4);
  for (int i = 0; i < 12; ++i) runaway.push_back(0x80);
  runaway.push_back(0x01);
  EXPECT_FALSE(decode(runaway).has_value());
}

TEST(CodecNegativeTest, HostileGossipBeatCountRejected) {
  std::vector<std::uint8_t> bytes = {10};  // kGossip
  append_u32(bytes, 5);                    // from
  append_varint(bytes, 1ULL << 41);        // beats count
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(CodecNegativeTest, HostileHistoryBitmapLengthRejected) {
  std::vector<std::uint8_t> bytes = {11};  // kHistory
  append_u32(bytes, 9);                    // member
  append_varint(bytes, 1);                 // one SourceHistory
  append_u32(bytes, 1);                    // source
  append_u64(bytes, 100);                  // next_expected
  append_varint(bytes, 1ULL << 50);        // bitmap word count
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(CodecNegativeTest, RepeatedCountJustAboveCapRejected) {
  // kMaxRepeated itself is the cap; one above must be rejected even though
  // the varint is well-formed.
  std::vector<std::uint8_t> bytes = {9};  // kHandoff
  append_varint(bytes, kMaxRepeated + 1);
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(CodecNegativeTest, NestedHandoffPayloadTruncationRejected) {
  // A Handoff whose second nested Data frame is cut off mid-payload.
  std::vector<std::uint8_t> bytes = {9};  // kHandoff
  append_varint(bytes, 2);
  append_message_id(bytes, 1, 1);
  append_varint(bytes, 1);
  bytes.push_back(0x42);          // first Data, complete
  append_message_id(bytes, 1, 2);
  append_varint(bytes, 5);
  bytes.push_back(0x43);          // second Data claims 5 bytes, has 1
  EXPECT_FALSE(decode(bytes).has_value());
}

// -------------------- coordination frames: golden vectors + hostile input ----
//
// Byte-exact encode vectors pin the BufferDigest/Shed wire layout (tag,
// little-endian fixed ints, varint counts) the way the Data/Repair corpus
// pins the original frames: any codec change that moves a byte fails here,
// not in an interop incident.

TEST(CodecGoldenTest, BufferDigestEncodesByteExact) {
  BufferDigest d;
  d.member = 5;
  d.bytes_in_use = 0x1234;
  d.window_outstanding = 200;
  d.ranges = {{2, 7, 3}, {3, 1, 200}};

  std::vector<std::uint8_t> want = {12};  // kBufferDigest
  append_u32(want, 5);                    // member
  append_u64(want, 0x1234);               // bytes_in_use
  append_varint(want, 200);               // window_outstanding (2-byte varint)
  append_varint(want, 2);                 // range count
  append_u32(want, 2);                    // range 0: source
  append_u64(want, 7);                    //          first_seq
  append_varint(want, 3);                 //          count (1-byte varint)
  append_u32(want, 3);                    // range 1: source
  append_u64(want, 1);                    //          first_seq
  append_varint(want, 200);               //          count (2-byte varint)
  EXPECT_EQ(encode(Message{d}), want);
  EXPECT_EQ(encoded_size(Message{d}), want.size());
  auto decoded = decode(want);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<BufferDigest>(*decoded), d);
}

TEST(CodecGoldenTest, EmptyBufferDigestEncodesByteExact) {
  BufferDigest d{9, 0, 0, {}};
  std::vector<std::uint8_t> want = {12};
  append_u32(want, 9);
  append_u64(want, 0);
  append_varint(want, 0);  // window_outstanding
  append_varint(want, 0);  // range count
  EXPECT_EQ(encode(Message{d}), want);
}

TEST(CodecGoldenTest, CreditAckEncodesByteExact) {
  CreditAck a;
  a.member = 6;
  a.bytes_in_use = 0x55;
  a.budget_bytes = 0x1000;
  a.cursors = {{2, 9}, {4, 300}};

  std::vector<std::uint8_t> want = {14};  // kCreditAck
  append_u32(want, 6);                    // member
  append_u64(want, 0x55);                 // bytes_in_use
  append_u64(want, 0x1000);               // budget_bytes
  append_varint(want, 2);                 // cursor count
  append_u32(want, 2);                    // cursor 0: source
  append_varint(want, 9);                 //           cursor (1-byte varint)
  append_u32(want, 4);                    // cursor 1: source
  append_varint(want, 300);               //           cursor (2-byte varint)
  EXPECT_EQ(encode(Message{a}), want);
  EXPECT_EQ(encoded_size(Message{a}), want.size());
  auto decoded = decode(want);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<CreditAck>(*decoded), a);
}

TEST(CodecGoldenTest, ViewGenExtendsLegacyLayoutByOneTrailingVarint) {
  // Fault-free traffic (view_gen == 0, struct default) must keep the exact
  // legacy byte layout — the golden vectors above pin that. A nonzero
  // generation appends one varint and nothing else, so legacy decoders
  // would reject it cleanly and new decoders read old frames unchanged.
  CreditAck a;
  a.member = 6;
  a.bytes_in_use = 0x55;
  a.budget_bytes = 0x1000;
  a.cursors = {{2, 9}};

  std::vector<std::uint8_t> legacy = encode(Message{a});
  a.view_gen = 300;
  std::vector<std::uint8_t> want = legacy;
  append_varint(want, 300);
  EXPECT_EQ(encode(Message{a}), want);
  auto decoded = decode(want);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<CreditAck>(*decoded), a);

  BufferDigest d{5, 0x1234, 200, {{2, 7, 3}}};
  legacy = encode(Message{d});
  d.view_gen = 4;
  want = legacy;
  append_varint(want, 4);
  EXPECT_EQ(encode(Message{d}), want);
  decoded = decode(want);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<BufferDigest>(*decoded), d);
}

TEST(CodecNegativeTest, ExplicitZeroViewGenRejected) {
  // An encoder never emits generation 0 (it omits the field); a trailing
  // zero varint is a malformed frame, not a legacy one.
  std::vector<std::uint8_t> ack = encode(Message{CreditAck{1, 64, 128, {{2, 3}}}});
  append_varint(ack, 0);
  EXPECT_FALSE(decode(ack).has_value());

  std::vector<std::uint8_t> digest =
      encode(Message{BufferDigest{1, 64, 2, {DigestRange{1, 2, 3}}}});
  append_varint(digest, 0);
  EXPECT_FALSE(decode(digest).has_value());
}

TEST(CodecGoldenTest, ShedEncodesByteExact) {
  Shed s{9, Data{MessageId{3, 99}, {0xAA, 0xBB}}};
  std::vector<std::uint8_t> want = {13};  // kShed
  append_u32(want, 9);                    // from
  append_message_id(want, 3, 99);         // nested Data: id
  append_varint(want, 2);                 //              payload length
  want.push_back(0xAA);
  want.push_back(0xBB);
  EXPECT_EQ(encode(Message{s}), want);
  EXPECT_EQ(encoded_size(Message{s}), want.size());
  auto decoded = decode(want);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<Shed>(*decoded), s);
}

TEST(CodecNegativeTest, HostileDigestRangeCountRejected) {
  // A digest claiming 2^40 ranges: rejected at the bounds check, never
  // allocated.
  std::vector<std::uint8_t> bytes = {12};  // kBufferDigest
  append_u32(bytes, 1);                    // member
  append_u64(bytes, 64);                   // bytes_in_use
  append_varint(bytes, 1ULL << 40);        // range count
  EXPECT_FALSE(decode(bytes).has_value());

  // Just above the cap, with a well-formed varint.
  std::vector<std::uint8_t> capped = {12};
  append_u32(capped, 1);
  append_u64(capped, 64);
  append_varint(capped, kMaxRepeated + 1);
  EXPECT_FALSE(decode(capped).has_value());
}

TEST(CodecNegativeTest, ZeroLengthDigestRangeRejected) {
  // count = 0 advertises nothing; a well-formed digest never emits it, so
  // decode treats it as hostile rather than silently carrying dead ranges.
  std::vector<std::uint8_t> bytes = {12};  // kBufferDigest
  append_u32(bytes, 1);
  append_u64(bytes, 64);
  append_varint(bytes, 1);  // one range
  append_u32(bytes, 2);     // source
  append_u64(bytes, 5);     // first_seq
  append_varint(bytes, 0);  // count = 0
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(CodecNegativeTest, DigestTruncatedMidRangeRejected) {
  // The advertised range count exceeds the ranges actually present.
  std::vector<std::uint8_t> bytes = {12};  // kBufferDigest
  append_u32(bytes, 1);
  append_u64(bytes, 64);
  append_varint(bytes, 2);  // claims two ranges
  append_u32(bytes, 2);
  append_u64(bytes, 5);
  append_varint(bytes, 3);  // only one follows
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(CodecNegativeTest, ShedHostilePayloadLengthRejected) {
  // A Shed whose nested Data claims 2^40 payload bytes.
  std::vector<std::uint8_t> bytes = {13};  // kShed
  append_u32(bytes, 4);                    // from
  append_message_id(bytes, 1, 2);
  append_varint(bytes, 1ULL << 40);
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(CodecNegativeTest, ShedTrailingGarbageRejected) {
  auto bytes = encode(Message{Shed{1, Data{MessageId{1, 1}, {7}}}});
  bytes.push_back(0x00);
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(CodecNegativeTest, HostileCreditAckCursorCountRejected) {
  // A CreditAck claiming 2^40 cursors: rejected on the bounds check, never
  // allocated.
  std::vector<std::uint8_t> bytes = {14};  // kCreditAck
  append_u32(bytes, 1);                    // member
  append_u64(bytes, 64);                   // bytes_in_use
  append_u64(bytes, 128);                  // budget_bytes
  append_varint(bytes, 1ULL << 40);        // cursor count
  EXPECT_FALSE(decode(bytes).has_value());

  // Just above the cap, with a well-formed varint.
  std::vector<std::uint8_t> capped = {14};
  append_u32(capped, 1);
  append_u64(capped, 64);
  append_u64(capped, 128);
  append_varint(capped, kMaxRepeated + 1);
  EXPECT_FALSE(decode(capped).has_value());
}

TEST(CodecNegativeTest, CreditAckTruncatedMidCursorRejected) {
  // The advertised cursor count exceeds the cursors actually present.
  std::vector<std::uint8_t> bytes = {14};  // kCreditAck
  append_u32(bytes, 1);
  append_u64(bytes, 64);
  append_u64(bytes, 128);
  append_varint(bytes, 2);  // claims two cursors
  append_u32(bytes, 2);
  append_varint(bytes, 5);  // only one follows
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(CodecFuzzTest, RandomMutationOfValidDigestNeverCrashes) {
  RandomEngine rng(0xD16E57);
  auto base =
      encode(Message{BufferDigest{3, 512, 6, {{1, 1, 16}, {2, 9, 4}}}});
  for (int trial = 0; trial < 5000; ++trial) {
    auto bytes = base;
    std::size_t pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1));
    bytes[pos] = static_cast<std::uint8_t>(rng.next_u32());
    auto decoded = decode(bytes);
    if (decoded) {
      (void)encode(*decoded);
    }
  }
}

// --------------- piggybacked cursor block on Data/Session (flow control) ----
//
// The cursor block is an *optional trailing* field: an empty vector encodes
// to exactly the pre-piggyback byte layout (zero extra bytes — this is what
// keeps every legacy golden vector and bench baseline bit-identical), and a
// non-empty one appends a varint count followed by {u32 source, varint
// cursor} pairs. One structural consequence, pinned below: truncating a
// cursor-carrying frame exactly at the core/block boundary yields a *valid*
// cursor-free frame, so Data/Session-with-cursors do NOT belong in the
// every-truncation-rejected corpus.

TEST(CodecTest, DataWithCursorsRoundTrip) {
  Data d{MessageId{3, 99}, {1, 2, 3}, {{1, 40}, {2, 0}, {7, 1ULL << 33}}};
  EXPECT_EQ(round_trip(d), d);
}

TEST(CodecTest, SessionWithCursorsRoundTrip) {
  Session s{42, 17, {{3, 16}, {5, 300}}};
  EXPECT_EQ(round_trip(s), s);
}

TEST(CodecTest, CursorBlockCountedByEncodedSize) {
  std::vector<Message> msgs = {
      Message{Data{MessageId{1, 2}, std::vector<std::uint8_t>(127, 1),
                   {{2, 127}, {3, 128}}}},
      Message{Session{7, 1ULL << 40, {{1, 1ULL << 40}}}},
  };
  for (const Message& m : msgs) {
    EXPECT_EQ(encoded_size(m), encode(m).size()) << type_name(m);
  }
}

TEST(CodecGoldenTest, DataWithoutCursorsKeepsLegacyLayout) {
  // The load-bearing bit-identity guarantee: a cursor-free Data frame must
  // encode to the exact pre-piggyback byte sequence, not even a zero count.
  Data d{MessageId{3, 99}, {0xAA, 0xBB}};
  std::vector<std::uint8_t> want = {1};  // kData
  append_message_id(want, 3, 99);
  append_varint(want, 2);  // payload length
  want.push_back(0xAA);
  want.push_back(0xBB);
  EXPECT_EQ(encode(Message{d}), want);
  EXPECT_EQ(encoded_size(Message{d}), want.size());
}

TEST(CodecGoldenTest, SessionWithoutCursorsKeepsLegacyLayout) {
  Session s{6, 0x1234};
  std::vector<std::uint8_t> want = {2};  // kSession
  append_u32(want, 6);
  append_u64(want, 0x1234);
  EXPECT_EQ(encode(Message{s}), want);
  EXPECT_EQ(encoded_size(Message{s}), want.size());
}

TEST(CodecGoldenTest, DataWithCursorsEncodesByteExact) {
  Data d{MessageId{3, 99}, {0xAA}, {{2, 9}, {4, 300}}};
  std::vector<std::uint8_t> want = {1};  // kData
  append_message_id(want, 3, 99);
  append_varint(want, 1);  // payload length
  want.push_back(0xAA);
  append_varint(want, 2);    // cursor count
  append_u32(want, 2);       // cursor 0: source
  append_varint(want, 9);    //           cursor (1-byte varint)
  append_u32(want, 4);       // cursor 1: source
  append_varint(want, 300);  //           cursor (2-byte varint)
  EXPECT_EQ(encode(Message{d}), want);
  EXPECT_EQ(encoded_size(Message{d}), want.size());
  auto decoded = decode(want);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<Data>(*decoded), d);
}

TEST(CodecGoldenTest, SessionWithCursorsEncodesByteExact) {
  Session s{6, 0x1234, {{1, 5}}};
  std::vector<std::uint8_t> want = {2};  // kSession
  append_u32(want, 6);
  append_u64(want, 0x1234);
  append_varint(want, 1);  // cursor count
  append_u32(want, 1);     // cursor 0: source
  append_varint(want, 5);  //           cursor
  EXPECT_EQ(encode(Message{s}), want);
  EXPECT_EQ(encoded_size(Message{s}), want.size());
  auto decoded = decode(want);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<Session>(*decoded), s);
}

TEST(CodecTest, CoreBoundaryCutOfCursorCarryingFrameIsTheCursorFreeFrame) {
  // The one valid truncation of a cursor-carrying frame: cutting exactly at
  // the core/block boundary produces the legacy cursor-free frame. This is
  // by construction (the block is optional-trailing), pinned here so the
  // truncation-fuzz corpus's exclusion of these frames stays explained.
  Data d{MessageId{3, 99}, {0xAA}, {{2, 9}}};
  Data core{MessageId{3, 99}, {0xAA}};
  auto full = encode(Message{d});
  auto core_bytes = encode(Message{core});
  ASSERT_LT(core_bytes.size(), full.size());
  std::span<const std::uint8_t> cut(full.data(), core_bytes.size());
  auto decoded = decode(cut);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<Data>(*decoded), core);
  // Every *other* truncation of the block still rejects.
  for (std::size_t n = core_bytes.size() + 1; n < full.size(); ++n) {
    std::span<const std::uint8_t> prefix(full.data(), n);
    EXPECT_FALSE(decode(prefix).has_value()) << "cut at " << n;
  }
}

TEST(CodecTest, HandoffAndShedNestingStripsCursors) {
  // Data nested inside Handoff/Shed is parsed sequentially without a length
  // prefix, so the optional trailing block cannot exist there: the nested
  // encoding is always the cursor-free core, and cursors on an input Data
  // are dropped by design (buffered copies are cursor-free anyway).
  Data d{MessageId{1, 1}, {7, 8}, {{2, 9}}};
  Data stripped{MessageId{1, 1}, {7, 8}};

  auto ho = decode(encode(Message{Handoff{{d}}}));
  ASSERT_TRUE(ho.has_value());
  ASSERT_EQ(std::get<Handoff>(*ho).messages.size(), 1u);
  EXPECT_EQ(std::get<Handoff>(*ho).messages[0], stripped);

  auto sh = decode(encode(Message{Shed{4, d}}));
  ASSERT_TRUE(sh.has_value());
  EXPECT_EQ(std::get<Shed>(*sh).message, stripped);
}

TEST(CodecNegativeTest, HostileDataCursorCountRejected) {
  // A Data frame whose trailing block claims 2^40 cursors: rejected on the
  // bounds check, never allocated.
  std::vector<std::uint8_t> bytes = {1};  // kData
  append_message_id(bytes, 7, 42);
  append_varint(bytes, 1);  // payload length
  bytes.push_back(0xAA);
  append_varint(bytes, 1ULL << 40);  // cursor count
  EXPECT_FALSE(decode(bytes).has_value());

  std::vector<std::uint8_t> capped = {1};
  append_message_id(capped, 7, 42);
  append_varint(capped, 0);  // empty payload
  append_varint(capped, kMaxRepeated + 1);
  EXPECT_FALSE(decode(capped).has_value());
}

TEST(CodecNegativeTest, ZeroCursorCountRejected) {
  // A present-but-empty block is never emitted (empty encodes as absent),
  // so a zero count is hostile — and rejecting it is what keeps the old
  // trailing-garbage property: legacy frame + 0x00 still fails to decode.
  for (std::uint8_t tag : {std::uint8_t{1}, std::uint8_t{2}}) {
    std::vector<std::uint8_t> bytes =
        tag == 1 ? encode(Message{Data{MessageId{3, 4}, {1, 2}}})
                 : encode(Message{Session{1, 99}});
    bytes.push_back(0x00);  // cursor count = 0
    EXPECT_FALSE(decode(bytes).has_value()) << "tag " << int(tag);
  }
}

TEST(CodecNegativeTest, DataTruncatedMidCursorBlockRejected) {
  // The advertised cursor count exceeds the cursors actually present.
  std::vector<std::uint8_t> bytes = {1};  // kData
  append_message_id(bytes, 7, 42);
  append_varint(bytes, 0);  // empty payload
  append_varint(bytes, 2);  // claims two cursors
  append_u32(bytes, 2);
  append_varint(bytes, 5);  // only one follows
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(CodecFuzzTest, RandomMutationOfCursorCarryingDataNeverCrashes) {
  RandomEngine rng(0xC0C05);
  auto base = encode(
      Message{Data{MessageId{1, 1}, {1, 2, 3}, {{2, 40}, {3, 1ULL << 20}}}});
  for (int trial = 0; trial < 5000; ++trial) {
    auto bytes = base;
    std::size_t pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1));
    bytes[pos] = static_cast<std::uint8_t>(rng.next_u32());
    auto decoded = decode(bytes);
    if (decoded) {
      (void)encode(*decoded);
    }
  }
}

}  // namespace
}  // namespace rrmp::proto
