// Unit tests: per-source loss detection (gaps, session messages, hints,
// history bitmaps).
#include <gtest/gtest.h>

#include "rrmp/sequence_tracker.h"

namespace rrmp {
namespace {

TEST(SequenceTrackerTest, InOrderDeliveryNoGaps) {
  SequenceTracker t;
  for (std::uint64_t s = 1; s <= 5; ++s) {
    auto obs = t.observe_data(s);
    EXPECT_TRUE(obs.is_new);
    EXPECT_TRUE(obs.new_gaps.empty());
  }
  EXPECT_EQ(t.next_expected(), 6u);
  EXPECT_EQ(t.received_count(), 5u);
  EXPECT_EQ(t.missing_count(), 0u);
}

TEST(SequenceTrackerTest, GapDetectedOnJump) {
  SequenceTracker t;
  t.observe_data(1);
  auto obs = t.observe_data(4);
  EXPECT_TRUE(obs.is_new);
  EXPECT_EQ(obs.new_gaps, (std::vector<std::uint64_t>{2, 3}));
  EXPECT_EQ(t.missing(), (std::vector<std::uint64_t>{2, 3}));
  EXPECT_EQ(t.next_expected(), 2u);
}

TEST(SequenceTrackerTest, GapNotReReportedOnLaterData) {
  SequenceTracker t;
  t.observe_data(5);  // gaps 1..4 reported
  auto obs = t.observe_data(7);
  EXPECT_EQ(obs.new_gaps, (std::vector<std::uint64_t>{6}));  // only the new one
}

TEST(SequenceTrackerTest, FillingGapCompacts) {
  SequenceTracker t;
  t.observe_data(1);
  t.observe_data(3);
  EXPECT_EQ(t.next_expected(), 2u);
  t.observe_data(2);
  EXPECT_EQ(t.next_expected(), 4u);
  EXPECT_EQ(t.missing_count(), 0u);
}

TEST(SequenceTrackerTest, DuplicatesIgnored) {
  SequenceTracker t;
  t.observe_data(1);
  t.observe_data(3);
  auto dup1 = t.observe_data(1);
  auto dup3 = t.observe_data(3);
  EXPECT_FALSE(dup1.is_new);
  EXPECT_FALSE(dup3.is_new);
  EXPECT_EQ(t.received_count(), 2u);
}

TEST(SequenceTrackerTest, SequenceZeroIsMalformed) {
  SequenceTracker t;
  auto obs = t.observe_data(0);
  EXPECT_FALSE(obs.is_new);
  EXPECT_FALSE(t.has(0));
  EXPECT_EQ(t.received_count(), 0u);
}

TEST(SequenceTrackerTest, SessionRevealsTailLoss) {
  SequenceTracker t;
  t.observe_data(1);
  t.observe_data(2);
  auto gaps = t.observe_session(5);
  EXPECT_EQ(gaps, (std::vector<std::uint64_t>{3, 4, 5}));
  EXPECT_EQ(t.max_known(), 5u);
  // A second identical session adds nothing.
  EXPECT_TRUE(t.observe_session(5).empty());
  // An older session adds nothing either.
  EXPECT_TRUE(t.observe_session(3).empty());
}

TEST(SequenceTrackerTest, SessionOnFreshTrackerReportsAll) {
  SequenceTracker t;
  auto gaps = t.observe_session(3);
  EXPECT_EQ(gaps, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(t.missing_count(), 3u);
}

TEST(SequenceTrackerTest, HintActsLikeSession) {
  SequenceTracker t;
  auto gaps = t.observe_hint(2);
  EXPECT_EQ(gaps, (std::vector<std::uint64_t>{1, 2}));
}

TEST(SequenceTrackerTest, HasReflectsBothPaths) {
  SequenceTracker t;
  t.observe_data(1);
  t.observe_data(5);
  EXPECT_TRUE(t.has(1));
  EXPECT_TRUE(t.has(5));
  EXPECT_FALSE(t.has(3));
  EXPECT_FALSE(t.has(6));
}

TEST(SequenceTrackerTest, MissingCountMatchesMissingList) {
  SequenceTracker t;
  t.observe_data(10);
  t.observe_data(3);
  EXPECT_EQ(t.missing_count(), t.missing().size());
  EXPECT_EQ(t.missing_count(), 8u);  // 1,2,4..9
}

TEST(SequenceTrackerTest, HistoryEncodesPrefixAndBitmap) {
  SequenceTracker t;
  t.observe_data(1);
  t.observe_data(2);
  t.observe_data(5);  // out of order: bitmap needed
  proto::SourceHistory h = t.history(9, 4);
  EXPECT_EQ(h.source, 9u);
  EXPECT_EQ(h.next_expected, 3u);
  ASSERT_FALSE(h.bitmap.empty());
  // Offset of seq 5 from next_expected 3 is 2.
  EXPECT_TRUE(h.bitmap[0] & (1ULL << 2));
  EXPECT_FALSE(h.bitmap[0] & (1ULL << 0));  // seq 3 missing
}

TEST(SequenceTrackerTest, HistoryEmptyBitmapWhenContiguous) {
  SequenceTracker t;
  t.observe_data(1);
  t.observe_data(2);
  proto::SourceHistory h = t.history(0, 4);
  EXPECT_EQ(h.next_expected, 3u);
  EXPECT_TRUE(h.bitmap.empty());
}

TEST(SequenceTrackerTest, HistoryBitmapRespectsWordCap) {
  SequenceTracker t;
  t.observe_data(1000);  // huge gap
  proto::SourceHistory h = t.history(0, 2);
  EXPECT_LE(h.bitmap.size(), 2u);
}

TEST(SequenceTrackerTest, LargeSequenceSpace) {
  // A huge forward jump is enumerated in bounded, resumable chunks: each
  // observation surfaces at most kMaxGapsPerObservation gaps, and the
  // periodic session stream drains the rest — nothing is lost, nothing is
  // allocated all at once.
  SequenceTracker t;
  t.observe_data(1);
  auto obs = t.observe_data(100001);
  EXPECT_EQ(obs.new_gaps.size(), SequenceTracker::kMaxGapsPerObservation);
  EXPECT_EQ(t.missing_count(), SequenceTracker::kMaxGapsPerObservation);
  EXPECT_EQ(t.announced(), 100001u);
  EXPECT_LT(t.max_known(), t.announced());

  std::size_t total = obs.new_gaps.size();
  while (t.max_known() < t.announced()) {
    std::size_t before = total;
    total += t.observe_session(100001).size();
    ASSERT_GT(total, before) << "resumption must make progress";
  }
  EXPECT_EQ(total, 99999u);
  EXPECT_EQ(t.missing_count(), 99999u);
  EXPECT_EQ(t.max_known(), 100001u);
}

TEST(SequenceTrackerTest, StalledSenderRepeatedSessionAddsNoState) {
  // A stalled sender re-announcing the same highest seq must not grow any
  // internal state or re-report losses (the window-edge audit: repeated
  // sessions at the horizon are the steady state of a quiet stream).
  SequenceTracker t;
  t.observe_data(1);
  auto first = t.observe_session(4);
  EXPECT_EQ(first, (std::vector<std::uint64_t>{2, 3, 4}));
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(t.observe_session(4).empty());
  }
  EXPECT_EQ(t.missing_count(), 3u);
  EXPECT_EQ(t.out_of_order_count(), 0u);
  EXPECT_EQ(t.max_known(), 4u);
  EXPECT_EQ(t.announced(), 4u);
}

TEST(SequenceTrackerTest, DuplicatesAtWindowEdgeDontPinMemory) {
  SequenceTracker t;
  t.observe_data(1);
  t.observe_data(5);  // 5 is out of order; gaps 2..4
  std::size_t ooo = t.out_of_order_count();
  for (int i = 0; i < 8; ++i) t.observe_data(5);
  EXPECT_EQ(t.out_of_order_count(), ooo);
  EXPECT_EQ(t.missing_count(), 3u);
  // Filling the gap compacts the out-of-order set entirely.
  t.observe_data(2);
  t.observe_data(3);
  t.observe_data(4);
  EXPECT_EQ(t.out_of_order_count(), 0u);
  EXPECT_EQ(t.next_expected(), 6u);
  EXPECT_EQ(t.missing_count(), 0u);
}

TEST(SequenceTrackerTest, MissingCountConsistentMidResumption) {
  // While a capped enumeration is still draining, missing_count() must
  // count exactly the gaps reported so far — not the whole announced span
  // (misreporting) and not fewer (silent drops).
  SequenceTracker t;
  std::uint64_t span = SequenceTracker::kMaxGapsPerObservation * 3;
  auto gaps = t.observe_session(span);
  EXPECT_EQ(gaps.size(), SequenceTracker::kMaxGapsPerObservation);
  EXPECT_EQ(t.missing_count(), gaps.size());
  EXPECT_EQ(t.missing().size(), t.missing_count());
  // Data received beyond the enumeration horizon is held but not yet
  // counted missing-adjacent; resumption walks up to it without
  // double-reporting.
  std::size_t total = gaps.size();
  while (t.max_known() < t.announced()) {
    total += t.observe_session(span).size();
    EXPECT_EQ(t.missing_count(), total);
  }
  EXPECT_EQ(total, span);
}

TEST(SequenceTrackerTest, CompactAfterCappedEnumerationStaysConsistent) {
  // Filling the head of a partially-enumerated span compacts past gaps the
  // enumerator already walked; the horizon bookkeeping must follow.
  SequenceTracker t;
  std::uint64_t span = SequenceTracker::kMaxGapsPerObservation + 100;
  t.observe_session(span);  // caps at kMaxGapsPerObservation
  // Deliver the whole span in order: every observation compacts.
  for (std::uint64_t s = 1; s <= span; ++s) t.observe_data(s);
  EXPECT_EQ(t.next_expected(), span + 1);
  EXPECT_EQ(t.missing_count(), 0u);
  EXPECT_EQ(t.out_of_order_count(), 0u);
  EXPECT_GE(t.max_known(), span);
  EXPECT_TRUE(t.observe_session(span).empty());
}

}  // namespace
}  // namespace rrmp
