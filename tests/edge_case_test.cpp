// Edge-case and failure-injection tests for the endpoint: search cache,
// relay suppression, query back-off races, multiple sources, control-plane
// loss, full-stack soak.
#include <gtest/gtest.h>

#include "harness/cluster.h"

namespace rrmp::harness {
namespace {

TEST(SearchCache, StragglerRedirectedWithoutNewSearch) {
  ClusterConfig cc;
  cc.region_sizes = {20, 1};
  cc.seed = 101;
  Cluster cluster(cc);
  std::vector<MemberId> region0 = cluster.region_members(0);
  MessageId id = cluster.inject_data_to(region0[0], 1, region0);
  for (MemberId m : region0) {
    if (m == 4) {
      cluster.force_long_term(m, id);
    } else {
      cluster.force_discard(m, id);
    }
  }
  MemberId requester = cluster.region_members(1)[0];
  cluster.inject_remote_request(7, id, requester);
  cluster.run_until_quiet(Duration::seconds(2));
  std::uint64_t searches_first = cluster.metrics().counters().searches_started;
  EXPECT_GE(searches_first, 1u);

  // A second remote request shortly after: the found-cache at member 7
  // redirects straight to the holder with no new search.
  cluster.inject_remote_request(7, id, requester);
  cluster.run_until_quiet(Duration::seconds(1));
  EXPECT_EQ(cluster.metrics().counters().searches_started, searches_first);
  EXPECT_GE(cluster.metrics().remote_repairs_for(id), 2u);
}

TEST(SearchCache, ExpiresAfterTtl) {
  ClusterConfig cc;
  cc.region_sizes = {10, 1};
  cc.seed = 102;
  cc.protocol.search_cache_ttl = Duration::millis(50);
  Cluster cluster(cc);
  std::vector<MemberId> region0 = cluster.region_members(0);
  MessageId id = cluster.inject_data_to(region0[0], 1, region0);
  for (MemberId m : region0) {
    if (m == 2) {
      cluster.force_long_term(m, id);
    } else {
      cluster.force_discard(m, id);
    }
  }
  MemberId requester = cluster.region_members(1)[0];
  cluster.inject_remote_request(5, id, requester);
  cluster.run_until_quiet(Duration::seconds(1));
  std::uint64_t searches_first = cluster.metrics().counters().searches_started;

  // Long after the cache TTL, the same entry point must search again.
  cluster.run_for(Duration::millis(200));
  cluster.inject_remote_request(5, id, requester);
  cluster.run_until_quiet(Duration::seconds(1));
  EXPECT_GT(cluster.metrics().counters().searches_started, searches_first);
}

TEST(RegionalRelay, BackoffSuppressesDuplicatesWhenWindowExceedsLatency) {
  auto run = [](Duration backoff, std::uint64_t seed) {
    ClusterConfig cc;
    cc.region_sizes = {10, 20};
    cc.inter_one_way = Duration::millis(15);  // repairs land inside T
    cc.protocol.lambda = 5.0;                 // several concurrent repairs
    cc.protocol.regional_backoff = backoff;
    cc.seed = seed;
    Cluster cluster(cc);
    std::vector<MemberId> parent = cluster.region_members(0);
    cluster.inject_data_to(parent[0], 1, parent);
    cluster.inject_session_to(parent[0], 1, cluster.region_members(1));
    cluster.run_until_quiet(Duration::seconds(3));
    return cluster.metrics().counters();
  };
  double none = 0, with = 0;
  std::uint64_t suppressed = 0;
  for (std::uint64_t s = 0; s < 10; ++s) {
    none += static_cast<double>(run(Duration::zero(), 200 + s).regional_multicasts);
    auto c = run(Duration::millis(15), 200 + s);
    with += static_cast<double>(c.regional_multicasts);
    suppressed += c.relays_suppressed;
  }
  EXPECT_LT(with, none);
  EXPECT_GT(suppressed, 0u);
}

TEST(QueryBackoff, RepliesSuppressedByEarlierAnnouncement) {
  ClusterConfig cc;
  cc.region_sizes = {30, 1};
  cc.seed = 103;
  cc.protocol.search_strategy = Config::SearchStrategy::kMulticastQuery;
  cc.protocol.query_backoff_unit = Duration::millis(10);  // wide window
  cc.protocol.query_backoff_c = 6.0;                      // U(0, 60ms)
  Cluster cluster(cc);
  std::vector<MemberId> region0 = cluster.region_members(0);
  MessageId id = cluster.inject_data_to(region0[0], 1, region0);
  cluster.force_discard(region0[5], id);  // the query entry point
  MemberId requester = cluster.region_members(1)[0];
  cluster.inject_remote_request(region0[5], id, requester);
  cluster.run_until_quiet(Duration::seconds(1));
  // 29 members hold the message, but the wide back-off window suppresses
  // most replies (window 60ms >> 5ms propagation).
  EXPECT_LT(cluster.metrics().counters().searches_completed, 8u);
  EXPECT_GT(cluster.metrics().counters().relays_suppressed, 15u);
  EXPECT_TRUE(cluster.endpoint(requester).has_received(id));
}

TEST(MultiSource, IndependentSequenceSpacesPerSource) {
  ClusterConfig cc;
  cc.region_sizes = {15};
  cc.data_loss = 0.3;
  cc.seed = 104;
  Cluster cluster(cc);
  // Three different members multicast concurrently.
  std::vector<MessageId> ids;
  for (int round = 0; round < 3; ++round) {
    for (MemberId sender : {0u, 5u, 9u}) {
      ids.push_back(cluster.endpoint(sender).multicast({1, 2}));
    }
  }
  cluster.run_for(Duration::seconds(2));
  for (const MessageId& id : ids) {
    EXPECT_TRUE(cluster.all_received(id))
        << "source " << id.source << " seq " << id.seq;
  }
  // Sequence spaces did not interfere: 3 messages per source.
  for (MemberId sender : {0u, 5u, 9u}) {
    EXPECT_EQ(cluster.endpoint(sender).highest_sent(), 3u);
  }
}

TEST(ControlLoss, RecoveryRetriesThroughLostRequestsAndRepairs) {
  ClusterConfig cc;
  cc.region_sizes = {20};
  cc.control_loss = 0.3;  // 30% of requests/repairs vanish
  cc.seed = 105;
  std::get<buffer::TwoPhaseParams>(cc.policy).C = 12.0;  // hold copies through the noise
  Cluster cluster(cc);
  std::vector<MemberId> holders = {0, 1, 2, 3, 4};
  MessageId id = cluster.inject(0, 1, holders);
  cluster.run_for(Duration::seconds(5));
  EXPECT_TRUE(cluster.all_received(id));
  // Retries were visibly needed.
  EXPECT_GT(cluster.metrics().counters().local_requests_sent, 15u);
  EXPECT_GT(cluster.network().stats().dropped, 0u);
}

TEST(Handoff, ToMemberAlreadyHoldingLongTermIsIdempotent) {
  ClusterConfig cc;
  cc.region_sizes = {3};
  cc.seed = 106;
  Cluster cluster(cc);
  MessageId id = cluster.inject_data_to(0, 1, cluster.region_members(0));
  cluster.force_long_term(1, id);
  cluster.force_long_term(2, id);
  cluster.force_discard(0, id);
  // Member 1 leaves; its handoff can only go to 0 or 2.
  cluster.leave(1);
  cluster.run_for(Duration::millis(50));
  // No duplication: each survivor holds at most one copy.
  std::size_t total = cluster.count_buffered(id);
  EXPECT_GE(total, 1u);
  EXPECT_LE(total, 2u);
  EXPECT_EQ(cluster.count_long_term(id), total);
}

TEST(Repair, UnknownSourceCreatesTracker) {
  ClusterConfig cc;
  cc.region_sizes = {4};
  cc.seed = 107;
  Cluster cluster(cc);
  // A repair arrives for a source member 3 has never heard of.
  proto::Repair r{MessageId{2, 5}, {1, 2, 3}, false};
  cluster.endpoint(3).handle_message(proto::Message{r}, 1);
  EXPECT_TRUE(cluster.endpoint(3).has_received(MessageId{2, 5}));
  // Gaps 1..4 of that source were detected from the jump to seq 5.
  EXPECT_EQ(cluster.endpoint(3).missing_from(2).size(), 4u);
}

TEST(Soak, FullStackWithChurnLossAndFailureDetection) {
  ClusterConfig cc;
  cc.region_sizes = {20, 15, 10};
  cc.data_loss = 0.25;
  cc.control_loss = 0.02;
  cc.jitter = 0.2;
  cc.seed = 108;
  std::get<buffer::TwoPhaseParams>(cc.policy).C = 8.0;
  cc.protocol.lambda = 2.0;
  cc.protocol.measure_rtt = true;
  Cluster cluster(cc);

  // 60 messages over 600 ms.
  for (int i = 0; i < 60; ++i) {
    cluster.schedule_script(TimePoint::zero() + Duration::millis(10) * i,
                              [&cluster] {
                                cluster.endpoint(0).multicast({0xAA, 0xBB});
                              });
  }
  // Churn: two graceful leaves, one crash, spread across the run.
  cluster.schedule_script(TimePoint::zero() + Duration::millis(150),
                            [&cluster] { cluster.leave(7); });
  cluster.schedule_script(TimePoint::zero() + Duration::millis(300),
                            [&cluster] { cluster.crash(25); });
  cluster.schedule_script(TimePoint::zero() + Duration::millis(450),
                            [&cluster] { cluster.leave(40); });

  cluster.run_for(Duration::seconds(6));

  std::size_t undelivered = 0;
  for (std::uint64_t s = 1; s <= 60; ++s) {
    if (!cluster.all_received(MessageId{0, s})) ++undelivered;
  }
  EXPECT_EQ(undelivered, 0u);
  // Nobody is wedged.
  for (MemberId m = 0; m < cluster.size(); ++m) {
    if (!cluster.directory().alive(m)) continue;
    EXPECT_EQ(cluster.endpoint(m).active_recoveries(), 0u) << "member " << m;
    EXPECT_EQ(cluster.endpoint(m).active_searches(), 0u) << "member " << m;
  }
}

}  // namespace
}  // namespace rrmp::harness
