// Extension E1 — recovery latency vs hierarchy depth, plus the repair-tree
// makespan sweep.
//
// Part 1 (flat recovery, unchanged since PR 1): the paper evaluates
// buffering inside one region; its §2 protocol, however, chains regions: a
// loss at depth d is repaired by depth d-1, whose member may itself still
// be recovering (waiter forwarding). This quantifies the chain: time until
// a whole bottom region has a message that only the root region received,
// for chains of 1..4 hops.
//
// Part 2 (hierarchical repair): the same question at tree scale. A complete
// fanout-ary region tree with only the root holding the message; every
// region's representative funnels its region's NAKs and escalates up the
// tree (src/repair). The grid sweeps depth x fanout x region size; the
// scale points grow the same shape to 10^4 / 10^5 / 10^6 members.
// RRMP_HIERARCHY_POINTS=N runs only the first N scale points (CI smoke
// sets 2; unset runs all three).
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>

#include "analysis/stats.h"
#include "analysis/table.h"
#include "bench_util.h"
#include "harness/cluster.h"
#include "harness/experiments.h"

using namespace rrmp;

int main(int argc, char** argv) {
  constexpr std::size_t kRegionSize = 12;
  constexpr std::size_t kTrials = 30;
  const std::size_t shards = bench::parse_shards(argc, argv);

  bench::banner(
      "Extension E1: regional-loss repair latency vs hierarchy depth",
      "Chain of regions (12 members each, 50 ms one-way between levels);\n"
      "only the root region receives the message; every level below must\n"
      "recover it through its parent. lambda = 1.");

  analysis::Table t({"depth (hops)", "repair ms (mean)", "repair ms (p90)",
                     "remote requests"});
  std::vector<double> means;
  for (std::size_t depth = 1; depth <= 4; ++depth) {
    std::vector<double> completion;
    double remote_requests = 0;
    for (std::size_t trial = 0; trial < kTrials; ++trial) {
      harness::ClusterConfig cc;
      cc.region_sizes.assign(depth + 1, kRegionSize);
      cc.parents.resize(depth + 1);
      for (std::size_t r = 0; r <= depth; ++r) {
        cc.parents[r] = r == 0 ? 0 : static_cast<RegionId>(r - 1);
      }
      cc.seed = 0xE1'0000 + depth * 1000 + trial;
      harness::Cluster cluster(cc);

      std::vector<MemberId> root = cluster.region_members(0);
      MessageId id = cluster.inject_data_to(root[0], 1, root);
      for (RegionId r = 1; r <= depth; ++r) {
        cluster.inject_session_to(root[0], 1, cluster.region_members(r));
      }
      cluster.run_until_quiet(Duration::seconds(10));
      if (!cluster.all_received(id)) continue;  // rare unlucky draw
      TimePoint done = TimePoint::zero();
      for (const auto& ev : cluster.metrics().deliveries()) {
        if (ev.id == id && ev.at > done) done = ev.at;
      }
      completion.push_back(done.ms());
      remote_requests += static_cast<double>(
          cluster.metrics().counters().remote_requests_sent);
    }
    double mean = analysis::mean(completion);
    means.push_back(mean);
    t.add_row({analysis::Table::num(static_cast<std::uint64_t>(depth)),
               analysis::Table::num(mean, 1),
               analysis::Table::num(analysis::percentile(completion, 90), 1),
               analysis::Table::num(remote_requests / kTrials, 1)});
  }
  t.print(std::cout);
  bench::maybe_write_csv("ext_hierarchy_depth", t);

  bool monotone = bench::non_decreasing(means, /*slack=*/10.0);
  // Each extra hop costs at least most of one inter-region round trip.
  bool spaced = (means[3] - means[0]) > 150.0;

  bench::JsonReport report("ext_hierarchy_depth");
  report.add_table("repair latency vs hierarchy depth", t);
  report.add_scalar("mean_repair_ms_depth1", means.front());
  report.add_scalar("mean_repair_ms_depth4", means.back());
  report.verdict(monotone && spaced,
                 "repair latency grows ~linearly with hierarchy depth "
                 "(one remote RTT per hop)");

  // ---- Part 2: repair-tree makespan grid ----------------------------------

  bench::banner(
      "Extension E1b: repair-tree makespan (hierarchical repair on)",
      "Complete fanout-ary region tree; only the root region holds the\n"
      "message; representatives funnel NAKs and escalate level by level.\n"
      "Makespan = simulated time of the last delivery.");

  analysis::Table grid({"depth", "fanout", "region size", "members",
                        "makespan ms", "escalations", "recovered"});
  bool grid_recovered = true;
  bool grid_monotone = true;
  for (std::size_t fanout : {2, 3}) {
    for (std::size_t region_size : {12, 24}) {
      double prev = 0.0;
      for (std::size_t depth = 1; depth <= 3; ++depth) {
        harness::MakespanScenario sc;
        sc.fanout = fanout;
        sc.depth = depth;
        sc.region_size = region_size;
        sc.seed = 0xE1'B000 + fanout * 100 + region_size * 10 + depth;
        sc.shards = shards;
        harness::MakespanOutcome o = harness::run_makespan_point(sc);
        grid_recovered = grid_recovered && o.all_recovered;
        // Slack: one regional spread — deeper trees must cost more overall.
        if (o.makespan_ms + 20.0 < prev) grid_monotone = false;
        prev = o.makespan_ms;
        grid.add_row(
            {analysis::Table::num(static_cast<std::uint64_t>(depth)),
             analysis::Table::num(static_cast<std::uint64_t>(fanout)),
             analysis::Table::num(static_cast<std::uint64_t>(region_size)),
             analysis::Table::num(static_cast<std::uint64_t>(o.members)),
             analysis::Table::num(o.makespan_ms, 1),
             analysis::Table::num(o.remote_requests),
             o.all_recovered ? "yes" : "NO"});
        if (depth == 3 && region_size == 12) {
          report.add_scalar("makespan_ms_depth3_fanout" + std::to_string(fanout),
                            o.makespan_ms);
        }
      }
    }
  }
  grid.print(std::cout);
  bench::maybe_write_csv("ext_hierarchy_makespan", grid);
  report.add_table("repair-tree makespan grid", grid);
  report.verdict(grid_recovered, "every grid point fully recovered");
  report.verdict(grid_monotone,
                 "makespan grows with tree depth at every fanout/region size");

  // ---- Part 3: scale points ------------------------------------------------

  std::size_t max_points = 3;
  if (const char* env = std::getenv("RRMP_HIERARCHY_POINTS")) {
    max_points = static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
  }
  struct ScalePoint {
    std::size_t fanout, depth, region_size, sub_shard;
    const char* label;
  };
  // 10^4 exercises sub-sharded lanes (90-member regions split into 32-member
  // chunks); the larger points keep one lane per region — at 900 members a
  // region is already a good-sized lane and the 50 ms lookahead window does
  // far fewer barrier rounds than the 5 ms sub-sharded one.
  const ScalePoint points[] = {
      {10, 2, 90, 32, "1e4"},   // 111 regions, 9,990 members
      {10, 2, 900, 0, "1e5"},   // 111 regions, 99,900 members
      {10, 3, 900, 0, "1e6"},   // 1,111 regions, 999,900 members
  };
  analysis::Table scale({"members", "regions", "makespan ms", "escalations",
                         "sim events", "wall s", "recovered"});
  bool scale_recovered = true;
  std::size_t ran = 0;
  for (const ScalePoint& p : points) {
    if (ran >= max_points) break;
    ++ran;
    harness::MakespanScenario sc;
    sc.fanout = p.fanout;
    sc.depth = p.depth;
    sc.region_size = p.region_size;
    sc.sub_shard_members = p.sub_shard;
    sc.seed = 0xE1'5CA1;
    sc.shards = shards;
    auto wall0 = std::chrono::steady_clock::now();
    harness::MakespanOutcome o = harness::run_makespan_point(sc);
    double wall_s = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - wall0)
                        .count();
    scale_recovered = scale_recovered && o.all_recovered;
    scale.add_row({analysis::Table::num(static_cast<std::uint64_t>(o.members)),
                   analysis::Table::num(static_cast<std::uint64_t>(o.regions)),
                   analysis::Table::num(o.makespan_ms, 1),
                   analysis::Table::num(o.remote_requests),
                   analysis::Table::num(o.events),
                   analysis::Table::num(wall_s, 1),
                   o.all_recovered ? "yes" : "NO"});
    // Wall time is machine-dependent: console/table only, never a scalar.
    report.add_scalar("makespan_ms_" + std::string(p.label), o.makespan_ms);
  }
  scale.print(std::cout);
  bench::maybe_write_csv("ext_hierarchy_scale", scale);
  report.add_table("repair-tree makespan at scale", scale);
  report.verdict(scale_recovered, "every scale point fully recovered");

  report.write_if_requested();
  return report.all_ok() ? 0 : 1;
}
