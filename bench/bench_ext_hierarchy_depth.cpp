// Extension E1 — recovery latency vs hierarchy depth.
//
// The paper evaluates buffering inside one region; its §2 protocol,
// however, chains regions: a loss at depth d is repaired by depth d-1,
// whose member may itself still be recovering (waiter forwarding). This
// bench quantifies the chain: time until a whole bottom region has a
// message that only the root region received, for chains of 1..4 hops.
//
// Expected shape: latency grows roughly linearly with depth — each hop
// adds one remote round trip (2 x 50 ms) plus regional spread — while the
// per-hop remote request traffic stays ~lambda.
#include <iostream>

#include "analysis/stats.h"
#include "analysis/table.h"
#include "bench_util.h"
#include "harness/cluster.h"

using namespace rrmp;

int main() {
  constexpr std::size_t kRegionSize = 12;
  constexpr std::size_t kTrials = 30;

  bench::banner(
      "Extension E1: regional-loss repair latency vs hierarchy depth",
      "Chain of regions (12 members each, 50 ms one-way between levels);\n"
      "only the root region receives the message; every level below must\n"
      "recover it through its parent. lambda = 1.");

  analysis::Table t({"depth (hops)", "repair ms (mean)", "repair ms (p90)",
                     "remote requests"});
  std::vector<double> means;
  for (std::size_t depth = 1; depth <= 4; ++depth) {
    std::vector<double> completion;
    double remote_requests = 0;
    for (std::size_t trial = 0; trial < kTrials; ++trial) {
      harness::ClusterConfig cc;
      cc.region_sizes.assign(depth + 1, kRegionSize);
      cc.parents.resize(depth + 1);
      for (std::size_t r = 0; r <= depth; ++r) {
        cc.parents[r] = r == 0 ? 0 : static_cast<RegionId>(r - 1);
      }
      cc.seed = 0xE1'0000 + depth * 1000 + trial;
      harness::Cluster cluster(cc);

      std::vector<MemberId> root = cluster.region_members(0);
      MessageId id = cluster.inject_data_to(root[0], 1, root);
      for (RegionId r = 1; r <= depth; ++r) {
        cluster.inject_session_to(root[0], 1, cluster.region_members(r));
      }
      cluster.run_until_quiet(Duration::seconds(10));
      if (!cluster.all_received(id)) continue;  // rare unlucky draw
      TimePoint done = TimePoint::zero();
      for (const auto& ev : cluster.metrics().deliveries()) {
        if (ev.id == id && ev.at > done) done = ev.at;
      }
      completion.push_back(done.ms());
      remote_requests += static_cast<double>(
          cluster.metrics().counters().remote_requests_sent);
    }
    double mean = analysis::mean(completion);
    means.push_back(mean);
    t.add_row({analysis::Table::num(static_cast<std::uint64_t>(depth)),
               analysis::Table::num(mean, 1),
               analysis::Table::num(analysis::percentile(completion, 90), 1),
               analysis::Table::num(remote_requests / kTrials, 1)});
  }
  t.print(std::cout);
  bench::maybe_write_csv("ext_hierarchy_depth", t);

  bool monotone = bench::non_decreasing(means, /*slack=*/10.0);
  // Each extra hop costs at least most of one inter-region round trip.
  bool spaced = (means[3] - means[0]) > 150.0;

  bench::JsonReport report("ext_hierarchy_depth");
  report.add_table("repair latency vs hierarchy depth", t);
  report.add_scalar("mean_repair_ms_depth1", means.front());
  report.add_scalar("mean_repair_ms_depth4", means.back());
  report.verdict(monotone && spaced,
                 "repair latency grows ~linearly with hierarchy depth "
                 "(one remote RTT per hop)");
  report.write_if_requested();
  return (monotone && spaced) ? 0 : 1;
}
