// Ablation A7 — RRMP's gap-driven randomized recovery vs the Bimodal
// Multicast anti-entropy engine it evolved from (paper §1–§2, [3]).
//
// Same lossy stream, same region, three engines:
//   gap-driven    : react to sequence gaps immediately (RRMP, §2.2)
//   anti-entropy  : periodic digests to one random member, pull on diff [3]
//   both          : gap-driven reaction + anti-entropy as a safety net
//
// Expected shape: gap-driven repairs in O(RTT); anti-entropy needs O(rounds)
// and pays continuous digest traffic even when nothing was lost.
#include <iostream>

#include "analysis/stats.h"
#include "analysis/table.h"
#include "bench_util.h"
#include "harness/cluster.h"

using namespace rrmp;

namespace {

struct EngineOutcome {
  bool all_delivered = true;
  double mean_delivery_ms = 0;  // loss-affected deliveries only
  double p99_delivery_ms = 0;
  std::uint64_t control_msgs = 0;
};

EngineOutcome run_engine(bool gap_driven, bool anti_entropy,
                         std::uint64_t seed) {
  harness::ClusterConfig cc;
  cc.region_sizes = {40};
  cc.data_loss = 0.15;
  cc.seed = seed;
  cc.protocol.gap_driven_recovery = gap_driven;
  cc.protocol.anti_entropy = anti_entropy;
  cc.protocol.anti_entropy_interval = Duration::millis(50);
  cc.protocol.session_interval = Duration::millis(50);
  harness::Cluster cluster(cc);

  constexpr int kMessages = 40;
  for (int i = 0; i < kMessages; ++i) {
    cluster.schedule_script(TimePoint::zero() + Duration::millis(10) * i,
                              [&cluster] {
                                cluster.endpoint(0).multicast(
                                    std::vector<std::uint8_t>(64, 0x3C));
                              });
  }
  cluster.run_for(Duration::seconds(6));

  EngineOutcome out;
  // Delivery latency relative to the send time of each message.
  std::vector<double> latencies;
  for (const auto& ev : cluster.metrics().deliveries()) {
    double sent_ms = static_cast<double>((ev.id.seq - 1) * 10);
    double lat = ev.at.ms() - sent_ms;
    if (lat > 1.0) latencies.push_back(lat);  // skip direct deliveries
  }
  for (int seq = 1; seq <= kMessages; ++seq) {
    if (!cluster.all_received(MessageId{0, static_cast<std::uint64_t>(seq)})) {
      out.all_delivered = false;
    }
  }
  out.mean_delivery_ms = analysis::mean(latencies);
  out.p99_delivery_ms = analysis::percentile(latencies, 99);
  const auto& ts = cluster.network().stats();
  using MT = proto::MessageType;
  for (MT t : {MT::kSession, MT::kLocalRequest, MT::kRemoteRequest,
               MT::kSearchRequest, MT::kSearchFound, MT::kHistory}) {
    out.control_msgs += ts.sends_by_type[static_cast<std::size_t>(t)];
  }
  return out;
}

}  // namespace

int main() {
  bench::banner(
      "Ablation A7: gap-driven recovery (RRMP) vs anti-entropy (Bimodal "
      "Multicast)",
      "n = 40, 40-message stream, 15% initial loss. Latency counted for\n"
      "loss-affected deliveries only.");

  analysis::Table t({"engine", "delivered", "mean repair ms", "p99 repair ms",
                     "control msgs"});
  EngineOutcome gap, ae;
  struct Row {
    const char* name;
    bool g, a;
  };
  for (Row row : {Row{"gap-driven (RRMP)", true, false},
                  Row{"anti-entropy [3]", false, true},
                  Row{"both", true, true}}) {
    EngineOutcome o = run_engine(row.g, row.a, 0xAB7'0001);
    if (row.g && !row.a) gap = o;
    if (!row.g && row.a) ae = o;
    t.add_row({row.name, o.all_delivered ? "all" : "INCOMPLETE",
               analysis::Table::num(o.mean_delivery_ms, 1),
               analysis::Table::num(o.p99_delivery_ms, 1),
               analysis::Table::num(o.control_msgs)});
  }
  t.print(std::cout);

  bool ok = gap.all_delivered && ae.all_delivered &&
            gap.mean_delivery_ms < ae.mean_delivery_ms * 0.6;
  std::cout << "gap-driven repairs " << ae.mean_delivery_ms / gap.mean_delivery_ms
            << "x faster than pure anti-entropy\n";

  bench::JsonReport report("ablation_recovery_engine");
  report.add_table("recovery engine comparison", t);
  report.add_scalar("gap_mean_delivery_ms", gap.mean_delivery_ms);
  report.add_scalar("anti_entropy_mean_delivery_ms", ae.mean_delivery_ms);
  report.verdict(ok, "immediate gap-driven requests beat periodic digests on "
                     "repair latency");
  report.write_if_requested();
  return ok ? 0 : 1;
}
