// Ablation A3 — the remote-recovery rate parameter (§2.2).
//
// When an entire region misses a message, each member sends a remote
// request with probability lambda/|region| per round, so the expected
// number of requests per round is lambda, independent of region size.
// Larger lambda buys faster regional repair at the cost of more upstream
// traffic.
#include <iostream>

#include "analysis/table.h"
#include "bench_util.h"
#include "harness/experiments.h"

int main() {
  using namespace rrmp;
  constexpr std::size_t kTrials = 60;

  bench::banner(
      "Ablation A3: expected remote requests per round == lambda (Sec. 2.2)",
      "Whole child region (n in {20,50,100}) misses the message; parent has "
      "it.\nFirst-round remote request count and full-region repair time.");

  bool ok = true;
  analysis::Table t({"lambda", "region n", "requests round 1 (expect lambda)",
                     "repair ms"});
  for (double lambda : {0.5, 1.0, 2.0, 4.0}) {
    for (std::size_t n : {20, 50, 100}) {
      harness::LambdaResult r = harness::run_lambda_experiment(
          lambda, n, /*parent_size=*/20, kTrials,
          0xAB3'0000 + n + static_cast<int>(lambda * 10));
      ok = ok && std::abs(r.mean_first_round - lambda) < 0.35 * lambda + 0.25;
      t.add_row({analysis::Table::num(lambda, 1),
                 analysis::Table::num(static_cast<std::uint64_t>(n)),
                 analysis::Table::num(r.mean_first_round, 2),
                 analysis::Table::num(r.mean_recovery_ms, 1)});
    }
  }
  t.print(std::cout);

  bench::JsonReport report("ablation_lambda");
  report.add_table("remote requests per round vs lambda", t);
  report.verdict(ok, "first-round remote requests ~= lambda at every size");
  report.write_if_requested();
  return ok ? 0 : 1;
}
