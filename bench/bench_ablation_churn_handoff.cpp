// Ablation A5 — buffer handoff under churn (§3.2).
//
// Every long-term bufferer of a message departs. With graceful leaves the
// buffers transfer to random survivors and a later downstream request still
// succeeds; with crashes (no handoff) the message is gone from the region.
#include <iostream>

#include "analysis/table.h"
#include "bench_util.h"
#include "harness/experiments.h"

int main() {
  using namespace rrmp;
  constexpr std::size_t kRegion = 40;
  constexpr std::size_t kTrials = 25;

  bench::banner(
      "Ablation A5: long-term buffer handoff on voluntary leave (Sec. 3.2)",
      "n = 40; all long-term bufferers of a message depart; a downstream\n"
      "request then arrives. Without handoff the loss is unrecoverable.");

  analysis::Table t(
      {"departure", "trials", "recovered", "mean recovery ms"});
  harness::ChurnOutcome with =
      harness::run_churn_handoff(true, kRegion, kTrials, 0xAB5'0001);
  harness::ChurnOutcome without =
      harness::run_churn_handoff(false, kRegion, kTrials, 0xAB5'0001);
  t.add_row({"graceful leave (handoff)",
             analysis::Table::num(static_cast<std::uint64_t>(with.trials)),
             analysis::Table::num(static_cast<std::uint64_t>(with.recovered)),
             analysis::Table::num(with.mean_recovery_ms, 1)});
  t.add_row({"crash (no handoff)",
             analysis::Table::num(static_cast<std::uint64_t>(without.trials)),
             analysis::Table::num(static_cast<std::uint64_t>(without.recovered)),
             analysis::Table::num(without.mean_recovery_ms, 1)});
  t.print(std::cout);

  bench::JsonReport report("ablation_churn_handoff");
  report.add_table("recoverability after bufferer departure", t);
  report.add_scalar("recovered_with_handoff", static_cast<double>(with.recovered));
  report.add_scalar("recovered_without_handoff",
                    static_cast<double>(without.recovered));

  bool ok = with.recovered >= kTrials - 1 && without.recovered == 0;
  report.verdict(ok, "handoff preserves recoverability; crashes do not");
  report.write_if_requested();
  return ok ? 0 : 1;
}
