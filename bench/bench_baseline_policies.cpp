// Ablation A4 — the paper's positioning (§1, §3.4): two-phase buffering vs
// every scheme it is compared against.
//
//   buffer-everything : RMTP-style repair server; storage grows unbounded.
//   fixed-time        : Bimodal Multicast; a fixed TTL either wastes memory
//                       or (too short) risks unrecoverable losses.
//   stability         : discard only when the whole region acked — safe but
//                       pays continuous history-exchange traffic.
//   hash-based        : the authors' earlier deterministic scheme [11] —
//                       similar storage to two-phase, no search traffic,
//                       but O(region) hashing per message and no graceful
//                       handoff story.
//   two-phase         : this paper.
//
// One lossy 80-message stream through a 60-member region under every
// policy, identical seeds.
#include <iostream>

#include "analysis/table.h"
#include "bench_util.h"
#include "harness/experiments.h"

int main() {
  using namespace rrmp;
  harness::StreamScenario scenario;
  scenario.region_size = 60;
  scenario.messages = 80;
  scenario.data_loss = 0.05;
  scenario.seed = 0xAB4'0001;

  bench::banner(
      "Ablation A4: buffer policies on a lossy 80-message stream",
      "n = 60, 5% per-receiver loss on the initial multicast, payload 256 B.\n"
      "occupancy = time-averaged buffered messages per member;\n"
      "control = session+request+search+history+gossip messages.");

  analysis::Table t({"policy", "delivered", "unrecovered", "peak/member",
                     "occupancy/member", "final total", "recovery ms",
                     "control msgs", "control KB"});
  double everything_final = 0, two_phase_final = 0, two_phase_occ = 0;
  std::uint64_t stability_ctrl = 0, two_phase_ctrl = 0;
  bool all_ok = true;
  for (auto kind :
       {buffer::PolicyKind::kTwoPhase, buffer::PolicyKind::kFixedTime,
        buffer::PolicyKind::kBufferEverything, buffer::PolicyKind::kHashBased,
        buffer::PolicyKind::kStability}) {
    harness::PolicyOutcome o = harness::run_stream_scenario(kind, scenario);
    if (kind == buffer::PolicyKind::kBufferEverything) {
      everything_final = o.final_buffered_total;
    }
    if (kind == buffer::PolicyKind::kTwoPhase) {
      two_phase_final = o.final_buffered_total;
      two_phase_occ = o.mean_occupancy_per_member;
      two_phase_ctrl = o.control_msgs;
      all_ok = all_ok && o.all_delivered;
    }
    if (kind == buffer::PolicyKind::kStability) {
      stability_ctrl = o.control_msgs;
    }
    t.add_row({o.policy, o.all_delivered ? "all" : "INCOMPLETE",
               analysis::Table::num(o.unrecovered),
               analysis::Table::num(o.peak_buffer_per_member, 0),
               analysis::Table::num(o.mean_occupancy_per_member, 1),
               analysis::Table::num(o.final_buffered_total, 0),
               analysis::Table::num(o.mean_recovery_ms, 1),
               analysis::Table::num(o.control_msgs),
               analysis::Table::num(
                   static_cast<double>(o.control_bytes) / 1024.0, 0)});
  }
  t.print(std::cout);
  bench::maybe_write_csv("baseline_policies", t);

  bool storage_win = two_phase_final < 0.25 * everything_final;
  bool traffic_win = two_phase_ctrl < stability_ctrl / 2;
  std::cout << "two-phase residual buffer: " << two_phase_final << " msgs vs "
            << everything_final << " for buffer-everything; occupancy/member "
            << two_phase_occ << "\n";

  bench::JsonReport report("baseline_policies");
  report.add_table("buffering policy comparison", t);
  report.add_scalar("two_phase_final_buffered", two_phase_final);
  report.add_scalar("everything_final_buffered", everything_final);
  report.add_scalar("two_phase_occupancy_per_member", two_phase_occ);
  report.verdict(all_ok && storage_win && traffic_win,
                 "two-phase delivers everything with a fraction of the "
                 "storage of repair-server buffering and a fraction of the "
                 "control traffic of stability detection");
  report.write_if_requested();
  return (all_ok && storage_win && traffic_win) ? 0 : 1;
}
