// Figure 8: search time as the number of bufferers increases.
//
// A remote request arrives at a random member of a 100-member region where
// everyone received-then-discarded the message except k long-term
// bufferers. Search time is the time until a bufferer repairs the remote
// requester (0 when the request lands on a bufferer). 100 seeds per point.
//
// Paper: ~45-50 ms at k=1 falling to ~20 ms at k=10 (twice the RTT).
#include <iostream>

#include "analysis/table.h"
#include "bench_util.h"
#include "harness/experiments.h"

int main(int argc, char** argv) {
  using namespace rrmp;
  constexpr std::size_t kRegion = 100;
  constexpr std::size_t kTrials = 100;

  harness::ExperimentDefaults defaults;
  defaults.shards = bench::parse_shards(argc, argv);

  bench::banner("Figure 8: search time vs #bufferers",
                "n = 100, RTT = 10 ms, 100 trials per point (--shards=" +
                    std::to_string(defaults.shards) + ").");

  // Digitized from the paper's plot; approximate.
  const std::vector<double> paper_ms = {48, 38, 33, 29, 27, 25, 23.5, 22, 21, 20};

  analysis::Table t({"#bufferers", "paper ~ms", "measured ms"});
  std::vector<double> curve;
  for (std::size_t k = 1; k <= 10; ++k) {
    double ms =
        harness::mean_search_ms(kRegion, k, kTrials, 0xF16'8000 + k, defaults);
    curve.push_back(ms);
    t.add_row({analysis::Table::num(static_cast<std::uint64_t>(k)),
               analysis::Table::num(paper_ms[k - 1], 1),
               analysis::Table::num(ms, 1)});
  }
  t.print(std::cout);
  bench::maybe_write_csv("fig8_search_vs_bufferers", t);

  bench::JsonReport report("fig8_search_vs_bufferers");
  report.add_table("search time vs bufferer count", t);
  report.add_scalar("search_ms_k1", curve.front());
  report.add_scalar("search_ms_k10", curve.back());

  bool monotone = bench::non_increasing(curve, /*slack=*/3.0);
  bool endpoints_ok = curve.front() >= 30.0 && curve.front() <= 70.0 &&
                      curve.back() >= 10.0 && curve.back() <= 30.0;
  report.verdict(monotone && endpoints_ok,
                 "search time falls with bufferer count; ~2xRTT at k=10");
  report.write_if_requested();
  return (monotone && endpoints_ok) ? 0 : 1;
}
