// Figure 4: probability that *no* member long-term-buffers an idle message,
// as a function of C.
//
// Paper: decreases exponentially, e^-C; 0.25% at C = 6.
#include <cmath>
#include <iostream>

#include "analysis/analytic.h"
#include "analysis/table.h"
#include "bench_util.h"
#include "harness/experiments.h"

int main() {
  using namespace rrmp;
  constexpr std::size_t kRegion = 100;
  constexpr std::size_t kTrials = 2000000;

  bench::banner("Figure 4: P(no long-term bufferer) vs C",
                "n = 100, 2M Monte Carlo trials per C; paper: e^-C "
                "(36.8% at C=1 down to 0.25% at C=6).");

  analysis::Table t({"C", "e^-C % (paper)", "measured %"});
  std::vector<double> measured;
  for (int c = 1; c <= 6; ++c) {
    auto dist = harness::simulate_longterm_distribution(
        kRegion, static_cast<double>(c), kTrials, /*seed=*/0xF16'4000 + c, 2);
    double ana = analysis::prob_no_bufferer(static_cast<double>(c)) * 100.0;
    double mc = dist.p_none * 100.0;
    measured.push_back(mc);
    t.add_row({analysis::Table::num(static_cast<std::uint64_t>(c)),
               analysis::Table::num(ana, 3), analysis::Table::num(mc, 3)});
  }
  t.print(std::cout);
  bench::maybe_write_csv("fig4_no_bufferer", t);

  bench::JsonReport report("fig4_no_bufferer");
  report.add_table("P(no long-term bufferer) vs C", t);
  report.add_scalar("p_none_pct_C6", measured.back());

  // Exponential decay: each step down by a factor ~e (Binomial is slightly
  // below Poisson for finite n, so allow a band around e).
  bool ok = bench::non_increasing(measured);
  for (std::size_t i = 1; i < measured.size() && ok; ++i) {
    double ratio = measured[i - 1] / std::max(measured[i], 1e-9);
    ok = ratio > 2.2 && ratio < 3.6;
  }
  report.verdict(ok, "P(none) decays ~e^-C (factor ~2.7 per unit of C)");
  report.write_if_requested();
  return ok ? 0 : 1;
}
