// Shared helpers for the figure/ablation bench binaries.
//
// Every bench prints: the paper's (digitized, approximate) values next to
// the values measured on this implementation, plus a one-line shape verdict.
// Absolute numbers are not expected to match a 2002 testbed; the *shape*
// (monotonicity, ratios, who wins) is the reproduction target.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/table.h"

namespace rrmp::bench {

/// If RRMP_BENCH_CSV_DIR is set, also write `table` to
/// $RRMP_BENCH_CSV_DIR/<name>.csv so plots can be regenerated from data
/// files instead of scraping stdout.
inline void maybe_write_csv(const std::string& name,
                            const analysis::Table& table) {
  const char* dir = std::getenv("RRMP_BENCH_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return;
  std::string path = std::string(dir) + "/" + name + ".csv";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot write " << path << "\n";
    return;
  }
  table.print_csv(out);
  std::cout << "(csv written to " << path << ")\n";
}

inline void banner(const std::string& title, const std::string& setup) {
  std::cout << "\n=== " << title << " ===\n" << setup << "\n\n";
}

/// Parse `--shards=N` from argv (falling back to $RRMP_SHARDS, then 1):
/// worker threads for the trial-level fan-out in the sweep drivers. 0 means
/// hardware concurrency. The default of 1 keeps BENCH_baseline.json runs
/// sequential and therefore comparable across machines; pass --shards=0 for
/// the fastest local iteration. Results are byte-identical for any value.
/// A malformed value falls back to the sequential default (with a warning)
/// rather than being misread as 0 = maximum parallelism.
inline std::size_t parse_shards(int argc, char** argv) {
  auto parse = [](const char* s) -> std::size_t {
    // Reject negatives explicitly (at the first non-whitespace character,
    // matching where strtoul would accept a sign): strtoul silently wraps
    // "-1" to ULONG_MAX, i.e. maximum parallelism — the opposite of a safe
    // fallback.
    const char* p = s;
    while (*p == ' ' || *p == '\t') ++p;
    char* end = nullptr;
    unsigned long v = std::strtoul(p, &end, 10);
    if (end == p || *end != '\0' || *p == '-') {
      std::cerr << "warning: unparseable shard count '" << s
                << "', using --shards=1\n";
      return 1;
    }
    return static_cast<std::size_t>(v);
  };
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--shards=", 0) == 0) return parse(a.c_str() + 9);
  }
  if (const char* env = std::getenv("RRMP_SHARDS")) return parse(env);
  return 1;
}

inline void verdict(bool ok, const std::string& what) {
  std::cout << (ok ? "[SHAPE OK] " : "[SHAPE MISMATCH] ") << what << "\n";
}

// ------------------------------------------------------------- JSON report ----
//
// Machine-readable bench results. Each bench fills a JsonReport with its
// tables, named scalars, and shape verdicts; write_if_requested() serializes
// it to $RRMP_BENCH_JSON_DIR/<name>.json. The run_baselines.py driver sets
// the env var, runs the fig benches, and merges the per-bench files into
// BENCH_baseline.json at the repo root.

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Cells that parse fully as finite numbers are emitted as JSON numbers so
/// downstream tooling can diff baselines without re-parsing strings.
inline std::string cell_to_json(const std::string& cell) {
  if (!cell.empty()) {
    char* end = nullptr;
    double v = std::strtod(cell.c_str(), &end);
    if (end == cell.c_str() + cell.size() && std::isfinite(v)) {
      return cell;  // already a valid JSON number literal
    }
  }
  // Appends instead of operator+ chains: GCC 12's -Wrestrict false-fires on
  // inlined std::string concatenation at -O3 (GCC PR105651).
  std::string out;
  out.reserve(cell.size() + 2);
  out += '"';
  out += json_escape(cell);
  out += '"';
  return out;
}

class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}

  void add_table(const std::string& label, const analysis::Table& table) {
    std::ostringstream os;
    os << "{\"label\": \"" << json_escape(label) << "\", \"headers\": [";
    const auto& headers = table.headers();
    for (std::size_t c = 0; c < headers.size(); ++c) {
      os << (c ? ", " : "") << "\"" << json_escape(headers[c]) << "\"";
    }
    os << "], \"rows\": [";
    const auto& rows = table.row_cells();
    for (std::size_t r = 0; r < rows.size(); ++r) {
      os << (r ? ", [" : "[");
      for (std::size_t c = 0; c < rows[r].size(); ++c) {
        os << (c ? ", " : "") << cell_to_json(rows[r][c]);
      }
      os << "]";
    }
    os << "]}";
    tables_.push_back(os.str());
  }

  void add_scalar(const std::string& key, double value) {
    std::ostringstream os;
    if (std::isfinite(value)) {
      os << value;
    } else {
      os << "null";  // bare nan/inf tokens are not valid JSON
    }
    scalars_.emplace_back(key, os.str());
  }

  /// Prints the console verdict line and records it in the report.
  void verdict(bool ok, const std::string& what) {
    bench::verdict(ok, what);
    verdicts_.emplace_back(ok, what);
    all_ok_ = all_ok_ && ok;
  }

  bool all_ok() const { return all_ok_; }

  /// Serializes to $RRMP_BENCH_JSON_DIR/<name>.json when the env var is set;
  /// a no-op otherwise so plain console runs stay untouched.
  void write_if_requested() const {
    const char* dir = std::getenv("RRMP_BENCH_JSON_DIR");
    if (dir == nullptr || *dir == '\0') return;
    std::string path = std::string(dir) + "/" + name_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::cerr << "warning: cannot write " << path << "\n";
      return;
    }
    out << "{\n  \"bench\": \"" << json_escape(name_)
        << "\",\n  \"schema\": \"rrmp-bench/1\",\n  \"ok\": "
        << (all_ok_ ? "true" : "false") << ",\n  \"scalars\": {";
    for (std::size_t i = 0; i < scalars_.size(); ++i) {
      out << (i ? ", " : "") << "\"" << json_escape(scalars_[i].first)
          << "\": " << scalars_[i].second;
    }
    out << "},\n  \"verdicts\": [";
    for (std::size_t i = 0; i < verdicts_.size(); ++i) {
      out << (i ? ", " : "") << "{\"ok\": "
          << (verdicts_[i].first ? "true" : "false") << ", \"what\": \""
          << json_escape(verdicts_[i].second) << "\"}";
    }
    out << "],\n  \"tables\": [";
    for (std::size_t i = 0; i < tables_.size(); ++i) {
      out << (i ? ",\n    " : "\n    ") << tables_[i];
    }
    out << "\n  ]\n}\n";
    std::cout << "(json written to " << path << ")\n";
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> scalars_;
  std::vector<std::pair<bool, std::string>> verdicts_;
  std::vector<std::string> tables_;
  bool all_ok_ = true;
};

/// True if xs is non-increasing within `slack` (absolute).
inline bool non_increasing(const std::vector<double>& xs, double slack = 0.0) {
  for (std::size_t i = 1; i < xs.size(); ++i) {
    if (xs[i] > xs[i - 1] + slack) return false;
  }
  return true;
}

inline bool non_decreasing(const std::vector<double>& xs, double slack = 0.0) {
  for (std::size_t i = 1; i < xs.size(); ++i) {
    if (xs[i] + slack < xs[i - 1]) return false;
  }
  return true;
}

}  // namespace rrmp::bench
