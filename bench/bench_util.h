// Shared helpers for the figure/ablation bench binaries.
//
// Every bench prints: the paper's (digitized, approximate) values next to
// the values measured on this implementation, plus a one-line shape verdict.
// Absolute numbers are not expected to match a 2002 testbed; the *shape*
// (monotonicity, ratios, who wins) is the reproduction target.
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/table.h"

namespace rrmp::bench {

/// If RRMP_BENCH_CSV_DIR is set, also write `table` to
/// $RRMP_BENCH_CSV_DIR/<name>.csv so plots can be regenerated from data
/// files instead of scraping stdout.
inline void maybe_write_csv(const std::string& name,
                            const analysis::Table& table) {
  const char* dir = std::getenv("RRMP_BENCH_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return;
  std::string path = std::string(dir) + "/" + name + ".csv";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot write " << path << "\n";
    return;
  }
  table.print_csv(out);
  std::cout << "(csv written to " << path << ")\n";
}

inline void banner(const std::string& title, const std::string& setup) {
  std::cout << "\n=== " << title << " ===\n" << setup << "\n\n";
}

inline void verdict(bool ok, const std::string& what) {
  std::cout << (ok ? "[SHAPE OK] " : "[SHAPE MISMATCH] ") << what << "\n";
}

/// True if xs is non-increasing within `slack` (absolute).
inline bool non_increasing(const std::vector<double>& xs, double slack = 0.0) {
  for (std::size_t i = 1; i < xs.size(); ++i) {
    if (xs[i] > xs[i - 1] + slack) return false;
  }
  return true;
}

inline bool non_decreasing(const std::vector<double>& xs, double slack = 0.0) {
  for (std::size_t i = 1; i < xs.size(); ++i) {
    if (xs[i] + slack < xs[i - 1]) return false;
  }
  return true;
}

}  // namespace rrmp::bench
