// Extension — cooperative region-wide budget coordination: does telling a
// region *where* its copies live beat members evicting blindly?
//
// PR 4's capacity sweep showed recovery success degrading once the
// per-member budget undercuts the ~6 KB working set: members under pressure
// evict copies that requests still need, including the region's *last* copy
// of a message while a neighbor holds a redundant one. This sweep runs the
// identical scenario at the same budget points twice per point —
// uncoordinated (the PR 4 protocol, bit for bit) and coordinated (periodic
// BufferDigest gossip, replica-aware eviction that protects sole copies,
// and shed handoffs pushing sole copies to the least-loaded neighbor) —
// and compares recovery success head to head.
//
// Expected shape: with an unlimited budget coordination is invisible (no
// pressure, nothing to coordinate). Below the working set the coordinated
// curve sits strictly above the uncoordinated one: redundant copies go
// first, sole copies move instead of dying, so more requests find a living
// copy. The price is the digest traffic, which the table reports.
//
// RRMP_COORDINATION_POINTS=N (env) truncates the sweep to the unlimited
// anchor plus the N-1 smallest budgets — the CI release leg smoke-runs 2
// points so the coordination machinery is exercised on every PR.
#include <cstdlib>
#include <iostream>
#include <vector>

#include "analysis/table.h"
#include "bench_util.h"
#include "harness/experiments.h"

int main() {
  using namespace rrmp;

  // Identical to bench_ext_capacity_sweep's scenario, so the uncoordinated
  // column of this sweep and the capacity sweep are the same experiment.
  harness::StreamScenario scenario;
  scenario.region_size = 40;
  scenario.messages = 60;
  scenario.send_interval = Duration::millis(5);
  scenario.data_loss = 0.10;
  scenario.payload_bytes = 256;
  scenario.drain = Duration::millis(800);
  scenario.seed = 0xCA9'0001;

  // Unlimited anchor, one at-capacity point (2048: evictions happen but
  // every loss still recovers), then the degraded regime the tentpole is
  // about.
  std::vector<std::size_t> budgets = {0, 2048, 1536, 1024, 768, 512};
  if (const char* env = std::getenv("RRMP_COORDINATION_POINTS")) {
    std::size_t n = std::strtoul(env, nullptr, 10);
    if (n >= 2 && n < budgets.size()) {
      // Unlimited anchor + the n-1 smallest budgets: a smoke run must
      // exercise the digest/shed machinery, and only budgets below the
      // working set do.
      std::vector<std::size_t> pruned = {0};
      pruned.insert(pruned.end(),
                    budgets.end() - static_cast<std::ptrdiff_t>(n - 1),
                    budgets.end());
      budgets = std::move(pruned);
    }
  }

  bench::banner(
      "Extension: coordination sweep — cooperative vs isolated buffer budgets",
      "n = 40, 10% loss on the initial multicast, 60 msgs of 256 B, "
      "two-phase policy\n(T = 40 ms, C = 6). Same scenario and budget points "
      "as the capacity sweep;\neach point runs uncoordinated (isolated PR 4 "
      "budgets) and coordinated\n(digest gossip + replica-aware eviction + "
      "shed handoffs) back to back.");

  analysis::Table t({"budget B", "mode", "delivered", "recovery success",
                     "recovery ms", "evictions", "sheds", "unrecovered",
                     "digest msgs"});
  std::vector<double> uncoordinated_success;
  std::vector<double> coordinated_success;
  std::uint64_t total_sheds = 0, total_digests = 0;
  bool coordinated_never_worse = true;
  // The head-to-head claim: at every point where isolated budgets degrade
  // recovery, coordination recovers strictly more. (At saturated points
  // both sit at 1.0 — there is nothing left to win.)
  std::size_t degraded_points = 0, strictly_better = 0;
  for (std::size_t budget : budgets) {
    harness::CoordinationOutcome pair[2];
    for (bool coordinate : {false, true}) {
      harness::CoordinationOutcome o = harness::run_coordination_point(
          budget, coordinate, buffer::PolicyKind::kTwoPhase, scenario);
      pair[coordinate ? 1 : 0] = o;
      t.add_row({budget == 0 ? "unlimited"
                             : analysis::Table::num(
                                   static_cast<std::uint64_t>(budget)),
                 coordinate ? "coordinated" : "uncoordinated",
                 analysis::Table::num(o.delivered_fraction, 3),
                 analysis::Table::num(o.recovery_success, 3),
                 analysis::Table::num(o.mean_recovery_ms, 2),
                 analysis::Table::num(o.evictions),
                 analysis::Table::num(o.sheds),
                 analysis::Table::num(o.unrecovered),
                 analysis::Table::num(o.digest_msgs)});
      total_sheds += o.sheds;
      total_digests += o.digest_msgs;
    }
    uncoordinated_success.push_back(pair[0].recovery_success);
    coordinated_success.push_back(pair[1].recovery_success);
    if (pair[1].recovery_success < pair[0].recovery_success) {
      coordinated_never_worse = false;
    }
    if (pair[0].recovery_success < 0.999) {
      ++degraded_points;
      if (pair[1].recovery_success > pair[0].recovery_success) {
        ++strictly_better;
      }
    }
  }
  t.print(std::cout);
  bench::maybe_write_csv("ext_coordination_sweep", t);

  bench::JsonReport report("ext_coordination_sweep");
  report.add_table("coordinated vs uncoordinated recovery by budget", t);
  report.add_scalar("unlimited_recovery_success_uncoordinated",
                    uncoordinated_success.front());
  report.add_scalar("unlimited_recovery_success_coordinated",
                    coordinated_success.front());
  report.add_scalar("min_budget_recovery_success_uncoordinated",
                    uncoordinated_success.back());
  report.add_scalar("min_budget_recovery_success_coordinated",
                    coordinated_success.back());
  report.add_scalar("total_sheds", static_cast<double>(total_sheds));
  report.add_scalar("total_digest_msgs", static_cast<double>(total_digests));

  report.add_scalar("degraded_points", static_cast<double>(degraded_points));
  report.add_scalar("strictly_better_points",
                    static_cast<double>(strictly_better));

  report.verdict(uncoordinated_success.front() >= 0.999 &&
                     coordinated_success.front() >= 0.999,
                 "with an unlimited budget both modes recover every loss "
                 "(coordination is invisible without pressure)");
  report.verdict(degraded_points > 0 && strictly_better == degraded_points,
                 "at every budget point below the working set (uncoordinated "
                 "recovery degraded), coordination yields strictly higher "
                 "recovery success");
  report.verdict(coordinated_never_worse,
                 "coordination never reduces recovery success");
  report.verdict(total_sheds > 0,
                 "pressure actually exercised the shed path (sole copies "
                 "relocated instead of lost)");
  report.write_if_requested();
  return report.all_ok() ? 0 : 1;
}
