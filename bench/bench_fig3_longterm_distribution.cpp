// Figure 3: probability that k members buffer an idle message, for
// C in {5,6,7,8}.
//
// Paper: the long-term bufferer count is Binomial(n, C/n), approximated by
// Poisson(C) for large regions. We print the analytic Poisson pmf next to a
// Monte Carlo of the actual per-member C/n coin used by the two-phase
// policy (n = 100, as in §4).
#include <iostream>

#include "analysis/analytic.h"
#include "analysis/table.h"
#include "bench_util.h"
#include "harness/experiments.h"

int main() {
  using namespace rrmp;
  constexpr std::size_t kRegion = 100;
  constexpr std::size_t kTrials = 200000;
  constexpr std::size_t kMaxK = 16;

  bench::banner(
      "Figure 3: P(k long-term bufferers) for C = 5..8",
      "n = 100, 200k Monte Carlo trials of the per-member C/n decision;\n"
      "paper plots Poisson(C) pmf (peak ~15-20% near k=C).");

  bench::JsonReport report("fig3_longterm_distribution");
  bool shapes_ok = true;
  for (double C : {5.0, 6.0, 7.0, 8.0}) {
    auto dist = harness::simulate_longterm_distribution(
        kRegion, C, kTrials, /*seed=*/0xF16'3000 + static_cast<int>(C), kMaxK);
    analysis::Table t({"k", "Poisson(C) % (paper)", "Binomial MC %"});
    double peak_k = 0, peak_v = 0;
    for (std::size_t k = 0; k <= kMaxK; ++k) {
      double ana = analysis::poisson_pmf(C, k) * 100.0;
      double mc = dist.pmf[k] * 100.0;
      if (mc > peak_v) {
        peak_v = mc;
        peak_k = static_cast<double>(k);
      }
      t.add_row({analysis::Table::num(static_cast<std::uint64_t>(k)),
                 analysis::Table::num(ana), analysis::Table::num(mc)});
    }
    std::cout << "C = " << C << "  (measured mean " << dist.mean << ")\n";
    t.print(std::cout);
    report.add_table("C=" + analysis::Table::num(C, 0), t);
    report.add_scalar("mean_bufferers_C" + analysis::Table::num(C, 0),
                      dist.mean);
    // The mode of Poisson(C) is floor(C) (and C-1): peak must sit there.
    bool ok = peak_k >= C - 1.5 && peak_k <= C + 0.5;
    shapes_ok = shapes_ok && ok;
    std::cout << "\n";
  }
  report.verdict(shapes_ok, "distribution peaks at k ~= C for every C");
  report.write_if_requested();
  return shapes_ok ? 0 : 1;
}
