// Ablation A2 — why RRMP uses a random search instead of multicasting the
// request with a back-off (§3.3).
//
// The back-off window is sized for the expected C long-term bufferers. But
// a message can go idle *prematurely* at one member while many members
// still buffer it; a multicast query then triggers a storm of replies the
// window cannot suppress (the paper's "message implosion"). The random
// search pays a little latency and never implodes.
#include <iostream>

#include "analysis/table.h"
#include "bench_util.h"
#include "harness/experiments.h"

int main() {
  using namespace rrmp;
  constexpr std::size_t kRegion = 100;
  constexpr std::size_t kTrials = 40;

  bench::banner(
      "Ablation A2: random search vs multicast query + back-off (Sec. 3.3)",
      "n = 100; back-off window sized for C = 6. 'holders' = members still\n"
      "buffering when the query arrives at a prematurely-idle member.\n"
      "replies = repairs sent to the requester (1 is ideal).");

  analysis::Table t({"strategy", "holders", "mean replies", "mean time ms"});
  double implosion_replies = 0, search_replies = 0;
  for (auto strategy : {Config::SearchStrategy::kRandomSearch,
                        Config::SearchStrategy::kMulticastQuery}) {
    for (std::size_t holders : {6, 50, 99}) {
      harness::SearchStrategyOutcome o = harness::run_search_strategy(
          strategy, kRegion, holders, kTrials, 0xAB2'0000 + holders);
      if (holders == 99) {
        if (strategy == Config::SearchStrategy::kMulticastQuery) {
          implosion_replies = o.mean_replies;
        } else {
          search_replies = o.mean_replies;
        }
      }
      t.add_row({o.strategy,
                 analysis::Table::num(static_cast<std::uint64_t>(holders)),
                 analysis::Table::num(o.mean_replies, 1),
                 analysis::Table::num(o.mean_search_ms, 2)});
    }
  }
  t.print(std::cout);

  bool ok = implosion_replies > 5.0 && search_replies <= 3.0;
  std::cout << "multicast-query replies with 99 premature holders: "
            << implosion_replies << " (implosion), random search: "
            << search_replies << "\n";

  bench::JsonReport report("ablation_search_strategy");
  report.add_table("search strategy comparison", t);
  report.add_scalar("multicast_query_replies_99_holders", implosion_replies);
  report.add_scalar("random_search_replies_99_holders", search_replies);
  report.verdict(ok,
                 "multicast query implodes when the idle estimate is wrong; "
                 "random search stays at ~1 reply");
  report.write_if_requested();
  return ok ? 0 : 1;
}
