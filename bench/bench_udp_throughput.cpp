// Real-transport throughput: the loopback-UDP bus under a windowed flood.
//
// Section 1 (bus level): member 0 floods 256-byte datagrams round-robin to
// three receivers on one bus, windowed on outstanding datagrams, once per
// syscall mode — the scalar recvfrom/sendto path (the pre-batching
// behaviour, kept as the fallback), the batched recvmmsg/sendmmsg +
// segment-ring path at two batch sizes, and the GSO/GRO segmentation-
// offload path (UDP_SEGMENT trains out, UDP_GRO coalescing in). Reported
// per cell: delivered msgs/s, p99 end-to-end delivery latency (payloads
// carry their send timestamp), and syscalls per delivered message
// (send + recv + poll).
//
// Section 2 (runtime level): unmodified protocol endpoints (UdpRuntime)
// disseminate a message stream with no loss, single-worker vs
// one-worker-per-core, reporting protocol-level delivery throughput. On a
// single-core host both cells collapse to one worker; the cell is
// informational (no shape verdict) for that reason.
//
// RRMP_UDP_SECONDS truncates each flood cell's duration for CI smoke runs
// (default 1.5 s per cell).
#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "harness/udp_runtime.h"
#include "net/udp_host.h"

namespace rrmp {
namespace {

constexpr std::uint16_t kBasePort = 41200;
constexpr std::size_t kReceivers = 3;
constexpr std::size_t kPayloadBytes = 256;
constexpr std::size_t kWindow = 256;  // max outstanding datagrams

double flood_seconds() {
  if (const char* env = std::getenv("RRMP_UDP_SECONDS")) {
    double v = std::atof(env);
    if (v > 0) return v;
  }
  return 1.5;
}

struct FloodResult {
  double msgs_per_sec = 0;
  double p99_us = 0;
  double syscalls_per_msg = 0;
  std::uint64_t delivered = 0;
  std::uint64_t ring_replacements = 0;
};

/// Windowed flood on one bus: a 1 ms producer timer keeps up to kWindow
/// datagrams outstanding; receivers record per-datagram latency from the
/// timestamp stamped into the payload.
FloodResult run_flood(net::UdpBusConfig bus_cfg, std::uint16_t port,
                      double seconds) {
  net::UdpBus bus(1 + kReceivers, port, bus_cfg);
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t reclaimed = 0;  // window slots written off as lost
  std::vector<std::int64_t> latencies;
  latencies.reserve(1 << 20);

  std::vector<std::uint8_t> payload(kPayloadBytes, 0xAB);
  auto top_up = [&] {
    while (sent - delivered - reclaimed < kWindow) {
      std::int64_t stamp = bus.now().us();
      std::memcpy(payload.data(), &stamp, sizeof(stamp));
      bus.send(0, static_cast<MemberId>(1 + sent % kReceivers), payload);
      ++sent;
    }
  };
  // Self-clocking window: each delivery opens a slot and the callback
  // refills it immediately, so the loop measures the syscall + copy path,
  // not a producer pacing interval.
  bus.set_receive_callback(
      [&](MemberId, MemberId, SharedBytes bytes) {
        if (bytes.size() < 8) return;
        std::int64_t stamp;
        std::memcpy(&stamp, bytes.data(), sizeof(stamp));
        latencies.push_back(bus.now().us() - stamp);
        ++delivered;
        top_up();
      });

  std::uint64_t last_delivered = 0;
  int stall_ticks = 0;
  std::function<void()> reclaim_tick = [&] {
    // Datagrams the kernel drops (socket-buffer overflow) would leak
    // window slots forever; a window that makes no delivery progress for
    // 50 ticks is written off wholesale and refilled.
    if (delivered == last_delivered &&
        sent - delivered - reclaimed >= kWindow) {
      if (++stall_ticks >= 50) {
        reclaimed += sent - delivered - reclaimed;
        stall_ticks = 0;
      }
    } else {
      stall_ticks = 0;
      last_delivered = delivered;
    }
    top_up();
    bus.schedule_after(Duration::millis(1), reclaim_tick);
  };
  bus.schedule_after(Duration::zero(), reclaim_tick);

  TimePoint start = bus.now();
  bus.run_until(start + Duration::micros(
                            static_cast<std::int64_t>(seconds * 1e6)));
  double elapsed = static_cast<double>((bus.now() - start).us()) / 1e6;

  FloodResult r;
  r.delivered = delivered;
  r.msgs_per_sec = elapsed > 0 ? static_cast<double>(delivered) / elapsed : 0;
  if (!latencies.empty()) {
    std::size_t idx = latencies.size() * 99 / 100;
    idx = std::min(idx, latencies.size() - 1);
    std::nth_element(latencies.begin(),
                     latencies.begin() + static_cast<std::ptrdiff_t>(idx),
                     latencies.end());
    r.p99_us = static_cast<double>(latencies[idx]);
  }
  std::uint64_t syscalls =
      bus.send_syscalls() + bus.recv_syscalls() + bus.poll_syscalls();
  r.syscalls_per_msg =
      delivered > 0 ? static_cast<double>(syscalls) / static_cast<double>(delivered)
                    : 0;
  r.ring_replacements = bus.ring_replacements();
  return r;
}

struct RuntimeResult {
  double msgs_per_sec = 0;
  bool all_delivered = false;
  std::size_t workers = 0;
};

/// Protocol-level stream: endpoint 0 ip-multicasts `messages` payloads,
/// paced a few per session interval so recovery machinery idles; measures
/// end-to-end delivery throughput (payload deliveries per second).
RuntimeResult run_runtime_stream(std::size_t workers, std::uint16_t port,
                                 int messages) {
  net::Topology topo = net::make_hierarchy(
      {4, 4}, Duration::millis(2), Duration::millis(4));
  harness::UdpRuntimeConfig cfg;
  cfg.base_port = port;
  cfg.seed = 11;
  cfg.workers = workers;
  cfg.emulate_latency = false;
  cfg.protocol.session_interval = Duration::millis(20);
  harness::UdpRuntime rt(topo, cfg);

  TimePoint start = rt.bus().now();
  std::vector<MessageId> ids;
  for (int burst = 0; burst < messages; burst += 8) {
    for (int i = burst; i < std::min(messages, burst + 8); ++i) {
      ids.push_back(rt.endpoint(0).multicast(
          std::vector<std::uint8_t>(kPayloadBytes, 0x5A)));
    }
    rt.run_for(Duration::millis(5));
  }
  rt.run_for(Duration::millis(300));
  double elapsed =
      static_cast<double>((rt.bus().now() - start).us()) / 1e6;

  RuntimeResult r;
  r.workers = rt.worker_count();
  r.all_delivered = true;
  std::size_t deliveries = 0;
  for (const MessageId& id : ids) {
    std::size_t got = rt.count_received(id);
    deliveries += got;
    if (got != topo.member_count()) r.all_delivered = false;
  }
  r.msgs_per_sec =
      elapsed > 0 ? static_cast<double>(deliveries) / elapsed : 0;
  return r;
}

}  // namespace
}  // namespace rrmp

int main() {
  using namespace rrmp;
  double seconds = flood_seconds();
  bench::banner("UDP throughput (real loopback sockets)",
                "windowed flood, " + std::to_string(kPayloadBytes) +
                    " B payloads, window " + std::to_string(kWindow) +
                    ", " + std::to_string(seconds) + " s per cell");
  bench::JsonReport report("udp_throughput");

  bool sockets_ok = true;
  try {
    net::UdpBus probe(1, kBasePort);
  } catch (const std::runtime_error&) {
    sockets_ok = false;
  }
  if (!sockets_ok) {
    // Sandboxes that forbid binding UDP sockets skip the measurement the
    // same way the tier-2 socket suites do.
    std::printf("UDP sockets unavailable: skipping measurement\n");
    report.verdict(true, "skipped: UDP sockets unavailable");
    report.write_if_requested();
    return 0;
  }

  analysis::Table table({"mode", "msgs/s", "p99 us", "syscalls/msg",
                         "delivered", "ring repl"});
  auto add_row = [&](const std::string& mode, const FloodResult& r) {
    table.add_row({mode, std::to_string(static_cast<std::int64_t>(r.msgs_per_sec)),
                   std::to_string(static_cast<std::int64_t>(r.p99_us)),
                   std::to_string(r.syscalls_per_msg),
                   std::to_string(r.delivered),
                   std::to_string(r.ring_replacements)});
  };

  net::UdpBusConfig scalar_cfg;
  scalar_cfg.batched_syscalls = false;
  FloodResult scalar = run_flood(scalar_cfg, kBasePort, seconds);
  add_row("scalar sendto/recvfrom", scalar);

  net::UdpBusConfig batched32;
  batched32.batch_size = 32;
  FloodResult b32 = run_flood(batched32, kBasePort + 8, seconds);
  add_row("batched recvmmsg/sendmmsg x32", b32);

  net::UdpBusConfig batched64;
  batched64.batch_size = 64;
  FloodResult b64 = run_flood(batched64, kBasePort + 16, seconds);
  add_row("batched recvmmsg/sendmmsg x64", b64);

  net::UdpBusConfig offload_cfg;
  offload_cfg.batch_size = 32;
  offload_cfg.segmentation_offload = true;
  FloodResult offl = run_flood(offload_cfg, kBasePort + 24, seconds);
  add_row("gso/gro offload x32", offl);

  table.print(std::cout);
  bench::maybe_write_csv("udp_throughput", table);
  report.add_table("bus flood: scalar vs batched syscalls", table);

  report.add_scalar("scalar_msgs_per_sec", scalar.msgs_per_sec);
  report.add_scalar("batched_msgs_per_sec", b32.msgs_per_sec);
  report.add_scalar("batched64_msgs_per_sec", b64.msgs_per_sec);
  report.add_scalar("offload_msgs_per_sec", offl.msgs_per_sec);
  report.add_scalar("scalar_p99_us", scalar.p99_us);
  report.add_scalar("batched_p99_us", b32.p99_us);
  report.add_scalar("offload_p99_us", offl.p99_us);
  report.add_scalar("scalar_syscalls_per_msg", scalar.syscalls_per_msg);
  report.add_scalar("batched_syscalls_per_msg", b32.syscalls_per_msg);
  report.add_scalar("offload_syscalls_per_msg", offl.syscalls_per_msg);
  // The batched path's throughput claim is judged at its best
  // configuration: syscall batching alone where that is what the kernel
  // rewards, GSO/GRO segmentation offload where (as on most modern
  // kernels) the per-datagram stack traversal dominates instead.
  double best = std::max({b32.msgs_per_sec, b64.msgs_per_sec,
                          offl.msgs_per_sec});
  double speedup = scalar.msgs_per_sec > 0
                       ? best / scalar.msgs_per_sec
                       : 0;
  report.add_scalar("batch_speedup", speedup);

  report.verdict(speedup >= 2.0,
                 "batched path >= 2x scalar msgs/s (speedup " +
                     std::to_string(speedup) + ")");
  report.verdict(
      b32.syscalls_per_msg <= 0.5 * scalar.syscalls_per_msg,
      "batching at least halves syscalls per delivered message");
  report.verdict(scalar.p99_us > 0 && b32.p99_us > 0 && offl.p99_us > 0,
                 "p99 delivery latency measured on all paths");

  // --- protocol endpoints over the batched runtime ---------------------------
  int messages = seconds >= 1.0 ? 160 : 48;
  RuntimeResult w1 = run_runtime_stream(1, kBasePort + 32, messages);
  RuntimeResult whw = run_runtime_stream(0, kBasePort + 48, messages);
  analysis::Table rt_table({"workers", "protocol msgs/s", "all delivered"});
  rt_table.add_row({"1", std::to_string(static_cast<std::int64_t>(w1.msgs_per_sec)),
                    w1.all_delivered ? "yes" : "no"});
  rt_table.add_row({std::to_string(whw.workers) + " (per-core)",
                    std::to_string(static_cast<std::int64_t>(whw.msgs_per_sec)),
                    whw.all_delivered ? "yes" : "no"});
  rt_table.print(std::cout);
  bench::maybe_write_csv("udp_throughput_runtime", rt_table);
  report.add_table("protocol stream: workers", rt_table);
  report.add_scalar("runtime_msgs_per_sec_w1", w1.msgs_per_sec);
  report.add_scalar("runtime_msgs_per_sec_percore", whw.msgs_per_sec);
  report.add_scalar("runtime_workers_percore",
                    static_cast<double>(whw.workers));
  report.verdict(w1.all_delivered && whw.all_delivered,
                 "protocol stream fully delivered at every worker count");

  report.write_if_requested();
  return report.all_ok() ? 0 : 1;
}
