// Figure 7: #members that received a message vs #members that buffer it, as
// error recovery proceeds from a single initial holder in a 100-member
// region.
//
// Paper: while few members have the message nearly all of them buffer it;
// the short-term bufferer count collapses shortly after ~96% of members
// have received it, settling at the ~C long-term bufferers.
#include <iostream>

#include "analysis/table.h"
#include "bench_util.h"
#include "harness/experiments.h"

int main() {
  using namespace rrmp;
  bench::banner(
      "Figure 7: #received vs #buffered over time (1 initial holder)",
      "n = 100, RTT = 10 ms, T = 40 ms, C = 6; sampled every 5 ms to 140 ms.");

  harness::Fig7Series s =
      harness::run_fig7(100, /*seed=*/0xF16'7000, Duration::millis(140),
                        Duration::millis(5));

  analysis::Table t({"t (ms)", "#received", "#buffered"});
  for (std::size_t i = 0; i < s.t_ms.size(); ++i) {
    t.add_row({analysis::Table::num(s.t_ms[i], 0),
               analysis::Table::num(static_cast<std::uint64_t>(s.received[i])),
               analysis::Table::num(static_cast<std::uint64_t>(s.buffered[i]))});
  }
  t.print(std::cout);
  bench::maybe_write_csv("fig7_received_vs_buffered", t);

  // Shape checks: full dissemination; buffered tracks received on the way
  // up, then collapses to a small long-term set.
  bool disseminated = s.received.back() == 100;
  std::size_t peak_buffered = 0;
  for (std::size_t b : s.buffered) peak_buffered = std::max(peak_buffered, b);
  bool tracked = peak_buffered >= 90;         // nearly everyone buffered it
  bool collapsed = s.buffered.back() <= 20;   // ~Poisson(6) remains

  bench::JsonReport report("fig7_received_vs_buffered");
  report.add_table("received vs buffered over time", t);
  report.add_scalar("peak_buffered", static_cast<double>(peak_buffered));
  report.add_scalar("final_buffered", static_cast<double>(s.buffered.back()));
  report.verdict(disseminated && tracked && collapsed,
                 "buffered count tracks received, then collapses to ~C "
                 "long-term bufferers after the region goes idle");
  report.write_if_requested();
  return (disseminated && tracked && collapsed) ? 0 : 1;
}
