// Extension — flow control under a flash crowd: does windowed send
// admission turn simultaneous overload into paced goodput?
//
// The paper's buffer optimizations assume senders are paced. This sweep
// breaks that assumption on purpose: `senders` members of one region all
// stream the same schedule into tight per-member budgets (coordination on),
// so every buffer overruns at the same instants. Each sender count runs
// three times — flow off (the unpaced PR 5 protocol, bit for bit), static
// windowed (per-sender windows, CreditAck credit feedback, digest-fed
// back-pressure) and adaptive (AIMD window sizing + cursor piggybacking) —
// and compares goodput (fraction of streamed messages every member got),
// Jain's fairness index over per-sender delivered counts, and the credit
// control overhead (CreditAck bytes per delivered payload byte) head to
// head.
//
// Expected shape: with few senders all modes deliver everything. Past
// saturation the unpaced runs shed and evict copies they then cannot
// recover, and which sender's stream survives is luck — goodput and
// fairness both fall. The windowed runs defer sends instead of losing them,
// so goodput stays strictly higher and fairness stays near 1. The adaptive
// runs match that goodput while the piggybacked cursors suppress most
// standalone CreditAck multicasts, cutting the control overhead by well
// over 2x. A final churn pair at the largest crowd crashes and rejoins a
// receiver mid-burst, exercising the churn-safe credit state (seeded joiner
// cursors, view-change drops, stalled-cursor release) under both window
// modes: the liveness verdict is that every sender completes its schedule —
// the rejoined member's unrecoverable pre-crash history legitimately caps
// goodput below 1, but must never wedge the window.
//
// RRMP_OVERLOAD_POINTS=N (env) truncates the sweep to the N largest sender
// counts — the CI release leg smoke-runs 2 points so the credit machinery
// is exercised on every PR.
#include <cstdlib>
#include <iostream>
#include <vector>

#include "analysis/table.h"
#include "bench_util.h"
#include "harness/experiments.h"

int main() {
  using namespace rrmp;

  harness::OverloadScenario scenario;
  scenario.region_size = 24;
  scenario.messages_per_sender = 30;
  scenario.send_interval = Duration::millis(2);
  scenario.data_loss = 0.05;
  scenario.payload_bytes = 512;
  scenario.drain = Duration::millis(1500);
  scenario.seed = 0xF10'0001;
  scenario.budget_bytes = 4096;
  scenario.window_size = 8;
  scenario.ack_interval = Duration::millis(5);

  // The adaptive variant: same schedule and seed, but the window is AIMD
  // (starts at min_window, grows one frame per clean credit round, halves
  // on stall, capped by the static window as ceiling) and receive cursors
  // ride on outgoing Data/Session frames instead of standalone CreditAcks.
  harness::OverloadScenario adaptive = scenario;
  adaptive.adaptive = true;
  adaptive.min_window = 2;
  adaptive.max_window = 0;  // ceiling = window_size
  adaptive.piggyback = true;

  // One sender is the paced baseline; the crowd grows until the region's
  // aggregate stream rate dwarfs what the budgets can hold.
  std::vector<std::size_t> sender_counts = {1, 2, 4, 6, 8};
  if (const char* env = std::getenv("RRMP_OVERLOAD_POINTS")) {
    std::size_t n = std::strtoul(env, nullptr, 10);
    if (n >= 2 && n < sender_counts.size()) {
      // The N largest crowds: a smoke run must exercise the window/credit
      // machinery, and only saturated points do.
      sender_counts.assign(sender_counts.end() - static_cast<std::ptrdiff_t>(n),
                           sender_counts.end());
    }
  }

  bench::banner(
      "Extension: overload sweep — flash-crowd goodput with and without "
      "flow control",
      "n = 24, 5% loss on the initial multicast, 30 msgs of 512 B per "
      "sender at 2 ms,\nper-member budget 4 KB, coordination on, two-phase "
      "policy (T = 40 ms, C = 6).\nEach sender count runs unpaced, windowed "
      "(W = 8, CreditAck every 5 ms) and\nadaptive (AIMD 2..8 + cursor "
      "piggybacking) back to back on the same schedule\nand seed; a churn "
      "pair at the largest crowd crashes + rejoins a receiver\nmid-burst.");

  analysis::Table t({"senders", "mode", "goodput", "fairness", "deferred",
                     "credit msgs", "suppressed", "overhead", "evictions",
                     "sheds", "unrecovered"});
  auto add_row = [&t](std::size_t senders, const char* mode,
                      const harness::OverloadOutcome& o) {
    t.add_row({analysis::Table::num(static_cast<std::uint64_t>(senders)),
               mode, analysis::Table::num(o.goodput, 3),
               analysis::Table::num(o.fairness, 3),
               analysis::Table::num(o.deferred),
               analysis::Table::num(o.credit_msgs),
               analysis::Table::num(o.acks_suppressed),
               analysis::Table::num(o.control_overhead, 4),
               analysis::Table::num(o.evictions),
               analysis::Table::num(o.sheds),
               analysis::Table::num(o.unrecovered)});
  };

  std::vector<double> goodput_off, goodput_on, goodput_ad;
  std::vector<double> fairness_off, fairness_on, fairness_ad;
  std::uint64_t total_deferred = 0, total_credit_msgs = 0;
  std::uint64_t total_credit_msgs_ad = 0, total_suppressed_ad = 0;
  std::uint64_t credit_bytes_on = 0, credit_bytes_ad = 0;
  std::uint64_t delivered_on = 0, delivered_ad = 0;
  std::size_t saturated_points = 0, strictly_better = 0;
  bool flow_never_worse = true;
  bool adaptive_never_worse = true;
  double min_fairness_on = 1.0, min_fairness_ad = 1.0;
  for (std::size_t senders : sender_counts) {
    harness::OverloadOutcome pair[2];
    for (bool flow_on : {false, true}) {
      harness::OverloadOutcome o =
          harness::run_overload_point(senders, flow_on, scenario);
      pair[flow_on ? 1 : 0] = o;
      add_row(senders, flow_on ? "windowed" : "unpaced", o);
      if (flow_on) {
        total_deferred += o.deferred;
        total_credit_msgs += o.credit_msgs;
        credit_bytes_on += o.credit_bytes;
        delivered_on += o.delivered_payload_bytes;
      }
    }
    harness::OverloadOutcome ad =
        harness::run_overload_point(senders, true, adaptive);
    add_row(senders, "adaptive", ad);
    total_credit_msgs_ad += ad.credit_msgs;
    total_suppressed_ad += ad.acks_suppressed;
    credit_bytes_ad += ad.credit_bytes;
    delivered_ad += ad.delivered_payload_bytes;
    goodput_off.push_back(pair[0].goodput);
    goodput_on.push_back(pair[1].goodput);
    goodput_ad.push_back(ad.goodput);
    fairness_off.push_back(pair[0].fairness);
    fairness_on.push_back(pair[1].fairness);
    fairness_ad.push_back(ad.fairness);
    if (pair[1].goodput < pair[0].goodput) flow_never_worse = false;
    if (ad.goodput < pair[1].goodput) adaptive_never_worse = false;
    if (pair[1].fairness < min_fairness_on) min_fairness_on = pair[1].fairness;
    if (ad.fairness < min_fairness_ad) min_fairness_ad = ad.fairness;
    // A saturation point: the unpaced crowd loses messages for good.
    if (pair[0].goodput < 0.999) {
      ++saturated_points;
      if (pair[1].goodput > pair[0].goodput) ++strictly_better;
    }
  }

  // Churn pair at the largest crowd: a non-sender receiver crashes a third
  // of the way through the burst and rejoins two thirds through. The
  // churn-safe credit seeding (joiner cursors start at the sender's current
  // floor, departed cursors dropped at view-change time) must keep both
  // window modes from wedging on the joiner's empty receive state.
  harness::OverloadScenario churn_w = scenario;
  churn_w.churn = true;
  harness::OverloadScenario churn_a = adaptive;
  churn_a.churn = true;
  std::size_t big = sender_counts.back();
  harness::OverloadOutcome cw = harness::run_overload_point(big, true, churn_w);
  harness::OverloadOutcome ca = harness::run_overload_point(big, true, churn_a);
  add_row(big, "windowed+churn", cw);
  add_row(big, "adaptive+churn", ca);

  t.print(std::cout);
  bench::maybe_write_csv("ext_overload_sweep", t);

  double overhead_on = delivered_on == 0
                           ? 0.0
                           : static_cast<double>(credit_bytes_on) /
                                 static_cast<double>(delivered_on);
  double overhead_ad = delivered_ad == 0
                           ? 0.0
                           : static_cast<double>(credit_bytes_ad) /
                                 static_cast<double>(delivered_ad);
  double overhead_ratio = overhead_ad == 0.0 ? 0.0 : overhead_on / overhead_ad;

  bench::JsonReport report("ext_overload_sweep");
  report.add_table("flash-crowd goodput by sender count", t);
  report.add_scalar("min_goodput_unpaced", goodput_off.back());
  report.add_scalar("min_goodput_windowed", goodput_on.back());
  report.add_scalar("min_fairness_unpaced",
                    *std::min_element(fairness_off.begin(), fairness_off.end()));
  report.add_scalar("min_fairness_windowed", min_fairness_on);
  report.add_scalar("saturated_points", static_cast<double>(saturated_points));
  report.add_scalar("strictly_better_points",
                    static_cast<double>(strictly_better));
  report.add_scalar("total_deferred", static_cast<double>(total_deferred));
  report.add_scalar("total_credit_msgs",
                    static_cast<double>(total_credit_msgs));
  report.add_scalar("min_goodput_adaptive", goodput_ad.back());
  report.add_scalar("min_fairness_adaptive", min_fairness_ad);
  report.add_scalar("total_credit_msgs_adaptive",
                    static_cast<double>(total_credit_msgs_ad));
  report.add_scalar("total_acks_suppressed_adaptive",
                    static_cast<double>(total_suppressed_ad));
  report.add_scalar("control_overhead_windowed", overhead_on);
  report.add_scalar("control_overhead_adaptive", overhead_ad);
  report.add_scalar("control_overhead_ratio", overhead_ratio);
  report.add_scalar("goodput_windowed_churn", cw.goodput);
  report.add_scalar("goodput_adaptive_churn", ca.goodput);
  report.add_scalar("stall_releases_churn",
                    static_cast<double>(cw.stall_releases + ca.stall_releases));

  report.verdict(saturated_points > 0,
                 "the crowd actually saturates the unpaced protocol "
                 "(goodput below 1 at some sender count)");
  report.verdict(strictly_better == saturated_points,
                 "at every saturated point the windowed runs deliver "
                 "strictly higher goodput");
  report.verdict(flow_never_worse,
                 "flow control never reduces goodput");
  report.verdict(min_fairness_on >= 0.9,
                 "windowed per-sender fairness stays bounded (Jain index "
                 ">= 0.9 at every point)");
  report.verdict(total_deferred > 0 && total_credit_msgs > 0,
                 "the window/credit machinery actually engaged (sends "
                 "deferred, CreditAcks on the wire)");
  report.verdict(adaptive_never_worse,
                 "AIMD + piggybacking matches the static window's goodput "
                 "at every crowd size");
  report.verdict(total_suppressed_ad > 0,
                 "cursor piggybacking actually suppressed standalone "
                 "CreditAck multicasts");
  report.verdict(overhead_ratio >= 2.0,
                 "piggybacking cuts CreditAck bytes per delivered payload "
                 "byte by at least 2x");
  // Liveness, not delivery: the rejoined member's pre-crash history may be
  // legitimately unrecoverable under the 4 KB budgets (all_received then
  // caps goodput below 1), but a wedged window would leave senders stuck
  // mid-schedule forever. Every sender finishing its schedule is the
  // witness that the churn-safe credit state (seeded joiner cursors,
  // view-change cursor drops, stalled-cursor release) kept the window live.
  report.verdict(cw.senders_completed == big && ca.senders_completed == big,
                 "mid-burst crash + rejoin does not wedge either window "
                 "mode (every sender completes its schedule)");
  report.verdict(ca.goodput + 0.05 >= cw.goodput,
                 "adaptive churn goodput stays within 5% of the static "
                 "window's");
  report.write_if_requested();
  return report.all_ok() ? 0 : 1;
}
