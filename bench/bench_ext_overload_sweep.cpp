// Extension — flow control under a flash crowd: does windowed send
// admission turn simultaneous overload into paced goodput?
//
// The paper's buffer optimizations assume senders are paced. This sweep
// breaks that assumption on purpose: `senders` members of one region all
// stream the same schedule into tight per-member budgets (coordination on),
// so every buffer overruns at the same instants. Each sender count runs
// twice — flow off (the unpaced PR 5 protocol, bit for bit) and flow on
// (per-sender windows, CreditAck credit feedback, digest-fed back-pressure)
// — and compares goodput (fraction of streamed messages every member got)
// and Jain's fairness index over per-sender delivered counts head to head.
//
// Expected shape: with few senders both modes deliver everything. Past
// saturation the unpaced runs shed and evict copies they then cannot
// recover, and which sender's stream survives is luck — goodput and
// fairness both fall. The windowed runs defer sends instead of losing them,
// so goodput stays strictly higher and fairness stays near 1. The price is
// the credit traffic and the deferred-send latency, which the table
// reports.
//
// RRMP_OVERLOAD_POINTS=N (env) truncates the sweep to the N largest sender
// counts — the CI release leg smoke-runs 2 points so the credit machinery
// is exercised on every PR.
#include <cstdlib>
#include <iostream>
#include <vector>

#include "analysis/table.h"
#include "bench_util.h"
#include "harness/experiments.h"

int main() {
  using namespace rrmp;

  harness::OverloadScenario scenario;
  scenario.region_size = 24;
  scenario.messages_per_sender = 30;
  scenario.send_interval = Duration::millis(2);
  scenario.data_loss = 0.05;
  scenario.payload_bytes = 512;
  scenario.drain = Duration::millis(1500);
  scenario.seed = 0xF10'0001;
  scenario.budget_bytes = 4096;
  scenario.window_size = 8;
  scenario.ack_interval = Duration::millis(5);

  // One sender is the paced baseline; the crowd grows until the region's
  // aggregate stream rate dwarfs what the budgets can hold.
  std::vector<std::size_t> sender_counts = {1, 2, 4, 6, 8};
  if (const char* env = std::getenv("RRMP_OVERLOAD_POINTS")) {
    std::size_t n = std::strtoul(env, nullptr, 10);
    if (n >= 2 && n < sender_counts.size()) {
      // The N largest crowds: a smoke run must exercise the window/credit
      // machinery, and only saturated points do.
      sender_counts.assign(sender_counts.end() - static_cast<std::ptrdiff_t>(n),
                           sender_counts.end());
    }
  }

  bench::banner(
      "Extension: overload sweep — flash-crowd goodput with and without "
      "flow control",
      "n = 24, 5% loss on the initial multicast, 30 msgs of 512 B per "
      "sender at 2 ms,\nper-member budget 4 KB, coordination on, two-phase "
      "policy (T = 40 ms, C = 6).\nEach sender count runs unpaced and "
      "windowed (W = 8, CreditAck every 5 ms)\nback to back on the same "
      "schedule and seed.");

  analysis::Table t({"senders", "mode", "goodput", "fairness", "deferred",
                     "credit msgs", "evictions", "sheds", "unrecovered"});
  std::vector<double> goodput_off, goodput_on;
  std::vector<double> fairness_off, fairness_on;
  std::uint64_t total_deferred = 0, total_credit_msgs = 0;
  std::size_t saturated_points = 0, strictly_better = 0;
  bool flow_never_worse = true;
  double min_fairness_on = 1.0;
  for (std::size_t senders : sender_counts) {
    harness::OverloadOutcome pair[2];
    for (bool flow_on : {false, true}) {
      harness::OverloadOutcome o =
          harness::run_overload_point(senders, flow_on, scenario);
      pair[flow_on ? 1 : 0] = o;
      t.add_row({analysis::Table::num(static_cast<std::uint64_t>(senders)),
                 flow_on ? "windowed" : "unpaced",
                 analysis::Table::num(o.goodput, 3),
                 analysis::Table::num(o.fairness, 3),
                 analysis::Table::num(o.deferred),
                 analysis::Table::num(o.credit_msgs),
                 analysis::Table::num(o.evictions),
                 analysis::Table::num(o.sheds),
                 analysis::Table::num(o.unrecovered)});
      if (flow_on) {
        total_deferred += o.deferred;
        total_credit_msgs += o.credit_msgs;
      }
    }
    goodput_off.push_back(pair[0].goodput);
    goodput_on.push_back(pair[1].goodput);
    fairness_off.push_back(pair[0].fairness);
    fairness_on.push_back(pair[1].fairness);
    if (pair[1].goodput < pair[0].goodput) flow_never_worse = false;
    if (pair[1].fairness < min_fairness_on) min_fairness_on = pair[1].fairness;
    // A saturation point: the unpaced crowd loses messages for good.
    if (pair[0].goodput < 0.999) {
      ++saturated_points;
      if (pair[1].goodput > pair[0].goodput) ++strictly_better;
    }
  }
  t.print(std::cout);
  bench::maybe_write_csv("ext_overload_sweep", t);

  bench::JsonReport report("ext_overload_sweep");
  report.add_table("flash-crowd goodput by sender count", t);
  report.add_scalar("min_goodput_unpaced", goodput_off.back());
  report.add_scalar("min_goodput_windowed", goodput_on.back());
  report.add_scalar("min_fairness_unpaced",
                    *std::min_element(fairness_off.begin(), fairness_off.end()));
  report.add_scalar("min_fairness_windowed", min_fairness_on);
  report.add_scalar("saturated_points", static_cast<double>(saturated_points));
  report.add_scalar("strictly_better_points",
                    static_cast<double>(strictly_better));
  report.add_scalar("total_deferred", static_cast<double>(total_deferred));
  report.add_scalar("total_credit_msgs",
                    static_cast<double>(total_credit_msgs));

  report.verdict(saturated_points > 0,
                 "the crowd actually saturates the unpaced protocol "
                 "(goodput below 1 at some sender count)");
  report.verdict(strictly_better == saturated_points,
                 "at every saturated point the windowed runs deliver "
                 "strictly higher goodput");
  report.verdict(flow_never_worse,
                 "flow control never reduces goodput");
  report.verdict(min_fairness_on >= 0.9,
                 "windowed per-sender fairness stays bounded (Jain index "
                 ">= 0.9 at every point)");
  report.verdict(total_deferred > 0 && total_credit_msgs > 0,
                 "the window/credit machinery actually engaged (sends "
                 "deferred, CreditAcks on the wire)");
  report.write_if_requested();
  return report.all_ok() ? 0 : 1;
}
