// Microbenchmarks: BufferStore insert / lookup / eviction ns-per-op
// (google-benchmark). The store is the per-member hot path of every
// experiment — each received message is admitted once, each repair request
// is a lookup, and under a budget every admission may run the eviction
// protocol.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "buffer/buffer_everything.h"
#include "buffer/fixed_time.h"
#include "buffer/store.h"
#include "common/random.h"
#include "sim/simulator.h"

namespace {

using namespace rrmp;

/// Minimal PolicyEnv over a private simulator (mirrors the endpoint's).
class BenchEnv final : public buffer::PolicyEnv {
 public:
  TimePoint now() const override { return sim_.now(); }
  std::uint64_t schedule(Duration d, std::function<void()> fn) override {
    return sim_.schedule_after(d, std::move(fn)).value;
  }
  void cancel(std::uint64_t timer) override {
    sim_.cancel(sim::TimerId{timer});
  }
  RandomEngine& rng() override { return rng_; }
  std::size_t region_size() const override { return members_.size(); }
  const std::vector<MemberId>& region_members() const override {
    return members_;
  }
  MemberId self() const override { return 0; }

 private:
  mutable sim::Simulator sim_;
  RandomEngine rng_{1};
  std::vector<MemberId> members_ = {0, 1, 2, 3, 4, 5, 6, 7};
};

proto::Data data_of(std::uint64_t seq, const std::vector<std::uint8_t>& p) {
  return proto::Data{MessageId{1, seq}, p};
}

void BM_StoreInsertErase(benchmark::State& state) {
  // Insert + erase one id with the store held at `range` resident entries:
  // the flat storage's shift cost at realistic occupancies.
  BenchEnv env;
  buffer::BufferStore store(std::make_unique<buffer::BufferEverythingPolicy>());
  store.bind(&env);
  std::vector<std::uint8_t> payload(256, 1);
  auto n = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t q = 1; q <= n; ++q) store.store(data_of(q * 2, payload));
  std::uint64_t probe = 1;  // odd seqs interleave with the resident evens
  for (auto _ : state) {
    store.store(data_of(probe, payload));
    store.force_discard(MessageId{1, probe});
    probe = (probe + 2) % (2 * n) | 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreInsertErase)->Arg(16)->Arg(256)->Arg(4096);

void BM_StoreLookupHit(benchmark::State& state) {
  BenchEnv env;
  buffer::BufferStore store(std::make_unique<buffer::BufferEverythingPolicy>());
  store.bind(&env);
  std::vector<std::uint8_t> payload(256, 1);
  auto n = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t q = 1; q <= n; ++q) store.store(data_of(q, payload));
  std::uint64_t probe = 0;
  std::size_t hits = 0;
  for (auto _ : state) {
    probe = probe % n + 1;
    auto d = store.get(MessageId{1, probe});
    hits += d.has_value();
    benchmark::DoNotOptimize(d);
  }
  if (hits == 0) state.SkipWithError("lookups missed");
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreLookupHit)->Arg(16)->Arg(256)->Arg(4096);

void BM_StoreAdmitEvictSteadyState(benchmark::State& state) {
  // Fully budgeted admission: every insert runs the eviction protocol
  // (pick_victims scan + discard of the LRU victim) at `range` occupancy.
  BenchEnv env;
  buffer::BufferStore store(
      std::make_unique<buffer::BufferEverythingPolicy>(),
      buffer::BufferBudget{0, static_cast<std::size_t>(state.range(0))});
  store.bind(&env);
  std::vector<std::uint8_t> payload(256, 1);
  std::uint64_t seq = 0;
  // Pre-fill to the cap so every measured insert evicts (google-benchmark's
  // 1-iteration calibration run would otherwise never reach the budget).
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    store.store(data_of(++seq, payload));
  }
  for (auto _ : state) {
    store.store(data_of(++seq, payload));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreAdmitEvictSteadyState)->Arg(16)->Arg(256);

void BM_StoreAdmitEvictWithTimers(benchmark::State& state) {
  // Same, with a timer-arming policy: eviction must also cancel the
  // victim's pending TTL timer (the slab-handle path).
  BenchEnv env;
  buffer::BufferStore store(
      std::make_unique<buffer::FixedTimePolicy>(Duration::seconds(3600)),
      buffer::BufferBudget{0, static_cast<std::size_t>(state.range(0))});
  store.bind(&env);
  std::vector<std::uint8_t> payload(256, 1);
  std::uint64_t seq = 0;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    store.store(data_of(++seq, payload));
  }
  for (auto _ : state) {
    store.store(data_of(++seq, payload));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreAdmitEvictWithTimers)->Arg(16)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
