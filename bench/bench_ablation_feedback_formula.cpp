// Ablation A1 — the §3.1 feedback formula.
//
// The short-term phase rests on: P(a holder sees no request while a
// fraction p of the n-member region misses the message) =
// (1 - 1/(n-1))^(n p) ~= e^-p. We Monte Carlo one request round and print
// exact formula, approximation, and measurement side by side.
#include <iostream>

#include "analysis/analytic.h"
#include "analysis/table.h"
#include "bench_util.h"
#include "harness/experiments.h"

int main() {
  using namespace rrmp;
  constexpr std::size_t kTrials = 200000;

  bench::banner(
      "Ablation A1: P(no request received) vs fraction missing (Sec. 3.1)",
      "One request round, each missing member probes one random neighbor;\n"
      "formula (1-1/(n-1))^(np), approximation e^-p.");

  bench::JsonReport report("ablation_feedback_formula");
  bool ok = true;
  for (std::size_t n : {100, 1000}) {
    analysis::Table t({"p (missing)", "formula %", "e^-p % (paper approx)",
                       "measured %"});
    for (double p : {0.1, 0.25, 0.5, 0.75, 0.9}) {
      double exact = analysis::prob_no_request(n, p) * 100.0;
      double approx = analysis::prob_no_request_approx(p) * 100.0;
      double mc = harness::simulate_no_request_probability(
                      n, p, kTrials, 0xAB1'0000 + n + static_cast<int>(p * 100)) *
                  100.0;
      ok = ok && std::abs(mc - exact) < 1.5;  // MC within 1.5pp of formula
      t.add_row({analysis::Table::num(p, 2), analysis::Table::num(exact, 2),
                 analysis::Table::num(approx, 2), analysis::Table::num(mc, 2)});
    }
    std::cout << "n = " << n << "\n";
    t.print(std::cout);
    report.add_table("n=" + std::to_string(n), t);
    std::cout << "\n";
  }
  report.verdict(ok, "measurement matches (1-1/(n-1))^(np); e^-p is close");
  report.write_if_requested();
  return ok ? 0 : 1;
}
