// Microbenchmarks: wire codec throughput (google-benchmark).
#include <benchmark/benchmark.h>

#include "proto/codec.h"

namespace {

using namespace rrmp;

proto::Message make_data(std::size_t payload) {
  return proto::Data{MessageId{7, 42},
                     std::vector<std::uint8_t>(payload, 0x5A)};
}

void BM_EncodeData(benchmark::State& state) {
  proto::Message m = make_data(static_cast<std::size_t>(state.range(0)));
  std::size_t bytes = 0;
  for (auto _ : state) {
    auto buf = proto::encode(m);
    bytes += buf.size();
    benchmark::DoNotOptimize(buf);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_EncodeData)->Arg(64)->Arg(1024)->Arg(8192);

void BM_DecodeData(benchmark::State& state) {
  auto buf = proto::encode(make_data(static_cast<std::size_t>(state.range(0))));
  std::size_t bytes = 0;
  for (auto _ : state) {
    auto m = proto::decode(buf);
    bytes += buf.size();
    benchmark::DoNotOptimize(m);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_DecodeData)->Arg(64)->Arg(1024)->Arg(8192);

void BM_EncodeDecodeGossip(benchmark::State& state) {
  proto::Gossip g;
  g.from = 1;
  for (std::uint32_t i = 0; i < state.range(0); ++i) {
    g.beats.push_back(proto::Heartbeat{i, i * 17u});
  }
  proto::Message m{g};
  for (auto _ : state) {
    auto decoded = proto::decode(proto::encode(m));
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_EncodeDecodeGossip)->Arg(16)->Arg(128)->Arg(1024);

void BM_EncodeHistory(benchmark::State& state) {
  proto::History h;
  h.member = 3;
  proto::SourceHistory sh;
  sh.source = 0;
  sh.next_expected = 1000;
  sh.bitmap.assign(static_cast<std::size_t>(state.range(0)), ~0ULL);
  h.sources.push_back(sh);
  proto::Message m{h};
  for (auto _ : state) {
    auto buf = proto::encode(m);
    benchmark::DoNotOptimize(buf);
  }
}
BENCHMARK(BM_EncodeHistory)->Arg(1)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
