#!/usr/bin/env python3
"""Run the baseline benches (fig3-fig9 paper reproductions + the capacity-sweep
extension) and merge their JSON reports
into a single baseline file (BENCH_baseline.json at the repo root by default).

Each bench binary writes $RRMP_BENCH_JSON_DIR/<name>.json when that env var
is set (see bench_util.h JsonReport); this driver provides the directory,
records wall time and exit status per bench, and merges everything into one
machine-readable document that later optimization PRs diff against.

Usage:
  bench/run_baselines.py --bench-dir build/bench --out BENCH_baseline.json
  cmake --build build --target run_baselines    # same thing
"""

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import time

# The paper-figure reproductions that constitute the baseline trajectory.
FIG_BENCHES = [
    "bench_ext_capacity_sweep",
    "bench_ext_coordination_sweep",
    "bench_ext_fault_sweep",
    "bench_ext_hierarchy_depth",
    "bench_ext_overload_sweep",
    "bench_fig3_longterm_distribution",
    "bench_fig4_no_bufferer",
    "bench_fig6_shortterm_buffering",
    "bench_fig7_received_vs_buffered",
    "bench_fig8_search_vs_bufferers",
    "bench_fig9_search_vs_region_size",
    "bench_udp_throughput",
]

# Google Benchmark binaries whose per-benchmark ns/op numbers are folded into
# the baseline under the rrmp-micro/1 counter schema (see run_micro_bench).
MICRO_BENCHES = [
    "bench_micro_buffer",
    "bench_micro_codec",
    "bench_micro_engine",
]

_TIME_UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def run_micro_bench(exe, timeout):
    """Run a Google Benchmark binary and distill its JSON output into the
    stable rrmp-micro/1 counter schema:

        {"schema": "rrmp-micro/1",
         "counters": {"<BM_Name>[/Arg]": {"ns_per_op": float,
                                          "items_per_second": float|None}}}

    Keys are the benchmark's own names (stable across runs); values are
    real-time ns/op so later PRs can diff micro-level wins the same way they
    diff the figure scalars.
    """
    start = time.monotonic()
    result = {
        "exit_code": -1,
        "timed_out": False,
        "wall_time_seconds": 0.0,
        "micro": None,
    }
    output = b""
    try:
        proc = subprocess.run(
            [exe, "--benchmark_format=json"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            timeout=timeout,
        )
        result["exit_code"] = proc.returncode
        output = proc.stdout or b""
    except subprocess.TimeoutExpired as e:
        result["timed_out"] = True
        output = e.stdout or b""
    result["wall_time_seconds"] = round(time.monotonic() - start, 3)
    try:
        doc = json.loads(output.decode() or "{}")
        counters = {}
        for b in doc.get("benchmarks", []):
            if b.get("run_type") == "aggregate":
                continue  # plain runs only; keep keys stable
            if b.get("error_occurred") or "real_time" not in b:
                print(f"warning: skipping errored benchmark entry "
                      f"{b.get('name', '?')} in {exe}", file=sys.stderr)
                continue  # keep the good counters
            scale = _TIME_UNIT_TO_NS.get(b.get("time_unit", "ns"), 1.0)
            counters[b["name"]] = {
                "ns_per_op": round(b["real_time"] * scale, 3),
                "items_per_second": b.get("items_per_second"),
            }
        if counters:
            result["micro"] = {"schema": "rrmp-micro/1", "counters": counters}
    except (json.JSONDecodeError, KeyError, ValueError) as e:
        print(f"warning: could not parse benchmark JSON from {exe}: {e}",
              file=sys.stderr)
    return result


def run_bench(exe, json_dir, timeout):
    env = dict(os.environ, RRMP_BENCH_JSON_DIR=json_dir)
    start = time.monotonic()
    output = b""
    try:
        proc = subprocess.run(
            [exe],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            timeout=timeout,
        )
        returncode = proc.returncode
        timed_out = False
        output = proc.stdout or b""
    except subprocess.TimeoutExpired as e:
        returncode = -1
        timed_out = True
        output = e.stdout or b""
    return {
        "exit_code": returncode,
        "timed_out": timed_out,
        "wall_time_seconds": round(time.monotonic() - start, 3),
    }, output


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench-dir", required=True,
                        help="directory containing the built bench binaries")
    parser.add_argument("--out", default="BENCH_baseline.json",
                        help="merged baseline output path")
    parser.add_argument("--benches", nargs="*", default=FIG_BENCHES,
                        help="bench binary names to run (default: fig3-fig9)")
    parser.add_argument("--micro-benches", nargs="*", default=MICRO_BENCHES,
                        help="Google Benchmark binaries to fold in as ns/op "
                             "counters (default: the bench_micro_* pair); "
                             "pass an empty list to skip")
    parser.add_argument("--timeout", type=float, default=1200.0,
                        help="per-bench timeout in seconds")
    args = parser.parse_args()

    baseline = {
        "schema": "rrmp-bench-baseline/1",
        "generated_by": "bench/run_baselines.py",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": {
            "machine": platform.machine(),
            "system": platform.system(),
            "cpu_count": os.cpu_count(),
        },
        "benches": {},
    }

    failures = []
    for name in args.benches:
        exe = os.path.join(args.bench_dir, name)
        if not os.path.exists(exe):
            print(f"error: bench binary not found: {exe}", file=sys.stderr)
            failures.append(name)
            continue
        print(f"[run_baselines] {name} ...", flush=True)
        with tempfile.TemporaryDirectory(prefix="rrmp-bench-") as json_dir:
            run, output = run_bench(exe, json_dir, args.timeout)
            # JsonReport names strip the bench_ prefix.
            report_path = os.path.join(json_dir, name.removeprefix("bench_") + ".json")
            run["report"] = None
            if os.path.exists(report_path):
                try:
                    with open(report_path) as f:
                        run["report"] = json.load(f)
                except (json.JSONDecodeError, OSError) as e:
                    print(f"warning: {name} wrote a malformed JSON report: {e}",
                          file=sys.stderr)
            else:
                print(f"warning: {name} produced no JSON report", file=sys.stderr)
        ok = run["exit_code"] == 0 and run["report"] is not None
        status = "ok" if ok else "FAILED"
        print(f"[run_baselines] {name}: {status} "
              f"({run['wall_time_seconds']}s)", flush=True)
        if not ok:
            # Surface the bench's own tables/verdict lines so CI logs say
            # which invariant broke, not just that something did.
            sys.stderr.write(output.decode(errors="replace"))
            failures.append(name)
        baseline["benches"][name] = run

    for name in args.micro_benches:
        exe = os.path.join(args.bench_dir, name)
        if not os.path.exists(exe):
            print(f"error: micro bench binary not found: {exe}",
                  file=sys.stderr)
            failures.append(name)
            continue
        print(f"[run_baselines] {name} (micro) ...", flush=True)
        run = run_micro_bench(exe, args.timeout)
        ok = run["exit_code"] == 0 and run["micro"] is not None
        status = "ok" if ok else "FAILED"
        n = len(run["micro"]["counters"]) if run["micro"] else 0
        print(f"[run_baselines] {name}: {status} "
              f"({run['wall_time_seconds']}s, {n} counters)", flush=True)
        if not ok:
            failures.append(name)
        baseline["benches"][name] = run

    with open(args.out, "w") as f:
        json.dump(baseline, f, indent=2, sort_keys=False)
        f.write("\n")
    print(f"[run_baselines] wrote {args.out} "
          f"({len(baseline['benches'])} benches, {len(failures)} failed)")

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
