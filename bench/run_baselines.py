#!/usr/bin/env python3
"""Run the fig3-fig9 paper-reproduction benches and merge their JSON reports
into a single baseline file (BENCH_baseline.json at the repo root by default).

Each bench binary writes $RRMP_BENCH_JSON_DIR/<name>.json when that env var
is set (see bench_util.h JsonReport); this driver provides the directory,
records wall time and exit status per bench, and merges everything into one
machine-readable document that later optimization PRs diff against.

Usage:
  bench/run_baselines.py --bench-dir build/bench --out BENCH_baseline.json
  cmake --build build --target run_baselines    # same thing
"""

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import time

# The paper-figure reproductions that constitute the baseline trajectory.
FIG_BENCHES = [
    "bench_fig3_longterm_distribution",
    "bench_fig4_no_bufferer",
    "bench_fig6_shortterm_buffering",
    "bench_fig7_received_vs_buffered",
    "bench_fig8_search_vs_bufferers",
    "bench_fig9_search_vs_region_size",
]


def run_bench(exe, json_dir, timeout):
    env = dict(os.environ, RRMP_BENCH_JSON_DIR=json_dir)
    start = time.monotonic()
    output = b""
    try:
        proc = subprocess.run(
            [exe],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            timeout=timeout,
        )
        returncode = proc.returncode
        timed_out = False
        output = proc.stdout or b""
    except subprocess.TimeoutExpired as e:
        returncode = -1
        timed_out = True
        output = e.stdout or b""
    return {
        "exit_code": returncode,
        "timed_out": timed_out,
        "wall_time_seconds": round(time.monotonic() - start, 3),
    }, output


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench-dir", required=True,
                        help="directory containing the built bench binaries")
    parser.add_argument("--out", default="BENCH_baseline.json",
                        help="merged baseline output path")
    parser.add_argument("--benches", nargs="*", default=FIG_BENCHES,
                        help="bench binary names to run (default: fig3-fig9)")
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="per-bench timeout in seconds")
    args = parser.parse_args()

    baseline = {
        "schema": "rrmp-bench-baseline/1",
        "generated_by": "bench/run_baselines.py",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": {
            "machine": platform.machine(),
            "system": platform.system(),
            "cpu_count": os.cpu_count(),
        },
        "benches": {},
    }

    failures = []
    for name in args.benches:
        exe = os.path.join(args.bench_dir, name)
        if not os.path.exists(exe):
            print(f"error: bench binary not found: {exe}", file=sys.stderr)
            failures.append(name)
            continue
        print(f"[run_baselines] {name} ...", flush=True)
        with tempfile.TemporaryDirectory(prefix="rrmp-bench-") as json_dir:
            run, output = run_bench(exe, json_dir, args.timeout)
            # JsonReport names strip the bench_ prefix.
            report_path = os.path.join(json_dir, name.removeprefix("bench_") + ".json")
            run["report"] = None
            if os.path.exists(report_path):
                try:
                    with open(report_path) as f:
                        run["report"] = json.load(f)
                except (json.JSONDecodeError, OSError) as e:
                    print(f"warning: {name} wrote a malformed JSON report: {e}",
                          file=sys.stderr)
            else:
                print(f"warning: {name} produced no JSON report", file=sys.stderr)
        ok = run["exit_code"] == 0 and run["report"] is not None
        status = "ok" if ok else "FAILED"
        print(f"[run_baselines] {name}: {status} "
              f"({run['wall_time_seconds']}s)", flush=True)
        if not ok:
            # Surface the bench's own tables/verdict lines so CI logs say
            # which invariant broke, not just that something did.
            sys.stderr.write(output.decode(errors="replace"))
            failures.append(name)
        baseline["benches"][name] = run

    with open(args.out, "w") as f:
        json.dump(baseline, f, indent=2, sort_keys=False)
        f.write("\n")
    print(f"[run_baselines] wrote {args.out} "
          f"({len(baseline['benches'])} benches, {len(failures)} failed)")

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
