// Extension — capacity sweep (Buffer API v2): what happens when buffer
// memory actually runs out?
//
// The paper treats buffer memory as the scarce resource but never caps it;
// every scheme implicitly assumes the working set fits. With the budgeted
// BufferStore we can ask the question directly: a lossy stream through one
// region under the two-phase policy, with the per-member byte budget swept
// from unlimited down to a fraction of the expected working set
// (short-term copies in flight within the idle threshold T, plus the
// accumulating expected-C long-term copies per message).
//
// Expected shape: at or above the working set the budget is invisible —
// identical results to unlimited, zero evictions. Shrinking below it forces
// evictions of copies that requests still need, so recovery success
// degrades monotonically and unrecovered losses appear.
//
// RRMP_CAPACITY_POINTS=N (env) truncates the sweep to its first N points —
// the CI release leg smoke-runs 2 points so the sweep machinery is
// exercised on every PR without the full cost.
#include <cstdlib>
#include <iostream>
#include <vector>

#include "analysis/table.h"
#include "bench_util.h"
#include "harness/experiments.h"

int main() {
  using namespace rrmp;

  harness::StreamScenario scenario;
  scenario.region_size = 40;
  scenario.messages = 60;
  scenario.send_interval = Duration::millis(5);
  scenario.data_loss = 0.10;
  scenario.payload_bytes = 256;
  scenario.drain = Duration::millis(800);
  scenario.seed = 0xCA9'0001;

  // Budgets in wire-encoded Data-frame bytes (one 256 B payload frame is
  // ~271 B). 0 = unlimited; then roughly 48..2 frames per member.
  std::vector<std::size_t> budgets = {0,    16384, 8192, 4096,
                                      2048, 1024,  512};
  if (const char* env = std::getenv("RRMP_CAPACITY_POINTS")) {
    std::size_t n = std::strtoul(env, nullptr, 10);
    if (n >= 2 && n < budgets.size()) {
      // Keep the unlimited anchor plus the n-1 *smallest* budgets: a smoke
      // run must exercise the eviction/rejection machinery, and only
      // budgets below the working set do.
      std::vector<std::size_t> pruned = {0};
      pruned.insert(pruned.end(), budgets.end() - static_cast<std::ptrdiff_t>(n - 1),
                    budgets.end());
      budgets = std::move(pruned);
    }
  }

  bench::banner(
      "Extension: capacity sweep — recovery vs per-member buffer budget",
      "n = 40, 10% loss on the initial multicast, 60 msgs of 256 B, "
      "two-phase policy\n(T = 40 ms, C = 6). budget = max wire-encoded bytes "
      "buffered per member;\n0 = unlimited. Shrinking the budget below the "
      "working set evicts copies\nthat requests still need.");

  analysis::Table t({"budget B", "delivered", "recovery success",
                     "recovery ms", "evictions", "rejected", "unrecovered",
                     "peak B/member"});
  std::vector<double> success;
  std::vector<double> delivered;
  harness::CapacityOutcome unlimited{};
  std::uint64_t total_evictions = 0;
  for (std::size_t budget : budgets) {
    harness::CapacityOutcome o = harness::run_capacity_point(
        budget, buffer::PolicyKind::kTwoPhase, scenario);
    if (budget == 0) unlimited = o;
    success.push_back(o.recovery_success);
    delivered.push_back(o.delivered_fraction);
    total_evictions += o.evictions;
    t.add_row({budget == 0 ? "unlimited" : analysis::Table::num(
                                               static_cast<std::uint64_t>(budget)),
               analysis::Table::num(o.delivered_fraction, 3),
               analysis::Table::num(o.recovery_success, 3),
               analysis::Table::num(o.mean_recovery_ms, 2),
               analysis::Table::num(o.evictions),
               analysis::Table::num(o.rejected),
               analysis::Table::num(o.unrecovered),
               analysis::Table::num(o.peak_bytes_per_member, 0)});
  }
  t.print(std::cout);
  bench::maybe_write_csv("ext_capacity_sweep", t);

  bench::JsonReport report("ext_capacity_sweep");
  report.add_table("recovery vs per-member buffer budget", t);
  report.add_scalar("unlimited_recovery_success", unlimited.recovery_success);
  report.add_scalar("unlimited_delivered_fraction",
                    unlimited.delivered_fraction);
  report.add_scalar("min_budget_recovery_success", success.back());
  report.add_scalar("min_budget_delivered_fraction", delivered.back());
  report.add_scalar("total_evictions", static_cast<double>(total_evictions));

  report.verdict(unlimited.recovery_success >= 0.999 &&
                     unlimited.delivered_fraction >= 0.999,
                 "with an unlimited budget every loss is recovered (the "
                 "paper's operating point)");
  // Sampling noise at adjacent generous budgets is real; the *shape* target
  // is monotone degradation as memory shrinks.
  report.verdict(bench::non_increasing(success, 0.02),
                 "recovery success degrades monotonically as the budget "
                 "shrinks");
  if (budgets.size() >= 4) {
    report.verdict(success.back() < unlimited.recovery_success - 0.05 &&
                       total_evictions > 0,
                   "budgets below the working set force evictions and "
                   "measurably unrecoverable losses");
  }
  report.write_if_requested();
  return report.all_ok() ? 0 : 1;
}
