// Extension — graceful degradation under injected faults: the same
// flash-crowd workload (budget coordination + windowed flow control on)
// runs once per hostile-network cell, and the sweep asks two questions the
// robustness layer exists to answer: does goodput degrade *proportionally*
// to the injected hostility (no cliff), and does the protocol *always*
// finish recovering once the fault clears?
//
// Cells, in order:
//   clean        no faults — the control every other cell degrades from
//   partition    a minority of the receivers is severed from everyone else
//                a third into the burst; the wall comes down when the burst
//                ends, so the drain window measures post-heal backfill
//   lossy-edge   ~10% of receivers sit behind persistently lossy links
//                (LinkLossTable overrides on every link into them)
//   churn-storm  half the non-sender receivers crash a third into the burst
//                and rejoin two thirds through
//   digest-loss  a control-plane loss spike mid-burst (digests, credit
//                acks, requests and repairs all drop), restored later
//
// Every cell builds its timeline programmatically with FaultScript and
// schedules it through Cluster::schedule_script, so the sweep exercises the
// scripted-fault path end to end — the same path scenario_cli
// --fault-script drives from a spec file.
//
// Expected shape: the clean cell bounds every other cell's goodput from
// above. The faulted cells lose ground while their fault is active —
// severed packets, crashed receivers, dropped digests — but every one of
// them drains the open recoveries of every member that kept its state to
// zero, and every sender completes its schedule: degraded, never wedged.
// The churn cell is the one cell allowed a residual: a rejoiner starts
// empty and backfills its pre-crash history from whatever copies the region
// still holds, and under budget pressure some of that history is
// legitimately gone — those exhausted recoveries are reported apart
// (rej'd column) and its recovery-success ratio sits below 1 for the same
// reason. The liveness witnesses are the continuous members' drained
// recovery queues and the completed sender schedules, not that ratio.
//
// RRMP_FAULT_POINTS=N (env) truncates the sweep to the FIRST N cells — the
// CI release leg smoke-runs 2 (clean + partition), which covers the
// partition/heal/credit-release machinery on every PR.
#include <cstdlib>
#include <iostream>
#include <vector>

#include "analysis/table.h"
#include "bench_util.h"
#include "harness/experiments.h"

int main() {
  using namespace rrmp;

  harness::FaultScenario scenario;
  scenario.region_size = 24;
  scenario.senders = 4;
  scenario.messages_per_sender = 30;
  scenario.send_interval = Duration::millis(2);
  scenario.data_loss = 0.05;
  scenario.payload_bytes = 512;
  scenario.drain = Duration::millis(2500);
  scenario.seed = 0xFA'0001;
  scenario.budget_bytes = 8192;
  scenario.window_size = 8;
  scenario.ack_interval = Duration::millis(5);

  std::vector<harness::FaultCell> cells = {
      harness::FaultCell::kClean,      harness::FaultCell::kPartition,
      harness::FaultCell::kLossyEdge,  harness::FaultCell::kChurnStorm,
      harness::FaultCell::kDigestLoss,
  };
  if (const char* env = std::getenv("RRMP_FAULT_POINTS")) {
    std::size_t n = std::strtoul(env, nullptr, 10);
    if (n >= 1 && n < cells.size()) {
      // The FIRST n cells: clean is the baseline every verdict compares
      // against, and partition right after it is the cell the credit/digest
      // hardening exists for.
      cells.resize(n);
    }
  }

  bench::banner(
      "Extension: fault sweep — goodput and recovery under injected faults",
      "n = 24, 4 senders, 5% loss on the initial multicast, 30 msgs of 512 B "
      "per\nsender at 2 ms, per-member budget 8 KB, coordination + windowed "
      "flow (W = 8)\non, two-phase policy (T = 40 ms, C = 6). One run per "
      "cell, same schedule and\nseed; faults are scripted FaultScript "
      "timelines (partition a third into the\nburst healed at its end, 10% "
      "lossy edges, 50% non-sender crash storm,\ncontrol-plane loss spike).");

  analysis::Table t({"cell", "goodput", "fairness", "recovery", "rec ms",
                     "unrecovered", "rej'd", "completed", "severed",
                     "deferred", "releases", "evictions", "sheds"});

  std::vector<harness::FaultOutcome> outcomes;
  for (harness::FaultCell cell : cells) {
    harness::FaultOutcome o = harness::run_fault_cell(cell, scenario);
    outcomes.push_back(o);
    t.add_row({harness::fault_cell_name(cell),
               analysis::Table::num(o.goodput, 3),
               analysis::Table::num(o.fairness, 3),
               analysis::Table::num(o.recovery_success, 3),
               analysis::Table::num(o.mean_recovery_ms, 2),
               analysis::Table::num(o.unrecovered),
               analysis::Table::num(o.unrecovered_rejoined),
               analysis::Table::num(static_cast<std::uint64_t>(
                   o.senders_completed)),
               analysis::Table::num(o.severed),
               analysis::Table::num(o.deferred),
               analysis::Table::num(o.stall_releases),
               analysis::Table::num(o.evictions),
               analysis::Table::num(o.sheds)});
  }

  t.print(std::cout);
  bench::maybe_write_csv("ext_fault_sweep", t);

  const harness::FaultOutcome& clean = outcomes.front();
  bool clean_bounds = true;
  bool all_recovered = true;
  bool no_sender_wedged = true;
  std::uint64_t total_deferred = 0;
  for (const harness::FaultOutcome& o : outcomes) {
    if (o.goodput > clean.goodput + 1e-9) clean_bounds = false;
    if (o.unrecovered != 0) all_recovered = false;
    if (o.senders_completed != o.senders) no_sender_wedged = false;
    total_deferred += o.deferred;
  }

  bench::JsonReport report("ext_fault_sweep");
  report.add_table("degradation grid by fault cell", t);
  for (const harness::FaultOutcome& o : outcomes) {
    std::string cell = harness::fault_cell_name(o.cell);
    report.add_scalar("goodput_" + cell, o.goodput);
    report.add_scalar("recovery_" + cell, o.recovery_success);
    report.add_scalar("unrecovered_" + cell,
                      static_cast<double>(o.unrecovered));
    report.add_scalar("unrecovered_rejoined_" + cell,
                      static_cast<double>(o.unrecovered_rejoined));
    report.add_scalar("senders_completed_" + cell,
                      static_cast<double>(o.senders_completed));
  }
  report.add_scalar("total_deferred", static_cast<double>(total_deferred));

  report.verdict(clean.goodput >= 0.999,
                 "the clean cell delivers everything (goodput 1 under plain "
                 "5% data loss)");
  report.verdict(clean_bounds,
                 "the clean cell bounds every faulted cell's goodput from "
                 "above (degradation, never a gain from faults)");
  report.verdict(all_recovered,
                 "every member that kept its state drains its open "
                 "recoveries to zero after the fault clears (post-heal "
                 "recovery always completes; only a rejoiner's pre-crash "
                 "history may stay unrecoverable)");
  report.verdict(no_sender_wedged,
                 "no cell wedges a sender (every sender completes its full "
                 "schedule in every cell)");
  report.verdict(total_deferred > 0,
                 "the flow-control machinery actually engaged across the "
                 "sweep (sends deferred)");
  if (outcomes.size() > 1) {
    const harness::FaultOutcome& part = outcomes[1];
    report.add_scalar("severed_partition", static_cast<double>(part.severed));
    report.verdict(part.severed > 0,
                   "the partition actually severed traffic (packets dropped "
                   "at the partition wall)");
    report.verdict(part.goodput >= 0.999,
                   "the partitioned minority backfills everything it missed "
                   "once the wall comes down (partition-cell goodput 1)");
  }
  report.write_if_requested();
  return report.all_ok() ? 0 : 1;
}
