// Figure 6: effectiveness of feedback-based short-term buffering.
//
// A region of 100 members (RTT 10 ms, idle threshold T = 40 ms); m members
// hold a message after the initial IP multicast, the rest detect the loss
// simultaneously and run randomized local recovery. We measure how long the
// *initial* holders keep the message buffered (until their idle decision).
//
// Paper (log-scale y): decreases from ~110 ms at m=1 to ~40-45 ms at m=64 —
// buffer space concentrates on the messages fewest members have.
#include <iostream>

#include "analysis/table.h"
#include "bench_util.h"
#include "harness/experiments.h"

int main() {
  using namespace rrmp;
  constexpr std::size_t kRegion = 100;
  constexpr std::size_t kTrials = 30;

  bench::banner(
      "Figure 6: avg buffering time vs #members holding the message initially",
      "n = 100, RTT = 10 ms, T = 40 ms, 30 trials per point.\n"
      "Floor is T = 40 ms (a holder that never sees a request).");

  const std::vector<std::size_t> holders = {1, 2, 4, 8, 16, 32, 64};
  // Digitized from the paper's log-scale plot; approximate.
  const std::vector<double> paper_ms = {110, 100, 85, 70, 58, 50, 43};

  analysis::Table t(
      {"#initial holders", "paper ~ms", "measured ms", "samples"});
  std::vector<double> curve;
  for (std::size_t i = 0; i < holders.size(); ++i) {
    harness::Fig6Result r =
        harness::run_fig6_point(holders[i], kRegion, kTrials, 0xF16'6000 + i);
    curve.push_back(r.mean_buffer_ms);
    t.add_row({analysis::Table::num(static_cast<std::uint64_t>(holders[i])),
               analysis::Table::num(paper_ms[i], 0),
               analysis::Table::num(r.mean_buffer_ms, 1),
               analysis::Table::num(static_cast<std::uint64_t>(r.samples))});
  }
  t.print(std::cout);
  bench::maybe_write_csv("fig6_shortterm_buffering", t);

  bench::JsonReport report("fig6_shortterm_buffering");
  report.add_table("buffering time vs initial holders", t);
  report.add_scalar("mean_buffer_ms_1_holder", curve.front());
  report.add_scalar("mean_buffer_ms_64_holders", curve.back());

  bool monotone = bench::non_increasing(curve, /*slack=*/2.0);
  bool range_ok = curve.front() > 70.0 && curve.back() < 60.0 &&
                  curve.back() >= 40.0;
  report.verdict(monotone && range_ok,
                 "buffering time falls monotonically toward the T=40ms floor "
                 "as initial coverage grows");
  report.write_if_requested();
  return (monotone && range_ok) ? 0 : 1;
}
