// Microbenchmarks: simulator event queue, buffer policy operations,
// rendezvous hashing, random view picks (google-benchmark).
#include <benchmark/benchmark.h>

#include "buffer/hash_based.h"
#include "buffer/two_phase.h"
#include "membership/view.h"
#include "sim/simulator.h"

namespace {

using namespace rrmp;

void BM_SimulatorScheduleFire(benchmark::State& state) {
  sim::Simulator sim;
  std::int64_t t = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      sim.schedule_at(TimePoint::from_us(t + (i * 37) % 1000), [] {});
    }
    sim.run(64);
    t += 1000;
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SimulatorScheduleFire);

void BM_SimulatorCancel(benchmark::State& state) {
  sim::Simulator sim;
  for (auto _ : state) {
    auto id = sim.schedule_after(Duration::seconds(100), [] {});
    sim.cancel(id);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatorCancel);

// Minimal PolicyEnv over a Simulator for buffer-op microbenchmarks.
class BenchEnv final : public buffer::PolicyEnv {
 public:
  BenchEnv() : rng_(1) {
    members_.resize(100);
    for (std::size_t i = 0; i < members_.size(); ++i) {
      members_[i] = static_cast<MemberId>(i);
    }
  }
  TimePoint now() const override { return sim_.now(); }
  std::uint64_t schedule(Duration d, std::function<void()> fn) override {
    return sim_.schedule_after(d, std::move(fn)).value;
  }
  void cancel(std::uint64_t t) override { sim_.cancel(sim::TimerId{t}); }
  RandomEngine& rng() override { return rng_; }
  std::size_t region_size() const override { return members_.size(); }
  const std::vector<MemberId>& region_members() const override {
    return members_;
  }
  MemberId self() const override { return 0; }
  sim::Simulator& sim() { return sim_; }

 private:
  mutable sim::Simulator sim_;
  RandomEngine rng_;
  std::vector<MemberId> members_;
};

void BM_TwoPhaseStoreDiscard(benchmark::State& state) {
  BenchEnv env;
  buffer::TwoPhasePolicy policy(buffer::TwoPhaseParams{});
  policy.bind(&env);
  std::uint64_t seq = 0;
  std::vector<std::uint8_t> payload(256, 1);
  for (auto _ : state) {
    MessageId id{1, ++seq};
    policy.store(proto::Data{id, payload});
    policy.force_discard(id);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TwoPhaseStoreDiscard);

void BM_RendezvousHash(benchmark::State& state) {
  std::vector<MemberId> members(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < members.size(); ++i) {
    members[i] = static_cast<MemberId>(i);
  }
  std::uint64_t seq = 0;
  for (auto _ : state) {
    auto set = buffer::hash_bufferers(MessageId{1, ++seq}, members, 6);
    benchmark::DoNotOptimize(set);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RendezvousHash)->Arg(100)->Arg(1000);

void BM_ViewPickRandom(benchmark::State& state) {
  std::vector<MemberId> ms(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < ms.size(); ++i) ms[i] = static_cast<MemberId>(i);
  membership::RegionView view(ms);
  RandomEngine rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(view.pick_random(rng, 0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ViewPickRandom)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
