// Microbenchmarks: simulator event queue, buffer policy operations,
// rendezvous hashing, random view picks (google-benchmark).
#include <benchmark/benchmark.h>

#include <memory>

#include "buffer/hash_based.h"
#include "common/random.h"
#include "buffer/two_phase.h"
#include "membership/view.h"
#include "sim/simulator.h"

namespace {

using namespace rrmp;

void BM_SimulatorScheduleFire(benchmark::State& state) {
  sim::Simulator sim;
  std::int64_t t = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      sim.schedule_at(TimePoint::from_us(t + (i * 37) % 1000), [] {});
    }
    sim.run(64);
    t += 1000;
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SimulatorScheduleFire);

void BM_SimulatorCancel(benchmark::State& state) {
  sim::Simulator sim;
  for (auto _ : state) {
    auto id = sim.schedule_after(Duration::seconds(100), [] {});
    sim.cancel(id);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatorCancel);

void BM_SimulatorScheduleFireSharedPtrCapture(benchmark::State& state) {
  // The delivery-event shape: this-pointer + shared_ptr + two ids (40
  // bytes), inline in sim::Callback — the packet-path hot capture.
  sim::Simulator sim;
  auto payload = std::make_shared<const int>(7);
  std::int64_t t = 0;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      sim.schedule_at(TimePoint::from_us(t + (i * 37) % 1000),
                      [payload, &sink, to = i, from = i + 1] {
                        sink += *payload + static_cast<std::uint64_t>(to + from);
                      });
    }
    sim.run(64);
    t += 1000;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SimulatorScheduleFireSharedPtrCapture);

void BM_BinomialDraw(benchmark::State& state) {
  // range(0): n. p chosen so n=100 exercises BINV inversion and n=1000
  // BTPE rejection — the fig3/fig4 Monte Carlo kernels.
  RandomEngine rng(17);
  auto n = static_cast<std::uint64_t>(state.range(0));
  double p = n >= 1000 ? 0.36 : 0.06;  // n·p: 360 (BTPE) vs 6 (BINV)
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sink += rng.binomial(n, p);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BinomialDraw)->Arg(100)->Arg(1000);

// Minimal PolicyEnv over a Simulator for buffer-op microbenchmarks.
class BenchEnv final : public buffer::PolicyEnv {
 public:
  BenchEnv() : rng_(1) {
    members_.resize(100);
    for (std::size_t i = 0; i < members_.size(); ++i) {
      members_[i] = static_cast<MemberId>(i);
    }
  }
  TimePoint now() const override { return sim_.now(); }
  std::uint64_t schedule(Duration d, std::function<void()> fn) override {
    return sim_.schedule_after(d, std::move(fn)).value;
  }
  void cancel(std::uint64_t t) override { sim_.cancel(sim::TimerId{t}); }
  RandomEngine& rng() override { return rng_; }
  std::size_t region_size() const override { return members_.size(); }
  const std::vector<MemberId>& region_members() const override {
    return members_;
  }
  MemberId self() const override { return 0; }
  sim::Simulator& sim() { return sim_; }

 private:
  mutable sim::Simulator sim_;
  RandomEngine rng_;
  std::vector<MemberId> members_;
};

void BM_TwoPhaseStoreDiscard(benchmark::State& state) {
  BenchEnv env;
  buffer::BufferStore store(
      std::make_unique<buffer::TwoPhasePolicy>(buffer::TwoPhaseParams{}));
  store.bind(&env);
  std::uint64_t seq = 0;
  std::vector<std::uint8_t> payload(256, 1);
  for (auto _ : state) {
    MessageId id{1, ++seq};
    store.store(proto::Data{id, payload});
    store.force_discard(id);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TwoPhaseStoreDiscard);

void BM_RendezvousHash(benchmark::State& state) {
  std::vector<MemberId> members(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < members.size(); ++i) {
    members[i] = static_cast<MemberId>(i);
  }
  std::uint64_t seq = 0;
  for (auto _ : state) {
    auto set = buffer::hash_bufferers(MessageId{1, ++seq}, members, 6);
    benchmark::DoNotOptimize(set);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RendezvousHash)->Arg(100)->Arg(1000);

void BM_RendezvousHashReusedSelector(benchmark::State& state) {
  // The hot-path form: scratch buffers persist across messages.
  std::vector<MemberId> members(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < members.size(); ++i) {
    members[i] = static_cast<MemberId>(i);
  }
  buffer::BuffererSelector selector;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    const auto& set = selector.select(MessageId{1, ++seq}, members, 6);
    benchmark::DoNotOptimize(set.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RendezvousHashReusedSelector)->Arg(100)->Arg(1000);

void BM_RendezvousMembershipTest(benchmark::State& state) {
  // HashBasedPolicy::on_stored's "should I buffer?" test (no set built).
  std::vector<MemberId> members(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < members.size(); ++i) {
    members[i] = static_cast<MemberId>(i);
  }
  buffer::BuffererSelector selector;
  std::uint64_t seq = 0;
  std::uint64_t hits = 0;
  for (auto _ : state) {
    hits += selector.selects(MessageId{1, ++seq}, members, 6, 3) ? 1 : 0;
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RendezvousMembershipTest)->Arg(100)->Arg(1000);

void BM_ViewPickRandom(benchmark::State& state) {
  std::vector<MemberId> ms(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < ms.size(); ++i) ms[i] = static_cast<MemberId>(i);
  membership::RegionView view(ms);
  RandomEngine rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(view.pick_random(rng, 0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ViewPickRandom)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
