// Ablation A6 — randomized back-off suppressing duplicate regional
// multicasts (§2.2, [14]).
//
// With lambda > 1, several members of a region receive remote repairs for
// the same message at nearly the same time; each would re-multicast it in
// the region. The randomized back-off lets the first relay suppress the
// rest, trading a little repair latency for far fewer duplicate multicasts.
#include <iostream>

#include "analysis/stats.h"
#include "analysis/table.h"
#include "bench_util.h"
#include "harness/cluster.h"

int main() {
  using namespace rrmp;
  constexpr std::size_t kChild = 40;
  constexpr std::size_t kParent = 20;
  constexpr std::size_t kTrials = 40;
  constexpr double kLambda = 4.0;

  bench::banner(
      "Ablation A6: duplicate-relay suppression via randomized back-off "
      "(Sec. 2.2)",
      "Whole 40-member child region misses a message; lambda = 4 so several\n"
      "members fetch remote repairs concurrently. Counting regional repair\n"
      "multicasts per loss (1 is ideal) and repair completion time.");

  analysis::Table t({"backoff", "regional multicasts", "suppressed",
                     "repair ms"});
  double dup_no_backoff = 0, dup_backoff = 0;
  // The window must exceed the intra-region one-way latency (5 ms), or the
  // first relay cannot reach the others before their own timers fire.
  for (Duration backoff : {Duration::zero(), Duration::millis(15)}) {
    std::vector<double> relays, repaired_ms;
    std::uint64_t suppressed = 0;
    for (std::size_t trial = 0; trial < kTrials; ++trial) {
      harness::ClusterConfig cc;
      cc.region_sizes = {kParent, kChild};
      // Keep the parent close enough that remote repairs return while the
      // parent still short-term-buffers (inside the 40 ms idle threshold);
      // the concurrent repairs then hit several child members at once.
      cc.inter_one_way = Duration::millis(15);
      cc.protocol.lambda = kLambda;
      cc.protocol.regional_backoff = backoff;
      cc.seed = 0xAB6'0000 + trial;
      harness::Cluster cluster(cc);
      std::vector<MemberId> parent = cluster.region_members(0);
      MessageId id = cluster.inject_data_to(parent[0], 1, parent);
      cluster.inject_session_to(parent[0], 1, cluster.region_members(1));
      cluster.run_until_quiet(Duration::seconds(3));

      relays.push_back(static_cast<double>(
          cluster.metrics().counters().regional_multicasts));
      suppressed += cluster.metrics().counters().relays_suppressed;
      TimePoint done = TimePoint::zero();
      for (const auto& ev : cluster.metrics().deliveries()) {
        if (ev.id == id && ev.at > done) done = ev.at;
      }
      repaired_ms.push_back(done.ms());
    }
    double mean_relays = analysis::mean(relays);
    if (backoff == Duration::zero()) {
      dup_no_backoff = mean_relays;
    } else {
      dup_backoff = mean_relays;
    }
    t.add_row({backoff == Duration::zero() ? "none" : "U(0,15ms)",
               analysis::Table::num(mean_relays, 2),
               analysis::Table::num(
                   static_cast<double>(suppressed) / kTrials, 2),
               analysis::Table::num(analysis::mean(repaired_ms), 1)});
  }
  t.print(std::cout);

  bench::JsonReport report("ablation_regional_backoff");
  report.add_table("regional relay duplication vs back-off", t);
  report.add_scalar("mean_relays_no_backoff", dup_no_backoff);
  report.add_scalar("mean_relays_backoff", dup_backoff);

  bool ok = dup_backoff < dup_no_backoff && dup_backoff < 2.5;
  report.verdict(ok, "back-off cuts duplicate regional multicasts");
  report.write_if_requested();
  return ok ? 0 : 1;
}
