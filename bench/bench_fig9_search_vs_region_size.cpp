// Figure 9: search time as the region grows from 100 to 1000 members, with
// the number of bufferers fixed at 10.
//
// Paper: search time grows far more slowly than region size — a 10x larger
// region costs only ~2.2x the search time; at n=1000 the bufferers are 1%
// of the region, a 100x buffer-space saving over buffer-everywhere.
#include <iostream>

#include "analysis/table.h"
#include "bench_util.h"
#include "harness/experiments.h"

int main(int argc, char** argv) {
  using namespace rrmp;
  constexpr std::size_t kBufferers = 10;
  constexpr std::size_t kTrials = 120;

  harness::ExperimentDefaults defaults;
  defaults.shards = bench::parse_shards(argc, argv);

  bench::banner("Figure 9: search time vs region size",
                "k = 10 bufferers, RTT = 10 ms, 120 trials per point "
                "(--shards=" + std::to_string(defaults.shards) + ").");

  // Digitized from the paper's plot; approximate.
  const std::vector<double> paper_ms = {20, 26, 30, 33, 36, 38, 40, 42, 43, 45};

  analysis::Table t({"region size", "paper ~ms", "measured ms"});
  std::vector<double> curve;
  for (std::size_t n = 100; n <= 1000; n += 100) {
    double ms = harness::mean_search_ms(n, kBufferers, kTrials, 0xF16'9000 + n,
                                        defaults);
    curve.push_back(ms);
    t.add_row({analysis::Table::num(static_cast<std::uint64_t>(n)),
               analysis::Table::num(paper_ms[n / 100 - 1], 1),
               analysis::Table::num(ms, 1)});
  }
  t.print(std::cout);
  bench::maybe_write_csv("fig9_search_vs_region_size", t);

  double growth = curve.back() / curve.front();
  bool monotone = bench::non_decreasing(curve, /*slack=*/6.0);
  bool sublinear = growth > 1.3 && growth < 4.0;  // paper: ~2.2x for 10x size
  std::cout << "search-time growth for 10x region growth: " << growth
            << "x (paper: ~2.2x)\n";

  bench::JsonReport report("fig9_search_vs_region_size");
  report.add_table("search time vs region size", t);
  report.add_scalar("search_ms_n100", curve.front());
  report.add_scalar("search_ms_n1000", curve.back());
  report.add_scalar("growth_factor", growth);
  report.verdict(monotone && sublinear,
                 "search time grows sublinearly with region size");
  report.write_if_requested();
  return (monotone && sublinear) ? 0 : 1;
}
