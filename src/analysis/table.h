// Console table and CSV emitters for the benchmark harness. Every figure
// bench prints one of these with a "paper" column next to the measured one.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rrmp::analysis {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` digits after the point.
  static std::string num(double v, int precision = 2);
  static std::string num(std::uint64_t v);

  /// Render with aligned columns.
  void print(std::ostream& os) const;

  /// Comma-separated (quotes cells containing commas).
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

  /// Raw access for structured emitters (JSON bench reports).
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& row_cells() const {
    return rows_;
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a bench section header ("== Figure 8: ... ==").
void print_banner(std::ostream& os, const std::string& title);

}  // namespace rrmp::analysis
