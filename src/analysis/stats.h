// Descriptive statistics for experiment outputs.
#pragma once

#include <cstddef>
#include <vector>

namespace rrmp::analysis {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Mean of a sample; 0 for empty input.
double mean(const std::vector<double>& xs);

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 points.
double stddev(const std::vector<double>& xs);

/// Linear-interpolated percentile, q in [0, 100].
double percentile(std::vector<double> xs, double q);

Summary summarize(const std::vector<double>& xs);

/// Fixed-width histogram over [lo, hi) with `bins` buckets; out-of-range
/// values clamp to the edge buckets.
std::vector<std::size_t> histogram(const std::vector<double>& xs, double lo,
                                   double hi, std::size_t bins);

}  // namespace rrmp::analysis
