#include "analysis/analytic.h"

#include <cmath>
#include <limits>

namespace rrmp::analysis {

double binomial_pmf(std::uint64_t n, double p, std::uint64_t k) {
  if (k > n) return 0.0;
  if (p <= 0.0) return k == 0 ? 1.0 : 0.0;
  if (p >= 1.0) return k == n ? 1.0 : 0.0;
  double log_choose = std::lgamma(static_cast<double>(n) + 1) -
                      std::lgamma(static_cast<double>(k) + 1) -
                      std::lgamma(static_cast<double>(n - k) + 1);
  double log_pmf = log_choose + static_cast<double>(k) * std::log(p) +
                   static_cast<double>(n - k) * std::log1p(-p);
  return std::exp(log_pmf);
}

double poisson_pmf(double c, std::uint64_t k) {
  if (c <= 0.0) return k == 0 ? 1.0 : 0.0;
  double log_pmf = -c + static_cast<double>(k) * std::log(c) -
                   std::lgamma(static_cast<double>(k) + 1);
  return std::exp(log_pmf);
}

double prob_no_bufferer(double c) { return std::exp(-c); }

double prob_no_request(std::uint64_t n, double p) {
  if (n < 2) return 1.0;
  double base = 1.0 - 1.0 / static_cast<double>(n - 1);
  return std::pow(base, static_cast<double>(n) * p);
}

double prob_no_request_approx(double p) { return std::exp(-p); }

double required_c(double p_target) {
  if (p_target >= 1.0) return 0.0;
  if (p_target <= 0.0) return std::numeric_limits<double>::infinity();
  return -std::log(p_target);
}

}  // namespace rrmp::analysis
