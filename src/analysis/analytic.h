// Closed-form expressions from the paper, used as ground truth by the
// figure benchmarks and property tests.
#pragma once

#include <cstdint>

namespace rrmp::analysis {

/// Binomial pmf: P[K = k], K ~ Binomial(n, p). Computed in log space.
double binomial_pmf(std::uint64_t n, double p, std::uint64_t k);

/// Poisson pmf: P[K = k], K ~ Poisson(c) — the paper's large-region
/// approximation of the long-term bufferer count (§3.2): e^-C * C^k / k!.
double poisson_pmf(double c, std::uint64_t k);

/// P[no long-term bufferer] = e^-C (§3.2, Figure 4).
double prob_no_bufferer(double c);

/// §3.1: probability that a member receives no retransmission request when
/// a fraction p of an n-member region misses a message:
/// (1 - 1/(n-1))^(n*p).
double prob_no_request(std::uint64_t n, double p);

/// The paper's large-n approximation of prob_no_request: e^-p.
double prob_no_request_approx(double p);

/// Smallest C such that P[no long-term bufferer] = e^-C <= p_target —
/// how an operator sizes C for a reliability goal (inverse of Figure 4).
double required_c(double p_target);

}  // namespace rrmp::analysis
