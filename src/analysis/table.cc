#include "analysis/table.h"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace rrmp::analysis {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::num(std::uint64_t v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      os << (c + 1 == row.size() ? " |\n" : " | ");
    }
  };
  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << (c + 1 == headers_.size() ? "|\n" : "+");
  }
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      bool quote = row[c].find(',') != std::string::npos;
      if (quote) os << '"';
      os << row[c];
      if (quote) os << '"';
      os << (c + 1 == row.size() ? "\n" : ",");
    }
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace rrmp::analysis
