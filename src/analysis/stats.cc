#include "analysis/stats.h"

#include <algorithm>
#include <cmath>

namespace rrmp::analysis {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double percentile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  q = std::clamp(q, 0.0, 100.0);
  double rank = q / 100.0 * static_cast<double>(xs.size() - 1);
  auto lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

Summary summarize(const std::vector<double>& xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  s.p50 = percentile(xs, 50);
  s.p90 = percentile(xs, 90);
  s.p99 = percentile(xs, 99);
  return s;
}

std::vector<std::size_t> histogram(const std::vector<double>& xs, double lo,
                                   double hi, std::size_t bins) {
  std::vector<std::size_t> out(bins, 0);
  if (bins == 0 || hi <= lo) return out;
  double width = (hi - lo) / static_cast<double>(bins);
  for (double x : xs) {
    auto b = static_cast<std::ptrdiff_t>((x - lo) / width);
    b = std::clamp<std::ptrdiff_t>(b, 0, static_cast<std::ptrdiff_t>(bins) - 1);
    ++out[static_cast<std::size_t>(b)];
  }
  return out;
}

}  // namespace rrmp::analysis
