// RRMP protocol endpoint: one per group member.
//
// Implements the paper end to end:
//  - loss detection from sequence gaps and session messages (§2.1),
//  - concurrent local + remote recovery phases (§2.2):
//      local: request from a uniformly random region neighbor, retry on an
//             RTT timer;
//      remote: request from a random parent-region member with probability
//              lambda/|region| per attempt (timer armed regardless),
//  - waiter forwarding: a member asked for a message it never received
//    records the requester and relays on receipt (§2.2),
//  - regional multicast of remote repairs, with randomized back-off to
//    suppress duplicates (§2.2),
//  - buffer management by a BufferStore (owned by the endpoint, budgeted
//    via Config::buffer_budget) driven by a pluggable RetentionPolicy;
//    retransmission requests feed the two-phase policy's idle detection
//    (§3.1),
//  - random search for a bufferer of a discarded message (§3.3), terminated
//    by an "I have the message" regional multicast,
//  - long-term buffer handoff on voluntary leave (§3.2),
//  - optional cooperative region-wide budgets: periodic BufferDigest gossip
//    advertising the held id set + bytes in use, replica-aware eviction, and
//    shed handoffs pushing sole-copy entries to the least-loaded neighbor
//    under budget pressure (Config::buffer_coordination),
//  - optional deterministic hash-direct lookup instead of randomized
//    search, reproducing the authors' earlier scheme [11] (§3.4),
//  - optional history exchange driving the stability-detection baseline,
//  - optional hierarchical repair trees (Config::hierarchy): each region's
//    rendezvous-elected representative aggregates the region's NAKs —
//    members direct their first local request at it, non-representatives
//    skip the remote phase entirely, and only representatives escalate a
//    miss (one Escalate frame) to the parent region's representative; the
//    root region's representative falls back to the original sender.
//    Hierarchy-mode retries back off exponentially so retry traffic stays
//    bounded at million-member scale.
//
// The endpoint is transport-agnostic: it talks only to an IHost, so the same
// code runs on the discrete-event simulator and on loopback UDP sockets.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "buffer/hash_based.h"
#include "buffer/policy.h"
#include "common/flat_map.h"
#include "buffer/stability.h"
#include "buffer/store.h"
#include "rrmp/config.h"
#include "rrmp/flow_control.h"
#include "rrmp/gossip_fd.h"
#include "rrmp/host.h"
#include "rrmp/metrics.h"
#include "rrmp/rtt_estimator.h"
#include "rrmp/sequence_tracker.h"

namespace rrmp {

class Endpoint {
 public:
  /// `metrics` may be nullptr. The policy must be unbound; the endpoint
  /// builds a BufferStore around it (budgeted by config.buffer_budget) and
  /// binds the pair to its own PolicyEnv.
  Endpoint(IHost& host, Config config,
           std::unique_ptr<buffer::RetentionPolicy> policy,
           MetricsSink* metrics = nullptr);
  ~Endpoint();

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  // --- application interface -----------------------------------------

  /// Multicast a new message to the whole group (this member is the
  /// sender). Returns the assigned id. With flow control enabled
  /// (Config::flow), a frame that exceeds the send window is queued and
  /// transmitted — in id order — as peer credit arrives; the id is
  /// assigned immediately either way.
  MessageId multicast(std::vector<std::uint8_t> payload);

  /// Called once for each distinct message received (any order).
  void set_delivery_handler(std::function<void(const proto::Data&)> fn) {
    delivery_handler_ = std::move(fn);
  }

  /// Gracefully leave the group: hand the long-term buffer to randomly
  /// selected region members (§3.2) and stop all activity.
  void leave();

  /// Stop without handoff (crash in tests; also used on shutdown).
  void halt();

  // --- transport interface --------------------------------------------

  /// Feed an incoming message (the host's receive path calls this).
  void handle_message(const proto::Message& msg, MemberId from);

  /// The region view changed (join/leave/crash). Flow-control credit state
  /// is reconciled *now* rather than at the next credit tick: departed
  /// peers' cursors stop wedging the window floor immediately, and a
  /// joiner's cursor is seeded at the current floor so its first (empty)
  /// acks cannot drag the floor back to 0. No-op when flow is off.
  void on_view_change();

  /// Connectivity changed (fault injection: a partition formed or healed).
  /// `unreachable` lists the region peers that are alive-but-severed from
  /// this member; `generation` is the cluster's connectivity generation,
  /// stamped on outgoing CreditAcks/BufferDigests and checked on receipt so
  /// credit state that crossed a partition boundary is rejected wholesale.
  /// Credit bindings to newly unreachable peers are released immediately —
  /// a severed peer must not wedge the window floor for the partition's
  /// lifetime — and at heal the other side re-seeds at the current floor,
  /// exactly like genuine joiners. Never called in fault-free runs.
  void on_partition_change(std::vector<MemberId> unreachable,
                           std::uint64_t generation);

  // --- introspection ----------------------------------------------------

  MemberId self() const { return host_.self(); }
  bool active() const { return active_; }
  const buffer::BufferStore& buffer() const { return *store_; }
  buffer::BufferStore& buffer() { return *store_; }

  bool has_received(const MessageId& id) const;
  std::uint64_t received_count() const;
  std::size_t active_recoveries() const { return recoveries_.size(); }
  std::size_t active_searches() const { return searches_.size(); }
  std::size_t waiter_count() const { return waiters_.size(); }
  std::uint64_t highest_sent() const { return send_seq_; }

  /// Flow-control window state (meaningful when config.flow.enabled).
  const FlowController& flow() const { return flow_; }
  /// Connectivity generation last reported by on_partition_change (0 in
  /// fault-free runs).
  std::uint64_t view_generation() const { return view_gen_; }
  /// Frames admitted by multicast() but not yet transmitted (window full).
  std::size_t queued_sends() const { return send_queue_.size(); }

  /// Missing sequence numbers currently known for `source`.
  std::vector<std::uint64_t> missing_from(MemberId source) const;

  /// Start the gossip failure detector (optional; suspicion is reported to
  /// on_suspect so the host can filter its views).
  void enable_gossip_fd(GossipConfig config,
                        std::function<void(MemberId, bool)> on_suspect);

  /// Measured-RTT state (populated when config.measure_rtt is set).
  const RttEstimator& rtt_estimator() const { return rtt_; }

 private:
  // PolicyEnv implementation handed to the buffer policy.
  class Env final : public buffer::PolicyEnv {
   public:
    explicit Env(Endpoint& ep) : ep_(ep) {}
    TimePoint now() const override;
    std::uint64_t schedule(Duration d, std::function<void()> fn) override;
    void cancel(std::uint64_t timer) override;
    RandomEngine& rng() override;
    std::size_t region_size() const override;
    const std::vector<MemberId>& region_members() const override;
    MemberId self() const override;
    buffer::BudgetState budget() const override;

   private:
    Endpoint& ep_;
  };

  struct RecoveryTask {
    TimePoint started;
    TimerHandle local_timer = kNoTimer;
    TimerHandle remote_timer = kNoTimer;
    std::uint32_t local_attempts = 0;
    std::uint32_t remote_attempts = 0;
    /// Hierarchy mode: escalation levels already climbed to reach us. 0 for
    /// a gap we detected ourselves; an escalation-triggered recovery carries
    /// the incoming hop + 1, so a cyclic (misconfigured) topology trips the
    /// max_hops guard instead of forwarding forever.
    std::uint32_t escalate_hop = 0;
  };

  struct SearchTask {
    TimePoint started;
    /// Requesters carried in outgoing SearchRequests (front is forwarded).
    std::vector<MemberId> carry;
    /// Requesters that contacted *this* member directly (RemoteRequest);
    /// when another member's chain finds the holder, these are forwarded to
    /// the holder so they are never left unserved.
    std::vector<MemberId> own;
    TimerHandle timer = kNoTimer;
    std::uint32_t attempts = 0;
  };

  struct PendingRelay {
    TimerHandle timer = kNoTimer;
    proto::Data data;
  };

  /// kMulticastQuery strategy: a bufferer's delayed "I have it" reply.
  struct PendingReply {
    TimerHandle timer = kNoTimer;
    MemberId requester = kInvalidMember;
  };

  // Message handlers.
  void handle_data(const proto::Data& d, MemberId from);
  void handle_session(const proto::Session& s, MemberId from);
  void handle_local_request(const proto::LocalRequest& r, MemberId from);
  void handle_remote_request(const proto::RemoteRequest& r, MemberId from);
  void handle_repair(const proto::Repair& r, MemberId from);
  void handle_regional_repair(const proto::RegionalRepair& r, MemberId from);
  void handle_search_request(const proto::SearchRequest& r, MemberId from);
  void handle_search_found(const proto::SearchFound& r, MemberId from);
  void handle_handoff(const proto::Handoff& h, MemberId from);
  void handle_gossip(const proto::Gossip& g, MemberId from);
  void handle_history(const proto::History& h, MemberId from);
  void handle_buffer_digest(const proto::BufferDigest& d, MemberId from);
  void handle_shed(const proto::Shed& s, MemberId from);
  void handle_credit_ack(const proto::CreditAck& a, MemberId from);
  void handle_escalate(const proto::Escalate& e, MemberId from);

  // Reception path shared by data/repair/regional-repair/handoff.
  // Returns true if the message was new.
  bool accept(const proto::Data& d, bool from_remote_region);

  // Recovery.
  void start_recovery(const MessageId& id);
  void finish_recovery(const MessageId& id);
  void local_attempt(const MessageId& id);
  void remote_attempt(const MessageId& id);
  MemberId pick_request_target(const MessageId& id);

  // Hierarchical repair (cfg_.hierarchy). Representatives are recomputed
  // lazily whenever the host's view epoch or the connectivity generation
  // moved; election excludes partition-severed peers so an unreachable
  // representative never blackholes the region's NAK funnel.
  void refresh_representatives();
  MemberId region_representative();
  MemberId parent_representative();
  bool is_representative() { return region_representative() == self(); }
  /// Hierarchy-mode retry pacing: `base` doubled per prior attempt, capped
  /// at base << hierarchy.max_backoff_shift. Identity outside hierarchy mode.
  Duration retry_backoff(Duration base, std::uint32_t attempts) const;

  // Search (§3.3).
  void start_search(const MessageId& id, MemberId requester);
  void search_attempt(const MessageId& id);
  void end_search(const MessageId& id, MemberId holder);
  void schedule_query_reply(const MessageId& id, MemberId requester);
  void fire_query_reply(const MessageId& id);
  /// Known holder from a recently completed search, if still fresh.
  MemberId cached_holder(const MessageId& id);
  void remember_holder(const MessageId& id, MemberId holder);
  /// Multicast "I have the message" unless we already announced it within
  /// the last intra-region RTT (straggler probes must not cause a storm of
  /// re-announcements).
  void announce_found(const MessageId& id);

  // Regional relay of remote repairs.
  void schedule_regional_relay(const proto::Data& d);
  void fire_regional_relay(const MessageId& id);

  // Stability baseline support.
  void history_tick();
  void recompute_stability();

  // Anti-entropy engine (Bimodal Multicast [3]).
  void anti_entropy_tick();
  void pull_from_digest(const proto::History& digest, MemberId from);
  proto::History build_history() const;

  // Session messages (sender only).
  void session_tick();

  // Cooperative budget coordination: periodic regional digest multicast.
  void digest_tick();

  // Flow control (Config::flow): periodic CreditAck multicast + queue drain.
  void credit_tick();
  /// True when the window admits a frame of `bytes` right now (always true
  /// when alone in the region: there is no peer to grant credit).
  bool flow_admits(std::size_t bytes) const;
  /// Assign the wire sequence, deliver locally, and transmit one frame.
  void transmit_frame(proto::Data d);
  /// Transmit queued frames while credit allows.
  void drain_send_queue();
  /// This member's per-source receive cursors — the payload of a CreditAck
  /// and of the piggyback block on outgoing Data/Session frames.
  std::vector<proto::ReceiveCursor> cursor_snapshot() const;
  /// Apply a piggybacked cursor block from a region peer's Data/Session
  /// frame (same credit semantics as a CreditAck's cursor list).
  void handle_piggyback(const std::vector<proto::ReceiveCursor>& cursors,
                        MemberId from);
  /// Diff the current reachable peer set against flow_view_ and seed
  /// cursors for members that genuinely joined — or just became reachable
  /// again at a partition heal (churn-safe credit state).
  void sync_flow_peers();
  /// The live view minus currently-unreachable peers (flow control's peer
  /// universe). Returns the view itself when no partition is active.
  const std::vector<MemberId>& flow_peers() const;
  /// True when an active partition severs us from `m`.
  bool flow_unreachable(MemberId m) const;

  // Helpers.
  void serve_waiters(const proto::Data& d);
  void satisfy_searches(const proto::Data& d);
  TimerHandle schedule(Duration d, std::function<void()> fn);
  void cancel(TimerHandle& t);
  Duration request_timeout(MemberId peer) const;
  MetricsSink& metrics() { return *metrics_; }
  SequenceTracker& tracker(MemberId source) { return trackers_[source]; }

  IHost& host_;
  Config cfg_;
  Env env_;
  std::unique_ptr<buffer::BufferStore> store_;
  NullSink null_sink_;
  MetricsSink* metrics_;
  std::function<void(const proto::Data&)> delivery_handler_;

  bool active_ = true;
  // Liveness token captured by every timer guard: halt() cancels the timers
  // it tracks, but buffer-policy timers it does not — a timer that outlives
  // this endpoint (e.g. the member was replaced after a rejoin) must find a
  // dead token instead of dereferencing a freed `this`.
  std::shared_ptr<bool> alive_token_ = std::make_shared<bool>(true);
  std::uint64_t send_seq_ = 0;  // last sequence sent (this member as sender)
  /// Last sequence *assigned* by multicast(). With flow control off this
  /// always equals send_seq_; with it on, ids in (send_seq_, next_app_seq_]
  /// sit in send_queue_ awaiting credit. Session messages announce only
  /// send_seq_ — an unsent frame must not be reported as a loss.
  std::uint64_t next_app_seq_ = 0;
  TimerHandle session_timer_ = kNoTimer;
  TimerHandle history_timer_ = kNoTimer;
  TimerHandle anti_entropy_timer_ = kNoTimer;
  TimerHandle digest_timer_ = kNoTimer;
  TimerHandle credit_timer_ = kNoTimer;

  // Flow control state (inert when cfg_.flow.enabled is false).
  FlowController flow_;
  std::deque<proto::Data> send_queue_;  // admitted, not yet transmitted
  /// Stall detection for sender-driven retransmission: the window floor as
  /// of the last credit tick, and how many ticks it has sat still with
  /// frames outstanding. Receiver-side recovery can give up (max_attempts)
  /// while our pinned copy of the blocking frame still exists — without a
  /// sender retransmit that one frame wedges the window forever.
  std::uint64_t stall_floor_ = 0;
  std::uint32_t stall_ticks_ = 0;
  static constexpr std::uint32_t kStallRetransmitTicks = 3;
  /// Consecutive stall re-multicasts of the same wedged floor: each one
  /// doubles the tick threshold before the next (up to
  /// kStallRetransmitTicks << kMaxStallBackoffShift), so a receiver that is
  /// genuinely gone stops drawing a region-wide re-multicast every few
  /// ticks. Reset the moment the floor advances.
  std::uint32_t stall_streak_ = 0;
  static constexpr std::uint32_t kMaxStallBackoffShift = 3;
  /// Transmitted frames not yet below the window floor, oldest first. The
  /// sender is the retransmission source of last resort for its own window:
  /// the BufferStore may evict these copies under budget pressure (they
  /// compete with every other sender's frames), but the window cannot move
  /// past a frame some receiver never got. Bounded by the window size plus
  /// any transient floor drop, i.e. a handful of frames.
  std::deque<proto::Data> flow_unacked_;
  /// Region membership as of the last flow reconciliation; diffed against
  /// the live view to tell genuine joiners (seed their cursor at the floor)
  /// from peers that merely have not acked yet (who must keep their right
  /// to drag the floor back when their first real ack arrives).
  std::vector<MemberId> flow_view_;
  /// Fault injection: region peers severed from us by an active partition
  /// (sorted; empty in fault-free runs) and the cluster's connectivity
  /// generation, stamped on outgoing credit state and matched on receipt.
  std::vector<MemberId> flow_unreachable_;
  std::uint64_t view_gen_ = 0;
  mutable std::vector<MemberId> flow_peers_scratch_;

  // AIMD probe-round state (cfg_.flow.adaptive). A round is the larger of
  // ack_interval and the measured RTT of the slowest peer; a round in which
  // the floor advanced with no stall grows the window by one.
  TimePoint aimd_round_start_{};
  std::uint64_t aimd_round_floor_ = 0;
  bool aimd_loss_in_round_ = false;

  // Cursor piggybacking (cfg_.flow.piggyback): the cursor set most recently
  // advertised on any channel (piggybacked frame or CreditAck). The credit
  // tick suppresses its CreditAck while the live snapshot still equals this
  // — but refreshes at least every kQuietAckRefreshTicks ticks, because a
  // lost piggybacked frame would otherwise leave peers stale indefinitely.
  std::vector<proto::ReceiveCursor> advertised_cursors_;
  bool advertised_any_ = false;
  std::uint32_t quiet_ticks_ = 0;
  static constexpr std::uint32_t kQuietAckRefreshTicks = 8;

  // Hierarchical-repair representative cache (cfg_.hierarchy.enabled);
  // rep_epoch_ mirrors host_.view_epoch() and rep_generation_ mirrors
  // view_gen_ as of the last election.
  MemberId local_rep_ = kInvalidMember;
  MemberId parent_rep_ = kInvalidMember;
  bool rep_cache_valid_ = false;
  std::uint64_t rep_epoch_ = 0;
  std::uint64_t rep_generation_ = 0;
  std::vector<MemberId> rep_scratch_;

  std::map<MemberId, SequenceTracker> trackers_;
  // Flat open-addressing maps on the per-message hot path: at million-member
  // scale the recovery/waiter churn outgrows unordered_map's node traffic.
  common::FlatMap<MessageId, RecoveryTask> recoveries_;
  // Outstanding local probes per message, for RTT sampling: when we FIRST
  // probed each target. Attributing a repair to the first probe of its
  // sender avoids Karn's retransmission ambiguity (a retry to the same
  // target would otherwise yield a near-zero sample).
  std::unordered_map<MessageId, std::map<MemberId, TimePoint>> probes_;
  RttEstimator rtt_;
  common::FlatMap<MessageId, std::vector<MemberId>> waiters_;
  std::unordered_map<MessageId, SearchTask> searches_;
  std::unordered_map<MessageId, PendingRelay> pending_relays_;
  std::unordered_map<MessageId, PendingReply> pending_replies_;
  // id -> (holder, recorded_at); entries expire after search_cache_ttl.
  std::unordered_map<MessageId, std::pair<MemberId, TimePoint>> found_cache_;
  // id -> when we last multicast SearchFound for it ourselves.
  std::unordered_map<MessageId, TimePoint> last_announce_;
  // Negative cache: searches we abandoned after max_attempts. Without it,
  // probes from other (still-active) searchers would resurrect our task and
  // a futile search would sustain itself forever. Expires with
  // search_cache_ttl; cleared if the message or a holder turns up.
  std::unordered_map<MessageId, TimePoint> search_given_up_;
  bool search_abandoned(const MessageId& id);

  // Stability baseline state.
  buffer::StabilityTracker stability_;
  bool history_enabled_ = false;

  // Scratch for hash-direct bufferer lookups (reused, no per-call allocs).
  buffer::BuffererSelector selector_;
  std::vector<MemberId> bufferer_scratch_;

  std::unique_ptr<GossipFailureDetector> gossip_fd_;
};

}  // namespace rrmp
