#include "rrmp/rtt_estimator.h"

#include <algorithm>
#include <cmath>

namespace rrmp {

void RttEstimator::add_sample(MemberId peer, Duration rtt) {
  if (rtt < Duration::zero()) return;  // clock skew artifact: ignore
  auto sample_us = static_cast<double>(rtt.us());
  auto [it, inserted] = peers_.try_emplace(peer);
  PeerState& st = it->second;
  if (inserted) {
    // First sample: classic initialization (rttvar = sample/2).
    st.srtt_us = sample_us;
    st.rttvar_us = sample_us / 2.0;
    return;
  }
  double err = std::abs(st.srtt_us - sample_us);
  st.rttvar_us = (1.0 - config_.beta) * st.rttvar_us + config_.beta * err;
  st.srtt_us = (1.0 - config_.alpha) * st.srtt_us + config_.alpha * sample_us;
}

Duration RttEstimator::srtt(MemberId peer, Duration fallback) const {
  auto it = peers_.find(peer);
  if (it == peers_.end()) return fallback;
  return Duration::micros(static_cast<std::int64_t>(it->second.srtt_us));
}

Duration RttEstimator::max_srtt(Duration fallback) const {
  if (peers_.empty()) return fallback;
  double worst = 0;
  for (const auto& [peer, st] : peers_) worst = std::max(worst, st.srtt_us);
  return Duration::micros(static_cast<std::int64_t>(worst));
}

Duration RttEstimator::rto(MemberId peer, Duration fallback) const {
  auto it = peers_.find(peer);
  if (it == peers_.end()) {
    return std::clamp(fallback, config_.min_rto, config_.max_rto);
  }
  auto rto_us = static_cast<std::int64_t>(it->second.srtt_us +
                                          4.0 * it->second.rttvar_us);
  return std::clamp(Duration::micros(rto_us), config_.min_rto,
                    config_.max_rto);
}

}  // namespace rrmp
