// Windowed send admission with credit-based feedback (flow control).
//
// The paper's buffer optimizations assume senders are paced; without
// admission control a flash crowd of senders overruns every per-member and
// region budget simultaneously and the coordination loop can only shuffle
// losses around. This module adds the missing pacing, adapting two proven
// designs:
//
//   - Derecho's SST multicast window: a sender may have at most
//     `window_size` Data frames outstanding (sent but not yet acknowledged
//     by every region peer). Receivers advertise per-source receive cursors
//     (the highest contiguously received sequence, the analogue of
//     Derecho's num_received counters) in periodic CreditAck frames; the
//     minimum cursor across peers is the window floor, and each cursor
//     advance releases credits.
//   - DFI's BufferWriterMulticast target budgets: an optional cap on the
//     outstanding *bytes* in flight, so a slow receiver throttles only its
//     sender's stream, never the region.
//
// Region-aware back-pressure: peers advertise buffer occupancy (bytes in
// use vs budget) in both CreditAck frames and the BufferDigest gossip. When
// any peer is at or past the pressure watermark, the sender halves its
// effective window — shedding credit from the senders *before* eviction
// pressure hits the receiver's buffer.
//
// FlowController is pure state (no host, no timers, no RNG): the Endpoint
// feeds it acks/digests and asks may_send() before transmitting; deferred
// frames wait in the endpoint's FIFO queue. Everything is inert unless
// FlowControlParams::enabled is set — the disabled protocol is bit-identical
// to the unpaced one.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/time.h"
#include "common/types.h"

namespace rrmp {

struct FlowControlParams {
  /// Master switch; everything below is inert when false.
  bool enabled = false;

  /// Maximum outstanding (sent, not yet peer-acknowledged) Data frames per
  /// sender — the slot-ring size. Sanitized to >= 1.
  std::uint32_t window_size = 32;

  /// Cap on outstanding wire bytes per sender (DFI-style target budget);
  /// 0 = frames-only windowing. A frame is always admitted when nothing is
  /// outstanding, so one oversized frame can never wedge the stream.
  std::size_t target_budget_bytes = 0;

  /// Period of the receiver-side CreditAck multicast (receive cursors +
  /// buffer occupancy). Keep at or below the RTT for a responsive window.
  Duration ack_interval = Duration::millis(10);

  /// Region-aware back-pressure: halve the effective window while any peer
  /// advertises occupancy at or past `pressure_watermark` of its budget.
  bool backpressure = true;
  double pressure_watermark = 0.75;

  /// AIMD window sizing. When on, the live window starts at `min_window`
  /// and grows by one frame per *clean credit round* (a probe period — the
  /// larger of ack_interval and the measured RTT — in which the floor
  /// advanced with no stall), and halves on an observed loss/stall, bounded
  /// to [min_window, ceiling] where ceiling = max_window, or the static
  /// `window_size` knob when max_window is 0. Off (the default): the window
  /// is the static `window_size`, bit-identical to the non-adaptive design.
  bool adaptive = false;
  std::uint32_t min_window = 2;
  std::uint32_t max_window = 0;  // 0 = window_size is the ceiling

  /// Piggyback this member's receive cursors on its outgoing Data/Session
  /// frames and suppress the periodic CreditAck multicast while those
  /// piggybacked cursors are fresh — CreditAck becomes a fallback for quiet
  /// receivers (plus a periodic refresh in case frames were lost).
  bool piggyback = false;

  /// Exponential backoff between stall re-multicasts of the same wedged
  /// frame: the stall tick threshold doubles per re-multicast (capped at
  /// 8x) and resets when the floor advances, so a frame wedged behind a
  /// congested window isn't re-injected into it at a fixed cadence. Off
  /// (the default): the flat retransmit cadence of the previous revision.
  bool stall_backoff = false;

  friend bool operator==(const FlowControlParams&,
                         const FlowControlParams&) = default;

  /// The adaptive window's upper bound (equals window_size when off or when
  /// max_window is unset).
  std::uint32_t ceiling() const {
    return adaptive && max_window != 0 ? max_window : window_size;
  }
};

/// Per-sender window state: outstanding frames/bytes against the minimum
/// peer receive cursor, plus the region occupancy view driving back-pressure.
/// All containers are ordered maps so every decision is deterministic across
/// runs and shard counts.
class FlowController {
 public:
  FlowController() : FlowController(FlowControlParams{}, 0) {}
  /// `self_budget_bytes` is the fallback budget used to judge a peer's
  /// advertised occupancy when the peer has not reported its own budget
  /// (BufferDigest carries bytes only); 0 = unlimited, never pressured.
  FlowController(FlowControlParams params, std::size_t self_budget_bytes);

  // --- sender side --------------------------------------------------------

  /// May a frame of `frame_bytes` wire bytes be transmitted now?
  bool may_send(std::size_t frame_bytes) const;

  /// Record a transmitted frame. `seq` must be exactly send_seq() + 1 —
  /// frames enter the wire in sequence order, which is what keeps the
  /// cumulative-bytes ring covering [floor, send_seq].
  void on_frame_sent(std::uint64_t seq, std::size_t frame_bytes);

  /// Record a deferred admission (frame queued instead of sent).
  void note_deferred() { ++frames_deferred_; }

  // --- feedback -----------------------------------------------------------

  /// A peer acknowledged contiguous receipt of our stream through `cursor`
  /// (0 = nothing yet). Monotone: stale acks never retract credit.
  void on_cursor(MemberId peer, std::uint64_t cursor);

  /// Peer occupancy from a CreditAck (carries the peer's own budget).
  void on_peer_budget(MemberId peer, std::uint64_t bytes_in_use,
                      std::uint64_t budget_bytes);

  /// Peer occupancy from the BufferDigest gossip: buffer bytes (judged
  /// against the peer's last reported budget, else self_budget_bytes) plus
  /// the peer's own advertised window occupancy — the crowd signal that
  /// splits the pressured window across concurrent senders.
  void on_peer_occupancy(MemberId peer, std::uint64_t bytes_in_use,
                         std::uint64_t window_outstanding);

  /// Drop state for peers no longer in `alive` (departed members must not
  /// wedge the window floor or pin phantom pressure). Sorted view expected.
  void retain_peers(const std::vector<MemberId>& alive);

  /// A member joined the region mid-stream: seed its cursor at the current
  /// window floor instead of letting its first ack (necessarily 0 — it has
  /// received nothing contiguously) drag the floor back to 0 and inflate
  /// outstanding() past the window. on_cursor's monotonicity then holds the
  /// seed until the joiner genuinely catches up; the joiner backfills the
  /// older frames through the recovery path, not the flow window.
  void on_peer_joined(MemberId peer);

  /// Liveness escape hatch for a window wedged on *seeded* cursors: a peer
  /// whose binding sits at the floor but who never genuinely reported that
  /// high is still backfilling history *below* the floor (a rejoined member
  /// whose pre-crash state was evicted region-wide may never finish), so
  /// re-multicasting the frame at the floor cannot unwedge it. When every
  /// floor-holding peer is in that state, advance their bindings one frame
  /// and return true; reliability for the skipped history stays with the
  /// recovery layer. If any floor holder honestly reported the floor this
  /// returns false and changes nothing — that stall belongs to the
  /// re-multicast path. Never fires in churn-free runs: without seeding,
  /// bindings equal reports by construction.
  bool release_stalled_peers();

  // --- AIMD (adaptive window sizing) --------------------------------------

  /// A clean probe round elapsed (floor advanced, no stall observed):
  /// additive increase by one frame, capped at params().ceiling(). No-op
  /// unless params().adaptive.
  void on_clean_round();

  /// Loss/stall observed on our stream (a stall re-multicast fired):
  /// multiplicative decrease — halve, floored at min_window. No-op unless
  /// params().adaptive.
  void on_loss();

  // --- introspection ------------------------------------------------------

  std::uint64_t send_seq() const { return send_seq_; }
  /// Minimum receive cursor over reporting peers (0 until anyone reports).
  std::uint64_t window_floor() const;
  /// True backlog: may exceed window_size transiently when a late-joining
  /// peer first reports a cursor of 0 (its recovery of the earlier frames
  /// catches the cursor up; until then the window stays closed).
  std::uint64_t outstanding() const { return send_seq_ - window_floor(); }
  /// Bytes of the unacknowledged tail, clamped to the newest frames the
  /// cumulative ring covers (max(window_size, ceiling); see outstanding()).
  std::uint64_t outstanding_bytes() const;
  /// Credits available right now: effective_window() - outstanding(),
  /// clamped at 0. Never exceeds current_window() by construction.
  std::uint64_t credits() const;
  /// The AIMD-governed base window: cwnd when adaptive, else the static
  /// window_size knob.
  std::uint32_t current_window() const {
    return params_.adaptive ? cwnd_ : params_.window_size;
  }
  /// current_window() while the region is unpressured. Under pressure (any
  /// peer at or past the occupancy watermark): halved, then split evenly
  /// across the senders currently advertising outstanding frames in the
  /// digest gossip (min 1) — a lone sender backs off a little, a flash crowd
  /// backs off to a trickle that the receivers' budgets can actually absorb.
  std::uint32_t effective_window() const;
  bool pressured() const;

  // Exact goodput accounting (asserted by the property tests).
  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t bytes_sent() const { return cum_bytes_total_; }
  std::uint64_t frames_deferred() const { return frames_deferred_; }

  const FlowControlParams& params() const { return params_; }

 private:
  std::uint64_t cum_bytes_at(std::uint64_t seq) const;
  /// How far behind send_seq_ the cumulative ring reaches (= ring size - 1).
  std::uint64_t ring_span() const { return cum_ring_.size() - 1; }

  FlowControlParams params_;
  std::size_t self_budget_bytes_ = 0;
  /// AIMD congestion window; meaningful only when params_.adaptive.
  std::uint32_t cwnd_ = 1;

  std::uint64_t send_seq_ = 0;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_deferred_ = 0;
  std::uint64_t cum_bytes_total_ = 0;

  /// Ring of cumulative byte counts: ring_[s % (window_size+1)] holds the
  /// total bytes through sequence s, for every s in [send_seq - window_size,
  /// send_seq] — the floor can never lag further than the window allows, so
  /// outstanding_bytes() is always covered.
  std::vector<std::uint64_t> cum_ring_;

  /// peer -> highest acknowledged contiguous sequence of our stream.
  std::map<MemberId, std::uint64_t> cursors_;

  /// peer -> highest cursor the peer *itself* ever reported this
  /// incarnation (monotone; erased with cursors_ on departure). Diverges
  /// from cursors_ only when on_peer_joined seeded the binding above the
  /// joiner's truth — the signal release_stalled_peers keys on.
  std::map<MemberId, std::uint64_t> reported_;

  struct PeerLoad {
    std::uint64_t bytes_in_use = 0;
    std::uint64_t budget_bytes = 0;  // 0 = not reported / unlimited
    /// The peer's advertised sender-window occupancy (BufferDigest gossip):
    /// nonzero marks it a concurrent sender for the crowd split.
    std::uint64_t window_outstanding = 0;
  };
  std::map<MemberId, PeerLoad> loads_;
};

/// Clamp nonsensical knob values (window 0, non-positive ack period,
/// watermark outside (0, 1], min_window of 0 or above the AIMD ceiling) to
/// safe ones; mirrors Config sanitizing.
FlowControlParams sanitized(FlowControlParams p);

}  // namespace rrmp
