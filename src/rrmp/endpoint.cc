#include "rrmp/endpoint.h"

#include <algorithm>
#include <cassert>

#include "buffer/hash_based.h"
#include "common/logging.h"
#include "proto/codec.h"

namespace rrmp {
namespace {

constexpr std::size_t kHistoryBitmapWords = 16;

bool contains(const std::vector<MemberId>& v, MemberId m) {
  return std::find(v.begin(), v.end(), m) != v.end();
}

/// Applied before any member is built from the config, so the BufferStore
/// (whose anti-ping-pong age gate reads digest_interval) and the digest
/// timer can never disagree about the clamped value. A non-positive period
/// would re-arm digest_tick at the same instant forever, wedging the event
/// loop, and would silently disable the store's shed damping.
Config sanitized(Config c) {
  if (c.buffer_coordination.enabled &&
      c.buffer_coordination.digest_interval <= Duration::zero()) {
    c.buffer_coordination.digest_interval = Duration::micros(1);
  }
  c.flow = rrmp::sanitized(c.flow);
  return c;
}

}  // namespace

// ---------------------------------------------------------------- Env ----

TimePoint Endpoint::Env::now() const { return ep_.host_.now(); }

std::uint64_t Endpoint::Env::schedule(Duration d, std::function<void()> fn) {
  return ep_.schedule(d, std::move(fn));
}

void Endpoint::Env::cancel(std::uint64_t timer) { ep_.host_.cancel(timer); }

RandomEngine& Endpoint::Env::rng() { return ep_.host_.rng(); }

std::size_t Endpoint::Env::region_size() const {
  return ep_.host_.local_view().size();
}

const std::vector<MemberId>& Endpoint::Env::region_members() const {
  return ep_.host_.local_view().members();
}

MemberId Endpoint::Env::self() const { return ep_.host_.self(); }

buffer::BudgetState Endpoint::Env::budget() const {
  return ep_.store_->budget_state();
}

// ----------------------------------------------------------- lifecycle ----

Endpoint::Endpoint(IHost& host, Config config,
                   std::unique_ptr<buffer::RetentionPolicy> policy,
                   MetricsSink* metrics)
    : host_(host),
      cfg_(sanitized(std::move(config))),
      env_(*this),
      // cfg_, not config: the store must see the sanitized coordination
      // knobs (cfg_ is declared before store_, so it is built first).
      store_(std::make_unique<buffer::BufferStore>(std::move(policy),
                                                   cfg_.buffer_budget,
                                                   cfg_.buffer_coordination)),
      metrics_(metrics != nullptr ? metrics : &null_sink_),
      // Our own budget doubles as the fallback yardstick for peers that
      // advertise occupancy without a budget (BufferDigest gossip).
      flow_(cfg_.flow, cfg_.buffer_budget.max_bytes) {
  store_->bind(&env_);
  store_->set_observer(
      [this](const MessageId& id, buffer::BufferEvent ev, bool long_term) {
        switch (ev) {
          case buffer::BufferEvent::kStored:
            this->metrics().on_buffer_stored(self(), id, host_.now());
            break;
          case buffer::BufferEvent::kPromotedLongTerm:
            this->metrics().on_promoted_long_term(self(), id, host_.now());
            break;
          case buffer::BufferEvent::kDiscarded:
          case buffer::BufferEvent::kHandedOff:
          case buffer::BufferEvent::kEvicted:
          case buffer::BufferEvent::kShedHandoff:
            this->metrics().on_buffer_discarded(self(), id, host_.now(), long_term);
            break;
        }
      });
  if (store_->policy().needs_history_exchange()) cfg_.history_exchange = true;
  if (cfg_.history_exchange) {
    history_enabled_ = true;
    history_timer_ =
        schedule(cfg_.history_interval, [this] { history_tick(); });
  }
  if (cfg_.anti_entropy) {
    anti_entropy_timer_ =
        schedule(cfg_.anti_entropy_interval, [this] { anti_entropy_tick(); });
  }
  if (cfg_.buffer_coordination.enabled) {
    store_->set_shed_handler([this](const proto::Data& d, MemberId target) {
      if (!active_) return false;
      // The least-loaded neighbor is picked from digest advertisements,
      // which lag the view by up to one period: a member that just left can
      // still look like the best target. A shed to a departed member is a
      // silently lost copy counted as "moved" — fall back to plain eviction
      // (return false) so the accounting stays honest.
      if (!host_.local_view().contains(target)) return false;
      this->metrics().on_handoff_sent(self(), target, 1, host_.now());
      host_.send(target, proto::Message{proto::Shed{self(), d}});
      return true;
    });
    digest_timer_ = schedule(cfg_.buffer_coordination.digest_interval,
                             [this] { digest_tick(); });
  }
  if (cfg_.flow.enabled) {
    flow_view_ = host_.local_view().members();
    aimd_round_start_ = host_.now();
    credit_timer_ = schedule(cfg_.flow.ack_interval, [this] { credit_tick(); });
  }
}

Endpoint::~Endpoint() {
  halt();
  *alive_token_ = false;  // defuse any timer guard still in a queue
}

void Endpoint::halt() {
  if (!active_) return;
  active_ = false;
  cancel(session_timer_);
  cancel(history_timer_);
  cancel(anti_entropy_timer_);
  cancel(digest_timer_);
  cancel(credit_timer_);
  send_queue_.clear();
  flow_unacked_.clear();
  for (auto& [id, task] : recoveries_) {
    cancel(task.local_timer);
    cancel(task.remote_timer);
  }
  recoveries_.clear();
  for (auto& [id, task] : searches_) cancel(task.timer);
  searches_.clear();
  for (auto& [id, relay] : pending_relays_) cancel(relay.timer);
  pending_relays_.clear();
  for (auto& [id, reply] : pending_replies_) cancel(reply.timer);
  pending_replies_.clear();
  waiters_.clear();
  if (gossip_fd_) gossip_fd_->stop();
}

void Endpoint::leave() {
  if (!active_) return;
  // Transfer each long-term message to a randomly selected region member
  // (§3.2), batching per target into Handoff messages.
  std::vector<proto::Data> drained = store_->drain_for_handoff();
  std::map<MemberId, proto::Handoff> batches;
  for (proto::Data& d : drained) {
    MemberId target = host_.local_view().pick_random(host_.rng(), self());
    if (target == kInvalidMember) break;  // nobody left to inherit
    batches[target].messages.push_back(std::move(d));
  }
  for (auto& [target, handoff] : batches) {
    metrics().on_handoff_sent(self(), target, handoff.messages.size(),
                              host_.now());
    host_.send(target, proto::Message{std::move(handoff)});
  }
  halt();
}

void Endpoint::enable_gossip_fd(GossipConfig config,
                                std::function<void(MemberId, bool)> on_suspect) {
  gossip_fd_ = std::make_unique<GossipFailureDetector>(host_, config,
                                                       std::move(on_suspect));
  gossip_fd_->start();
}

// ----------------------------------------------------------- app API ----

MessageId Endpoint::multicast(std::vector<std::uint8_t> payload) {
  if (!cfg_.flow.enabled) {
    MessageId id{self(), ++send_seq_};
    next_app_seq_ = send_seq_;
    proto::Data d{id, std::move(payload)};
    accept(d, /*from_remote_region=*/false);
    host_.ip_multicast(proto::Message{d});
    if (session_timer_ == kNoTimer) {
      session_timer_ =
          schedule(cfg_.session_interval, [this] { session_tick(); });
    }
    return id;
  }
  // Flow-controlled path: the id is assigned now (the application's send
  // order is the wire order), but transmission waits for window credit.
  MessageId id{self(), ++next_app_seq_};
  proto::Data d{id, std::move(payload)};
  if (send_queue_.empty() &&
      flow_admits(proto::encoded_size(proto::Message{d}))) {
    transmit_frame(std::move(d));
  } else {
    flow_.note_deferred();
    metrics().on_send_deferred(self(), id, host_.now());
    send_queue_.push_back(std::move(d));
  }
  return id;
}

bool Endpoint::flow_admits(std::size_t bytes) const {
  // Alone in the region there is no peer to grant credit — windowing would
  // wedge the stream after window_size frames, so it does not apply.
  if (host_.local_view().size() <= 1) return true;
  return flow_.may_send(bytes);
}

void Endpoint::transmit_frame(proto::Data d) {
  assert(d.id.seq == send_seq_ + 1 && "queue drains in id order");
  send_seq_ = d.id.seq;
  // The window accounts the core (cursor-free) frame size: retransmissions
  // and repairs carry the core form, and the piggyback block is feedback
  // overhead, not stream backlog.
  std::size_t bytes = proto::encoded_size(proto::Message{d});
  accept(d, /*from_remote_region=*/false);
  flow_unacked_.push_back(d);
  if (cfg_.flow.piggyback && host_.local_view().size() > 1) {
    // Attach our receive cursors to the wire copy only — the stored and
    // retransmission copies stay cursor-free (nested/repair encodings and
    // buffer byte accounting use the core layout).
    proto::Data wire = std::move(d);  // payload is refcounted, copy is cheap
    wire.cursors = cursor_snapshot();
    advertised_cursors_ = wire.cursors;
    advertised_any_ = true;
    host_.ip_multicast(proto::Message{std::move(wire)});
  } else {
    host_.ip_multicast(proto::Message{std::move(d)});
  }
  flow_.on_frame_sent(send_seq_, bytes);
  if (session_timer_ == kNoTimer) {
    session_timer_ =
        schedule(cfg_.session_interval, [this] { session_tick(); });
  }
}

void Endpoint::drain_send_queue() {
  while (!send_queue_.empty() &&
         flow_admits(proto::encoded_size(proto::Message{send_queue_.front()}))) {
    proto::Data d = std::move(send_queue_.front());
    send_queue_.pop_front();
    transmit_frame(std::move(d));
  }
}

void Endpoint::session_tick() {
  session_timer_ = kNoTimer;
  if (send_seq_ == 0) return;
  proto::Session s{self(), send_seq_};
  if (cfg_.flow.enabled && cfg_.flow.piggyback &&
      host_.local_view().size() > 1) {
    s.cursors = cursor_snapshot();
    advertised_cursors_ = s.cursors;
    advertised_any_ = true;
  }
  host_.ip_multicast(proto::Message{std::move(s)});
  session_timer_ = schedule(cfg_.session_interval, [this] { session_tick(); });
}

// ------------------------------------------------------------ dispatch ----

void Endpoint::handle_message(const proto::Message& msg, MemberId from) {
  if (!active_) return;
  std::visit(
      [this, from](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, proto::Data>) handle_data(m, from);
        if constexpr (std::is_same_v<T, proto::Session>) handle_session(m, from);
        if constexpr (std::is_same_v<T, proto::LocalRequest>)
          handle_local_request(m, from);
        if constexpr (std::is_same_v<T, proto::RemoteRequest>)
          handle_remote_request(m, from);
        if constexpr (std::is_same_v<T, proto::Repair>) handle_repair(m, from);
        if constexpr (std::is_same_v<T, proto::RegionalRepair>)
          handle_regional_repair(m, from);
        if constexpr (std::is_same_v<T, proto::SearchRequest>)
          handle_search_request(m, from);
        if constexpr (std::is_same_v<T, proto::SearchFound>)
          handle_search_found(m, from);
        if constexpr (std::is_same_v<T, proto::Handoff>) handle_handoff(m, from);
        if constexpr (std::is_same_v<T, proto::Gossip>) handle_gossip(m, from);
        if constexpr (std::is_same_v<T, proto::History>) handle_history(m, from);
        if constexpr (std::is_same_v<T, proto::BufferDigest>)
          handle_buffer_digest(m, from);
        if constexpr (std::is_same_v<T, proto::Shed>) handle_shed(m, from);
        if constexpr (std::is_same_v<T, proto::CreditAck>)
          handle_credit_ack(m, from);
        if constexpr (std::is_same_v<T, proto::Escalate>)
          handle_escalate(m, from);
      },
      msg);
}

// ------------------------------------------------------------ reception ----

bool Endpoint::accept(const proto::Data& d, bool from_remote_region) {
  SequenceTracker& tr = tracker(d.id.source);
  if (tr.has(d.id.seq)) return false;

  SequenceTracker::Observation obs = tr.observe_data(d.id.seq);
  assert(obs.is_new);
  for (std::uint64_t gap : obs.new_gaps) {
    start_recovery(MessageId{d.id.source, gap});
  }

  // If we were recovering this message, the recovery just succeeded.
  auto rec = recoveries_.find(d.id);
  if (rec != recoveries_.end()) {
    metrics().on_recovered(self(), d.id, host_.now(),
                           host_.now() - rec->second.started);
    finish_recovery(d.id);
  }

  store_->store(d);
  search_given_up_.erase(d.id);  // we can answer future searches again
  metrics().on_delivered(self(), d.id, host_.now());
  if (delivery_handler_) delivery_handler_(d);

  serve_waiters(d);
  satisfy_searches(d);
  (void)from_remote_region;  // relaying decisions are made by handle_repair
  return true;
}

void Endpoint::serve_waiters(const proto::Data& d) {
  auto it = waiters_.find(d.id);
  if (it == waiters_.end()) return;
  for (MemberId w : it->second) {
    metrics().on_repair_sent(self(), d.id, /*remote=*/true, host_.now());
    host_.send(w, proto::Message{proto::Repair{d.id, d.payload, true}});
  }
  waiters_.erase(it);
}

void Endpoint::satisfy_searches(const proto::Data& d) {
  auto it = searches_.find(d.id);
  if (it == searches_.end()) return;
  SearchTask& task = it->second;
  std::vector<MemberId> all = task.carry;
  for (MemberId m : task.own) {
    if (!contains(all, m)) all.push_back(m);
  }
  for (MemberId rr : all) {
    metrics().on_repair_sent(self(), d.id, /*remote=*/true, host_.now());
    host_.send(rr, proto::Message{proto::Repair{d.id, d.payload, true}});
  }
  cancel(task.timer);
  searches_.erase(it);
  // Stop everyone else still searching on our behalf.
  announce_found(d.id);
}

// ------------------------------------------------------------- handlers ----

void Endpoint::handle_data(const proto::Data& d, MemberId from) {
  if (!d.cursors.empty()) {
    handle_piggyback(d.cursors, from);
    // Strip the piggyback block before storing: buffered, handoff, and
    // repair copies are always the core frame (payload is shared, so this
    // copy is cheap).
    accept(proto::Data{d.id, d.payload}, /*from_remote_region=*/false);
    return;
  }
  accept(d, /*from_remote_region=*/false);
}

void Endpoint::handle_session(const proto::Session& s, MemberId from) {
  if (!s.cursors.empty()) handle_piggyback(s.cursors, from);
  if (s.source == self()) return;
  for (std::uint64_t gap : tracker(s.source).observe_session(s.highest_seq)) {
    start_recovery(MessageId{s.source, gap});
  }
}

void Endpoint::handle_piggyback(
    const std::vector<proto::ReceiveCursor>& cursors, MemberId from) {
  if (!cfg_.flow.enabled) return;
  if (from == self()) return;  // the multicast loops back
  // Flow control is regional: cursors piggybacked on a *global* Data
  // multicast also reach other regions, where the sender is not a credit
  // peer. Same guard as a departed-member CreditAck.
  if (!host_.local_view().contains(from)) return;
  // A frame in flight when a partition formed can still arrive from a peer
  // now severed from us; installing its cursor would re-wedge the floor
  // on_partition_change just released.
  if (flow_unreachable(from)) return;
  // Same semantics as a CreditAck cursor list: every advertising region
  // peer bounds our window, absent cursor = nothing received yet (0).
  std::uint64_t cursor = 0;
  for (const proto::ReceiveCursor& c : cursors) {
    if (c.source == self()) cursor = c.cursor;
  }
  flow_.on_cursor(from, cursor);
  drain_send_queue();
}

void Endpoint::handle_local_request(const proto::LocalRequest& r,
                                    MemberId from) {
  (void)from;
  metrics().on_request_received(self(), r.id, /*remote=*/false, host_.now());
  store_->on_request_seen(r.id);  // feedback for short-term buffering (§3.1)
  if (std::optional<proto::Data> d = store_->get(r.id)) {
    metrics().on_repair_sent(self(), r.id, /*remote=*/false, host_.now());
    host_.send(r.requester,
               proto::Message{proto::Repair{r.id, std::move(d->payload), false}});
    return;
  }
  if (cfg_.hierarchy.enabled && is_representative()) {
    // Aggregation point: the region's NAK funnel lands here, so a miss is
    // ours to recover (escalating up the repair tree as needed). The
    // requester is NOT recorded as a waiter — when the repair arrives it
    // comes back remote and the regional relay covers the whole region; the
    // requester's own retries are the fallback if that relay is lost.
    SequenceTracker& tr = tracker(r.id.source);
    if (!tr.has(r.id.seq)) {
      for (std::uint64_t gap : tr.observe_hint(r.id.seq)) {
        start_recovery(MessageId{r.id.source, gap});
      }
      return;
    }
  }
  // "Otherwise it ignores the request" (§2.2). Starting a recovery here
  // would let one request cascade into region-wide probing for a message
  // that may exist nowhere; the requester's own retries handle it.
}

void Endpoint::handle_remote_request(const proto::RemoteRequest& r,
                                     MemberId from) {
  (void)from;
  metrics().on_request_received(self(), r.id, /*remote=*/true, host_.now());
  store_->on_request_seen(r.id);
  // Case 1 (§3.3): still buffered — answer immediately.
  if (std::optional<proto::Data> d = store_->get(r.id)) {
    metrics().on_repair_sent(self(), r.id, /*remote=*/true, host_.now());
    host_.send(r.requester,
               proto::Message{proto::Repair{r.id, std::move(d->payload), true}});
    return;
  }
  SequenceTracker& tr = tracker(r.id.source);
  // Case 2: never received — record the waiter and relay once we have it.
  if (!tr.has(r.id.seq)) {
    std::vector<MemberId>& w = waiters_[r.id];
    if (!contains(w, r.requester)) w.push_back(r.requester);
    for (std::uint64_t gap : tr.observe_hint(r.id.seq)) {
      start_recovery(MessageId{r.id.source, gap});
    }
    return;
  }
  // Case 3: received but discarded — find a bufferer.
  if (MemberId holder = cached_holder(r.id); holder != kInvalidMember) {
    // A recent search already located a bufferer; point it at the requester.
    host_.send(holder, proto::Message{proto::RemoteRequest{r.id, r.requester}});
    return;
  }
  if (cfg_.search_strategy == Config::SearchStrategy::kMulticastQuery) {
    // Rejected alternative (§3.3): multicast the request; bufferers answer
    // after a randomized back-off.
    metrics().on_search_started(self(), r.id, host_.now());
    host_.multicast_region(
        proto::Message{proto::SearchRequest{r.id, r.requester}});
    return;
  }
  if (cfg_.lookup == BuffererLookup::kHashDirect) {
    // Deterministic scheme [11]: recompute the bufferer set and forward.
    const std::vector<MemberId>& set =
        selector_.select(r.id, host_.local_view().members(), cfg_.hash_k);
    for (MemberId b : set) {
      if (b != self()) {
        host_.send(b, proto::Message{proto::RemoteRequest{r.id, r.requester}});
        return;
      }
    }
    // Fall through to random search if the set is just us (we discarded).
  }
  start_search(r.id, r.requester);
}

void Endpoint::handle_escalate(const proto::Escalate& e, MemberId from) {
  (void)from;
  if (!cfg_.hierarchy.enabled) return;  // config mismatch: drop the frame
  if (e.hop >= cfg_.hierarchy.max_hops) return;  // runaway-forwarding guard
  metrics().on_request_received(self(), e.id, /*remote=*/true, host_.now());
  store_->on_request_seen(e.id);
  // Still buffered: repair the child representative; its regional relay
  // then covers its whole sub-region with one multicast.
  if (std::optional<proto::Data> d = store_->get(e.id)) {
    metrics().on_repair_sent(self(), e.id, /*remote=*/true, host_.now());
    host_.send(e.requester,
               proto::Message{proto::Repair{e.id, std::move(d->payload), true}});
    return;
  }
  SequenceTracker& tr = tracker(e.id.source);
  if (!tr.has(e.id.seq)) {
    // Never received: remember the child representative and recover the
    // message ourselves, climbing one level higher with the incremented hop.
    std::vector<MemberId>& w = waiters_[e.id];
    if (!contains(w, e.requester)) w.push_back(e.requester);
    for (std::uint64_t gap : tr.observe_hint(e.id.seq)) {
      start_recovery(MessageId{e.id.source, gap});
    }
    if (auto it = recoveries_.find(e.id); it != recoveries_.end()) {
      it->second.escalate_hop = std::max(it->second.escalate_hop, e.hop + 1);
    }
    return;
  }
  // Received but discarded: same bufferer-location path as a RemoteRequest.
  if (MemberId holder = cached_holder(e.id); holder != kInvalidMember) {
    host_.send(holder, proto::Message{proto::RemoteRequest{e.id, e.requester}});
    return;
  }
  start_search(e.id, e.requester);
}

void Endpoint::handle_repair(const proto::Repair& r, MemberId from) {
  // Close the RTT sample if this repair answers one of our probes.
  if (cfg_.measure_rtt) {
    auto probe = probes_.find(r.id);
    if (probe != probes_.end()) {
      auto target = probe->second.find(from);
      if (target != probe->second.end()) {
        rtt_.add_sample(from, host_.now() - target->second);
        probes_.erase(probe);
      }
    }
  }
  // Duplicate check first (§2.2): only the first copy triggers a regional
  // relay.
  if (tracker(r.id.source).has(r.id.seq)) return;
  proto::Data d{r.id, r.payload};
  accept(d, r.remote);
  if (r.remote) schedule_regional_relay(d);
}

void Endpoint::handle_regional_repair(const proto::RegionalRepair& r,
                                      MemberId from) {
  (void)from;
  // Another member relayed this message: our own pending relay (if any) is a
  // duplicate — suppress it (§2.2's randomized back-off scheme).
  auto pr = pending_relays_.find(r.id);
  if (pr != pending_relays_.end()) {
    cancel(pr->second.timer);
    pending_relays_.erase(pr);
    metrics().on_relay_suppressed(self(), r.id, host_.now());
  }
  if (tracker(r.id.source).has(r.id.seq)) return;
  accept(proto::Data{r.id, r.payload}, /*from_remote_region=*/false);
}

void Endpoint::handle_search_request(const proto::SearchRequest& r,
                                     MemberId from) {
  (void)from;
  store_->on_request_seen(r.id);
  if (cfg_.search_strategy == Config::SearchStrategy::kMulticastQuery) {
    // Back-off reply: answer only if still buffering, after U(0, unit*C).
    if (store_->has(r.id)) schedule_query_reply(r.id, r.remote_requester);
    return;
  }
  // Bufferer found: repair the remote requester and stop the search (§3.3).
  if (std::optional<proto::Data> d = store_->get(r.id)) {
    metrics().on_repair_sent(self(), r.id, /*remote=*/true, host_.now());
    host_.send(r.remote_requester,
               proto::Message{proto::Repair{r.id, std::move(d->payload), true}});
    announce_found(r.id);
    return;
  }
  SequenceTracker& tr = tracker(r.id.source);
  // A completed search may have located the holder already; redirect.
  if (tr.has(r.id.seq)) {
    if (MemberId holder = cached_holder(r.id); holder != kInvalidMember) {
      host_.send(holder,
                 proto::Message{proto::RemoteRequest{r.id, r.remote_requester}});
      return;
    }
  }
  if (!tr.has(r.id.seq)) {
    // Footnote 4: never received it — recover it ourselves, and remember the
    // remote requester so it is served on receipt.
    std::vector<MemberId>& w = waiters_[r.id];
    if (!contains(w, r.remote_requester)) w.push_back(r.remote_requester);
    for (std::uint64_t gap : tr.observe_hint(r.id.seq)) {
      start_recovery(MessageId{r.id.source, gap});
    }
    return;
  }
  // Discarded here too: join the search.
  if (search_abandoned(r.id)) return;  // we already exhausted our attempts
  auto it = searches_.find(r.id);
  if (it != searches_.end()) {
    if (!contains(it->second.carry, r.remote_requester)) {
      it->second.carry.push_back(r.remote_requester);
    }
    return;  // already probing; our retry timer is running
  }
  SearchTask task;
  task.started = host_.now();
  task.carry.push_back(r.remote_requester);
  searches_.emplace(r.id, std::move(task));
  metrics().on_search_started(self(), r.id, host_.now());
  search_attempt(r.id);
}

void Endpoint::handle_search_found(const proto::SearchFound& f,
                                   MemberId from) {
  (void)from;
  remember_holder(f.id, f.holder);
  // Suppress our own pending back-off reply (kMulticastQuery).
  auto pr = pending_replies_.find(f.id);
  if (pr != pending_replies_.end()) {
    cancel(pr->second.timer);
    pending_replies_.erase(pr);
    metrics().on_relay_suppressed(self(), f.id, host_.now());
  }
  end_search(f.id, f.holder);
}

void Endpoint::handle_handoff(const proto::Handoff& h, MemberId from) {
  (void)from;
  for (const proto::Data& d : h.messages) {
    if (!tracker(d.id.source).has(d.id.seq)) {
      // We never had this message: deliver it, then upgrade to long-term.
      accept(d, /*from_remote_region=*/false);
    }
    store_->accept_handoff(d);
  }
}

void Endpoint::handle_gossip(const proto::Gossip& g, MemberId from) {
  (void)from;
  if (gossip_fd_) gossip_fd_->handle_gossip(g);
}

void Endpoint::handle_buffer_digest(const proto::BufferDigest& d,
                                    MemberId from) {
  (void)from;
  if (!cfg_.buffer_coordination.enabled) return;
  if (d.member == self()) return;  // only neighbors count as replicas
  // A digest from the other side of a partition (in flight at the cut, or
  // delivered post-heal after sitting in a queue) describes buffer state we
  // could not reach then and cannot trust now: generations must match.
  if (d.view_gen != view_gen_) return;
  store_->digests().update(d.member, d.bytes_in_use, d.ranges,
                           d.window_outstanding);
  if (cfg_.flow.enabled) {
    // The digest doubles as an occupancy report: a neighbor nearing its
    // budget sheds credit from our window before eviction pressure hits it.
    flow_.on_peer_occupancy(d.member, d.bytes_in_use, d.window_outstanding);
    drain_send_queue();
  }
}

void Endpoint::handle_credit_ack(const proto::CreditAck& a, MemberId from) {
  (void)from;
  if (!cfg_.flow.enabled) return;
  if (a.member == self()) return;  // the regional multicast loops back
  // An ack can race its sender's departure (in flight when the view
  // dropped the member). Installing its cursor would re-wedge the window
  // floor that retain_peers just released, until the next retain pass —
  // departed members get no credit voice.
  if (!host_.local_view().contains(a.member)) return;
  // A stale-generation ack (sent pre-partition, delivered post-heal) must
  // not regress our view of the peer's reported cursor: the peer re-seeded
  // at the current floor at heal, and only its post-heal acks — stamped
  // with the current generation — speak for it again.
  if (a.view_gen != view_gen_) return;
  // During the partition itself, severed peers get no credit voice at all.
  if (flow_unreachable(a.member)) return;
  // Every acking region peer bounds our window, whether or not it has
  // received anything of our stream yet (absent cursor = nothing, 0).
  std::uint64_t cursor = 0;
  for (const proto::ReceiveCursor& c : a.cursors) {
    if (c.source == self()) cursor = c.cursor;
  }
  flow_.on_cursor(a.member, cursor);
  flow_.on_peer_budget(a.member, a.bytes_in_use, a.budget_bytes);
  drain_send_queue();
}

void Endpoint::handle_shed(const proto::Shed& s, MemberId from) {
  (void)from;
  if (!cfg_.buffer_coordination.enabled) return;
  // The neighbor is about to discard the region's (believed) last copy; we
  // inherit the bufferer responsibility, exactly like a leave-time handoff:
  // deliver if never received, then keep the copy long-term.
  if (!tracker(s.message.id.source).has(s.message.id.seq)) {
    accept(s.message, /*from_remote_region=*/false);
  }
  store_->accept_handoff(s.message);
}

void Endpoint::handle_history(const proto::History& h, MemberId from) {
  if (cfg_.anti_entropy) pull_from_digest(h, from);
  if (!history_enabled_) return;
  for (const proto::SourceHistory& sh : h.sources) {
    stability_.update(h.member, sh);
  }
  recompute_stability();
}

// ------------------------------------------------------------- recovery ----

void Endpoint::start_recovery(const MessageId& id) {
  if (!active_ || !cfg_.gap_driven_recovery) return;
  if (tracker(id.source).has(id.seq)) return;
  if (recoveries_.count(id)) return;
  RecoveryTask task;
  task.started = host_.now();
  recoveries_.emplace(id, task);
  metrics().on_loss_detected(self(), id, host_.now());
  // The two phases run concurrently (§2.2).
  local_attempt(id);
  remote_attempt(id);
}

void Endpoint::finish_recovery(const MessageId& id) {
  auto it = recoveries_.find(id);
  if (it == recoveries_.end()) return;
  cancel(it->second.local_timer);
  cancel(it->second.remote_timer);
  recoveries_.erase(it);
  probes_.erase(id);
}

MemberId Endpoint::pick_request_target(const MessageId& id) {
  if (cfg_.hierarchy.enabled) {
    // Repair tree: the first NAK goes to the region's aggregation point —
    // deterministic, no RNG draw. Retries fall back to random neighbors in
    // case the representative itself is wedged.
    MemberId rep = region_representative();
    if (rep != kInvalidMember && rep != self() &&
        recoveries_[id].local_attempts == 0) {
      return rep;
    }
  }
  if (cfg_.lookup == BuffererLookup::kHashDirect) {
    // Deterministic scheme [11]: ask the hash-selected bufferers directly,
    // round-robin over the set across attempts.
    const std::vector<MemberId>& set =
        selector_.select(id, host_.local_view().members(), cfg_.hash_k);
    bufferer_scratch_.assign(set.begin(), set.end());
    std::erase(bufferer_scratch_, self());
    if (!bufferer_scratch_.empty()) {
      auto& task = recoveries_[id];
      return bufferer_scratch_[task.local_attempts % bufferer_scratch_.size()];
    }
  }
  return host_.local_view().pick_random(host_.rng(), self());
}

void Endpoint::local_attempt(const MessageId& id) {
  auto it = recoveries_.find(id);
  if (it == recoveries_.end()) return;
  RecoveryTask& task = it->second;
  task.local_timer = kNoTimer;
  if (cfg_.hierarchy.enabled && task.local_attempts > 0 &&
      task.remote_timer == kNoTimer && is_representative()) {
    // Representative fail-over: the remote phase was skipped while some
    // other member held the funnel; a re-election (crash, partition bump)
    // can hand it to us mid-recovery. Pick the escalation up from here —
    // at local_attempts == 0 start_recovery drives the remote phase itself.
    remote_attempt(id);
  }
  if (cfg_.max_attempts != 0 && task.local_attempts >= cfg_.max_attempts) {
    return;  // give up on the local phase; remote phase may still succeed
  }
  MemberId q = pick_request_target(id);
  if (q == kInvalidMember) {
    // Alone in the region: retry later in case the view grows.
    task.local_timer = schedule(host_.rtt_estimate(self()),
                                [this, id] { local_attempt(id); });
    return;
  }
  ++task.local_attempts;
  metrics().on_request_sent(self(), id, /*remote=*/false, host_.now());
  if (cfg_.measure_rtt) probes_[id].try_emplace(q, host_.now());
  host_.send(q, proto::Message{proto::LocalRequest{id, self()}});
  task.local_timer =
      schedule(retry_backoff(request_timeout(q), task.local_attempts - 1),
               [this, id] { local_attempt(id); });
}

void Endpoint::remote_attempt(const MessageId& id) {
  auto it = recoveries_.find(id);
  if (it == recoveries_.end()) return;
  RecoveryTask& task = it->second;
  task.remote_timer = kNoTimer;
  if (cfg_.hierarchy.enabled) {
    // Multi-level repair: only the region's aggregation point escalates, and
    // it escalates to its *parent region's* aggregation point rather than a
    // random parent member. Non-representatives rely on the representative's
    // funnel (plus their own local retries) — no per-member remote traffic.
    if (!is_representative()) return;
    if (cfg_.max_attempts != 0 && task.remote_attempts >= cfg_.max_attempts) {
      return;
    }
    ++task.remote_attempts;
    MemberId up = parent_representative();
    if (up != kInvalidMember) {
      metrics().on_request_sent(self(), id, /*remote=*/true, host_.now());
      host_.send(up,
                 proto::Message{proto::Escalate{id, self(), task.escalate_hop}});
    } else if (id.source != self()) {
      // Root of the repair tree: last resort is the original sender.
      up = id.source;
      metrics().on_request_sent(self(), id, /*remote=*/true, host_.now());
      host_.send(up, proto::Message{proto::RemoteRequest{id, self()}});
    } else {
      return;  // we are the sender and the root — nobody above us
    }
    task.remote_timer =
        schedule(retry_backoff(request_timeout(up), task.remote_attempts - 1),
                 [this, id] { remote_attempt(id); });
    return;
  }
  const membership::RegionView& parent = host_.parent_view();
  if (parent.empty()) return;  // root region: no remote phase (§2.2)
  if (cfg_.max_attempts != 0 && task.remote_attempts >= cfg_.max_attempts) {
    return;
  }
  ++task.remote_attempts;
  MemberId r = parent.pick_random(host_.rng());
  if (r == kInvalidMember) return;
  // Send with probability lambda/n so that, region-wide, the expected number
  // of remote requests per recovery round is lambda (§2.2). The retry timer
  // is armed whether or not a request was actually sent.
  std::size_t n = std::max<std::size_t>(host_.local_view().size(), 1);
  if (host_.rng().bernoulli(cfg_.lambda / static_cast<double>(n))) {
    if (cfg_.lookup == BuffererLookup::kHashDirect) {
      const std::vector<MemberId>& set =
          selector_.select(id, parent.members(), cfg_.hash_k);
      if (!set.empty()) r = set[task.remote_attempts % set.size()];
    }
    metrics().on_request_sent(self(), id, /*remote=*/true, host_.now());
    host_.send(r, proto::Message{proto::RemoteRequest{id, self()}});
  }
  task.remote_timer =
      schedule(request_timeout(r), [this, id] { remote_attempt(id); });
}

// ---------------------------------------------------------- repair tree ----

void Endpoint::refresh_representatives() {
  std::uint64_t epoch = host_.view_epoch();
  if (rep_cache_valid_ && rep_epoch_ == epoch && rep_generation_ == view_gen_) {
    return;
  }
  // Own-region election excludes peers severed from us by an active
  // partition: an unreachable representative funnels NAKs into a black hole.
  // Folding the connectivity generation into the score re-runs the election
  // deterministically on every partition/heal.
  const std::vector<MemberId>& members = host_.local_view().members();
  if (flow_unreachable_.empty()) {
    local_rep_ =
        repair::elect_representative(members, cfg_.hierarchy.salt, view_gen_);
  } else {
    rep_scratch_.clear();
    for (MemberId m : members) {
      if (!std::binary_search(flow_unreachable_.begin(),
                              flow_unreachable_.end(), m)) {
        rep_scratch_.push_back(m);
      }
    }
    local_rep_ = repair::elect_representative(rep_scratch_,
                                              cfg_.hierarchy.salt, view_gen_);
  }
  parent_rep_ = repair::elect_representative(host_.parent_view().members(),
                                             cfg_.hierarchy.salt, view_gen_);
  rep_cache_valid_ = true;
  rep_epoch_ = epoch;
  rep_generation_ = view_gen_;
}

MemberId Endpoint::region_representative() {
  refresh_representatives();
  return local_rep_;
}

MemberId Endpoint::parent_representative() {
  refresh_representatives();
  return parent_rep_;
}

Duration Endpoint::retry_backoff(Duration base, std::uint32_t attempts) const {
  if (!cfg_.hierarchy.enabled || cfg_.hierarchy.max_backoff_shift == 0) {
    return base;
  }
  std::uint32_t shift = std::min(attempts, cfg_.hierarchy.max_backoff_shift);
  return base * static_cast<std::int64_t>(std::uint64_t{1} << shift);
}

// --------------------------------------------------------------- search ----

bool Endpoint::search_abandoned(const MessageId& id) {
  auto it = search_given_up_.find(id);
  if (it == search_given_up_.end()) return false;
  if (host_.now() - it->second > cfg_.search_cache_ttl) {
    search_given_up_.erase(it);
    return false;
  }
  return true;
}

void Endpoint::start_search(const MessageId& id, MemberId requester) {
  if (search_abandoned(id)) return;  // recently exhausted max_attempts
  auto it = searches_.find(id);
  if (it != searches_.end()) {
    if (!contains(it->second.carry, requester)) {
      it->second.carry.push_back(requester);
    }
    if (!contains(it->second.own, requester)) {
      it->second.own.push_back(requester);
    }
    return;
  }
  SearchTask task;
  task.started = host_.now();
  task.carry.push_back(requester);
  task.own.push_back(requester);
  searches_.emplace(id, std::move(task));
  metrics().on_search_started(self(), id, host_.now());
  search_attempt(id);
}

void Endpoint::search_attempt(const MessageId& id) {
  auto it = searches_.find(id);
  if (it == searches_.end()) return;
  SearchTask& task = it->second;
  task.timer = kNoTimer;
  if (cfg_.max_attempts != 0 && task.attempts >= cfg_.max_attempts) {
    search_given_up_[id] = host_.now();
    searches_.erase(it);
    return;
  }
  MemberId q = host_.local_view().pick_random(host_.rng(), self());
  if (q == kInvalidMember) {
    searches_.erase(it);  // nobody to search: the message is gone from here
    return;
  }
  ++task.attempts;
  metrics().on_search_hop(self(), q, id, host_.now());
  host_.send(q, proto::Message{proto::SearchRequest{id, task.carry.front()}});
  task.timer = schedule(request_timeout(q), [this, id] { search_attempt(id); });
}

void Endpoint::end_search(const MessageId& id, MemberId holder) {
  auto it = searches_.find(id);
  if (it == searches_.end()) return;
  SearchTask& task = it->second;
  cancel(task.timer);
  // The chain that reached the holder served the requester it carried; any
  // requester that contacted us directly might not have been on that chain,
  // so point the holder at them (it answers RemoteRequests from its buffer).
  for (MemberId rr : task.own) {
    host_.send(holder, proto::Message{proto::RemoteRequest{id, rr}});
  }
  searches_.erase(it);
}

void Endpoint::schedule_query_reply(const MessageId& id, MemberId requester) {
  if (pending_replies_.count(id)) return;  // one reply per query round
  double window_us =
      static_cast<double>(cfg_.query_backoff_unit.us()) * cfg_.query_backoff_c;
  Duration delay = Duration::micros(
      static_cast<std::int64_t>(host_.rng().uniform_real(0.0, window_us)));
  PendingReply reply;
  reply.requester = requester;
  reply.timer = schedule(delay, [this, id] { fire_query_reply(id); });
  pending_replies_.emplace(id, std::move(reply));
}

void Endpoint::fire_query_reply(const MessageId& id) {
  auto it = pending_replies_.find(id);
  if (it == pending_replies_.end()) return;
  MemberId requester = it->second.requester;
  pending_replies_.erase(it);
  std::optional<proto::Data> d = store_->get(id);
  if (!d) return;  // discarded while backing off
  metrics().on_repair_sent(self(), id, /*remote=*/true, host_.now());
  host_.send(requester,
             proto::Message{proto::Repair{id, std::move(d->payload), true}});
  // Count every fired back-off reply as a completed-search announcement;
  // duplicates that the window failed to suppress are the "implosion".
  metrics().on_search_completed(self(), id, host_.now());
  host_.multicast_region(proto::Message{proto::SearchFound{id, self()}});
}

void Endpoint::announce_found(const MessageId& id) {
  TimePoint now = host_.now();
  auto it = last_announce_.find(id);
  if (it != last_announce_.end() &&
      now - it->second < host_.rtt_estimate(self())) {
    return;  // straggler probe; the region heard the announcement already
  }
  last_announce_[id] = now;
  remember_holder(id, self());
  metrics().on_search_completed(self(), id, now);
  host_.multicast_region(proto::Message{proto::SearchFound{id, self()}});
}

MemberId Endpoint::cached_holder(const MessageId& id) {
  auto it = found_cache_.find(id);
  if (it == found_cache_.end()) return kInvalidMember;
  if (host_.now() - it->second.second > cfg_.search_cache_ttl) {
    found_cache_.erase(it);
    return kInvalidMember;
  }
  return it->second.first;
}

void Endpoint::remember_holder(const MessageId& id, MemberId holder) {
  found_cache_[id] = {holder, host_.now()};
  search_given_up_.erase(id);  // a holder exists after all
}

// ------------------------------------------------------- regional relay ----

void Endpoint::schedule_regional_relay(const proto::Data& d) {
  if (host_.local_view().size() <= 1) return;
  if (pending_relays_.count(d.id)) return;
  if (cfg_.regional_backoff <= Duration::zero()) {
    metrics().on_regional_multicast(self(), d.id, host_.now());
    host_.multicast_region(
        proto::Message{proto::RegionalRepair{d.id, d.payload, self()}});
    return;
  }
  // Randomized back-off (§2.2): wait U(0, backoff); another member's relay
  // of the same message suppresses ours.
  Duration delay = Duration::micros(static_cast<std::int64_t>(
      host_.rng().uniform_real(0.0,
                               static_cast<double>(cfg_.regional_backoff.us()))));
  PendingRelay relay;
  relay.data = d;
  relay.timer = schedule(delay, [this, id = d.id] { fire_regional_relay(id); });
  pending_relays_.emplace(d.id, std::move(relay));
}

void Endpoint::fire_regional_relay(const MessageId& id) {
  auto it = pending_relays_.find(id);
  if (it == pending_relays_.end()) return;
  proto::Data d = std::move(it->second.data);
  pending_relays_.erase(it);
  metrics().on_regional_multicast(self(), id, host_.now());
  host_.multicast_region(
      proto::Message{proto::RegionalRepair{d.id, std::move(d.payload), self()}});
}

// ------------------------------------------------------------ stability ----

proto::History Endpoint::build_history() const {
  proto::History h;
  h.member = self();
  for (const auto& [source, tr] : trackers_) {
    h.sources.push_back(tr.history(source, kHistoryBitmapWords));
  }
  return h;
}

void Endpoint::history_tick() {
  history_timer_ = kNoTimer;
  proto::History h = build_history();
  if (!h.sources.empty()) {
    // Fold our own report in before multicasting so stable_below counts us.
    for (const proto::SourceHistory& sh : h.sources) {
      stability_.update(self(), sh);
    }
    recompute_stability();
    host_.multicast_region(proto::Message{std::move(h)});
  }
  history_timer_ = schedule(cfg_.history_interval, [this] { history_tick(); });
}

void Endpoint::digest_tick() {
  digest_timer_ = kNoTimer;
  // Departed members must stop counting as replica holders or keepers:
  // prune their advertisements against the current view, bounding the
  // staleness of any dead digest at one period.
  store_->digests().retain(host_.local_view().members());
  // Alive-but-severed members (a partition) survive the view prune; their
  // advertisements age out instead once no refresh arrives for a few
  // periods. A connected peer refreshes every period, so its counter
  // oscillates between 0 and 1 and aging never fires in fault-free runs.
  store_->digests().age(cfg_.buffer_coordination.max_missed_digests);
  // Advertise even when empty: a zero bytes_in_use digest is exactly what
  // makes this member the least-loaded shed target.
  proto::BufferDigest d = store_->build_digest();
  d.view_gen = view_gen_;
  if (cfg_.flow.enabled) d.window_outstanding = flow_.outstanding();
  host_.multicast_region(proto::Message{std::move(d)});
  digest_timer_ = schedule(cfg_.buffer_coordination.digest_interval,
                           [this] { digest_tick(); });
}

std::vector<proto::ReceiveCursor> Endpoint::cursor_snapshot() const {
  std::vector<proto::ReceiveCursor> cursors;
  for (const auto& [source, tr] : trackers_) {
    if (source == host_.self()) continue;  // a sender grants itself no credit
    cursors.push_back(proto::ReceiveCursor{source, tr.next_expected() - 1});
  }
  return cursors;  // trackers_ is an ordered map: deterministic order
}

const std::vector<MemberId>& Endpoint::flow_peers() const {
  const std::vector<MemberId>& view = host_.local_view().members();
  if (flow_unreachable_.empty()) return view;
  flow_peers_scratch_.clear();
  for (MemberId m : view) {
    if (!flow_unreachable(m)) flow_peers_scratch_.push_back(m);
  }
  return flow_peers_scratch_;
}

bool Endpoint::flow_unreachable(MemberId m) const {
  return !flow_unreachable_.empty() &&
         std::binary_search(flow_unreachable_.begin(), flow_unreachable_.end(),
                            m);
}

void Endpoint::sync_flow_peers() {
  const std::vector<MemberId>& now = flow_peers();
  if (now == flow_view_) return;
  // Members in the reachable set but not the last snapshot genuinely joined
  // (or just became reachable again at a partition heal): seed their cursor
  // at the current floor so their first (necessarily stale) acks cannot
  // drag the floor back through frames the crowd already acknowledged.
  // Members that were merely quiet stay unseeded — their first real ack is
  // allowed to lower the floor.
  for (MemberId m : now) {
    if (m == self()) continue;
    if (!std::binary_search(flow_view_.begin(), flow_view_.end(), m)) {
      flow_.on_peer_joined(m);
    }
  }
  flow_view_ = now;
}

void Endpoint::on_view_change() {
  if (!active_ || !cfg_.flow.enabled) return;
  // Reconcile credit state NOW, not at the next credit tick: a departed
  // slowest peer otherwise wedges every sender's floor for up to one ack
  // interval (and handle_credit_ack's membership check keeps an in-flight
  // stale ack from re-installing it).
  flow_.retain_peers(flow_peers());
  sync_flow_peers();
  // Dropping the slowest cursor may have freed credit immediately.
  drain_send_queue();
}

void Endpoint::on_partition_change(std::vector<MemberId> unreachable,
                                   std::uint64_t generation) {
  if (!active_) return;
  std::sort(unreachable.begin(), unreachable.end());
  flow_unreachable_ = std::move(unreachable);
  view_gen_ = generation;
  if (!cfg_.flow.enabled) return;
  // Piggyback suppression keys on the advertised cursor set, which a
  // generation bump does not change — force the next credit tick to
  // multicast a fresh, correctly-stamped ack anyway.
  advertised_any_ = false;
  quiet_ticks_ = 0;
  // Partition: release credit bindings to peers we can no longer reach —
  // their frozen cursors must not wedge the window at floor + window for
  // the partition's lifetime. Heal: the other side re-enters flow_peers()
  // and sync_flow_peers seeds it at the current floor, so its first
  // post-heal acks (stamped with the new generation) cannot drag the floor
  // back through the partition-era stream.
  flow_.retain_peers(flow_peers());
  sync_flow_peers();
  drain_send_queue();
}

void Endpoint::credit_tick() {
  credit_timer_ = kNoTimer;
  const membership::RegionView& view = host_.local_view();
  // A departed peer's last cursor must not wedge the window floor, and its
  // occupancy must not pin phantom back-pressure. (on_view_change does this
  // eagerly on hosts that report view changes; the tick remains the
  // transport-independent fallback.)
  flow_.retain_peers(flow_peers());
  sync_flow_peers();
  if (view.size() > 1) {
    proto::CreditAck ack;
    ack.member = self();
    ack.bytes_in_use = store_->bytes();
    ack.budget_bytes = cfg_.buffer_budget.max_bytes;
    ack.cursors = cursor_snapshot();
    ack.view_gen = view_gen_;
    // With piggybacking, the periodic ack is a fallback for quiet
    // receivers: suppress it while our piggybacked frames already carry
    // exactly these cursors, but refresh every few ticks anyway — the
    // frames carrying the last advertisement may have been lost.
    bool suppress = cfg_.flow.piggyback && advertised_any_ &&
                    ack.cursors == advertised_cursors_ &&
                    quiet_ticks_ + 1 < kQuietAckRefreshTicks;
    if (suppress) {
      ++quiet_ticks_;
      metrics().on_credit_ack_suppressed(self(), host_.now());
    } else {
      advertised_cursors_ = ack.cursors;
      advertised_any_ = true;
      quiet_ticks_ = 0;
      metrics().on_credit_ack_sent(self(), host_.now());
      host_.multicast_region(proto::Message{std::move(ack)});
    }
    // A flow-controlled sender keeps its own unacknowledged frames alive:
    // touching them each tick holds them active (never idle-discarded,
    // last in LRU eviction order), so a receiver stuck on a lost frame can
    // always repair from the source and its cursor — and with it our
    // window — can always advance. Without this, one frame evicted
    // region-wide wedges the window forever.
    for (std::uint64_t s = flow_.window_floor() + 1; s <= flow_.send_seq();
         ++s) {
      store_->on_request_seen(MessageId{self(), s});
    }
    // Frames the whole region has acknowledged need no retransmission copy.
    while (!flow_unacked_.empty() &&
           flow_unacked_.front().id.seq <= flow_.window_floor()) {
      flow_unacked_.pop_front();
    }
    // Sender-driven retransmission: when the floor sits still for several
    // ticks with frames outstanding, some receiver is stuck on the frame
    // just past it — usually because its own recovery gave up while copies
    // were scarce (the shared buffer may have evicted every copy, including
    // ours). The retransmission deque still holds it: re-multicast;
    // duplicates are ignored and the stuck cursors advance. The wedging
    // frame is normally at the front, but a floor that moved backward (a
    // peer's first report arriving after faster peers') leaves newer frames
    // ahead of it — search the deque instead of trusting front().
    // Consecutive re-multicasts of the same stall back off exponentially
    // (stall_streak_): a receiver that cannot be unwedged by duplicates —
    // e.g. one behind a partition — should not eat a full multicast every
    // few ticks for as long as the partition lasts.
    if (flow_.outstanding() > 0 && flow_.window_floor() == stall_floor_) {
      std::uint32_t backoff_shift =
          cfg_.flow.stall_backoff
              ? std::min(stall_streak_, kMaxStallBackoffShift)
              : 0;
      if (++stall_ticks_ >= (kStallRetransmitTicks << backoff_shift)) {
        stall_ticks_ = 0;
        if (flow_.release_stalled_peers()) {
          // Every floor-holding cursor was a seeded binding ahead of its
          // peer's genuine reports: the peer is backfilling history below
          // the floor (a rejoined member whose pre-crash state was
          // evicted region-wide may never finish), so re-multicasting
          // the frame at the floor could not unwedge it. Not a loss
          // signal — no receiver missed this frame.
          metrics().on_flow_stall_release(self(), host_.now());
          drain_send_queue();
        } else {
          auto wedged = std::find_if(
              flow_unacked_.begin(), flow_unacked_.end(),
              [this](const proto::Data& f) {
                return f.id.seq == stall_floor_ + 1;
              });
          if (wedged != flow_unacked_.end()) {
            metrics().on_flow_stall_remcast(self(), wedged->id, host_.now());
            host_.ip_multicast(proto::Message{*wedged});
            // A stall is the AIMD loss signal: some receiver missed a
            // frame and its recovery did not close the gap in time.
            flow_.on_loss();
            aimd_loss_in_round_ = true;
            ++stall_streak_;
          }
        }
      }
    } else {
      stall_floor_ = flow_.window_floor();
      stall_ticks_ = 0;
      stall_streak_ = 0;
    }
  }
  // AIMD probe round: one additive step per clean round. The round must
  // outlast the slowest peer's feedback loop, so it is the larger of the
  // ack interval and the measured RTT (the topology estimate until
  // measure_rtt has samples).
  if (cfg_.flow.adaptive) {
    Duration rtt = host_.rtt_estimate(self());
    if (cfg_.measure_rtt) rtt = rtt_.max_srtt(rtt);
    Duration round = std::max(cfg_.flow.ack_interval, rtt);
    if (host_.now() - aimd_round_start_ >= round) {
      if (!aimd_loss_in_round_ && flow_.window_floor() > aimd_round_floor_) {
        flow_.on_clean_round();
      }
      aimd_round_start_ = host_.now();
      aimd_round_floor_ = flow_.window_floor();
      aimd_loss_in_round_ = false;
    }
  }
  // Pruning departed peers (or the view shrinking to just us) may have
  // freed credit even without new acks.
  drain_send_queue();
  credit_timer_ = schedule(cfg_.flow.ack_interval, [this] { credit_tick(); });
}

void Endpoint::anti_entropy_tick() {
  anti_entropy_timer_ = kNoTimer;
  // One digest to one uniformly random neighbor per round ([3]).
  MemberId q = host_.local_view().pick_random(host_.rng(), self());
  if (q != kInvalidMember) {
    proto::History h = build_history();
    if (!h.sources.empty()) host_.send(q, proto::Message{std::move(h)});
  }
  anti_entropy_timer_ =
      schedule(cfg_.anti_entropy_interval, [this] { anti_entropy_tick(); });
}

void Endpoint::pull_from_digest(const proto::History& digest, MemberId from) {
  std::uint32_t pulls = 0;
  for (const proto::SourceHistory& sh : digest.sources) {
    SequenceTracker& tr = tracker(sh.source);
    auto sender_has = [&sh](std::uint64_t seq) {
      if (seq < sh.next_expected) return true;
      std::uint64_t off = seq - sh.next_expected;
      std::size_t w = static_cast<std::size_t>(off / 64);
      if (w >= sh.bitmap.size()) return false;
      return ((sh.bitmap[w] >> (off % 64)) & 1) != 0;
    };
    std::uint64_t sender_max =
        sh.next_expected - 1 + 64 * static_cast<std::uint64_t>(sh.bitmap.size());
    for (std::uint64_t seq = std::max<std::uint64_t>(1, tr.next_expected());
         seq <= sender_max && pulls < cfg_.anti_entropy_max_pulls; ++seq) {
      if (tr.has(seq) || !sender_has(seq)) continue;
      // Record that the sequence exists (no gap-driven task is spawned when
      // that engine is off) and pull it straight from the digest's sender.
      (void)tr.observe_hint(seq);
      ++pulls;
      MessageId id{sh.source, seq};
      metrics().on_request_sent(self(), id, /*remote=*/false, host_.now());
      host_.send(from, proto::Message{proto::LocalRequest{id, self()}});
    }
  }
}

void Endpoint::recompute_stability() {
  auto* stab = dynamic_cast<buffer::StabilityPolicy*>(&store_->policy());
  if (stab == nullptr) return;
  const std::vector<MemberId>& expected = host_.local_view().members();
  for (const auto& [source, tr] : trackers_) {
    std::uint64_t stable = stability_.stable_below(source, expected);
    if (stable > 0) stab->mark_stable_below(source, stable);
  }
}

// -------------------------------------------------------------- helpers ----

bool Endpoint::has_received(const MessageId& id) const {
  auto it = trackers_.find(id.source);
  return it != trackers_.end() && it->second.has(id.seq);
}

std::uint64_t Endpoint::received_count() const {
  std::uint64_t total = 0;
  for (const auto& [source, tr] : trackers_) total += tr.received_count();
  return total;
}

std::vector<std::uint64_t> Endpoint::missing_from(MemberId source) const {
  auto it = trackers_.find(source);
  if (it == trackers_.end()) return {};
  return it->second.missing();
}

TimerHandle Endpoint::schedule(Duration d, std::function<void()> fn) {
  return host_.schedule(d, [this, token = alive_token_, f = std::move(fn)] {
    // Check the token before touching any member: the endpoint may have
    // been destroyed while this callback sat in the timer queue.
    if (*token && active_) f();
  });
}

void Endpoint::cancel(TimerHandle& t) {
  if (t != kNoTimer) {
    host_.cancel(t);
    t = kNoTimer;
  }
}

Duration Endpoint::request_timeout(MemberId peer) const {
  Duration base = host_.rtt_estimate(peer);
  if (cfg_.measure_rtt) base = rtt_.rto(peer, base);
  return base.scaled(cfg_.timeout_factor);
}

}  // namespace rrmp
