// Per-peer round-trip-time estimation (Jacobson/Karels smoothing).
//
// The paper sets retry timers "according to [the] estimated round trip
// time" of the probed member (§2.2) without saying where the estimate comes
// from. On the simulator the topology oracle is available; on real networks
// it is not. This estimator learns RTTs from request->repair samples:
//
//   srtt   <- (1-a) srtt + a sample          (a = 1/8)
//   rttvar <- (1-b) rttvar + b |srtt-sample| (b = 1/4)
//   rto    =  srtt + 4 rttvar                (clamped to [floor, ceiling])
//
// Until a peer has a sample, the estimator falls back to a configurable
// prior (e.g. the host's static estimate).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/time.h"
#include "common/types.h"

namespace rrmp {

struct RttEstimatorConfig {
  double alpha = 0.125;  // srtt gain
  double beta = 0.25;    // rttvar gain
  Duration min_rto = Duration::millis(1);
  Duration max_rto = Duration::seconds(2);
};

class RttEstimator {
 public:
  explicit RttEstimator(RttEstimatorConfig config = {}) : config_(config) {}

  /// Record one measured round trip to `peer`.
  void add_sample(MemberId peer, Duration rtt);

  /// True once at least one sample for `peer` exists.
  bool has_estimate(MemberId peer) const { return peers_.count(peer) > 0; }

  /// Smoothed RTT; `fallback` when no sample exists.
  Duration srtt(MemberId peer, Duration fallback) const;

  /// Retransmission timeout: srtt + 4*rttvar, clamped. `fallback` seeds the
  /// answer for unmeasured peers.
  Duration rto(MemberId peer, Duration fallback) const;

  /// Largest smoothed RTT over all measured peers — the adaptive flow
  /// window's probe cadence (a credit round must outlast the slowest peer's
  /// feedback loop). `fallback` when nothing is measured yet. A max over an
  /// unordered map is order-independent, so this stays deterministic.
  Duration max_srtt(Duration fallback) const;

  /// Drop state for a departed peer.
  void forget(MemberId peer) { peers_.erase(peer); }

  std::size_t tracked_peers() const { return peers_.size(); }

 private:
  struct PeerState {
    double srtt_us = 0;
    double rttvar_us = 0;
  };
  RttEstimatorConfig config_;
  std::unordered_map<MemberId, PeerState> peers_;
};

}  // namespace rrmp
