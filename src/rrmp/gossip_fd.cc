#include "rrmp/gossip_fd.h"

#include <utility>

namespace rrmp {

GossipFailureDetector::GossipFailureDetector(
    IHost& host, GossipConfig config,
    std::function<void(MemberId, bool)> on_change)
    : host_(host), config_(config), on_change_(std::move(on_change)) {}

GossipFailureDetector::~GossipFailureDetector() { stop(); }

void GossipFailureDetector::start() {
  if (running_) return;
  running_ = true;
  tick_timer_ = host_.schedule(config_.gossip_interval, [this] { tick(); });
}

void GossipFailureDetector::stop() {
  if (!running_) return;
  running_ = false;
  if (tick_timer_ != kNoTimer) {
    host_.cancel(tick_timer_);
    tick_timer_ = kNoTimer;
  }
}

void GossipFailureDetector::tick() {
  if (!running_) return;
  ++own_counter_;

  // Gossip the full table (own counter included) to one random peer.
  proto::Gossip g;
  g.from = host_.self();
  g.beats.push_back(proto::Heartbeat{host_.self(), own_counter_});
  for (const auto& [m, st] : peers_) {
    g.beats.push_back(proto::Heartbeat{m, st.counter});
  }
  MemberId target = host_.local_view().pick_random(host_.rng(), host_.self());
  if (target != kInvalidMember) {
    host_.send(target, proto::Message{std::move(g)});
  }

  check_timeouts();
  tick_timer_ = host_.schedule(config_.gossip_interval, [this] { tick(); });
}

void GossipFailureDetector::handle_gossip(const proto::Gossip& g) {
  TimePoint now = host_.now();
  for (const proto::Heartbeat& hb : g.beats) {
    if (hb.member == host_.self()) continue;
    PeerState& st = peers_[hb.member];
    if (hb.counter > st.counter) {
      st.counter = hb.counter;
      st.last_increase = now;
      auto it = suspected_.find(hb.member);
      if (it != suspected_.end()) {
        suspected_.erase(it);
        if (on_change_) on_change_(hb.member, false);
      }
    } else if (st.counter == 0) {
      // First (possibly zero) sighting still starts the silence clock.
      st.last_increase = now;
    }
  }
}

void GossipFailureDetector::check_timeouts() {
  TimePoint now = host_.now();
  for (const auto& [m, st] : peers_) {
    if (suspected_.count(m)) continue;
    if (now - st.last_increase > config_.fail_timeout) {
      suspected_.emplace(m, 1);
      if (on_change_) on_change_(m, true);
    }
  }
}

}  // namespace rrmp
