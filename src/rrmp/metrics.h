// Protocol observability.
//
// Endpoints report protocol events to a MetricsSink; the benches and tests
// use RecordingSink, which accumulates counters, per-message timelines
// (store→discard intervals, search start→completion) and raw event streams
// for time-series plots (Figure 7).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/time.h"
#include "common/types.h"

namespace rrmp {

class MetricsSink {
 public:
  virtual ~MetricsSink() = default;

  virtual void on_delivered(MemberId, const MessageId&, TimePoint) {}
  virtual void on_loss_detected(MemberId, const MessageId&, TimePoint) {}
  virtual void on_recovered(MemberId, const MessageId&, TimePoint,
                            Duration /*latency*/) {}

  virtual void on_buffer_stored(MemberId, const MessageId&, TimePoint) {}
  virtual void on_buffer_discarded(MemberId, const MessageId&, TimePoint,
                                   bool /*was_long_term*/) {}
  virtual void on_promoted_long_term(MemberId, const MessageId&, TimePoint) {}

  virtual void on_request_sent(MemberId, const MessageId&, bool /*remote*/,
                               TimePoint) {}
  virtual void on_request_received(MemberId, const MessageId&,
                                   bool /*remote*/, TimePoint) {}
  virtual void on_repair_sent(MemberId, const MessageId&, bool /*remote*/,
                              TimePoint) {}

  virtual void on_search_started(MemberId, const MessageId&, TimePoint) {}
  virtual void on_search_hop(MemberId /*from*/, MemberId /*to*/,
                             const MessageId&, TimePoint) {}
  virtual void on_search_completed(MemberId /*holder*/, const MessageId&,
                                   TimePoint) {}

  virtual void on_regional_multicast(MemberId, const MessageId&, TimePoint) {}
  virtual void on_relay_suppressed(MemberId, const MessageId&, TimePoint) {}
  virtual void on_handoff_sent(MemberId /*from*/, MemberId /*to*/,
                               std::size_t /*messages*/, TimePoint) {}

  /// Flow control: multicast() admitted a frame but the send window was
  /// full, so it was queued instead of transmitted.
  virtual void on_send_deferred(MemberId, const MessageId&, TimePoint) {}
  /// Flow control: one periodic CreditAck multicast (receive cursors +
  /// occupancy) left this member.
  virtual void on_credit_ack_sent(MemberId, TimePoint) {}
  /// Flow control: a periodic CreditAck was withheld because the member's
  /// cursors were already fresh on its piggybacked Data/Session traffic.
  virtual void on_credit_ack_suppressed(MemberId, TimePoint) {}
  /// Flow control: the sender re-multicast the frame wedging its window
  /// floor after the stall threshold (the retransmission of last resort).
  virtual void on_flow_stall_remcast(MemberId, const MessageId&, TimePoint) {}
  /// Flow control: re-multicast rounds could not move the floor, so the
  /// sender released the stalled peer's cursor binding (a rejoined member
  /// whose history is gone region-wide cannot close the gap; the window
  /// must not deadlock on it).
  virtual void on_flow_stall_release(MemberId, TimePoint) {}
};

/// No-op sink used when the caller does not care.
class NullSink final : public MetricsSink {};

/// Accumulating sink for experiments.
class RecordingSink final : public MetricsSink {
 public:
  struct Counters {
    std::uint64_t delivered = 0;
    std::uint64_t losses_detected = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t stores = 0;
    std::uint64_t discards = 0;
    std::uint64_t long_term_promotions = 0;
    std::uint64_t local_requests_sent = 0;
    std::uint64_t remote_requests_sent = 0;
    std::uint64_t requests_received = 0;
    std::uint64_t repairs_sent = 0;
    std::uint64_t remote_repairs_sent = 0;
    std::uint64_t searches_started = 0;
    std::uint64_t search_hops = 0;
    std::uint64_t searches_completed = 0;
    std::uint64_t regional_multicasts = 0;
    std::uint64_t relays_suppressed = 0;
    std::uint64_t handoffs = 0;
    std::uint64_t sends_deferred = 0;
    std::uint64_t credit_acks_sent = 0;
    std::uint64_t credit_acks_suppressed = 0;
    std::uint64_t flow_stall_remcasts = 0;
    std::uint64_t flow_stall_releases = 0;

    /// Field-wise sum — the single place that must grow with the struct
    /// (RecordingSink::merge folds per-region counters through it).
    Counters& operator+=(const Counters& o);

    friend bool operator==(const Counters&, const Counters&) = default;
  };

  struct TimedEvent {
    TimePoint at;
    MemberId member;
    MessageId id;

    friend bool operator==(const TimedEvent&, const TimedEvent&) = default;
  };

  /// Completed residency of one message in one member's buffer.
  struct BufferInterval {
    MemberId member;
    MessageId id;
    TimePoint stored_at;
    TimePoint discarded_at;
    bool was_long_term;
    Duration held() const { return discarded_at - stored_at; }
  };

  const Counters& counters() const { return counters_; }

  const std::vector<TimedEvent>& deliveries() const { return deliveries_; }
  const std::vector<TimedEvent>& stores() const { return stores_; }
  const std::vector<TimedEvent>& discards() const { return discards_; }
  const std::vector<TimedEvent>& promotions() const { return promotions_; }
  const std::vector<BufferInterval>& buffer_intervals() const {
    return buffer_intervals_;
  }
  const std::vector<Duration>& recovery_latencies() const {
    return recovery_latencies_;
  }

  /// First REPAIR with remote=true sent for `id`, or TimePoint::max().
  TimePoint first_remote_repair(const MessageId& id) const;

  /// Remote requests sent for `id` (Figure-A3 lambda validation).
  std::uint64_t remote_requests_for(const MessageId& id) const;

  /// Remote repairs sent for `id` (duplicate-reply counting, ablation A2).
  std::uint64_t remote_repairs_for(const MessageId& id) const;

  void clear();

  /// Bumped by every recorded event; lets callers cache derived views (the
  /// sharded cluster's merged metrics) and rebuild only on change.
  std::uint64_t revision() const { return revision_; }

  /// Deterministic merge of per-region sinks (sharded cluster harness).
  /// Counters and per-message tallies are summed; timed-event streams are
  /// k-way merged by timestamp with input index as the tie-breaker, so the
  /// merged streams are globally time-ordered and identical for any shard
  /// count. Inputs must cover disjoint member sets.
  static RecordingSink merge(std::span<const RecordingSink* const> sinks);

  // MetricsSink overrides.
  void on_delivered(MemberId m, const MessageId& id, TimePoint t) override;
  void on_loss_detected(MemberId m, const MessageId& id, TimePoint t) override;
  void on_recovered(MemberId m, const MessageId& id, TimePoint t,
                    Duration latency) override;
  void on_buffer_stored(MemberId m, const MessageId& id, TimePoint t) override;
  void on_buffer_discarded(MemberId m, const MessageId& id, TimePoint t,
                           bool was_long_term) override;
  void on_promoted_long_term(MemberId m, const MessageId& id,
                             TimePoint t) override;
  void on_request_sent(MemberId m, const MessageId& id, bool remote,
                       TimePoint t) override;
  void on_request_received(MemberId m, const MessageId& id, bool remote,
                           TimePoint t) override;
  void on_repair_sent(MemberId m, const MessageId& id, bool remote,
                      TimePoint t) override;
  void on_search_started(MemberId m, const MessageId& id, TimePoint t) override;
  void on_search_hop(MemberId from, MemberId to, const MessageId& id,
                     TimePoint t) override;
  void on_search_completed(MemberId holder, const MessageId& id,
                           TimePoint t) override;
  void on_regional_multicast(MemberId m, const MessageId& id,
                             TimePoint t) override;
  void on_relay_suppressed(MemberId m, const MessageId& id,
                           TimePoint t) override;
  void on_handoff_sent(MemberId from, MemberId to, std::size_t messages,
                       TimePoint t) override;
  void on_send_deferred(MemberId m, const MessageId& id, TimePoint t) override;
  void on_credit_ack_sent(MemberId m, TimePoint t) override;
  void on_credit_ack_suppressed(MemberId m, TimePoint t) override;
  void on_flow_stall_remcast(MemberId m, const MessageId& id,
                             TimePoint t) override;
  void on_flow_stall_release(MemberId m, TimePoint t) override;

 private:
  std::uint64_t revision_ = 0;
  Counters counters_;
  std::vector<TimedEvent> deliveries_;
  std::vector<TimedEvent> stores_;
  std::vector<TimedEvent> discards_;
  std::vector<TimedEvent> promotions_;
  std::vector<BufferInterval> buffer_intervals_;
  std::vector<Duration> recovery_latencies_;
  std::unordered_map<MessageId, TimePoint> first_remote_repair_;
  std::unordered_map<MessageId, std::uint64_t> remote_requests_by_id_;
  std::unordered_map<MessageId, std::uint64_t> remote_repairs_by_id_;
  // (member, id) -> store time, for closing BufferIntervals.
  std::map<std::pair<MemberId, MessageId>, TimePoint> open_stores_;
};

}  // namespace rrmp
