// Gossip-style failure detection (van Renesse, Minsky & Hayden [13]), the
// failure-detection substrate RRMP builds on (paper §2).
//
// Each member keeps a heartbeat counter per region peer. Every
// gossip_interval it increments its own counter and sends its full table to
// one randomly selected peer; on receipt, tables merge by taking the maximum
// counter (and noting the local time of each increase). A peer whose counter
// has not increased for fail_timeout is suspected; if it increases again
// later (e.g. the member was slow, not dead) the suspicion is lifted.
#pragma once

#include <functional>
#include <unordered_map>

#include "rrmp/host.h"

namespace rrmp {

struct GossipConfig {
  Duration gossip_interval = Duration::millis(10);
  /// Suspect after this much silence. [13] derives it from group size and
  /// desired false-positive probability; a multiple of the interval works
  /// for region-scale groups.
  Duration fail_timeout = Duration::millis(100);
};

class GossipFailureDetector {
 public:
  /// `on_change(member, suspected)` fires on every suspicion edge.
  GossipFailureDetector(IHost& host, GossipConfig config,
                        std::function<void(MemberId, bool)> on_change);
  ~GossipFailureDetector();

  GossipFailureDetector(const GossipFailureDetector&) = delete;
  GossipFailureDetector& operator=(const GossipFailureDetector&) = delete;

  void start();
  void stop();

  void handle_gossip(const proto::Gossip& g);

  bool suspected(MemberId m) const { return suspected_.count(m) > 0; }
  std::size_t suspected_count() const { return suspected_.size(); }
  std::uint64_t own_counter() const { return own_counter_; }

 private:
  void tick();
  void check_timeouts();

  IHost& host_;
  GossipConfig config_;
  std::function<void(MemberId, bool)> on_change_;
  std::uint64_t own_counter_ = 0;
  struct PeerState {
    std::uint64_t counter = 0;
    TimePoint last_increase;
  };
  std::unordered_map<MemberId, PeerState> peers_;
  std::unordered_map<MemberId, char> suspected_;
  TimerHandle tick_timer_ = kNoTimer;
  bool running_ = false;
};

}  // namespace rrmp
