// Protocol configuration (paper §2.2, §3, §4 defaults).
#pragma once

#include <cstdint>

#include "buffer/budget.h"
#include "buffer/coordination.h"
#include "common/time.h"
#include "repair/hierarchy.h"
#include "rrmp/flow_control.h"

namespace rrmp {

/// How a member that needs a retransmission locates someone who buffers the
/// message.
enum class BuffererLookup {
  /// The paper's randomized scheme: random neighbors + random search (§3.3).
  kRandomized,
  /// The deterministic scheme of [11] (§3.4): requests go straight to the
  /// hash-selected bufferer set; requires the hash-based buffer policy.
  kHashDirect,
};

struct Config {
  /// Expected number of remote requests sent by a region per recovery round
  /// while the entire region misses a message (§2.2). Each member missing a
  /// message sends a remote request with probability lambda/|region|.
  double lambda = 1.0;

  /// Interval between the sender's session messages (§2.1); receivers use
  /// them to detect loss of the last messages in a burst.
  ///
  /// Keep this BELOW the buffer policy's idle threshold T: the loss of a
  /// burst's tail message generates no sequence gap, so until a session
  /// message exposes it nobody sends requests — and requests are exactly
  /// the feedback that keeps short-term copies alive (§3.1). With
  /// session_interval > T, every holder of a tail message reaches its idle
  /// decision before the first request can possibly arrive.
  Duration session_interval = Duration::millis(20);

  /// Multiplier applied to the RTT estimate when arming request-retry
  /// timers. The paper uses the plain RTT (factor 1).
  double timeout_factor = 1.0;

  /// Measure per-peer RTTs from request->repair samples and derive retry
  /// timeouts with Jacobson/Karels smoothing instead of trusting the
  /// host's static estimate. Off by default so the figure reproductions
  /// use the paper's exact-RTT timers.
  bool measure_rtt = false;

  /// Upper bound on local/remote/search retry attempts per message; 0 means
  /// unbounded (the sim's event horizon bounds it in practice).
  std::uint32_t max_attempts = 0;

  /// Randomized back-off before relaying a remote repair into the region
  /// (§2.2 / [14]): wait U(0, regional_backoff) and suppress the multicast
  /// if another member relays the same message first. zero() relays
  /// immediately (no suppression).
  Duration regional_backoff = Duration::millis(5);

  /// Bufferer location scheme (see BuffererLookup).
  BuffererLookup lookup = BuffererLookup::kRandomized;

  /// Per-member buffer budget (bytes/entries in wire-encoded Data-frame
  /// units; zero fields = unlimited). The endpoint builds its BufferStore
  /// with this budget; when an admission would exceed it, the retention
  /// policy picks eviction victims (see buffer::RetentionPolicy). The paper
  /// treats buffer memory as the scarce resource — this is that resource
  /// made an explicit, tunable quantity.
  buffer::BufferBudget buffer_budget;

  /// Cooperative region-wide budget coordination (see
  /// buffer::CoordinationParams): periodic BufferDigest gossip within the
  /// region, replica-aware eviction, and shed handoffs of sole-copy entries
  /// under pressure. Disabled by default — the uncoordinated protocol is
  /// bit-identical to the budgeted PR 4 behaviour.
  buffer::CoordinationParams buffer_coordination;

  /// Windowed send admission with credit-based feedback (see
  /// FlowControlParams): per-sender slot-ring windows over outstanding Data
  /// frames, receive cursors in periodic CreditAck feedback, DFI-style
  /// per-target byte budgets, and region-aware back-pressure fed by the
  /// BufferDigest gossip. `flow.adaptive` turns the static window into an
  /// AIMD one (grow one frame per clean credit round, halve on stall,
  /// bounded by [min_window, max_window or window_size]); `flow.piggyback`
  /// rides the cursors on outgoing Data/Session frames and demotes the
  /// CreditAck multicast to a quiet-receiver fallback. Disabled by default —
  /// the unpaced protocol is bit-identical to the pre-flow-control
  /// behaviour, and adaptive/piggyback off is bit-identical to the static
  /// credit design.
  FlowControlParams flow;

  /// Hierarchical repair trees (see repair::HierarchyParams): per-region
  /// representatives elected by rendezvous hashing aggregate NAKs — members
  /// ask their region's representative first, and only representatives
  /// escalate misses up the region hierarchy (one Escalate frame per region
  /// per miss) instead of every member sampling random parent-region peers.
  /// Disabled by default — the flat protocol is bit-identical to the
  /// pre-hierarchy behaviour.
  repair::HierarchyParams hierarchy;

  /// How a member locates a bufferer for a *discarded* message (§3.3).
  /// kRandomSearch is the paper's scheme; kMulticastQuery is the rejected
  /// alternative (multicast the request, bufferers reply after a randomized
  /// back-off proportional to C) kept for the implosion ablation.
  enum class SearchStrategy { kRandomSearch, kMulticastQuery };
  SearchStrategy search_strategy = SearchStrategy::kRandomSearch;

  /// kMulticastQuery: a bufferer replies after U(0, query_backoff_unit * C
  /// estimate). The paper's point is that C underestimates the bufferer
  /// count when a message went idle prematurely, so the window is too short
  /// to suppress duplicates.
  Duration query_backoff_unit = Duration::millis(2);
  double query_backoff_c = 6.0;

  /// After a search completes, members remember (id -> holder) for this
  /// long, so straggler search requests are redirected to the holder
  /// instead of restarting a search that can never terminate.
  Duration search_cache_ttl = Duration::millis(500);

  /// Number of hash-selected bufferers per message; must match the
  /// hash-based policy's k when lookup == kHashDirect.
  std::uint32_t hash_k = 6;

  /// Enable the stability baseline's periodic history multicast; set
  /// automatically when the buffer policy requires it.
  bool history_exchange = false;
  Duration history_interval = Duration::millis(20);

  /// The paper's recovery engine: react to detected sequence gaps with
  /// immediate randomized requests (§2.2). Disable only to isolate the
  /// anti-entropy engine in ablations.
  bool gap_driven_recovery = true;

  /// Bimodal Multicast's recovery engine ([3], which RRMP builds on): each
  /// member periodically sends a digest of its received sequences to one
  /// random region member; the receiver pulls what it misses directly from
  /// the digest's sender. Coexists with gap-driven recovery if both are on.
  bool anti_entropy = false;
  Duration anti_entropy_interval = Duration::millis(50);
  /// Cap on pull requests triggered by one digest (bounds burst size).
  std::uint32_t anti_entropy_max_pulls = 64;
};

}  // namespace rrmp
