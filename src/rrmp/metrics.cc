#include "rrmp/metrics.h"

namespace rrmp {

TimePoint RecordingSink::first_remote_repair(const MessageId& id) const {
  auto it = first_remote_repair_.find(id);
  return it == first_remote_repair_.end() ? TimePoint::max() : it->second;
}

std::uint64_t RecordingSink::remote_requests_for(const MessageId& id) const {
  auto it = remote_requests_by_id_.find(id);
  return it == remote_requests_by_id_.end() ? 0 : it->second;
}

std::uint64_t RecordingSink::remote_repairs_for(const MessageId& id) const {
  auto it = remote_repairs_by_id_.find(id);
  return it == remote_repairs_by_id_.end() ? 0 : it->second;
}

void RecordingSink::clear() { *this = RecordingSink(); }

RecordingSink::Counters& RecordingSink::Counters::operator+=(
    const Counters& o) {
  delivered += o.delivered;
  losses_detected += o.losses_detected;
  recoveries += o.recoveries;
  stores += o.stores;
  discards += o.discards;
  long_term_promotions += o.long_term_promotions;
  local_requests_sent += o.local_requests_sent;
  remote_requests_sent += o.remote_requests_sent;
  requests_received += o.requests_received;
  repairs_sent += o.repairs_sent;
  remote_repairs_sent += o.remote_repairs_sent;
  searches_started += o.searches_started;
  search_hops += o.search_hops;
  searches_completed += o.searches_completed;
  regional_multicasts += o.regional_multicasts;
  relays_suppressed += o.relays_suppressed;
  handoffs += o.handoffs;
  sends_deferred += o.sends_deferred;
  credit_acks_sent += o.credit_acks_sent;
  credit_acks_suppressed += o.credit_acks_suppressed;
  flow_stall_remcasts += o.flow_stall_remcasts;
  flow_stall_releases += o.flow_stall_releases;
  return *this;
}

namespace {

// Stable k-way merge of per-input time-ordered event streams: output is
// ordered by (at, input index, position), so it is globally time-sorted and
// independent of how inputs were produced (thread count, scheduling).
template <typename Event, typename GetStream, typename GetTime>
std::vector<Event> merge_streams(std::span<const RecordingSink* const> sinks,
                                 GetStream stream, GetTime time_of) {
  std::vector<Event> out;
  std::size_t total = 0;
  for (const RecordingSink* s : sinks) total += stream(*s).size();
  out.reserve(total);
  std::vector<std::size_t> pos(sinks.size(), 0);
  while (out.size() < total) {
    std::size_t best = sinks.size();
    for (std::size_t i = 0; i < sinks.size(); ++i) {
      const auto& v = stream(*sinks[i]);
      if (pos[i] >= v.size()) continue;
      if (best == sinks.size() ||
          time_of(v[pos[i]]) < time_of(stream(*sinks[best])[pos[best]])) {
        best = i;
      }
    }
    out.push_back(stream(*sinks[best])[pos[best]]);
    ++pos[best];
  }
  return out;
}

}  // namespace

RecordingSink RecordingSink::merge(
    std::span<const RecordingSink* const> sinks) {
  RecordingSink out;
  auto at = [](const TimedEvent& e) { return e.at; };
  out.deliveries_ = merge_streams<TimedEvent>(
      sinks, [](const RecordingSink& s) -> const auto& { return s.deliveries_; },
      at);
  out.stores_ = merge_streams<TimedEvent>(
      sinks, [](const RecordingSink& s) -> const auto& { return s.stores_; },
      at);
  out.discards_ = merge_streams<TimedEvent>(
      sinks, [](const RecordingSink& s) -> const auto& { return s.discards_; },
      at);
  out.promotions_ = merge_streams<TimedEvent>(
      sinks,
      [](const RecordingSink& s) -> const auto& { return s.promotions_; }, at);
  out.buffer_intervals_ = merge_streams<BufferInterval>(
      sinks,
      [](const RecordingSink& s) -> const auto& { return s.buffer_intervals_; },
      [](const BufferInterval& b) { return b.discarded_at; });
  for (const RecordingSink* s : sinks) {
    out.counters_ += s->counters_;
    // Latencies concatenate in input order (only aggregates are consumed,
    // and the order is still deterministic for any shard count).
    out.recovery_latencies_.insert(out.recovery_latencies_.end(),
                                   s->recovery_latencies_.begin(),
                                   s->recovery_latencies_.end());
    for (const auto& [id, t] : s->first_remote_repair_) {
      auto [it, inserted] = out.first_remote_repair_.try_emplace(id, t);
      if (!inserted && t < it->second) it->second = t;
    }
    for (const auto& [id, n] : s->remote_requests_by_id_) {
      out.remote_requests_by_id_[id] += n;
    }
    for (const auto& [id, n] : s->remote_repairs_by_id_) {
      out.remote_repairs_by_id_[id] += n;
    }
    // Member sets are disjoint across region sinks, so plain insertion.
    out.open_stores_.insert(s->open_stores_.begin(), s->open_stores_.end());
  }
  return out;
}

void RecordingSink::on_delivered(MemberId m, const MessageId& id, TimePoint t) {
  ++revision_;
  ++counters_.delivered;
  deliveries_.push_back(TimedEvent{t, m, id});
}

void RecordingSink::on_loss_detected(MemberId, const MessageId&, TimePoint) {
  ++revision_;
  ++counters_.losses_detected;
}

void RecordingSink::on_recovered(MemberId, const MessageId&, TimePoint,
                                 Duration latency) {
  ++revision_;
  ++counters_.recoveries;
  recovery_latencies_.push_back(latency);
}

void RecordingSink::on_buffer_stored(MemberId m, const MessageId& id,
                                     TimePoint t) {
  ++revision_;
  ++counters_.stores;
  stores_.push_back(TimedEvent{t, m, id});
  open_stores_[{m, id}] = t;
}

void RecordingSink::on_buffer_discarded(MemberId m, const MessageId& id,
                                        TimePoint t, bool was_long_term) {
  ++revision_;
  ++counters_.discards;
  discards_.push_back(TimedEvent{t, m, id});
  auto it = open_stores_.find({m, id});
  if (it != open_stores_.end()) {
    buffer_intervals_.push_back(
        BufferInterval{m, id, it->second, t, was_long_term});
    open_stores_.erase(it);
  }
}

void RecordingSink::on_promoted_long_term(MemberId m, const MessageId& id,
                                          TimePoint t) {
  ++revision_;
  ++counters_.long_term_promotions;
  promotions_.push_back(TimedEvent{t, m, id});
}

void RecordingSink::on_request_sent(MemberId, const MessageId& id, bool remote,
                                    TimePoint) {
  ++revision_;
  if (remote) {
    ++counters_.remote_requests_sent;
    ++remote_requests_by_id_[id];
  } else {
    ++counters_.local_requests_sent;
  }
}

void RecordingSink::on_request_received(MemberId, const MessageId&, bool,
                                        TimePoint) {
  ++revision_;
  ++counters_.requests_received;
}

void RecordingSink::on_repair_sent(MemberId, const MessageId& id, bool remote,
                                   TimePoint t) {
  ++revision_;
  ++counters_.repairs_sent;
  if (remote) {
    ++counters_.remote_repairs_sent;
    ++remote_repairs_by_id_[id];
    auto [it, inserted] = first_remote_repair_.try_emplace(id, t);
    if (!inserted && t < it->second) it->second = t;
  }
}

void RecordingSink::on_search_started(MemberId, const MessageId&, TimePoint) {
  ++revision_;
  ++counters_.searches_started;
}

void RecordingSink::on_search_hop(MemberId, MemberId, const MessageId&,
                                  TimePoint) {
  ++revision_;
  ++counters_.search_hops;
}

void RecordingSink::on_search_completed(MemberId, const MessageId&,
                                        TimePoint) {
  ++revision_;
  ++counters_.searches_completed;
}

void RecordingSink::on_regional_multicast(MemberId, const MessageId&,
                                          TimePoint) {
  ++revision_;
  ++counters_.regional_multicasts;
}

void RecordingSink::on_relay_suppressed(MemberId, const MessageId&,
                                        TimePoint) {
  ++revision_;
  ++counters_.relays_suppressed;
}

void RecordingSink::on_handoff_sent(MemberId, MemberId, std::size_t,
                                    TimePoint) {
  ++revision_;
  ++counters_.handoffs;
}

void RecordingSink::on_send_deferred(MemberId, const MessageId&, TimePoint) {
  ++revision_;
  ++counters_.sends_deferred;
}

void RecordingSink::on_credit_ack_sent(MemberId, TimePoint) {
  ++revision_;
  ++counters_.credit_acks_sent;
}

void RecordingSink::on_credit_ack_suppressed(MemberId, TimePoint) {
  ++revision_;
  ++counters_.credit_acks_suppressed;
}

void RecordingSink::on_flow_stall_remcast(MemberId, const MessageId&,
                                          TimePoint) {
  ++revision_;
  ++counters_.flow_stall_remcasts;
}

void RecordingSink::on_flow_stall_release(MemberId, TimePoint) {
  ++revision_;
  ++counters_.flow_stall_releases;
}

}  // namespace rrmp
