#include "rrmp/metrics.h"

namespace rrmp {

TimePoint RecordingSink::first_remote_repair(const MessageId& id) const {
  auto it = first_remote_repair_.find(id);
  return it == first_remote_repair_.end() ? TimePoint::max() : it->second;
}

std::uint64_t RecordingSink::remote_requests_for(const MessageId& id) const {
  auto it = remote_requests_by_id_.find(id);
  return it == remote_requests_by_id_.end() ? 0 : it->second;
}

std::uint64_t RecordingSink::remote_repairs_for(const MessageId& id) const {
  auto it = remote_repairs_by_id_.find(id);
  return it == remote_repairs_by_id_.end() ? 0 : it->second;
}

void RecordingSink::clear() { *this = RecordingSink(); }

void RecordingSink::on_delivered(MemberId m, const MessageId& id, TimePoint t) {
  ++counters_.delivered;
  deliveries_.push_back(TimedEvent{t, m, id});
}

void RecordingSink::on_loss_detected(MemberId, const MessageId&, TimePoint) {
  ++counters_.losses_detected;
}

void RecordingSink::on_recovered(MemberId, const MessageId&, TimePoint,
                                 Duration latency) {
  ++counters_.recoveries;
  recovery_latencies_.push_back(latency);
}

void RecordingSink::on_buffer_stored(MemberId m, const MessageId& id,
                                     TimePoint t) {
  ++counters_.stores;
  stores_.push_back(TimedEvent{t, m, id});
  open_stores_[{m, id}] = t;
}

void RecordingSink::on_buffer_discarded(MemberId m, const MessageId& id,
                                        TimePoint t, bool was_long_term) {
  ++counters_.discards;
  discards_.push_back(TimedEvent{t, m, id});
  auto it = open_stores_.find({m, id});
  if (it != open_stores_.end()) {
    buffer_intervals_.push_back(
        BufferInterval{m, id, it->second, t, was_long_term});
    open_stores_.erase(it);
  }
}

void RecordingSink::on_promoted_long_term(MemberId m, const MessageId& id,
                                          TimePoint t) {
  ++counters_.long_term_promotions;
  promotions_.push_back(TimedEvent{t, m, id});
}

void RecordingSink::on_request_sent(MemberId, const MessageId& id, bool remote,
                                    TimePoint) {
  if (remote) {
    ++counters_.remote_requests_sent;
    ++remote_requests_by_id_[id];
  } else {
    ++counters_.local_requests_sent;
  }
}

void RecordingSink::on_request_received(MemberId, const MessageId&, bool,
                                        TimePoint) {
  ++counters_.requests_received;
}

void RecordingSink::on_repair_sent(MemberId, const MessageId& id, bool remote,
                                   TimePoint t) {
  ++counters_.repairs_sent;
  if (remote) {
    ++counters_.remote_repairs_sent;
    ++remote_repairs_by_id_[id];
    auto [it, inserted] = first_remote_repair_.try_emplace(id, t);
    if (!inserted && t < it->second) it->second = t;
  }
}

void RecordingSink::on_search_started(MemberId, const MessageId&, TimePoint) {
  ++counters_.searches_started;
}

void RecordingSink::on_search_hop(MemberId, MemberId, const MessageId&,
                                  TimePoint) {
  ++counters_.search_hops;
}

void RecordingSink::on_search_completed(MemberId, const MessageId&,
                                        TimePoint) {
  ++counters_.searches_completed;
}

void RecordingSink::on_regional_multicast(MemberId, const MessageId&,
                                          TimePoint) {
  ++counters_.regional_multicasts;
}

void RecordingSink::on_relay_suppressed(MemberId, const MessageId&,
                                        TimePoint) {
  ++counters_.relays_suppressed;
}

void RecordingSink::on_handoff_sent(MemberId, MemberId, std::size_t,
                                    TimePoint) {
  ++counters_.handoffs;
}

}  // namespace rrmp
