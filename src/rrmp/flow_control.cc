#include "rrmp/flow_control.h"

#include <algorithm>
#include <cassert>

namespace rrmp {

FlowControlParams sanitized(FlowControlParams p) {
  if (p.window_size == 0) p.window_size = 1;
  if (p.ack_interval <= Duration::zero()) p.ack_interval = Duration::micros(1);
  if (!(p.pressure_watermark > 0.0) || p.pressure_watermark > 1.0) {
    p.pressure_watermark = 0.75;
  }
  // AIMD bounds: min_window at least one frame and never above the ceiling
  // (which itself is at least 1 because window_size and max_window are).
  if (p.min_window == 0) p.min_window = 1;
  if (p.min_window > p.ceiling()) p.min_window = p.ceiling();
  return p;
}

FlowController::FlowController(FlowControlParams params,
                               std::size_t self_budget_bytes)
    : params_(sanitized(params)), self_budget_bytes_(self_budget_bytes) {
  // Slot s % (W+1) covers sequence s for s in [send_seq - W, send_seq];
  // slot 0 doubles as the cum(0) = 0 anchor until sequence W+1 reuses it —
  // by which time the floor has necessarily advanced past 0. W is whatever
  // the window can ever reach: the AIMD ceiling may sit above the static
  // window_size knob when max_window raises it.
  std::uint64_t span = std::max(params_.window_size, params_.ceiling());
  cum_ring_.assign(span + 1, 0);
  cwnd_ = params_.min_window;  // slow start from the floor; AIMD grows it
}

std::uint64_t FlowController::window_floor() const {
  std::uint64_t floor = 0;
  bool first = true;
  for (const auto& [peer, cursor] : cursors_) {
    if (first || cursor < floor) floor = cursor;
    first = false;
  }
  return floor;
}

std::uint64_t FlowController::cum_bytes_at(std::uint64_t seq) const {
  assert(seq + ring_span() >= send_seq_);
  return cum_ring_[seq % cum_ring_.size()];
}

std::uint64_t FlowController::outstanding_bytes() const {
  // A peer that first reports after we already sent (cursor 0, late
  // reporter) can drop the floor further behind send_seq than the
  // cumulative ring covers. Clamp to the covered range: the byte figure
  // then counts the newest ring_span() frames, and the frame-count gate has
  // long since closed the window anyway.
  std::uint64_t floor = window_floor();
  std::uint64_t oldest_covered =
      send_seq_ > ring_span() ? send_seq_ - ring_span() : 0;
  return cum_bytes_total_ - cum_bytes_at(std::max(floor, oldest_covered));
}

bool FlowController::pressured() const {
  if (!params_.backpressure) return false;
  for (const auto& [peer, load] : loads_) {
    std::uint64_t budget =
        load.budget_bytes != 0 ? load.budget_bytes : self_budget_bytes_;
    if (budget == 0) continue;  // unlimited: occupancy carries no pressure
    if (static_cast<double>(load.bytes_in_use) >=
        params_.pressure_watermark * static_cast<double>(budget)) {
      return true;
    }
  }
  return false;
}

std::uint32_t FlowController::effective_window() const {
  std::uint32_t base = current_window();
  if (!pressured()) return base;
  // Multiplicative back-off, crowd-aware: halve, then split what remains
  // across the senders currently advertising outstanding frames. Per-sender
  // windows alone cannot adapt to how many windows are open at once — eight
  // senders at W/2 still aggregate to 4W of in-flight frames, which is
  // exactly the overload the pressure signal is reporting.
  std::uint64_t crowd = 1;  // self
  for (const auto& [peer, load] : loads_) {
    if (load.window_outstanding > 0) ++crowd;
  }
  std::uint64_t halved = std::max<std::uint64_t>(1, base / 2);
  return static_cast<std::uint32_t>(std::max<std::uint64_t>(1, halved / crowd));
}

std::uint64_t FlowController::credits() const {
  std::uint64_t window = effective_window();
  std::uint64_t out = outstanding();
  return out >= window ? 0 : window - out;
}

bool FlowController::may_send(std::size_t frame_bytes) const {
  if (!params_.enabled) return true;  // inert: the unpaced protocol
  std::uint64_t out = outstanding();
  if (out >= effective_window()) return false;
  if (params_.target_budget_bytes != 0 && out > 0 &&
      outstanding_bytes() + frame_bytes > params_.target_budget_bytes) {
    return false;  // byte budget full — but never wedge an idle stream
  }
  return true;
}

void FlowController::on_frame_sent(std::uint64_t seq, std::size_t frame_bytes) {
  assert(seq == send_seq_ + 1 && "frames must enter the wire in order");
  send_seq_ = seq;
  ++frames_sent_;
  cum_bytes_total_ += frame_bytes;
  cum_ring_[seq % cum_ring_.size()] = cum_bytes_total_;
}

void FlowController::on_cursor(MemberId peer, std::uint64_t cursor) {
  // A peer cannot have received past what we sent; a corrupt or reordered
  // ack must not fabricate credit.
  cursor = std::min(cursor, send_seq_);
  auto [rit, rinserted] = reported_.try_emplace(peer, cursor);
  if (!rinserted && cursor > rit->second) rit->second = cursor;
  auto [it, inserted] = cursors_.try_emplace(peer, cursor);
  if (!inserted && cursor > it->second) it->second = cursor;
}

void FlowController::on_peer_budget(MemberId peer, std::uint64_t bytes_in_use,
                                    std::uint64_t budget_bytes) {
  PeerLoad& load = loads_[peer];
  load.bytes_in_use = bytes_in_use;
  load.budget_bytes = budget_bytes;
}

void FlowController::on_peer_occupancy(MemberId peer,
                                       std::uint64_t bytes_in_use,
                                       std::uint64_t window_outstanding) {
  PeerLoad& load = loads_[peer];  // keeps any known budget
  load.bytes_in_use = bytes_in_use;
  load.window_outstanding = window_outstanding;
}

void FlowController::on_peer_joined(MemberId peer) {
  // Seed at the current floor (never above send_seq_ — cursors are clamped
  // on entry, so the min over them can't exceed it either). try_emplace:
  // if the peer somehow reported before the view change delivered, keep the
  // real cursor. on_cursor's monotone update then ignores the joiner's
  // genuine "I have nothing" acks until it catches up past the seed.
  cursors_.try_emplace(peer, window_floor());
}

bool FlowController::release_stalled_peers() {
  if (cursors_.empty()) return false;
  std::uint64_t floor = window_floor();
  if (floor >= send_seq_) return false;  // nothing outstanding to release
  for (const auto& [peer, cursor] : cursors_) {
    if (cursor != floor) continue;
    auto rit = reported_.find(peer);
    std::uint64_t reported = rit == reported_.end() ? 0 : rit->second;
    // An honest floor-holder (its own report reached the binding) is stuck
    // on the frame just past the floor; releasing it would fabricate
    // credit the re-multicast can still earn for real.
    if (reported >= cursor) return false;
  }
  for (auto& [peer, cursor] : cursors_) {
    if (cursor == floor) cursor = floor + 1;
  }
  return true;
}

void FlowController::on_clean_round() {
  if (!params_.adaptive) return;
  if (cwnd_ < params_.ceiling()) ++cwnd_;
}

void FlowController::on_loss() {
  if (!params_.adaptive) return;
  cwnd_ = std::max(params_.min_window, cwnd_ / 2);
}

void FlowController::retain_peers(const std::vector<MemberId>& alive) {
  auto keep = [&alive](MemberId m) {
    return std::binary_search(alive.begin(), alive.end(), m);
  };
  for (auto it = cursors_.begin(); it != cursors_.end();) {
    it = keep(it->first) ? std::next(it) : cursors_.erase(it);
  }
  for (auto it = reported_.begin(); it != reported_.end();) {
    it = keep(it->first) ? std::next(it) : reported_.erase(it);
  }
  for (auto it = loads_.begin(); it != loads_.end();) {
    it = keep(it->first) ? std::next(it) : loads_.erase(it);
  }
}

}  // namespace rrmp
