#include "rrmp/sequence_tracker.h"

#include <cassert>
#include <iterator>

namespace rrmp {

SequenceTracker::Observation SequenceTracker::observe_data(std::uint64_t seq) {
  Observation obs;
  if (seq == 0) return obs;  // sequences start at 1; 0 is malformed
  if (has(seq)) return obs;
  obs.is_new = true;
  ++received_count_;
  // Record receipt first, so enumeration below skips `seq` itself.
  if (seq == next_expected_) {
    ++next_expected_;
    compact();
  } else if (seq > next_expected_) {
    out_of_order_.insert(seq);
  }
  if (seq > announced_) announced_ = seq;
  enumerate_gaps(obs.new_gaps);
  return obs;
}

std::vector<std::uint64_t> SequenceTracker::observe_session(
    std::uint64_t highest) {
  std::vector<std::uint64_t> gaps;
  if (highest > announced_) announced_ = highest;
  // Resume even when `highest` adds nothing new: a prior observation may
  // have hit the per-call cap, and the periodic session stream is exactly
  // what drains the remaining span.
  enumerate_gaps(gaps);
  return gaps;
}

void SequenceTracker::enumerate_gaps(std::vector<std::uint64_t>& gaps) {
  for (std::uint64_t steps = 0;
       max_known_ < announced_ && steps < kMaxGapsPerObservation; ++steps) {
    ++max_known_;
    if (!has(max_known_)) gaps.push_back(max_known_);
  }
}

bool SequenceTracker::has(std::uint64_t seq) const {
  if (seq == 0) return false;
  if (seq < next_expected_) return true;
  return out_of_order_.count(seq) > 0;
}

std::vector<std::uint64_t> SequenceTracker::missing() const {
  std::vector<std::uint64_t> out;
  for (std::uint64_t s = next_expected_; s <= max_known_; ++s) {
    if (!out_of_order_.count(s)) out.push_back(s);
  }
  return out;
}

std::size_t SequenceTracker::missing_count() const {
  if (max_known_ < next_expected_) return 0;
  // Count only out-of-order receipts inside [next_expected_, max_known_]:
  // entries above max_known_ (enumeration lagging announced_) are received
  // but their surrounding span is not yet known-missing.
  std::size_t received_in_span = static_cast<std::size_t>(std::distance(
      out_of_order_.begin(), out_of_order_.upper_bound(max_known_)));
  return static_cast<std::size_t>(max_known_ - next_expected_ + 1) -
         received_in_span;
}

proto::SourceHistory SequenceTracker::history(MemberId source,
                                              std::size_t max_words) const {
  proto::SourceHistory h;
  h.source = source;
  h.next_expected = next_expected_;
  if (!out_of_order_.empty() && max_words > 0) {
    std::uint64_t span = *out_of_order_.rbegin() - next_expected_ + 1;
    std::size_t words =
        std::min(max_words, static_cast<std::size_t>((span + 63) / 64));
    h.bitmap.assign(words, 0);
    for (std::uint64_t s : out_of_order_) {
      std::uint64_t off = s - next_expected_;
      std::size_t w = static_cast<std::size_t>(off / 64);
      if (w >= words) break;
      h.bitmap[w] |= (1ULL << (off % 64));
    }
  }
  return h;
}

void SequenceTracker::compact() {
  auto it = out_of_order_.begin();
  while (it != out_of_order_.end() && *it == next_expected_) {
    ++next_expected_;
    it = out_of_order_.erase(it);
  }
  assert(out_of_order_.empty() || *out_of_order_.begin() > next_expected_);
  // Contiguous receipt can outrun a capped enumeration; everything below
  // next_expected_ is received, hence trivially "processed".
  if (max_known_ + 1 < next_expected_) max_known_ = next_expected_ - 1;
  if (announced_ < max_known_) announced_ = max_known_;
}

}  // namespace rrmp
