// Environment abstraction for protocol components.
//
// An IHost gives an endpoint its clock, timers, randomness, membership views
// and message transmission. Two implementations exist: harness::SimHost
// (discrete-event simulator) and harness::UdpMemberHost (real loopback UDP
// sockets). Protocol code is identical on both.
#pragma once

#include <cstdint>
#include <functional>

#include "common/random.h"
#include "common/time.h"
#include "common/types.h"
#include "membership/view.h"
#include "proto/messages.h"

namespace rrmp {

/// Opaque timer handle; 0 is "no timer".
using TimerHandle = std::uint64_t;
inline constexpr TimerHandle kNoTimer = 0;

class IHost {
 public:
  virtual ~IHost() = default;

  virtual MemberId self() const = 0;
  virtual RegionId region() const = 0;

  virtual TimePoint now() const = 0;
  virtual TimerHandle schedule(Duration d, std::function<void()> fn) = 0;
  virtual void cancel(TimerHandle timer) = 0;

  /// Unicast to any member of the group.
  virtual void send(MemberId to, proto::Message msg) = 0;

  /// Multicast within this member's own region (excluding self).
  virtual void multicast_region(proto::Message msg) = 0;

  /// Best-effort dissemination to the whole group (the sender's initial
  /// IP multicast; per-receiver loss applies).
  virtual void ip_multicast(proto::Message msg) = 0;

  virtual RandomEngine& rng() = 0;

  /// This member's view of its own region (alive members, including self).
  virtual const membership::RegionView& local_view() const = 0;

  /// This member's view of its parent region; empty if the region is a root.
  virtual const membership::RegionView& parent_view() const = 0;

  /// Round-trip-time estimate to a peer (drives retry timers; paper sets
  /// retry timeouts to the estimated RTT of the probed member).
  virtual Duration rtt_estimate(MemberId peer) const = 0;

  /// Monotone counter that advances whenever local_view()/parent_view() may
  /// have changed contents; lets the endpoint cache view-derived state
  /// (e.g. its repair-tree representative) without rescanning members per
  /// use. Hosts whose views are immutable snapshots keep the default 0.
  virtual std::uint64_t view_epoch() const { return 0; }
};

}  // namespace rrmp
