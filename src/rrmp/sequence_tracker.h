// Per-source reception tracking and loss detection.
//
// A receiver detects a loss by observing a gap in the sequence-number space
// of a source (paper §2.1); session messages reveal the highest sequence
// sent, exposing losses at the tail of a burst. Sequences start at 1.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "common/types.h"
#include "proto/messages.h"

namespace rrmp {

class SequenceTracker {
 public:
  /// Marks `seq` received. Returns the *newly detected* missing sequences —
  /// the gaps opened by this observation — and whether `seq` itself is new
  /// (false for duplicates).
  struct Observation {
    bool is_new = false;
    std::vector<std::uint64_t> new_gaps;
  };
  Observation observe_data(std::uint64_t seq);

  /// Processes a session announcement "sequences 1..highest exist".
  /// Returns the newly detected missing sequences.
  std::vector<std::uint64_t> observe_session(std::uint64_t highest);

  /// A hint that `seq` exists (e.g. a request for it was seen) without us
  /// receiving it. Equivalent to observe_session(seq).
  std::vector<std::uint64_t> observe_hint(std::uint64_t seq) {
    return observe_session(seq);
  }

  bool has(std::uint64_t seq) const;

  /// Smallest sequence not yet received (1 if nothing received).
  std::uint64_t next_expected() const { return next_expected_; }

  /// Highest sequence known to exist (received or announced).
  std::uint64_t max_known() const { return max_known_; }

  /// Sequences in [1, max_known] not yet received.
  std::vector<std::uint64_t> missing() const;
  std::size_t missing_count() const;

  std::uint64_t received_count() const { return received_count_; }

  /// Reception state for history exchange: next_expected plus a bitmap of
  /// at most `max_words`*64 sequences above it.
  proto::SourceHistory history(MemberId source, std::size_t max_words) const;

 private:
  void compact();

  std::uint64_t next_expected_ = 1;  // all seqs < this were received
  std::uint64_t max_known_ = 0;
  std::uint64_t received_count_ = 0;
  std::set<std::uint64_t> out_of_order_;  // received, >= next_expected_
};

}  // namespace rrmp
