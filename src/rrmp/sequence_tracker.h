// Per-source reception tracking and loss detection.
//
// A receiver detects a loss by observing a gap in the sequence-number space
// of a source (paper §2.1); session messages reveal the highest sequence
// sent, exposing losses at the tail of a burst. Sequences start at 1.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "common/types.h"
#include "proto/messages.h"

namespace rrmp {

class SequenceTracker {
 public:
  /// Upper bound on gap-enumeration work per observation. A session (or a
  /// wildly out-of-order data frame) announcing sequences far beyond
  /// max_known() would otherwise enumerate the whole span in one call —
  /// unbounded allocation and an unbounded stall. Enumeration past the cap
  /// is *resumed* by the next observation (sessions repeat every
  /// session_interval), so nothing is ever silently dropped: it surfaces a
  /// bounded number of gaps at a time instead.
  static constexpr std::uint64_t kMaxGapsPerObservation = 1024;

  /// Marks `seq` received. Returns the *newly detected* missing sequences —
  /// the gaps opened by this observation — and whether `seq` itself is new
  /// (false for duplicates).
  struct Observation {
    bool is_new = false;
    std::vector<std::uint64_t> new_gaps;
  };
  Observation observe_data(std::uint64_t seq);

  /// Processes a session announcement "sequences 1..highest exist".
  /// Returns the newly detected missing sequences.
  std::vector<std::uint64_t> observe_session(std::uint64_t highest);

  /// A hint that `seq` exists (e.g. a request for it was seen) without us
  /// receiving it. Equivalent to observe_session(seq).
  std::vector<std::uint64_t> observe_hint(std::uint64_t seq) {
    return observe_session(seq);
  }

  bool has(std::uint64_t seq) const;

  /// Smallest sequence not yet received (1 if nothing received).
  std::uint64_t next_expected() const { return next_expected_; }

  /// Highest sequence whose existence has been processed (received or
  /// announced *and* gap-enumerated). When an announcement jumps more than
  /// kMaxGapsPerObservation ahead, this trails announced() until later
  /// observations catch it up.
  std::uint64_t max_known() const { return max_known_; }

  /// Highest sequence ever announced; >= max_known(). The difference is the
  /// span still awaiting (capped, resumable) gap enumeration.
  std::uint64_t announced() const { return announced_; }

  /// Sequences in [1, max_known] not yet received.
  std::vector<std::uint64_t> missing() const;
  std::size_t missing_count() const;

  std::uint64_t received_count() const { return received_count_; }

  /// Received-but-not-contiguous sequences currently held (memory pinned by
  /// reordering/loss; the edge-case tests bound it).
  std::size_t out_of_order_count() const { return out_of_order_.size(); }

  /// Reception state for history exchange: next_expected plus a bitmap of
  /// at most `max_words`*64 sequences above it.
  proto::SourceHistory history(MemberId source, std::size_t max_words) const;

 private:
  void compact();
  /// Advance max_known_ toward announced_, appending newly exposed missing
  /// sequences to `gaps`; does at most kMaxGapsPerObservation steps.
  void enumerate_gaps(std::vector<std::uint64_t>& gaps);

  std::uint64_t next_expected_ = 1;  // all seqs < this were received
  std::uint64_t max_known_ = 0;
  std::uint64_t announced_ = 0;  // >= max_known_
  std::uint64_t received_count_ = 0;
  // Received, >= next_expected_. Entries above max_known_ can exist while
  // enumeration lags announced_ (missing_count accounts for that).
  std::set<std::uint64_t> out_of_order_;
};

}  // namespace rrmp
