#include "proto/codec.h"

#include "common/bytes.h"

namespace rrmp::proto {
namespace {

void put_message_id(ByteWriter& w, const MessageId& id) {
  w.put_u32(id.source);
  w.put_u64(id.seq);
}

MessageId get_message_id(ByteReader& r) {
  MessageId id;
  id.source = r.get_u32();
  id.seq = r.get_u64();
  return id;
}

// Piggybacked receive cursors ride as an *optional trailing* block on
// top-level Data and Session frames: nothing is written when the vector is
// empty, so the empty case is byte-identical to the pre-piggyback layout
// and old golden vectors still decode. The decoder reads the block only
// when bytes remain after the core fields. An explicit empty block (count
// 0) is never emitted and is rejected on decode.
void put_cursor_block(ByteWriter& w, const std::vector<ReceiveCursor>& cs) {
  if (cs.empty()) return;
  w.put_varint(cs.size());
  for (const ReceiveCursor& c : cs) {
    w.put_u32(c.source);
    w.put_varint(c.cursor);
  }
}

bool get_cursor_block(ByteReader& r, std::vector<ReceiveCursor>& cs) {
  if (r.done()) return r.ok();  // trailing block absent: legacy layout
  std::uint64_t n = r.get_varint();
  if (!r.ok() || n == 0 || n > kMaxRepeated) return false;
  cs.resize(n);
  for (ReceiveCursor& c : cs) {
    c.source = r.get_u32();
    c.cursor = r.get_varint();
  }
  return r.ok();
}

// Fault-injection connectivity generation, an *optional trailing* varint on
// CreditAck and BufferDigest: nothing is written when the generation is 0
// (no partition ever happened), so fault-free traffic keeps the legacy byte
// layout and old golden vectors still decode. The decoder reads it only
// when bytes remain after the core fields; an explicit 0 is never emitted
// and is rejected on decode.
void put_view_gen(ByteWriter& w, std::uint64_t gen) {
  if (gen != 0) w.put_varint(gen);
}

bool get_view_gen(ByteReader& r, std::uint64_t& gen) {
  if (r.done()) return r.ok();  // trailing field absent: legacy layout
  gen = r.get_varint();
  return r.ok() && gen != 0;
}

// Core (cursor-free) Data layout, shared with the nested encodings inside
// Handoff and Shed: nested Data has no length prefix, so the optional
// trailing cursor block exists only at the top level.
void encode_data_core(ByteWriter& w, const Data& m) {
  put_message_id(w, m.id);
  w.put_bytes(m.payload);
}
void encode_body(ByteWriter& w, const Data& m) {
  encode_data_core(w, m);
  put_cursor_block(w, m.cursors);
}
void encode_body(ByteWriter& w, const Session& m) {
  w.put_u32(m.source);
  w.put_u64(m.highest_seq);
  put_cursor_block(w, m.cursors);
}
void encode_body(ByteWriter& w, const LocalRequest& m) {
  put_message_id(w, m.id);
  w.put_u32(m.requester);
}
void encode_body(ByteWriter& w, const RemoteRequest& m) {
  put_message_id(w, m.id);
  w.put_u32(m.requester);
}
void encode_body(ByteWriter& w, const Repair& m) {
  put_message_id(w, m.id);
  w.put_bytes(m.payload);
  w.put_u8(m.remote ? 1 : 0);
}
void encode_body(ByteWriter& w, const RegionalRepair& m) {
  put_message_id(w, m.id);
  w.put_bytes(m.payload);
  w.put_u32(m.relayer);
}
void encode_body(ByteWriter& w, const SearchRequest& m) {
  put_message_id(w, m.id);
  w.put_u32(m.remote_requester);
}
void encode_body(ByteWriter& w, const SearchFound& m) {
  put_message_id(w, m.id);
  w.put_u32(m.holder);
}
void encode_body(ByteWriter& w, const Handoff& m) {
  w.put_varint(m.messages.size());
  for (const Data& d : m.messages) encode_data_core(w, d);
}
void encode_body(ByteWriter& w, const Gossip& m) {
  w.put_u32(m.from);
  w.put_varint(m.beats.size());
  for (const Heartbeat& h : m.beats) {
    w.put_u32(h.member);
    w.put_u64(h.counter);
  }
}
void encode_body(ByteWriter& w, const History& m) {
  w.put_u32(m.member);
  w.put_varint(m.sources.size());
  for (const SourceHistory& s : m.sources) {
    w.put_u32(s.source);
    w.put_u64(s.next_expected);
    w.put_varint(s.bitmap.size());
    for (std::uint64_t word : s.bitmap) w.put_u64(word);
  }
}
void encode_body(ByteWriter& w, const BufferDigest& m) {
  w.put_u32(m.member);
  w.put_u64(m.bytes_in_use);
  w.put_varint(m.window_outstanding);
  w.put_varint(m.ranges.size());
  for (const DigestRange& r : m.ranges) {
    w.put_u32(r.source);
    w.put_u64(r.first_seq);
    w.put_varint(r.count);
  }
  put_view_gen(w, m.view_gen);
}
void encode_body(ByteWriter& w, const Shed& m) {
  w.put_u32(m.from);
  encode_data_core(w, m.message);
}
void encode_body(ByteWriter& w, const Escalate& m) {
  put_message_id(w, m.id);
  w.put_u32(m.requester);
  w.put_varint(m.hop);
}
void encode_body(ByteWriter& w, const CreditAck& m) {
  w.put_u32(m.member);
  w.put_u64(m.bytes_in_use);
  w.put_u64(m.budget_bytes);
  w.put_varint(m.cursors.size());
  for (const ReceiveCursor& c : m.cursors) {
    w.put_u32(c.source);
    w.put_varint(c.cursor);
  }
  put_view_gen(w, m.view_gen);
}

bool decode_data_core(ByteReader& r, Data& m) {
  m.id = get_message_id(r);
  m.payload = r.get_shared_bytes();
  return r.ok();
}
bool decode_body(ByteReader& r, Data& m) {
  if (!decode_data_core(r, m)) return false;
  return get_cursor_block(r, m.cursors);
}
bool decode_body(ByteReader& r, Session& m) {
  m.source = r.get_u32();
  m.highest_seq = r.get_u64();
  if (!r.ok()) return false;
  return get_cursor_block(r, m.cursors);
}
bool decode_body(ByteReader& r, LocalRequest& m) {
  m.id = get_message_id(r);
  m.requester = r.get_u32();
  return r.ok();
}
bool decode_body(ByteReader& r, RemoteRequest& m) {
  m.id = get_message_id(r);
  m.requester = r.get_u32();
  return r.ok();
}
bool decode_body(ByteReader& r, Repair& m) {
  m.id = get_message_id(r);
  m.payload = r.get_shared_bytes();
  m.remote = r.get_u8() != 0;
  return r.ok();
}
bool decode_body(ByteReader& r, RegionalRepair& m) {
  m.id = get_message_id(r);
  m.payload = r.get_shared_bytes();
  m.relayer = r.get_u32();
  return r.ok();
}
bool decode_body(ByteReader& r, SearchRequest& m) {
  m.id = get_message_id(r);
  m.remote_requester = r.get_u32();
  return r.ok();
}
bool decode_body(ByteReader& r, SearchFound& m) {
  m.id = get_message_id(r);
  m.holder = r.get_u32();
  return r.ok();
}
bool decode_body(ByteReader& r, Handoff& m) {
  std::uint64_t n = r.get_varint();
  if (!r.ok() || n > kMaxRepeated) return false;
  m.messages.resize(n);
  for (Data& d : m.messages) {
    if (!decode_data_core(r, d)) return false;
  }
  return r.ok();
}
bool decode_body(ByteReader& r, Gossip& m) {
  m.from = r.get_u32();
  std::uint64_t n = r.get_varint();
  if (!r.ok() || n > kMaxRepeated) return false;
  m.beats.resize(n);
  for (Heartbeat& h : m.beats) {
    h.member = r.get_u32();
    h.counter = r.get_u64();
  }
  return r.ok();
}
bool decode_body(ByteReader& r, History& m) {
  m.member = r.get_u32();
  std::uint64_t n = r.get_varint();
  if (!r.ok() || n > kMaxRepeated) return false;
  m.sources.resize(n);
  for (SourceHistory& s : m.sources) {
    s.source = r.get_u32();
    s.next_expected = r.get_u64();
    std::uint64_t words = r.get_varint();
    if (!r.ok() || words > kMaxRepeated) return false;
    s.bitmap.resize(words);
    for (std::uint64_t& word : s.bitmap) word = r.get_u64();
  }
  return r.ok();
}
bool decode_body(ByteReader& r, BufferDigest& m) {
  m.member = r.get_u32();
  m.bytes_in_use = r.get_u64();
  m.window_outstanding = r.get_varint();
  std::uint64_t n = r.get_varint();
  if (!r.ok() || n > kMaxRepeated) return false;
  m.ranges.resize(n);
  for (DigestRange& dr : m.ranges) {
    dr.source = r.get_u32();
    dr.first_seq = r.get_u64();
    dr.count = r.get_varint();
    // An empty run advertises nothing; a well-formed digest never emits one.
    if (!r.ok() || dr.count == 0) return false;
  }
  return get_view_gen(r, m.view_gen);
}
bool decode_body(ByteReader& r, Shed& m) {
  m.from = r.get_u32();
  return decode_data_core(r, m.message);
}
bool decode_body(ByteReader& r, Escalate& m) {
  m.id = get_message_id(r);
  m.requester = r.get_u32();
  m.hop = static_cast<std::uint32_t>(r.get_varint());
  return r.ok();
}
bool decode_body(ByteReader& r, CreditAck& m) {
  m.member = r.get_u32();
  m.bytes_in_use = r.get_u64();
  m.budget_bytes = r.get_u64();
  std::uint64_t n = r.get_varint();
  if (!r.ok() || n > kMaxRepeated) return false;
  m.cursors.resize(n);
  for (ReceiveCursor& c : m.cursors) {
    c.source = r.get_u32();
    c.cursor = r.get_varint();
  }
  return get_view_gen(r, m.view_gen);
}

template <typename T>
std::optional<Message> decode_as(ByteReader& r) {
  T m;
  if (!decode_body(r, m) || !r.done()) return std::nullopt;
  return Message{std::move(m)};
}

std::optional<Message> decode_from(ByteReader& r) {
  auto tag = static_cast<MessageType>(r.get_u8());
  if (!r.ok()) return std::nullopt;
  switch (tag) {
    case MessageType::kData: return decode_as<Data>(r);
    case MessageType::kSession: return decode_as<Session>(r);
    case MessageType::kLocalRequest: return decode_as<LocalRequest>(r);
    case MessageType::kRemoteRequest: return decode_as<RemoteRequest>(r);
    case MessageType::kRepair: return decode_as<Repair>(r);
    case MessageType::kRegionalRepair: return decode_as<RegionalRepair>(r);
    case MessageType::kSearchRequest: return decode_as<SearchRequest>(r);
    case MessageType::kSearchFound: return decode_as<SearchFound>(r);
    case MessageType::kHandoff: return decode_as<Handoff>(r);
    case MessageType::kGossip: return decode_as<Gossip>(r);
    case MessageType::kHistory: return decode_as<History>(r);
    case MessageType::kBufferDigest: return decode_as<BufferDigest>(r);
    case MessageType::kShed: return decode_as<Shed>(r);
    case MessageType::kCreditAck: return decode_as<CreditAck>(r);
    case MessageType::kEscalate: return decode_as<Escalate>(r);
  }
  return std::nullopt;
}

// ------------------------------------------------------------ sizes ----
//
// Mirrors encode_body exactly; proto_test pins encoded_size == encode().size()
// for every message type.

constexpr std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

constexpr std::size_t kMessageIdSize = 4 + 8;

std::size_t blob_size(const SharedBytes& b) {
  return varint_size(b.size()) + b.size();
}

std::size_t cursor_block_size(const std::vector<ReceiveCursor>& cs) {
  if (cs.empty()) return 0;
  std::size_t n = varint_size(cs.size());
  for (const ReceiveCursor& c : cs) n += 4 + varint_size(c.cursor);
  return n;
}

std::size_t size_data_core(const Data& m) {
  return kMessageIdSize + blob_size(m.payload);
}
std::size_t size_body(const Data& m) {
  return size_data_core(m) + cursor_block_size(m.cursors);
}
std::size_t size_body(const Session& m) {
  return 4 + 8 + cursor_block_size(m.cursors);
}
std::size_t size_body(const LocalRequest&) { return kMessageIdSize + 4; }
std::size_t size_body(const RemoteRequest&) { return kMessageIdSize + 4; }
std::size_t size_body(const Repair& m) {
  return kMessageIdSize + blob_size(m.payload) + 1;
}
std::size_t size_body(const RegionalRepair& m) {
  return kMessageIdSize + blob_size(m.payload) + 4;
}
std::size_t size_body(const SearchRequest&) { return kMessageIdSize + 4; }
std::size_t size_body(const SearchFound&) { return kMessageIdSize + 4; }
std::size_t size_body(const Handoff& m) {
  std::size_t n = varint_size(m.messages.size());
  for (const Data& d : m.messages) n += size_data_core(d);
  return n;
}
std::size_t size_body(const Gossip& m) {
  return 4 + varint_size(m.beats.size()) + m.beats.size() * (4 + 8);
}
std::size_t size_body(const History& m) {
  std::size_t n = 4 + varint_size(m.sources.size());
  for (const SourceHistory& s : m.sources) {
    n += 4 + 8 + varint_size(s.bitmap.size()) + s.bitmap.size() * 8;
  }
  return n;
}
std::size_t size_body(const BufferDigest& m) {
  std::size_t n = 4 + 8 + varint_size(m.window_outstanding) +
                  varint_size(m.ranges.size());
  for (const DigestRange& r : m.ranges) n += 4 + 8 + varint_size(r.count);
  if (m.view_gen != 0) n += varint_size(m.view_gen);
  return n;
}
std::size_t size_body(const Shed& m) { return 4 + size_data_core(m.message); }
std::size_t size_body(const Escalate& m) {
  return kMessageIdSize + 4 + varint_size(m.hop);
}
std::size_t size_body(const CreditAck& m) {
  std::size_t n = 4 + 8 + 8 + varint_size(m.cursors.size());
  for (const ReceiveCursor& c : m.cursors) n += 4 + varint_size(c.cursor);
  if (m.view_gen != 0) n += varint_size(m.view_gen);
  return n;
}

}  // namespace

MessageType type_of(const Message& m) {
  return std::visit(
      [](const auto& v) -> MessageType {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, Data>) return MessageType::kData;
        if constexpr (std::is_same_v<T, Session>) return MessageType::kSession;
        if constexpr (std::is_same_v<T, LocalRequest>)
          return MessageType::kLocalRequest;
        if constexpr (std::is_same_v<T, RemoteRequest>)
          return MessageType::kRemoteRequest;
        if constexpr (std::is_same_v<T, Repair>) return MessageType::kRepair;
        if constexpr (std::is_same_v<T, RegionalRepair>)
          return MessageType::kRegionalRepair;
        if constexpr (std::is_same_v<T, SearchRequest>)
          return MessageType::kSearchRequest;
        if constexpr (std::is_same_v<T, SearchFound>)
          return MessageType::kSearchFound;
        if constexpr (std::is_same_v<T, Handoff>) return MessageType::kHandoff;
        if constexpr (std::is_same_v<T, Gossip>) return MessageType::kGossip;
        if constexpr (std::is_same_v<T, History>) return MessageType::kHistory;
        if constexpr (std::is_same_v<T, BufferDigest>)
          return MessageType::kBufferDigest;
        if constexpr (std::is_same_v<T, Shed>) return MessageType::kShed;
        if constexpr (std::is_same_v<T, CreditAck>)
          return MessageType::kCreditAck;
        if constexpr (std::is_same_v<T, Escalate>)
          return MessageType::kEscalate;
      },
      m);
}

const char* type_name(MessageType t) {
  switch (t) {
    case MessageType::kData: return "DATA";
    case MessageType::kSession: return "SESSION";
    case MessageType::kLocalRequest: return "LOCAL_REQ";
    case MessageType::kRemoteRequest: return "REMOTE_REQ";
    case MessageType::kRepair: return "REPAIR";
    case MessageType::kRegionalRepair: return "REGIONAL_REPAIR";
    case MessageType::kSearchRequest: return "SEARCH_REQ";
    case MessageType::kSearchFound: return "SEARCH_FOUND";
    case MessageType::kHandoff: return "HANDOFF";
    case MessageType::kGossip: return "GOSSIP";
    case MessageType::kHistory: return "HISTORY";
    case MessageType::kBufferDigest: return "BUFFER_DIGEST";
    case MessageType::kShed: return "SHED";
    case MessageType::kCreditAck: return "CREDIT_ACK";
    case MessageType::kEscalate: return "ESCALATE";
  }
  return "UNKNOWN";
}

std::vector<std::uint8_t> encode(const Message& m) {
  ByteWriter w;
  w.put_u8(static_cast<std::uint8_t>(type_of(m)));
  std::visit([&w](const auto& v) { encode_body(w, v); }, m);
  return w.take();
}

std::optional<Message> decode(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  return decode_from(r);
}

SharedBytes encode_shared(const Message& m) { return SharedBytes(encode(m)); }

std::optional<Message> decode_shared(const SharedBytes& wire) {
  ByteReader r(wire);
  return decode_from(r);
}

std::size_t encoded_size(const Message& m) {
  return 1 + std::visit([](const auto& v) { return size_body(v); }, m);
}

std::size_t encoded_size(const Data& d) { return 1 + size_body(d); }

}  // namespace rrmp::proto
