// Binary codec for proto::Message.
//
// Layout: 1-byte MessageType tag followed by the type-specific body.
// Integers are little-endian fixed width; blobs and repeated fields are
// varint-length-prefixed. decode() returns nullopt on any malformed input
// (unknown tag, truncation, trailing garbage, oversized repeated field) —
// it never throws and never reads out of bounds.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "proto/messages.h"

namespace rrmp::proto {

/// Hard cap on elements in any repeated field, so a hostile length prefix
/// cannot force a huge allocation before the bounds check trips.
inline constexpr std::uint64_t kMaxRepeated = 1u << 20;

std::vector<std::uint8_t> encode(const Message& m);
std::optional<Message> decode(std::span<const std::uint8_t> bytes);

/// Encode into a refcounted immutable buffer (one allocation, shareable
/// across fan-out recipients and lanes).
SharedBytes encode_shared(const Message& m);

/// Zero-copy decode: blob fields (Data/Repair/RegionalRepair payloads) alias
/// `wire`'s refcounted owner instead of copying. Identical accept/reject
/// behaviour to decode(span).
std::optional<Message> decode_shared(const SharedBytes& wire);

/// Encoded size without materializing the buffer (used by traffic metrics).
/// Exactly encode(m).size(), computed arithmetically.
std::size_t encoded_size(const Message& m);

/// Encoded size of a Data frame without constructing a Message variant —
/// the one definition of "how many bytes does this message cost" shared by
/// traffic accounting and buffer-occupancy accounting (buffer::BufferStore).
std::size_t encoded_size(const Data& d);

}  // namespace rrmp::proto
