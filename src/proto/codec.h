// Binary codec for proto::Message.
//
// Layout: 1-byte MessageType tag followed by the type-specific body.
// Integers are little-endian fixed width; blobs and repeated fields are
// varint-length-prefixed. decode() returns nullopt on any malformed input
// (unknown tag, truncation, trailing garbage, oversized repeated field) —
// it never throws and never reads out of bounds.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "proto/messages.h"

namespace rrmp::proto {

/// Hard cap on elements in any repeated field, so a hostile length prefix
/// cannot force a huge allocation before the bounds check trips.
inline constexpr std::uint64_t kMaxRepeated = 1u << 20;

std::vector<std::uint8_t> encode(const Message& m);
std::optional<Message> decode(std::span<const std::uint8_t> bytes);

/// Encoded size without materializing the buffer (used by traffic metrics).
std::size_t encoded_size(const Message& m);

}  // namespace rrmp::proto
