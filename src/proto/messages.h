// Wire messages of the RRMP protocol suite (paper §2–§3) plus the two
// substrate protocols it builds on: gossip failure detection [13] and the
// stability-detection baseline's history exchange [8].
//
// A Message is a closed variant; the codec (codec.h) maps it to/from bytes.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "common/bytes.h"
#include "common/types.h"

namespace rrmp::proto {

/// One per-source receive cursor: the highest sequence of `source`'s stream
/// a member has received *contiguously* (0 = none). Cursor advances release
/// send credits at the source (flow control). Carried in CreditAck frames
/// and, when cursor piggybacking is on, as an optional trailing block on
/// Data and Session frames.
struct ReceiveCursor {
  MemberId source = kInvalidMember;
  std::uint64_t cursor = 0;

  friend bool operator==(const ReceiveCursor&, const ReceiveCursor&) = default;
};

/// Application data, disseminated by the sender's initial IP multicast and
/// retransmitted during recovery. The payload is a refcounted immutable
/// buffer: storing, relaying, and repairing a message share one allocation.
///
/// `cursors` is the piggybacked flow-control block (the sender's own
/// per-source receive cursors, riding along so receivers need fewer
/// standalone CreditAck multicasts). It is an *optional trailing* wire
/// field: an empty vector encodes to exactly the pre-piggyback byte layout,
/// and Data nested inside Handoff/Shed is always encoded cursor-free (the
/// nested form has no length prefix, so the trailing block is top-level
/// only). Stored/buffered copies always carry an empty vector.
struct Data {
  MessageId id;
  SharedBytes payload;
  std::vector<ReceiveCursor> cursors{};

  friend bool operator==(const Data&, const Data&) = default;
};

/// Periodic session message from the sender announcing the highest sequence
/// number sent; lets receivers detect loss of the last message in a burst
/// (paper §2.1). `cursors` is the same optional trailing piggyback block as
/// on Data: empty encodes byte-identically to the pre-piggyback layout.
struct Session {
  MemberId source = kInvalidMember;
  std::uint64_t highest_seq = 0;
  std::vector<ReceiveCursor> cursors{};

  friend bool operator==(const Session&, const Session&) = default;
};

/// Local-recovery retransmission request to a randomly selected neighbor in
/// the requester's own region (paper §2.2). Also the feedback signal for
/// short-term buffering (paper §3.1).
struct LocalRequest {
  MessageId id;
  MemberId requester = kInvalidMember;

  friend bool operator==(const LocalRequest&, const LocalRequest&) = default;
};

/// Remote-recovery request to a randomly selected member of the parent
/// region, sent with probability lambda/|region| per attempt (paper §2.2).
struct RemoteRequest {
  MessageId id;
  MemberId requester = kInvalidMember;

  friend bool operator==(const RemoteRequest&, const RemoteRequest&) = default;
};

/// Unicast retransmission of a message to a requester. `remote` is true when
/// the repair crosses regions (parent -> child); the receiver of a remote
/// repair multicasts it in its own region (paper §2.2).
struct Repair {
  MessageId id;
  SharedBytes payload;
  bool remote = false;

  friend bool operator==(const Repair&, const Repair&) = default;
};

/// Intra-region multicast of a repair, sent by the member that obtained the
/// message from the parent region (paper §2.2).
struct RegionalRepair {
  MessageId id;
  SharedBytes payload;
  MemberId relayer = kInvalidMember;

  friend bool operator==(const RegionalRepair&, const RegionalRepair&) = default;
};

/// Random-search probe for a bufferer of a discarded message (paper §3.3):
/// forwarded from member to member until it reaches someone who still
/// buffers `id`, who then repairs `remote_requester` directly.
struct SearchRequest {
  MessageId id;
  MemberId remote_requester = kInvalidMember;

  friend bool operator==(const SearchRequest&, const SearchRequest&) = default;
};

/// Intra-region multicast "I have the message" that terminates a search
/// (paper §3.3).
struct SearchFound {
  MessageId id;
  MemberId holder = kInvalidMember;

  friend bool operator==(const SearchFound&, const SearchFound&) = default;
};

/// Long-term buffer transfer from a member leaving the group to a randomly
/// selected member of its region (paper §3.2).
struct Handoff {
  std::vector<Data> messages;

  friend bool operator==(const Handoff&, const Handoff&) = default;
};

/// One member's heartbeat counter, as disseminated by the gossip failure
/// detector (van Renesse et al. [13]).
struct Heartbeat {
  MemberId member = kInvalidMember;
  std::uint64_t counter = 0;

  friend bool operator==(const Heartbeat&, const Heartbeat&) = default;
};

/// Gossip round payload: the sender's current view of heartbeat counters.
struct Gossip {
  MemberId from = kInvalidMember;
  std::vector<Heartbeat> beats;

  friend bool operator==(const Gossip&, const Gossip&) = default;
};

/// Per-source reception state: everything below `next_expected` was
/// received; `bitmap` covers [next_expected, next_expected + 64*len).
struct SourceHistory {
  MemberId source = kInvalidMember;
  std::uint64_t next_expected = 0;
  std::vector<std::uint64_t> bitmap;

  friend bool operator==(const SourceHistory&, const SourceHistory&) = default;
};

/// Periodic message-history exchange used by the stability-detection
/// baseline (Guo & Rhee [8]); RRMP itself never sends these.
struct History {
  MemberId member = kInvalidMember;
  std::vector<SourceHistory> sources;

  friend bool operator==(const History&, const History&) = default;
};

/// One contiguous run of buffered message ids from a single source:
/// [first_seq, first_seq + count). Buffered sets are dense in practice
/// (streams are sequential), so a handful of ranges covers a whole store.
struct DigestRange {
  MemberId source = kInvalidMember;
  std::uint64_t first_seq = 0;
  std::uint64_t count = 0;

  friend bool operator==(const DigestRange&, const DigestRange&) = default;
};

/// Compact per-member buffer digest — the gossip/heartbeat extension behind
/// cooperative region-wide budgets: held MessageId ranges plus bytes in
/// use, multicast within the region every digest period so each member
/// learns an approximate replica count per buffered entry and where free
/// buffer capacity lives. `window_outstanding` additionally advertises the
/// member's own flow-control window occupancy (outstanding unacknowledged
/// Data frames; 0 when flow control is off), making send pressure visible
/// region-wide alongside buffer pressure.
struct BufferDigest {
  MemberId member = kInvalidMember;
  std::uint64_t bytes_in_use = 0;
  std::uint64_t window_outstanding = 0;
  std::vector<DigestRange> ranges;
  /// Connectivity generation (fault injection: bumped at every partition
  /// and heal). A digest that crossed a partition boundary carries a stale
  /// generation and is dropped by the receiver. Rides as an optional
  /// trailing varint: 0 (no partition ever) encodes to zero bytes, so the
  /// layout is byte-identical to the pre-fault wire format.
  std::uint64_t view_gen = 0;

  friend bool operator==(const BufferDigest&, const BufferDigest&) = default;
};

/// Shed/handoff: a member over budget pushes a sole-copy entry (no other
/// region member advertises it) to the least-loaded digest-advertised
/// neighbor instead of silently discarding the region's last copy.
struct Shed {
  MemberId from = kInvalidMember;
  Data message;

  friend bool operator==(const Shed&, const Shed&) = default;
};

/// Periodic receiver-side flow-control feedback, multicast within the
/// region every ack_interval: per-source receive cursors (the credit
/// release signal, Derecho-style num_received counters) plus the member's
/// buffer occupancy and budget so senders can judge back-pressure
/// (DFI-style target accounting). Only sent when flow control is enabled.
/// With cursor piggybacking on, CreditAck is demoted to a fallback for
/// quiet receivers: it is suppressed while the member's cursors are already
/// fresh on its own recent Data/Session traffic, with a periodic refresh.
struct CreditAck {
  MemberId member = kInvalidMember;
  std::uint64_t bytes_in_use = 0;
  std::uint64_t budget_bytes = 0;  // 0 = unlimited
  std::vector<ReceiveCursor> cursors;
  /// Connectivity generation (see BufferDigest::view_gen): an ack sent
  /// pre-partition and delivered post-heal must not regress the sender's
  /// view of reported cursors. Optional trailing varint; 0 = zero bytes.
  std::uint64_t view_gen = 0;

  friend bool operator==(const CreditAck&, const CreditAck&) = default;
};

/// Hierarchical-repair escalation (repair trees): a sub-region
/// representative that cannot answer a NAK locally forwards it to its
/// parent region's representative instead of the paper's random
/// parent-region member. `requester` is the representative to repair
/// (its regional relay then covers its whole sub-region); `hop` counts
/// escalation levels climbed so far and bounds runaway forwarding.
struct Escalate {
  MessageId id;
  MemberId requester = kInvalidMember;
  std::uint32_t hop = 0;

  friend bool operator==(const Escalate&, const Escalate&) = default;
};

using Message =
    std::variant<Data, Session, LocalRequest, RemoteRequest, Repair,
                 RegionalRepair, SearchRequest, SearchFound, Handoff, Gossip,
                 History, BufferDigest, Shed, CreditAck, Escalate>;

/// Stable wire tags; never renumber.
enum class MessageType : std::uint8_t {
  kData = 1,
  kSession = 2,
  kLocalRequest = 3,
  kRemoteRequest = 4,
  kRepair = 5,
  kRegionalRepair = 6,
  kSearchRequest = 7,
  kSearchFound = 8,
  kHandoff = 9,
  kGossip = 10,
  kHistory = 11,
  kBufferDigest = 12,
  kShed = 13,
  kCreditAck = 14,
  kEscalate = 15,
};

MessageType type_of(const Message& m);
const char* type_name(MessageType t);
inline const char* type_name(const Message& m) { return type_name(type_of(m)); }

}  // namespace rrmp::proto
