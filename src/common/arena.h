// Chunked monotonic arena for bulk object allocation.
//
// The scale harness builds one SimHost + Endpoint per simulated member; at a
// million members that is two million individually heap-allocated objects
// whose construction, pointer spread, and teardown dominate cluster setup.
// The arena carves objects out of large contiguous chunks instead: one
// malloc per chunk, allocation is a bump, and locality follows construction
// order (members of a region are spawned consecutively, so their endpoint
// state lands on neighbouring pages).
//
// destroy() runs the destructor but never returns memory — chunks are only
// released when the arena itself dies. Rejoin churn therefore leaks the dead
// object's slot for the arena's lifetime, which is bounded by churn volume,
// not member count, and is the explicit trade for O(1) teardown of the other
// 99.99% of objects.
#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace rrmp::common {

class Arena {
 public:
  explicit Arena(std::size_t chunk_bytes = std::size_t{1} << 20)
      : chunk_bytes_(chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Construct a T in arena storage. The caller owns the object's lifetime
  /// (pair with destroy()); the arena owns the memory.
  template <typename T, typename... Args>
  T* create(Args&&... args) {
    void* p = allocate(sizeof(T), alignof(T));
    return ::new (p) T(std::forward<Args>(args)...);
  }

  /// Run the destructor; the slot is not reused.
  template <typename T>
  void destroy(T* p) {
    if (p != nullptr) p->~T();
  }

  std::size_t bytes_allocated() const { return bytes_allocated_; }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  void* allocate(std::size_t size, std::size_t align) {
    // Chunk bases come from new[], aligned for std::max_align_t; aligning
    // the bump offset therefore aligns the returned pointer. Over-aligned
    // types would need aligned chunk storage — none exist in this codebase.
    if (!chunks_.empty()) {
      Chunk& c = chunks_.back();
      std::size_t offset = (c.used + align - 1) & ~(align - 1);
      if (offset + size <= c.size) {
        c.used = offset + size;
        bytes_allocated_ += size;
        return c.data.get() + offset;
      }
    }
    std::size_t chunk_size = std::max(chunk_bytes_, size);
    Chunk c;
    c.data = std::make_unique<std::byte[]>(chunk_size);
    c.size = chunk_size;
    c.used = size;
    bytes_allocated_ += size;
    chunks_.push_back(std::move(c));
    return chunks_.back().data.get();
  }

  std::size_t chunk_bytes_;
  std::size_t bytes_allocated_ = 0;
  std::vector<Chunk> chunks_;
};

}  // namespace rrmp::common
