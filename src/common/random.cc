#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace rrmp {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

RandomEngine::RandomEngine(std::uint64_t seed) : seed_(seed) {
  // Expand the seed through splitmix64 before feeding mt19937_64; raw small
  // seeds (0, 1, 2, ...) otherwise produce correlated early output.
  std::uint64_t s = seed;
  rng_.seed(splitmix64(s));
}

RandomEngine RandomEngine::fork(std::uint64_t stream) const {
  std::uint64_t s = seed_ ^ (0xa0761d6478bd642fULL * (stream + 1));
  return RandomEngine(splitmix64(s));
}

std::vector<RandomEngine> RandomEngine::split(std::size_t n,
                                              std::uint64_t domain) const {
  std::vector<RandomEngine> children;
  children.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    children.push_back(fork(domain + i));
  }
  return children;
}

std::uint32_t RandomEngine::next_u32() {
  return static_cast<std::uint32_t>(rng_() >> 32);
}

std::uint64_t RandomEngine::next_u64() { return rng_(); }

std::int64_t RandomEngine::uniform_int(std::int64_t lo, std::int64_t hi) {
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(rng_);
}

double RandomEngine::uniform_real(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(rng_);
}

bool RandomEngine::bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return std::bernoulli_distribution(p)(rng_);
}

double RandomEngine::exponential(double mean) {
  return std::exponential_distribution<double>(1.0 / mean)(rng_);
}

std::vector<std::size_t> RandomEngine::sample_indices(std::size_t n,
                                                      std::size_t k) {
  std::vector<std::size_t> out;
  out.reserve(k);
  if (k == 0 || n == 0) return out;
  if (k >= n) {
    out.resize(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = i;
    shuffle(out);
    return out;
  }
  if (k * 3 >= n) {
    // Dense case: partial Fisher–Yates over the full index range.
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
      std::size_t j = static_cast<std::size_t>(
          uniform_int(static_cast<std::int64_t>(i),
                      static_cast<std::int64_t>(n) - 1));
      std::swap(all[i], all[j]);
    }
    all.resize(k);
    return all;
  }
  // Sparse case: rejection sampling.
  std::unordered_set<std::size_t> seen;
  seen.reserve(k * 2);
  while (out.size() < k) {
    auto v = static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(n) - 1));
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

}  // namespace rrmp
