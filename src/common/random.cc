#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace rrmp {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// The seed is expanded through splitmix64 before feeding mt19937_64 (raw
// small seeds 0, 1, 2, ... otherwise produce correlated early output); the
// expansion and the engine's seeding pass both happen lazily in engine().
RandomEngine::RandomEngine(std::uint64_t seed) : seed_(seed) {}

RandomEngine RandomEngine::fork(std::uint64_t stream) const {
  std::uint64_t s = seed_ ^ (0xa0761d6478bd642fULL * (stream + 1));
  return RandomEngine(splitmix64(s));
}

std::vector<RandomEngine> RandomEngine::split(std::size_t n,
                                              std::uint64_t domain) const {
  std::vector<RandomEngine> children;
  children.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    children.push_back(fork(domain + i));
  }
  return children;
}

std::uint32_t RandomEngine::next_u32() {
  return static_cast<std::uint32_t>(engine()() >> 32);
}

std::uint64_t RandomEngine::next_u64() { return engine()(); }

std::int64_t RandomEngine::uniform_int(std::int64_t lo, std::int64_t hi) {
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine());
}

double RandomEngine::uniform_real(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine());
}

bool RandomEngine::bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return std::bernoulli_distribution(p)(engine());
}

double RandomEngine::exponential(double mean) {
  return std::exponential_distribution<double>(1.0 / mean)(engine());
}

namespace {

// BINV: sequential search of the CDF starting at 0. Expected iterations are
// ~n·r + 1, so it is used only when n·r is small. Requires 0 < r <= 0.5.
std::uint64_t binomial_inversion(std::mt19937_64& rng, std::uint64_t n,
                                 double r) {
  const double dn = static_cast<double>(n);
  const double q = 1.0 - r;
  const double s = r / q;
  const double a = (dn + 1.0) * s;
  // q^n; with n·r < 30 and r <= 0.5 this is >= e^-30, comfortably normal.
  const double f0 = std::pow(q, dn);
  for (;;) {
    double u = std::uniform_real_distribution<double>(0.0, 1.0)(rng);
    double f = f0;
    std::uint64_t x = 0;
    while (u > f) {
      u -= f;
      ++x;
      if (x > n) break;  // numerical tail guard: retry with a fresh u
      f *= a / static_cast<double>(x) - s;
    }
    if (x <= n) return x;
  }
}

// BTPE (Binomial, Triangle/Parallelogram/Exponential): rejection from a
// piecewise dominating envelope around the mode, with squeeze and Stirling
// acceptance tests. Requires n·r >= 30 and 0 < r <= 0.5.
std::uint64_t binomial_btpe(std::mt19937_64& rng, std::uint64_t n, double r) {
  const double dn = static_cast<double>(n);
  const double q = 1.0 - r;
  const double fm = dn * r + r;
  const auto m = static_cast<std::int64_t>(fm);  // mode
  const double dm = static_cast<double>(m);
  const double nrq = dn * r * q;
  const double p1 = std::floor(2.195 * std::sqrt(nrq) - 4.6 * q) + 0.5;
  const double xm = dm + 0.5;
  const double xl = xm - p1;
  const double xr = xm + p1;
  const double c = 0.134 + 20.5 / (15.3 + dm);
  double al = (fm - xl) / (fm - xl * r);
  const double lambda_l = al * (1.0 + 0.5 * al);
  double ar = (xr - fm) / (xr * q);
  const double lambda_r = ar * (1.0 + 0.5 * ar);
  const double p2 = p1 * (1.0 + 2.0 * c);
  const double p3 = p2 + c / lambda_l;
  const double p4 = p3 + c / lambda_r;

  auto uniform = [&rng](double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(rng);
  };

  for (;;) {
    const double u = uniform(0.0, p4);
    double v = uniform(0.0, 1.0);
    std::int64_t y;
    if (u <= p1) {
      // Triangular central region: accept immediately.
      return static_cast<std::uint64_t>(std::floor(xm - p1 * v + u));
    }
    if (u <= p2) {
      // Parallelogram: squeeze v against the triangle before testing.
      const double x = xl + (u - p1) / c;
      v = v * c + 1.0 - std::fabs(dm - x + 0.5) / p1;
      if (v > 1.0 || v <= 0.0) continue;
      y = static_cast<std::int64_t>(std::floor(x));
    } else if (u <= p3) {
      // Left exponential tail.
      y = static_cast<std::int64_t>(std::floor(xl + std::log(v) / lambda_l));
      if (y < 0) continue;
      v = v * (u - p2) * lambda_l;
    } else {
      // Right exponential tail.
      y = static_cast<std::int64_t>(std::floor(xr - std::log(v) / lambda_r));
      if (y > static_cast<std::int64_t>(n)) continue;
      v = v * (u - p3) * lambda_r;
    }
    // Acceptance: compare v against f(y)/f(m).
    const auto k = static_cast<std::int64_t>(
        y > m ? y - m : m - y);
    if (k <= 20 || static_cast<double>(k) >= nrq / 2.0 - 1.0) {
      // Explicit ratio product (cheap for k near the mode or in the far
      // tail, where the recursion is short or rejection is near-certain).
      const double s = r / q;
      const double a = s * (dn + 1.0);
      double f = 1.0;
      if (m < y) {
        for (std::int64_t i = m + 1; i <= y; ++i) {
          f *= a / static_cast<double>(i) - s;
        }
      } else if (m > y) {
        for (std::int64_t i = y + 1; i <= m; ++i) {
          f /= a / static_cast<double>(i) - s;
        }
      }
      if (v <= f) return static_cast<std::uint64_t>(y);
      continue;
    }
    // Squeeze on log f(y)/f(m) before the full Stirling evaluation.
    const double dk = static_cast<double>(k);
    const double rho =
        (dk / nrq) * ((dk * (dk / 3.0 + 0.625) + 1.0 / 6.0) / nrq + 0.5);
    const double t = -dk * dk / (2.0 * nrq);
    const double log_v = std::log(v);
    if (log_v < t - rho) return static_cast<std::uint64_t>(y);
    if (log_v > t + rho) continue;
    // Full acceptance test with Stirling-series correction terms.
    const double dy = static_cast<double>(y);
    const double x1 = dy + 1.0;
    const double f1 = dm + 1.0;
    const double z = dn + 1.0 - dm;
    const double w = dn - dy + 1.0;
    const double z2 = z * z;
    const double x2 = x1 * x1;
    const double f2 = f1 * f1;
    const double w2 = w * w;
    auto stirling = [](double xx, double xx2) {
      return (13860.0 -
              (462.0 - (132.0 - (99.0 - 140.0 / xx2) / xx2) / xx2) / xx2) /
             xx / 166320.0;
    };
    // log f(y)/f(m) via log-Gamma Stirling series: the phi corrections for
    // the numerator factorials (f1 = m+1, z = n-m+1) add, those for the
    // denominator (x1 = y+1, w = n-y+1) subtract. (At y == m the main terms
    // vanish and the phis cancel exactly, as they must.)
    const double accept =
        xm * std::log(f1 / x1) + (dn - dm + 0.5) * std::log(z / w) +
        (dy - dm) * std::log(w * r / (x1 * q)) + stirling(f1, f2) +
        stirling(z, z2) - stirling(x1, x2) - stirling(w, w2);
    if (log_v <= accept) return static_cast<std::uint64_t>(y);
  }
}

}  // namespace

std::uint64_t RandomEngine::binomial(std::uint64_t n, double p) {
  p = std::clamp(p, 0.0, 1.0);
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  const bool flipped = p > 0.5;
  const double r = flipped ? 1.0 - p : p;
  const std::uint64_t k = static_cast<double>(n) * r < 30.0
                              ? binomial_inversion(engine(), n, r)
                              : binomial_btpe(engine(), n, r);
  return flipped ? n - k : k;
}

std::vector<std::size_t> RandomEngine::sample_indices(std::size_t n,
                                                      std::size_t k) {
  std::vector<std::size_t> out;
  out.reserve(k);
  if (k == 0 || n == 0) return out;
  if (k >= n) {
    out.resize(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = i;
    shuffle(out);
    return out;
  }
  if (k * 3 >= n) {
    // Dense case: partial Fisher–Yates over the full index range.
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
      std::size_t j = static_cast<std::size_t>(
          uniform_int(static_cast<std::int64_t>(i),
                      static_cast<std::int64_t>(n) - 1));
      std::swap(all[i], all[j]);
    }
    all.resize(k);
    return all;
  }
  // Sparse case: rejection sampling.
  std::unordered_set<std::size_t> seen;
  seen.reserve(k * 2);
  while (out.size() < k) {
    auto v = static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(n) - 1));
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

}  // namespace rrmp
