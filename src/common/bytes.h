// Bounds-checked binary serialization primitives and shared byte buffers.
//
// ByteWriter appends little-endian fixed-width integers, length-prefixed
// blobs, and varints to a growable buffer. ByteReader consumes the same
// formats and *never* reads out of bounds: any overrun marks the reader
// failed and all subsequent reads return zero values. Callers check ok()
// once at the end of decoding instead of after every field.
//
// SharedBytes is a refcounted *immutable* byte buffer: copies share the
// underlying storage, and a slice() aliases a sub-range of the same owner
// without copying. It is the payload type of the wire messages, so a
// multicast fan-out, a buffered copy, and every repair retransmission of
// the same message all reference one allocation. Immutability is by
// construction — the owner is const and SharedBytes exposes no mutator —
// so sharing can never observe a mutation.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rrmp {

class SharedBytes {
 public:
  SharedBytes() = default;

  /// Take ownership of `bytes` (no copy). Implicit so aggregate message
  /// literals like `Data{id, std::vector<uint8_t>(...)}` keep working.
  SharedBytes(std::vector<std::uint8_t> bytes)  // NOLINT(google-explicit-constructor)
      : owner_(std::make_shared<const std::vector<std::uint8_t>>(
            std::move(bytes))),
        data_(owner_->data()),
        size_(owner_->size()) {}

  /// Byte-literal payloads: `Data{id, {1, 2, 3}}`.
  SharedBytes(std::initializer_list<std::uint8_t> bytes)
      : SharedBytes(std::vector<std::uint8_t>(bytes)) {}

  /// Copy `data` into a fresh owned buffer.
  static SharedBytes copy_of(std::span<const std::uint8_t> data) {
    return SharedBytes(std::vector<std::uint8_t>(data.begin(), data.end()));
  }

  /// Alias [offset, offset+len) of an externally owned buffer — no copy.
  /// The caller promises the bytes are not mutated while any SharedBytes
  /// (or slice of one) still references `owner`; the UDP segment ring
  /// upholds this by recycling a slot only once its use_count drops back
  /// to the ring's own reference.
  static SharedBytes adopt(
      std::shared_ptr<const std::vector<std::uint8_t>> owner,
      std::size_t offset, std::size_t len) {
    SharedBytes out;
    out.data_ = owner->data() + offset;
    out.size_ = len;
    out.owner_ = std::move(owner);
    return out;
  }

  /// A view of [offset, offset+len) sharing this buffer's owner — no copy.
  /// Requires offset + len <= size().
  SharedBytes slice(std::size_t offset, std::size_t len) const {
    SharedBytes out;
    out.owner_ = owner_;
    out.data_ = data_ + offset;
    out.size_ = len;
    return out;
  }

  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::span<const std::uint8_t> span() const { return {data_, size_}; }
  operator std::span<const std::uint8_t>() const {  // NOLINT
    return span();
  }

  /// True when both views share the same owning allocation (test hook for
  /// the zero-copy contract; value equality is operator==).
  bool shares_owner_with(const SharedBytes& other) const {
    return owner_ != nullptr && owner_ == other.owner_;
  }

  /// Content equality (proto messages compare payloads by value).
  friend bool operator==(const SharedBytes& a, const SharedBytes& b) {
    if (a.size_ != b.size_) return false;
    if (a.size_ == 0 || a.data_ == b.data_) return true;
    return std::memcmp(a.data_, b.data_, a.size_) == 0;
  }

 private:
  std::shared_ptr<const std::vector<std::uint8_t>> owner_;
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

class ByteWriter {
 public:
  ByteWriter() = default;

  void put_u8(std::uint8_t v) { buf_.push_back(v); }
  void put_u16(std::uint16_t v) { put_le(v); }
  void put_u32(std::uint32_t v) { put_le(v); }
  void put_u64(std::uint64_t v) { put_le(v); }
  void put_i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }
  void put_f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    put_u64(bits);
  }

  /// LEB128-style unsigned varint (1..10 bytes).
  void put_varint(std::uint64_t v);

  /// Varint length prefix followed by raw bytes.
  void put_bytes(std::span<const std::uint8_t> data);
  void put_string(std::string_view s);

  void put_raw(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  std::size_t size() const { return buf_.size(); }
  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  /// Reader over a shared buffer: get_shared_bytes() returns zero-copy
  /// slices aliasing `bytes`' owner instead of fresh allocations.
  /// (Templated so vectors — implicitly convertible to both SharedBytes and
  /// span — unambiguously take the span overload above.)
  template <typename B,
            typename = std::enable_if_t<
                std::is_same_v<std::remove_cvref_t<B>, SharedBytes>>>
  explicit ByteReader(const B& bytes) : data_(bytes.span()), owner_(&bytes) {}
  /// The reader stores a pointer to `bytes`; a temporary would dangle.
  /// (Constrained to SharedBytes rvalues — const-qualified ones included —
  /// so vectors and SharedBytes lvalues are unaffected.)
  template <typename B,
            typename = std::enable_if_t<
                std::is_same_v<std::remove_cvref_t<B>, SharedBytes> &&
                !std::is_lvalue_reference_v<B>>,
            typename = void>
  explicit ByteReader(B&& bytes) = delete;

  std::uint8_t get_u8();
  std::uint16_t get_u16() { return get_le<std::uint16_t>(); }
  std::uint32_t get_u32() { return get_le<std::uint32_t>(); }
  std::uint64_t get_u64() { return get_le<std::uint64_t>(); }
  std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }
  double get_f64();
  std::uint64_t get_varint();
  std::vector<std::uint8_t> get_bytes();
  /// Length-prefixed blob as SharedBytes: a borrowed slice of the reader's
  /// SharedBytes source when one was provided, a copy otherwise.
  SharedBytes get_shared_bytes();
  std::string get_string();

  /// True iff no read has overrun the buffer so far.
  bool ok() const { return ok_; }
  /// True iff the whole buffer was consumed and no read failed.
  bool done() const { return ok_ && pos_ == data_.size(); }
  std::size_t remaining() const { return ok_ ? data_.size() - pos_ : 0; }

 private:
  template <typename T>
  T get_le() {
    if (!require(sizeof(T))) return T{};
    T v{};
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }
  bool require(std::size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> data_;
  const SharedBytes* owner_ = nullptr;  // set for zero-copy blob slices
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace rrmp
