// Bounds-checked binary serialization primitives.
//
// ByteWriter appends little-endian fixed-width integers, length-prefixed
// blobs, and varints to a growable buffer. ByteReader consumes the same
// formats and *never* reads out of bounds: any overrun marks the reader
// failed and all subsequent reads return zero values. Callers check ok()
// once at the end of decoding instead of after every field.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace rrmp {

class ByteWriter {
 public:
  ByteWriter() = default;

  void put_u8(std::uint8_t v) { buf_.push_back(v); }
  void put_u16(std::uint16_t v) { put_le(v); }
  void put_u32(std::uint32_t v) { put_le(v); }
  void put_u64(std::uint64_t v) { put_le(v); }
  void put_i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }
  void put_f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    put_u64(bits);
  }

  /// LEB128-style unsigned varint (1..10 bytes).
  void put_varint(std::uint64_t v);

  /// Varint length prefix followed by raw bytes.
  void put_bytes(std::span<const std::uint8_t> data);
  void put_string(std::string_view s);

  void put_raw(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  std::size_t size() const { return buf_.size(); }
  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t get_u8();
  std::uint16_t get_u16() { return get_le<std::uint16_t>(); }
  std::uint32_t get_u32() { return get_le<std::uint32_t>(); }
  std::uint64_t get_u64() { return get_le<std::uint64_t>(); }
  std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }
  double get_f64();
  std::uint64_t get_varint();
  std::vector<std::uint8_t> get_bytes();
  std::string get_string();

  /// True iff no read has overrun the buffer so far.
  bool ok() const { return ok_; }
  /// True iff the whole buffer was consumed and no read failed.
  bool done() const { return ok_ && pos_ == data_.size(); }
  std::size_t remaining() const { return ok_ ? data_.size() - pos_ : 0; }

 private:
  template <typename T>
  T get_le() {
    if (!require(sizeof(T))) return T{};
    T v{};
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }
  bool require(std::size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace rrmp
