#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <string>

namespace rrmp::log {
namespace {

std::atomic<Level> g_level{Level::kWarn};
std::mutex g_mutex;

const char* level_name(Level l) {
  switch (l) {
    case Level::kTrace: return "TRACE";
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO ";
    case Level::kWarn: return "WARN ";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF  ";
  }
  return "?";
}

}  // namespace

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }
Level level() { return g_level.load(std::memory_order_relaxed); }

namespace detail {
void emit(Level lvl, std::string_view msg) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s] %.*s\n", level_name(lvl),
               static_cast<int>(msg.size()), msg.data());
}
}  // namespace detail

}  // namespace rrmp::log
