#include "common/bytes.h"

namespace rrmp {

void ByteWriter::put_varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::put_bytes(std::span<const std::uint8_t> data) {
  put_varint(data.size());
  put_raw(data);
}

void ByteWriter::put_string(std::string_view s) {
  put_varint(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

std::uint8_t ByteReader::get_u8() {
  if (!require(1)) return 0;
  return data_[pos_++];
}

double ByteReader::get_f64() {
  std::uint64_t bits = get_u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::uint64_t ByteReader::get_varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    if (!require(1)) return 0;
    std::uint8_t b = data_[pos_++];
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if (!(b & 0x80)) return v;
    shift += 7;
  }
  ok_ = false;  // varint longer than 10 bytes is malformed
  return 0;
}

std::vector<std::uint8_t> ByteReader::get_bytes() {
  std::uint64_t n = get_varint();
  if (!require(n)) return {};
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() +
                                    static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

SharedBytes ByteReader::get_shared_bytes() {
  std::uint64_t n = get_varint();
  if (!require(n)) return {};
  std::size_t at = pos_;
  pos_ += n;
  // Alias the source buffer only when the bytes *outside* this blob are
  // bounded (a frame header, or another similarly-sized payload): a
  // long-lived stored payload may then pin at most ~2x its own size. A
  // small slice of a much larger buffer — one of many payloads in a big
  // Handoff batch — is copied instead, so retaining it can never pin an
  // arbitrarily larger wire allocation.
  constexpr std::uint64_t kAliasOverheadCap = 64;
  std::uint64_t overhead = data_.size() - n;
  if (owner_ != nullptr && overhead <= kAliasOverheadCap + n) {
    return owner_->slice(at, n);
  }
  return SharedBytes::copy_of(data_.subspan(at, n));
}

std::string ByteReader::get_string() {
  std::uint64_t n = get_varint();
  if (!require(n)) return {};
  std::string out(reinterpret_cast<const char*>(data_.data()) + pos_, n);
  pos_ += n;
  return out;
}

}  // namespace rrmp
