// Strong simulated-time types.
//
// All protocol code measures time in integer microseconds through these two
// wrappers; they cannot be mixed up with plain integers or with each other.
// The simulator advances a TimePoint; the UDP host maps it onto
// std::chrono::steady_clock.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <ostream>

namespace rrmp {

/// A span of simulated time, in microseconds. Value type, totally ordered.
class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration micros(std::int64_t us) { return Duration(us); }
  static constexpr Duration millis(std::int64_t ms) { return Duration(ms * 1000); }
  static constexpr Duration seconds(std::int64_t s) { return Duration(s * 1000000); }
  static constexpr Duration zero() { return Duration(0); }
  static constexpr Duration infinite() {
    return Duration(std::numeric_limits<std::int64_t>::max());
  }

  constexpr std::int64_t us() const { return us_; }
  constexpr double ms() const { return static_cast<double>(us_) / 1000.0; }
  constexpr double sec() const { return static_cast<double>(us_) / 1e6; }

  constexpr bool is_infinite() const {
    return us_ == std::numeric_limits<std::int64_t>::max();
  }

  friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration(a.us_ + b.us_);
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration(a.us_ - b.us_);
  }
  friend constexpr Duration operator*(Duration a, std::int64_t k) {
    return Duration(a.us_ * k);
  }
  friend constexpr Duration operator*(std::int64_t k, Duration a) { return a * k; }
  /// Scale by a real factor (named, to avoid int/double overload ambiguity).
  constexpr Duration scaled(double k) const {
    return Duration(static_cast<std::int64_t>(static_cast<double>(us_) * k));
  }
  friend constexpr Duration operator/(Duration a, std::int64_t k) {
    return Duration(a.us_ / k);
  }
  constexpr Duration& operator+=(Duration o) {
    us_ += o.us_;
    return *this;
  }
  constexpr Duration& operator-=(Duration o) {
    us_ -= o.us_;
    return *this;
  }

  friend constexpr auto operator<=>(Duration, Duration) = default;

 private:
  constexpr explicit Duration(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

/// An instant of simulated time (microseconds since simulation start).
class TimePoint {
 public:
  constexpr TimePoint() = default;

  static constexpr TimePoint from_us(std::int64_t us) { return TimePoint(us); }
  static constexpr TimePoint zero() { return TimePoint(0); }
  static constexpr TimePoint max() {
    return TimePoint(std::numeric_limits<std::int64_t>::max());
  }

  constexpr std::int64_t us() const { return us_; }
  constexpr double ms() const { return static_cast<double>(us_) / 1000.0; }
  constexpr double sec() const { return static_cast<double>(us_) / 1e6; }

  friend constexpr TimePoint operator+(TimePoint t, Duration d) {
    // Saturate instead of overflowing when adding to "never".
    if (t.us_ == std::numeric_limits<std::int64_t>::max() || d.is_infinite()) {
      return TimePoint::max();
    }
    return TimePoint(t.us_ + d.us());
  }
  friend constexpr TimePoint operator-(TimePoint t, Duration d) {
    return TimePoint(t.us_ - d.us());
  }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return Duration::micros(a.us_ - b.us_);
  }

  friend constexpr auto operator<=>(TimePoint, TimePoint) = default;

 private:
  constexpr explicit TimePoint(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

inline std::ostream& operator<<(std::ostream& os, Duration d) {
  return os << d.us() << "us";
}
inline std::ostream& operator<<(std::ostream& os, TimePoint t) {
  return os << "t+" << t.us() << "us";
}

}  // namespace rrmp
