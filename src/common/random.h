// Deterministic randomness for protocol endpoints and experiments.
//
// Every source of randomness in the system is a RandomEngine derived from a
// single master seed via fork(), so whole-cluster simulations replay
// bit-identically for a given seed regardless of container iteration order.
#pragma once

#include <cstdint>
#include <optional>
#include <random>
#include <span>
#include <vector>

namespace rrmp {

/// splitmix64 step: the seed-mixing primitive used by RandomEngine::fork.
std::uint64_t splitmix64(std::uint64_t& state);

class RandomEngine {
 public:
  explicit RandomEngine(std::uint64_t seed);

  /// Derive an independent child engine. Deterministic in (seed, stream):
  /// fork(k) on engines with equal seeds yields equal children, and children
  /// with different stream ids are statistically independent. fork() is
  /// const: deriving children never consumes parent state, so the parent's
  /// own output sequence is unaffected by how many forks were taken.
  RandomEngine fork(std::uint64_t stream) const;

  /// Derive `n` independent child engines in one call: child i is
  /// fork(domain + i), with `domain` separating unrelated split sites that
  /// share a parent. The sharded network derives its per-region lane
  /// streams this way; the unit tests pin the fork/split equivalence.
  std::vector<RandomEngine> split(std::size_t n, std::uint64_t domain = 0) const;

  std::uint64_t seed() const { return seed_; }

  std::uint32_t next_u32();
  std::uint64_t next_u64();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Bernoulli trial; p clamped to [0, 1].
  bool bernoulli(double p);

  /// Number of successes in n Bernoulli(p) trials, in O(1) expected time
  /// per draw regardless of n: inversion (BINV) when n·min(p,1-p) < 30,
  /// BTPE-style rejection (Kachitvichyanukul & Schmeiser 1988) otherwise.
  /// p is clamped to [0, 1]. Deterministic in the engine state, so the
  /// Monte Carlo drivers replay bit-identically for a given seed.
  std::uint64_t binomial(std::uint64_t n, double p);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Uniformly random element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    return items[static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(items.size()) - 1))];
  }
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return pick(std::span<const T>(items));
  }

  /// k distinct indices sampled uniformly from [0, n). Requires k <= n.
  /// Order of the returned indices is randomized.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Access to the underlying URBG for <random> distributions.
  std::mt19937_64& urbg() { return engine(); }

 private:
  /// The mt19937_64 state (2.5 KB, 312-word seeding pass) materializes on
  /// the first draw, not at construction: forking one engine per member of
  /// a large cluster is O(1) per member, and engines that never draw — most
  /// members of a search experiment — never pay for seeding. The output
  /// sequence is bit-identical to eager seeding.
  std::mt19937_64& engine() {
    if (!rng_) {
      std::uint64_t s = seed_;
      rng_.emplace(splitmix64(s));
    }
    return *rng_;
  }

  std::uint64_t seed_;
  std::optional<std::mt19937_64> rng_;
};

}  // namespace rrmp
