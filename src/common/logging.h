// Minimal leveled logger.
//
// Protocol code logs at kTrace/kDebug (off by default so simulations stay
// fast); examples raise the level to narrate runs. Thread-safe: the UDP host
// logs from several threads.
#pragma once

#include <mutex>
#include <sstream>
#include <string_view>

namespace rrmp::log {

enum class Level { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Set the global threshold; messages below it are dropped.
void set_level(Level level);
Level level();

namespace detail {
void emit(Level level, std::string_view msg);

template <typename... Args>
void logf(Level lvl, const Args&... args) {
  if (lvl < level()) return;
  std::ostringstream os;
  (os << ... << args);
  emit(lvl, os.str());
}
}  // namespace detail

template <typename... Args>
void trace(const Args&... args) {
  detail::logf(Level::kTrace, args...);
}
template <typename... Args>
void debug(const Args&... args) {
  detail::logf(Level::kDebug, args...);
}
template <typename... Args>
void info(const Args&... args) {
  detail::logf(Level::kInfo, args...);
}
template <typename... Args>
void warn(const Args&... args) {
  detail::logf(Level::kWarn, args...);
}
template <typename... Args>
void error(const Args&... args) {
  detail::logf(Level::kError, args...);
}

}  // namespace rrmp::log
