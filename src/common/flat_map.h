// Open-addressing hash map with tombstone deletion, tuned for the protocol
// hot paths that previously sat on std::unordered_map (per-message recovery
// tasks, waiter lists). One flat slot array, linear probing, power-of-two
// capacity: no per-node allocation, no bucket pointer chasing, and erase is
// a tombstone write — at a million members the node churn of the standard
// containers dominates the recovery path's cost.
//
// Reference contract (narrower than unordered_map's): references and
// iterators stay valid across erase() (slots are tombstoned in place, never
// moved) but are invalidated by any insert that triggers a rehash. Callers
// must not hold a reference across an insertion — the Endpoint's holding
// patterns were audited against exactly this rule.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace rrmp::common {

template <typename K, typename V, typename Hash = std::hash<K>>
class FlatMap {
  enum State : std::uint8_t { kEmpty = 0, kFull = 1, kTombstone = 2 };

  struct Slot {
    std::pair<K, V> kv{};
  };

 public:
  using value_type = std::pair<K, V>;

  class iterator {
   public:
    iterator(FlatMap* map, std::size_t idx) : map_(map), idx_(idx) {
      skip_to_full();
    }
    value_type& operator*() const { return map_->slots_[idx_].kv; }
    value_type* operator->() const { return &map_->slots_[idx_].kv; }
    iterator& operator++() {
      ++idx_;
      skip_to_full();
      return *this;
    }
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.idx_ == b.idx_;
    }

   private:
    friend class FlatMap;
    void skip_to_full() {
      while (idx_ < map_->states_.size() && map_->states_[idx_] != kFull) {
        ++idx_;
      }
    }
    FlatMap* map_;
    std::size_t idx_;
  };

  FlatMap() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, states_.size()); }

  iterator find(const K& key) {
    std::size_t idx = find_index(key);
    return idx == kNotFound ? end() : iterator(this, idx);
  }

  std::size_t count(const K& key) { return find_index(key) == kNotFound ? 0 : 1; }

  V& operator[](const K& key) {
    std::size_t idx = find_index(key);
    if (idx != kNotFound) return slots_[idx].kv.second;
    return *insert_new(key);
  }

  /// Insert (key, V{args...}) if absent; returns (iterator, inserted).
  template <typename... Args>
  std::pair<iterator, bool> emplace(const K& key, Args&&... args) {
    std::size_t idx = find_index(key);
    if (idx != kNotFound) return {iterator(this, idx), false};
    V* v = insert_new(key);
    *v = V(std::forward<Args>(args)...);
    // insert_new may have rehashed: re-locate the slot by key.
    return {iterator(this, find_index(key)), true};
  }

  /// Tombstone the slot; the stored value is reset (releasing any owned
  /// memory) but never moved, so other entries' references stay valid.
  void erase(iterator it) {
    states_[it.idx_] = kTombstone;
    slots_[it.idx_].kv.second = V{};
    --size_;
  }

  std::size_t erase(const K& key) {
    std::size_t idx = find_index(key);
    if (idx == kNotFound) return 0;
    states_[idx] = kTombstone;
    slots_[idx].kv.second = V{};
    --size_;
    return 1;
  }

  void clear() {
    slots_.clear();
    states_.clear();
    size_ = 0;
    used_ = 0;
  }

 private:
  static constexpr std::size_t kNotFound = static_cast<std::size_t>(-1);
  static constexpr std::size_t kMinCapacity = 16;

  std::size_t mask() const { return states_.size() - 1; }

  std::size_t find_index(const K& key) const {
    if (states_.empty()) return kNotFound;
    std::size_t idx = Hash{}(key) & mask();
    // Linear probe; an empty slot terminates (tombstones do not).
    while (states_[idx] != kEmpty) {
      if (states_[idx] == kFull && slots_[idx].kv.first == key) return idx;
      idx = (idx + 1) & mask();
    }
    return kNotFound;
  }

  V* insert_new(const K& key) {
    // Rehash when full + tombstoned slots pass 70% occupancy, so probe
    // chains stay short and a churn-heavy workload reclaims its tombstones.
    if (states_.empty() || (used_ + 1) * 10 >= states_.size() * 7) {
      rehash(std::max(kMinCapacity, states_.size() * 2));
    }
    std::size_t idx = Hash{}(key) & mask();
    while (states_[idx] == kFull) idx = (idx + 1) & mask();
    if (states_[idx] == kEmpty) ++used_;  // reusing a tombstone: used_ holds
    states_[idx] = kFull;
    slots_[idx].kv.first = key;
    slots_[idx].kv.second = V{};
    ++size_;
    return &slots_[idx].kv.second;
  }

  void rehash(std::size_t new_capacity) {
    std::vector<Slot> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_states = std::move(states_);
    slots_.assign(new_capacity, Slot{});
    states_.assign(new_capacity, kEmpty);
    used_ = size_;
    for (std::size_t i = 0; i < old_states.size(); ++i) {
      if (old_states[i] != kFull) continue;
      std::size_t idx = Hash{}(old_slots[i].kv.first) & mask();
      while (states_[idx] == kFull) idx = (idx + 1) & mask();
      states_[idx] = kFull;
      slots_[idx].kv = std::move(old_slots[i].kv);
    }
  }

  std::vector<Slot> slots_;
  std::vector<std::uint8_t> states_;
  std::size_t size_ = 0;  // live entries
  std::size_t used_ = 0;  // live + tombstoned slots (probe-chain occupancy)
};

}  // namespace rrmp::common
