// Core identifier types shared by every RRMP subsystem.
//
// Members are addressed by dense 32-bit ids assigned by the membership
// directory; a multicast message is identified, as in the paper (footnote 2),
// by [source address, sequence number].
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

namespace rrmp {

/// Dense identifier for a group member ("network address" in the paper).
using MemberId = std::uint32_t;

/// Identifier for a local region in the error-recovery hierarchy.
using RegionId = std::uint32_t;

/// Sentinel for "no member".
inline constexpr MemberId kInvalidMember = 0xFFFFFFFFu;

/// Sentinel for "no region" (e.g. the root region has no parent).
inline constexpr RegionId kInvalidRegion = 0xFFFFFFFFu;

/// Identifier of a multicast message: [source address, sequence number].
struct MessageId {
  MemberId source = kInvalidMember;
  std::uint64_t seq = 0;

  friend bool operator==(const MessageId&, const MessageId&) = default;
  friend auto operator<=>(const MessageId&, const MessageId&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const MessageId& id) {
  return os << id.source << ":" << id.seq;
}

inline std::string to_string(const MessageId& id) {
  return std::to_string(id.source) + ":" + std::to_string(id.seq);
}

}  // namespace rrmp

template <>
struct std::hash<rrmp::MessageId> {
  std::size_t operator()(const rrmp::MessageId& id) const noexcept {
    // splitmix-style mix of the two fields; good avalanche for hash tables.
    std::uint64_t x = (static_cast<std::uint64_t>(id.source) << 48) ^ id.seq;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};
