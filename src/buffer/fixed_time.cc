#include "buffer/fixed_time.h"

namespace rrmp::buffer {

void FixedTimePolicy::on_stored(Entry& e) {
  MessageId id = e.data.id;
  e.timer = env().schedule(ttl_, [this, id] { discard(id); });
}

}  // namespace rrmp::buffer
