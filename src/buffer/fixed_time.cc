#include "buffer/fixed_time.h"

namespace rrmp::buffer {

void FixedTimePolicy::on_stored(const MessageId& id) {
  store().set_entry_timer(
      id, env().schedule(params_.ttl, [this, id] { store().discard(id); }));
}

}  // namespace rrmp::buffer
