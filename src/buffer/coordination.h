// Cooperative region-wide buffer budgets.
//
// PR 4 gave each member an isolated BufferBudget, but under pressure members
// still evict blindly: a member may drop the region's *last* copy of a
// message while a neighbor holds a redundant one. Coordination closes that
// gap with three pieces, all approximate and all cheap:
//
//   1. Digest gossip — every digest_interval each member multicasts a
//      proto::BufferDigest (held MessageId ranges + bytes in use) within its
//      region. Each BufferStore folds neighbors' digests into a DigestTable,
//      giving it an approximate replica count per buffered entry and a view
//      of where free buffer capacity lives.
//   2. Cost-aware eviction — RetentionPolicy::pick_victims prefers victims
//      with >= redundancy_threshold known regional replicas (self included)
//      and protects sole-copy entries, falling back to the PR 4 order
//      (short-term first, LRU, MessageId tie-break) among equals.
//   3. Shed handoff — when pressure forces a sole-copy entry out anyway, the
//      store pushes it to the least-loaded digest-advertised neighbor
//      (proto::Shed) before discarding, so the copy moves instead of dying.
//
// Everything is gated on CoordinationParams::enabled: disabled, no digest is
// ever sent, no replica count consulted, and eviction is bit-identical to
// the uncoordinated PR 4 protocol.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/time.h"
#include "common/types.h"
#include "proto/messages.h"

namespace rrmp::buffer {

struct CoordinationParams {
  /// Master switch; everything below is inert when false.
  bool enabled = false;
  /// Period of the per-member BufferDigest regional multicast. Keep it at or
  /// below the policies' retention timescales (idle threshold T, TTLs) or
  /// the replica counts are stale by the time eviction consults them.
  Duration digest_interval = Duration::millis(20);
  /// Entries with at least this many known regional replicas (self plus
  /// digest-advertised neighbors) are preferred eviction victims — unless
  /// this member is the entry's elected keeper. Among those victims, higher
  /// replica counts evict first; below the threshold (and for keepers and
  /// sole copies) the uncoordinated order applies.
  std::size_t redundancy_threshold = 2;
  /// Push sole-copy victims to the least-loaded digest-advertised neighbor
  /// (proto::Shed) before discarding them.
  bool shed_sole_copies = true;
  /// Age out a neighbor's advertisement after this many digest intervals
  /// without a refresh (0 disables aging). A peer that is alive-but-severed
  /// across a network partition stays in the view, so retain() never prunes
  /// it — without aging its last digest would keep inflating replica counts
  /// and pinning keeper elections for the whole partition. Digests normally
  /// refresh every interval, so entries never age past 1 in a connected
  /// region and the default changes nothing in fault-free runs.
  std::size_t max_missed_digests = 3;

  friend bool operator==(const CoordinationParams&,
                         const CoordinationParams&) = default;
};

/// One store's view of its region neighbors' advertised buffer contents.
/// Keyed by member id in an ordered map so every derived decision (replica
/// counts, least-loaded neighbor) is deterministic across runs and shard
/// counts.
class DigestTable {
 public:
  /// Replace `peer`'s advertisement (the digest stream is idempotent:
  /// every digest carries the peer's full held set). `window_outstanding`
  /// is the peer's advertised flow-control window occupancy (0 when flow
  /// control is off at the peer).
  void update(MemberId peer, std::uint64_t bytes_in_use,
              std::vector<proto::DigestRange> ranges,
              std::uint64_t window_outstanding = 0);

  /// Drop `peer`'s advertisement (left/crashed).
  void forget(MemberId peer);

  /// Drop every advertisement whose peer is not in `alive`. Called each
  /// digest period with the current region view: a departed member's last
  /// digest must not keep inflating replica counts (tricking survivors
  /// into evicting what is now the region's last copy) or keep winning
  /// keeper elections it can no longer honour.
  void retain(const std::vector<MemberId>& alive);

  /// Advance every advertisement's missed-refresh counter by one period and
  /// drop entries not refreshed for more than `max_missed` periods (update()
  /// resets the counter). Catches peers retain() cannot: alive-but-severed
  /// members across a partition stay in the view while no digest of theirs
  /// can arrive. Returns the number of entries dropped.
  std::size_t age(std::size_t max_missed);

  void clear() { peers_.clear(); }

  std::size_t peer_count() const { return peers_.size(); }
  bool has_peer(MemberId peer) const { return peers_.count(peer) != 0; }

  /// Number of neighbors currently advertising `id` (never negative by
  /// construction: it is a count over the table, not a maintained delta).
  std::size_t holders_of(const MessageId& id) const;

  /// True iff `self` is the entry's designated keeper: the member with the
  /// smallest rendezvous hash (buffer::hash_score) among self plus every
  /// advertising neighbor. Exactly one member of any agreeing holder set
  /// elects itself keeper, so redundant copies converge to one protected
  /// copy per entry instead of every holder evicting "the redundant one"
  /// simultaneously; rendezvous hashing spreads keeper duty evenly.
  bool keeper_is(const MessageId& id, MemberId self) const;

  /// holders_of + keeper_is in a single table scan — pick_victims consults
  /// both per entry on the eviction hot path, and the advertising peers
  /// that decide them are the same rows.
  struct HolderInfo {
    std::size_t holders = 0;  // neighbors advertising the id
    bool keeper = true;       // self wins the rendezvous election
  };
  HolderInfo holder_info(const MessageId& id, MemberId self) const;

  /// Advertised bytes in use for `peer`; 0 if unknown.
  std::uint64_t advertised_bytes(MemberId peer) const;

  /// Advertised flow-window occupancy for `peer`; 0 if unknown.
  std::uint64_t advertised_outstanding(MemberId peer) const;

  /// Sum of advertised window occupancy across all peers: the region's
  /// in-flight send load as the digest gossip sees it.
  std::uint64_t region_outstanding() const;

  /// The advertising peer with the least bytes in use, restricted to
  /// `alive` and excluding `exclude`; ties break on the smaller MemberId.
  /// kInvalidMember when no advertised peer qualifies.
  MemberId least_loaded(const std::vector<MemberId>& alive,
                        MemberId exclude) const;

 private:
  struct PeerDigest {
    std::uint64_t bytes_in_use = 0;
    std::uint64_t window_outstanding = 0;
    std::size_t missed = 0;  // digest periods since the last refresh
    std::vector<proto::DigestRange> ranges;
  };
  std::map<MemberId, PeerDigest> peers_;
};

}  // namespace rrmp::buffer
