#include "buffer/stability.h"

#include <algorithm>

namespace rrmp::buffer {

void StabilityPolicy::mark_stable_below(MemberId source,
                                        std::uint64_t stable_below) {
  std::vector<MessageId> victims;
  store().for_each_entry([&](const BufferStore::EntryView& e) {
    if (e.id.source == source && e.id.seq < stable_below) {
      victims.push_back(e.id);
    }
  });
  for (const MessageId& id : victims) store().discard(id);
}

void StabilityTracker::update(MemberId m, const proto::SourceHistory& h) {
  // Extend next_expected through the contiguous prefix of the bitmap: if the
  // bits for next_expected, next_expected+1, ... are set, the member's
  // received prefix is actually longer than the scalar field says.
  std::uint64_t prefix = h.next_expected;
  for (std::size_t w = 0; w < h.bitmap.size(); ++w) {
    std::uint64_t word = h.bitmap[w];
    if (word == ~0ULL) {
      prefix += 64;
      continue;
    }
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        ++prefix;
      } else {
        w = h.bitmap.size();  // stop outer loop
        break;
      }
    }
    break;
  }
  std::uint64_t& cur = frontier_[h.source][m];
  cur = std::max(cur, prefix);
}

void StabilityTracker::forget_member(MemberId m) {
  for (auto& [source, members] : frontier_) members.erase(m);
}

std::uint64_t StabilityTracker::stable_below(
    MemberId source, const std::vector<MemberId>& expected) const {
  auto it = frontier_.find(source);
  if (it == frontier_.end()) return 0;
  const auto& members = it->second;
  std::uint64_t lo = ~0ULL;
  for (MemberId m : expected) {
    auto mit = members.find(m);
    if (mit == members.end()) return 0;  // member never reported
    lo = std::min(lo, mit->second);
  }
  return expected.empty() ? 0 : lo;
}

}  // namespace rrmp::buffer
