#include "buffer/coordination.h"

#include <algorithm>

#include "buffer/hash_based.h"

namespace rrmp::buffer {

void DigestTable::update(MemberId peer, std::uint64_t bytes_in_use,
                         std::vector<proto::DigestRange> ranges,
                         std::uint64_t window_outstanding) {
  PeerDigest& d = peers_[peer];
  d.bytes_in_use = bytes_in_use;
  d.window_outstanding = window_outstanding;
  d.missed = 0;  // a fresh advertisement restarts the aging clock
  d.ranges = std::move(ranges);
}

void DigestTable::forget(MemberId peer) { peers_.erase(peer); }

void DigestTable::retain(const std::vector<MemberId>& alive) {
  for (auto it = peers_.begin(); it != peers_.end();) {
    if (std::find(alive.begin(), alive.end(), it->first) == alive.end()) {
      it = peers_.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t DigestTable::age(std::size_t max_missed) {
  if (max_missed == 0) return 0;  // aging disabled
  std::size_t dropped = 0;
  for (auto it = peers_.begin(); it != peers_.end();) {
    if (++it->second.missed > max_missed) {
      it = peers_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

namespace {

// Overflow-safe containment: id.seq in [first_seq, first_seq + count).
bool range_holds(const proto::DigestRange& r, const MessageId& id) {
  return r.source == id.source && id.seq >= r.first_seq &&
         id.seq - r.first_seq < r.count;
}

}  // namespace

std::size_t DigestTable::holders_of(const MessageId& id) const {
  std::size_t holders = 0;
  for (const auto& [peer, d] : peers_) {
    for (const proto::DigestRange& r : d.ranges) {
      if (range_holds(r, id)) {
        ++holders;
        break;
      }
    }
  }
  return holders;
}

bool DigestTable::keeper_is(const MessageId& id, MemberId self) const {
  return holder_info(id, self).keeper;
}

DigestTable::HolderInfo DigestTable::holder_info(const MessageId& id,
                                                 MemberId self) const {
  HolderInfo info;
  std::uint64_t own = hash_score(id, self);
  for (const auto& [peer, d] : peers_) {
    for (const proto::DigestRange& r : d.ranges) {
      if (range_holds(r, id)) {
        ++info.holders;
        std::uint64_t score = hash_score(id, peer);
        // Tie-break by member id, matching hash_bufferers' ordering.
        if (score < own || (score == own && peer < self)) info.keeper = false;
        break;
      }
    }
  }
  return info;
}

std::uint64_t DigestTable::advertised_bytes(MemberId peer) const {
  auto it = peers_.find(peer);
  return it == peers_.end() ? 0 : it->second.bytes_in_use;
}

std::uint64_t DigestTable::advertised_outstanding(MemberId peer) const {
  auto it = peers_.find(peer);
  return it == peers_.end() ? 0 : it->second.window_outstanding;
}

std::uint64_t DigestTable::region_outstanding() const {
  std::uint64_t total = 0;
  for (const auto& [peer, d] : peers_) total += d.window_outstanding;
  return total;
}

MemberId DigestTable::least_loaded(const std::vector<MemberId>& alive,
                                   MemberId exclude) const {
  MemberId best = kInvalidMember;
  std::uint64_t best_bytes = 0;
  for (const auto& [peer, d] : peers_) {  // ascending id: deterministic ties
    if (peer == exclude) continue;
    if (std::find(alive.begin(), alive.end(), peer) == alive.end()) continue;
    if (best == kInvalidMember || d.bytes_in_use < best_bytes) {
      best = peer;
      best_bytes = d.bytes_in_use;
    }
  }
  return best;
}

}  // namespace rrmp::buffer
