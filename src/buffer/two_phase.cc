#include "buffer/two_phase.h"

#include <algorithm>

namespace rrmp::buffer {

void TwoPhasePolicy::on_stored(const MessageId& id) { arm_idle_check(id); }

void TwoPhasePolicy::on_handoff(const MessageId& id) {
  // Responsibility transferred from a leaving long-term bufferer: skip the
  // idle phase and the random draw; we are a long-term bufferer now.
  store().promote_long_term(id);
  arm_long_term_ttl(id);
}

void TwoPhasePolicy::on_request_seen(const MessageId& id) {
  // The store refreshed last_activity already.
  // Short-term: the pending idle check re-arms itself off last_activity.
  // Long-term: refresh the eventual-discard clock.
  if (store().is_long_term(id) && !params_.long_term_ttl.is_infinite()) {
    std::uint64_t timer = store().entry_timer(id);
    if (timer != 0) env().cancel(timer);
    store().set_entry_timer(id, 0);
    arm_long_term_ttl(id);
  }
}

void TwoPhasePolicy::arm_idle_check(const MessageId& id) {
  auto v = store().view(id);
  TimePoint due = v->last_activity + params_.idle_threshold;
  store().set_entry_timer(
      id, env().schedule(due - env().now(), [this, id] { idle_check(id); }));
}

void TwoPhasePolicy::idle_check(const MessageId& id) {
  auto v = store().view(id);
  if (!v) return;
  store().set_entry_timer(id, 0);  // this check's handle is spent either way
  if (v->long_term) {
    // Upgraded (handoff) while the idle check was pending: the entry owes
    // the long-term lifecycle now, not another idle decision.
    arm_long_term_ttl(id);
    return;
  }
  TimePoint idle_at = v->last_activity + params_.idle_threshold;
  if (env().now() < idle_at) {
    // A request arrived since this check was armed; try again later.
    arm_idle_check(id);
    return;
  }
  // The message is idle (§3.1). Random long-term decision (§3.2): keep with
  // probability P = C/n so the expected bufferer count per region is C.
  std::size_t n = std::max<std::size_t>(env().region_size(), 1);
  double p = params_.C / static_cast<double>(n);
  if (env().rng().bernoulli(p)) {
    store().promote_long_term(id);
    arm_long_term_ttl(id);
  } else {
    store().discard(id);
  }
}

void TwoPhasePolicy::arm_long_term_ttl(const MessageId& id) {
  if (params_.long_term_ttl.is_infinite()) return;
  store().set_entry_timer(id, env().schedule(params_.long_term_ttl, [this, id] {
    long_term_check(id);
  }));
}

void TwoPhasePolicy::long_term_check(const MessageId& id) {
  auto v = store().view(id);
  if (!v) return;
  store().set_entry_timer(id, 0);
  TimePoint due = v->last_activity + params_.long_term_ttl;
  if (env().now() < due) {
    // Used since the timer was armed; keep it around for another period.
    store().set_entry_timer(id, env().schedule(due - env().now(), [this, id] {
      long_term_check(id);
    }));
    return;
  }
  store().discard(id);
}

}  // namespace rrmp::buffer
