#include "buffer/two_phase.h"

namespace rrmp::buffer {

void TwoPhasePolicy::on_stored(Entry& e) { arm_idle_check(e); }

void TwoPhasePolicy::on_handoff_accepted(Entry& e) {
  // Responsibility transferred from a leaving long-term bufferer: skip the
  // idle phase and the random draw; we are a long-term bufferer now.
  promote_long_term(e);
  arm_long_term_ttl(e);
}

void TwoPhasePolicy::on_request_seen(const MessageId& id) {
  Entry* e = find(id);
  if (e == nullptr) return;
  e->last_activity = env().now();
  // Short-term: the pending idle check re-arms itself off last_activity.
  // Long-term: refresh the eventual-discard clock.
  if (e->long_term && !params_.long_term_ttl.is_infinite()) {
    if (e->timer != 0) env().cancel(e->timer);
    e->timer = 0;
    arm_long_term_ttl(*e);
  }
}

void TwoPhasePolicy::arm_idle_check(Entry& e) {
  TimePoint due = e.last_activity + params_.idle_threshold;
  MessageId id = e.data.id;
  e.timer = env().schedule(due - env().now(), [this, id] { idle_check(id); });
}

void TwoPhasePolicy::idle_check(const MessageId& id) {
  Entry* e = find(id);
  if (e == nullptr || e->long_term) return;
  e->timer = 0;
  TimePoint idle_at = e->last_activity + params_.idle_threshold;
  if (env().now() < idle_at) {
    // A request arrived since this check was armed; try again later.
    arm_idle_check(*e);
    return;
  }
  // The message is idle (§3.1). Random long-term decision (§3.2): keep with
  // probability P = C/n so the expected bufferer count per region is C.
  std::size_t n = std::max<std::size_t>(env().region_size(), 1);
  double p = params_.C / static_cast<double>(n);
  if (env().rng().bernoulli(p)) {
    promote_long_term(*e);
    arm_long_term_ttl(*e);
  } else {
    discard(id);
  }
}

void TwoPhasePolicy::arm_long_term_ttl(Entry& e) {
  if (params_.long_term_ttl.is_infinite()) return;
  MessageId id = e.data.id;
  e.timer = env().schedule(params_.long_term_ttl,
                           [this, id] { long_term_check(id); });
}

void TwoPhasePolicy::long_term_check(const MessageId& id) {
  Entry* e = find(id);
  if (e == nullptr) return;
  e->timer = 0;
  TimePoint due = e->last_activity + params_.long_term_ttl;
  if (env().now() < due) {
    // Used since the timer was armed; keep it around for another period.
    e->timer = env().schedule(due - env().now(),
                              [this, id] { long_term_check(id); });
    return;
  }
  discard(id);
}

}  // namespace rrmp::buffer
