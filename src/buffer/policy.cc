#include "buffer/policy.h"

#include <algorithm>
#include <stdexcept>

#include "buffer/store.h"

namespace rrmp::buffer {

RetentionPolicy::~RetentionPolicy() = default;

void RetentionPolicy::bind(BufferStore* store, PolicyEnv* env) {
  if (store == nullptr || env == nullptr) {
    throw std::invalid_argument("RetentionPolicy::bind: null store or env");
  }
  if (store_ != nullptr) {
    throw std::logic_error("RetentionPolicy::bind: already bound");
  }
  store_ = store;
  env_ = env;
  on_bound();
}

namespace {

struct Candidate {
  MessageId id;
  std::size_t bytes;
  TimePoint last_activity;
  bool long_term;
};

/// The deterministic expendability order: short-term entries before
/// long-term ones (long-term copies are the region's recovery capital),
/// least-recently-active first, ties broken by ascending MessageId so every
/// member and every shard count evicts the same victims in the same order.
bool more_expendable(const Candidate& a, const Candidate& b) {
  if (a.long_term != b.long_term) return !a.long_term;
  if (a.last_activity != b.last_activity) {
    return a.last_activity < b.last_activity;
  }
  return a.id < b.id;
}

}  // namespace

EvictionPlan RetentionPolicy::pick_victims(const EvictionDemand& need) {
  // Fast path for the steady state (incoming message ~= evicted message):
  // one allocation-free linear pass finds the single most expendable entry;
  // if evicting it satisfies the demand, that is the whole plan. Only
  // multi-victim demands (large incoming message, shrunk budget) pay for a
  // snapshot + sort.
  std::optional<Candidate> best;
  store().for_each_entry([&](const BufferStore::EntryView& e) {
    Candidate c{e.id, e.bytes, e.last_activity, e.long_term};
    if (!best || more_expendable(c, *best)) best = c;
  });
  if (!best) return {};
  if (best->bytes >= need.bytes && need.entries <= 1) {
    return {{best->id}};
  }
  std::vector<Candidate> candidates;
  candidates.reserve(store().count());
  store().for_each_entry([&](const BufferStore::EntryView& e) {
    candidates.push_back({e.id, e.bytes, e.last_activity, e.long_term});
  });
  std::sort(candidates.begin(), candidates.end(), more_expendable);
  EvictionPlan plan;
  std::size_t freed_bytes = 0, freed_entries = 0;
  for (const Candidate& c : candidates) {
    if (freed_bytes >= need.bytes && freed_entries >= need.entries) break;
    plan.victims.push_back(c.id);
    freed_bytes += c.bytes;
    ++freed_entries;
  }
  return plan;
}

}  // namespace rrmp::buffer
