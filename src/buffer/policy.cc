#include "buffer/policy.h"

#include <algorithm>
#include <stdexcept>

#include "buffer/store.h"

namespace rrmp::buffer {

RetentionPolicy::~RetentionPolicy() = default;

void RetentionPolicy::bind(BufferStore* store, PolicyEnv* env) {
  if (store == nullptr || env == nullptr) {
    throw std::invalid_argument("RetentionPolicy::bind: null store or env");
  }
  if (store_ != nullptr) {
    throw std::logic_error("RetentionPolicy::bind: already bound");
  }
  store_ = store;
  env_ = env;
  on_bound();
}

namespace {

struct Candidate {
  MessageId id;
  std::size_t bytes;
  TimePoint last_activity;
  bool long_term;
  /// Expendability rank from the coordination cost model: 0 for protected
  /// entries (sole copies, designated keepers, everything when coordination
  /// is off — the comparator then degenerates to the uncoordinated order),
  /// otherwise the entry's known regional replica count, so the most
  /// replicated redundant entry is evicted first.
  std::size_t replica_rank = 0;
};

/// The deterministic expendability order. With coordination, the replica
/// cost model ranks first: the more known regional replicas an entry has
/// (up to the redundancy threshold) the more expendable it is, so sole
/// copies are protected until nothing redundant remains. Within a replica
/// class — and always, when coordination is off — the PR 4 order applies:
/// short-term entries before long-term ones (long-term copies are the
/// region's recovery capital), least-recently-active first, ties broken by
/// ascending MessageId so every member and every shard count evicts the
/// same victims in the same order.
bool more_expendable(const Candidate& a, const Candidate& b) {
  if (a.replica_rank != b.replica_rank) return a.replica_rank > b.replica_rank;
  if (a.long_term != b.long_term) return !a.long_term;
  if (a.last_activity != b.last_activity) {
    return a.last_activity < b.last_activity;
  }
  return a.id < b.id;
}

}  // namespace

EvictionPlan RetentionPolicy::pick_victims(const EvictionDemand& need) {
  // Replica counts are consulted only under coordination; uncoordinated
  // stores keep every rank at 0 and reproduce the PR 4 plan bit-for-bit.
  // Coordinated, an entry is expendable (rank = its replica count, most
  // replicated first) only when it is redundant (>= redundancy_threshold
  // known replicas) AND this member is not its designated keeper — the
  // keeper election stops all holders of a redundant entry from evicting
  // it simultaneously. Sole copies and keeper copies rank 0 (protected).
  //
  // Ranking an entry costs a digest-table scan (holder_info), so the
  // coordinated path computes every rank exactly once: one snapshot pass
  // feeds both the single-victim fast path (min, no sort) and, only when
  // the demand needs more, the full sort. The uncoordinated path keeps
  // the PR 3 allocation-free steady-state scan.
  const bool coordinated = store().coordination_enabled();
  const std::size_t threshold = store().coordination().redundancy_threshold;
  auto rank_of = [&](const MessageId& id) -> std::size_t {
    // Called only for currently-stored entries, so our copy always counts.
    DigestTable::HolderInfo info =
        store().digests().holder_info(id, env().self());
    std::size_t replicas = 1 + info.holders;
    if (replicas < threshold || info.keeper) return 0;
    return replicas;
  };
  if (coordinated) {
    std::vector<Candidate> candidates;
    candidates.reserve(store().count());
    store().for_each_entry([&](const BufferStore::EntryView& e) {
      candidates.push_back(
          {e.id, e.bytes, e.last_activity, e.long_term, rank_of(e.id)});
    });
    if (candidates.empty()) return {};
    const Candidate& best = *std::min_element(
        candidates.begin(), candidates.end(),
        [](const Candidate& a, const Candidate& b) {
          return more_expendable(a, b);
        });
    if (best.bytes >= need.bytes && need.entries <= 1) {
      return {{best.id}};
    }
    std::sort(candidates.begin(), candidates.end(), more_expendable);
    EvictionPlan plan;
    std::size_t freed_bytes = 0, freed_entries = 0;
    for (const Candidate& c : candidates) {
      if (freed_bytes >= need.bytes && freed_entries >= need.entries) break;
      plan.victims.push_back(c.id);
      freed_bytes += c.bytes;
      ++freed_entries;
    }
    return plan;
  }
  // Fast path for the steady state (incoming message ~= evicted message):
  // one allocation-free linear pass finds the single most expendable entry;
  // if evicting it satisfies the demand, that is the whole plan. Only
  // multi-victim demands (large incoming message, shrunk budget) pay for a
  // snapshot + sort.
  std::optional<Candidate> best;
  store().for_each_entry([&](const BufferStore::EntryView& e) {
    Candidate c{e.id, e.bytes, e.last_activity, e.long_term, 0};
    if (!best || more_expendable(c, *best)) best = c;
  });
  if (!best) return {};
  if (best->bytes >= need.bytes && need.entries <= 1) {
    return {{best->id}};
  }
  std::vector<Candidate> candidates;
  candidates.reserve(store().count());
  store().for_each_entry([&](const BufferStore::EntryView& e) {
    candidates.push_back({e.id, e.bytes, e.last_activity, e.long_term, 0});
  });
  std::sort(candidates.begin(), candidates.end(), more_expendable);
  EvictionPlan plan;
  std::size_t freed_bytes = 0, freed_entries = 0;
  for (const Candidate& c : candidates) {
    if (freed_bytes >= need.bytes && freed_entries >= need.entries) break;
    plan.victims.push_back(c.id);
    freed_bytes += c.bytes;
    ++freed_entries;
  }
  return plan;
}

}  // namespace rrmp::buffer
