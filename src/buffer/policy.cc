#include "buffer/policy.h"

#include <cassert>
#include <stdexcept>

namespace rrmp::buffer {

BufferPolicy::~BufferPolicy() = default;

void BufferPolicy::bind(PolicyEnv* env) {
  if (env == nullptr) throw std::invalid_argument("BufferPolicy::bind: null env");
  if (env_ != nullptr) throw std::logic_error("BufferPolicy::bind: already bound");
  env_ = env;
  on_bound();
}

void BufferPolicy::store(const proto::Data& msg) {
  insert(msg, /*via_handoff=*/false);
}

void BufferPolicy::accept_handoff(const proto::Data& msg) {
  insert(msg, /*via_handoff=*/true);
}

void BufferPolicy::insert(const proto::Data& msg, bool via_handoff) {
  assert(bound());
  auto [it, inserted] = entries_.try_emplace(msg.id);
  if (!inserted) {
    if (via_handoff && !it->second.long_term) {
      // A handed-off copy upgrades a short-term entry: the leaver was a
      // long-term bufferer, so the responsibility transfers to us.
      promote_long_term(it->second);
    }
    return;
  }
  Entry& e = it->second;
  e.data = msg;
  e.stored_at = env_->now();
  e.last_activity = e.stored_at;
  bytes_ += msg.payload.size();
  ++stats_.stored;
  stats_.peak_count = std::max(stats_.peak_count, entries_.size());
  stats_.peak_bytes = std::max(stats_.peak_bytes, bytes_);
  notify(msg.id, BufferEvent::kStored, /*long_term=*/false);
  if (via_handoff) {
    on_handoff_accepted(e);
  } else {
    on_stored(e);
  }
}

void BufferPolicy::on_request_seen(const MessageId& id) {
  Entry* e = find(id);
  if (e == nullptr) return;
  e->last_activity = env_->now();
}

std::vector<proto::Data> BufferPolicy::drain_for_handoff() {
  // Default: transfer only long-term entries (paper §3.2 — "transfers each
  // message in its long-term buffer"). Short-term copies are redundant by
  // definition: requests for them are still being answered region-wide.
  std::vector<MessageId> ids;
  for (const auto& [id, e] : entries_) {
    if (e.long_term) ids.push_back(id);
  }
  std::vector<proto::Data> out;
  out.reserve(ids.size());
  for (const MessageId& id : ids) {
    Entry* e = find(id);
    out.push_back(std::move(e->data));
    discard(id, BufferEvent::kHandedOff);
  }
  return out;
}

std::optional<proto::Data> BufferPolicy::get(const MessageId& id) const {
  auto it = entries_.find(id);
  if (it == entries_.end()) return std::nullopt;
  return it->second.data;
}

bool BufferPolicy::is_long_term(const MessageId& id) const {
  auto it = entries_.find(id);
  return it != entries_.end() && it->second.long_term;
}

void BufferPolicy::force_discard(const MessageId& id) { discard(id); }

BufferPolicy::Entry* BufferPolicy::find(const MessageId& id) {
  auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second;
}

void BufferPolicy::discard(const MessageId& id, BufferEvent reason) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return;
  Entry& e = it->second;
  if (e.timer != 0) {
    env_->cancel(e.timer);
    e.timer = 0;
  }
  bytes_ -= e.data.payload.size();
  stats_.total_buffer_time += env_->now() - e.stored_at;
  bool was_long_term = e.long_term;
  if (reason == BufferEvent::kHandedOff) {
    ++stats_.handed_off;
  } else {
    ++stats_.discarded;
  }
  entries_.erase(it);
  notify(id, reason, was_long_term);
}

void BufferPolicy::promote_long_term(Entry& e) {
  if (e.long_term) return;
  e.long_term = true;
  ++stats_.promoted_long_term;
  notify(e.data.id, BufferEvent::kPromotedLongTerm, /*long_term=*/true);
}

void BufferPolicy::notify(const MessageId& id, BufferEvent ev,
                          bool long_term) {
  if (observer_) observer_(id, ev, long_term);
}

}  // namespace rrmp::buffer
