// Stability-detection baseline (paper §1, Guo & Rhee [8]): members
// periodically exchange message-history information; a message is discarded
// only once every member of the region is known to have received it.
//
// The policy itself is passive — the endpoint runs the history-exchange
// protocol (periodic proto::History multicasts) and a StabilityTracker folds
// the received histories into a per-source stable frontier, then calls
// mark_stable_below(). Safe (never discards a needed message within the
// region) but pays continuous control traffic, which the benchmark harness
// measures against the two-phase scheme's zero overhead.
#pragma once

#include <map>
#include <unordered_map>

#include "buffer/policy.h"
#include "buffer/store.h"

namespace rrmp::buffer {

struct StabilityParams {
  friend bool operator==(const StabilityParams&, const StabilityParams&) = default;
};

class StabilityPolicy final : public RetentionPolicy {
 public:
  StabilityPolicy() = default;
  explicit StabilityPolicy(StabilityParams) {}

  const char* name() const override { return "stability"; }
  bool needs_history_exchange() const override { return true; }

  /// Discard every buffered message from `source` with seq < `stable_below`.
  void mark_stable_below(MemberId source, std::uint64_t stable_below);

  void on_stored(const MessageId&) override {}  // retention by stability only
};

/// Folds proto::History reports into a per-source stability frontier:
/// seq s of source is *stable* when every tracked member reported
/// next_expected > s (or covered s in its bitmap).
class StabilityTracker {
 public:
  /// Record member `m`'s report for one source.
  void update(MemberId m, const proto::SourceHistory& h);

  /// Forget a member (left/crashed) so it no longer holds back the frontier.
  void forget_member(MemberId m);

  /// Smallest seq NOT known stable for `source`, given that `expected`
  /// members must have reported (members that never reported gate stability
  /// at 0). `expected` is the current region view.
  std::uint64_t stable_below(MemberId source,
                             const std::vector<MemberId>& expected) const;

 private:
  // source -> (member -> highest prefix received, i.e. next_expected
  // extended through the contiguous part of the bitmap)
  std::map<MemberId, std::unordered_map<MemberId, std::uint64_t>> frontier_;
};

}  // namespace rrmp::buffer
