// BufferStore: the single concrete storage layer behind every retention
// policy (Buffer API v2).
//
// One store per member. It owns:
//   - ordered flat storage (sorted vector keyed by MessageId) of entries
//     whose payloads are refcounted SharedBytes — iteration order is id
//     order, deterministic across runs and shard counts;
//   - bytes/count accounting in wire-encoded Data-frame bytes (the same
//     definition the traffic stats use; see proto::encoded_size overloads);
//   - duplicate suppression and the handoff-upgrade rule;
//   - observer notification for the metrics pipeline;
//   - handoff drains on graceful leave;
//   - a per-member BufferBudget with an explicit admission + eviction
//     protocol: when an insert would exceed the budget the bound
//     RetentionPolicy picks an EvictionPlan (deterministic tie-break by
//     MessageId); a message larger than the whole budget is rejected.
//
// The store drives its RetentionPolicy: store()/accept_handoff() call the
// policy's on_stored/on_handoff hooks after accounting and observer
// notification, and on_request_seen() refreshes the entry's activity clock
// before forwarding the feedback. Policies mutate retention state only
// through the store's mutators (touch / promote_long_term / discard /
// set_entry_timer), never by holding entry references: entries move when
// the flat storage grows.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "buffer/budget.h"
#include "buffer/coordination.h"
#include "buffer/policy.h"
#include "proto/messages.h"

namespace rrmp::buffer {

/// Outcome of an admission attempt.
enum class Admission {
  kStored,     // a new entry was created (evicting others if needed)
  kDuplicate,  // already present (a handoff may have upgraded it)
  kRejected,   // budget cannot ever fit this message; nothing stored
};

class BufferStore {
 public:
  /// The store owns its policy. `budget` defaults to unlimited and
  /// `coordination` to disabled, which reproduces the original unbounded,
  /// uncoordinated policies bit-for-bit.
  explicit BufferStore(std::unique_ptr<RetentionPolicy> policy,
                       BufferBudget budget = {},
                       CoordinationParams coordination = {});
  ~BufferStore();

  BufferStore(const BufferStore&) = delete;
  BufferStore& operator=(const BufferStore&) = delete;

  /// Must be called exactly once before any other method; binds the policy.
  void bind(PolicyEnv* env);

  /// Observer for store/discard/promotion/eviction events (wired to
  /// metrics). `long_term` reflects the entry's phase at event time.
  using Observer =
      std::function<void(const MessageId&, BufferEvent, bool long_term)>;
  void set_observer(Observer obs) { observer_ = std::move(obs); }

  RetentionPolicy& policy() { return *policy_; }
  const RetentionPolicy& policy() const { return *policy_; }
  const char* name() const { return policy_->name(); }

  // --- admission ---------------------------------------------------------

  /// A message was received; admit it (the policy decides for how long it
  /// stays). Duplicate stores of an id already present are ignored.
  Admission store(const proto::Data& msg);

  /// Receive a long-term buffer transfer from a leaving member (§3.2). A
  /// handed-off copy upgrades an existing short-term entry to long-term.
  Admission accept_handoff(const proto::Data& msg);

  /// Feedback: a retransmission request for `id` was observed (paper §3.1).
  /// Refreshes the entry's activity clock, then forwards to the policy.
  /// No-op when `id` is not currently buffered.
  void on_request_seen(const MessageId& id);

  /// Remove and return the messages to transfer when this member leaves
  /// (long-term entries; the whole archive when the policy says so).
  std::vector<proto::Data> drain_for_handoff();

  // --- queries -----------------------------------------------------------

  bool has(const MessageId& id) const { return find(id) != nullptr; }
  std::optional<proto::Data> get(const MessageId& id) const;
  bool is_long_term(const MessageId& id) const;

  std::size_t count() const { return entries_.size(); }
  std::size_t bytes() const { return bytes_; }
  const BufferStats& stats() const { return stats_; }
  const BufferBudget& budget() const { return budget_; }
  BudgetState budget_state() const { return {bytes_, entries_.size(), budget_}; }

  // --- region coordination (cooperative budgets) -------------------------

  const CoordinationParams& coordination() const { return coordination_; }
  bool coordination_enabled() const { return coordination_.enabled; }

  /// Neighbor digest view; fed by the endpoint's BufferDigest handler and
  /// consulted by cost-aware eviction and the shed path.
  DigestTable& digests() { return digests_; }
  const DigestTable& digests() const { return digests_; }

  /// Approximate region replica count of a *buffered* entry: our copy plus
  /// every neighbor currently advertising `id`. Returns 0 when `id` is not
  /// buffered here.
  std::size_t known_replicas(const MessageId& id) const;

  /// This member's digest advertisement: bytes in use plus the held id set
  /// compressed into maximal per-source runs (entries are id-sorted, so one
  /// ascending pass suffices).
  proto::BufferDigest build_digest() const;

  /// Transport hook for the shed path: called with a sole-copy victim and
  /// the chosen least-loaded neighbor; returns true once the copy was sent
  /// (the store then records the departure as a shed, not an eviction).
  /// Unset or returning false falls back to a plain eviction.
  using ShedHandler = std::function<bool(const proto::Data&, MemberId target)>;
  void set_shed_handler(ShedHandler fn) { shed_handler_ = std::move(fn); }

  /// Read-only snapshot of one entry's retention state.
  struct EntryView {
    MessageId id;
    std::size_t bytes = 0;  // accounted (wire-encoded) size
    TimePoint stored_at;
    TimePoint last_activity;
    bool long_term = false;
    std::uint64_t timer = 0;  // pending policy timer, 0 if none
  };
  std::optional<EntryView> view(const MessageId& id) const;

  /// Visit every entry in ascending id order (deterministic). `fn` must not
  /// mutate the store; collect ids first, then mutate.
  void for_each_entry(const std::function<void(const EntryView&)>& fn) const;

  // --- policy-facing mutators -------------------------------------------

  /// Refresh `id`'s activity clock to now. No-op if absent.
  void touch(const MessageId& id);

  /// Move `id` into the long-term phase (idempotent). No-op if absent.
  void promote_long_term(const MessageId& id);

  /// Remove an entry, cancel its pending timer, run accounting, notify the
  /// observer. Safe if absent.
  void discard(const MessageId& id,
               BufferEvent reason = BufferEvent::kDiscarded);

  /// Install `timer` as the entry's pending policy timer. The store cancels
  /// it automatically when the entry departs (discard/evict/handoff), so a
  /// policy never leaks a slab handle. Overwrites without cancelling — the
  /// policy owns the old handle's lifecycle until it hands it over.
  void set_entry_timer(const MessageId& id, std::uint64_t timer);
  std::uint64_t entry_timer(const MessageId& id) const;

  /// Test/harness hook: drop `id` immediately (as if idle-discarded).
  void force_discard(const MessageId& id) { discard(id); }

 private:
  struct Entry {
    proto::Data data;
    std::size_t bytes = 0;  // accounted size, fixed at admission
    TimePoint stored_at;
    TimePoint last_activity;
    bool long_term = false;
    /// Arrived via a leave-time Handoff or a Shed (or was upgraded by
    /// one): such a copy is a transferred responsibility, and the shed
    /// path refuses to bounce it onward until it has aged one digest
    /// period (anti-ping-pong damping, see remove_victim).
    bool via_handoff = false;
    std::uint64_t timer = 0;  // pending policy timer for this entry, if any
  };

  Admission insert(const proto::Data& msg, bool via_handoff);
  /// Evict per the policy's plan until `msg` fits. Returns false when the
  /// message can never fit (larger than the whole budget).
  bool make_room(std::size_t incoming_bytes);
  /// Remove one budget-pressure victim: shed sole copies to a neighbor when
  /// coordination allows it, evict otherwise.
  void remove_victim(const MessageId& victim);
  Entry* find(const MessageId& id);
  const Entry* find(const MessageId& id) const;
  void notify(const MessageId& id, BufferEvent ev, bool long_term);
  static EntryView view_of(const Entry& e);

  std::unique_ptr<RetentionPolicy> policy_;
  BufferBudget budget_;
  CoordinationParams coordination_;
  DigestTable digests_;
  ShedHandler shed_handler_;
  PolicyEnv* env_ = nullptr;
  Observer observer_;
  std::vector<Entry> entries_;  // sorted by data.id: deterministic iteration
  std::size_t bytes_ = 0;
  BufferStats stats_;
};

}  // namespace rrmp::buffer
