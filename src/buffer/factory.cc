#include "buffer/factory.h"

#include <stdexcept>

namespace rrmp::buffer {

const char* to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kTwoPhase: return "two-phase";
    case PolicyKind::kFixedTime: return "fixed-time";
    case PolicyKind::kBufferEverything: return "buffer-everything";
    case PolicyKind::kHashBased: return "hash-based";
    case PolicyKind::kStability: return "stability";
  }
  return "unknown";
}

std::unique_ptr<BufferPolicy> make_policy(PolicyKind kind,
                                          const PolicyParams& params) {
  switch (kind) {
    case PolicyKind::kTwoPhase:
      return std::make_unique<TwoPhasePolicy>(params.two_phase);
    case PolicyKind::kFixedTime:
      return std::make_unique<FixedTimePolicy>(params.fixed_ttl);
    case PolicyKind::kBufferEverything:
      return std::make_unique<BufferEverythingPolicy>();
    case PolicyKind::kHashBased:
      return std::make_unique<HashBasedPolicy>(params.hash);
    case PolicyKind::kStability:
      return std::make_unique<StabilityPolicy>();
  }
  throw std::invalid_argument("make_policy: unknown kind");
}

}  // namespace rrmp::buffer
