#include "buffer/factory.h"

#include <sstream>
#include <stdexcept>

namespace rrmp::buffer {
namespace {

std::string duration_str(Duration d) {
  if (d.is_infinite()) return "inf";
  std::ostringstream os;
  if (d.us() % 1000 == 0) {
    os << d.us() / 1000 << "ms";
  } else {
    os << d.us() << "us";
  }
  return os.str();
}

std::string number_str(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

const char* to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kTwoPhase: return "two-phase";
    case PolicyKind::kFixedTime: return "fixed-time";
    case PolicyKind::kBufferEverything: return "buffer-everything";
    case PolicyKind::kHashBased: return "hash-based";
    case PolicyKind::kStability: return "stability";
  }
  return "unknown";
}

PolicyKind kind_of(const PolicySpec& spec) {
  return std::visit(
      [](const auto& params) {
        using T = std::decay_t<decltype(params)>;
        if constexpr (std::is_same_v<T, TwoPhaseParams>) {
          return PolicyKind::kTwoPhase;
        } else if constexpr (std::is_same_v<T, FixedTimeParams>) {
          return PolicyKind::kFixedTime;
        } else if constexpr (std::is_same_v<T, BufferEverythingParams>) {
          return PolicyKind::kBufferEverything;
        } else if constexpr (std::is_same_v<T, HashBasedParams>) {
          return PolicyKind::kHashBased;
        } else {
          return PolicyKind::kStability;
        }
      },
      spec);
}

PolicySpec default_spec(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kTwoPhase: return TwoPhaseParams{};
    case PolicyKind::kFixedTime: return FixedTimeParams{};
    case PolicyKind::kBufferEverything: return BufferEverythingParams{};
    case PolicyKind::kHashBased: return HashBasedParams{};
    case PolicyKind::kStability: return StabilityParams{};
  }
  throw std::invalid_argument("default_spec: unknown kind");
}

bool kind_from_name(const std::string& name, PolicyKind& out) {
  for (PolicyKind kind :
       {PolicyKind::kTwoPhase, PolicyKind::kFixedTime,
        PolicyKind::kBufferEverything, PolicyKind::kHashBased,
        PolicyKind::kStability}) {
    if (name == to_string(kind)) {
      out = kind;
      return true;
    }
  }
  return false;
}

std::string describe(const PolicySpec& spec) {
  return std::visit(
      [](const auto& p) -> std::string {
        using T = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<T, TwoPhaseParams>) {
          return "two-phase(T=" + duration_str(p.idle_threshold) +
                 ", C=" + number_str(p.C) +
                 ", ttl=" + duration_str(p.long_term_ttl) + ")";
        } else if constexpr (std::is_same_v<T, FixedTimeParams>) {
          return "fixed-time(ttl=" + duration_str(p.ttl) + ")";
        } else if constexpr (std::is_same_v<T, BufferEverythingParams>) {
          return "buffer-everything()";
        } else if constexpr (std::is_same_v<T, HashBasedParams>) {
          return "hash-based(k=" + std::to_string(p.k) +
                 ", grace=" + duration_str(p.grace) +
                 ", ttl=" + duration_str(p.bufferer_ttl) + ")";
        } else {
          return "stability()";
        }
      },
      spec);
}

std::string describe(const CoordinationParams& coordination) {
  if (!coordination.enabled) return "uncoordinated";
  return "coordinated(digest=" + duration_str(coordination.digest_interval) +
         ", redundancy>=" + std::to_string(coordination.redundancy_threshold) +
         ", shed=" + (coordination.shed_sole_copies ? "on" : "off") + ")";
}

std::unique_ptr<RetentionPolicy> make_policy(const PolicySpec& spec) {
  return std::visit(
      [](const auto& params) -> std::unique_ptr<RetentionPolicy> {
        using T = std::decay_t<decltype(params)>;
        if constexpr (std::is_same_v<T, TwoPhaseParams>) {
          return std::make_unique<TwoPhasePolicy>(params);
        } else if constexpr (std::is_same_v<T, FixedTimeParams>) {
          return std::make_unique<FixedTimePolicy>(params);
        } else if constexpr (std::is_same_v<T, BufferEverythingParams>) {
          return std::make_unique<BufferEverythingPolicy>(params);
        } else if constexpr (std::is_same_v<T, HashBasedParams>) {
          return std::make_unique<HashBasedPolicy>(params);
        } else {
          return std::make_unique<StabilityPolicy>(params);
        }
      },
      spec);
}

std::unique_ptr<BufferStore> make_store(const PolicySpec& spec,
                                        BufferBudget budget,
                                        CoordinationParams coordination) {
  return std::make_unique<BufferStore>(make_policy(spec), budget,
                                       coordination);
}

}  // namespace rrmp::buffer
