// RMTP-style repair-server policy (paper §1): buffer every message for the
// whole session. "Feasible only if the size of data transmitted in the
// current session has a reasonable limit" — the benchmark harness shows its
// buffer occupancy growing without bound on long-lived streams, and the
// capacity-sweep experiments show what a byte budget does to it.
#pragma once

#include "buffer/policy.h"

namespace rrmp::buffer {

struct BufferEverythingParams {
  friend bool operator==(const BufferEverythingParams&,
                         const BufferEverythingParams&) = default;
};

class BufferEverythingPolicy final : public RetentionPolicy {
 public:
  BufferEverythingPolicy() = default;
  explicit BufferEverythingPolicy(BufferEverythingParams) {}

  const char* name() const override { return "buffer-everything"; }

  /// A leaving repair server hands its entire archive over.
  bool handoff_includes_short_term() const override { return true; }

  void on_stored(const MessageId&) override {}  // never discards
};

}  // namespace rrmp::buffer
