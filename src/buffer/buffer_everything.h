// RMTP-style repair-server policy (paper §1): buffer every message for the
// whole session. "Feasible only if the size of data transmitted in the
// current session has a reasonable limit" — the benchmark harness shows its
// buffer occupancy growing without bound on long-lived streams.
#pragma once

#include "buffer/policy.h"

namespace rrmp::buffer {

class BufferEverythingPolicy final : public BufferPolicy {
 public:
  const char* name() const override { return "buffer-everything"; }

  /// A leaving repair server hands its entire archive over.
  std::vector<proto::Data> drain_for_handoff() override;

 protected:
  void on_stored(Entry&) override {}  // never discards
};

}  // namespace rrmp::buffer
