// The paper's two-phase buffering algorithm (§3.1–§3.2).
//
// Phase 1 (feedback-based short-term buffering): a stored message stays
// buffered until no retransmission request for it has been observed for the
// idle threshold T. The probability that a member sees no request while a
// fraction p of an n-member region misses the message is
// (1 - 1/(n-1))^(np) ≈ e^(-p), so T of silence implies the region has it.
//
// Phase 2 (randomized long-term buffering): when a message becomes idle the
// member keeps it with probability P = C / n, so the region's long-term
// bufferer count is Binomial(n, C/n) ≈ Poisson(C) and the per-member load is
// spread evenly. A long-term copy is eventually discarded after
// long_term_ttl ("has not been used for such a long time that it is highly
// unlikely any member may still need it"); a request for a long-term copy
// refreshes that clock.
//
// On a voluntary leave, the store's drain_for_handoff() hands long-term
// entries to randomly selected region members so no message becomes
// unrecoverable.
#pragma once

#include "buffer/policy.h"
#include "buffer/store.h"

namespace rrmp::buffer {

struct TwoPhaseParams {
  /// Idle threshold T; the paper uses 4x the maximum intra-region RTT.
  Duration idle_threshold = Duration::millis(40);
  /// Expected number of long-term bufferers per region.
  double C = 6.0;
  /// Eventual discard of idle long-term copies; infinite() disables.
  Duration long_term_ttl = Duration::infinite();

  friend bool operator==(const TwoPhaseParams&, const TwoPhaseParams&) = default;
};

class TwoPhasePolicy final : public RetentionPolicy {
 public:
  explicit TwoPhasePolicy(TwoPhaseParams params) : params_(params) {}

  const char* name() const override { return "two-phase"; }
  const TwoPhaseParams& params() const { return params_; }

  void on_stored(const MessageId& id) override;
  void on_handoff(const MessageId& id) override;
  void on_request_seen(const MessageId& id) override;

 private:
  void arm_idle_check(const MessageId& id);
  void idle_check(const MessageId& id);
  void arm_long_term_ttl(const MessageId& id);
  void long_term_check(const MessageId& id);

  TwoPhaseParams params_;
};

}  // namespace rrmp::buffer
