// Construction of buffer policies by kind, used by the harness, benches and
// examples to sweep all five schemes through identical scenarios.
#pragma once

#include <memory>
#include <string>

#include "buffer/buffer_everything.h"
#include "buffer/fixed_time.h"
#include "buffer/hash_based.h"
#include "buffer/policy.h"
#include "buffer/stability.h"
#include "buffer/two_phase.h"

namespace rrmp::buffer {

enum class PolicyKind {
  kTwoPhase,
  kFixedTime,
  kBufferEverything,
  kHashBased,
  kStability,
};

const char* to_string(PolicyKind kind);

/// Union of the per-policy knobs; each policy reads only its own fields.
struct PolicyParams {
  TwoPhaseParams two_phase;
  Duration fixed_ttl = Duration::millis(100);
  HashBasedParams hash;
};

std::unique_ptr<BufferPolicy> make_policy(PolicyKind kind,
                                          const PolicyParams& params = {});

}  // namespace rrmp::buffer
