// Construction of retention policies and buffer stores, used by the
// harness, benches and examples to sweep all five schemes through identical
// scenarios.
//
// Buffer API v2: the old PolicyParams union (all policies' knobs mashed
// into one struct) is replaced by PolicySpec, a std::variant of per-policy
// param structs. A spec is self-describing — the active alternative IS the
// chosen policy, so a config can be printed (describe()) and can never
// carry stale knobs for a policy it does not select.
#pragma once

#include <memory>
#include <string>
#include <variant>

#include "buffer/budget.h"
#include "buffer/buffer_everything.h"
#include "buffer/fixed_time.h"
#include "buffer/hash_based.h"
#include "buffer/policy.h"
#include "buffer/stability.h"
#include "buffer/store.h"
#include "buffer/two_phase.h"

namespace rrmp::buffer {

enum class PolicyKind {
  kTwoPhase,
  kFixedTime,
  kBufferEverything,
  kHashBased,
  kStability,
};

const char* to_string(PolicyKind kind);

/// Self-describing policy selection: the active alternative names the
/// policy, its fields are that policy's knobs.
using PolicySpec = std::variant<TwoPhaseParams, FixedTimeParams,
                                BufferEverythingParams, HashBasedParams,
                                StabilityParams>;

PolicyKind kind_of(const PolicySpec& spec);
inline const char* to_string(const PolicySpec& spec) {
  return to_string(kind_of(spec));
}

/// Paper-default spec for `kind` (e.g. for sweeping all five schemes).
PolicySpec default_spec(PolicyKind kind);

/// Parse a policy name ("two-phase", "hash-based", ...) to its kind.
bool kind_from_name(const std::string& name, PolicyKind& out);

/// Human-readable one-liner, e.g. "two-phase(T=40ms, C=6, ttl=inf)" —
/// printed by scenario_cli's run header and useful in logs.
std::string describe(const PolicySpec& spec);

/// Companion one-liner for the coordination knobs, e.g.
/// "coordinated(digest=20ms, redundancy>=2, shed=on)" or "uncoordinated".
std::string describe(const CoordinationParams& coordination);

std::unique_ptr<RetentionPolicy> make_policy(const PolicySpec& spec);

/// A store wired to a fresh policy for `spec` under `budget` with the given
/// coordination knobs (still unbound; the owner calls bind()).
std::unique_ptr<BufferStore> make_store(const PolicySpec& spec,
                                        BufferBudget budget = {},
                                        CoordinationParams coordination = {});

}  // namespace rrmp::buffer
