// The authors' earlier *deterministic* buffering scheme (paper §1, §3.4;
// Ozkasap et al. [11]): a hash of (member address, message id) selects which
// members buffer a message. Any member can recompute the bufferer set and
// request retransmissions from it directly — no search needed — at the cost
// of hashing the whole membership per message and of awkward behaviour under
// membership dynamics (§3.4: "it is not clear how [handoff] can be done with
// a deterministic algorithm").
//
// Selection is rendezvous (highest-random-weight) hashing: the k members
// with the smallest hash(member, id) buffer the message. Every member of a
// region computes the same set from the same view.
#pragma once

#include <vector>

#include "buffer/policy.h"
#include "buffer/store.h"

namespace rrmp::buffer {

/// The k members of `members` with the smallest hash(member, id); the common
/// lookup used by both the policy (should *I* buffer?) and requesters (who
/// buffers?). Deterministic in (id, members, k); independent of member order.
std::vector<MemberId> hash_bufferers(const MessageId& id,
                                     const std::vector<MemberId>& members,
                                     std::size_t k);

/// The score function behind hash_bufferers, exposed for tests.
std::uint64_t hash_score(const MessageId& id, MemberId member);

/// Reusable rendezvous-hash selector: identical results to hash_bufferers,
/// but the score and output buffers persist across calls, so per-message
/// selection on the hot path (HashBasedPolicy::on_stored, hash-direct
/// request targeting) stops allocating two vectors per message.
class BuffererSelector {
 public:
  /// Selects into an internal buffer; the reference is valid until the next
  /// select() call on this instance.
  const std::vector<MemberId>& select(const MessageId& id,
                                      const std::vector<MemberId>& members,
                                      std::size_t k);

  /// True iff `member` is in hash_bufferers(id, members, k) — the policy's
  /// "should I buffer?" test, without materializing the selected set's order.
  bool selects(const MessageId& id, const std::vector<MemberId>& members,
               std::size_t k, MemberId member);

 private:
  std::vector<std::pair<std::uint64_t, MemberId>> scored_;
  std::vector<MemberId> out_;
};

struct HashBasedParams {
  /// Bufferers per region per message.
  std::size_t k = 6;
  /// How long non-selected members keep a message to serve the initial wave
  /// of recovery traffic before the hashed set takes over.
  Duration grace = Duration::millis(40);
  /// Eventual discard at the selected bufferers; infinite() disables.
  Duration bufferer_ttl = Duration::infinite();

  friend bool operator==(const HashBasedParams&, const HashBasedParams&) = default;
};

class HashBasedPolicy final : public RetentionPolicy {
 public:
  explicit HashBasedPolicy(HashBasedParams params) : params_(params) {}

  const char* name() const override { return "hash-based"; }
  const HashBasedParams& params() const { return params_; }

  /// Number of score evaluations performed so far (the "computation
  /// overhead" of §3.4; reported by the baseline benchmark).
  std::uint64_t hash_evaluations() const { return hash_evaluations_; }

  void on_stored(const MessageId& id) override;

  /// A transferred copy (leave-time handoff or coordination shed) is a
  /// responsibility we accept even though the hash set does not select us
  /// — the sender chose us by load, not by hash, and may have discarded
  /// the region's last copy on the strength of it. Without this override
  /// the default (on_stored) would arm the non-bufferer grace timer and
  /// quietly destroy the copy the transfer was meant to preserve (the
  /// §3.4 awkwardness of handoff under deterministic schemes, resolved in
  /// favour of keeping the copy).
  void on_handoff(const MessageId& id) override;

 private:
  void grace_expired(const MessageId& id);

  HashBasedParams params_;
  BuffererSelector selector_;  // reused across stores: no per-message allocs
  std::uint64_t hash_evaluations_ = 0;
};

}  // namespace rrmp::buffer
