// Bimodal Multicast's simple buffering policy (paper §2, [3]): every member
// buffers every message for a fixed amount of time, regardless of how the
// initial multicast went. The baseline the two-phase scheme improves on.
#pragma once

#include "buffer/policy.h"

namespace rrmp::buffer {

class FixedTimePolicy final : public BufferPolicy {
 public:
  explicit FixedTimePolicy(Duration ttl) : ttl_(ttl) {}

  const char* name() const override { return "fixed-time"; }
  Duration ttl() const { return ttl_; }

 protected:
  void on_stored(Entry& e) override;

 private:
  Duration ttl_;
};

}  // namespace rrmp::buffer
