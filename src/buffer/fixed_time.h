// Bimodal Multicast's simple buffering policy (paper §2, [3]): every member
// buffers every message for a fixed amount of time, regardless of how the
// initial multicast went. The baseline the two-phase scheme improves on.
#pragma once

#include "buffer/policy.h"
#include "buffer/store.h"

namespace rrmp::buffer {

struct FixedTimeParams {
  /// Every message is buffered for exactly this long.
  Duration ttl = Duration::millis(100);

  friend bool operator==(const FixedTimeParams&, const FixedTimeParams&) = default;
};

class FixedTimePolicy final : public RetentionPolicy {
 public:
  explicit FixedTimePolicy(FixedTimeParams params) : params_(params) {}
  explicit FixedTimePolicy(Duration ttl) : params_{ttl} {}

  const char* name() const override { return "fixed-time"; }
  const FixedTimeParams& params() const { return params_; }
  Duration ttl() const { return params_.ttl; }

  void on_stored(const MessageId& id) override;

 private:
  FixedTimeParams params_;
};

}  // namespace rrmp::buffer
