#include "buffer/store.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "proto/codec.h"

namespace rrmp::buffer {
namespace {

struct IdLess {
  bool operator()(const auto& entry, const MessageId& id) const {
    return entry.data.id < id;
  }
};

}  // namespace

BufferStore::BufferStore(std::unique_ptr<RetentionPolicy> policy,
                         BufferBudget budget, CoordinationParams coordination)
    : policy_(std::move(policy)), budget_(budget), coordination_(coordination) {
  if (policy_ == nullptr) {
    throw std::invalid_argument("BufferStore: null policy");
  }
}

BufferStore::~BufferStore() = default;

void BufferStore::bind(PolicyEnv* env) {
  if (env == nullptr) throw std::invalid_argument("BufferStore::bind: null env");
  if (env_ != nullptr) throw std::logic_error("BufferStore::bind: already bound");
  env_ = env;
  policy_->bind(this, env);
}

Admission BufferStore::store(const proto::Data& msg) {
  return insert(msg, /*via_handoff=*/false);
}

Admission BufferStore::accept_handoff(const proto::Data& msg) {
  return insert(msg, /*via_handoff=*/true);
}

Admission BufferStore::insert(const proto::Data& msg, bool via_handoff) {
  assert(env_ != nullptr);
  auto it = std::lower_bound(entries_.begin(), entries_.end(), msg.id, IdLess{});
  if (it != entries_.end() && it->data.id == msg.id) {
    if (via_handoff && !it->long_term) {
      // A handed-off copy upgrades a short-term entry: the leaver was a
      // long-term bufferer, so the responsibility transfers to us.
      it->via_handoff = true;
      promote_long_term(msg.id);
    }
    return Admission::kDuplicate;
  }
  std::size_t size = proto::encoded_size(msg);
  if (!make_room(size)) {
    ++stats_.rejected;
    return Admission::kRejected;
  }
  // make_room only mutates through discard(), which keeps the vector sorted,
  // so re-searching yields the (possibly shifted) insertion point.
  it = std::lower_bound(entries_.begin(), entries_.end(), msg.id, IdLess{});
  it = entries_.insert(it, Entry{});
  Entry& e = *it;
  e.data = msg;
  e.bytes = size;
  e.stored_at = env_->now();
  e.last_activity = e.stored_at;
  e.via_handoff = via_handoff;
  bytes_ += size;
  ++stats_.stored;
  stats_.peak_count = std::max(stats_.peak_count, entries_.size());
  stats_.peak_bytes = std::max(stats_.peak_bytes, bytes_);
  notify(msg.id, BufferEvent::kStored, /*long_term=*/false);
  if (via_handoff) {
    policy_->on_handoff(msg.id);
  } else {
    policy_->on_stored(msg.id);
  }
  return Admission::kStored;
}

bool BufferStore::make_room(std::size_t incoming_bytes) {
  if (budget_.unlimited()) return true;
  if (budget_.max_bytes != 0 && incoming_bytes > budget_.max_bytes) {
    return false;  // can never fit, even with an empty buffer
  }
  EvictionDemand need;
  if (budget_.max_bytes != 0 && bytes_ + incoming_bytes > budget_.max_bytes) {
    need.bytes = bytes_ + incoming_bytes - budget_.max_bytes;
  }
  if (budget_.max_count != 0 && entries_.size() + 1 > budget_.max_count) {
    need.entries = entries_.size() + 1 - budget_.max_count;
  }
  if (need.bytes == 0 && need.entries == 0) return true;

  auto apply_plan = [this, &need](const EvictionPlan& plan) {
    for (const MessageId& victim : plan.victims) {
      if (need.bytes == 0 && need.entries == 0) break;
      const Entry* e = find(victim);
      if (e == nullptr) continue;  // plan may name already-departed ids
      std::size_t freed = e->bytes;
      remove_victim(victim);
      need.bytes -= std::min(need.bytes, freed);
      need.entries -= std::min<std::size_t>(need.entries, 1);
    }
  };
  apply_plan(policy_->pick_victims(need));
  if (need.bytes != 0 || need.entries != 0) {
    // The policy's plan under-delivered (custom policies may hold entries
    // back). Fall back to the deterministic base ordering so admission
    // never fails for a message that fits an empty budget.
    apply_plan(policy_->RetentionPolicy::pick_victims(need));
  }
  return need.bytes == 0 && need.entries == 0;
}

void BufferStore::remove_victim(const MessageId& victim) {
  // A sole copy under pressure moves to the least-loaded advertised
  // neighbor instead of dying, when coordination permits and a transport is
  // wired up. Everything else (and every fallback) is a plain eviction.
  //
  // Anti-ping-pong damping: a copy that itself arrived via handoff/shed
  // must age one digest period before it can be shed onward. Without the
  // gate, two saturated members ping-pong transferred sole copies at
  // network RTT rate forever; with it, every copy makes at most one hop
  // per digest period after its first, and each hop re-decides against
  // fresh digests. Locally-received copies shed freely — the first hop is
  // where the recovery value is, and the receiver admits them as
  // handoff-provenance, closing the cycle.
  if (coordination_.enabled && coordination_.shed_sole_copies &&
      shed_handler_ && digests_.holders_of(victim) == 0) {
    const Entry* e = find(victim);
    if (e != nullptr &&
        (!e->via_handoff ||
         env_->now() - e->stored_at >= coordination_.digest_interval)) {
      MemberId target =
          digests_.least_loaded(env_->region_members(), env_->self());
      if (target != kInvalidMember && shed_handler_(e->data, target)) {
        discard(victim, BufferEvent::kShedHandoff);
        return;
      }
    }
  }
  discard(victim, BufferEvent::kEvicted);
}

std::size_t BufferStore::known_replicas(const MessageId& id) const {
  if (find(id) == nullptr) return 0;
  return 1 + digests_.holders_of(id);
}

proto::BufferDigest BufferStore::build_digest() const {
  proto::BufferDigest d;
  d.member = env_->self();
  d.bytes_in_use = bytes_;
  for (const Entry& e : entries_) {  // ascending id order
    if (!d.ranges.empty()) {
      proto::DigestRange& last = d.ranges.back();
      if (last.source == e.data.id.source &&
          e.data.id.seq == last.first_seq + last.count) {
        ++last.count;
        continue;
      }
    }
    d.ranges.push_back({e.data.id.source, e.data.id.seq, 1});
  }
  return d;
}

void BufferStore::on_request_seen(const MessageId& id) {
  Entry* e = find(id);
  if (e == nullptr) return;
  e->last_activity = env_->now();
  policy_->on_request_seen(id);
}

std::vector<proto::Data> BufferStore::drain_for_handoff() {
  // Default: transfer only long-term entries (paper §3.2 — "transfers each
  // message in its long-term buffer"). Short-term copies are redundant by
  // definition: requests for them are still being answered region-wide.
  // Repair-server policies hand over the whole archive instead.
  bool all = policy_->handoff_includes_short_term();
  std::vector<MessageId> ids;
  for (const Entry& e : entries_) {
    if (all || e.long_term) ids.push_back(e.data.id);
  }
  std::vector<proto::Data> out;
  out.reserve(ids.size());
  for (const MessageId& id : ids) {
    Entry* e = find(id);
    out.push_back(std::move(e->data));
    discard(id, BufferEvent::kHandedOff);
  }
  return out;
}

std::optional<proto::Data> BufferStore::get(const MessageId& id) const {
  const Entry* e = find(id);
  if (e == nullptr) return std::nullopt;
  return e->data;
}

bool BufferStore::is_long_term(const MessageId& id) const {
  const Entry* e = find(id);
  return e != nullptr && e->long_term;
}

std::optional<BufferStore::EntryView> BufferStore::view(
    const MessageId& id) const {
  const Entry* e = find(id);
  if (e == nullptr) return std::nullopt;
  return view_of(*e);
}

void BufferStore::for_each_entry(
    const std::function<void(const EntryView&)>& fn) const {
  for (const Entry& e : entries_) fn(view_of(e));
}

BufferStore::EntryView BufferStore::view_of(const Entry& e) {
  return EntryView{e.data.id, e.bytes,     e.stored_at,
                   e.last_activity, e.long_term, e.timer};
}

void BufferStore::touch(const MessageId& id) {
  Entry* e = find(id);
  if (e != nullptr) e->last_activity = env_->now();
}

void BufferStore::promote_long_term(const MessageId& id) {
  Entry* e = find(id);
  if (e == nullptr || e->long_term) return;
  e->long_term = true;
  ++stats_.promoted_long_term;
  notify(id, BufferEvent::kPromotedLongTerm, /*long_term=*/true);
}

void BufferStore::discard(const MessageId& id, BufferEvent reason) {
  auto it = std::lower_bound(entries_.begin(), entries_.end(), id, IdLess{});
  if (it == entries_.end() || it->data.id != id) return;
  Entry& e = *it;
  if (e.timer != 0) {
    env_->cancel(e.timer);
    e.timer = 0;
  }
  bytes_ -= e.bytes;
  stats_.total_buffer_time += env_->now() - e.stored_at;
  bool was_long_term = e.long_term;
  switch (reason) {
    case BufferEvent::kHandedOff: ++stats_.handed_off; break;
    case BufferEvent::kEvicted: ++stats_.evicted; break;
    case BufferEvent::kShedHandoff: ++stats_.shed; break;
    default: ++stats_.discarded; break;
  }
  entries_.erase(it);
  notify(id, reason, was_long_term);
}

void BufferStore::set_entry_timer(const MessageId& id, std::uint64_t timer) {
  Entry* e = find(id);
  if (e != nullptr) e->timer = timer;
}

std::uint64_t BufferStore::entry_timer(const MessageId& id) const {
  const Entry* e = find(id);
  return e == nullptr ? 0 : e->timer;
}

BufferStore::Entry* BufferStore::find(const MessageId& id) {
  auto it = std::lower_bound(entries_.begin(), entries_.end(), id, IdLess{});
  return (it != entries_.end() && it->data.id == id) ? &*it : nullptr;
}

const BufferStore::Entry* BufferStore::find(const MessageId& id) const {
  auto it = std::lower_bound(entries_.begin(), entries_.end(), id, IdLess{});
  return (it != entries_.end() && it->data.id == id) ? &*it : nullptr;
}

void BufferStore::notify(const MessageId& id, BufferEvent ev, bool long_term) {
  if (observer_) observer_(id, ev, long_term);
}

}  // namespace rrmp::buffer
