// Buffer-management policy framework.
//
// Every RRMP member owns one BufferPolicy. The endpoint stores each received
// message into the policy and reports retransmission-request *feedback*; the
// policy alone decides how long messages stay buffered. Concrete policies:
//
//   TwoPhasePolicy       — the paper's contribution (§3.1–§3.2): feedback-
//                          based short-term buffering + randomized long-term
//                          buffering with expected C bufferers per region.
//   FixedTimePolicy      — Bimodal Multicast's simple policy: every message
//                          buffered for a fixed time (§2, [3]).
//   BufferEverythingPolicy — RMTP-style repair server: keep everything (§1).
//   HashBasedPolicy      — the authors' earlier deterministic scheme [11]:
//                          hash(member, message) selects k bufferers.
//   StabilityPolicy      — stability-detection baseline [8]: discard when
//                          the whole region is known to have the message.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "common/random.h"
#include "common/time.h"
#include "common/types.h"
#include "proto/messages.h"

namespace rrmp::buffer {

/// Host services a policy may use; implemented by the protocol endpoint.
class PolicyEnv {
 public:
  virtual ~PolicyEnv() = default;
  virtual TimePoint now() const = 0;
  /// One-shot timer; returns a handle for cancel(). Handle 0 is invalid.
  virtual std::uint64_t schedule(Duration d, std::function<void()> fn) = 0;
  virtual void cancel(std::uint64_t timer) = 0;
  virtual RandomEngine& rng() = 0;
  /// Current size of the member's region (alive members, including self).
  virtual std::size_t region_size() const = 0;
  /// Alive members of the region, including self (for hash-based selection).
  virtual const std::vector<MemberId>& region_members() const = 0;
  virtual MemberId self() const = 0;
};

enum class BufferEvent {
  kStored,             // message entered the buffer
  kPromotedLongTerm,   // survived the idle decision (two-phase) or handoff
  kDiscarded,          // message left the buffer
  kHandedOff,          // message left via handoff to another member
};

struct BufferStats {
  std::uint64_t stored = 0;
  std::uint64_t discarded = 0;
  std::uint64_t promoted_long_term = 0;
  std::uint64_t handed_off = 0;
  std::size_t peak_count = 0;
  std::size_t peak_bytes = 0;
  /// Sum over all departed messages of (departure - store) time.
  Duration total_buffer_time = Duration::zero();
};

class BufferPolicy {
 public:
  virtual ~BufferPolicy();

  /// Must be called exactly once before any other method.
  void bind(PolicyEnv* env);

  /// Observer for store/discard/promotion events (wired to metrics).
  /// `long_term` reflects the entry's phase at event time.
  using Observer =
      std::function<void(const MessageId&, BufferEvent, bool long_term)>;
  void set_observer(Observer obs) { observer_ = std::move(obs); }

  /// A message was received; buffer it (policy decides for how long).
  /// Duplicate stores of an id already present are ignored.
  void store(const proto::Data& msg);

  /// Feedback: a retransmission request for `id` was observed (paper §3.1).
  /// No-op when `id` is not currently buffered.
  virtual void on_request_seen(const MessageId& id);

  /// Receive a long-term buffer transfer from a leaving member (§3.2).
  void accept_handoff(const proto::Data& msg);

  /// Remove and return the messages to transfer when this member leaves
  /// (two-phase: long-term entries; buffer-everything/hash: all entries).
  virtual std::vector<proto::Data> drain_for_handoff();

  bool has(const MessageId& id) const { return entries_.count(id) > 0; }
  std::optional<proto::Data> get(const MessageId& id) const;
  bool is_long_term(const MessageId& id) const;

  std::size_t count() const { return entries_.size(); }
  std::size_t bytes() const { return bytes_; }
  const BufferStats& stats() const { return stats_; }

  /// Test/harness hook: drop `id` immediately (as if idle-discarded).
  void force_discard(const MessageId& id);

  virtual const char* name() const = 0;

  /// True if this policy needs the endpoint to run the history-exchange
  /// protocol (stability baseline only).
  virtual bool needs_history_exchange() const { return false; }

 protected:
  struct Entry {
    proto::Data data;
    TimePoint stored_at;
    TimePoint last_activity;
    bool long_term = false;
    std::uint64_t timer = 0;  // pending policy timer for this entry, if any
  };

  /// Policy hook: a new entry was inserted; arm whatever timers apply.
  virtual void on_stored(Entry& e) = 0;
  /// Policy hook: entry arrived via handoff (default: same as stored, but
  /// two-phase keeps it long-term immediately).
  virtual void on_handoff_accepted(Entry& e) { on_stored(e); }
  /// Policy hook: called after bind() so policies can arm global timers.
  virtual void on_bound() {}

  Entry* find(const MessageId& id);
  /// Remove an entry, run accounting, notify observer. Safe if absent.
  void discard(const MessageId& id, BufferEvent reason = BufferEvent::kDiscarded);
  void promote_long_term(Entry& e);

  PolicyEnv& env() { return *env_; }
  const PolicyEnv& env() const { return *env_; }
  bool bound() const { return env_ != nullptr; }

  std::map<MessageId, Entry>& entries() { return entries_; }

 private:
  void insert(const proto::Data& msg, bool via_handoff);
  void notify(const MessageId& id, BufferEvent ev, bool long_term);

  PolicyEnv* env_ = nullptr;
  Observer observer_;
  std::map<MessageId, Entry> entries_;  // ordered: deterministic iteration
  std::size_t bytes_ = 0;
  BufferStats stats_;
};

}  // namespace rrmp::buffer
