// Buffer-management decision layer (Buffer API v2).
//
// Storage and decision-making are split into two layers:
//
//   BufferStore      (store.h)  — the one concrete container every member
//                                 owns: ordered flat storage of refcounted
//                                 payloads, bytes/count accounting, duplicate
//                                 suppression, observer notification, handoff
//                                 drains, and budget admission + eviction.
//   RetentionPolicy  (here)     — a pure decision strategy plugged into the
//                                 store. It holds NO message data; it reacts
//                                 to store events (on_stored / on_handoff /
//                                 on_request_seen), drives retention through
//                                 the store's mutators (touch / promote /
//                                 discard / per-entry timers), and chooses
//                                 eviction victims when the budget is hit.
//
// Concrete strategies:
//
//   TwoPhasePolicy       — the paper's contribution (§3.1–§3.2): feedback-
//                          based short-term buffering + randomized long-term
//                          buffering with expected C bufferers per region.
//   FixedTimePolicy      — Bimodal Multicast's simple policy: every message
//                          buffered for a fixed time (§2, [3]).
//   BufferEverythingPolicy — RMTP-style repair server: keep everything (§1).
//   HashBasedPolicy      — the authors' earlier deterministic scheme [11]:
//                          hash(member, message) selects k bufferers.
//   StabilityPolicy      — stability-detection baseline [8]: discard when
//                          the whole region is known to have the message.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "buffer/budget.h"
#include "common/random.h"
#include "common/time.h"
#include "common/types.h"
#include "proto/messages.h"

namespace rrmp::buffer {

class BufferStore;

/// Snapshot of a store's budget situation, exposed to policies through
/// PolicyEnv::budget() so retention decisions can react to memory pressure.
struct BudgetState {
  std::size_t bytes = 0;  // accounted bytes currently buffered
  std::size_t count = 0;  // entries currently buffered
  BufferBudget limit;     // configured caps (zero fields = unlimited)
};

/// Host services a policy may use; implemented by the protocol endpoint.
class PolicyEnv {
 public:
  virtual ~PolicyEnv() = default;
  virtual TimePoint now() const = 0;
  /// One-shot timer; returns a handle for cancel(). Handle 0 is invalid.
  virtual std::uint64_t schedule(Duration d, std::function<void()> fn) = 0;
  virtual void cancel(std::uint64_t timer) = 0;
  virtual RandomEngine& rng() = 0;
  /// Current size of the member's region (alive members, including self).
  virtual std::size_t region_size() const = 0;
  /// Alive members of the region, including self (for hash-based selection).
  virtual const std::vector<MemberId>& region_members() const = 0;
  virtual MemberId self() const = 0;
  /// Budget state of the buffer this policy governs. The default (empty,
  /// unlimited) suits environments without a store attached.
  virtual BudgetState budget() const { return {}; }
};

enum class BufferEvent {
  kStored,             // message entered the buffer
  kPromotedLongTerm,   // survived the idle decision (two-phase) or handoff
  kDiscarded,          // message left the buffer by policy decision
  kHandedOff,          // message left via handoff to another member
  kEvicted,            // message left under budget pressure (copy lost here)
  kShedHandoff,        // budget pressure, but the copy was pushed to a
                       // neighbor (best-effort, like a leave-time handoff)
};

struct BufferStats {
  std::uint64_t stored = 0;
  std::uint64_t discarded = 0;
  std::uint64_t promoted_long_term = 0;
  std::uint64_t handed_off = 0;
  /// Departures forced by the budget (admission made room). Excludes shed
  /// handoffs: an eviction loses this member's copy, a shed relocates it.
  std::uint64_t evicted = 0;
  /// Budget-forced departures that were pushed to a neighbor instead of
  /// discarded (cooperative coordination only). Kept separate from
  /// `evicted` so capacity reports don't conflate departures with a
  /// surviving copy in flight from ones where the copy is simply lost.
  /// Counted at send time: like a leave-time Handoff, the transfer is
  /// fire-and-forget, so a shed frame lost to control loss (or refused by
  /// the receiver's own budget) still counts here.
  std::uint64_t shed = 0;
  /// Admissions refused outright (message larger than the whole budget).
  std::uint64_t rejected = 0;
  std::size_t peak_count = 0;
  std::size_t peak_bytes = 0;
  /// Sum over all departed messages of (departure - store) time.
  Duration total_buffer_time = Duration::zero();
};

/// How much an admission still needs to free. The store satisfies the plan
/// it gets back in order, so a policy ranks victims by how expendable they
/// are; ties MUST be broken by MessageId for cross-run determinism.
struct EvictionDemand {
  std::size_t bytes = 0;    // accounted bytes to free (0 = none)
  std::size_t entries = 0;  // entries to free (0 = none)
};

/// An ordered list of currently-stored ids the store should evict.
struct EvictionPlan {
  std::vector<MessageId> victims;
};

/// Pure retention strategy. Bound to exactly one BufferStore; all message
/// data lives in the store, the policy only decides how long it stays.
class RetentionPolicy {
 public:
  virtual ~RetentionPolicy();

  /// Called exactly once by the owning BufferStore.
  void bind(BufferStore* store, PolicyEnv* env);

  virtual const char* name() const = 0;

  /// True if this policy needs the endpoint to run the history-exchange
  /// protocol (stability baseline only).
  virtual bool needs_history_exchange() const { return false; }

  /// True if drain_for_handoff() should transfer short-term entries too
  /// (repair servers hand over their whole archive).
  virtual bool handoff_includes_short_term() const { return false; }

  /// A new entry for `id` was admitted (not a duplicate); arm whatever
  /// timers apply.
  virtual void on_stored(const MessageId& id) = 0;

  /// Entry for `id` arrived via handoff from a leaving member (default:
  /// same as stored; two-phase keeps it long-term immediately).
  virtual void on_handoff(const MessageId& id) { on_stored(id); }

  /// Feedback: a retransmission request for `id` was observed (§3.1). The
  /// store has already refreshed the entry's last_activity.
  virtual void on_request_seen(const MessageId& id) { (void)id; }

  /// Choose eviction victims for an admission under budget pressure. The
  /// base implementation is the deterministic default every bundled policy
  /// uses: short-term entries before long-term ones, least-recently-active
  /// first, ties broken by ascending MessageId. When the owning store runs
  /// with coordination enabled and neighbor digests are known, a replica
  /// cost model ranks first: entries with >= redundancy_threshold known
  /// regional replicas whose keeper is another member are preferred
  /// victims (most replicated first), while keeper copies and sole-copy
  /// entries are protected (evicted only when nothing redundant remains);
  /// the uncoordinated order breaks ties within each rank.
  virtual EvictionPlan pick_victims(const EvictionDemand& need);

 protected:
  /// Policy hook: called after bind() so policies can arm global timers.
  virtual void on_bound() {}

  BufferStore& store() { return *store_; }
  const BufferStore& store() const { return *store_; }
  PolicyEnv& env() { return *env_; }
  const PolicyEnv& env() const { return *env_; }
  bool bound() const { return store_ != nullptr; }

 private:
  BufferStore* store_ = nullptr;
  PolicyEnv* env_ = nullptr;
};

}  // namespace rrmp::buffer
