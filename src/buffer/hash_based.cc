#include "buffer/hash_based.h"

#include <algorithm>

namespace rrmp::buffer {

std::uint64_t hash_score(const MessageId& id, MemberId member) {
  // Mix the three words through splitmix64-style finalization.
  std::uint64_t x = (static_cast<std::uint64_t>(id.source) << 32) ^ id.seq;
  x ^= 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(member) + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

std::vector<MemberId> hash_bufferers(const MessageId& id,
                                     const std::vector<MemberId>& members,
                                     std::size_t k) {
  if (k == 0 || members.empty()) return {};
  std::vector<std::pair<std::uint64_t, MemberId>> scored;
  scored.reserve(members.size());
  for (MemberId m : members) scored.emplace_back(hash_score(id, m), m);
  k = std::min(k, scored.size());
  std::nth_element(scored.begin(), scored.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   scored.end());
  scored.resize(k);
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  std::vector<MemberId> out;
  out.reserve(k);
  for (const auto& [score, m] : scored) out.push_back(m);
  return out;
}

void HashBasedPolicy::on_stored(Entry& e) {
  const std::vector<MemberId>& members = env().region_members();
  hash_evaluations_ += members.size();
  std::vector<MemberId> selected = hash_bufferers(e.data.id, members, params_.k);
  bool mine = std::find(selected.begin(), selected.end(), env().self()) !=
              selected.end();
  MessageId id = e.data.id;
  if (mine) {
    promote_long_term(e);
    if (!params_.bufferer_ttl.is_infinite()) {
      e.timer = env().schedule(params_.bufferer_ttl, [this, id] { discard(id); });
    }
  } else {
    e.timer = env().schedule(params_.grace, [this, id] { discard(id); });
  }
}

}  // namespace rrmp::buffer
