#include "buffer/hash_based.h"

#include <algorithm>

namespace rrmp::buffer {

std::uint64_t hash_score(const MessageId& id, MemberId member) {
  // Mix the three words through splitmix64-style finalization.
  std::uint64_t x = (static_cast<std::uint64_t>(id.source) << 32) ^ id.seq;
  x ^= 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(member) + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

const std::vector<MemberId>& BuffererSelector::select(
    const MessageId& id, const std::vector<MemberId>& members, std::size_t k) {
  out_.clear();
  if (k == 0 || members.empty()) return out_;
  scored_.clear();
  for (MemberId m : members) scored_.emplace_back(hash_score(id, m), m);
  k = std::min(k, scored_.size());
  std::nth_element(scored_.begin(),
                   scored_.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   scored_.end());
  scored_.resize(k);
  std::sort(scored_.begin(), scored_.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  out_.reserve(k);
  for (const auto& [score, m] : scored_) out_.push_back(m);
  return out_;
}

bool BuffererSelector::selects(const MessageId& id,
                               const std::vector<MemberId>& members,
                               std::size_t k, MemberId member) {
  if (k == 0 || members.empty()) return false;
  if (k >= members.size()) {
    return std::find(members.begin(), members.end(), member) != members.end();
  }
  // `member` is selected iff fewer than k members score strictly below it
  // (scores are 64-bit hashes; ties are negligible but broken identically
  // to nth_element's value ordering on the full pair).
  std::pair<std::uint64_t, MemberId> mine{hash_score(id, member), member};
  std::size_t below = 0;
  bool present = false;
  for (MemberId m : members) {
    if (m == member) {
      present = true;
      continue;
    }
    if (std::pair<std::uint64_t, MemberId>{hash_score(id, m), m} < mine) {
      if (++below >= k) return false;
    }
  }
  return present;
}

std::vector<MemberId> hash_bufferers(const MessageId& id,
                                     const std::vector<MemberId>& members,
                                     std::size_t k) {
  BuffererSelector selector;
  return selector.select(id, members, k);
}

void HashBasedPolicy::on_stored(const MessageId& id) {
  const std::vector<MemberId>& members = env().region_members();
  hash_evaluations_ += members.size();
  bool mine = selector_.selects(id, members, params_.k, env().self());
  if (mine) {
    store().promote_long_term(id);
    if (!params_.bufferer_ttl.is_infinite()) {
      store().set_entry_timer(id, env().schedule(params_.bufferer_ttl, [this, id] {
        store().discard(id);
      }));
    }
  } else {
    store().set_entry_timer(id, env().schedule(
                                    params_.grace,
                                    [this, id] { grace_expired(id); }));
  }
}

void HashBasedPolicy::on_handoff(const MessageId& id) {
  store().promote_long_term(id);
  if (!params_.bufferer_ttl.is_infinite()) {
    store().set_entry_timer(id, env().schedule(params_.bufferer_ttl, [this, id] {
      store().discard(id);
    }));
  }
}

void HashBasedPolicy::grace_expired(const MessageId& id) {
  auto v = store().view(id);
  if (!v) return;
  store().set_entry_timer(id, 0);  // this timer's handle is spent
  // A handoff upgraded the entry to long-term while the grace countdown
  // was pending: the transfer's copy must survive the grace it was armed
  // with as a mere non-bufferer, and owes the bufferer lifecycle instead.
  if (v->long_term) {
    if (!params_.bufferer_ttl.is_infinite()) {
      store().set_entry_timer(id, env().schedule(params_.bufferer_ttl, [this, id] {
        store().discard(id);
      }));
    }
    return;
  }
  store().discard(id);
}

}  // namespace rrmp::buffer
