#include "buffer/buffer_everything.h"

namespace rrmp::buffer {

std::vector<proto::Data> BufferEverythingPolicy::drain_for_handoff() {
  std::vector<MessageId> ids;
  ids.reserve(entries().size());
  for (const auto& [id, e] : entries()) ids.push_back(id);
  std::vector<proto::Data> out;
  out.reserve(ids.size());
  for (const MessageId& id : ids) {
    out.push_back(std::move(find(id)->data));
    discard(id, BufferEvent::kHandedOff);
  }
  return out;
}

}  // namespace rrmp::buffer
