// Per-member buffer budget: the paper's scarce resource made a first-class,
// tunable quantity.
//
// A BufferBudget caps a member's BufferStore by bytes and/or entry count;
// zero means "unlimited" on that axis, so default-constructed budgets
// reproduce the unbounded behaviour of the original policies exactly. Byte
// accounting uses the wire-encoded size of the buffered Data frame (see
// proto::encoded_size), so buffer occupancy and traffic statistics share one
// definition of "bytes".
#pragma once

#include <cstddef>

namespace rrmp::buffer {

struct BufferBudget {
  /// Maximum accounted bytes buffered by one member; 0 = unlimited.
  std::size_t max_bytes = 0;
  /// Maximum buffered entries; 0 = unlimited.
  std::size_t max_count = 0;

  bool unlimited() const { return max_bytes == 0 && max_count == 0; }

  friend bool operator==(const BufferBudget&, const BufferBudget&) = default;
};

}  // namespace rrmp::buffer
