// Membership directory: tracks which topology members are currently alive
// and materializes per-region views.
//
// In the simulator this is the ground-truth membership service; individual
// endpoints see it filtered through their own failure detector (a member may
// locally suspect a peer before/without the directory knowing). Joins and
// graceful leaves go through here; crashes are marked by the harness.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "membership/view.h"
#include "net/topology.h"

namespace rrmp::membership {

class Directory {
 public:
  /// All topology members start alive.
  explicit Directory(const net::Topology& topology);

  bool alive(MemberId m) const { return alive_.at(m); }
  std::size_t alive_count() const { return alive_count_; }

  /// Graceful leave and crash are identical from the directory's point of
  /// view (the difference — buffer handoff — happens at the protocol layer).
  void mark_left(MemberId m) { set_alive(m, false); }
  void mark_failed(MemberId m) { set_alive(m, false); }
  void mark_joined(MemberId m) { set_alive(m, true); }

  /// Alive members of `r`.
  const RegionView& region_view(RegionId r) const { return views_.at(r); }

  /// Alive members of r's parent region; empty view if r is a root.
  const RegionView& parent_view(RegionId r) const;

  RegionId region_of(MemberId m) const { return topology_.region_of(m); }
  const net::Topology& topology() const { return topology_; }

  /// Bumped on every membership change.
  std::uint64_t version() const { return version_; }

  using Listener = std::function<void(MemberId member, bool now_alive)>;
  void subscribe(Listener fn) { listeners_.push_back(std::move(fn)); }

 private:
  void set_alive(MemberId m, bool alive);

  const net::Topology& topology_;
  std::vector<bool> alive_;
  std::size_t alive_count_ = 0;
  std::vector<RegionView> views_;  // indexed by RegionId
  RegionView empty_view_;
  std::uint64_t version_ = 1;
  std::vector<Listener> listeners_;
};

}  // namespace rrmp::membership
