// A member's view of one region: the set of members it believes are alive
// there. The paper assumes each receiver knows the membership of its own
// region and of its parent region (§2.1); views need not be perfectly
// accurate, only good enough that the group is not logically partitioned.
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/types.h"

namespace rrmp::membership {

class RegionView {
 public:
  RegionView() = default;
  explicit RegionView(std::vector<MemberId> members);

  std::size_t size() const { return members_.size(); }
  bool empty() const { return members_.empty(); }
  bool contains(MemberId m) const;
  const std::vector<MemberId>& members() const { return members_; }

  /// Monotone counter bumped on every mutation; lets caches detect staleness.
  std::uint64_t version() const { return version_; }

  void add(MemberId m);
  void remove(MemberId m);

  /// Uniformly random member, excluding `exclude` (pass kInvalidMember for
  /// no exclusion). Returns kInvalidMember when no candidate exists.
  MemberId pick_random(RandomEngine& rng, MemberId exclude = kInvalidMember) const;

  /// Up to k distinct random members excluding `exclude`.
  std::vector<MemberId> pick_random_distinct(RandomEngine& rng, std::size_t k,
                                             MemberId exclude = kInvalidMember) const;

  friend bool operator==(const RegionView&, const RegionView&) = default;

 private:
  std::vector<MemberId> members_;  // kept sorted for deterministic iteration
  std::uint64_t version_ = 0;
};

}  // namespace rrmp::membership
