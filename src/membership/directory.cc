#include "membership/directory.h"

namespace rrmp::membership {

Directory::Directory(const net::Topology& topology) : topology_(topology) {
  alive_.assign(topology.member_count(), true);
  alive_count_ = topology.member_count();
  views_.reserve(topology.region_count());
  for (RegionId r = 0; r < topology.region_count(); ++r) {
    views_.emplace_back(topology.members_of(r));
  }
}

const RegionView& Directory::parent_view(RegionId r) const {
  std::optional<RegionId> p = topology_.parent_of(r);
  if (!p) return empty_view_;
  return views_.at(*p);
}

void Directory::set_alive(MemberId m, bool alive) {
  if (alive_.at(m) == alive) return;
  alive_[m] = alive;
  alive_count_ += alive ? 1 : static_cast<std::size_t>(-1);
  RegionId r = topology_.region_of(m);
  if (alive) {
    views_[r].add(m);
  } else {
    views_[r].remove(m);
  }
  ++version_;
  for (const Listener& fn : listeners_) fn(m, alive);
}

}  // namespace rrmp::membership
