#include "membership/view.h"

#include <algorithm>

namespace rrmp::membership {

RegionView::RegionView(std::vector<MemberId> members)
    : members_(std::move(members)) {
  std::sort(members_.begin(), members_.end());
  members_.erase(std::unique(members_.begin(), members_.end()),
                 members_.end());
}

bool RegionView::contains(MemberId m) const {
  return std::binary_search(members_.begin(), members_.end(), m);
}

void RegionView::add(MemberId m) {
  auto it = std::lower_bound(members_.begin(), members_.end(), m);
  if (it != members_.end() && *it == m) return;
  members_.insert(it, m);
  ++version_;
}

void RegionView::remove(MemberId m) {
  auto it = std::lower_bound(members_.begin(), members_.end(), m);
  if (it == members_.end() || *it != m) return;
  members_.erase(it);
  ++version_;
}

MemberId RegionView::pick_random(RandomEngine& rng, MemberId exclude) const {
  if (members_.empty()) return kInvalidMember;
  bool has_exclude = contains(exclude);
  std::size_t n = members_.size() - (has_exclude ? 1 : 0);
  if (n == 0) return kInvalidMember;
  auto idx = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
  // Map the index over the view, skipping the excluded member.
  for (std::size_t i = 0, live = 0; i < members_.size(); ++i) {
    if (has_exclude && members_[i] == exclude) continue;
    if (live++ == idx) return members_[i];
  }
  return kInvalidMember;  // unreachable
}

std::vector<MemberId> RegionView::pick_random_distinct(RandomEngine& rng,
                                                       std::size_t k,
                                                       MemberId exclude) const {
  std::vector<MemberId> pool;
  pool.reserve(members_.size());
  for (MemberId m : members_) {
    if (m != exclude) pool.push_back(m);
  }
  if (k >= pool.size()) {
    rng.shuffle(pool);
    return pool;
  }
  std::vector<std::size_t> idx = rng.sample_indices(pool.size(), k);
  std::vector<MemberId> out;
  out.reserve(k);
  for (std::size_t i : idx) out.push_back(pool[i]);
  return out;
}

}  // namespace rrmp::membership
