// Move-only callable with a 48-byte small-buffer optimization.
//
// The simulator's event slab stores one Callback per scheduled timer. The
// hot-path captures in this codebase — `this` plus a MessageId, a couple of
// MemberIds, or a shared_ptr to an in-flight message — are all well under 48
// bytes, so scheduling and firing them never touches the allocator. Larger
// or throwing-move callables fall back to the heap transparently;
// `is_inline()` exposes which path was taken so tests can pin the contract.
//
// Unlike std::function, Callback is move-only (no copy of captured state is
// ever needed on the timer path) and deliberately minimal: invoke, move,
// destroy, bool conversion. It accepts any `void()`-invocable, including
// std::function itself (a std::function fits the inline buffer, so wrapping
// one adds no allocation on top of what the function already did).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace rrmp::sim {

class Callback {
 public:
  /// Captures at or below this size (and alignof <= max_align_t, nothrow
  /// move) are stored inline; schedule/fire never allocates for them.
  static constexpr std::size_t kInlineCapacity = 48;

  Callback() noexcept = default;
  Callback(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::remove_cvref_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, Callback> &&
                                        !std::is_same_v<D, std::nullptr_t> &&
                                        std::is_invocable_r_v<void, D&>>>
  Callback(F&& fn) {  // NOLINT(google-explicit-constructor)
    if constexpr (fits_inline<D>()) {
      obj_ = new (buf_) D(std::forward<F>(fn));
    } else {
      obj_ = new D(std::forward<F>(fn));
    }
    ops_ = &ops_for<D, fits_inline<D>()>;
  }

  Callback(Callback&& other) noexcept { steal(other); }

  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  Callback& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;

  ~Callback() { reset(); }

  /// Invoke. An empty Callback throws like std::function (catchable,
  /// instead of a null dereference).
  void operator()() {
    if (ops_ == nullptr) throw std::bad_function_call();
    ops_->invoke(obj_);
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// True when the callable lives in the inline buffer (test/bench hook).
  bool is_inline() const noexcept { return obj_ == buf_; }

 private:
  struct Ops {
    void (*invoke)(void* obj);
    /// Move-construct into `dst_buf` (inline) and destroy the source.
    /// Null for heap-stored callables, whose pointer is stolen instead.
    void (*relocate)(void* dst_buf, void* src_obj) noexcept;
    void (*destroy)(void* obj) noexcept;
  };

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineCapacity &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D, bool Inline>
  static constexpr Ops ops_for{
      [](void* obj) { (*static_cast<D*>(obj))(); },
      Inline ? +[](void* dst_buf, void* src_obj) noexcept {
        D* src = static_cast<D*>(src_obj);
        ::new (dst_buf) D(std::move(*src));
        src->~D();
      } : nullptr,
      [](void* obj) noexcept {
        if constexpr (Inline) {
          static_cast<D*>(obj)->~D();
        } else {
          delete static_cast<D*>(obj);
        }
      },
  };

  void steal(Callback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ == nullptr) return;
    if (other.is_inline()) {
      ops_->relocate(buf_, other.obj_);
      obj_ = buf_;
    } else {
      obj_ = other.obj_;
    }
    other.ops_ = nullptr;
    other.obj_ = nullptr;
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(obj_);
      ops_ = nullptr;
      obj_ = nullptr;
    }
  }

  void* obj_ = nullptr;
  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) std::byte buf_[kInlineCapacity];
};

}  // namespace rrmp::sim
