#include "sim/simulator.h"

#include <cassert>
#include <utility>

namespace rrmp::sim {

TimerId Simulator::schedule_at(TimePoint t, std::function<void()> fn) {
  if (t < now_) t = now_;  // no scheduling into the past
  std::uint64_t id = next_id_++;
  heap_.push(Entry{t, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  return TimerId{id};
}

void Simulator::cancel(TimerId id) { callbacks_.erase(id.value); }

bool Simulator::pending(TimerId id) const {
  return callbacks_.find(id.value) != callbacks_.end();
}

bool Simulator::step() {
  while (!heap_.empty()) {
    Entry e = heap_.top();
    heap_.pop();
    auto it = callbacks_.find(e.id);
    if (it == callbacks_.end()) continue;  // cancelled
    std::function<void()> fn = std::move(it->second);
    callbacks_.erase(it);
    assert(e.time >= now_);
    now_ = e.time;
    ++fired_;
    fn();
    return true;
  }
  return false;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

TimePoint Simulator::next_event_time() {
  while (!heap_.empty()) {
    const Entry& e = heap_.top();
    if (callbacks_.find(e.id) != callbacks_.end()) return e.time;
    heap_.pop();  // cancelled: drop the dead entry
  }
  return TimePoint::max();
}

std::size_t Simulator::run_until(TimePoint t) {
  std::size_t n = 0;
  while (!heap_.empty()) {
    // Skip dead entries at the top so their (stale) times don't gate us.
    const Entry& e = heap_.top();
    if (callbacks_.find(e.id) == callbacks_.end()) {
      heap_.pop();
      continue;
    }
    if (e.time > t) break;
    step();
    ++n;
  }
  if (now_ < t) now_ = t;
  return n;
}

}  // namespace rrmp::sim
