#include "sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace rrmp::sim {
namespace {

constexpr std::uint32_t gen_of(TimerId id) {
  return static_cast<std::uint32_t>(id.value >> 32);
}
constexpr TimerId make_id(std::uint32_t slot, std::uint32_t gen) {
  return TimerId{(static_cast<std::uint64_t>(gen) << 32) |
                 (static_cast<std::uint64_t>(slot) + 1)};
}

// Only compact a heap that is at least this large: tiny heaps are cheap to
// skip through lazily, and the bound keeps compaction O(1) amortized per
// cancel (each sweep removes more dead entries than it will see again before
// the next sweep can trigger).
constexpr std::size_t kCompactMinHeap = 64;

}  // namespace

bool Simulator::slot_matches(TimerId id, std::uint32_t& slot_out) const {
  std::uint64_t biased = id.value & 0xFFFFFFFFULL;
  if (biased == 0 || biased > slots_.size()) return false;
  slot_out = static_cast<std::uint32_t>(biased - 1);
  return slots_[slot_out].gen == gen_of(id);
}

std::uint32_t Simulator::acquire_slot(Callback fn) {
  std::uint32_t slot;
  if (free_head_ != 0) {
    slot = free_head_ - 1;
    free_head_ = slots_[slot].next_free;
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[slot].cb = std::move(fn);
  ++live_;
  return slot;
}

Callback Simulator::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  Callback cb = std::move(s.cb);
  ++s.gen;  // invalidates every outstanding handle and heap entry
  s.next_free = free_head_;
  free_head_ = slot + 1;
  --live_;
  return cb;
}

TimerId Simulator::schedule_at(TimePoint t, Callback fn) {
  if (t < now_) t = now_;  // no scheduling into the past
  std::uint32_t slot = acquire_slot(std::move(fn));
  std::uint32_t gen = slots_[slot].gen;
  heap_.push_back(Entry{t, next_seq_++, slot, gen});
  std::push_heap(heap_.begin(), heap_.end(), HeapLater{});
  return make_id(slot, gen);
}

void Simulator::cancel(TimerId id) {
  std::uint32_t slot;
  if (!slot_matches(id, slot)) return;  // fired, cancelled, reused, or forged
  release_slot(slot);  // destroys the callback; the heap entry dies lazily
  maybe_compact();
}

bool Simulator::pending(TimerId id) const {
  std::uint32_t slot;
  return slot_matches(id, slot);
}

void Simulator::maybe_compact() {
  // Dead entries (cancelled, not yet popped) are heap size minus live count;
  // sweep once they outnumber the live ones.
  if (heap_.size() < kCompactMinHeap || heap_.size() - live_ <= live_) return;
  std::erase_if(heap_, [this](const Entry& e) {
    return slots_[e.slot].gen != e.gen;
  });
  std::make_heap(heap_.begin(), heap_.end(), HeapLater{});
}

bool Simulator::step() {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), HeapLater{});
    Entry e = heap_.back();
    heap_.pop_back();
    if (slots_[e.slot].gen != e.gen) continue;  // cancelled
    Callback cb = release_slot(e.slot);
    assert(e.time >= now_);
    now_ = e.time;
    ++fired_;
    cb();
    return true;
  }
  return false;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

TimePoint Simulator::next_event_time() {
  while (!heap_.empty()) {
    const Entry& e = heap_.front();
    if (slots_[e.slot].gen == e.gen) return e.time;
    std::pop_heap(heap_.begin(), heap_.end(), HeapLater{});
    heap_.pop_back();  // cancelled: drop the dead entry
  }
  return TimePoint::max();
}

std::size_t Simulator::run_until(TimePoint t) {
  std::size_t n = 0;
  while (!heap_.empty()) {
    // Skip dead entries at the top so their (stale) times don't gate us.
    const Entry& e = heap_.front();
    if (slots_[e.slot].gen != e.gen) {
      std::pop_heap(heap_.begin(), heap_.end(), HeapLater{});
      heap_.pop_back();
      continue;
    }
    if (e.time > t) break;
    step();
    ++n;
  }
  if (now_ < t) now_ = t;
  return n;
}

}  // namespace rrmp::sim
