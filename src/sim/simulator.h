// Deterministic discrete-event simulator.
//
// Events fire in (time, insertion-sequence) order, so simultaneous events run
// FIFO and whole-cluster runs replay bit-identically.
//
// Storage: callbacks live in a slab of generation-tagged slots; the ordering
// heap holds only plain {time, seq, slot, generation} records. Scheduling
// reuses a free slot (no hashing, no node allocation), firing moves the
// callback out and releases the slot, and cancel is O(1): bump the slot's
// generation so the heap record dies. With sim::Callback's 48-byte inline
// buffer, schedule/fire/cancel never touch the allocator for typical
// captures once the slab and heap vectors are warm.
//
// Cancelled heap records are skipped lazily when popped; when they outnumber
// the live events (and the heap is non-trivial) the heap is compacted in one
// O(n) sweep, so a cancel-heavy workload cannot grow the heap without bound.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.h"
#include "sim/callback.h"

namespace rrmp::sim {

/// Handle for a scheduled event; pass to Simulator::cancel. Packs the slab
/// slot index (low 32 bits, offset by 1 so 0 stays "no timer") with the
/// slot's generation at scheduling time (high 32 bits): a handle whose
/// generation no longer matches its slot is stale — fired, cancelled, or
/// from a reused slot — and cancel/pending treat it as a safe no-op.
struct TimerId {
  std::uint64_t value = 0;
  friend bool operator==(TimerId, TimerId) = default;
};

inline constexpr TimerId kInvalidTimer{0};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimePoint now() const { return now_; }

  /// Schedule `fn` to run at absolute time `t` (clamped to now()).
  TimerId schedule_at(TimePoint t, Callback fn);

  /// Schedule `fn` to run after `d` (>= Duration::zero()).
  TimerId schedule_after(Duration d, Callback fn) {
    return schedule_at(now_ + d, std::move(fn));
  }

  /// Cancel a pending event in O(1). Safe on already-fired, already-
  /// cancelled, reused-slot, and never-issued ids.
  void cancel(TimerId id);

  /// True if the event is still pending (scheduled, not fired, not cancelled).
  bool pending(TimerId id) const;

  /// Run a single event. Returns false if the queue is empty.
  bool step();

  /// Run events until the queue is empty or `max_events` have fired.
  /// Returns the number of events fired.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Run all events with fire time <= t, then advance the clock to t.
  std::size_t run_until(TimePoint t);

  /// Fire time of the earliest pending event, or TimePoint::max() when the
  /// queue is empty. Lazily discards cancelled heap entries, so repeated
  /// calls are cheap. Used by the sharded cluster harness to fast-forward
  /// epoch windows over idle stretches.
  TimePoint next_event_time();

  std::size_t pending_count() const { return live_; }
  std::uint64_t fired_count() const { return fired_; }

 private:
  struct Entry {
    TimePoint time;
    std::uint64_t seq;  // tie-breaker: FIFO among simultaneous events
    std::uint32_t slot;
    std::uint32_t gen;
    // Ordered for a min-heap via HeapLater.
    friend bool later(const Entry& a, const Entry& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  struct HeapLater {
    bool operator()(const Entry& a, const Entry& b) const {
      return later(a, b);
    }
  };

  struct Slot {
    Callback cb;
    std::uint32_t gen = 0;
    std::uint32_t next_free = 0;  // free-list link (index + 1; 0 = end)
  };

  bool slot_matches(TimerId id, std::uint32_t& slot_out) const;
  std::uint32_t acquire_slot(Callback fn);
  Callback release_slot(std::uint32_t slot);
  void maybe_compact();

  TimePoint now_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t fired_ = 0;
  std::size_t live_ = 0;       // armed slots == live heap entries
  std::vector<Entry> heap_;    // min-heap via std::push_heap/pop_heap
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = 0;  // index + 1 into slots_; 0 = empty
};

}  // namespace rrmp::sim
