// Deterministic discrete-event simulator.
//
// Events fire in (time, insertion-sequence) order, so simultaneous events run
// FIFO and whole-cluster runs replay bit-identically. Timers are cancellable;
// cancellation is O(1) (lazy: the heap entry is skipped when popped).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/time.h"

namespace rrmp::sim {

/// Handle for a scheduled event; pass to Simulator::cancel.
struct TimerId {
  std::uint64_t value = 0;
  friend bool operator==(TimerId, TimerId) = default;
};

inline constexpr TimerId kInvalidTimer{0};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimePoint now() const { return now_; }

  /// Schedule `fn` to run at absolute time `t` (clamped to now()).
  TimerId schedule_at(TimePoint t, std::function<void()> fn);

  /// Schedule `fn` to run after `d` (>= Duration::zero()).
  TimerId schedule_after(Duration d, std::function<void()> fn) {
    return schedule_at(now_ + d, std::move(fn));
  }

  /// Cancel a pending event. Safe on already-fired or invalid ids.
  void cancel(TimerId id);

  /// True if the event is still pending (scheduled, not fired, not cancelled).
  bool pending(TimerId id) const;

  /// Run a single event. Returns false if the queue is empty.
  bool step();

  /// Run events until the queue is empty or `max_events` have fired.
  /// Returns the number of events fired.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Run all events with fire time <= t, then advance the clock to t.
  std::size_t run_until(TimePoint t);

  /// Fire time of the earliest pending event, or TimePoint::max() when the
  /// queue is empty. Lazily discards cancelled heap entries, so repeated
  /// calls are cheap. Used by the sharded cluster harness to fast-forward
  /// epoch windows over idle stretches.
  TimePoint next_event_time();

  std::size_t pending_count() const { return callbacks_.size(); }
  std::uint64_t fired_count() const { return fired_; }

 private:
  struct Entry {
    TimePoint time;
    std::uint64_t seq;  // tie-breaker: FIFO among simultaneous events
    std::uint64_t id;
    // Ordered for a min-heap via std::greater.
    friend bool operator>(const Entry& a, const Entry& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  TimePoint now_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_id_ = 1;
  std::uint64_t fired_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  // id -> callback; erased on fire or cancel. A heap entry whose id is no
  // longer present is a cancelled event and is skipped.
  std::unordered_map<std::uint64_t, std::function<void()>> callbacks_;
};

}  // namespace rrmp::sim
