// Hierarchical repair trees: knobs and representative election.
//
// The paper's remote recovery samples a *random* parent-region member per
// attempt (§2.2). At million-member scale that sampling turns every lost
// multicast into a storm of independent cross-region requests. The repair
// tree replaces it with deterministic aggregation points: each region elects
// one *representative* by rendezvous hashing over its alive members, NAKs
// funnel to the local representative first, and only representatives
// escalate — one Escalate frame per region per miss — up the region
// hierarchy toward the sender.
//
// Election is pure arithmetic over (member, salt, generation): every member
// of a region computes the same representative from the same view with no
// coordination round, and a partition-generation bump deterministically
// reshuffles the choice away from members that just proved unreachable.
//
// Header-only and dependency-free (common/types.h) so rrmp::Config can embed
// HierarchyParams without pulling the protocol layer into the config header.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace rrmp::repair {

struct HierarchyParams {
  /// Master switch. Off (the default): the flat paper protocol, bit-identical
  /// to the pre-hierarchy behaviour.
  bool enabled = false;

  /// Salt mixed into every rendezvous score; distinct deployments (or
  /// experiment repetitions) get independent representative assignments.
  std::uint64_t salt = 0;

  /// Upper bound on escalation levels a single NAK may climb. Escalate
  /// frames at or past this hop count are dropped — a malformed topology
  /// (or a stale frame crossing a reconfiguration) must not forward forever.
  std::uint32_t max_hops = 16;

  /// Retry backoff for hierarchy-mode recovery: the retry timeout doubles
  /// per attempt up to `timeout << max_backoff_shift`. Bounds the retry
  /// event rate at scale; 0 keeps the paper's fixed-RTT retries.
  std::uint32_t max_backoff_shift = 3;

  friend bool operator==(const HierarchyParams&,
                         const HierarchyParams&) = default;
};

/// Rendezvous score of `member` for the representative role. Same splitmix64
/// finalization idiom as buffer::hash_score: full 64-bit avalanche so member
/// ids that differ in one bit land uniformly across the score space.
inline std::uint64_t rep_score(MemberId member, std::uint64_t salt,
                               std::uint64_t generation) {
  std::uint64_t x = (static_cast<std::uint64_t>(member) + 1) *
                    0x9e3779b97f4a7c15ULL;
  x ^= salt + 0x6a09e667f3bcc909ULL + (generation << 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Highest-score member wins; score ties (vanishingly rare but possible)
/// break toward the smaller id so every caller agrees. kInvalidMember when
/// the candidate set is empty.
inline MemberId elect_representative(const std::vector<MemberId>& members,
                                     std::uint64_t salt,
                                     std::uint64_t generation) {
  MemberId best = kInvalidMember;
  std::uint64_t best_score = 0;
  for (MemberId m : members) {
    std::uint64_t s = rep_score(m, salt, generation);
    if (best == kInvalidMember || s > best_score ||
        (s == best_score && m < best)) {
      best = m;
      best_score = s;
    }
  }
  return best;
}

}  // namespace rrmp::repair
