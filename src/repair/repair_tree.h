// Whole-tree view of the repair hierarchy: the per-region representative
// assignment materialized for the harness, experiments, and tests.
//
// Endpoints never consult this class — each endpoint recomputes its own and
// its parent region's representative from its local membership views (the
// same pure election in repair/hierarchy.h), so no global state is on the
// protocol's hot path. RepairTree exists for everything *around* the
// protocol: asserting construction determinism, inspecting which members
// aggregate NAKs in an experiment, and rebuilding the assignment when the
// directory's view or the cluster's partition generation changes.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "repair/hierarchy.h"

namespace rrmp::membership {
class Directory;
}

namespace rrmp::repair {

class RepairTree {
 public:
  /// Builds the initial assignment from the directory's current views.
  RepairTree(const membership::Directory& directory, HierarchyParams params);

  /// Recompute every region's representative from the directory's current
  /// alive views and the current generation. Called on view changes and
  /// partition-generation bumps; a no-op rebuild yields the identical
  /// assignment (election is pure).
  void rebuild();

  /// Bump the election generation (a partition formed or healed) and
  /// rebuild. Matches the endpoints, which mix their view_generation into
  /// the same score.
  void set_generation(std::uint64_t generation);
  std::uint64_t generation() const { return generation_; }

  /// The representative of `r`; kInvalidMember when the region has no alive
  /// members.
  MemberId representative(RegionId r) const { return reps_.at(r); }

  /// The representative of r's parent region; kInvalidMember for roots.
  MemberId parent_representative(RegionId r) const;

  /// The full assignment, indexed by RegionId.
  const std::vector<MemberId>& current() const { return reps_; }

  const HierarchyParams& params() const { return params_; }

 private:
  const membership::Directory& directory_;
  HierarchyParams params_;
  std::uint64_t generation_ = 0;
  std::vector<MemberId> reps_;  // indexed by RegionId
};

}  // namespace rrmp::repair
