#include "repair/repair_tree.h"

#include "membership/directory.h"

namespace rrmp::repair {

RepairTree::RepairTree(const membership::Directory& directory,
                       HierarchyParams params)
    : directory_(directory), params_(params) {
  rebuild();
}

void RepairTree::rebuild() {
  const net::Topology& topo = directory_.topology();
  reps_.assign(topo.region_count(), kInvalidMember);
  for (RegionId r = 0; r < static_cast<RegionId>(topo.region_count()); ++r) {
    reps_[r] = elect_representative(directory_.region_view(r).members(),
                                    params_.salt, generation_);
  }
}

void RepairTree::set_generation(std::uint64_t generation) {
  generation_ = generation;
  rebuild();
}

MemberId RepairTree::parent_representative(RegionId r) const {
  std::optional<RegionId> parent = directory_.topology().parent_of(r);
  if (!parent) return kInvalidMember;
  return reps_.at(*parent);
}

}  // namespace rrmp::repair
