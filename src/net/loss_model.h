// Packet-loss models for the simulated network.
//
// The paper's figure experiments assume lossless requests/repairs and drive
// the *initial multicast* outcome explicitly (a chosen subset of members
// holds the message); these models cover the general scenarios the protocol
// must survive: independent (Bernoulli) loss and bursty (Gilbert–Elliott)
// loss.
#pragma once

#include <memory>

#include "common/random.h"

namespace rrmp::net {

class LossModel {
 public:
  virtual ~LossModel() = default;
  /// Returns true if the packet should be dropped.
  virtual bool drop(RandomEngine& rng) = 0;
  /// Fresh model with the same parameters but initial chain state. The
  /// sharded network keeps one clone per region lane so stateful models
  /// (Gilbert–Elliott) never share state across concurrently-running lanes.
  virtual std::unique_ptr<LossModel> clone() const = 0;
};

/// Never drops.
class NoLoss final : public LossModel {
 public:
  bool drop(RandomEngine&) override { return false; }
  std::unique_ptr<LossModel> clone() const override {
    return std::make_unique<NoLoss>();
  }
};

/// Drops each packet independently with probability p.
class BernoulliLoss final : public LossModel {
 public:
  explicit BernoulliLoss(double p) : p_(p) {}
  bool drop(RandomEngine& rng) override { return rng.bernoulli(p_); }
  double rate() const { return p_; }
  std::unique_ptr<LossModel> clone() const override {
    return std::make_unique<BernoulliLoss>(p_);
  }

 private:
  double p_;
};

/// Two-state Markov (Gilbert–Elliott) burst-loss model. In the good state
/// packets drop with `loss_good`, in the bad state with `loss_bad`; the
/// chain moves good->bad with `p_gb` and bad->good with `p_bg` per packet.
class GilbertElliottLoss final : public LossModel {
 public:
  GilbertElliottLoss(double p_gb, double p_bg, double loss_good,
                     double loss_bad)
      : p_gb_(p_gb), p_bg_(p_bg), loss_good_(loss_good), loss_bad_(loss_bad) {}

  bool drop(RandomEngine& rng) override {
    if (bad_) {
      if (rng.bernoulli(p_bg_)) bad_ = false;
    } else {
      if (rng.bernoulli(p_gb_)) bad_ = true;
    }
    return rng.bernoulli(bad_ ? loss_bad_ : loss_good_);
  }

  bool in_bad_state() const { return bad_; }

  std::unique_ptr<LossModel> clone() const override {
    return std::make_unique<GilbertElliottLoss>(p_gb_, p_bg_, loss_good_,
                                                loss_bad_);
  }

 private:
  double p_gb_, p_bg_, loss_good_, loss_bad_;
  bool bad_ = false;
};

std::unique_ptr<LossModel> make_no_loss();
std::unique_ptr<LossModel> make_bernoulli(double p);

}  // namespace rrmp::net
