// Packet-loss models for the simulated network.
//
// The paper's figure experiments assume lossless requests/repairs and drive
// the *initial multicast* outcome explicitly (a chosen subset of members
// holds the message); these models cover the general scenarios the protocol
// must survive: independent (Bernoulli) loss and bursty (Gilbert–Elliott)
// loss.
#pragma once

#include <map>
#include <memory>
#include <utility>

#include "common/random.h"
#include "common/types.h"

namespace rrmp::net {

class LossModel {
 public:
  virtual ~LossModel() = default;
  /// Returns true if the packet should be dropped.
  virtual bool drop(RandomEngine& rng) = 0;
  /// Fresh model with the same parameters but initial chain state. The
  /// sharded network keeps one clone per region lane so stateful models
  /// (Gilbert–Elliott) never share state across concurrently-running lanes.
  virtual std::unique_ptr<LossModel> clone() const = 0;
};

/// Never drops.
class NoLoss final : public LossModel {
 public:
  bool drop(RandomEngine&) override { return false; }
  std::unique_ptr<LossModel> clone() const override {
    return std::make_unique<NoLoss>();
  }
};

/// Drops each packet independently with probability p.
class BernoulliLoss final : public LossModel {
 public:
  explicit BernoulliLoss(double p) : p_(p) {}
  bool drop(RandomEngine& rng) override { return rng.bernoulli(p_); }
  double rate() const { return p_; }
  std::unique_ptr<LossModel> clone() const override {
    return std::make_unique<BernoulliLoss>(p_);
  }

 private:
  double p_;
};

/// Two-state Markov (Gilbert–Elliott) burst-loss model. In the good state
/// packets drop with `loss_good`, in the bad state with `loss_bad`; the
/// chain moves good->bad with `p_gb` and bad->good with `p_bg` per packet.
class GilbertElliottLoss final : public LossModel {
 public:
  GilbertElliottLoss(double p_gb, double p_bg, double loss_good,
                     double loss_bad)
      : p_gb_(p_gb), p_bg_(p_bg), loss_good_(loss_good), loss_bad_(loss_bad) {}

  bool drop(RandomEngine& rng) override {
    if (bad_) {
      if (rng.bernoulli(p_bg_)) bad_ = false;
    } else {
      if (rng.bernoulli(p_gb_)) bad_ = true;
    }
    return rng.bernoulli(bad_ ? loss_bad_ : loss_good_);
  }

  bool in_bad_state() const { return bad_; }

  std::unique_ptr<LossModel> clone() const override {
    return std::make_unique<GilbertElliottLoss>(p_gb_, p_bg_, loss_good_,
                                                loss_bad_);
  }

 private:
  double p_gb_, p_bg_, loss_good_, loss_bad_;
  bool bad_ = false;
};

std::unique_ptr<LossModel> make_no_loss();
std::unique_ptr<LossModel> make_bernoulli(double p);

/// Per-link loss heterogeneity: overrides the region-wide loss draw for
/// specific links. Two rule granularities, looked up in precedence order:
///
///   1. link rule  (src, dst) — one directed edge,
///   2. member rule (dst)     — every link *into* dst (a lossy edge
///                              receiver, whatever the sender),
///
/// falling back to the caller's region model when neither matches. An
/// override *replaces* the region draw (it does not compound with it), so a
/// run with an empty table consumes exactly the RNG stream of a run without
/// one. The sharded network keeps one clone() per region lane, like the
/// control-loss model, so stateful overrides (Gilbert–Elliott) never share
/// a chain across concurrently-running lanes.
class LinkLossTable {
 public:
  LinkLossTable() = default;
  LinkLossTable(LinkLossTable&&) = default;
  LinkLossTable& operator=(LinkLossTable&&) = default;

  /// Override the directed link src -> dst. Replaces any existing link rule.
  void set_link(MemberId src, MemberId dst, std::unique_ptr<LossModel> model);
  void set_link_rate(MemberId src, MemberId dst, double p);

  /// Override every link into `dst`. Replaces any existing member rule.
  void set_member(MemberId dst, std::unique_ptr<LossModel> model);
  void set_member_rate(MemberId dst, double p);

  void clear() {
    links_.clear();
    members_.clear();
  }

  bool empty() const { return links_.empty() && members_.empty(); }
  std::size_t rule_count() const { return links_.size() + members_.size(); }

  /// The override governing src -> dst (link rule before member rule), or
  /// nullptr when the region model applies. Non-const: drawing from a
  /// stateful model advances its chain.
  LossModel* find(MemberId src, MemberId dst);

  /// Deep copy with fresh chain state per rule (see LossModel::clone).
  LinkLossTable clone() const;

 private:
  // Ordered maps: clone() and any future iteration are deterministic.
  std::map<std::pair<MemberId, MemberId>, std::unique_ptr<LossModel>> links_;
  std::map<MemberId, std::unique_ptr<LossModel>> members_;
};

}  // namespace rrmp::net
