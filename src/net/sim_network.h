// Simulated network connecting protocol endpoints through the discrete-event
// simulator.
//
// Semantics:
//  - unicast: one-way topology latency (+ optional jitter), control-plane
//    loss model applies.
//  - multicast_region: independent unicast to every *attached* member of the
//    sender's region except the sender (IP multicast within a region).
//  - ip_multicast / ip_multicast_to: the sender's initial dissemination;
//    either per-receiver Bernoulli loss or an explicitly chosen receiver set
//    (how the paper drives Figures 6/7).
//
// With codec_roundtrip enabled every message is encoded and re-decoded in
// flight, so the simulator exercises the exact wire format the UDP host
// sends on real sockets.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "net/loss_model.h"
#include "net/topology.h"
#include "proto/messages.h"
#include "sim/simulator.h"

namespace rrmp::net {

/// Delivery interface implemented by protocol endpoints.
class MessageHandler {
 public:
  virtual ~MessageHandler() = default;
  virtual void on_message(const proto::Message& msg, MemberId from) = 0;
};

struct TrafficStats {
  std::uint64_t sends = 0;       // individual point-to-point transmissions
  std::uint64_t delivered = 0;   // transmissions that reached a handler
  std::uint64_t dropped = 0;     // lost to the loss model
  std::uint64_t bytes_sent = 0;  // encoded bytes across all transmissions
  // Per message type (indexed by proto::MessageType value).
  std::array<std::uint64_t, 16> sends_by_type{};
  std::array<std::uint64_t, 16> bytes_by_type{};
};

class SimNetwork {
 public:
  SimNetwork(sim::Simulator& simulator, const Topology& topology,
             RandomEngine rng);

  /// Register/deregister the endpoint that receives messages for `m`.
  /// Messages to unattached members are silently dropped (crashed/left).
  void attach(MemberId m, MessageHandler* handler);
  void detach(MemberId m);
  bool attached(MemberId m) const;

  /// Loss model applied to unicast and regional multicast (control plane and
  /// repairs). The paper's experiments use NoLoss here.
  void set_control_loss(std::unique_ptr<LossModel> model);

  /// Multiply each latency by U(1, 1+fraction). 0 disables jitter.
  void set_latency_jitter(double fraction) { jitter_fraction_ = fraction; }

  /// Encode+decode every message in flight (wire-format fidelity checks).
  void set_codec_roundtrip(bool on) { codec_roundtrip_ = on; }

  void unicast(MemberId from, MemberId to, proto::Message msg);
  void multicast_region(MemberId from, proto::Message msg);

  /// Initial dissemination with independent per-receiver loss, to every
  /// member of the group except the sender.
  void ip_multicast(MemberId from, const proto::Message& msg,
                    double per_receiver_loss);

  /// Initial dissemination to an explicit receiver set (scenario control).
  void ip_multicast_to(MemberId from, const proto::Message& msg,
                       std::span<const MemberId> receivers);

  const TrafficStats& stats() const { return stats_; }
  void reset_stats() { stats_ = TrafficStats{}; }

  const Topology& topology() const { return topology_; }
  sim::Simulator& simulator() { return sim_; }

 private:
  void transmit(MemberId from, MemberId to, const proto::Message& msg,
                bool apply_loss);
  Duration delay(MemberId from, MemberId to);
  void deliver(MemberId to, const proto::Message& msg, MemberId from);

  sim::Simulator& sim_;
  const Topology& topology_;
  RandomEngine rng_;
  std::unordered_map<MemberId, MessageHandler*> handlers_;
  std::unique_ptr<LossModel> control_loss_;
  double jitter_fraction_ = 0.0;
  bool codec_roundtrip_ = false;
  TrafficStats stats_;
};

}  // namespace rrmp::net
