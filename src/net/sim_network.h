// Simulated network connecting protocol endpoints through the discrete-event
// simulator.
//
// Semantics:
//  - unicast: one-way topology latency (+ optional jitter), control-plane
//    loss model applies.
//  - multicast_region: independent unicast to every *attached* member of the
//    sender's region except the sender (IP multicast within a region).
//  - ip_multicast / ip_multicast_to: the sender's initial dissemination;
//    either per-receiver Bernoulli loss or an explicitly chosen receiver set
//    (how the paper drives Figures 6/7).
//
// With codec_roundtrip enabled every message is encoded and re-decoded in
// flight, so the simulator exercises the exact wire format the UDP host
// sends on real sockets.
//
// Delivery is zero-copy: each logical send prepares the in-flight message
// *once* — encode (+ re-decode, when codec_roundtrip is on, with payload
// blobs aliasing the refcounted wire buffer) — and every fan-out recipient's
// delivery event, as well as every cross-lane outbox entry, shares one
// immutable shared_ptr<const Message>. A 1000-member regional multicast
// performs one encode and zero payload copies instead of 1000 of each.
//
// Lane partitioning (sharded mode): the network is split into one *lane* per
// region, each owning a private Simulator, RNG stream, loss-model clone,
// traffic stats and cross-lane outbox. Intra-lane traffic is scheduled
// directly on the lane's simulator; cross-lane traffic is appended to the
// sender lane's outbox and moved into the destination lane's queue by
// exchange(), which the cluster harness calls at deterministic epoch
// barriers. Because every mutable piece of state is lane-local between
// barriers, lanes can run on concurrent worker threads and still produce
// byte-identical results for any thread count. The legacy constructor
// (external simulator) builds a single lane spanning all regions and behaves
// exactly like the pre-sharding network.
//
// Sub-sharding (scale mode): regions larger than `sub_shard_members` are
// additionally split into consecutive-member chunks, each chunk its own
// lane. Intra-region traffic between chunks crosses lanes at intra_rtt/2,
// so splitting a region lowers the safe epoch window to that delay — worth
// it when one giant region would otherwise serialize the whole run on a
// single lane. Off (0, the default): one lane per region, byte-identical to
// the pre-sub-sharding layout.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "net/loss_model.h"
#include "net/topology.h"
#include "proto/messages.h"
#include "sim/simulator.h"

namespace rrmp::net {

/// Delivery interface implemented by protocol endpoints.
class MessageHandler {
 public:
  virtual ~MessageHandler() = default;
  virtual void on_message(const proto::Message& msg, MemberId from) = 0;
};

struct TrafficStats {
  std::uint64_t sends = 0;       // individual point-to-point transmissions
  std::uint64_t delivered = 0;   // transmissions that reached a handler
  std::uint64_t dropped = 0;     // lost to the loss model
  std::uint64_t severed = 0;     // cut by an active partition
  std::uint64_t bytes_sent = 0;  // encoded bytes across all transmissions
  // Cross-lane accounting (sharded mode): packets entering a lane outbox and
  // packets a lane delivered that originated in another lane. Conservation
  // (sends == deliveries once drained) is asserted by the shard stress test.
  std::uint64_t cross_lane_sends = 0;
  std::uint64_t cross_lane_deliveries = 0;
  // Per message type (indexed by proto::MessageType value).
  std::array<std::uint64_t, 16> sends_by_type{};
  std::array<std::uint64_t, 16> bytes_by_type{};

  friend bool operator==(const TrafficStats&, const TrafficStats&) = default;
};

class SimNetwork {
 public:
  /// Legacy single-queue mode: every region shares `simulator`. Behaviour is
  /// identical to the pre-sharding network (one lane, one RNG stream).
  SimNetwork(sim::Simulator& simulator, const Topology& topology,
             RandomEngine rng);

  /// Sharded mode: one privately-owned simulator lane per region (collapsed
  /// to a single lane when that would leave fewer than two lanes or a
  /// non-positive lookahead for barriers). Lane 0 consumes `rng`'s own
  /// stream; lane l>0 uses rng.fork(kLaneDomain+l). `sub_shard_members`,
  /// when nonzero, splits regions larger than it into chunk lanes of that
  /// many consecutive members (see the sub-sharding note above).
  SimNetwork(const Topology& topology, RandomEngine rng,
             std::size_t sub_shard_members = 0);

  /// Register/deregister the endpoint that receives messages for `m`.
  /// Messages to unattached members are silently dropped (crashed/left).
  /// Must not be called while lanes are running (script time only).
  void attach(MemberId m, MessageHandler* handler);
  void detach(MemberId m);
  bool attached(MemberId m) const;

  /// Loss model applied to unicast and regional multicast (control plane and
  /// repairs). Each lane receives its own clone() so stateful models never
  /// share a chain across lanes. The paper's experiments use NoLoss here.
  void set_control_loss(std::unique_ptr<LossModel> model);

  /// Per-link loss overrides (fault injection). Each lane receives its own
  /// clone() of `table`, like set_control_loss, so stateful overrides stay
  /// lane-local. An empty table restores uniform behaviour. Must not be
  /// called while lanes are running (script time only).
  void set_link_loss(const LinkLossTable& table);

  /// Sever all traffic between members of different `groups` (fault
  /// injection). Members listed in no group form one implicit extra group,
  /// connected among themselves. Severed sends are counted (TrafficStats::
  /// severed) but consume no loss-model randomness, and packets already in
  /// flight still deliver — a partition cuts links, it does not eat queues.
  /// Throws std::invalid_argument if a member appears in two groups. Must
  /// not be called while lanes are running (script time only).
  void set_partition(const std::vector<std::vector<MemberId>>& groups);
  void clear_partition() { partition_group_.clear(); }
  bool partitioned() const { return !partition_group_.empty(); }

  /// True when an active partition severs the a <-> b link.
  bool severed(MemberId a, MemberId b) const {
    return !partition_group_.empty() &&
           partition_group_[a] != partition_group_[b];
  }

  /// Multiply each latency by U(1, 1+fraction). 0 disables jitter.
  void set_latency_jitter(double fraction) { jitter_fraction_ = fraction; }

  /// Deterministic drop schedule for the initial dissemination: when set,
  /// ip_multicast asks `fn(msg, receiver)` instead of drawing from the loss
  /// model / Bernoulli rate, consuming no RNG. This lets an experiment run
  /// the *same* loss schedule on the simulator and on the real UDP
  /// transport (transport-parity recovery curves). Unset (default) leaves
  /// every draw bit-identical to the pre-hook behaviour.
  using DataDropFn =
      std::function<bool(const proto::Message& msg, MemberId to)>;
  void set_data_drop_fn(DataDropFn fn) { data_drop_fn_ = std::move(fn); }

  /// Encode+decode every message in flight (wire-format fidelity checks).
  void set_codec_roundtrip(bool on) { codec_roundtrip_ = on; }

  void unicast(MemberId from, MemberId to, proto::Message msg);
  void multicast_region(MemberId from, proto::Message msg);

  /// Initial dissemination with independent per-receiver loss, to every
  /// member of the group except the sender.
  void ip_multicast(MemberId from, const proto::Message& msg,
                    double per_receiver_loss);

  /// Initial dissemination to an explicit receiver set (scenario control).
  void ip_multicast_to(MemberId from, const proto::Message& msg,
                       std::span<const MemberId> receivers);

  /// Aggregate traffic stats across all lanes.
  TrafficStats stats() const;
  /// Stats for a single lane (sharded diagnostics).
  const TrafficStats& lane_stats(std::size_t lane) const;
  void reset_stats();

  // ---- lane surface (used by the sharded cluster harness) -----------------

  std::size_t lane_count() const { return lanes_.size(); }
  std::size_t lane_of(MemberId m) const { return member_lane_[m]; }
  /// First lane of `r` (its only lane unless the region is sub-sharded).
  std::size_t lane_of_region(RegionId r) const { return region_lane_[r]; }
  sim::Simulator& lane_sim(std::size_t lane) { return *lanes_[lane].sim; }
  sim::Simulator& simulator_for(MemberId m) { return *lanes_[lane_of(m)].sim; }

  /// Minimum one-way latency between members of different lanes — the safe
  /// epoch window length. Duration::infinite() with a single lane.
  Duration lookahead() const { return lookahead_; }

  /// Move every outbox entry into its destination lane's event queue.
  /// Single-threaded (barrier) only. Iterates source lanes in index order and
  /// entries in send order, so insertion sequence — and therefore FIFO
  /// tie-breaking among simultaneous arrivals — is deterministic. Returns the
  /// number of packets moved.
  std::size_t exchange();

  /// Earliest pending event time across all lanes (max() when all idle).
  TimePoint next_event_time();

  /// Total events fired across all lane simulators.
  std::uint64_t events_fired() const;

  /// True when no lane outbox holds undelivered cross-lane packets.
  bool outboxes_empty() const;

  const Topology& topology() const { return topology_; }

 private:
  /// Immutable in-flight message, shared by every recipient of a fan-out and
  /// across the cross-lane outbox exchange.
  using MessagePtr = std::shared_ptr<const proto::Message>;

  /// One logical send's in-flight form: built once, transmitted many times.
  struct Prepared {
    MessagePtr msg;  // null if the codec round-trip failed (logged)
    std::size_t wire_bytes = 0;
    std::size_t type_idx = 0;
  };

  struct CrossLanePacket {
    TimePoint deliver_at;
    MemberId from;
    MemberId to;
    MessagePtr msg;
  };

  struct Lane {
    std::unique_ptr<sim::Simulator> owned_sim;  // null in legacy mode
    sim::Simulator* sim = nullptr;
    RandomEngine rng;
    std::unique_ptr<LossModel> loss;
    LinkLossTable links;  // per-link overrides (empty: uniform loss)
    TrafficStats stats;
    std::vector<CrossLanePacket> outbox;

    explicit Lane(RandomEngine r) : rng(std::move(r)), loss(make_no_loss()) {}
  };

  Prepared prepare(proto::Message msg);
  void transmit(MemberId from, MemberId to, const Prepared& p,
                bool apply_loss);
  void dispatch(Lane& src, std::size_t dst_lane, MemberId from, MemberId to,
                MessagePtr msg);
  Duration delay(Lane& src, MemberId from, MemberId to);
  void deliver(MemberId to, const proto::Message& msg, MemberId from);

  const Topology& topology_;
  std::vector<Lane> lanes_;
  std::vector<std::size_t> region_lane_;  // RegionId -> its first lane index
  std::vector<std::size_t> member_lane_;  // MemberId -> lane index
  Duration lookahead_ = Duration::infinite();
  std::unordered_map<MemberId, MessageHandler*> handlers_;
  // member -> partition group; empty when no partition is active. Read-only
  // between script barriers, so concurrent lanes may consult it freely.
  std::vector<std::uint32_t> partition_group_;
  double jitter_fraction_ = 0.0;
  bool codec_roundtrip_ = false;
  DataDropFn data_drop_fn_;
};

}  // namespace rrmp::net
