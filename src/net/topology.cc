#include "net/topology.h"

#include <cassert>
#include <stdexcept>

namespace rrmp::net {

RegionId Topology::add_region(std::string name, std::optional<RegionId> parent,
                              Duration intra_rtt) {
  if (parent && *parent >= regions_.size()) {
    throw std::out_of_range("Topology::add_region: unknown parent region");
  }
  regions_.push_back(Region{std::move(name), parent, intra_rtt, {}});
  return static_cast<RegionId>(regions_.size() - 1);
}

MemberId Topology::add_member(RegionId region) {
  if (region >= regions_.size()) {
    throw std::out_of_range("Topology::add_member: unknown region");
  }
  auto id = static_cast<MemberId>(member_region_.size());
  member_region_.push_back(region);
  regions_[region].members.push_back(id);
  return id;
}

std::vector<MemberId> Topology::add_members(RegionId region,
                                            std::size_t count) {
  std::vector<MemberId> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(add_member(region));
  return out;
}

void Topology::set_inter_latency(RegionId a, RegionId b, Duration one_way) {
  auto key = std::make_pair(std::min(a, b), std::max(a, b));
  for (auto& [k, v] : inter_overrides_) {
    if (k == key) {
      v = one_way;
      return;
    }
  }
  inter_overrides_.emplace_back(key, one_way);
}

std::optional<RegionId> Topology::parent_of(RegionId r) const {
  return regions_.at(r).parent;
}

Duration Topology::inter_one_way(RegionId a, RegionId b) const {
  auto key = std::make_pair(std::min(a, b), std::max(a, b));
  for (const auto& [k, v] : inter_overrides_) {
    if (k == key) return v;
  }
  return default_inter_one_way_;
}

Duration Topology::one_way_latency(MemberId from, MemberId to) const {
  RegionId ra = region_of(from);
  RegionId rb = region_of(to);
  if (ra == rb) return regions_[ra].intra_rtt / 2;
  return inter_one_way(ra, rb);
}

Topology make_hierarchy(const std::vector<std::size_t>& region_sizes,
                        Duration intra_rtt, Duration inter_one_way,
                        const std::vector<RegionId>* parents) {
  Topology topo;
  topo.set_default_inter_latency(inter_one_way);
  for (std::size_t i = 0; i < region_sizes.size(); ++i) {
    std::optional<RegionId> parent;
    if (i > 0) {
      parent = parents ? (*parents)[i] : RegionId{0};
    }
    RegionId r = topo.add_region("region" + std::to_string(i), parent, intra_rtt);
    assert(r == i);
    topo.add_members(r, region_sizes[i]);
  }
  return topo;
}

}  // namespace rrmp::net
