#include "net/topology.h"

#include <cassert>
#include <stdexcept>

namespace rrmp::net {

RegionId Topology::add_region(std::string name, std::optional<RegionId> parent,
                              Duration intra_rtt) {
  if (parent && *parent >= regions_.size()) {
    throw std::out_of_range("Topology::add_region: unknown parent region");
  }
  std::size_t depth = parent ? regions_[*parent].depth + 1 : 0;
  regions_.push_back(Region{std::move(name), parent, intra_rtt, {}, depth});
  return static_cast<RegionId>(regions_.size() - 1);
}

MemberId Topology::add_member(RegionId region) {
  if (region >= regions_.size()) {
    throw std::out_of_range("Topology::add_member: unknown region");
  }
  auto id = static_cast<MemberId>(member_region_.size());
  member_region_.push_back(region);
  regions_[region].members.push_back(id);
  return id;
}

std::vector<MemberId> Topology::add_members(RegionId region,
                                            std::size_t count) {
  std::vector<MemberId> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(add_member(region));
  return out;
}

void Topology::set_inter_latency(RegionId a, RegionId b, Duration one_way) {
  auto key = std::make_pair(std::min(a, b), std::max(a, b));
  for (auto& [k, v] : inter_overrides_) {
    if (k == key) {
      v = one_way;
      return;
    }
  }
  inter_overrides_.emplace_back(key, one_way);
}

std::optional<RegionId> Topology::parent_of(RegionId r) const {
  return regions_.at(r).parent;
}

std::optional<Duration> Topology::inter_override(RegionId a, RegionId b) const {
  auto key = std::make_pair(std::min(a, b), std::max(a, b));
  for (const auto& [k, v] : inter_overrides_) {
    if (k == key) return v;
  }
  return std::nullopt;
}

Duration Topology::inter_one_way(RegionId a, RegionId b) const {
  if (auto ov = inter_override(a, b)) return *ov;
  return default_inter_one_way_;
}

Duration Topology::parent_edge_latency(RegionId r) const {
  const std::optional<RegionId>& parent = regions_.at(r).parent;
  if (!parent) return Duration::zero();
  return inter_one_way(r, *parent);
}

Duration Topology::one_way_latency(MemberId from, MemberId to) const {
  RegionId ra = region_of(from);
  RegionId rb = region_of(to);
  if (ra == rb) return regions_[ra].intra_rtt / 2;
  // An explicit pair override models a direct link between the two regions
  // and wins over the hierarchy path.
  if (auto ov = inter_override(ra, rb)) return *ov;
  // Sum per-edge latencies up both sides to the lowest common ancestor:
  // members in deep sibling subtrees are farther apart than one flat hop.
  Duration sum = Duration::zero();
  RegionId a = ra;
  RegionId b = rb;
  while (a != b) {
    const Region& reg_a = regions_[a];
    const Region& reg_b = regions_[b];
    if (reg_a.depth >= reg_b.depth) {
      if (!reg_a.parent) break;  // distinct roots: bridge them below
      sum += inter_one_way(a, *reg_a.parent);
      a = *reg_a.parent;
    } else {
      sum += inter_one_way(b, *reg_b.parent);
      b = *reg_b.parent;
    }
  }
  if (a != b) sum += inter_one_way(a, b);  // forest: one hop between roots
  return sum;
}

Duration Topology::min_cross_region_latency() const {
  if (regions_.size() < 2) return Duration::infinite();
  Duration min = Duration::infinite();
  std::size_t roots = 0;
  for (RegionId r = 0; r < static_cast<RegionId>(regions_.size()); ++r) {
    if (!regions_[r].parent) {
      ++roots;
      continue;
    }
    Duration d = parent_edge_latency(r);
    if (d < min) min = d;
  }
  if (roots >= 2 && default_inter_one_way_ < min) {
    min = default_inter_one_way_;  // the bridge hop between distinct roots
  }
  for (const auto& [key, d] : inter_overrides_) {
    if (d < min) min = d;
  }
  return min;
}

Topology make_hierarchy(const std::vector<std::size_t>& region_sizes,
                        Duration intra_rtt, Duration inter_one_way,
                        const std::vector<RegionId>* parents) {
  Topology topo;
  topo.set_default_inter_latency(inter_one_way);
  for (std::size_t i = 0; i < region_sizes.size(); ++i) {
    std::optional<RegionId> parent;
    if (i > 0) {
      parent = parents ? (*parents)[i] : RegionId{0};
    }
    RegionId r = topo.add_region("region" + std::to_string(i), parent, intra_rtt);
    assert(r == i);
    topo.add_members(r, region_sizes[i]);
  }
  return topo;
}

}  // namespace rrmp::net
