#include "net/sim_network.h"

#include <cassert>
#include <stdexcept>

#include "common/logging.h"
#include "proto/codec.h"

namespace rrmp::net {
namespace {

// Stream-id domain for per-lane RNG forks (lane 0 keeps the parent stream so
// single-lane networks draw the same sequence as the legacy constructor).
constexpr std::uint64_t kLaneDomain = 0x9A7E0000ULL;

}  // namespace

SimNetwork::SimNetwork(sim::Simulator& simulator, const Topology& topology,
                       RandomEngine rng)
    : topology_(topology) {
  lanes_.emplace_back(std::move(rng));
  lanes_[0].sim = &simulator;
  region_lane_.assign(topology_.region_count(), 0);
  member_lane_.assign(topology_.member_count(), 0);
}

SimNetwork::SimNetwork(const Topology& topology, RandomEngine rng,
                       std::size_t sub_shard_members)
    : topology_(topology) {
  // The safe epoch window: no cross-lane path can undercut the minimum
  // topology edge, and splitting a region adds intra-region cross-lane
  // traffic at that region's one-way delay.
  Duration la = topology_.min_cross_region_latency();
  std::size_t total_lanes = 0;
  region_lane_.resize(topology_.region_count());
  member_lane_.resize(topology_.member_count());
  for (RegionId r = 0; r < static_cast<RegionId>(topology_.region_count());
       ++r) {
    const std::vector<MemberId>& members = topology_.members_of(r);
    region_lane_[r] = total_lanes;
    std::size_t chunks = 1;
    if (sub_shard_members > 0 && members.size() > sub_shard_members) {
      chunks = (members.size() + sub_shard_members - 1) / sub_shard_members;
      Duration intra = topology_.intra_rtt(r) / 2;
      if (intra < la) la = intra;
    }
    for (std::size_t i = 0; i < members.size(); ++i) {
      member_lane_[members[i]] =
          total_lanes + (chunks == 1 ? 0 : i / sub_shard_members);
    }
    total_lanes += chunks;
  }
  bool sharded = total_lanes >= 2 && la > Duration::zero() &&
                 la != Duration::infinite();
  if (!sharded) {
    // No usable lookahead: a single lane spanning every region.
    lanes_.emplace_back(std::move(rng));
    lanes_[0].owned_sim = std::make_unique<sim::Simulator>();
    lanes_[0].sim = lanes_[0].owned_sim.get();
    region_lane_.assign(topology_.region_count(), 0);
    member_lane_.assign(topology_.member_count(), 0);
    return;
  }
  lookahead_ = la;
  lanes_.reserve(total_lanes);
  // Lane 0 keeps the parent stream (so 1-lane sharded networks draw the
  // same sequence as the legacy constructor); lanes l>0 take the split
  // children, which are fork(kLaneDomain + l) by definition. With
  // sub-sharding off the lane count equals the region count, so every
  // existing configuration draws the exact streams it always did.
  std::vector<RandomEngine> lane_rngs = rng.split(total_lanes, kLaneDomain);
  for (std::size_t l = 0; l < total_lanes; ++l) {
    lanes_.emplace_back(l == 0 ? std::move(rng) : std::move(lane_rngs[l]));
    lanes_[l].owned_sim = std::make_unique<sim::Simulator>();
    lanes_[l].sim = lanes_[l].owned_sim.get();
  }
}

void SimNetwork::attach(MemberId m, MessageHandler* handler) {
  if (handler == nullptr) {
    throw std::invalid_argument("SimNetwork::attach: null handler");
  }
  handlers_[m] = handler;
}

void SimNetwork::detach(MemberId m) { handlers_.erase(m); }

bool SimNetwork::attached(MemberId m) const {
  return handlers_.find(m) != handlers_.end();
}

void SimNetwork::set_control_loss(std::unique_ptr<LossModel> model) {
  if (!model) {
    for (Lane& lane : lanes_) lane.loss = make_no_loss();
    return;
  }
  // Lanes beyond the first receive fresh clones so stateful chains stay
  // lane-local; lane 0 keeps the caller's instance.
  for (std::size_t i = 1; i < lanes_.size(); ++i) {
    lanes_[i].loss = model->clone();
  }
  lanes_[0].loss = std::move(model);
}

void SimNetwork::set_link_loss(const LinkLossTable& table) {
  // Every lane gets a fresh clone (the caller keeps the master copy), so
  // stateful overrides never share a chain across lanes.
  for (Lane& lane : lanes_) lane.links = table.clone();
}

void SimNetwork::set_partition(const std::vector<std::vector<MemberId>>& groups) {
  // Group 0 is the implicit group of unlisted members; listed group i
  // becomes i+1.
  std::vector<std::uint32_t> assignment(topology_.member_count(), 0);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (MemberId m : groups[g]) {
      if (m >= assignment.size()) {
        throw std::invalid_argument("set_partition: member out of range");
      }
      if (assignment[m] != 0) {
        throw std::invalid_argument("set_partition: member in two groups");
      }
      assignment[m] = static_cast<std::uint32_t>(g + 1);
    }
  }
  partition_group_ = std::move(assignment);
}

Duration SimNetwork::delay(Lane& src, MemberId from, MemberId to) {
  Duration d = topology_.one_way_latency(from, to);
  if (jitter_fraction_ > 0.0) {
    // Jitter only stretches (factor >= 1), so it can never undercut the
    // cross-lane lookahead computed from base latencies.
    d = d.scaled(src.rng.uniform_real(1.0, 1.0 + jitter_fraction_));
  }
  return d;
}

void SimNetwork::deliver(MemberId to, const proto::Message& msg,
                         MemberId from) {
  auto it = handlers_.find(to);
  if (it == handlers_.end()) return;  // crashed or left: packet vanishes
  Lane& dst = lanes_[lane_of(to)];
  ++dst.stats.delivered;
  if (lane_of(from) != lane_of(to)) ++dst.stats.cross_lane_deliveries;
  it->second->on_message(msg, from);
}

void SimNetwork::dispatch(Lane& src, std::size_t dst_lane, MemberId from,
                          MemberId to, MessagePtr msg) {
  TimePoint deliver_at = src.sim->now() + delay(src, from, to);
  if (&lanes_[dst_lane] == &src) {
    // this + two MemberIds + one shared_ptr: well inside sim::Callback's
    // inline buffer, so the delivery event never heap-allocates.
    src.sim->schedule_at(deliver_at,
                         [this, to, m = std::move(msg), from]() {
                           deliver(to, *m, from);
                         });
    return;
  }
  ++src.stats.cross_lane_sends;
  src.outbox.push_back(CrossLanePacket{deliver_at, from, to, std::move(msg)});
}

SimNetwork::Prepared SimNetwork::prepare(proto::Message msg) {
  Prepared p;
  p.wire_bytes = proto::encoded_size(msg);
  p.type_idx = static_cast<std::size_t>(proto::type_of(msg));
  if (codec_roundtrip_) {
    // One encode + one aliasing decode per logical send; payload blobs in
    // the decoded message borrow the refcounted wire buffer.
    auto decoded = proto::decode_shared(proto::encode_shared(msg));
    if (!decoded) {
      log::error("SimNetwork: codec round-trip failed for ",
                 proto::type_name(msg));
      return p;  // p.msg stays null; transmit counts the send, delivers none
    }
    p.msg = std::make_shared<const proto::Message>(std::move(*decoded));
  } else {
    p.msg = std::make_shared<const proto::Message>(std::move(msg));
  }
  return p;
}

void SimNetwork::transmit(MemberId from, MemberId to, const Prepared& p,
                          bool apply_loss) {
  Lane& src = lanes_[lane_of(from)];
  ++src.stats.sends;
  src.stats.bytes_sent += p.wire_bytes;
  if (p.type_idx < src.stats.sends_by_type.size()) {
    ++src.stats.sends_by_type[p.type_idx];
    src.stats.bytes_by_type[p.type_idx] += p.wire_bytes;
  }
  // A partition severs the link before any loss draw, consuming no
  // randomness: without one, the RNG stream is untouched.
  if (severed(from, to)) {
    ++src.stats.severed;
    return;
  }
  if (apply_loss) {
    // A link override *replaces* the lane's uniform draw for this edge.
    LossModel* link = src.links.find(from, to);
    if (link != nullptr ? link->drop(src.rng) : src.loss->drop(src.rng)) {
      ++src.stats.dropped;
      return;
    }
  }
  if (!p.msg) return;  // codec round-trip failed (already logged)
  dispatch(src, lane_of(to), from, to, p.msg);
}

void SimNetwork::unicast(MemberId from, MemberId to, proto::Message msg) {
  transmit(from, to, prepare(std::move(msg)), /*apply_loss=*/true);
}

void SimNetwork::multicast_region(MemberId from, proto::Message msg) {
  RegionId r = topology_.region_of(from);
  Prepared p = prepare(std::move(msg));
  for (MemberId m : topology_.members_of(r)) {
    if (m == from) continue;
    transmit(from, m, p, /*apply_loss=*/true);
  }
}

void SimNetwork::ip_multicast(MemberId from, const proto::Message& msg,
                              double per_receiver_loss) {
  Lane& src = lanes_[lane_of(from)];
  // The initial dissemination models raw IP multicast: no codec round-trip,
  // one shared in-flight copy for the whole group.
  MessagePtr in_flight = std::make_shared<const proto::Message>(msg);
  for (std::size_t m = 0; m < topology_.member_count(); ++m) {
    auto member = static_cast<MemberId>(m);
    if (member == from) continue;
    ++src.stats.sends;
    if (severed(from, member)) {
      ++src.stats.severed;
      continue;
    }
    // A deterministic drop schedule (transport-parity experiments) replaces
    // every draw and consumes no RNG; otherwise a lossy-edge receiver's
    // override replaces the uniform per-receiver draw for its link only,
    // and everyone else draws exactly as before.
    bool lost;
    if (data_drop_fn_) {
      lost = data_drop_fn_(msg, member);
    } else {
      LossModel* link = src.links.find(from, member);
      lost = link != nullptr ? link->drop(src.rng)
                             : src.rng.bernoulli(per_receiver_loss);
    }
    if (lost) {
      ++src.stats.dropped;
      continue;
    }
    dispatch(src, lane_of(member), from, member, in_flight);
  }
}

void SimNetwork::ip_multicast_to(MemberId from, const proto::Message& msg,
                                 std::span<const MemberId> receivers) {
  Prepared p = prepare(msg);
  for (MemberId member : receivers) {
    if (member == from) continue;
    transmit(from, member, p, /*apply_loss=*/false);
  }
}

TrafficStats SimNetwork::stats() const {
  TrafficStats total;
  for (const Lane& lane : lanes_) {
    const TrafficStats& s = lane.stats;
    total.sends += s.sends;
    total.delivered += s.delivered;
    total.dropped += s.dropped;
    total.severed += s.severed;
    total.bytes_sent += s.bytes_sent;
    total.cross_lane_sends += s.cross_lane_sends;
    total.cross_lane_deliveries += s.cross_lane_deliveries;
    for (std::size_t i = 0; i < s.sends_by_type.size(); ++i) {
      total.sends_by_type[i] += s.sends_by_type[i];
      total.bytes_by_type[i] += s.bytes_by_type[i];
    }
  }
  return total;
}

const TrafficStats& SimNetwork::lane_stats(std::size_t lane) const {
  return lanes_.at(lane).stats;
}

void SimNetwork::reset_stats() {
  for (Lane& lane : lanes_) lane.stats = TrafficStats{};
}

std::size_t SimNetwork::exchange() {
  std::size_t moved = 0;
  for (Lane& src : lanes_) {
    for (CrossLanePacket& pkt : src.outbox) {
      Lane& dst = lanes_[lane_of(pkt.to)];
      dst.sim->schedule_at(pkt.deliver_at,
                           [this, to = pkt.to, m = std::move(pkt.msg),
                            from = pkt.from]() { deliver(to, *m, from); });
      ++moved;
    }
    src.outbox.clear();
  }
  return moved;
}

TimePoint SimNetwork::next_event_time() {
  TimePoint min = TimePoint::max();
  for (Lane& lane : lanes_) {
    TimePoint t = lane.sim->next_event_time();
    if (t < min) min = t;
  }
  return min;
}

std::uint64_t SimNetwork::events_fired() const {
  std::uint64_t total = 0;
  for (const Lane& lane : lanes_) total += lane.sim->fired_count();
  return total;
}

bool SimNetwork::outboxes_empty() const {
  for (const Lane& lane : lanes_) {
    if (!lane.outbox.empty()) return false;
  }
  return true;
}

}  // namespace rrmp::net
