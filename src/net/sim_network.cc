#include "net/sim_network.h"

#include <cassert>
#include <stdexcept>

#include "common/logging.h"
#include "proto/codec.h"

namespace rrmp::net {

SimNetwork::SimNetwork(sim::Simulator& simulator, const Topology& topology,
                       RandomEngine rng)
    : sim_(simulator),
      topology_(topology),
      rng_(std::move(rng)),
      control_loss_(make_no_loss()) {}

void SimNetwork::attach(MemberId m, MessageHandler* handler) {
  if (handler == nullptr) {
    throw std::invalid_argument("SimNetwork::attach: null handler");
  }
  handlers_[m] = handler;
}

void SimNetwork::detach(MemberId m) { handlers_.erase(m); }

bool SimNetwork::attached(MemberId m) const {
  return handlers_.find(m) != handlers_.end();
}

void SimNetwork::set_control_loss(std::unique_ptr<LossModel> model) {
  control_loss_ = model ? std::move(model) : make_no_loss();
}

Duration SimNetwork::delay(MemberId from, MemberId to) {
  Duration d = topology_.one_way_latency(from, to);
  if (jitter_fraction_ > 0.0) {
    d = d.scaled(rng_.uniform_real(1.0, 1.0 + jitter_fraction_));
  }
  return d;
}

void SimNetwork::deliver(MemberId to, const proto::Message& msg,
                         MemberId from) {
  auto it = handlers_.find(to);
  if (it == handlers_.end()) return;  // crashed or left: packet vanishes
  ++stats_.delivered;
  it->second->on_message(msg, from);
}

void SimNetwork::transmit(MemberId from, MemberId to,
                          const proto::Message& msg, bool apply_loss) {
  ++stats_.sends;
  std::size_t wire_bytes = proto::encoded_size(msg);
  stats_.bytes_sent += wire_bytes;
  auto type_idx = static_cast<std::size_t>(proto::type_of(msg));
  if (type_idx < stats_.sends_by_type.size()) {
    ++stats_.sends_by_type[type_idx];
    stats_.bytes_by_type[type_idx] += wire_bytes;
  }
  if (apply_loss && control_loss_->drop(rng_)) {
    ++stats_.dropped;
    return;
  }
  proto::Message in_flight = msg;
  if (codec_roundtrip_) {
    auto decoded = proto::decode(proto::encode(msg));
    if (!decoded) {
      log::error("SimNetwork: codec round-trip failed for ",
                 proto::type_name(msg));
      return;
    }
    in_flight = std::move(*decoded);
  }
  sim_.schedule_after(delay(from, to),
                      [this, to, m = std::move(in_flight), from]() {
                        deliver(to, m, from);
                      });
}

void SimNetwork::unicast(MemberId from, MemberId to, proto::Message msg) {
  transmit(from, to, msg, /*apply_loss=*/true);
}

void SimNetwork::multicast_region(MemberId from, proto::Message msg) {
  RegionId r = topology_.region_of(from);
  for (MemberId m : topology_.members_of(r)) {
    if (m == from) continue;
    transmit(from, m, msg, /*apply_loss=*/true);
  }
}

void SimNetwork::ip_multicast(MemberId from, const proto::Message& msg,
                              double per_receiver_loss) {
  for (std::size_t m = 0; m < topology_.member_count(); ++m) {
    auto member = static_cast<MemberId>(m);
    if (member == from) continue;
    ++stats_.sends;
    if (rng_.bernoulli(per_receiver_loss)) {
      ++stats_.dropped;
      continue;
    }
    proto::Message copy = msg;
    sim_.schedule_after(delay(from, member),
                        [this, member, mm = std::move(copy), from]() {
                          deliver(member, mm, from);
                        });
  }
}

void SimNetwork::ip_multicast_to(MemberId from, const proto::Message& msg,
                                 std::span<const MemberId> receivers) {
  for (MemberId member : receivers) {
    if (member == from) continue;
    transmit(from, member, msg, /*apply_loss=*/false);
  }
}

}  // namespace rrmp::net
