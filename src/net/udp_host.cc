#include "net/udp_host.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "common/logging.h"

namespace rrmp::net {
namespace {

std::int64_t monotonic_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

UdpBus::UdpBus(std::size_t member_count, std::uint16_t base_port)
    : base_port_(base_port) {
  epoch_ns_ = monotonic_ns();
  fds_.reserve(member_count);
  for (std::size_t i = 0; i < member_count; ++i) {
    int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd < 0) {
      throw std::runtime_error(std::string("UdpBus: socket() failed: ") +
                               std::strerror(errno));
    }
    // No SO_REUSEADDR: each member's port must be exclusive, and a
    // collision with another process should fail loudly at startup.
    sockaddr_in addr =
        loopback_addr(static_cast<std::uint16_t>(base_port + i));
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      int saved = errno;
      ::close(fd);
      for (int f : fds_) ::close(f);
      fds_.clear();
      throw std::runtime_error(std::string("UdpBus: bind() failed: ") +
                               std::strerror(saved));
    }
    int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    fds_.push_back(fd);
  }
}

UdpBus::~UdpBus() {
  for (int fd : fds_) ::close(fd);
}

TimePoint UdpBus::now() const {
  return TimePoint::from_us((monotonic_ns() - epoch_ns_) / 1000);
}

void UdpBus::write_datagram(MemberId from, MemberId to,
                            const std::vector<std::uint8_t>& bytes) {
  if (from >= fds_.size() || to >= fds_.size()) return;
  sockaddr_in dst =
      loopback_addr(static_cast<std::uint16_t>(base_port_ + to));
  ssize_t n = ::sendto(fds_[from], bytes.data(), bytes.size(), 0,
                       reinterpret_cast<sockaddr*>(&dst), sizeof(dst));
  if (n < 0) {
    log::warn("UdpBus: sendto failed: ", std::strerror(errno));
    return;
  }
  ++datagrams_sent_;
}

void UdpBus::send(MemberId from, MemberId to,
                  std::vector<std::uint8_t> bytes) {
  Duration d = delay_fn_ ? delay_fn_(from, to) : Duration::zero();
  if (d <= Duration::zero()) {
    write_datagram(from, to, bytes);
    return;
  }
  schedule_after(d, [this, from, to, b = std::move(bytes)]() {
    write_datagram(from, to, b);
  });
}

std::uint64_t UdpBus::schedule_after(Duration d, std::function<void()> fn) {
  std::uint64_t id = next_timer_id_++;
  timer_heap_.push(PendingTimer{now() + d, next_timer_seq_++, id});
  timer_fns_.emplace(id, std::move(fn));
  return id;
}

void UdpBus::cancel(std::uint64_t timer_id) { timer_fns_.erase(timer_id); }

bool UdpBus::fire_due_timers() {
  bool fired = false;
  TimePoint t = now();
  while (!timer_heap_.empty() && timer_heap_.top().when <= t) {
    PendingTimer e = timer_heap_.top();
    timer_heap_.pop();
    auto it = timer_fns_.find(e.id);
    if (it == timer_fns_.end()) continue;  // cancelled
    auto fn = std::move(it->second);
    timer_fns_.erase(it);
    fn();
    fired = true;
  }
  return fired;
}

TimePoint UdpBus::next_deadline(TimePoint hard_deadline) const {
  TimePoint d = hard_deadline;
  // Skip cancelled heads conservatively: the top entry may be cancelled, in
  // which case we wake up slightly early and re-evaluate — harmless.
  if (!timer_heap_.empty() && timer_heap_.top().when < d) {
    d = timer_heap_.top().when;
  }
  return d;
}

void UdpBus::drain_sockets() {
  std::uint8_t buf[65536];
  for (std::size_t i = 0; i < fds_.size(); ++i) {
    for (;;) {
      sockaddr_in src{};
      socklen_t srclen = sizeof(src);
      ssize_t n = ::recvfrom(fds_[i], buf, sizeof(buf), 0,
                             reinterpret_cast<sockaddr*>(&src), &srclen);
      if (n < 0) break;  // EAGAIN or error: next socket
      ++datagrams_received_;
      std::uint16_t src_port = ntohs(src.sin_port);
      if (src_port < base_port_ ||
          src_port >= base_port_ + fds_.size()) {
        continue;  // stray datagram from an unrelated sender
      }
      auto from = static_cast<MemberId>(src_port - base_port_);
      if (on_receive_) {
        on_receive_(static_cast<MemberId>(i), from,
                    std::span<const std::uint8_t>(buf, static_cast<std::size_t>(n)));
      }
    }
  }
}

std::size_t UdpBus::run_until(TimePoint deadline) {
  stopped_ = false;
  std::uint64_t received_before = datagrams_received_;
  std::vector<pollfd> pfds(fds_.size());
  for (std::size_t i = 0; i < fds_.size(); ++i) {
    pfds[i] = pollfd{fds_[i], POLLIN, 0};
  }
  while (!stopped_ && now() < deadline) {
    fire_due_timers();
    TimePoint wake = next_deadline(deadline);
    Duration until_wake = wake - now();
    int timeout_ms = 0;
    if (until_wake > Duration::zero()) {
      timeout_ms = static_cast<int>(until_wake.us() / 1000) + 1;
    }
    int rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (rc < 0 && errno != EINTR) {
      log::error("UdpBus: poll failed: ", std::strerror(errno));
      break;
    }
    if (rc > 0) drain_sockets();
  }
  fire_due_timers();
  drain_sockets();
  return static_cast<std::size_t>(datagrams_received_ - received_before);
}

}  // namespace rrmp::net
