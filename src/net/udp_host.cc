#include "net/udp_host.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/udp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "common/logging.h"

#if defined(__linux__)
// Kernel ≥ 4.18 / ≥ 5.0 socket options; older libc headers may lack them.
#ifndef UDP_SEGMENT
#define UDP_SEGMENT 103
#endif
#ifndef UDP_GRO
#define UDP_GRO 104
#endif
#endif

namespace rrmp::net {
namespace {

// Stack-array bound for the mmsghdr/iovec scratch in the batched paths;
// config batch sizes are clamped to it.
constexpr std::size_t kMaxBatch = 64;

// Kernel cap on segments per GSO send (UDP_MAX_SEGMENTS) and the largest
// possible UDP payload — a train must respect both.
constexpr std::size_t kMaxGsoSegments = 64;
constexpr std::size_t kMaxUdpPayload = 65507;
// A GRO-coalesced train can be as large as one UDP datagram's payload
// bound; offload ring slots must hold a whole train.
constexpr std::size_t kOffloadSegmentSize = 65536;

std::size_t clamp_batch(std::size_t b) {
  return std::clamp<std::size_t>(b, 1, kMaxBatch);
}

bool offload_requested(const UdpBusConfig& c) {
#if defined(__linux__)
  return c.segmentation_offload && c.batched_syscalls;
#else
  (void)c;
  return false;
#endif
}

std::size_t effective_segment_size(const UdpBusConfig& c) {
  if (offload_requested(c)) {
    return std::max(c.segment_size, kOffloadSegmentSize);
  }
  return c.segment_size;
}

std::size_t effective_ring_segments(const UdpBusConfig& c) {
  if (c.ring_segments != 0) return c.ring_segments;
  if (offload_requested(c)) {
    // 64 KiB slots each holding a whole train: a shallow ring suffices.
    return std::max<std::size_t>(clamp_batch(c.batch_size), 16);
  }
  return std::max<std::size_t>(8 * clamp_batch(c.batch_size), 64);
}

std::int64_t monotonic_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

namespace detail {

RecvDisposition classify_recv_errno(int err) {
  if (err == EINTR) return RecvDisposition::kRetry;
  if (err == EAGAIN || err == EWOULDBLOCK) return RecvDisposition::kDrained;
  return RecvDisposition::kError;
}

}  // namespace detail

SegmentRing::SegmentRing(std::size_t segments, std::size_t segment_size)
    : segment_size_(segment_size) {
  slots_.reserve(segments);
  for (std::size_t i = 0; i < segments; ++i) {
    slots_.push_back(
        std::make_shared<std::vector<std::uint8_t>>(segment_size));
  }
}

std::uint8_t* SegmentRing::writable(std::size_t i) {
  auto& slot = slots_[(head_ + i) % slots_.size()];
  if (slot.use_count() > 1) {
    // Still pinned by a delivered SharedBytes (e.g. a buffered payload):
    // never overwrite — give the ring a fresh buffer and let the pinned one
    // live for as long as its references do.
    slot = std::make_shared<std::vector<std::uint8_t>>(segment_size_);
    ++replacements_;
  }
  return slot->data();
}

SharedBytes SegmentRing::view(std::size_t i, std::size_t len) {
  return view_at(i, 0, len);
}

SharedBytes SegmentRing::view_at(std::size_t i, std::size_t offset,
                                 std::size_t len) {
  const auto& slot = slots_[(head_ + i) % slots_.size()];
  return SharedBytes::adopt(slot, offset, len);
}

UdpBus::UdpBus(std::size_t member_count, std::uint16_t base_port,
               UdpBusConfig config)
    : config_(std::move(config)),
      base_port_(base_port),
      total_members_(member_count),
      ring_(effective_ring_segments(config_), effective_segment_size(config_)) {
  // Port-range overflow check: base_port + i used to be truncated through
  // uint16, silently wrapping past 65535 into colliding/wrong ports.
  if (static_cast<std::size_t>(base_port_) + member_count > 65536) {
    throw std::runtime_error(
        "UdpBus: port range overflow: base_port " +
        std::to_string(base_port_) + " + " + std::to_string(member_count) +
        " members exceeds port 65535");
  }
  config_.batch_size = std::clamp<std::size_t>(config_.batch_size, 1,
                                               kMaxBatch);
  first_member_ = std::min(config_.first_member, member_count);
  std::size_t owned =
      std::min(config_.owned_count, member_count - first_member_);
  batched_ = config_.batched_syscalls;
#if !defined(__linux__)
  batched_ = false;  // recvmmsg/sendmmsg unavailable: scalar path
#endif
  gso_active_ = gro_active_ = offload_requested(config_);
  epoch_ns_ = config_.epoch_ns != 0 ? config_.epoch_ns : monotonic_ns();

  fds_.reserve(owned);
  for (std::size_t i = 0; i < owned; ++i) {
    int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd < 0) {
      for (int f : fds_) ::close(f);
      fds_.clear();
      throw std::runtime_error(std::string("UdpBus: socket() failed: ") +
                               std::strerror(errno));
    }
    // No SO_REUSEADDR: each member's port must be exclusive, and a
    // collision with another process should fail loudly at startup.
    sockaddr_in addr = loopback_addr(
        static_cast<std::uint16_t>(base_port_ + first_member_ + i));
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      int saved = errno;
      ::close(fd);
      for (int f : fds_) ::close(f);
      fds_.clear();
      throw std::runtime_error(std::string("UdpBus: bind() failed: ") +
                               std::strerror(saved));
    }
    int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    fds_.push_back(fd);
#if defined(__linux__)
    if (gro_active_) {
      // Every socket must agree on GRO: an unsplit coalesced train on a
      // socket without the option would be delivered as one fused
      // datagram. First refusal turns it off for the bus — and strips it
      // from any socket already configured.
      int on = 1;
      if (::setsockopt(fd, IPPROTO_UDP, UDP_GRO, &on, sizeof(on)) != 0) {
        log::warn("UdpBus: UDP_GRO unsupported (", std::strerror(errno),
                  "): receive offload disabled");
        gro_active_ = false;
        int off = 0;
        for (int f : fds_) {
          ::setsockopt(f, IPPROTO_UDP, UDP_GRO, &off, sizeof(off));
        }
      }
    }
#endif
  }
}

UdpBus::~UdpBus() {
  for (int fd : fds_) ::close(fd);
}

TimePoint UdpBus::now() const {
  return TimePoint::from_us((monotonic_ns() - epoch_ns_) / 1000);
}

void UdpBus::write_datagram_scalar(MemberId from, MemberId to,
                                   std::span<const std::uint8_t> bytes) {
  sockaddr_in dst =
      loopback_addr(static_cast<std::uint16_t>(base_port_ + to));
  ssize_t n;
  do {
    n = ::sendto(fd_of(from), bytes.data(), bytes.size(), 0,
                 reinterpret_cast<sockaddr*>(&dst), sizeof(dst));
  } while (n < 0 && errno == EINTR);
  ++send_syscalls_;
  if (n < 0) {
    log::warn("UdpBus: sendto failed: ", std::strerror(errno));
    return;
  }
  if (detail::is_short_write(n, bytes.size())) {
    log::warn("UdpBus: short datagram write: ", n, " of ", bytes.size(),
              " bytes");
  }
  ++datagrams_sent_;
}

void UdpBus::write_datagram(MemberId from, MemberId to, SharedBytes bytes) {
  if (!owns(from) || to >= total_members_) return;
  if (!batched_) {
    write_datagram_scalar(from, to, bytes.span());
    return;
  }
  send_queue_.push_back(PendingSend{from, to, std::move(bytes)});
  if (send_queue_.size() >= 4 * config_.batch_size) flush_sends();
}

void UdpBus::send_shared(MemberId from, MemberId to, SharedBytes bytes) {
  if (!owns(from) || to >= total_members_) return;
  Duration d = delay_fn_ ? delay_fn_(from, to) : Duration::zero();
  if (d <= Duration::zero()) {
    write_datagram(from, to, std::move(bytes));
    return;
  }
  schedule_after(d, [this, from, to, b = std::move(bytes)]() {
    write_datagram(from, to, b);
  });
}

std::size_t UdpBus::send_gso_train(std::size_t begin, std::size_t count) {
#if defined(__linux__)
  const PendingSend& head = send_queue_[begin];
  iovec iovs[kMaxGsoSegments];
  std::size_t total = 0;
  for (std::size_t j = 0; j < count; ++j) {
    const SharedBytes& b = send_queue_[begin + j].bytes;
    iovs[j] = {const_cast<std::uint8_t*>(b.data()), b.size()};
    total += b.size();
  }
  sockaddr_in dst =
      loopback_addr(static_cast<std::uint16_t>(base_port_ + head.to));
  char ctrl[CMSG_SPACE(sizeof(std::uint16_t))] = {};
  msghdr mh{};
  mh.msg_name = &dst;
  mh.msg_namelen = sizeof(dst);
  mh.msg_iov = iovs;
  mh.msg_iovlen = count;
  mh.msg_control = ctrl;
  mh.msg_controllen = sizeof(ctrl);
  cmsghdr* cm = CMSG_FIRSTHDR(&mh);
  cm->cmsg_level = SOL_UDP;
  cm->cmsg_type = UDP_SEGMENT;
  cm->cmsg_len = CMSG_LEN(sizeof(std::uint16_t));
  auto seg = static_cast<std::uint16_t>(head.bytes.size());
  std::memcpy(CMSG_DATA(cm), &seg, sizeof(seg));
  ssize_t n;
  do {
    n = ::sendmsg(fd_of(head.from), &mh, 0);
  } while (n < 0 && errno == EINTR);
  ++send_syscalls_;
  if (n < 0) {
    if (errno == EINVAL || errno == ENOTSUP || errno == EOPNOTSUPP ||
        errno == ENOSYS || errno == EIO) {
      log::warn("UdpBus: UDP_SEGMENT refused (", std::strerror(errno),
                "): send offload disabled");
      gso_active_ = false;
      return 0;  // caller re-sends the range through sendmmsg
    }
    // Same policy as a failed sendmmsg batch: drop the first datagram and
    // keep going — here the whole train was one datagram on the wire.
    log::warn("UdpBus: GSO sendmsg failed: ", std::strerror(errno));
    return count;
  }
  if (detail::is_short_write(n, total)) {
    log::warn("UdpBus: short GSO train write: ", n, " of ", total, " bytes");
  }
  ++gso_batches_;
  datagrams_sent_ += count;
  return count;
#else
  (void)begin;
  (void)count;
  return 0;
#endif
}

void UdpBus::flush_run(std::size_t begin, std::size_t end) {
#if defined(__linux__)
  // With offload on, flush_sends bucketed this run by destination, so
  // equal-size groups sit contiguously: carve them off as GSO trains and
  // feed whatever is left (singletons, mixed sizes) to the sendmmsg
  // batcher below.
  auto train_len = [&](std::size_t i) {
    const PendingSend& h = send_queue_[i];
    if (h.bytes.empty()) return std::size_t{1};
    std::size_t len = 1;
    std::size_t total = h.bytes.size();
    while (i + len < end && len < kMaxGsoSegments &&
           send_queue_[i + len].to == h.to &&
           send_queue_[i + len].bytes.size() == h.bytes.size() &&
           total + h.bytes.size() <= kMaxUdpPayload) {
      ++len;
      total += h.bytes.size();
    }
    return len;
  };
  while (batched_ && begin < end) {
    if (gso_active_) {
      std::size_t t = train_len(begin);
      if (t >= 2) {
        std::size_t consumed = send_gso_train(begin, t);
        if (consumed > 0) {
          begin += consumed;
          continue;
        }
        // consumed == 0: the kernel refused offload and gso_active_ is now
        // false — re-send the same range through sendmmsg below.
      }
    }
    mmsghdr msgs[kMaxBatch];
    iovec iovs[kMaxBatch];
    sockaddr_in dsts[kMaxBatch];
    std::size_t n = std::min(end - begin, config_.batch_size);
    // Stop the plain batch at the next GSO train so interleaved
    // singleton/train patterns keep their trains.
    if (gso_active_) {
      std::size_t cut = 1;
      while (cut < n && train_len(begin + cut) < 2) ++cut;
      n = cut;
    }
    for (std::size_t j = 0; j < n; ++j) {
      const PendingSend& p = send_queue_[begin + j];
      dsts[j] =
          loopback_addr(static_cast<std::uint16_t>(base_port_ + p.to));
      iovs[j] = {const_cast<std::uint8_t*>(p.bytes.data()), p.bytes.size()};
      msgs[j] = {};
      msgs[j].msg_hdr.msg_name = &dsts[j];
      msgs[j].msg_hdr.msg_namelen = sizeof(dsts[j]);
      msgs[j].msg_hdr.msg_iov = &iovs[j];
      msgs[j].msg_hdr.msg_iovlen = 1;
    }
    int sent;
    do {
      sent = ::sendmmsg(fd_of(send_queue_[begin].from), msgs,
                        static_cast<unsigned>(n), 0);
    } while (sent < 0 && errno == EINTR);
    ++send_syscalls_;
    if (sent < 0) {
      if (errno == ENOSYS) {
        log::warn("UdpBus: sendmmsg unavailable, falling back to sendto");
        batched_ = false;
        break;
      }
      // The error pertains to the first datagram of the batch: drop it
      // (the pre-batching path dropped failed sends too) and keep going.
      log::warn("UdpBus: sendmmsg failed: ", std::strerror(errno));
      ++begin;
      continue;
    }
    for (int k = 0; k < sent; ++k) {
      const PendingSend& p = send_queue_[begin + static_cast<std::size_t>(k)];
      if (detail::is_short_write(msgs[k].msg_len, p.bytes.size())) {
        log::warn("UdpBus: short datagram write: ", msgs[k].msg_len, " of ",
                  p.bytes.size(), " bytes");
      }
      ++datagrams_sent_;
    }
    begin += static_cast<std::size_t>(sent);
  }
#endif
  // Scalar remainder (non-Linux build, or ENOSYS fallback mid-flush).
  for (std::size_t i = begin; i < end; ++i) {
    const PendingSend& p = send_queue_[i];
    write_datagram_scalar(p.from, p.to, p.bytes.span());
  }
}

void UdpBus::flush_sends() {
  if (send_queue_.empty()) return;
  std::size_t i = 0;
  while (i < send_queue_.size()) {
    std::size_t j = i + 1;
    while (j < send_queue_.size() &&
           send_queue_[j].from == send_queue_[i].from) {
      ++j;
    }
    if (gso_active_ && j - i > 2) {
      // Bucket the run by destination so round-robin fan-outs form
      // contiguous GSO trains. Stable: per-destination datagram order is
      // preserved; cross-destination order carries no UDP guarantee.
      std::stable_sort(send_queue_.begin() + static_cast<std::ptrdiff_t>(i),
                       send_queue_.begin() + static_cast<std::ptrdiff_t>(j),
                       [](const PendingSend& a, const PendingSend& b) {
                         return a.to < b.to;
                       });
    }
    flush_run(i, j);
    i = j;
  }
  send_queue_.clear();
}

std::uint64_t UdpBus::schedule_after(Duration d, std::function<void()> fn) {
  std::uint64_t id = next_timer_id_++;
  timer_heap_.push(PendingTimer{now() + d, next_timer_seq_++, id});
  timer_fns_.emplace(id, std::move(fn));
  return id;
}

void UdpBus::cancel(std::uint64_t timer_id) { timer_fns_.erase(timer_id); }

bool UdpBus::fire_due_timers() {
  bool fired = false;
  TimePoint t = now();
  while (!timer_heap_.empty() && timer_heap_.top().when <= t) {
    PendingTimer e = timer_heap_.top();
    timer_heap_.pop();
    auto it = timer_fns_.find(e.id);
    if (it == timer_fns_.end()) continue;  // cancelled
    auto fn = std::move(it->second);
    timer_fns_.erase(it);
    fn();
    fired = true;
  }
  return fired;
}

TimePoint UdpBus::next_deadline(TimePoint hard_deadline) const {
  TimePoint d = hard_deadline;
  // Skip cancelled heads conservatively: the top entry may be cancelled, in
  // which case we wake up slightly early and re-evaluate — harmless.
  if (!timer_heap_.empty() && timer_heap_.top().when < d) {
    d = timer_heap_.top().when;
  }
  return d;
}

void UdpBus::deliver(std::size_t local, std::uint16_t src_port_be,
                     SharedBytes bytes) {
  ++datagrams_received_;
  std::uint16_t src_port = ntohs(src_port_be);
  if (src_port < base_port_ || src_port >= base_port_ + total_members_) {
    return;  // stray datagram from an unrelated sender
  }
  auto from = static_cast<MemberId>(src_port - base_port_);
  if (on_receive_) {
    on_receive_(static_cast<MemberId>(first_member_ + local), from,
                std::move(bytes));
  }
}

void UdpBus::drain_socket_scalar(std::size_t local) {
  for (;;) {
    sockaddr_in src{};
    socklen_t srclen = sizeof(src);
    std::uint8_t* buf = ring_.writable(0);
    // MSG_TRUNC: report the datagram's true length so oversized ones are
    // detected instead of silently clipped.
    ssize_t n = ::recvfrom(fds_[local], buf, ring_.segment_size(), MSG_TRUNC,
                           reinterpret_cast<sockaddr*>(&src), &srclen);
    ++recv_syscalls_;
    if (n < 0) {
      switch (detail::classify_recv_errno(errno)) {
        case detail::RecvDisposition::kRetry:
          continue;  // EINTR mid-drain: the queue is NOT drained
        case detail::RecvDisposition::kDrained:
          return;
        case detail::RecvDisposition::kError:
          log::warn("UdpBus: recvfrom failed: ", std::strerror(errno));
          return;
      }
    }
    if (static_cast<std::size_t>(n) > ring_.segment_size()) {
      ++datagrams_received_;
      log::warn("UdpBus: dropping ", n, "-byte datagram larger than the ",
                ring_.segment_size(), "-byte segment size");
      continue;
    }
    SharedBytes bytes = ring_.view(0, static_cast<std::size_t>(n));
    ring_.advance(1);
    deliver(local, src.sin_port, std::move(bytes));
  }
}

void UdpBus::drain_socket_batched(std::size_t local) {
#if defined(__linux__)
  const std::size_t batch = std::min(config_.batch_size, ring_.segments());
  for (;;) {
    mmsghdr msgs[kMaxBatch];
    iovec iovs[kMaxBatch];
    sockaddr_in srcs[kMaxBatch];
    alignas(cmsghdr) char ctrls[kMaxBatch][CMSG_SPACE(sizeof(int))];
    for (std::size_t j = 0; j < batch; ++j) {
      iovs[j] = {ring_.writable(j), ring_.segment_size()};
      msgs[j] = {};
      msgs[j].msg_hdr.msg_name = &srcs[j];
      msgs[j].msg_hdr.msg_namelen = sizeof(srcs[j]);
      msgs[j].msg_hdr.msg_iov = &iovs[j];
      msgs[j].msg_hdr.msg_iovlen = 1;
      if (gro_active_) {
        msgs[j].msg_hdr.msg_control = ctrls[j];
        msgs[j].msg_hdr.msg_controllen = CMSG_SPACE(sizeof(int));
      }
    }
    int n = ::recvmmsg(fds_[local], msgs, static_cast<unsigned>(batch),
                       MSG_DONTWAIT, nullptr);
    ++recv_syscalls_;
    if (n < 0) {
      if (errno == ENOSYS) {
        log::warn("UdpBus: recvmmsg unavailable, falling back to recvfrom");
        batched_ = false;
        drain_socket_scalar(local);
        return;
      }
      switch (detail::classify_recv_errno(errno)) {
        case detail::RecvDisposition::kRetry:
          continue;  // EINTR mid-drain: the queue is NOT drained
        case detail::RecvDisposition::kDrained:
          return;
        case detail::RecvDisposition::kError:
          log::warn("UdpBus: recvmmsg failed: ", std::strerror(errno));
          return;
      }
    }
    for (int j = 0; j < n; ++j) {
      if (msgs[j].msg_hdr.msg_flags & MSG_TRUNC) {
        ++datagrams_received_;
        log::warn("UdpBus: dropping datagram larger than the ",
                  ring_.segment_size(), "-byte segment size");
        continue;
      }
      // A GRO-coalesced train arrives as one buffer with the segment size
      // in a cmsg: split it into per-datagram views of the same ring slot.
      int gro_size = 0;
      if (gro_active_) {
        for (cmsghdr* c = CMSG_FIRSTHDR(&msgs[j].msg_hdr); c != nullptr;
             c = CMSG_NXTHDR(&msgs[j].msg_hdr, c)) {
          if (c->cmsg_level == SOL_UDP && c->cmsg_type == UDP_GRO) {
            std::memcpy(&gro_size, CMSG_DATA(c), sizeof(gro_size));
          }
        }
      }
      const std::size_t len = msgs[j].msg_len;
      const auto slot = static_cast<std::size_t>(j);
      if (gro_size > 0 && len > static_cast<std::size_t>(gro_size)) {
        ++gro_trains_;
        for (std::size_t off = 0; off < len;
             off += static_cast<std::size_t>(gro_size)) {
          std::size_t seg =
              std::min<std::size_t>(static_cast<std::size_t>(gro_size),
                                    len - off);
          deliver(local, srcs[j].sin_port, ring_.view_at(slot, off, seg));
        }
      } else {
        deliver(local, srcs[j].sin_port, ring_.view(slot, len));
      }
    }
    ring_.advance(static_cast<std::size_t>(n));
    // A short batch means the queue is (momentarily) empty; poll is
    // level-triggered, so anything arriving meanwhile wakes us again.
    if (static_cast<std::size_t>(n) < batch) return;
  }
#else
  drain_socket_scalar(local);
#endif
}

void UdpBus::drain_sockets() {
  for (std::size_t i = 0; i < fds_.size(); ++i) {
    if (batched_) {
      drain_socket_batched(i);
    } else {
      drain_socket_scalar(i);
    }
  }
}

std::size_t UdpBus::run_until(TimePoint deadline) {
  stopped_ = false;
  std::uint64_t received_before = datagrams_received_;
  std::vector<pollfd> pfds(fds_.size());
  for (std::size_t i = 0; i < fds_.size(); ++i) {
    pfds[i] = pollfd{fds_[i], POLLIN, 0};
  }
  while (!stopped_ && now() < deadline) {
    fire_due_timers();
    flush_sends();
    TimePoint wake = next_deadline(deadline);
    Duration until_wake = wake - now();
    int timeout_ms = 0;
    if (until_wake > Duration::zero()) {
      timeout_ms = static_cast<int>(until_wake.us() / 1000) + 1;
    }
    int rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
    ++poll_syscalls_;
    if (rc < 0 && errno != EINTR) {
      log::error("UdpBus: poll failed: ", std::strerror(errno));
      break;
    }
    if (rc > 0) drain_sockets();
    flush_sends();
  }
  fire_due_timers();
  flush_sends();
  drain_sockets();
  flush_sends();
  return static_cast<std::size_t>(datagrams_received_ - received_before);
}

}  // namespace rrmp::net
