#include "net/loss_model.h"

namespace rrmp::net {

std::unique_ptr<LossModel> make_no_loss() { return std::make_unique<NoLoss>(); }

std::unique_ptr<LossModel> make_bernoulli(double p) {
  if (p <= 0.0) return make_no_loss();
  return std::make_unique<BernoulliLoss>(p);
}

}  // namespace rrmp::net
