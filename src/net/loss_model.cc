#include "net/loss_model.h"

namespace rrmp::net {

std::unique_ptr<LossModel> make_no_loss() { return std::make_unique<NoLoss>(); }

std::unique_ptr<LossModel> make_bernoulli(double p) {
  if (p <= 0.0) return make_no_loss();
  return std::make_unique<BernoulliLoss>(p);
}

void LinkLossTable::set_link(MemberId src, MemberId dst,
                             std::unique_ptr<LossModel> model) {
  links_[{src, dst}] = model ? std::move(model) : make_no_loss();
}

void LinkLossTable::set_link_rate(MemberId src, MemberId dst, double p) {
  set_link(src, dst, make_bernoulli(p));
}

void LinkLossTable::set_member(MemberId dst, std::unique_ptr<LossModel> model) {
  members_[dst] = model ? std::move(model) : make_no_loss();
}

void LinkLossTable::set_member_rate(MemberId dst, double p) {
  set_member(dst, make_bernoulli(p));
}

LossModel* LinkLossTable::find(MemberId src, MemberId dst) {
  if (!links_.empty()) {
    auto it = links_.find({src, dst});
    if (it != links_.end()) return it->second.get();
  }
  auto it = members_.find(dst);
  return it == members_.end() ? nullptr : it->second.get();
}

LinkLossTable LinkLossTable::clone() const {
  LinkLossTable copy;
  for (const auto& [link, model] : links_) {
    copy.links_[link] = model->clone();
  }
  for (const auto& [dst, model] : members_) {
    copy.members_[dst] = model->clone();
  }
  return copy;
}

}  // namespace rrmp::net
