// Group topology: members grouped into local regions, regions organized into
// an error-recovery hierarchy by distance from the sender (paper §2.1).
//
// Latency model: one-way delay between two members of the same region is
// intra_rtt/2; across regions it sums the per-hop one-way delays (default
// 50 ms per hop — "much higher than the latency within a region") along the
// hierarchy path to the lowest common ancestor, so deep subtrees are
// genuinely farther apart. An explicit pair override short-circuits the sum.
// The topology is immutable once built; liveness/joins/leaves are tracked by
// the membership directory, not here.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/time.h"
#include "common/types.h"

namespace rrmp::net {

class Topology {
 public:
  /// Adds a region. `parent` must already exist (or nullopt for a root).
  /// `intra_rtt` is the round-trip time between any two members inside it.
  RegionId add_region(std::string name, std::optional<RegionId> parent,
                      Duration intra_rtt = Duration::millis(10));

  /// Adds one member to `region`; returns its dense id.
  MemberId add_member(RegionId region);

  /// Adds `count` members to `region`; returns their ids in order.
  std::vector<MemberId> add_members(RegionId region, std::size_t count);

  /// Symmetric one-way latency override between two regions.
  void set_inter_latency(RegionId a, RegionId b, Duration one_way);

  /// One-way latency used for region pairs without an explicit override.
  void set_default_inter_latency(Duration one_way) {
    default_inter_one_way_ = one_way;
  }

  std::size_t member_count() const { return member_region_.size(); }
  std::size_t region_count() const { return regions_.size(); }

  RegionId region_of(MemberId m) const { return member_region_.at(m); }
  std::optional<RegionId> parent_of(RegionId r) const;

  /// Hops from `r` to its root region (0 for roots).
  std::size_t region_depth(RegionId r) const { return regions_.at(r).depth; }

  /// One-way latency of the edge from `r` to its parent (explicit override
  /// for that pair if set, else the default). Roots have no parent edge.
  Duration parent_edge_latency(RegionId r) const;

  const std::string& region_name(RegionId r) const {
    return regions_.at(r).name;
  }
  const std::vector<MemberId>& members_of(RegionId r) const {
    return regions_.at(r).members;
  }
  Duration intra_rtt(RegionId r) const { return regions_.at(r).intra_rtt; }

  bool same_region(MemberId a, MemberId b) const {
    return region_of(a) == region_of(b);
  }

  /// One-way propagation delay from `from` to `to`.
  Duration one_way_latency(MemberId from, MemberId to) const;

  /// Round-trip time estimate between two members (2x one-way).
  Duration rtt(MemberId a, MemberId b) const {
    return one_way_latency(a, b) * 2;
  }

  /// The default one-way latency for hops without an explicit override.
  Duration default_inter_latency() const { return default_inter_one_way_; }

  /// Conservative lower bound on the one-way latency between members of any
  /// two distinct regions: the minimum over all hierarchy edges, explicit
  /// pair overrides, and (with two or more roots) the root-bridge default.
  /// Every cross-region path is either a single override or a sum of edges,
  /// so no path can undercut this — it is the sharded harness's safe epoch
  /// window. Duration::infinite() for single-region topologies.
  Duration min_cross_region_latency() const;

  /// Explicit symmetric override for the pair, if one was set.
  std::optional<Duration> inter_override(RegionId a, RegionId b) const;

 private:
  struct Region {
    std::string name;
    std::optional<RegionId> parent;
    Duration intra_rtt;
    std::vector<MemberId> members;
    std::size_t depth = 0;  // hops to the root of this region's tree
  };

  Duration inter_one_way(RegionId a, RegionId b) const;

  std::vector<Region> regions_;
  std::vector<RegionId> member_region_;  // indexed by MemberId
  // Sparse symmetric override map keyed by (min, max) region pair.
  std::vector<std::pair<std::pair<RegionId, RegionId>, Duration>> inter_overrides_;
  Duration default_inter_one_way_ = Duration::millis(50);
};

/// Convenience builder for the common benchmark shape: `region_sizes[i]`
/// members in region i, region 0 the root, region i>0 parented on
/// `parents[i]` (defaults: all parented on region 0).
Topology make_hierarchy(const std::vector<std::size_t>& region_sizes,
                        Duration intra_rtt = Duration::millis(10),
                        Duration inter_one_way = Duration::millis(50),
                        const std::vector<RegionId>* parents = nullptr);

}  // namespace rrmp::net
