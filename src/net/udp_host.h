// Loopback-UDP datagram bus: runs the same protocol endpoints on real
// sockets.
//
// Each member is a UDP socket bound to 127.0.0.1:(base_port + member). All
// sockets are serviced by one poll() loop on the caller's thread, so
// endpoint code needs no locking. IP multicast is emulated by unicast
// fan-out (documented substitution: the sandbox offers no multicast routing;
// the protocol above only observes per-receiver delivery, which is
// identical).
//
// An optional delay function injects the topology's latency before a
// datagram is handed to the socket, so WAN timing can be reproduced on
// loopback.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/time.h"
#include "common/types.h"

namespace rrmp::net {

class UdpBus {
 public:
  /// Binds one socket per member. Throws std::runtime_error if any bind
  /// fails (e.g. ports in use or sockets unavailable).
  UdpBus(std::size_t member_count, std::uint16_t base_port);
  ~UdpBus();

  UdpBus(const UdpBus&) = delete;
  UdpBus& operator=(const UdpBus&) = delete;

  using ReceiveFn =
      std::function<void(MemberId to, MemberId from,
                         std::span<const std::uint8_t> bytes)>;
  void set_receive_callback(ReceiveFn fn) { on_receive_ = std::move(fn); }

  /// Artificial one-way delay applied before a datagram is written to the
  /// socket; nullptr means send immediately.
  using DelayFn = std::function<Duration(MemberId from, MemberId to)>;
  void set_delay_fn(DelayFn fn) { delay_fn_ = std::move(fn); }

  /// Monotonic time since construction, as a simulated-time TimePoint.
  TimePoint now() const;

  void send(MemberId from, MemberId to, std::vector<std::uint8_t> bytes);

  /// Timers fire on the loop thread, interleaved with receives.
  std::uint64_t schedule_after(Duration d, std::function<void()> fn);
  void cancel(std::uint64_t timer_id);

  /// Service sockets and timers until `deadline` (bus time) passes or
  /// stop() is called. Returns the number of datagrams delivered.
  std::size_t run_until(TimePoint deadline);
  void stop() { stopped_ = true; }

  std::size_t member_count() const { return fds_.size(); }
  std::uint64_t datagrams_sent() const { return datagrams_sent_; }
  std::uint64_t datagrams_received() const { return datagrams_received_; }

 private:
  struct PendingTimer {
    TimePoint when;
    std::uint64_t seq;
    std::uint64_t id;
    friend bool operator>(const PendingTimer& a, const PendingTimer& b) {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void write_datagram(MemberId from, MemberId to,
                      const std::vector<std::uint8_t>& bytes);
  void drain_sockets();
  bool fire_due_timers();
  TimePoint next_deadline(TimePoint hard_deadline) const;

  std::uint16_t base_port_;
  std::vector<int> fds_;
  ReceiveFn on_receive_;
  DelayFn delay_fn_;
  std::int64_t epoch_ns_ = 0;
  bool stopped_ = false;

  std::uint64_t next_timer_id_ = 1;
  std::uint64_t next_timer_seq_ = 1;
  std::priority_queue<PendingTimer, std::vector<PendingTimer>,
                      std::greater<PendingTimer>>
      timer_heap_;
  std::unordered_map<std::uint64_t, std::function<void()>> timer_fns_;

  std::uint64_t datagrams_sent_ = 0;
  std::uint64_t datagrams_received_ = 0;
};

}  // namespace rrmp::net
