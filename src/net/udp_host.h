// Loopback-UDP datagram bus: runs the same protocol endpoints on real
// sockets, built for throughput.
//
// Each member is a UDP socket bound to 127.0.0.1:(base_port + member). A bus
// may own a *subset* of the members (thread-per-core runtime: each worker
// bus binds only its members' sockets but can send to every port in the
// group), serviced by one poll() loop on the caller's thread so endpoint
// code needs no locking. IP multicast is emulated by unicast fan-out
// (documented substitution: the sandbox offers no multicast routing; the
// protocol above only observes per-receiver delivery, which is identical).
//
// Throughput path (Linux, on by default):
//  - receives are batched through recvmmsg() into a preallocated
//    SegmentRing — decoded frames alias ring slots via SharedBytes, so a
//    datagram is written once by the kernel and never copied again
//    (modeled on DFI's MulticastSegmentBuffer). A slot is recycled only
//    when every SharedBytes referencing it has been released; a slot still
//    pinned (e.g. its payload sits in a buffer store) is replaced with a
//    fresh allocation instead of being overwritten.
//  - sends are queued and flushed through sendmmsg() in batches; a regional
//    fan-out enqueues one refcounted SharedBytes per receiver, so the wire
//    image is encoded once for the whole group.
//  - with segmentation_offload on, equal-size same-destination runs of the
//    send queue become one sendmsg(UDP_SEGMENT) train (one kernel traversal
//    for up to 64 datagrams — syscall batching alone cannot touch the
//    per-datagram network-stack cost that dominates on modern kernels), and
//    receive sockets opt into UDP_GRO so the kernel hands back coalesced
//    trains that are split into per-datagram SharedBytes views of one ring
//    slot, still zero-copy.
// Where the batched syscalls are unavailable (non-Linux, or a kernel that
// returns ENOSYS/EOPNOTSUPP) the bus falls back one level at a time —
// offload to sendmmsg, sendmmsg to the scalar recvfrom()/sendto() path —
// with identical semantics.
//
// An optional delay function injects the topology's latency before a
// datagram is handed to the socket, so WAN timing can be reproduced on
// loopback.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/time.h"
#include "common/types.h"

namespace rrmp::net {

namespace detail {

/// What a failed recv*() errno means for the drain loop. EINTR must retry
/// the same socket (a signal mid-drain is not "drained" — treating it as
/// such silently abandons queued datagrams until the next poll wakeup);
/// EAGAIN/EWOULDBLOCK mean genuinely drained; anything else is a real error
/// that deserves a log line before moving on.
enum class RecvDisposition { kRetry, kDrained, kError };
RecvDisposition classify_recv_errno(int err);

/// True when a send syscall reported fewer bytes on the wire than requested
/// (short datagram write): the receiver would decode garbage, so warn.
inline bool is_short_write(std::int64_t sent, std::size_t requested) {
  return sent >= 0 && static_cast<std::size_t>(sent) < requested;
}

}  // namespace detail

/// Preallocated ring of receive segments. The kernel writes each incoming
/// datagram into the next slot; delivery hands out SharedBytes views that
/// alias the slot in place. recycle-on-release: acquiring a slot whose
/// buffer is still referenced outside the ring swaps in a fresh allocation
/// (counted in replacements()) so pinned payloads are never overwritten.
class SegmentRing {
 public:
  SegmentRing(std::size_t segments, std::size_t segment_size);

  /// Writable scratch for the slot `i` positions ahead of the head,
  /// guaranteed exclusively owned by the ring. Does not advance the head.
  std::uint8_t* writable(std::size_t i);

  /// View of the first `len` bytes of slot head+i, aliasing the slot's
  /// buffer (zero-copy). Valid until the slot is recycled — which the ring
  /// defers while this view (or any slice of it) is alive.
  SharedBytes view(std::size_t i, std::size_t len);

  /// View of `len` bytes at `offset` within slot head+i: one GRO-coalesced
  /// train lands in one slot and every datagram in it aliases a slice.
  SharedBytes view_at(std::size_t i, std::size_t offset, std::size_t len);

  /// Retire the first `n` slots: the next writable(0) is the old head+n.
  void advance(std::size_t n) { head_ = (head_ + n) % slots_.size(); }

  std::size_t segment_size() const { return segment_size_; }
  std::size_t segments() const { return slots_.size(); }
  /// Slots that were still pinned when their turn came and had to be
  /// replaced with a fresh allocation.
  std::uint64_t replacements() const { return replacements_; }

 private:
  std::vector<std::shared_ptr<std::vector<std::uint8_t>>> slots_;
  std::size_t segment_size_;
  std::size_t head_ = 0;
  std::uint64_t replacements_ = 0;
};

struct UdpBusConfig {
  /// Datagrams per recvmmsg()/sendmmsg() call; also the send-queue flush
  /// threshold.
  std::size_t batch_size = 32;
  /// Bytes per receive-ring slot; datagrams larger than this are dropped
  /// with a warning (protocol frames are far smaller).
  std::size_t segment_size = 2048;
  /// Receive-ring depth; 0 = 8 * batch_size.
  std::size_t ring_segments = 0;
  /// false forces the scalar recvfrom()/sendto() path (the pre-batching
  /// behaviour; also the automatic fallback where recvmmsg is unavailable).
  bool batched_syscalls = true;
  /// Linux UDP segmentation offload: flushes bucket the send queue by
  /// destination and emit equal-size trains as one sendmsg(UDP_SEGMENT);
  /// receive sockets enable UDP_GRO and split coalesced trains into
  /// per-datagram ring views. Enlarges ring slots to 64 KiB (a full train)
  /// with a correspondingly shallower default ring. Off by default; falls
  /// back to plain sendmmsg/recvmmsg where the kernel refuses it.
  bool segmentation_offload = false;

  /// Subset ownership (thread-per-core runtime): bind sockets for members
  /// [first_member, first_member + owned_count) out of a group of
  /// `member_count` total ports. Defaults own the whole group.
  std::size_t first_member = 0;
  std::size_t owned_count = SIZE_MAX;  // clamped to member_count

  /// Shared clock epoch (monotonic ns) so several worker buses agree on
  /// now(); 0 = this bus starts its own epoch at construction.
  std::int64_t epoch_ns = 0;
};

class UdpBus {
 public:
  /// Binds one socket per owned member. Throws std::runtime_error if the
  /// port range would overflow 65535 (base_port + member_count must fit —
  /// silent uint16 wrap-around used to bind colliding/wrong ports) or if
  /// any bind fails (e.g. ports in use or sockets unavailable).
  UdpBus(std::size_t member_count, std::uint16_t base_port,
         UdpBusConfig config = {});
  ~UdpBus();

  UdpBus(const UdpBus&) = delete;
  UdpBus& operator=(const UdpBus&) = delete;

  /// Delivery callback. `bytes` aliases a receive-ring slot: keeping the
  /// SharedBytes (or a slice of it) alive is cheap and safe — the ring
  /// recycles the slot only after the last reference is gone.
  using ReceiveFn =
      std::function<void(MemberId to, MemberId from, SharedBytes bytes)>;
  void set_receive_callback(ReceiveFn fn) { on_receive_ = std::move(fn); }

  /// Artificial one-way delay applied before a datagram is written to the
  /// socket; nullptr means send immediately.
  using DelayFn = std::function<Duration(MemberId from, MemberId to)>;
  void set_delay_fn(DelayFn fn) { delay_fn_ = std::move(fn); }

  /// Monotonic time since the epoch, as a simulated-time TimePoint.
  TimePoint now() const;

  void send(MemberId from, MemberId to, std::vector<std::uint8_t> bytes) {
    send_shared(from, to, SharedBytes(std::move(bytes)));
  }
  /// Refcounted send: a fan-out enqueues N references to one wire image
  /// instead of N copies. `from` must be owned by this bus.
  void send_shared(MemberId from, MemberId to, SharedBytes bytes);

  /// Timers fire on the loop thread, interleaved with receives.
  std::uint64_t schedule_after(Duration d, std::function<void()> fn);
  void cancel(std::uint64_t timer_id);

  /// Service sockets and timers until `deadline` (bus time) passes or
  /// stop() is called. Returns the number of datagrams delivered.
  std::size_t run_until(TimePoint deadline);
  void stop() { stopped_ = true; }

  /// Push any queued batched sends to the kernel now (run_until flushes
  /// automatically each iteration; this covers sends issued outside it).
  void flush_sends();

  std::size_t member_count() const { return total_members_; }
  std::size_t owned_count() const { return fds_.size(); }
  MemberId first_member() const {
    return static_cast<MemberId>(first_member_);
  }
  bool owns(MemberId m) const {
    return m >= first_member_ && m < first_member_ + fds_.size();
  }

  std::uint64_t datagrams_sent() const { return datagrams_sent_; }
  std::uint64_t datagrams_received() const { return datagrams_received_; }
  /// Syscall accounting for the syscalls/msg throughput metric.
  std::uint64_t send_syscalls() const { return send_syscalls_; }
  std::uint64_t recv_syscalls() const { return recv_syscalls_; }
  std::uint64_t poll_syscalls() const { return poll_syscalls_; }
  std::uint64_t ring_replacements() const { return ring_.replacements(); }
  /// True while the batched recvmmsg/sendmmsg path is active (false after
  /// an ENOSYS fallback or when configured off).
  bool batching_active() const { return batched_; }
  /// True while GSO sends / GRO receives are active (requested, supported
  /// by the kernel, and not disabled by a runtime fallback).
  bool offload_active() const { return gso_active_ || gro_active_; }
  /// sendmsg(UDP_SEGMENT) trains emitted (each covers ≥2 datagrams).
  std::uint64_t gso_batches() const { return gso_batches_; }
  /// GRO-coalesced trains received and split into ≥2 datagram views.
  std::uint64_t gro_trains() const { return gro_trains_; }

 private:
  struct PendingTimer {
    TimePoint when;
    std::uint64_t seq;
    std::uint64_t id;
    friend bool operator>(const PendingTimer& a, const PendingTimer& b) {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  struct PendingSend {
    MemberId from;
    MemberId to;
    SharedBytes bytes;
  };

  void write_datagram(MemberId from, MemberId to, SharedBytes bytes);
  void write_datagram_scalar(MemberId from, MemberId to,
                             std::span<const std::uint8_t> bytes);
  void flush_run(std::size_t begin, std::size_t end);  // same-fd run
  /// Queue entries [begin, begin+count) — same from/to/size — as one
  /// sendmsg(UDP_SEGMENT) train. Returns entries consumed (count on
  /// success, 1 when the train had to be dropped on a send error, 0 when
  /// the kernel refused offload and gso_active_ was cleared — the caller
  /// then re-sends the same range through sendmmsg).
  std::size_t send_gso_train(std::size_t begin, std::size_t count);
  void drain_sockets();
  void drain_socket_scalar(std::size_t local);
  void drain_socket_batched(std::size_t local);
  void deliver(std::size_t local, std::uint16_t src_port, SharedBytes bytes);
  bool fire_due_timers();
  TimePoint next_deadline(TimePoint hard_deadline) const;
  int fd_of(MemberId m) const { return fds_[m - first_member_]; }

  UdpBusConfig config_;
  std::uint16_t base_port_;
  std::size_t total_members_;
  std::size_t first_member_;
  std::vector<int> fds_;
  ReceiveFn on_receive_;
  DelayFn delay_fn_;
  std::int64_t epoch_ns_ = 0;
  bool stopped_ = false;
  bool batched_ = true;
  bool gso_active_ = false;
  bool gro_active_ = false;

  SegmentRing ring_;
  std::vector<PendingSend> send_queue_;

  std::uint64_t next_timer_id_ = 1;
  std::uint64_t next_timer_seq_ = 1;
  std::priority_queue<PendingTimer, std::vector<PendingTimer>,
                      std::greater<PendingTimer>>
      timer_heap_;
  std::unordered_map<std::uint64_t, std::function<void()>> timer_fns_;

  std::uint64_t datagrams_sent_ = 0;
  std::uint64_t datagrams_received_ = 0;
  std::uint64_t send_syscalls_ = 0;
  std::uint64_t recv_syscalls_ = 0;
  std::uint64_t poll_syscalls_ = 0;
  std::uint64_t gso_batches_ = 0;
  std::uint64_t gro_trains_ = 0;
};

}  // namespace rrmp::net
